package mwllsc

import (
	"time"

	"mwllsc/internal/server"
)

// Server serves a Sharded map over TCP with the llscd wire protocol —
// the embeddable form of cmd/llscd, for processes that want to own the
// map (and keep using it in-process) while also serving remote
// clients. The map is shared safely: local handles and remote traffic
// go through the same registry and see the same linearizable history.
type Server = server.Server

// ServerOption configures NewServer.
type ServerOption = server.Option

// ErrServerClosed is what Server.Serve returns after a clean Close.
var ErrServerClosed = server.ErrClosed

// NewServer creates a serving layer over m; call Listen and Serve (or
// ListenAndServe) to accept clients, Close for a graceful drain.
//
//	m, _ := mwllsc.NewSharded(16, 16, 2)
//	s := mwllsc.NewServer(m)
//	go s.ListenAndServe("127.0.0.1:7787")
//	...
//	s.Close()
func NewServer(m *Sharded, opts ...ServerOption) *Server {
	return server.New(m, opts...)
}

// WithServerMaxBatch caps how many pipelined requests the server
// executes per registry acquisition (default 64).
func WithServerMaxBatch(n int) ServerOption { return server.WithMaxBatch(n) }

// WithServerLogf installs a logger for per-connection errors (default:
// dropped).
func WithServerLogf(logf func(format string, args ...any)) ServerOption {
	return server.WithLogf(logf)
}

// WithServerMaxConns caps concurrently open connections; excess
// connections are closed at accept (default 0 = unlimited).
func WithServerMaxConns(n int) ServerOption { return server.WithMaxConns(n) }

// WithServerIdleTimeout closes a connection whose next request does not
// arrive within d (default 0 = never).
func WithServerIdleTimeout(d time.Duration) ServerOption { return server.WithIdleTimeout(d) }

// WithServerWriteTimeout evicts a connection whose peer stops reading
// its responses for d (default 0 = never) — the slow-reader defense
// that keeps one stalled client from pinning buffers forever.
func WithServerWriteTimeout(d time.Duration) ServerOption { return server.WithWriteTimeout(d) }

// WithServerMaxInflight bounds concurrently executing request batches
// (default 0 = unbounded). Excess batches are rejected whole with a
// retryable busy status before touching the map; the Client retries
// them automatically with backoff. This is the admission control that
// keeps goodput near capacity under overload instead of collapsing
// into queueing delay.
func WithServerMaxInflight(n int) ServerOption { return server.WithMaxInflight(n) }
