// Package mwllsc provides wait-free, linearizable multiword (W-word)
// Load-Linked / Store-Conditional / Validate shared variables for N
// processes, implementing the algorithm of Jayanti & Petrovic, "Efficient
// Wait-Free Implementation of Multiword LL/SC Variables" (Dartmouth
// TR2004-523 / ICDCS 2005).
//
// An LL/SC variable generalizes compare-and-swap without the ABA problem:
// LL returns the variable's value, and a subsequent SC(v) by the same
// process writes v iff no other successful SC happened in between. Any
// atomic read-modify-write on a W-word value is then a three-step recipe:
//
//	h := obj.Handle(p)
//	v := make([]uint64, obj.W())
//	for {
//		h.LL(v)          // read
//		transform(v)     // modify locally
//		if h.SC(v) {     // write iff unchanged
//			break
//		}
//	}
//
// Every LL and SC completes in O(W) steps and every VL in O(1) steps
// regardless of what other processes do (wait-freedom) — there are no locks
// and no unbounded retry loops inside the library. The whole variable costs
// O(NW) words of shared memory, a factor N less than the previous best
// construction, and performs no allocation on the steady-state path.
//
// # Process model
//
// The object is created for a fixed number of processes N; each process id
// p in [0,N) may be driven by at most one goroutine at a time (the id *is*
// the identity the wait-freedom and helping guarantees attach to). Obtain a
// Handle per process and keep it on that process's goroutine.
//
// # Substrates
//
// The paper assumes hardware single-word LL/SC. On Go's sync/atomic this
// library offers two equivalent realizations: SubstrateTagged (default;
// value+unique-tag packed in one word, zero allocation, astronomically
// bounded tag space) and SubstratePtr (pointer-to-immutable-cell, exact and
// unbounded, one small allocation per mutation). See DESIGN.md for the
// trade-off and the E5 ablation.
package mwllsc
