// Package mwllsc provides wait-free, linearizable multiword (W-word)
// Load-Linked / Store-Conditional / Validate shared variables for N
// processes, implementing the algorithm of Jayanti & Petrovic, "Efficient
// Wait-Free Implementation of Multiword LL/SC Variables" (Dartmouth
// TR2004-523 / ICDCS 2005).
//
// An LL/SC variable generalizes compare-and-swap without the ABA problem:
// LL returns the variable's value, and a subsequent SC(v) by the same
// process writes v iff no other successful SC happened in between. Any
// atomic read-modify-write on a W-word value is then a three-step recipe:
//
//	h := obj.Handle(p)
//	v := make([]uint64, obj.W())
//	for {
//		h.LL(v)          // read
//		transform(v)     // modify locally
//		if h.SC(v) {     // write iff unchanged
//			break
//		}
//	}
//
// Every LL and SC completes in O(W) steps and every VL in O(1) steps
// regardless of what other processes do (wait-freedom) — there are no locks
// and no unbounded retry loops inside the library. The whole variable costs
// O(NW) words of shared memory, a factor N less than the previous best
// construction, and performs no allocation on the steady-state path.
//
// # Process model
//
// The object is created for a fixed number of processes N; each process id
// p in [0,N) may be driven by at most one goroutine at a time (the id *is*
// the identity the wait-freedom and helping guarantees attach to). Obtain a
// Handle per process and keep it on that process's goroutine.
//
// # Scaling beyond N goroutines: the handle registry
//
// Goroutines are cheap and unbounded; process ids are neither. A Registry
// (NewRegistry) multiplexes any number of goroutines onto the N slots:
// Acquire checks out an exclusive id (blocking or spinning when all are
// taken, per WaitPolicy), Release returns it. Inside an acquired slot
// every operation keeps the paper's per-process guarantees; the only
// waiting is for a slot itself, which is inherent — the object has exactly
// N identities. Releasing an id that is not checked out (double release,
// fabricated id) panics rather than silently aliasing two goroutines onto
// one process; a stale release racing a re-acquire of the same id cannot
// be detected, so release each id exactly once — Sharded handles enforce
// this per handle.
//
// # Scaling beyond one object: sharding
//
// A single object serializes all successful SCs through one memory word,
// so its aggregate update rate is bounded no matter how many cores are
// available. Sharded (NewSharded) spreads keys by hash over K independent
// objects that share one registry: an acquired id is valid on every
// shard, per-key operations stay linearizable exactly as on a single
// object, and updates to different shards proceed without interfering.
// Sharded.Snapshot reads all K shards with per-shard LL + VL
// revalidation: each shard's value is individually atomic (each LL already
// is; the VL pass re-reads shards that changed mid-snapshot, trading
// wait-freedom for freshness), but the K values are not cross-shard
// linearizable. Words that must always move together still belong in one
// shard (that keeps them on the per-key fast path); when values in
// different shards must change or be observed together, use the
// cross-shard transactions below instead of giving up the sharding. The
// E8/E9 experiments (cmd/llscbench) quantify the throughput gain vs K and
// the registry's overhead.
//
// # Cross-shard atomic transactions
//
// Sharded carries a lock-free transaction layer (internal/txn) that
// restores multi-word composability across shards:
//
//	h.UpdateMulti(keys, f)   // one f applied atomically to all keys' shards
//	m.SnapshotAtomic(dst)    // all K shard values from one instant
//
// UpdateMulti runs as a descriptor-based two-phase commit built from the
// same LL/SC/VL primitives: collect the target values, publish a
// descriptor, lock the target shards in ascending index order (a CAS on
// a per-shard lock word plus a value-sealing SC), commit, release. Any
// process that
// encounters a mid-commit transaction helps it finish, so a stalled (or
// crashed) writer never blocks others — the layer is lock-free, though
// not wait-free like per-key operations. SnapshotAtomic first tries
// optimistic double collects (LL all shards, then VL all shards; if
// nothing moved in between, the values form a consistent cut) and falls
// back to the descriptor path under sustained writes. Cost model: a
// per-key Update pays one LL/SC round on one shard; UpdateMulti pays two
// rounds (lock + release) on each distinct target shard plus the
// descriptor publish; Snapshot pays ~2K shard reads; SnapshotAtomic pays
// the same per attempt, times the retries a write-heavy load induces. The
// E10 experiment (cmd/llscbench) quantifies transaction throughput vs
// key-span and conflict rate.
//
// # Serving: the networked layer
//
// The serving layer (internal/wire, internal/server, internal/client;
// daemon cmd/llscd) exposes a Sharded map over TCP, so processes that
// are not linked against the map can still operate on it:
//
//	c, _ := mwllsc.Dial("127.0.0.1:7787", mwllsc.WithClientConns(4))
//	v, _ := c.Add(ctx, key, []uint64{1, 0})   // remote multiword fetch-and-add
//	rows, _ := c.SnapshotAtomic(ctx)          // remote linearizable snapshot
//
// The wire protocol is a compact length-prefixed binary format with
// request ids for pipelining: many requests ride one connection
// concurrently and responses may return out of order. The server
// gathers each connection's pipelined requests into batches executed
// through a single registry acquisition (grouping single-key operations
// by target shard); the client coalesces concurrent callers' requests
// into few syscalls with no explicit batch API. Because closures do not
// travel, remote updates are declarative: word-wise Add (wrapping) or
// Set, single- or multi-key.
//
// The consistency contract is the in-process one, unchanged. Client.Add,
// Client.Set and Client.Read are linearizable on the key's shard exactly
// like MapHandle.Update/Read; AddMulti/SetMulti are one cross-shard
// atomic commit (the transaction layer above); Client.Snapshot is
// per-shard atomic; Client.SnapshotAtomic is cross-shard linearizable.
// Batching never reorders two operations on the same key from one
// connection. A server can also be embedded in-process (NewServer) and
// the map used locally at the same time — both sides share one registry
// and one linearizable history. The E11 experiment (cmd/llscbench -e
// e11, standalone cmd/llscload) measures throughput and p50/p99 latency
// over loopback vs connection count and pipelining depth. The wire
// protocol is specified in docs/WIRE.md.
//
// # Durability
//
// Run cmd/llscd with -dir and the map survives restarts: every
// committed remote update is appended to a per-shard append-only log
// (internal/persist) after it commits in memory and before its response
// is flushed, and startup recovers the latest checkpoint plus a
// commit-ordered log replay. Because remote updates are declarative
// (Add/Set merges — closures never enter the log), records are
// replayable by construction; a commit sequence number captured inside
// each update's merge callback preserves same-shard commit order
// without adding any synchronization to the lock-free hot path.
//
// The durability contract is set by -fsync. Under "always" a response
// is withheld until a group-commit fsync covers its record, so no
// acknowledged write is ever lost — not even to SIGKILL or power loss;
// "everysec" bounds machine-crash loss to about a second; "none" leaves
// flushing to the OS. Under every policy a *process* crash loses no
// acknowledged write, recovery repairs torn log tails (truncate at the
// first CRC failure) and never invents writes, and the recovered map is
// a state the live map actually passed through — per-key
// linearizability and cross-shard transaction atomicity carry over to
// what a restart observes. Checkpoints are cross-shard-atomic
// (SnapshotAtomic through an identity transaction) with a sequence
// watermark, rewritten atomically, and safe against a crash at any
// step. Operational details — flags, per-policy guarantees, sizing,
// disaster recovery — live in docs/OPERATIONS.md; the E12 experiment
// (cmd/llscbench -e e12) prices the fsync-policy spectrum.
//
// # Observability
//
// The serving daemon is instrumented without giving back what the
// zero-allocation hot path bought (internal/obs). Request counters
// are striped by registry slot across 128-byte-aligned stripes — the
// batch executor bumps only the cache lines of the slot it already
// holds, so no shared line is written per request — and latency is
// recorded in lock-free log-bucketed histograms (service latency,
// batch size, update attempts, persistence append and fsync times)
// whose quantiles are exact to within a factor of two. With -admin
// the daemon serves Prometheus text on /metrics, a JSON quantile
// snapshot on /statsz, a liveness probe on /healthz and the Go
// profiler under /debug/pprof/; the Stats wire opcode (Client.Stats)
// carries the same counter totals plus p50/p99/p999 service latency
// and fsync p99 as optional trailing words old clients ignore. Every
// surface folds the same striped banks, so they never disagree. The
// E13 allocation gate runs with observability enabled, and the E14
// experiment (cmd/llscbench -e e14) prices the histograms against a
// server without them — the delta sits inside measurement noise,
// with a documented ceiling of 3%. The metric catalog and design
// notes live in docs/OBSERVABILITY.md.
//
// # Substrates
//
// The paper assumes hardware single-word LL/SC. On Go's sync/atomic this
// library offers two equivalent realizations: SubstrateTagged (default;
// value+unique-tag packed in one word, zero allocation, astronomically
// bounded tag space) and SubstratePtr (pointer-to-immutable-cell, exact and
// unbounded, one small allocation per mutation). The E5 experiment
// (cmd/llscbench -e e5) quantifies the trade-off.
package mwllsc
