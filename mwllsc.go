package mwllsc

import (
	"fmt"

	"mwllsc/internal/core"
	"mwllsc/internal/mem"
	"mwllsc/internal/mwobj"
)

// Substrate selects how single-word LL/SC objects are built from CAS; see
// the package documentation.
type Substrate = mem.Substrate

// Substrate choices.
const (
	// SubstrateTagged packs value and a mutation-unique tag into one
	// uint64: zero allocation, tag space bounded (>= 2^32 mutations per
	// process per word). The default.
	SubstrateTagged = mem.SubstrateTagged
	// SubstratePtr uses CAS on pointers to immutable cells: exact,
	// unbounded, one allocation per mutation.
	SubstratePtr = mem.SubstratePtr
)

// Stats is a point-in-time snapshot of the object's internal counters;
// see Object.Stats.
type Stats = core.StatsSnapshot

// Space reports the object's memory footprint in both paper accounting
// (register words + LL/SC words) and physical bytes.
type Space = mwobj.Space

// Object is an N-process W-word LL/SC/VL variable. Create one with New and
// hand each process its Handle.
type Object struct {
	obj   *core.Object
	stats *core.Stats
}

type options struct {
	substrate Substrate
	stats     bool
}

// Option configures New.
type Option func(*options)

// WithSubstrate selects the single-word LL/SC construction.
func WithSubstrate(s Substrate) Option {
	return func(o *options) { o.substrate = s }
}

// WithStats enables the internal event counters read by Object.Stats
// (a few atomic increments per operation).
func WithStats() Option {
	return func(o *options) { o.stats = true }
}

// New creates a W-word LL/SC/VL variable shared by n processes, holding
// initial (len(initial) must be w) as its initial value.
func New(n, w int, initial []uint64, opts ...Option) (*Object, error) {
	if n < 1 {
		return nil, fmt.Errorf("mwllsc: n must be >= 1, got %d", n)
	}
	cfg := options{substrate: SubstrateTagged}
	for _, opt := range opts {
		opt(&cfg)
	}
	var stats *core.Stats
	if cfg.stats {
		stats = &core.Stats{}
	}
	obj, err := core.New(mem.NewReal(n, cfg.substrate), n, w, initial, stats)
	if err != nil {
		return nil, fmt.Errorf("mwllsc: %w", err)
	}
	return &Object{obj: obj, stats: stats}, nil
}

// N returns the number of processes the object supports.
func (o *Object) N() int { return o.obj.N() }

// W returns the value width in 64-bit words.
func (o *Object) W() int { return o.obj.W() }

// Handle returns the operation handle for process p. The handle (and the
// process id) must be used by at most one goroutine at a time.
func (o *Object) Handle(p int) *Handle {
	if p < 0 || p >= o.obj.N() {
		panic(fmt.Sprintf("mwllsc: process id %d out of range [0,%d)", p, o.obj.N()))
	}
	return &Handle{obj: o.obj, p: p}
}

// LL performs a load-linked by process p, copying the current value into
// dst (len(dst) must be W). Prefer Handle for per-process use.
func (o *Object) LL(p int, dst []uint64) { o.obj.LL(p, dst) }

// SC performs a store-conditional by process p: it writes src (len(src)
// must be W) and returns true iff no successful SC happened since p's
// latest LL.
func (o *Object) SC(p int, src []uint64) bool { return o.obj.SC(p, src) }

// VL returns true iff no successful SC happened since p's latest LL.
func (o *Object) VL(p int) bool { return o.obj.VL(p) }

// Stats returns a snapshot of the internal counters; ok is false unless
// the object was created with WithStats.
func (o *Object) Stats() (snap Stats, ok bool) {
	if o.stats == nil {
		return Stats{}, false
	}
	return o.stats.Snapshot(), true
}

// Space reports the object's memory footprint.
func (o *Object) Space() Space { return o.obj.Space() }

// Handle binds an Object to one process id.
type Handle struct {
	obj     *core.Object
	p       int
	scratch []uint64 // lazy buffer for Update
}

// Process returns the process id this handle is bound to.
func (h *Handle) Process() int { return h.p }

// LL copies the variable's current value into dst (len(dst) must be W) and
// links it for a subsequent SC/VL. Wait-free, O(W).
func (h *Handle) LL(dst []uint64) { h.obj.LL(h.p, dst) }

// LLNew is LL into a freshly allocated slice, for convenience at
// non-critical call sites.
func (h *Handle) LLNew() []uint64 {
	v := make([]uint64, h.obj.W())
	h.obj.LL(h.p, v)
	return v
}

// SC writes src (len(src) must be W) iff no successful SC happened since
// this handle's latest LL, reporting whether it did. Wait-free, O(W).
func (h *Handle) SC(src []uint64) bool { return h.obj.SC(h.p, src) }

// VL reports whether no successful SC happened since this handle's latest
// LL. Wait-free, O(1).
func (h *Handle) VL() bool { return h.obj.VL(h.p) }

// Read copies the current value into dst without keeping a link — a
// wait-free atomic multiword read (one LL).
func (h *Handle) Read(dst []uint64) { h.obj.LL(h.p, dst) }

// Update atomically applies f to the variable: it runs the LL -> f -> SC
// loop until the SC lands and returns the number of attempts. f receives
// the current value in a scratch buffer (reused across calls of this
// handle) and must mutate it in place; it may run several times, so it
// must be side-effect free. Lock-free: the loop only retries when some
// other process's SC succeeded.
func (h *Handle) Update(f func(v []uint64)) int {
	if h.scratch == nil {
		h.scratch = make([]uint64, h.obj.W())
	}
	for attempt := 1; ; attempt++ {
		h.obj.LL(h.p, h.scratch)
		f(h.scratch)
		if h.obj.SC(h.p, h.scratch) {
			return attempt
		}
	}
}
