package mwllsc

import (
	"sync"
	"testing"
)

func TestHandleUpdateSequential(t *testing.T) {
	obj, err := New(1, 2, []uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	h := obj.Handle(0)
	attempts := h.Update(func(v []uint64) {
		v[0] += 5
		v[1] += 5
	})
	if attempts != 1 {
		t.Fatalf("uncontended Update took %d attempts", attempts)
	}
	got := h.LLNew()
	if got[0] != 15 || got[1] != 25 {
		t.Fatalf("value = %v", got)
	}
}

func TestHandleReadDoesNotDisturbOthers(t *testing.T) {
	obj, err := New(2, 1, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	writer, reader := obj.Handle(0), obj.Handle(1)
	v := make([]uint64, 1)
	writer.LL(v)
	reader.Read(v)
	if v[0] != 1 {
		t.Fatalf("Read = %v", v)
	}
	// The reader's Read must not have invalidated the writer's link.
	if !writer.SC([]uint64{2}) {
		t.Fatal("SC failed after another process's Read")
	}
}

func TestHandleUpdateConcurrentExactlyOnce(t *testing.T) {
	const (
		n   = 8
		ops = 2000
	)
	obj, err := New(n, 4, make([]uint64, 4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := obj.Handle(p)
			for i := 0; i < ops; i++ {
				h.Update(func(v []uint64) {
					for j := range v {
						v[j]++
					}
				})
			}
		}(p)
	}
	wg.Wait()
	got := obj.Handle(0).LLNew()
	for j, x := range got {
		if x != n*ops {
			t.Fatalf("word %d = %d, want %d (lost or duplicated updates)", j, x, n*ops)
		}
	}
}
