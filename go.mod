module mwllsc

go 1.24
