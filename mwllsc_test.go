package mwllsc

import (
	"sync"
	"testing"
)

func TestPublicAPIQuickPath(t *testing.T) {
	obj, err := New(4, 3, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if obj.N() != 4 || obj.W() != 3 {
		t.Fatalf("N/W = %d/%d, want 4/3", obj.N(), obj.W())
	}
	h := obj.Handle(0)
	v := h.LLNew()
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("initial = %v", v)
	}
	if !h.VL() {
		t.Fatal("VL false after quiet LL")
	}
	if !h.SC([]uint64{4, 5, 6}) {
		t.Fatal("SC failed")
	}
	got := obj.Handle(1).LLNew()
	if got[0] != 4 || got[2] != 6 {
		t.Fatalf("after SC = %v", got)
	}
}

func TestHandleProcessBounds(t *testing.T) {
	obj, err := New(2, 1, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Handle(1).Process() != 1 {
		t.Fatal("Process() mismatch")
	}
	for _, p := range []int{-1, 2, 100} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Handle(%d) did not panic", p)
				}
			}()
			obj.Handle(p)
		}()
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(0, 1, []uint64{0}); err == nil {
		t.Fatal("New(0,1) succeeded")
	}
	if _, err := New(1, 2, []uint64{0}); err == nil {
		t.Fatal("New with short initial succeeded")
	}
}

func TestStatsDisabledByDefault(t *testing.T) {
	obj, err := New(1, 1, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := obj.Stats(); ok {
		t.Fatal("Stats ok without WithStats")
	}
}

func TestStatsEnabled(t *testing.T) {
	obj, err := New(2, 2, []uint64{0, 0}, WithStats())
	if err != nil {
		t.Fatal(err)
	}
	h := obj.Handle(0)
	v := make([]uint64, 2)
	h.LL(v)
	h.SC([]uint64{1, 1})
	snap, ok := obj.Stats()
	if !ok {
		t.Fatal("Stats not ok with WithStats")
	}
	if snap.LLTotal != 1 || snap.SCSuccess != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSubstrates(t *testing.T) {
	for _, s := range []Substrate{SubstrateTagged, SubstratePtr} {
		t.Run(s.String(), func(t *testing.T) {
			obj, err := New(4, 2, []uint64{0, 0}, WithSubstrate(s))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			successes := make([]int64, 4)
			for p := 0; p < 4; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					h := obj.Handle(p)
					v := make([]uint64, 2)
					for i := 0; i < 1000; i++ {
						h.LL(v)
						if v[0] != v[1] {
							t.Errorf("torn read %v", v)
							return
						}
						if h.SC([]uint64{v[0] + 1, v[1] + 1}) {
							successes[p]++
						}
					}
				}(p)
			}
			wg.Wait()
			var total int64
			for _, c := range successes {
				total += c
			}
			final := obj.Handle(0).LLNew()
			if int64(final[0]) != total {
				t.Fatalf("final %d != successes %d", final[0], total)
			}
		})
	}
}

func TestSpaceExposed(t *testing.T) {
	obj, err := New(8, 16, make([]uint64, 16))
	if err != nil {
		t.Fatal(err)
	}
	s := obj.Space()
	if s.RegisterWords != 3*8*16 {
		t.Fatalf("RegisterWords = %d", s.RegisterWords)
	}
	if s.PhysBytes <= 0 || s.PaperWords() != s.RegisterWords+s.LLSCWords {
		t.Fatalf("space = %+v", s)
	}
}
