package sim

import (
	"fmt"

	"mwllsc/internal/check"
	"mwllsc/internal/core"
)

// Scripted is a policy that replays a fixed decision prefix and then
// continues non-preemptively (inertia: keep running the last process while
// it is runnable, else the lowest-id runnable). Because the whole simulation
// is deterministic, replaying a prefix reproduces the identical execution up
// to the deviation point. It records the full decision trace and the
// runnable set at every step, which the explorer uses to branch.
type Scripted struct {
	// Script is the decision prefix: Script[i] is the process granted
	// step i. It must match runnability, which replay guarantees.
	Script []int

	trace    []int
	runnable [][]int
	last     int
}

// NewScripted returns a policy replaying script then running with inertia.
func NewScripted(script []int) *Scripted {
	return &Scripted{Script: script, last: -1}
}

// Next implements Policy.
func (s *Scripted) Next(runnable []int, step int) int {
	snapshot := make([]int, len(runnable))
	copy(snapshot, runnable)
	s.runnable = append(s.runnable, snapshot)

	var choice int
	switch {
	case len(s.trace) < len(s.Script):
		choice = s.Script[len(s.trace)]
		if !contains(runnable, choice) {
			// Replay divergence would mean the simulation is not
			// deterministic — a harness bug worth failing loudly on.
			panic(fmt.Sprintf("sim: scripted choice p%d not runnable at step %d (runnable %v)",
				choice, step, runnable))
		}
	case contains(runnable, s.last):
		choice = s.last
	default:
		choice = runnable[0]
	}
	s.trace = append(s.trace, choice)
	s.last = choice
	return choice
}

// Name implements Policy.
func (s *Scripted) Name() string { return fmt.Sprintf("scripted(%d)", len(s.Script)) }

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ExploreConfig bounds a systematic schedule exploration.
type ExploreConfig struct {
	// N, W, OpsPerProc, Seed, VLEvery, TornReads configure each run as in
	// Config.
	N, W, OpsPerProc int
	Seed             int64
	VLEvery          int
	TornReads        bool
	// MaxPreemptions is the context-switch bound: every schedule that
	// deviates from non-preemptive execution at most this many times is
	// executed (CHESS-style iterative context bounding). Small bounds
	// find the overwhelming majority of concurrency bugs.
	MaxPreemptions int
	// MaxRuns caps the total number of executions (0 = unlimited).
	MaxRuns int
	// Debug optionally injects a negative-control mutation.
	Debug core.Debug
}

// ExploreResult summarizes a systematic exploration.
type ExploreResult struct {
	// Runs is the number of schedules executed.
	Runs int
	// Findings holds, per failing schedule, the violation set or
	// linearizability error together with the decision prefix that
	// reproduces it.
	Findings []Finding
	// HelpedLLs counts LL operations that took the helped path, summed
	// over all runs (evidence of mechanism coverage).
	HelpedLLs int64
	// MaxLLSteps / MaxSCSteps are worst cases across all schedules.
	MaxLLSteps, MaxSCSteps int
	// Truncated is true if MaxRuns stopped the exploration early.
	Truncated bool
}

// Finding is one failing schedule.
type Finding struct {
	// Prefix is the decision prefix to replay with NewScripted.
	Prefix []int
	// Errs are the violations and/or linearizability error messages.
	Errs []string
}

// Explore systematically executes every schedule of the configured workload
// with at most MaxPreemptions preemptions: it first runs non-preemptively,
// then recursively forces a context switch at each step of each explored
// trace until the preemption budget is spent. All checks of Run apply to
// every schedule (invariants, step bounds implicitly via results, and
// linearizability when histories fit the checker).
func Explore(cfg ExploreConfig) (*ExploreResult, error) {
	if cfg.MaxPreemptions < 0 {
		return nil, fmt.Errorf("sim: negative preemption bound")
	}
	res := &ExploreResult{}
	if err := explore(cfg, nil, cfg.MaxPreemptions, res); err != nil {
		return nil, err
	}
	return res, nil
}

func explore(cfg ExploreConfig, prefix []int, budget int, res *ExploreResult) error {
	if cfg.MaxRuns > 0 && res.Runs >= cfg.MaxRuns {
		res.Truncated = true
		return nil
	}
	policy := NewScripted(prefix)
	run, err := Run(Config{
		N: cfg.N, W: cfg.W, OpsPerProc: cfg.OpsPerProc, Seed: cfg.Seed,
		VLEvery: cfg.VLEvery, TornReads: cfg.TornReads,
		Policy: policy, Debug: cfg.Debug,
	})
	if err != nil {
		return err
	}
	res.Runs++
	res.HelpedLLs += run.Stats.LLHelped
	if run.MaxLLSteps > res.MaxLLSteps {
		res.MaxLLSteps = run.MaxLLSteps
	}
	if run.MaxSCSteps > res.MaxSCSteps {
		res.MaxSCSteps = run.MaxSCSteps
	}

	var errs []string
	for _, v := range run.Violations {
		errs = append(errs, v.Error())
	}
	if len(errs) == 0 && len(run.History) <= check.MaxOps {
		if err := check.CheckLLSC(run.History, "0"); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		res.Findings = append(res.Findings, Finding{
			Prefix: append([]int(nil), prefix...),
			Errs:   errs,
		})
		// A broken schedule's suffix decisions are not meaningful;
		// don't branch deeper from it.
		return nil
	}
	if budget == 0 {
		return nil
	}

	// Branch: at every step at or beyond the prefix, force a switch to
	// every other runnable process.
	for i := len(prefix); i < len(policy.trace); i++ {
		for _, q := range policy.runnable[i] {
			if q == policy.trace[i] {
				continue
			}
			branch := make([]int, i+1)
			copy(branch, policy.trace[:i])
			branch[i] = q
			if err := explore(cfg, branch, budget-1, res); err != nil {
				return err
			}
			if cfg.MaxRuns > 0 && res.Runs >= cfg.MaxRuns {
				res.Truncated = true
				return nil
			}
		}
	}
	return nil
}
