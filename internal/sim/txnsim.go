package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"mwllsc/internal/check"
	"mwllsc/internal/txn"
)

// TxnShards is a simulated txn.ShardSet: K exact atomic multiword
// LL/SC/VL shards (per-shard version counter, per-process links) whose
// every operation costs one scheduler step. It also implements
// txn.Stepper, so the engine's own shared accesses — lock-word CASes and
// descriptor status transitions — are scheduler steps too: a process can
// be stalled or crashed between ANY two of the protocol's shared-memory
// accesses, including mid-commit with locks installed and mid-claim
// between a status check and its CAS.
type TxnShards struct {
	sched *Sched
	k     int
	words int
	vals  [][]uint64
	vers  []uint64
	links [][]uint64 // [shard][proc]: version at latest LL
	scs   int64
}

// NewTxnShards builds k simulated shards of the given width, each
// initialized to initial.
func NewTxnShards(sched *Sched, k, words int, initial []uint64) *TxnShards {
	if len(initial) != words {
		panic(fmt.Sprintf("sim: initial value has %d words, want %d", len(initial), words))
	}
	s := &TxnShards{sched: sched, k: k, words: words,
		vals:  make([][]uint64, k),
		vers:  make([]uint64, k),
		links: make([][]uint64, k),
	}
	for i := range s.vals {
		s.vals[i] = make([]uint64, words)
		copy(s.vals[i], initial)
		s.links[i] = make([]uint64, sched.n)
	}
	return s
}

// Shards implements txn.ShardSet.
func (s *TxnShards) Shards() int { return s.k }

// Words implements txn.ShardSet.
func (s *TxnShards) Words() int { return s.words }

// LL implements txn.ShardSet; one scheduler step.
func (s *TxnShards) LL(p, i int, dst []uint64) {
	s.sched.Yield(p)
	copy(dst, s.vals[i])
	s.links[i][p] = s.vers[i]
}

// SC implements txn.ShardSet; one scheduler step.
func (s *TxnShards) SC(p, i int, src []uint64) bool {
	s.sched.Yield(p)
	if s.links[i][p] != s.vers[i] {
		return false
	}
	copy(s.vals[i], src)
	s.vers[i]++
	s.scs++
	return true
}

// VL implements txn.ShardSet; one scheduler step.
func (s *TxnShards) VL(p, i int) bool {
	s.sched.Yield(p)
	return s.links[i][p] == s.vers[i]
}

// Step implements txn.Stepper: one scheduler step per engine-internal
// shared access (lock words, descriptor status words).
func (s *TxnShards) Step(p int) { s.sched.Yield(p) }

// Sync parks the calling process until granted a step (the start
// barrier, as Memory.Sync).
func (s *TxnShards) Sync(p int) { s.sched.Yield(p) }

// Value returns shard i's current value (for post-run assertions; call
// only after the scheduler has stopped).
func (s *TxnShards) Value(i int) []uint64 {
	out := make([]uint64, s.words)
	copy(out, s.vals[i])
	return out
}

var (
	_ txn.ShardSet = (*TxnShards)(nil)
	_ txn.Stepper  = (*TxnShards)(nil)
)

// TxnConfig describes one simulated execution of the transaction engine
// over simulated shards.
type TxnConfig struct {
	// N is the process count, K the shard count, W the user value width.
	N, K, W int
	// OpsPerProc is how many operations each process performs.
	OpsPerProc int
	// Span is how many distinct shards each multi-key update touches.
	Span int
	// Seed drives the schedule and the workloads.
	Seed int64
	// Policy schedules steps; nil defaults to NewRandom(Seed).
	Policy Policy
	// Crashes maps process ids to the step at which they crash — possibly
	// mid-commit, with a published descriptor and locks installed; their
	// transactions must be finished by whoever trips over them.
	Crashes map[int]int
	// SnapEvery makes every SnapEvery-th operation an atomic snapshot
	// instead of an update (0 = updates only).
	SnapEvery int
	// Transfer selects the conserving workload (move one unit from the
	// first to the last touched shard) instead of distinct increments.
	Transfer bool
	// MaxSteps bounds total steps (0 = a generous default). Exhausting it
	// is reported as a violation — the lock-freedom failure signature.
	MaxSteps int
}

// TxnResult is the outcome of a simulated transaction execution.
type TxnResult struct {
	// History holds all completed operations of non-crashed processes,
	// suitable for check.CheckTxns when small enough.
	History []check.TxnOp
	// Violations holds process panics and step-budget exhaustion; a
	// correct engine yields none under every seed without crashes, and
	// none but missing ops from crashed processes with them.
	Violations []error
	// Steps is the total number of shared-memory steps executed.
	Steps int
	// CommittedByProc counts committed updates per process.
	CommittedByProc []int64
	// Attempts is the total number of collect-lock attempts across all
	// committed updates (Attempts - sum(CommittedByProc) = aborted
	// attempts).
	Attempts int64
	// Snapshots counts completed atomic snapshots; Fallbacks counts those
	// that needed the descriptor path.
	Snapshots, Fallbacks int64
	// Final holds each shard's user value after the run.
	Final [][]uint64
	// LocksLeft counts shards still carrying a held lock reference after
	// the run — with no crashed processes it must be zero.
	LocksLeft int
}

// RunTxn executes the configured simulation and returns its result. The
// same TxnConfig (including Seed) always produces the identical result.
func RunTxn(cfg TxnConfig) (*TxnResult, error) {
	if cfg.N < 1 || cfg.K < 1 || cfg.W < 1 || cfg.OpsPerProc < 0 {
		return nil, fmt.Errorf("sim: invalid txn config N=%d K=%d W=%d ops=%d",
			cfg.N, cfg.K, cfg.W, cfg.OpsPerProc)
	}
	span := cfg.Span
	if span < 1 {
		span = 1
	}
	if span > cfg.K {
		span = cfg.K
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewRandom(cfg.Seed)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		// An update costs ~5*span steps uncontended; x128 slack covers
		// helping cascades, aborts, and starvation policies.
		maxSteps = 128*cfg.N*cfg.OpsPerProc*(5*span+2*cfg.K) + 4096
	}

	sched := NewSched(cfg.N, policy, maxSteps, cfg.Crashes)
	shards := NewTxnShards(sched, cfg.K, cfg.W, make([]uint64, cfg.W))
	eng, err := txn.New(shards, cfg.N)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	res := &TxnResult{CommittedByProc: make([]int64, cfg.N)}
	perProc := make([][]check.TxnOp, cfg.N)

	// Logical timestamps: all workload code runs one process at a time
	// (the scheduler serializes it), so a shared tick counter yields
	// unique stamps consistent with simulated real time.
	var tick int64
	stamp := func() int64 { tick++; return tick }

	fns := make([]func(int), cfg.N)
	for p := 0; p < cfg.N; p++ {
		fns[p] = func(p int) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*104729))
			snapBuf := make([][]uint64, cfg.K)
			for i := range snapBuf {
				snapBuf[i] = make([]uint64, cfg.W)
			}
			capOld := make([][]uint64, span)
			capNew := make([][]uint64, span)
			for j := range capOld {
				capOld[j] = make([]uint64, cfg.W)
				capNew[j] = make([]uint64, cfg.W)
			}
			shards.Sync(p) // start barrier: everything below runs inside granted windows
			for i := 0; i < cfg.OpsPerProc; i++ {
				if cfg.SnapEvery > 0 && (i+1)%cfg.SnapEvery == 0 {
					inv := stamp()
					attempts := eng.Snapshot(p, snapBuf)
					op := check.TxnOp{Proc: p, Kind: check.TxnSnap, Inv: inv, Res: stamp()}
					for sh := 0; sh < cfg.K; sh++ {
						op.Shards = append(op.Shards, sh)
						op.Old = append(op.Old, check.WordsValue(snapBuf[sh]))
					}
					perProc[p] = append(perProc[p], op)
					res.Snapshots++
					if attempts > txn.SnapshotRetries {
						res.Fallbacks++
					}
					continue
				}

				// Pick span distinct shards and a mutation, both fixed
				// before the (possibly re-run) transaction function.
				ds := append([]int(nil), rng.Perm(cfg.K)[:span]...)
				sort.Ints(ds)
				delta := uint64(rng.Intn(900) + 1)
				f := func(vals [][]uint64) {
					for j, v := range vals {
						copy(capOld[j], v)
					}
					if cfg.Transfer {
						for t := 0; t < cfg.W; t++ {
							vals[0][t] -= delta
							vals[len(vals)-1][t] += delta
						}
					} else {
						for j, v := range vals {
							for t := range v {
								v[t] += delta + uint64(j)
							}
						}
					}
					for j, v := range vals {
						copy(capNew[j], v)
					}
				}
				inv := stamp()
				attempts := eng.Update(p, ds, f)
				op := check.TxnOp{Proc: p, Kind: check.TxnUpdate, Shards: ds, Inv: inv, Res: stamp()}
				for j := range ds {
					op.Old = append(op.Old, check.WordsValue(capOld[j]))
					op.New = append(op.New, check.WordsValue(capNew[j]))
				}
				perProc[p] = append(perProc[p], op)
				res.CommittedByProc[p]++
				res.Attempts += int64(attempts)
			}
		}
	}

	res.Violations = sched.Run(fns)
	res.Steps = sched.Step()
	for p := range perProc {
		res.History = append(res.History, perProc[p]...)
	}
	res.Final = make([][]uint64, cfg.K)
	for i := range res.Final {
		res.Final[i] = shards.Value(i)
	}
	res.LocksLeft = eng.LockedShards()
	return res, nil
}
