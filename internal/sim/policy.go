package sim

import (
	"fmt"
	"math/rand"
)

// Policy picks the next process to step. runnable is non-empty and sorted
// ascending; the choice must be one of its elements. Policies are the
// adversary of the wait-freedom claim: any policy, however unfair to some
// processes, must leave every operation O(W)-bounded in its own steps.
type Policy interface {
	// Next returns the process to grant the next step.
	Next(runnable []int, step int) int
	// Name identifies the policy in reports.
	Name() string
}

// RoundRobin cycles through runnable processes.
type RoundRobin struct {
	last int
}

// NewRoundRobin returns a fair round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next implements Policy.
func (r *RoundRobin) Next(runnable []int, step int) int {
	for _, p := range runnable {
		if p > r.last {
			r.last = p
			return p
		}
	}
	r.last = runnable[0]
	return runnable[0]
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return "roundrobin" }

// Random picks uniformly among runnable processes with a seeded generator;
// same seed, same schedule.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded uniform-random policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Policy.
func (r *Random) Next(runnable []int, step int) int {
	return runnable[r.rng.Intn(len(runnable))]
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Starve schedules Victim only once every Every steps (or when it is the
// only runnable process), delegating other choices to Inner. It forces the
// paper's helping path: the victim's buffer reads span many successful SCs
// by others, so its LLs complete via Help[victim].
type Starve struct {
	// Victim is the starved process.
	Victim int
	// Every is the starvation period; the victim runs on steps that are
	// multiples of Every.
	Every int
	// Inner chooses among the non-victim processes.
	Inner Policy
}

// Next implements Policy.
func (s *Starve) Next(runnable []int, step int) int {
	victimIn := false
	others := make([]int, 0, len(runnable))
	for _, p := range runnable {
		if p == s.Victim {
			victimIn = true
		} else {
			others = append(others, p)
		}
	}
	if victimIn && (len(others) == 0 || step%s.Every == 0) {
		return s.Victim
	}
	if len(others) == 0 {
		return s.Victim
	}
	return s.Inner.Next(others, step)
}

// Name implements Policy.
func (s *Starve) Name() string {
	return fmt.Sprintf("starve(p%d,1/%d,%s)", s.Victim, s.Every, s.Inner.Name())
}

// Burst lets each chosen process run a fixed number of consecutive steps
// before re-choosing via Inner; long bursts stress buffer-reuse windows.
type Burst struct {
	// Len is the burst length in steps.
	Len int
	// Inner chooses the next burst owner.
	Inner Policy

	current int
	left    int
}

// Next implements Policy.
func (b *Burst) Next(runnable []int, step int) int {
	if b.left > 0 {
		for _, p := range runnable {
			if p == b.current {
				b.left--
				return p
			}
		}
	}
	b.current = b.Inner.Next(runnable, step)
	b.left = b.Len - 1
	return b.current
}

// Name implements Policy.
func (b *Burst) Name() string {
	return fmt.Sprintf("burst(%d,%s)", b.Len, b.Inner.Name())
}
