package sim

import (
	"fmt"
	"strings"
	"testing"

	"mwllsc/internal/check"
	"mwllsc/internal/core"
)

// Negative controls: the verification harness must catch deliberately
// broken variants of the algorithm. Each test switches off one mechanism
// via core.Debug and asserts that some check fires on at least one seed —
// otherwise the harness itself would be vacuous.

// runBroken runs seeds with the given mutation and returns how many seeds
// produced any finding (invariant violation or linearizability failure).
func runBroken(t *testing.T, debug core.Debug, policy func(seed int64) Policy, seeds int) int {
	t.Helper()
	caught := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		cfg := Config{
			N: 3, W: 4, OpsPerProc: 6, Seed: seed, Debug: debug,
		}
		if policy != nil {
			cfg.Policy = policy(seed)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		found := len(res.Violations) > 0
		if !found && len(res.History) <= check.MaxOps {
			if err := check.CheckLLSC(res.History, "0"); err != nil {
				found = true
			}
		}
		if found {
			caught++
		}
	}
	return caught
}

func TestHarnessCatchesSkipBankFix(t *testing.T) {
	caught := runBroken(t, core.Debug{SkipBankFix: true}, nil, 20)
	if caught == 0 {
		t.Fatal("no seed caught the missing Bank maintenance (I2 should fire)")
	}
}

func TestHarnessCatchesSkipHelping(t *testing.T) {
	// Starvation makes the missing help path observable: the victim's
	// buffer read spans >= 2N successful SCs and nobody rescues it.
	policy := func(seed int64) Policy {
		return &Starve{Victim: 0, Every: 250, Inner: NewRandom(seed)}
	}
	caught := 0
	lemma4Fired := false
	for seed := int64(0); seed < 20; seed++ {
		cfg := Config{
			N: 3, W: 8, OpsPerProc: 12, Seed: seed,
			Debug:     core.Debug{SkipHelping: true},
			Policy:    policy(seed),
			TornReads: true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			if strings.Contains(v.Error(), "lemma4") {
				lemma4Fired = true
			}
		}
		if len(res.Violations) > 0 {
			caught++
			continue
		}
		// Histories here exceed the checker budget; torn LL returns are
		// visible directly in the recorded values.
		for _, op := range res.History {
			if op.Kind == check.OpLL && len(op.Ret) >= 4 && op.Ret[:4] == "torn" {
				caught++
				break
			}
		}
	}
	if caught == 0 {
		t.Fatal("no seed caught the disabled helping mechanism")
	}
	if !lemma4Fired {
		t.Fatal("lemma4 checker never fired despite disabled helping under starvation")
	}
}

func TestHarnessCatchesSkipAnnounce(t *testing.T) {
	caught := runBroken(t, core.Debug{SkipAnnounce: true}, func(seed int64) Policy {
		return NewRandom(seed)
	}, 20)
	if caught == 0 {
		t.Fatal("no seed caught the missing announcement (Lemma 2 should fire)")
	}
}

// TestHarnessCleanOnCorrectAlgorithm is the matching positive control under
// the identical configurations used above.
func TestHarnessCleanOnCorrectAlgorithm(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(Config{N: 3, W: 4, OpsPerProc: 6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: unexpected violations on correct algorithm: %v", seed, res.Violations)
		}
		if len(res.History) <= check.MaxOps {
			if err := check.CheckLLSC(res.History, "0"); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func ExampleRun() {
	res, err := Run(Config{N: 2, W: 2, OpsPerProc: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(res.Violations))
	fmt.Println("all ops bounded:", res.MaxLLSteps <= 4*2+11 && res.MaxSCSteps <= 2+10)
	// Output:
	// violations: 0
	// all ops bounded: true
}
