package sim

import (
	"strings"
	"testing"

	"mwllsc/internal/core"
	"mwllsc/internal/mem"
)

// newCheckerHarness builds a Memory with the algorithm's word layout for n
// processes (without running the algorithm), so checker callbacks can be
// driven synthetically.
func newCheckerHarness(t *testing.T, n int) (*Memory, *InvariantChecker) {
	t.Helper()
	sched := NewSched(n, NewRandom(1), 1000, nil)
	m := NewMemory(sched, 1, false)
	g := core.Geom(n)
	m.NewWord(mem.WordX, 0, g.XValueBits(), g.PackX(0, 0))
	for k := 0; k < 2*n; k++ {
		m.NewWord(mem.WordBank, k, g.BufBits, uint64(k))
	}
	for p := 0; p < n; p++ {
		m.NewWord(mem.WordHelp, p, g.HelpValueBits(), g.PackHelp(0, 0))
	}
	m.NewBuffers(3*n, 2)
	c := NewInvariantChecker(m, n)
	return m, c
}

func hasViolation(c *InvariantChecker, substr string) bool {
	for _, v := range c.Violations() {
		if strings.Contains(v.Error(), substr) {
			return true
		}
	}
	return false
}

// The checkers must not be vacuous: each test below feeds a synthetic
// violation and asserts it is caught.

func TestCheckerCatchesI1DuplicateOwnership(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	// Process 1 "withdraws" claiming process 0's buffer: duplicate m_p.
	c.OnTrace(1, mem.Event{Kind: mem.EvLLWithdrawn, Arg: c.mybuf[0]})
	m.sched.started = true
	c.CheckStep()
	if !hasViolation(c, "I1") {
		t.Fatal("duplicate buffer ownership not caught")
	}
}

func TestCheckerCatchesI1BankCollision(t *testing.T) {
	_, c := newCheckerHarness(t, 2)
	// A process claims buffer 1, which Bank[1] also holds.
	c.OnTrace(0, mem.Event{Kind: mem.EvSCPublished, Arg: 1})
	c.CheckStep()
	if !hasViolation(c, "I1") {
		t.Fatal("ownership colliding with a Bank buffer not caught")
	}
}

func TestCheckerCatchesLemma2DoubleHelp(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	hw := m.words[wordKey{mem.WordHelp, 0}]
	// Announce, then two helper writes within one window.
	c.OnMutate(hw, 0, 0, g.PackHelp(1, 4), true)
	c.OnMutate(hw, 1, 0, g.PackHelp(0, 5), false)
	c.OnMutate(hw, 1, 0, g.PackHelp(0, 6), false)
	if !hasViolation(c, "lemma2") {
		t.Fatal("double help write not caught")
	}
}

func TestCheckerCatchesLemma2WrongFlag(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	hw := m.words[wordKey{mem.WordHelp, 0}]
	c.OnMutate(hw, 0, 0, g.PackHelp(1, 4), true)
	// A helper SC writing flag 1 violates (S2).
	c.OnMutate(hw, 1, 0, g.PackHelp(1, 5), false)
	if !hasViolation(c, "lemma2(S2)") {
		t.Fatal("help SC with flag 1 not caught")
	}
}

func TestCheckerCatchesLemma2ForeignAnnounce(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	hw := m.words[wordKey{mem.WordHelp, 0}]
	// Process 1 plain-writes process 0's Help word.
	c.OnMutate(hw, 1, 0, g.PackHelp(1, 4), true)
	if !hasViolation(c, "help discipline") {
		t.Fatal("foreign announcement not caught")
	}
}

func TestCheckerCatchesLemma2MissingHelpAtWithdrawal(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	hw := m.words[wordKey{mem.WordHelp, 0}]
	c.OnMutate(hw, 0, 0, g.PackHelp(1, 4), true)
	// Withdrawal with zero Help writes: violates (S1).
	c.OnTrace(0, mem.Event{Kind: mem.EvLLWithdrawn, Arg: 4})
	if !hasViolation(c, "lemma2(S1)") {
		t.Fatal("withdrawal without exactly one help write not caught")
	}
}

func TestCheckerCatchesI2MissingBankWrite(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	xw := m.words[wordKey{mem.WordX, 0}]
	// Two X changes with no Bank write in the second epoch.
	c.OnMutate(xw, 0, g.PackX(0, 0), g.PackX(6, 1), false)
	c.OnMutate(xw, 1, g.PackX(6, 1), g.PackX(7, 2), false)
	if !hasViolation(c, "I2") {
		t.Fatal("missing Bank write not caught")
	}
}

func TestCheckerCatchesI2WrongBankSlot(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	xw := m.words[wordKey{mem.WordX, 0}]
	bw := m.words[wordKey{mem.WordBank, 3}]
	c.OnMutate(xw, 0, g.PackX(0, 0), g.PackX(6, 1), false)
	// Epoch with X=(6,1): the only legal write is Bank[1] <- 6.
	c.OnMutate(bw, 0, 3, 6, false)
	c.OnMutate(xw, 1, g.PackX(6, 1), g.PackX(7, 2), false)
	if !hasViolation(c, "I2") {
		t.Fatal("wrong Bank slot write not caught")
	}
}

func TestCheckerCatchesI2WriteInInitialEpoch(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	xw := m.words[wordKey{mem.WordX, 0}]
	bw := m.words[wordKey{mem.WordBank, 0}]
	c.OnMutate(bw, 0, 0, 0, false) // Claim 1: no runtime write may happen here
	c.OnMutate(xw, 0, g.PackX(0, 0), g.PackX(6, 1), false)
	if !hasViolation(c, "claim1") {
		t.Fatal("Bank write during initial epoch not caught")
	}
}

func TestCheckerCatchesLemma3EarlyReuse(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	m.sched.started = true
	xw := m.words[wordKey{mem.WordX, 0}]
	// Publish buffer 6, then write it after only one further X change.
	c.OnMutate(xw, 0, g.PackX(0, 0), g.PackX(6, 1), false)
	c.OnBufWrite(6, 1)
	if !hasViolation(c, "lemma3") {
		t.Fatal("early buffer reuse not caught")
	}
}

func TestCheckerAllowsReuseAfter2N(t *testing.T) {
	m, c := newCheckerHarness(t, 1) // 2N = 2
	g := core.Geom(1)
	m.sched.started = true
	xw := m.words[wordKey{mem.WordX, 0}]
	bw := m.words[wordKey{mem.WordBank, 0}]
	b1 := m.words[wordKey{mem.WordBank, 1}]
	// Three X changes with proper Bank maintenance, then reuse of the
	// buffer published first: legal.
	c.OnMutate(xw, 0, g.PackX(0, 0), g.PackX(2, 1), false)
	c.OnMutate(b1, 0, 1, 2, false) // Bank[1] <- 2 during epoch (2,1)
	c.OnMutate(xw, 0, g.PackX(2, 1), g.PackX(1, 0), false)
	c.OnMutate(bw, 0, 0, 1, false) // Bank[0] <- 1 during epoch (1,0)
	c.OnMutate(xw, 0, g.PackX(1, 0), g.PackX(0, 1), false)
	c.OnBufWrite(2, 0) // published 3 changes ago, 2N=2 -> legal
	for _, v := range c.Violations() {
		t.Errorf("unexpected violation: %v", v)
	}
}

func TestCheckerCatchesLemma4UnhelpedSlowReader(t *testing.T) {
	m, c := newCheckerHarness(t, 2) // 2N-1 = 3
	g := core.Geom(2)
	xw := m.words[wordKey{mem.WordX, 0}]
	c.OnTrace(0, mem.Event{Kind: mem.EvLLReadX})
	// Four X changes while process 0 sits between Lines 2 and 4.
	prev := g.PackX(0, 0)
	for i := 1; i <= 4; i++ {
		next := g.PackX(i%6, i%4)
		c.OnMutate(xw, 1, prev, next, false)
		prev = next
	}
	c.OnTrace(0, mem.Event{Kind: mem.EvLLCheckedHelp, Arg: 0}) // claims unhelped
	if !hasViolation(c, "lemma4") {
		t.Fatal("unhelped LL across 2N X-changes not caught")
	}
}

func TestCheckerAllowsLemma4HelpedReader(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	xw := m.words[wordKey{mem.WordX, 0}]
	c.OnTrace(0, mem.Event{Kind: mem.EvLLReadX})
	prev := g.PackX(0, 0)
	for i := 1; i <= 4; i++ {
		next := g.PackX(i%6, i%4)
		c.OnMutate(xw, 1, prev, next, false)
		prev = next
	}
	c.OnTrace(0, mem.Event{Kind: mem.EvLLCheckedHelp, Arg: 1}) // helped: fine
	if hasViolation(c, "lemma4") {
		t.Fatal("helped LL flagged by lemma4 checker")
	}
}

func TestCheckerCatchesConcurrentBufferWriters(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	m.buffers[0].writers[3] = 2 // synthesize two writers inside BUF[3]
	c.CheckStep()
	if !hasViolation(c, "exclusive-writer") {
		t.Fatal("concurrent buffer writers not caught")
	}
}

func TestCheckFinalCatchesTrailingEpochGarbage(t *testing.T) {
	m, c := newCheckerHarness(t, 2)
	g := core.Geom(2)
	xw := m.words[wordKey{mem.WordX, 0}]
	bw3 := m.words[wordKey{mem.WordBank, 3}]
	c.OnMutate(xw, 0, g.PackX(0, 0), g.PackX(6, 1), false)
	// Trailing epoch has X=(6,1); a write to Bank[3] is illegal.
	c.OnMutate(bw3, 0, 3, 9, false)
	c.CheckFinal()
	if !hasViolation(c, "I2(final)") {
		t.Fatal("trailing-epoch Bank write not caught")
	}
}
