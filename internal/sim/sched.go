// Package sim executes the multiword LL/SC algorithm under a deterministic,
// adversarially controlled scheduler, with every shared-memory access as an
// atomic step. It is the verification substrate for the paper's §3 proof:
//
//   - arbitrary interleavings (seeded random / round-robin / starvation
//     policies), process crashes, and safe-register torn reads;
//   - runtime checking of the proof's invariants (I1), (I2) and Lemmas 2-3;
//   - exact step accounting per operation, turning Theorem 1's O(W) time
//     bound into an assertable inequality;
//   - deterministic histories for the linearizability checker.
//
// The concurrency model matches the paper's: N asynchronous processes, one
// shared-memory step at a time, scheduled by an adversary. Technically the
// processes are goroutines, but exactly one is ever runnable: the scheduler
// grants a token, the process executes through its next shared access, then
// parks. All simulator state is therefore accessed race-free, in an order
// fully determined by the policy and seed.
package sim

import (
	"fmt"
	"sort"
	"sync"
)

// killed is the panic payload used to unwind parked processes at shutdown.
type killed struct{}

type ackMsg struct {
	p    int
	done bool
	err  error
}

// Sched is the deterministic step scheduler. Create with NewSched, register
// AfterStep hooks, then Run.
type Sched struct {
	n        int
	policy   Policy
	maxSteps int
	crashes  map[int]int // process -> step index at which it crashes

	step    int
	started bool

	token []chan struct{}
	ack   chan ackMsg
	kill  chan struct{}
	wg    sync.WaitGroup

	parked   []bool
	crashed  []bool
	finished []bool
	stepsOf  []int // steps granted to each process

	afterStep []func()
	errs      []error
}

// NewSched returns a scheduler for n processes under the given policy.
// maxSteps bounds the total number of shared-memory steps (a livelock
// fuse — the algorithm under test is wait-free, so generous bounds are
// never hit by correct runs). crashes maps process ids to the step at
// which they permanently stop being scheduled (nil for none).
func NewSched(n int, policy Policy, maxSteps int, crashes map[int]int) *Sched {
	s := &Sched{
		n:        n,
		policy:   policy,
		maxSteps: maxSteps,
		crashes:  crashes,
		token:    make([]chan struct{}, n),
		ack:      make(chan ackMsg, 2*n),
		kill:     make(chan struct{}),
		parked:   make([]bool, n),
		crashed:  make([]bool, n),
		finished: make([]bool, n),
		stepsOf:  make([]int, n),
	}
	for p := range s.token {
		s.token[p] = make(chan struct{})
	}
	return s
}

// AfterStep registers a hook invoked after every completed step (and once
// before the first), while all processes are parked; hooks may safely read
// all simulator state. Register before Run.
func (s *Sched) AfterStep(h func()) { s.afterStep = append(s.afterStep, h) }

// Step returns the number of steps granted so far. Safe to call from the
// running process (everyone else is parked) and from hooks.
func (s *Sched) Step() int { return s.step }

// StepsOf returns the number of steps granted to process p so far.
func (s *Sched) StepsOf(p int) int { return s.stepsOf[p] }

// Crashed reports whether p was crashed by the adversary.
func (s *Sched) Crashed(p int) bool { return s.crashed[p] }

// Yield parks the calling process p until the scheduler grants it a step.
// Called by the simulated memory before every shared access. Outside Run
// (the single-threaded setup phase) it is a no-op.
func (s *Sched) Yield(p int) {
	if !s.started {
		return
	}
	select {
	case s.ack <- ackMsg{p: p}:
	case <-s.kill:
		panic(killed{})
	}
	select {
	case <-s.token[p]:
	case <-s.kill:
		panic(killed{})
	}
}

// Run executes fns[p] as process p for each p, scheduling their shared
// accesses one at a time until every non-crashed process returns (or the
// step budget is exhausted). It returns all errors collected: process
// panics, step-budget exhaustion, and errors appended by hooks via Fail.
func (s *Sched) Run(fns []func(p int)) []error {
	if len(fns) != s.n {
		return []error{fmt.Errorf("sim: %d functions for %d processes", len(fns), s.n)}
	}
	s.started = true
	for p := range fns {
		s.wg.Add(1)
		go s.runProc(p, fns[p])
	}

	awaited := s.n // acks outstanding before all live processes are parked
	for {
		aborted := false
		for awaited > 0 {
			m := <-s.ack
			if m.err != nil {
				s.errs = append(s.errs, m.err)
				aborted = true
			}
			if m.done {
				s.finished[m.p] = true
			} else {
				s.parked[m.p] = true
			}
			awaited--
		}
		if aborted {
			break
		}
		for _, h := range s.afterStep {
			h()
		}
		for p, when := range s.crashes {
			if s.step >= when {
				s.crashed[p] = true
			}
		}

		runnable := s.runnable()
		if len(runnable) == 0 {
			break // every non-crashed process finished
		}
		if s.step >= s.maxSteps {
			s.errs = append(s.errs, fmt.Errorf(
				"sim: step budget %d exhausted with %d processes unfinished",
				s.maxSteps, len(runnable)))
			break
		}

		p := s.policy.Next(runnable, s.step)
		if !s.parked[p] || s.crashed[p] || s.finished[p] {
			s.errs = append(s.errs, fmt.Errorf("sim: policy %s chose invalid process %d", s.policy.Name(), p))
			break
		}
		s.step++
		s.stepsOf[p]++
		s.parked[p] = false
		awaited = 1
		s.token[p] <- struct{}{}
	}

	s.abort()
	return s.errs
}

// runnable lists parked, non-crashed, unfinished processes in ascending
// order (so policies are deterministic).
func (s *Sched) runnable() []int {
	var r []int
	for p := 0; p < s.n; p++ {
		if s.parked[p] && !s.crashed[p] && !s.finished[p] {
			r = append(r, p)
		}
	}
	sort.Ints(r)
	return r
}

func (s *Sched) runProc(p int, fn func(p int)) {
	defer s.wg.Done()
	defer func() {
		r := recover()
		switch r := r.(type) {
		case nil:
			s.ack <- ackMsg{p: p, done: true}
		case killed:
			s.ack <- ackMsg{p: p, done: true}
		default:
			s.ack <- ackMsg{p: p, done: true, err: fmt.Errorf("sim: process %d panicked: %v", p, r)}
		}
	}()
	fn(p)
}

// abort unwinds all parked processes and joins every goroutine.
func (s *Sched) abort() {
	close(s.kill)
	// Drain acks so no process blocks sending its final done message.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.wg.Wait()
	}()
	for {
		select {
		case m := <-s.ack:
			if m.err != nil {
				s.errs = append(s.errs, m.err)
			}
		case <-done:
			return
		}
	}
}
