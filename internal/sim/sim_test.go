package sim

import (
	"fmt"
	"reflect"
	"testing"

	"mwllsc/internal/check"
)

// requireClean fails the test if the run reported any violation.
func requireClean(t *testing.T, res *Result, label string) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("%s: %v", label, v)
	}
	if t.Failed() {
		t.FailNow()
	}
}

func TestRandomSchedulesCleanAndLinearizable(t *testing.T) {
	configs := []struct{ n, w, ops int }{
		{1, 1, 6},
		{2, 2, 5},
		{3, 4, 4},
		{4, 3, 3},
	}
	for _, cfg := range configs {
		for seed := int64(0); seed < 25; seed++ {
			res, err := Run(Config{
				N: cfg.n, W: cfg.w, OpsPerProc: cfg.ops, Seed: seed, VLEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("n%d w%d seed%d", cfg.n, cfg.w, seed)
			requireClean(t, res, label)
			if len(res.History) <= check.MaxOps {
				if err := check.CheckLLSC(res.History, "0"); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 3, W: 4, OpsPerProc: 5, Seed: 42, VLEvery: 3, TornReads: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
	if !reflect.DeepEqual(a.History, b.History) {
		t.Fatal("histories differ across identical runs")
	}
	if a.TornReads != b.TornReads {
		t.Fatalf("torn-read counts differ: %d vs %d", a.TornReads, b.TornReads)
	}
}

func TestRoundRobinAndBurstPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy Policy
	}{
		{"roundrobin", NewRoundRobin()},
		{"burst", &Burst{Len: 7, Inner: NewRandom(5)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Config{
				N: 4, W: 4, OpsPerProc: 4, Seed: 9, Policy: tc.policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			requireClean(t, res, tc.name)
			if len(res.History) <= check.MaxOps {
				if err := check.CheckLLSC(res.History, "0"); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestStarvationForcesHelping pins the paper's helping mechanism: a reader
// starved across many successful SCs must complete its LL via Help[p]
// (paper §2.2), still satisfying all invariants and linearizability.
func TestStarvationForcesHelping(t *testing.T) {
	helpedSomewhere := false
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(Config{
			N: 3, W: 6, OpsPerProc: 4, Seed: seed,
			// The victim gets one step per 150; with N=3, 2N=6 successful
			// SCs by the other two easily overlap its buffer read.
			Policy:    &Starve{Victim: 0, Every: 150, Inner: NewRandom(seed)},
			TornReads: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, res, fmt.Sprintf("seed%d", seed))
		if len(res.History) <= check.MaxOps {
			if err := check.CheckLLSC(res.History, "0"); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if res.Stats.LLHelped > 0 {
			helpedSomewhere = true
		}
	}
	if !helpedSomewhere {
		t.Fatal("no LL was ever helped under starvation; the adversary is too weak")
	}
}

// TestTornReadsHappenAndAreHarmless verifies the safe-register adversary
// actually fires (garbage was returned) and the algorithm still behaves.
func TestTornReadsHappenAndAreHarmless(t *testing.T) {
	var totalTorn int64
	for seed := int64(0); seed < 12; seed++ {
		res, err := Run(Config{
			N: 3, W: 8, OpsPerProc: 14, Seed: seed,
			// The victim advances one step per 250 while the other two
			// processes cycle buffers through many successful SCs, so its
			// multi-step buffer reads overlap reuse writes.
			Policy:    &Starve{Victim: 1, Every: 250, Inner: NewRandom(seed * 3)},
			TornReads: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, res, fmt.Sprintf("seed%d", seed))
		if len(res.History) <= check.MaxOps {
			if err := check.CheckLLSC(res.History, "0"); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		totalTorn += res.TornReads
	}
	if totalTorn == 0 {
		t.Fatal("no torn read ever occurred; the safe-register adversary is vacuous")
	}
}

// TestCrashWaitFreedom crashes processes mid-run; the survivors must
// complete every operation and invariants must hold throughout — the
// wait-freedom claim.
func TestCrashWaitFreedom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(Config{
			N: 4, W: 4, OpsPerProc: 6, Seed: seed,
			Crashes: map[int]int{1: 40, 3: 90},
		})
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, res, fmt.Sprintf("seed%d", seed))
		// Survivors completed all their SC rounds (completions are in the
		// history: OpsPerProc SC records each).
		counts := map[int]int{}
		for _, op := range res.History {
			if op.Kind == check.OpSC {
				counts[op.Proc]++
			}
		}
		for _, p := range []int{0, 2} {
			if counts[p] != 6 {
				t.Fatalf("seed %d: survivor %d completed %d/6 SCs", seed, p, counts[p])
			}
		}
	}
}

// TestCrashMidAnnounceDoesNotBlockOthers crashes a process very early —
// plausibly between its announcement and withdrawal — and checks survivors
// still run to completion.
func TestCrashMidAnnounceDoesNotBlockOthers(t *testing.T) {
	for _, crashStep := range []int{1, 2, 3, 5, 8, 13, 21} {
		res, err := Run(Config{
			N: 3, W: 4, OpsPerProc: 5, Seed: int64(crashStep),
			Crashes: map[int]int{0: crashStep},
		})
		if err != nil {
			t.Fatal(err)
		}
		requireClean(t, res, fmt.Sprintf("crash@%d", crashStep))
	}
}

// TestTheorem1StepBounds asserts the exact wait-free step bounds of this
// implementation under the simulator's cost model (each word access = 1
// step, a W-word buffer write = W+2 steps):
//
//	LL <= 4W+11, SC <= W+10, VL = 1.
//
// The bounds hold for every process under every schedule, including
// starvation — Theorem 1's O(W)/O(W)/O(1) made concrete.
func TestTheorem1StepBounds(t *testing.T) {
	for _, w := range []int{1, 2, 8, 32} {
		for seed := int64(0); seed < 6; seed++ {
			for _, policy := range []Policy{
				NewRandom(seed),
				&Starve{Victim: 0, Every: 100, Inner: NewRandom(seed)},
			} {
				res, err := Run(Config{
					N: 3, W: w, OpsPerProc: 5, Seed: seed, VLEvery: 2, Policy: policy,
				})
				if err != nil {
					t.Fatal(err)
				}
				requireClean(t, res, fmt.Sprintf("w%d seed%d", w, seed))
				if res.MaxLLSteps > 4*w+11 {
					t.Errorf("w=%d seed=%d policy=%s: LL took %d steps > bound %d",
						w, seed, policy.Name(), res.MaxLLSteps, 4*w+11)
				}
				if res.MaxSCSteps > w+10 {
					t.Errorf("w=%d seed=%d policy=%s: SC took %d steps > bound %d",
						w, seed, policy.Name(), res.MaxSCSteps, w+10)
				}
				if res.MaxVLSteps > 1 {
					t.Errorf("w=%d seed=%d policy=%s: VL took %d steps > 1",
						w, seed, policy.Name(), res.MaxVLSteps)
				}
			}
		}
	}
}

// TestSCSuccessesAccumulate sanity-checks that contended runs actually
// perform successful SCs from several processes.
func TestSCSuccessesAccumulate(t *testing.T) {
	res, err := Run(Config{N: 4, W: 2, OpsPerProc: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res, "accumulate")
	var total int64
	for _, c := range res.SCSuccessesByProc {
		total += c
	}
	if total < 10 {
		t.Fatalf("only %d successful SCs across the run", total)
	}
	if res.Stats.SCSuccess != total {
		t.Fatalf("stats disagree: %d vs %d", res.Stats.SCSuccess, total)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := Run(Config{N: 0, W: 1}); err == nil {
		t.Fatal("accepted N=0")
	}
	if _, err := Run(Config{N: 1, W: 0}); err == nil {
		t.Fatal("accepted W=0")
	}
}
