package sim

import (
	"fmt"

	"mwllsc/internal/core"
	"mwllsc/internal/mem"
)

// InvariantChecker validates, after every simulated step, the key safety
// properties established in §3 of the paper:
//
//   - (I1): the buffers owned by processes (m_p) and the buffers holding
//     the 2N most recent values (b_0..b_2N-1, with b_{X.seq} = X.buf) are
//     pairwise distinct — the heart of why buffer handoff never races.
//   - (I2): between consecutive writes of X, exactly one Bank location is
//     written — Bank[s] = b where (b, s) was X's value in that interval —
//     and no other Bank location changes.
//   - Lemma 2 (S1)-(S3): between a process's help announcement (Line 1)
//     and its withdrawal (Line 10), exactly one write lands in Help[p],
//     it has the form (0, _), and nothing further is written until the
//     next announcement.
//   - Lemma 3: a buffer published by a successful SC is not written again
//     until X changes at least 2N more times.
//   - Exclusive buffer writers: no two processes are ever concurrently
//     inside a WriteBuf of the same buffer (consequence of I1 the
//     simulator's safe-register adversary relies on).
//
// Violations are collected, not panicked, so a failing schedule reports
// all its findings with the seed that reproduces it.
type InvariantChecker struct {
	m *Memory
	g core.Geometry
	n int

	// Per-process views maintained from trace events.
	mybuf    []int
	inRegion []bool // paper's "PC in (2..10)": between Lines 1 and 10

	// Lemma 2 accounting.
	announced  []bool
	helpWrites []int

	// Lemma 4 accounting: xWrites count at each process's Line 2 (-1 when
	// no LL is between Lines 2 and 4).
	readXAt []int

	// I2 accounting.
	xWrites       int // number of X mutations observed
	bankWrites    []bankWrite
	lastXOld      uint64 // X value during the current epoch
	checkedEpochs int

	// Lemma 3 accounting.
	guards []bufGuard

	// Exclusive-writer accounting.
	bufWriters map[int]int

	violations []error
}

type bankWrite struct {
	idx int
	val uint64
}

type bufGuard struct {
	buf    int
	expiry int // xWrites count at which writes become legal again
}

// NewInvariantChecker returns a checker for an n-process object whose
// words live in m. Register it with m.Observe and s.AfterStep(c.CheckStep).
func NewInvariantChecker(m *Memory, n int) *InvariantChecker {
	c := &InvariantChecker{
		m:          m,
		g:          core.Geom(n),
		n:          n,
		mybuf:      make([]int, n),
		inRegion:   make([]bool, n),
		announced:  make([]bool, n),
		helpWrites: make([]int, n),
		readXAt:    make([]int, n),
		lastXOld:   core.Geom(n).PackX(0, 0),
		bufWriters: make(map[int]int),
	}
	for p := 0; p < n; p++ {
		c.mybuf[p] = 2*n + p // initialization: mybuf_p = 2N + p
		c.readXAt[p] = -1
	}
	// Lemma 3 guard for the initial value: BUF[0] is "published" by the
	// initialization and must survive the first 2N changes of X.
	c.guards = append(c.guards, bufGuard{buf: 0, expiry: 2 * n})
	return c
}

// Violations returns all violations found so far.
func (c *InvariantChecker) Violations() []error { return c.violations }

func (c *InvariantChecker) failf(format string, args ...any) {
	c.violations = append(c.violations, fmt.Errorf(format, args...))
}

// OnTrace implements Observer: it tracks each process's region and buffer
// ownership exactly as the paper's m_p definition requires.
func (c *InvariantChecker) OnTrace(p int, ev mem.Event) {
	switch ev.Kind {
	case mem.EvLLAnnounced:
		c.inRegion[p] = true
	case mem.EvLLReadX:
		c.readXAt[p] = c.xWrites
	case mem.EvLLCheckedHelp:
		// Lemma 4: an LL that was NOT helped by its Line 4 check saw at
		// most 2N-1 changes of X between Lines 2 and 4.
		if ev.Arg == 0 && c.readXAt[p] >= 0 {
			if d := c.xWrites - c.readXAt[p]; d > 2*c.n-1 {
				c.failf("lemma4: process %d unhelped after %d X-changes between Lines 2 and 4 (max %d)",
					p, d, 2*c.n-1)
			}
		}
		c.readXAt[p] = -1
	case mem.EvLLWithdrawn:
		c.inRegion[p] = false
		c.mybuf[p] = ev.Arg
		// Lemma 2 (S1): exactly one Help[p] write must have landed
		// between the announcement and the withdrawal.
		if c.announced[p] && c.helpWrites[p] != 1 {
			c.failf("lemma2(S1): process %d withdrew with %d Help writes, want 1",
				p, c.helpWrites[p])
		}
	case mem.EvSCHandoff, mem.EvSCPublished:
		c.mybuf[p] = ev.Arg
	}
}

// OnMutate implements Observer.
func (c *InvariantChecker) OnMutate(w *Word, p int, old, new uint64, isWrite bool) {
	switch w.Kind() {
	case mem.WordHelp:
		q := w.Idx()
		if isWrite {
			// Line 1 announcement: only the owner writes its own Help
			// word, and always with helpme = 1.
			if p != q {
				c.failf("help discipline: process %d plain-wrote Help[%d]", p, q)
			}
			if c.g.HelpFlag(new) != 1 {
				c.failf("help discipline: announcement with flag 0: %#x", new)
			}
			c.announced[q] = true
			c.helpWrites[q] = 0
			return
		}
		// SC mutation: Line 9 (owner withdrawing) or Line 15 (helper).
		if c.g.HelpFlag(new) != 0 {
			c.failf("lemma2(S2): SC wrote (1,_) into Help[%d]: %#x", q, new)
		}
		c.helpWrites[q]++
		if c.helpWrites[q] > 1 {
			c.failf("lemma2(S1/S3): %d-th write into Help[%d] within one announcement window",
				c.helpWrites[q], q)
		}
		if !c.announced[q] {
			c.failf("lemma2(S3): write into Help[%d] outside any announcement window", q)
		}

	case mem.WordBank:
		c.bankWrites = append(c.bankWrites, bankWrite{idx: w.Idx(), val: new})

	case mem.WordX:
		c.xWrites++
		// I2: validate the epoch that just ended, during which X held
		// lastXOld = (b, s).
		b, s := c.g.XBuf(c.lastXOld), c.g.XSeq(c.lastXOld)
		if c.xWrites == 1 {
			// First epoch: Bank[0] = 0 is pre-initialized; Claim 1 shows
			// no runtime write happens.
			if len(c.bankWrites) != 0 {
				c.failf("I2(claim1): %d Bank writes during the initial epoch, want 0",
					len(c.bankWrites))
			}
		} else {
			if len(c.bankWrites) != 1 {
				c.failf("I2: %d Bank writes during epoch (X=(%d,%d)), want exactly 1",
					len(c.bankWrites), b, s)
			}
			for _, bw := range c.bankWrites {
				if bw.idx != s || bw.val != uint64(b) {
					c.failf("I2: Bank[%d] <- %d during epoch (X=(%d,%d)), want Bank[%d] <- %d",
						bw.idx, bw.val, b, s, s, b)
				}
			}
		}
		c.checkedEpochs++
		c.bankWrites = c.bankWrites[:0]
		c.lastXOld = new

		// Lemma 3: the newly published buffer must stay untouched for the
		// next 2N changes of X.
		c.guards = append(c.guards, bufGuard{
			buf:    c.g.XBuf(new),
			expiry: c.xWrites + 2*c.n,
		})
	}
}

// OnBufWrite implements Observer: Lemma 3 and writer exclusivity. Setup
// phase writes (object initialization, before the scheduler starts) are
// exempt — the Lemma 3 guard on BUF[0] covers the run itself.
func (c *InvariantChecker) OnBufWrite(buf, p int) {
	if !c.m.sched.started {
		return
	}
	live := c.guards[:0]
	for _, g := range c.guards {
		if c.xWrites >= g.expiry {
			continue // expired
		}
		live = append(live, g)
		if g.buf == buf {
			c.failf("lemma3: process %d wrote BUF[%d] only %d X-changes after it was published (need >= %d)",
				p, buf, c.xWrites-(g.expiry-2*c.n), 2*c.n)
		}
	}
	c.guards = live
}

// CheckStep runs the per-step global invariant (I1); register with
// Sched.AfterStep.
func (c *InvariantChecker) CheckStep() {
	x := c.m.WordValue(mem.WordX, 0)
	xb, xs := c.g.XBuf(x), c.g.XSeq(x)

	owner := make(map[int]string, 3*c.n)
	record := func(buf int, who string) {
		if prev, dup := owner[buf]; dup {
			c.failf("I1: buffer %d claimed by both %s and %s (X=(%d,%d))",
				buf, prev, who, xb, xs)
			return
		}
		owner[buf] = who
	}

	// m_p for every process.
	for p := 0; p < c.n; p++ {
		m := c.mybuf[p]
		if c.inRegion[p] {
			if h := c.m.WordValue(mem.WordHelp, p); c.g.HelpFlag(h) == 0 {
				m = c.g.HelpBuf(h)
			}
		}
		record(m, fmt.Sprintf("m_%d", p))
	}
	// b_i for every sequence number: Bank[i], except b_{X.seq} = X.buf.
	for i := 0; i < 2*c.n; i++ {
		b := int(c.m.WordValue(mem.WordBank, i))
		if i == xs {
			b = xb
		}
		record(b, fmt.Sprintf("b_%d", i))
	}

	// Exclusive buffer writers (uses the live writers counters).
	for _, bufs := range c.m.buffers {
		for buf, n := range bufs.writers {
			if n > 1 {
				c.failf("exclusive-writer: %d concurrent writers inside BUF[%d]", n, buf)
			}
		}
	}
}

// CheckFinal validates the trailing (incomplete) I2 epoch; call after the
// run completes.
func (c *InvariantChecker) CheckFinal() {
	b, s := c.g.XBuf(c.lastXOld), c.g.XSeq(c.lastXOld)
	if len(c.bankWrites) > 1 {
		c.failf("I2(final): %d Bank writes in trailing epoch, want <= 1", len(c.bankWrites))
	}
	for _, bw := range c.bankWrites {
		if c.xWrites == 0 {
			c.failf("I2(claim1,final): Bank write before any X change")
			continue
		}
		if bw.idx != s || bw.val != uint64(b) {
			c.failf("I2(final): Bank[%d] <- %d in trailing epoch (X=(%d,%d))", bw.idx, bw.val, b, s)
		}
	}
}

var _ Observer = (*InvariantChecker)(nil)
