package sim

import (
	"fmt"
	"testing"

	"mwllsc/internal/check"
	"mwllsc/internal/txn"
)

// txnInitial returns the per-shard initial value strings for CheckTxns
// (RunTxn starts every shard at all-zeros).
func txnInitial(k, w int) []string {
	init := make([]string, k)
	for i := range init {
		init[i] = check.WordsValue(make([]uint64, w))
	}
	return init
}

// TestTxnHistoriesLinearizable drives competing multi-key transactions on
// overlapping shard sets plus atomic snapshots under seeded-random
// adversarial schedules and verifies every history against the sequential
// multi-shard specification.
func TestTxnHistoriesLinearizable(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := TxnConfig{
			N: 3, K: 4, W: 2, OpsPerProc: 5, Span: 2,
			SnapEvery: 3, Seed: int64(seed),
		}
		res, err := RunTxn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, res.Violations)
		}
		if res.LocksLeft != 0 {
			t.Fatalf("seed %d: %d shards still carry a lock word after a crash-free run", seed, res.LocksLeft)
		}
		if err := check.CheckTxns(res.History, cfg.K, txnInitial(cfg.K, cfg.W)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTxnLinearizableUnderStarvation is the stalled-writer-mid-commit
// schedule: one process is starved to one step in 250, so its published
// descriptors sit mid-lock-phase for ages and the others constantly trip
// over its locks and must help. Histories must stay linearizable and the
// starved writer's transactions must still commit exactly once.
func TestTxnLinearizableUnderStarvation(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := TxnConfig{
			N: 3, K: 4, W: 1, OpsPerProc: 5, Span: 3,
			Seed:   int64(seed),
			Policy: &Starve{Victim: 0, Every: 250, Inner: NewRandom(int64(seed))},
		}
		res, err := RunTxn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, res.Violations)
		}
		for p, committed := range res.CommittedByProc {
			if committed != int64(cfg.OpsPerProc) {
				t.Fatalf("seed %d: process %d committed %d of %d updates", seed, p, committed, cfg.OpsPerProc)
			}
		}
		if err := check.CheckTxns(res.History, cfg.K, txnInitial(cfg.K, cfg.W)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTxnCrashedWriterNeverBlocks is the lock-freedom test: a process is
// crashed at an arbitrary step — including mid-commit, descriptor
// published and locks installed — and the survivors must (a) finish every
// one of their operations within the step budget, i.e. never block on the
// corpse, and (b) observe only conserved totals in their atomic
// snapshots, i.e. the dead transaction is applied exactly-once or
// not-at-all, never halfway.
func TestTxnCrashedWriterNeverBlocks(t *testing.T) {
	const (
		n, k, w    = 3, 4, 1
		opsPerProc = 4
		snapEvery  = 2
	)
	stride := 3
	if testing.Short() {
		stride = 17
	}
	for crashAt := 1; crashAt < 260; crashAt += stride {
		cfg := TxnConfig{
			N: n, K: k, W: w, OpsPerProc: opsPerProc, Span: 2,
			SnapEvery: snapEvery, Transfer: true,
			Seed:    int64(crashAt) * 31,
			Crashes: map[int]int{0: crashAt},
		}
		res, err := RunTxn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("crash@%d: survivors did not make progress: %v", crashAt, res.Violations)
		}
		const updates = opsPerProc - opsPerProc/snapEvery
		for p := 1; p < n; p++ {
			if res.CommittedByProc[p] != updates {
				t.Fatalf("crash@%d: survivor %d committed %d of %d updates",
					crashAt, p, res.CommittedByProc[p], updates)
			}
		}
		// Transfers conserve the all-shards total (mod 2^64, starting at
		// 0): any snapshot that sums to anything else saw a torn commit.
		for _, op := range res.History {
			if op.Kind != check.TxnSnap {
				continue
			}
			var total uint64
			for _, v := range op.Old {
				var x uint64
				if _, err := fmt.Sscanf(v, "%x", &x); err != nil {
					t.Fatalf("crash@%d: unparseable snapshot value %q", crashAt, v)
				}
				total += x
			}
			if total != 0 {
				t.Fatalf("crash@%d: snapshot total %d != 0 — the crashed transaction was applied halfway:\n%v",
					crashAt, total, op)
			}
		}
	}
}

// TestTxnSnapshotFallbackStillAtomic forces snapshot pressure: with every
// process updating wide spans and snapshotting often, some snapshots take
// the descriptor fallback; all must still linearize (CheckTxns treats
// fallback and optimistic snapshots identically).
func TestTxnSnapshotFallbackStillAtomic(t *testing.T) {
	var fallbacks int64
	seeds := 30
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := TxnConfig{
			N: 4, K: 3, W: 1, OpsPerProc: 5, Span: 3,
			SnapEvery: 2, Seed: int64(seed) + 1000,
		}
		res, err := RunTxn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, res.Violations)
		}
		fallbacks += res.Fallbacks
		if err := check.CheckTxns(res.History, cfg.K, txnInitial(cfg.K, cfg.W)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	t.Logf("descriptor-path fallbacks across runs: %d (retries budget %d)", fallbacks, txn.SnapshotRetries)
}

// TestTxnDeterminism pins the reproducibility contract: identical configs
// yield identical histories, step counts, and final states.
func TestTxnDeterminism(t *testing.T) {
	cfg := TxnConfig{N: 3, K: 4, W: 2, OpsPerProc: 4, Span: 2, SnapEvery: 3, Seed: 7}
	a, err := RunTxn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTxn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || len(a.History) != len(b.History) {
		t.Fatalf("nondeterministic: steps %d/%d, history %d/%d ops",
			a.Steps, b.Steps, len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i].String() != b.History[i].String() {
			t.Fatalf("histories diverge at op %d: %v vs %v", i, a.History[i], b.History[i])
		}
	}
	for i := range a.Final {
		for t2 := range a.Final[i] {
			if a.Final[i][t2] != b.Final[i][t2] {
				t.Fatalf("final states diverge at shard %d", i)
			}
		}
	}
}
