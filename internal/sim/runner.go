package sim

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"mwllsc/internal/check"
	"mwllsc/internal/core"
)

// Config describes one simulated execution of the paper's algorithm.
type Config struct {
	// N is the process count, W the value width in words.
	N, W int
	// OpsPerProc is how many LL;(VL);SC rounds each process performs.
	OpsPerProc int
	// Seed drives the schedule, the workloads, and torn-read garbage.
	Seed int64
	// Policy schedules steps; nil defaults to NewRandom(Seed).
	Policy Policy
	// Crashes maps process ids to the step at which they crash (stop
	// being scheduled forever); their operations simply never finish.
	Crashes map[int]int
	// TornReads enables safe-register semantics for buffers: reads
	// overlapping a writer return garbage.
	TornReads bool
	// VLEvery inserts a VL after the LL every k-th round (0 = never).
	VLEvery int
	// MaxSteps bounds total steps (0 = a generous default).
	MaxSteps int
	// DisableInvariants skips invariant checking (for pure benchmarks).
	DisableInvariants bool
	// Debug injects deliberate algorithm mutations (negative controls for
	// the harness itself); see core.Debug.
	Debug core.Debug
	// TraceTo, when non-nil, receives a human-readable line per memory
	// mutation and algorithm event (the llsccheck -dump view).
	TraceTo io.Writer
}

// Result is the outcome of a simulated execution.
type Result struct {
	// History holds all completed operations, suitable for
	// check.CheckLLSC when small enough (crashed processes' pending
	// operations are not recorded).
	History check.History
	// Violations holds invariant violations and process panics; a correct
	// algorithm yields none, under every seed.
	Violations []error
	// Steps is the total number of shared-memory steps executed.
	Steps int
	// MaxLLSteps, MaxSCSteps, MaxVLSteps are the worst-case steps spent
	// inside one operation, across all processes — the empirical side of
	// Theorem 1's O(W), O(W), O(1) bounds.
	MaxLLSteps, MaxSCSteps, MaxVLSteps int
	// TornReads counts buffer-word reads that returned garbage.
	TornReads int64
	// Stats is the algorithm's internal event counters.
	Stats core.StatsSnapshot
	// SCSuccessesByProc counts successful SCs per process (to verify
	// non-crashed processes made progress).
	SCSuccessesByProc []int64
}

// InitialValue returns the pattern value (word j = j) every simulated run
// starts from; its check encoding is "0".
func InitialValue(w int) []uint64 {
	v := make([]uint64, w)
	for j := range v {
		v[j] = uint64(j)
	}
	return v
}

// Run executes the configured simulation and returns its result. The same
// Config (including Seed) always produces the identical Result.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 1 || cfg.W < 1 || cfg.OpsPerProc < 0 {
		return nil, fmt.Errorf("sim: invalid config N=%d W=%d ops=%d", cfg.N, cfg.W, cfg.OpsPerProc)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewRandom(cfg.Seed)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		// Generous: every op is <= 5W+16 steps; x16 slack for starvation
		// policies that burn steps on stalled processes.
		maxSteps = 16 * (cfg.N*cfg.OpsPerProc*(5*cfg.W+16) + 64)
	}

	sched := NewSched(cfg.N, policy, maxSteps, cfg.Crashes)
	memory := NewMemory(sched, cfg.Seed+1, cfg.TornReads)

	if cfg.TraceTo != nil {
		memory.Observe(NewTraceLogger(cfg.TraceTo, memory))
	}

	var checker *InvariantChecker
	if !cfg.DisableInvariants {
		checker = NewInvariantChecker(memory, cfg.N)
		memory.Observe(checker)
		sched.AfterStep(checker.CheckStep)
	}

	var stats core.Stats
	obj, err := core.NewDebug(memory, cfg.N, cfg.W, InitialValue(cfg.W), &stats, cfg.Debug)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	res := &Result{SCSuccessesByProc: make([]int64, cfg.N)}
	perProc := make([]check.History, cfg.N)

	// Logical timestamps for the history: all workload code runs one
	// process at a time (the scheduler serializes it), so a shared tick
	// counter yields unique stamps consistent with simulated real time.
	var tick int64
	stamp := func() int64 { tick++; return tick }

	fns := make([]func(int), cfg.N)
	for p := 0; p < cfg.N; p++ {
		fns[p] = func(p int) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
			v := make([]uint64, cfg.W)
			next := make([]uint64, cfg.W)
			memory.Sync(p) // start barrier: all further code runs inside granted windows
			for i := 0; i < cfg.OpsPerProc; i++ {
				inv := stamp()
				obj.LL(p, v)
				perProc[p] = append(perProc[p], check.Op{
					Proc: p, Kind: check.OpLL, Ret: check.PatternValue(v),
					Inv: inv, Res: stamp(),
				})

				if cfg.VLEvery > 0 && i%cfg.VLEvery == 0 {
					inv = stamp()
					ok := obj.VL(p)
					perProc[p] = append(perProc[p], check.Op{
						Proc: p, Kind: check.OpVL, OK: ok,
						Inv: inv, Res: stamp(),
					})
				}

				// A unique pattern id per SC attempt; adding rng noise in
				// the id ordering exercises distinct bank slots.
				id := uint64(1+p*cfg.OpsPerProc+i)*1000 + uint64(rng.Intn(999))
				for j := range next {
					next[j] = id + uint64(j)
				}
				inv = stamp()
				ok := obj.SC(p, next)
				perProc[p] = append(perProc[p], check.Op{
					Proc: p, Kind: check.OpSC, Arg: strconv.FormatUint(id, 10), OK: ok,
					Inv: inv, Res: stamp(),
				})
				if ok {
					res.SCSuccessesByProc[p]++
				}
			}
		}
	}

	errs := sched.Run(fns)
	if checker != nil {
		checker.CheckFinal()
		errs = append(errs, checker.Violations()...)
	}

	res.Violations = errs
	res.Steps = sched.Step()
	res.MaxLLSteps, res.MaxSCSteps, res.MaxVLSteps = memory.MaxOpSteps()
	res.TornReads = memory.TornReads()
	res.Stats = stats.Snapshot()
	for p := range perProc {
		res.History = append(res.History, perProc[p]...)
	}
	return res, nil
}
