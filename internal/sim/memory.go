package sim

import (
	"fmt"
	"math/rand"

	"mwllsc/internal/mem"
)

// Memory is the simulated mem.Memory backend: every word operation and
// every buffer word access is one scheduler step, buffer reads overlapping
// a concurrent writer return adversarial garbage (safe-register semantics),
// and all mutations plus trace events are routed to registered observers.
type Memory struct {
	sched *Sched
	rng   *rand.Rand // garbage source for torn reads; used only inside granted windows

	tornReads  bool
	tornCount  int64
	words      map[wordKey]*Word
	buffers    []*Buffers
	observers  []Observer
	perProcOps []opAccounting
}

type wordKey struct {
	kind mem.WordKind
	idx  int
}

// Observer receives memory mutations and algorithm trace events, in
// execution order, always from within a granted window or the setup phase
// (never concurrently).
type Observer interface {
	// OnMutate reports a successful mutation of a word (SC success or
	// Write). isWrite distinguishes unconditional writes.
	OnMutate(w *Word, p int, old, new uint64, isWrite bool)
	// OnBufWrite reports the start of a W-word buffer write by p.
	OnBufWrite(buf, p int)
	// OnTrace receives algorithm-level events.
	OnTrace(p int, ev mem.Event)
}

// opAccounting tracks the in-flight operation of one process for step
// bounds: kind and step counter at operation start.
type opAccounting struct {
	kind    mem.EventKind // EvLLStart, EvSCStart or EvVLStart; 0 if idle
	startOf int
	maxLL   int
	maxSC   int
	maxVL   int
}

// NewMemory returns a simulated memory bound to sched. If tornReads is
// true, buffer reads that overlap a writer return seeded garbage instead of
// data (the safe-register adversary).
func NewMemory(sched *Sched, seed int64, tornReads bool) *Memory {
	return &Memory{
		sched:      sched,
		rng:        rand.New(rand.NewSource(seed)),
		tornReads:  tornReads,
		words:      make(map[wordKey]*Word),
		perProcOps: make([]opAccounting, sched.n),
	}
}

// Observe registers an observer; call before running.
func (m *Memory) Observe(o Observer) { m.observers = append(m.observers, o) }

// Sync parks the calling process until granted a step; the runner uses it
// as a start barrier so all workload code runs inside granted windows.
func (m *Memory) Sync(p int) { m.sched.Yield(p) }

// TornReads returns how many buffer word reads returned garbage.
func (m *Memory) TornReads() int64 { return m.tornCount }

// WordValue returns the current value of a word by identity; invariant
// checkers call it from AfterStep hooks.
func (m *Memory) WordValue(kind mem.WordKind, idx int) uint64 {
	w, ok := m.words[wordKey{kind, idx}]
	if !ok {
		panic(fmt.Sprintf("sim: no word %v[%d]", kind, idx))
	}
	return w.val
}

// MaxOpSteps returns the maximum steps any process spent inside one LL, SC
// and VL operation respectively.
func (m *Memory) MaxOpSteps() (ll, sc, vl int) {
	for i := range m.perProcOps {
		a := &m.perProcOps[i]
		ll = max(ll, a.maxLL)
		sc = max(sc, a.maxSC)
		vl = max(vl, a.maxVL)
	}
	return ll, sc, vl
}

// NewWord implements mem.Memory.
func (m *Memory) NewWord(kind mem.WordKind, idx int, valueBits uint, init uint64) mem.Word {
	w := &Word{
		m:     m,
		kind:  kind,
		idx:   idx,
		val:   init,
		links: make([]wordLink, m.sched.n),
	}
	m.words[wordKey{kind, idx}] = w
	return w
}

// NewBuffers implements mem.Memory.
func (m *Memory) NewBuffers(count, w int) mem.Buffers {
	b := &Buffers{
		m:       m,
		w:       w,
		data:    make([]uint64, count*w),
		writers: make([]int, count),
	}
	m.buffers = append(m.buffers, b)
	return b
}

// Trace implements mem.Memory: it forwards to observers and maintains
// per-operation step accounting.
func (m *Memory) Trace(p int, ev mem.Event) {
	a := &m.perProcOps[p]
	switch ev.Kind {
	case mem.EvLLStart, mem.EvSCStart, mem.EvVLStart:
		a.kind = ev.Kind
		a.startOf = m.sched.StepsOf(p)
	case mem.EvLLDone:
		a.maxLL = max(a.maxLL, m.sched.StepsOf(p)-a.startOf)
		a.kind = 0
	case mem.EvSCDone:
		a.maxSC = max(a.maxSC, m.sched.StepsOf(p)-a.startOf)
		a.kind = 0
	case mem.EvVLDone:
		a.maxVL = max(a.maxVL, m.sched.StepsOf(p)-a.startOf)
		a.kind = 0
	}
	for _, o := range m.observers {
		o.OnTrace(p, ev)
	}
}

// Tracing implements mem.Memory.
func (m *Memory) Tracing() bool { return true }

var _ mem.Memory = (*Memory)(nil)

func (m *Memory) onMutate(w *Word, p int, old, new uint64, isWrite bool) {
	for _, o := range m.observers {
		o.OnMutate(w, p, old, new, isWrite)
	}
}

func (m *Memory) onBufWrite(buf, p int) {
	for _, o := range m.observers {
		o.OnBufWrite(buf, p)
	}
}

// Word is a simulated single-word LL/SC/VL object with exact semantics
// (a version counter incremented on every mutation).
type Word struct {
	m     *Memory
	kind  mem.WordKind
	idx   int
	val   uint64
	ver   uint64
	links []wordLink
}

type wordLink struct {
	ver uint64
}

// Kind returns which shared variable family this word belongs to.
func (w *Word) Kind() mem.WordKind { return w.kind }

// Idx returns the word's index within its family.
func (w *Word) Idx() int { return w.idx }

// LL implements mem.Word.
func (w *Word) LL(p int) uint64 {
	w.m.sched.Yield(p)
	w.links[p] = wordLink{ver: w.ver}
	return w.val
}

// SC implements mem.Word.
func (w *Word) SC(p int, v uint64) bool {
	w.m.sched.Yield(p)
	if w.links[p].ver != w.ver {
		return false
	}
	old := w.val
	w.val = v
	w.ver++
	w.m.onMutate(w, p, old, v, false)
	return true
}

// VL implements mem.Word.
func (w *Word) VL(p int) bool {
	w.m.sched.Yield(p)
	return w.links[p].ver == w.ver
}

// Read implements mem.Word.
func (w *Word) Read(p int) uint64 {
	w.m.sched.Yield(p)
	return w.val
}

// Write implements mem.Word.
func (w *Word) Write(p int, v uint64) {
	w.m.sched.Yield(p)
	old := w.val
	w.val = v
	w.ver++
	w.m.onMutate(w, p, old, v, true)
}

var _ mem.Word = (*Word)(nil)

// Buffers is the simulated safe-register buffer array. A W-word write
// occupies W+2 steps (open, W word writes, close); while any writer is
// inside a buffer, reads of that buffer return garbage when torn reads are
// enabled. This is the weakest register semantics the paper permits.
type Buffers struct {
	m       *Memory
	w       int
	data    []uint64
	writers []int // in-progress writer count per buffer
}

// W implements mem.Buffers.
func (b *Buffers) W() int { return b.w }

// ReadBuf implements mem.Buffers; each word is one step.
func (b *Buffers) ReadBuf(p, buf int, dst []uint64) {
	base := buf * b.w
	for i := range dst {
		b.m.sched.Yield(p)
		if b.writers[buf] > 0 && b.m.tornReads {
			dst[i] = b.m.rng.Uint64() // safe register: overlapping read is garbage
			b.m.tornCount++
		} else {
			dst[i] = b.data[base+i]
		}
	}
}

// WriteBuf implements mem.Buffers.
func (b *Buffers) WriteBuf(p, buf int, src []uint64) {
	b.m.sched.Yield(p)
	b.m.onBufWrite(buf, p)
	b.writers[buf]++
	base := buf * b.w
	for i, v := range src {
		b.m.sched.Yield(p)
		b.data[base+i] = v
	}
	b.m.sched.Yield(p)
	b.writers[buf]--
}

var _ mem.Buffers = (*Buffers)(nil)
