package sim

import (
	"errors"
	"testing"
)

func TestSchedRunsAllProcesses(t *testing.T) {
	s := NewSched(4, NewRoundRobin(), 1000, nil)
	ran := make([]int, 4)
	fns := make([]func(int), 4)
	for p := range fns {
		fns[p] = func(p int) {
			for i := 0; i < 5; i++ {
				s.Yield(p)
				ran[p]++
			}
		}
	}
	if errs := s.Run(fns); len(errs) != 0 {
		t.Fatal(errs)
	}
	for p, c := range ran {
		if c != 5 {
			t.Fatalf("process %d ran %d steps, want 5", p, c)
		}
	}
	if s.Step() != 20 {
		t.Fatalf("total steps %d, want 20", s.Step())
	}
}

func TestSchedStepBudget(t *testing.T) {
	s := NewSched(1, NewRoundRobin(), 10, nil)
	fns := []func(int){func(p int) {
		for {
			s.Yield(p) // never finishes; the budget must fire
		}
	}}
	errs := s.Run(fns)
	if len(errs) == 0 {
		t.Fatal("no error despite exhausted budget")
	}
}

func TestSchedPropagatesPanic(t *testing.T) {
	s := NewSched(2, NewRoundRobin(), 1000, nil)
	fns := []func(int){
		func(p int) { s.Yield(p) },
		func(p int) { s.Yield(p); panic(errors.New("boom")) },
	}
	errs := s.Run(fns)
	found := false
	for _, e := range errs {
		if e != nil && e.Error() != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("panic not propagated")
	}
}

func TestSchedCrashStopsProcess(t *testing.T) {
	s := NewSched(2, NewRoundRobin(), 1000, map[int]int{1: 3})
	steps := make([]int, 2)
	fns := []func(int){
		func(p int) {
			for i := 0; i < 10; i++ {
				s.Yield(p)
				steps[p]++
			}
		},
		func(p int) {
			for i := 0; i < 10; i++ {
				s.Yield(p)
				steps[p]++
			}
		},
	}
	if errs := s.Run(fns); len(errs) != 0 {
		t.Fatal(errs)
	}
	if steps[0] != 10 {
		t.Fatalf("survivor ran %d steps, want 10", steps[0])
	}
	if steps[1] >= 10 {
		t.Fatalf("crashed process ran to completion (%d steps)", steps[1])
	}
	if !s.Crashed(1) {
		t.Fatal("Crashed(1) = false")
	}
}

func TestSchedAfterStepHookSeesQuiescentState(t *testing.T) {
	s := NewSched(2, NewRoundRobin(), 1000, nil)
	calls := 0
	s.AfterStep(func() { calls++ })
	fns := []func(int){
		func(p int) { s.Yield(p); s.Yield(p) },
		func(p int) { s.Yield(p) },
	}
	if errs := s.Run(fns); len(errs) != 0 {
		t.Fatal(errs)
	}
	// Hooks run once before the first grant and once after each step.
	if calls < 3 {
		t.Fatalf("AfterStep ran %d times, want >= 3", calls)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	runnable := []int{0, 1, 2}
	got := []int{
		rr.Next(runnable, 0), rr.Next(runnable, 1), rr.Next(runnable, 2),
		rr.Next(runnable, 3),
	}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin sequence %v, want %v", got, want)
		}
	}
	// Skips non-runnable processes.
	if p := rr.Next([]int{2}, 4); p != 2 {
		t.Fatalf("Next([2]) = %d", p)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := NewRandom(7), NewRandom(7)
	runnable := []int{0, 1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		if x, y := a.Next(runnable, i), b.Next(runnable, i); x != y {
			t.Fatalf("same-seed policies diverged at step %d: %d vs %d", i, x, y)
		}
	}
}

func TestStarvePolicySchedulesVictimRarely(t *testing.T) {
	p := &Starve{Victim: 0, Every: 10, Inner: NewRoundRobin()}
	runnable := []int{0, 1, 2}
	victims := 0
	for step := 1; step <= 100; step++ {
		if p.Next(runnable, step) == 0 {
			victims++
		}
	}
	if victims == 0 || victims > 15 {
		t.Fatalf("victim scheduled %d/100 times, want rare but nonzero", victims)
	}
	// Victim must still be chosen when alone.
	if p.Next([]int{0}, 3) != 0 {
		t.Fatal("victim not scheduled when it is the only runnable process")
	}
}

func TestBurstPolicyRunsBursts(t *testing.T) {
	b := &Burst{Len: 4, Inner: NewRoundRobin()}
	runnable := []int{0, 1}
	first := b.Next(runnable, 0)
	for i := 1; i < 4; i++ {
		if p := b.Next(runnable, i); p != first {
			t.Fatalf("burst broke at %d: %d != %d", i, p, first)
		}
	}
	if p := b.Next(runnable, 4); p == first {
		t.Fatal("burst did not rotate after Len steps")
	}
}
