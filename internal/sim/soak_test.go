package sim

import (
	"fmt"
	"testing"

	"mwllsc/internal/check"
)

// TestSoakCombinedAdversaries sweeps process counts, widths, and stacked
// adversaries (starvation + torn reads + crashes together) across many
// seeds. Skipped with -short; this is the long-haul confidence run behind
// experiment V1.
func TestSoakCombinedAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	configs := []struct {
		n, w, ops int
	}{
		{2, 1, 8},
		{2, 7, 6},
		{3, 3, 6},
		{4, 5, 4},
		{5, 2, 4},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("n%d_w%d", cfg.n, cfg.w), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 40; seed++ {
				mode := seed % 4
				rc := Config{
					N: cfg.n, W: cfg.w, OpsPerProc: cfg.ops, Seed: seed, VLEvery: 2,
				}
				switch mode {
				case 1:
					rc.TornReads = true
					rc.Policy = &Starve{Victim: int(seed) % cfg.n, Every: 180, Inner: NewRandom(seed)}
				case 2:
					rc.TornReads = true
					rc.Policy = &Burst{Len: 11, Inner: NewRandom(seed * 31)}
				case 3:
					rc.TornReads = true
					rc.Crashes = map[int]int{int(seed) % cfg.n: 15 + int(seed%80)}
					rc.Policy = &Starve{Victim: int(seed+1) % cfg.n, Every: 120, Inner: NewRandom(seed)}
				}
				res, err := Run(rc)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range res.Violations {
					t.Fatalf("seed %d mode %d: %v", seed, mode, v)
				}
				if res.MaxLLSteps > 4*cfg.w+11 || res.MaxSCSteps > cfg.w+10 || res.MaxVLSteps > 1 {
					t.Fatalf("seed %d mode %d: step bounds exceeded (LL %d, SC %d, VL %d)",
						seed, mode, res.MaxLLSteps, res.MaxSCSteps, res.MaxVLSteps)
				}
				// Linearizability whenever the history fits the checker
				// and no process crashed mid-operation.
				if mode != 3 && len(res.History) <= check.MaxOps {
					if err := check.CheckLLSC(res.History, "0"); err != nil {
						t.Fatalf("seed %d mode %d: %v", seed, mode, err)
					}
				}
			}
		})
	}
}

// TestSoakExploreWithTornReads combines systematic exploration with the
// safe-register adversary on a tiny configuration.
func TestSoakExploreWithTornReads(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	res, err := Explore(ExploreConfig{
		N: 2, W: 2, OpsPerProc: 2, Seed: 5, MaxPreemptions: 2,
		TornReads: true, MaxRuns: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) > 0 {
		f := res.Findings[0]
		t.Fatalf("failing schedule, prefix %v: %v", f.Prefix, f.Errs)
	}
	if res.Runs < 500 {
		t.Fatalf("only %d schedules explored", res.Runs)
	}
}
