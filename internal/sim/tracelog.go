package sim

import (
	"fmt"
	"io"

	"mwllsc/internal/mem"
)

// TraceLogger is an Observer that writes a human-readable line per memory
// mutation and algorithm event — the "execution transcript" view used by
// llsccheck -dump for debugging schedules.
type TraceLogger struct {
	W io.Writer
	m *Memory
}

// NewTraceLogger returns a logger writing to w, reading step numbers from m.
func NewTraceLogger(w io.Writer, m *Memory) *TraceLogger {
	return &TraceLogger{W: w, m: m}
}

// OnMutate implements Observer.
func (l *TraceLogger) OnMutate(w *Word, p int, old, new uint64, isWrite bool) {
	op := "SC!"
	if isWrite {
		op = "W"
	}
	fmt.Fprintf(l.W, "%6d  p%d  %s %s[%d]: %#x -> %#x\n",
		l.m.sched.Step(), p, op, w.Kind(), w.Idx(), old, new)
}

// OnBufWrite implements Observer.
func (l *TraceLogger) OnBufWrite(buf, p int) {
	fmt.Fprintf(l.W, "%6d  p%d  writebuf BUF[%d]\n", l.m.sched.Step(), p, buf)
}

// OnTrace implements Observer.
func (l *TraceLogger) OnTrace(p int, ev mem.Event) {
	fmt.Fprintf(l.W, "%6d  p%d  event %s(%d)\n", l.m.sched.Step(), p, ev.Kind, ev.Arg)
}

var _ Observer = (*TraceLogger)(nil)
