package sim

import (
	"testing"

	"mwllsc/internal/core"
)

func TestScriptedReplaysDeterministically(t *testing.T) {
	// Run once non-preemptively, then replay its full trace: identical
	// results, and the scripted policy must never panic on divergence.
	first := NewScripted(nil)
	a, err := Run(Config{N: 2, W: 2, OpsPerProc: 2, Seed: 3, Policy: first})
	if err != nil {
		t.Fatal(err)
	}
	replay := NewScripted(first.trace)
	b, err := Run(Config{N: 2, W: 2, OpsPerProc: 2, Seed: 3, Policy: replay})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || len(a.History) != len(b.History) {
		t.Fatalf("replay diverged: steps %d vs %d", a.Steps, b.Steps)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("replay diverged at op %d: %v vs %v", i, a.History[i], b.History[i])
		}
	}
}

// TestExploreCleanSmall systematically explores all schedules with up to 2
// preemptions of a 2-process workload: every schedule must satisfy every
// invariant, linearizability, and the Theorem 1 step bounds.
func TestExploreCleanSmall(t *testing.T) {
	res, err := Explore(ExploreConfig{
		N: 2, W: 2, OpsPerProc: 1, Seed: 1, MaxPreemptions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) > 0 {
		f := res.Findings[0]
		t.Fatalf("%d failing schedules; first prefix %v: %v", len(res.Findings), f.Prefix, f.Errs)
	}
	if res.Runs < 100 {
		t.Fatalf("exploration only ran %d schedules; branching is broken", res.Runs)
	}
	if res.MaxLLSteps > 4*2+11 || res.MaxSCSteps > 2+10 {
		t.Fatalf("step bounds exceeded across exploration: LL=%d SC=%d", res.MaxLLSteps, res.MaxSCSteps)
	}
	t.Logf("explored %d schedules, worst LL %d steps, worst SC %d steps, helped LLs %d",
		res.Runs, res.MaxLLSteps, res.MaxSCSteps, res.HelpedLLs)
}

// TestExploreThreeProcs bounds the run count but still covers thousands of
// distinct 3-process schedules.
func TestExploreThreeProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is heavier; skipped with -short")
	}
	res, err := Explore(ExploreConfig{
		N: 3, W: 1, OpsPerProc: 1, Seed: 2, MaxPreemptions: 2,
		MaxRuns: 4000, VLEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) > 0 {
		f := res.Findings[0]
		t.Fatalf("failing schedule, prefix %v: %v", f.Prefix, f.Errs)
	}
	if res.Runs < 1000 {
		t.Fatalf("only %d runs explored", res.Runs)
	}
}

// TestExploreFindsInjectedBug is the explorer's own negative control: with
// the Bank maintenance disabled, bounded-preemption exploration must find a
// failing schedule.
func TestExploreFindsInjectedBug(t *testing.T) {
	res, err := Explore(ExploreConfig{
		N: 2, W: 2, OpsPerProc: 2, Seed: 1, MaxPreemptions: 2,
		MaxRuns: 3000,
		Debug:   core.Debug{SkipBankFix: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatalf("exploration of %d schedules missed the injected Bank bug", res.Runs)
	}
	// The finding must carry a replayable prefix.
	f := res.Findings[0]
	replay := NewScripted(f.Prefix)
	run, err := Run(Config{
		N: 2, W: 2, OpsPerProc: 2, Seed: 1, Policy: replay,
		Debug: core.Debug{SkipBankFix: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Violations) == 0 {
		t.Fatal("replaying the finding's prefix did not reproduce the violation")
	}
}

func TestExploreRejectsNegativeBound(t *testing.T) {
	if _, err := Explore(ExploreConfig{N: 1, W: 1, MaxPreemptions: -1}); err == nil {
		t.Fatal("accepted negative preemption bound")
	}
}
