package check

import (
	"strings"
	"testing"
)

func upd(proc int, inv, res int64, shards []int, old, new []string) TxnOp {
	return TxnOp{Proc: proc, Kind: TxnUpdate, Shards: shards, Old: old, New: new, Inv: inv, Res: res}
}

func snap(proc int, inv, res int64, shards []int, old []string) TxnOp {
	return TxnOp{Proc: proc, Kind: TxnSnap, Shards: shards, Old: old, Inv: inv, Res: res}
}

func TestCheckTxnsSequential(t *testing.T) {
	h := []TxnOp{
		upd(0, 1, 2, []int{0, 1}, []string{"a", "b"}, []string{"a1", "b1"}),
		snap(1, 3, 4, []int{0, 1, 2}, []string{"a1", "b1", "c"}),
		upd(0, 5, 6, []int{1, 2}, []string{"b1", "c"}, []string{"b2", "c2"}),
	}
	if err := CheckTxns(h, 3, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTxnsOverlappingReorder(t *testing.T) {
	// Two overlapping updates on shard 0: the only legal order is p1 then
	// p0 (p0 read p1's output), even though p0 invoked first.
	h := []TxnOp{
		upd(0, 1, 10, []int{0}, []string{"x1"}, []string{"x2"}),
		upd(1, 2, 9, []int{0}, []string{"x0"}, []string{"x1"}),
	}
	if err := CheckTxns(h, 1, []string{"x0"}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTxnsRejectsTornSnapshot(t *testing.T) {
	// A transfer moved a unit from shard 0 to shard 1; the snapshot claims
	// to have seen the debit but not the credit. No linearization exists.
	h := []TxnOp{
		upd(0, 1, 4, []int{0, 1}, []string{"5", "5"}, []string{"4", "6"}),
		snap(1, 2, 5, []int{0, 1}, []string{"4", "5"}),
	}
	err := CheckTxns(h, 2, []string{"5", "5"})
	if err == nil {
		t.Fatal("torn cross-shard snapshot accepted as linearizable")
	}
	if !strings.Contains(err.Error(), "NOT linearizable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckTxnsRejectsRealTimeViolation(t *testing.T) {
	// p0's update completed before p1's began, yet p1 claims to have read
	// the pre-update value.
	h := []TxnOp{
		upd(0, 1, 2, []int{0}, []string{"v0"}, []string{"v1"}),
		snap(1, 3, 4, []int{0}, []string{"v0"}),
	}
	if CheckTxns(h, 1, []string{"v0"}) == nil {
		t.Fatal("stale read after a completed update accepted")
	}
}

func TestCheckTxnsRejectsLostUpdate(t *testing.T) {
	// Both updates claim to have read the initial value of shard 0 — one
	// of the writes is lost.
	h := []TxnOp{
		upd(0, 1, 10, []int{0}, []string{"i"}, []string{"a"}),
		upd(1, 2, 11, []int{0}, []string{"i"}, []string{"b"}),
	}
	if CheckTxns(h, 1, []string{"i"}) == nil {
		t.Fatal("lost update accepted as linearizable")
	}
}

func TestCheckTxnsValidatesInput(t *testing.T) {
	if CheckTxns([]TxnOp{upd(0, 2, 1, []int{0}, []string{"a"}, []string{"b"})}, 1, []string{"a"}) == nil {
		t.Fatal("Res <= Inv accepted")
	}
	if CheckTxns([]TxnOp{upd(0, 1, 2, []int{1, 0}, []string{"a", "a"}, []string{"b", "b"})}, 2, []string{"a", "a"}) == nil {
		t.Fatal("descending shard list accepted")
	}
	if CheckTxns([]TxnOp{upd(0, 1, 2, []int{3}, []string{"a"}, []string{"b"})}, 2, []string{"a", "a"}) == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if CheckTxns(nil, 2, []string{"a"}) == nil {
		t.Fatal("initial/k mismatch accepted")
	}
	if err := CheckTxns(nil, 1, []string{"a"}); err != nil {
		t.Fatalf("empty history rejected: %v", err)
	}
}

func TestCheckTxnsDisjointShardsCommute(t *testing.T) {
	// Fully overlapping in time, touching disjoint shards: any order works.
	h := []TxnOp{
		upd(0, 1, 10, []int{0}, []string{"a"}, []string{"a1"}),
		upd(1, 2, 9, []int{1}, []string{"b"}, []string{"b1"}),
		snap(2, 3, 8, []int{0, 1}, []string{"a1", "b"}),
	}
	if err := CheckTxns(h, 2, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
}
