package check

import (
	"strconv"
	"testing"
)

// FuzzCheckLLSCNeverPanics decodes an arbitrary byte string into a history
// and runs the checker: any input must yield accept or reject, never a
// panic or a hang (the memoized search must stay bounded).
func FuzzCheckLLSCNeverPanics(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var h History
		clock := int64(0)
		for i := 0; i+2 < len(raw) && len(h) < 24; i += 3 {
			proc := int(raw[i] % 4)
			kind := Kind(raw[i+1]%3) + 1
			arg := strconv.Itoa(int(raw[i+2] % 8))
			overlap := raw[i+2]&0x80 != 0
			inv := clock
			clock += 2
			res := clock - 1
			if overlap && inv > 0 {
				inv-- // overlap with the previous op
			}
			op := Op{Proc: proc, Kind: kind, Inv: inv, Res: res, OK: raw[i+2]&1 == 1}
			switch kind {
			case OpLL:
				op.Ret = arg
			case OpSC:
				op.Arg = arg
			}
			h = append(h, op)
		}
		_ = CheckLLSC(h, "0") // must not panic; result is input-dependent
	})
}
