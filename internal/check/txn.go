package check

import (
	"fmt"
	"sort"
	"strings"
)

// TxnKind is the operation type in a multi-key transaction history.
type TxnKind uint8

// Transaction operation kinds.
const (
	// TxnUpdate is a committed multi-key atomic update: it read Old[j] from
	// Shards[j] and replaced it with New[j], for all j at one instant.
	TxnUpdate TxnKind = iota + 1
	// TxnSnap is an atomic snapshot: it read Old[j] from Shards[j], for all
	// j at one instant, writing nothing.
	TxnSnap
)

// String returns the kind's name.
func (k TxnKind) String() string {
	switch k {
	case TxnUpdate:
		return "Update"
	case TxnSnap:
		return "Snap"
	default:
		return "?"
	}
}

// TxnOp is one completed multi-key operation in a concurrent history.
// Values are opaque strings per touched shard (callers encode multiword
// values however they like, e.g. with WordsValue); equality is all the
// checker needs.
type TxnOp struct {
	// Proc is the process id that performed the operation.
	Proc int
	// Kind is TxnUpdate or TxnSnap.
	Kind TxnKind
	// Shards lists the touched shard indices, strictly ascending.
	Shards []int
	// Old holds, per Shards entry, the value the operation observed.
	Old []string
	// New holds, per Shards entry, the value a TxnUpdate installed
	// (nil for TxnSnap).
	New []string
	// Inv and Res are invocation and response timestamps from any
	// monotonic clock shared by all processes; Res must be > Inv, and
	// non-overlap (a.Res < b.Inv) must reflect real-time order.
	Inv, Res int64
}

func (o TxnOp) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d.%v(", o.Proc, o.Kind)
	for j, sh := range o.Shards {
		if j > 0 {
			b.WriteString(" ")
		}
		if o.Kind == TxnUpdate {
			fmt.Fprintf(&b, "s%d:%s->%s", sh, o.Old[j], o.New[j])
		} else {
			fmt.Fprintf(&b, "s%d:%s", sh, o.Old[j])
		}
	}
	fmt.Fprintf(&b, ")@[%d,%d]", o.Inv, o.Res)
	return b.String()
}

// CheckTxns reports whether h — a history of committed multi-key updates
// and atomic snapshots over k shards starting from the given per-shard
// initial values — is linearizable with respect to the sequential
// multi-shard specification: each TxnUpdate atomically replaces Old with
// New on all its shards (legal only when every shard currently holds its
// Old), each TxnSnap atomically observes Old on all its shards. It is the
// multi-key counterpart of CheckLLSC, in the same Wing & Gong style with
// memoization.
//
// len(h) must be at most MaxOps; operations of the same process must not
// overlap.
func CheckTxns(h []TxnOp, k int, initial []string) error {
	if len(initial) != k {
		return fmt.Errorf("check: %d initial values for %d shards", len(initial), k)
	}
	if len(h) == 0 {
		return nil
	}
	if len(h) > MaxOps {
		return fmt.Errorf("check: history has %d ops, max %d", len(h), MaxOps)
	}

	ops := make([]TxnOp, len(h))
	copy(ops, h)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Inv < ops[j].Inv })

	perProc := map[int][]int{}
	for i, op := range ops {
		if op.Res <= op.Inv {
			return fmt.Errorf("check: op %v has Res <= Inv", op)
		}
		if len(op.Old) != len(op.Shards) || (op.Kind == TxnUpdate && len(op.New) != len(op.Shards)) {
			return fmt.Errorf("check: op %v has mismatched shard/value lengths", op)
		}
		for j, sh := range op.Shards {
			if sh < 0 || sh >= k {
				return fmt.Errorf("check: op %v touches shard %d outside [0,%d)", op, sh, k)
			}
			if j > 0 && op.Shards[j-1] >= sh {
				return fmt.Errorf("check: op %v shard list not strictly ascending", op)
			}
		}
		perProc[op.Proc] = append(perProc[op.Proc], i)
	}
	for p, idxs := range perProc {
		for j := 1; j < len(idxs); j++ {
			if ops[idxs[j]].Inv < ops[idxs[j-1]].Res {
				return fmt.Errorf("check: process %d has overlapping ops %v and %v",
					p, ops[idxs[j-1]], ops[idxs[j]])
			}
		}
	}

	c := &txnChecker{ops: ops, perProc: perProc, visited: map[uint64]bool{}}
	vals := make([]string, k)
	copy(vals, initial)
	if c.search(0, vals, make(map[int]int, len(perProc))) {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: multi-key history is NOT linearizable (initial=%v):\n", initial)
	for _, op := range ops {
		fmt.Fprintf(&b, "  %v\n", op)
	}
	return fmt.Errorf("%s", b.String())
}

type txnChecker struct {
	ops     []TxnOp
	perProc map[int][]int
	// visited memoizes dead linearized-sets by mask alone: per shard, the
	// updates in any legal linearization of a set form a forced old->new
	// chain, so the set determines the state — no state in the key needed.
	visited map[uint64]bool
}

func (c *txnChecker) search(mask uint64, vals []string, next map[int]int) bool {
	if mask == 1<<len(c.ops)-1 {
		return true
	}
	if c.visited[mask] {
		return false
	}

	// minRes is the earliest response among un-linearized ops: an op may
	// linearize now only if it was invoked before that response.
	minRes := int64(1<<63 - 1)
	for i, op := range c.ops {
		if mask&(1<<i) == 0 && op.Res < minRes {
			minRes = op.Res
		}
	}

	for p, idxs := range c.perProc {
		if next[p] >= len(idxs) {
			continue
		}
		i := idxs[next[p]]
		op := c.ops[i]
		if op.Inv > minRes {
			continue
		}
		vals2, legal := applyTxnSpec(vals, op)
		if !legal {
			continue
		}
		next[p]++
		ok := c.search(mask|1<<i, vals2, next)
		next[p]--
		if ok {
			return true
		}
	}
	c.visited[mask] = true
	return false
}

// applyTxnSpec runs one operation against the sequential multi-shard
// specification, reporting the successor state and whether the recorded
// observation is legal.
func applyTxnSpec(vals []string, op TxnOp) ([]string, bool) {
	for j, sh := range op.Shards {
		if vals[sh] != op.Old[j] {
			return nil, false
		}
	}
	if op.Kind != TxnUpdate {
		return vals, true
	}
	out := append([]string(nil), vals...)
	for j, sh := range op.Shards {
		out[sh] = op.New[j]
	}
	return out, true
}
