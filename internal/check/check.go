// Package check provides a linearizability checker for concurrent histories
// of LL/SC/VL operations, in the style of Wing & Gong's algorithm with
// memoization. It is the empirical counterpart of the paper's Theorem 1
// ("the implementation is linearizable"): histories recorded from real
// concurrent runs or from the simulator's adversarial schedules are searched
// for a legal sequential witness.
package check

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is the operation type in a history.
type Kind uint8

// Operation kinds.
const (
	// OpLL is a load-linked; Ret holds the value it returned.
	OpLL Kind = iota + 1
	// OpSC is a store-conditional; Arg holds the value it tried to write
	// and OK whether it reported success.
	OpSC
	// OpVL is a validate; OK holds its result.
	OpVL
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case OpLL:
		return "LL"
	case OpSC:
		return "SC"
	case OpVL:
		return "VL"
	default:
		return "?"
	}
}

// Op is one completed operation in a concurrent history. Values are opaque
// strings (callers encode multiword values however they like, e.g. the id
// word); equality is all the checker needs.
type Op struct {
	// Proc is the process id that performed the operation.
	Proc int
	// Kind is LL, SC or VL.
	Kind Kind
	// Arg is the value an SC tried to write (unused otherwise).
	Arg string
	// Ret is the value an LL returned (unused otherwise).
	Ret string
	// OK is the reported result of an SC or VL (unused for LL).
	OK bool
	// Inv and Res are invocation and response timestamps from any
	// monotonic clock shared by all processes; Res must be > Inv, and
	// non-overlap (a.Res < b.Inv) must reflect real-time order.
	Inv, Res int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpLL:
		return fmt.Sprintf("p%d.LL()=%s@[%d,%d]", o.Proc, o.Ret, o.Inv, o.Res)
	case OpSC:
		return fmt.Sprintf("p%d.SC(%s)=%v@[%d,%d]", o.Proc, o.Arg, o.OK, o.Inv, o.Res)
	default:
		return fmt.Sprintf("p%d.VL()=%v@[%d,%d]", o.Proc, o.OK, o.Inv, o.Res)
	}
}

// History is a set of completed operations.
type History []Op

// MaxOps is the largest history CheckLLSC accepts (the search uses a
// 64-bit linearized-set mask).
const MaxOps = 64

// specState is the sequential LL/SC/VL object state: the current value and,
// per process, whether its link is still valid (no successful SC since its
// last LL). This compact form makes the spec Markovian in (value, links),
// which the memoization key exploits.
type specState struct {
	value string
	links uint64 // bit p set <=> process p's link is valid
}

// CheckLLSC reports whether h is linearizable with respect to the LL/SC/VL
// specification starting from the given initial value. It returns nil if a
// legal linearization exists, and an error describing the history otherwise.
//
// Process ids in h must be < 64, and len(h) <= MaxOps. Operations of the
// same process must not overlap (they are sequenced by Inv).
func CheckLLSC(h History, initial string) error {
	if len(h) == 0 {
		return nil
	}
	if len(h) > MaxOps {
		return fmt.Errorf("check: history has %d ops, max %d", len(h), MaxOps)
	}

	// Sort by invocation; per-process program order must follow Inv order.
	ops := make([]Op, len(h))
	copy(ops, h)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Inv < ops[j].Inv })

	// Per-process operation sequences (indices into ops).
	perProc := map[int][]int{}
	for i, op := range ops {
		if op.Proc < 0 || op.Proc >= 64 {
			return fmt.Errorf("check: process id %d out of range", op.Proc)
		}
		if op.Res <= op.Inv {
			return fmt.Errorf("check: op %v has Res <= Inv", op)
		}
		perProc[op.Proc] = append(perProc[op.Proc], i)
	}
	for p, idxs := range perProc {
		for j := 1; j < len(idxs); j++ {
			if ops[idxs[j]].Inv < ops[idxs[j-1]].Res {
				return fmt.Errorf("check: process %d has overlapping ops %v and %v",
					p, ops[idxs[j-1]], ops[idxs[j]])
			}
		}
	}

	c := &checker{ops: ops, perProc: perProc, visited: map[string]bool{}}
	if c.search(0, specState{value: initial}, make(map[int]int, len(perProc))) {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: history is NOT linearizable (initial=%s):\n", initial)
	for _, op := range ops {
		fmt.Fprintf(&b, "  %v\n", op)
	}
	return fmt.Errorf("%s", b.String())
}

type checker struct {
	ops     []Op
	perProc map[int][]int
	visited map[string]bool // (mask, state) configurations proven dead
}

// search tries to linearize the remaining operations given the set already
// linearized (mask), the spec state, and each process's progress. next maps
// proc -> count of its ops already linearized.
func (c *checker) search(mask uint64, st specState, next map[int]int) bool {
	if mask == 1<<len(c.ops)-1 {
		return true
	}
	key := stateKey(mask, st)
	if c.visited[key] {
		return false
	}

	// minRes is the earliest response among un-linearized ops: an op may
	// linearize now only if it was invoked before that response (otherwise
	// the completed op must come first).
	minRes := int64(1<<63 - 1)
	for i, op := range c.ops {
		if mask&(1<<i) == 0 && op.Res < minRes {
			minRes = op.Res
		}
	}

	for p, idxs := range c.perProc {
		if next[p] >= len(idxs) {
			continue
		}
		i := idxs[next[p]]
		op := c.ops[i]
		if op.Inv > minRes {
			continue // some completed op must linearize first
		}
		st2, legal := applySpec(st, op)
		if !legal {
			continue
		}
		next[p]++
		ok := c.search(mask|1<<i, st2, next)
		next[p]--
		if ok {
			return true
		}
	}
	c.visited[key] = true
	return false
}

// applySpec runs one operation against the sequential specification,
// reporting the successor state and whether the recorded result is legal.
func applySpec(st specState, op Op) (specState, bool) {
	bit := uint64(1) << op.Proc
	switch op.Kind {
	case OpLL:
		if op.Ret != st.value {
			return st, false
		}
		st.links |= bit
		return st, true
	case OpSC:
		want := st.links&bit != 0
		if op.OK != want {
			return st, false
		}
		if op.OK {
			st.value = op.Arg
			st.links = 0 // a successful SC invalidates every link
		}
		return st, true
	case OpVL:
		want := st.links&bit != 0
		if op.OK != want {
			return st, false
		}
		return st, true
	default:
		return st, false
	}
}

func stateKey(mask uint64, st specState) string {
	return fmt.Sprintf("%x|%x|%s", mask, st.links, st.value)
}
