package check

import (
	"math/rand"
	"strconv"
	"testing"
)

// genLegalHistory produces a history by actually executing random
// operations against the sequential LL/SC spec (so it is linearizable by
// construction), then stretching the intervals so that adjacent operations
// overlap. CheckLLSC must accept every such history.
func genLegalHistory(rng *rand.Rand, nproc, nops int) History {
	type state struct {
		value string
		links map[int]bool
	}
	st := state{value: "0", links: map[int]bool{}}
	var h History
	nextVal := 1
	for i := 0; i < nops; i++ {
		p := rng.Intn(nproc)
		base := int64(i * 4)
		// Stretch: Inv reaches back before the previous op's Res, creating
		// overlap while preserving per-process sequencing.
		inv := base - int64(rng.Intn(5))
		res := base + 2 + int64(rng.Intn(3))
		// Keep per-process ops non-overlapping: bump inv past p's last res.
		for j := len(h) - 1; j >= 0; j-- {
			if h[j].Proc == p {
				if inv <= h[j].Res {
					inv = h[j].Res + 1
				}
				break
			}
		}
		if res <= inv {
			res = inv + 1
		}
		switch rng.Intn(3) {
		case 0:
			h = append(h, Op{Proc: p, Kind: OpLL, Ret: st.value, Inv: inv, Res: res})
			st.links[p] = true
		case 1:
			ok := st.links[p]
			arg := strconv.Itoa(nextVal)
			nextVal++
			if ok {
				st.value = arg
				st.links = map[int]bool{}
			}
			h = append(h, Op{Proc: p, Kind: OpSC, Arg: arg, OK: ok, Inv: inv, Res: res})
		default:
			h = append(h, Op{Proc: p, Kind: OpVL, OK: st.links[p], Inv: inv, Res: res})
		}
	}
	return h
}

// TestCheckerAcceptsGeneratedLegalHistories is the checker's soundness
// property test: histories linearizable by construction are never rejected.
func TestCheckerAcceptsGeneratedLegalHistories(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nproc := 1 + rng.Intn(4)
		nops := 1 + rng.Intn(20)
		h := genLegalHistory(rng, nproc, nops)
		if err := CheckLLSC(h, "0"); err != nil {
			t.Fatalf("seed %d: legal history rejected: %v", seed, err)
		}
	}
}

// TestCheckerRejectsValueMutations flips an SC's written value after the
// fact: any LL that observed it now returns a value never written, which
// the checker must reject.
func TestCheckerRejectsValueMutations(t *testing.T) {
	rejected := 0
	tried := 0
	for seed := int64(0); seed < 300 && tried < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := genLegalHistory(rng, 3, 15)
		// Find an SC whose value some later LL returned.
		scIdx := -1
		for i, op := range h {
			if op.Kind != OpSC || !op.OK {
				continue
			}
			for _, later := range h[i+1:] {
				if later.Kind == OpLL && later.Ret == op.Arg {
					scIdx = i
					break
				}
			}
			if scIdx >= 0 {
				break
			}
		}
		if scIdx < 0 {
			continue
		}
		tried++
		mutated := make(History, len(h))
		copy(mutated, h)
		mutated[scIdx].Arg = "mutant-" + strconv.FormatInt(seed, 10)
		if err := CheckLLSC(mutated, "0"); err != nil {
			rejected++
		}
	}
	if tried == 0 {
		t.Fatal("generator never produced an observed SC; test is vacuous")
	}
	if rejected != tried {
		t.Fatalf("only %d/%d mutated histories rejected", rejected, tried)
	}
}

func BenchmarkCheckLLSC(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	h := genLegalHistory(rng, 4, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckLLSC(h, "0"); err != nil {
			b.Fatal(err)
		}
	}
}
