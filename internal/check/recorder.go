package check

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Recorder collects per-process operation records with timestamps from a
// shared atomic clock, for feeding CheckLLSC after a concurrent run. Each
// process records only into its own slot, so recording is race-free without
// locks; call History only after all processes are done.
type Recorder struct {
	clock atomic.Int64
	slots [][]Op
}

// NewRecorder returns a Recorder for nproc processes.
func NewRecorder(nproc int) *Recorder {
	return &Recorder{slots: make([][]Op, nproc)}
}

// Begin returns an invocation timestamp.
func (r *Recorder) Begin() int64 { return r.clock.Add(1) }

// End returns a response timestamp.
func (r *Recorder) End() int64 { return r.clock.Add(1) }

// RecordLL records a completed LL by process p that returned value ret.
func (r *Recorder) RecordLL(p int, ret string, inv, res int64) {
	r.slots[p] = append(r.slots[p], Op{Proc: p, Kind: OpLL, Ret: ret, Inv: inv, Res: res})
}

// RecordSC records a completed SC by process p that tried to write arg.
func (r *Recorder) RecordSC(p int, arg string, ok bool, inv, res int64) {
	r.slots[p] = append(r.slots[p], Op{Proc: p, Kind: OpSC, Arg: arg, OK: ok, Inv: inv, Res: res})
}

// RecordVL records a completed VL by process p.
func (r *Recorder) RecordVL(p int, ok bool, inv, res int64) {
	r.slots[p] = append(r.slots[p], Op{Proc: p, Kind: OpVL, OK: ok, Inv: inv, Res: res})
}

// History merges all per-process records. Call only after all recording
// goroutines have finished.
func (r *Recorder) History() History {
	var h History
	for _, s := range r.slots {
		h = append(h, s...)
	}
	return h
}

// WordsValue encodes a multiword value as an opaque history value string.
func WordsValue(v []uint64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatUint(x, 16)
	}
	return strings.Join(parts, ",")
}

// PatternValue encodes the test pattern (word j = base+j) by its base,
// returning an error string if v is not a pattern — which CheckLLSC will
// then reject as a value never written.
func PatternValue(v []uint64) string {
	for j := range v {
		if v[j] != v[0]+uint64(j) {
			return fmt.Sprintf("torn(%s)", WordsValue(v))
		}
	}
	return strconv.FormatUint(v[0], 10)
}
