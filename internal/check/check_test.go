package check

import (
	"strconv"
	"sync"
	"testing"

	"mwllsc"
)

// seqOps builds a strictly sequential history from (proc, kind, ...) steps.
type step struct {
	proc int
	kind Kind
	arg  string
	ret  string
	ok   bool
}

func sequential(steps ...step) History {
	h := make(History, len(steps))
	for i, s := range steps {
		h[i] = Op{
			Proc: s.proc, Kind: s.kind, Arg: s.arg, Ret: s.ret, OK: s.ok,
			Inv: int64(2 * i), Res: int64(2*i + 1),
		}
	}
	return h
}

func TestEmptyHistory(t *testing.T) {
	if err := CheckLLSC(nil, "0"); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialLegal(t *testing.T) {
	h := sequential(
		step{proc: 0, kind: OpLL, ret: "0"},
		step{proc: 0, kind: OpVL, ok: true},
		step{proc: 0, kind: OpSC, arg: "1", ok: true},
		step{proc: 1, kind: OpLL, ret: "1"},
		step{proc: 0, kind: OpSC, arg: "2", ok: false}, // link consumed
		step{proc: 1, kind: OpSC, arg: "3", ok: true},
		step{proc: 1, kind: OpVL, ok: false},
	)
	if err := CheckLLSC(h, "0"); err != nil {
		t.Fatal(err)
	}
}

func TestLLReturningUnwrittenValueRejected(t *testing.T) {
	h := sequential(
		step{proc: 0, kind: OpLL, ret: "99"},
	)
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted LL of a value never written")
	}
}

func TestStaleLLRejected(t *testing.T) {
	// p1 overwrites 0 with 1 strictly before p0's LL; LL must not see 0.
	h := History{
		{Proc: 1, Kind: OpLL, Ret: "0", Inv: 0, Res: 1},
		{Proc: 1, Kind: OpSC, Arg: "1", OK: true, Inv: 2, Res: 3},
		{Proc: 0, Kind: OpLL, Ret: "0", Inv: 4, Res: 5},
	}
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted stale LL")
	}
}

func TestDoubleSCSuccessWithoutLLRejected(t *testing.T) {
	h := sequential(
		step{proc: 0, kind: OpLL, ret: "0"},
		step{proc: 0, kind: OpSC, arg: "1", ok: true},
		step{proc: 0, kind: OpSC, arg: "2", ok: true}, // must fail: link consumed
	)
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted SC success without fresh LL")
	}
}

func TestBothConcurrentSCsSucceedRejected(t *testing.T) {
	// Two processes LL the same value, then both SCs "succeed" — one must
	// have failed.
	h := History{
		{Proc: 0, Kind: OpLL, Ret: "0", Inv: 0, Res: 1},
		{Proc: 1, Kind: OpLL, Ret: "0", Inv: 2, Res: 3},
		{Proc: 0, Kind: OpSC, Arg: "a", OK: true, Inv: 4, Res: 7},
		{Proc: 1, Kind: OpSC, Arg: "b", OK: true, Inv: 5, Res: 6},
	}
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted two successful SCs on one link generation")
	}
}

func TestSpuriousSCFailureAccepted(t *testing.T) {
	// An SC that fails while overlapping another successful SC is legal
	// (the success linearizes first).
	h := History{
		{Proc: 0, Kind: OpLL, Ret: "0", Inv: 0, Res: 1},
		{Proc: 1, Kind: OpLL, Ret: "0", Inv: 2, Res: 3},
		{Proc: 0, Kind: OpSC, Arg: "a", OK: false, Inv: 4, Res: 7},
		{Proc: 1, Kind: OpSC, Arg: "b", OK: true, Inv: 5, Res: 6},
	}
	if err := CheckLLSC(h, "0"); err != nil {
		t.Fatal(err)
	}
}

func TestUnjustifiedSCFailureRejected(t *testing.T) {
	// p0's SC fails but no successful SC exists anywhere: illegal.
	h := sequential(
		step{proc: 0, kind: OpLL, ret: "0"},
		step{proc: 0, kind: OpSC, arg: "1", ok: false},
	)
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted SC failure with no interfering success")
	}
}

func TestVLSemantics(t *testing.T) {
	legal := History{
		{Proc: 0, Kind: OpLL, Ret: "0", Inv: 0, Res: 1},
		{Proc: 1, Kind: OpLL, Ret: "0", Inv: 2, Res: 3},
		{Proc: 1, Kind: OpSC, Arg: "1", OK: true, Inv: 4, Res: 5},
		{Proc: 0, Kind: OpVL, OK: false, Inv: 6, Res: 7},
	}
	if err := CheckLLSC(legal, "0"); err != nil {
		t.Fatal(err)
	}
	illegal := History{
		{Proc: 0, Kind: OpLL, Ret: "0", Inv: 0, Res: 1},
		{Proc: 1, Kind: OpLL, Ret: "0", Inv: 2, Res: 3},
		{Proc: 1, Kind: OpSC, Arg: "1", OK: true, Inv: 4, Res: 5},
		{Proc: 0, Kind: OpVL, OK: true, Inv: 6, Res: 7},
	}
	if err := CheckLLSC(illegal, "0"); err == nil {
		t.Fatal("accepted VL=true after non-overlapping successful SC")
	}
}

func TestConcurrentLLCanReadEitherSide(t *testing.T) {
	// An LL overlapping a successful SC may return the old or new value;
	// both histories must be accepted.
	for _, ret := range []string{"0", "1"} {
		h := History{
			{Proc: 0, Kind: OpLL, Ret: "0", Inv: 0, Res: 1},
			{Proc: 0, Kind: OpSC, Arg: "1", OK: true, Inv: 2, Res: 5},
			{Proc: 1, Kind: OpLL, Ret: ret, Inv: 3, Res: 4},
		}
		if err := CheckLLSC(h, "0"); err != nil {
			t.Errorf("LL returning %q during overlapping SC rejected: %v", ret, err)
		}
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// The value written by an SC that completes strictly before an LL
	// begins must be visible (monotonicity): LL cannot return the initial
	// value once "1" was installed and then "2" by non-overlapping ops.
	h := History{
		{Proc: 0, Kind: OpLL, Ret: "0", Inv: 0, Res: 1},
		{Proc: 0, Kind: OpSC, Arg: "1", OK: true, Inv: 2, Res: 3},
		{Proc: 0, Kind: OpLL, Ret: "1", Inv: 4, Res: 5},
		{Proc: 0, Kind: OpSC, Arg: "2", OK: true, Inv: 6, Res: 7},
		{Proc: 1, Kind: OpLL, Ret: "1", Inv: 8, Res: 9}, // stale: must reject
	}
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted LL of overwritten value after both SCs completed")
	}
}

func TestOverlappingOpsSameProcessRejected(t *testing.T) {
	h := History{
		{Proc: 0, Kind: OpLL, Ret: "0", Inv: 0, Res: 5},
		{Proc: 0, Kind: OpVL, OK: true, Inv: 1, Res: 2},
	}
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted overlapping operations of one process")
	}
}

func TestTooLargeHistoryRejected(t *testing.T) {
	h := make(History, MaxOps+1)
	for i := range h {
		h[i] = Op{Proc: 0, Kind: OpVL, OK: false, Inv: int64(2 * i), Res: int64(2*i + 1)}
	}
	if err := CheckLLSC(h, "0"); err == nil {
		t.Fatal("accepted oversized history")
	}
}

// TestRecorderAgainstRealObject runs small concurrent workloads on the real
// implementation, records histories, and checks them. Repeated with many
// goroutine interleavings (the scheduler provides the nondeterminism).
func TestRecorderAgainstRealObject(t *testing.T) {
	const (
		n      = 3
		w      = 4
		opsPer = 5
		rounds = 200
	)
	initial := make([]uint64, w)
	for j := range initial {
		initial[j] = uint64(j) // pattern with base 0
	}
	for round := 0; round < rounds; round++ {
		obj, err := mwllsc.New(n, w, initial)
		if err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder(n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := obj.Handle(p)
				v := make([]uint64, w)
				for i := 0; i < opsPer; i++ {
					inv := rec.Begin()
					h.LL(v)
					res := rec.End()
					rec.RecordLL(p, PatternValue(v), inv, res)

					id := uint64(1 + p*1000 + i)
					next := make([]uint64, w)
					for j := range next {
						next[j] = id + uint64(j)
					}
					inv = rec.Begin()
					ok := h.SC(next)
					res = rec.End()
					rec.RecordSC(p, strconv.FormatUint(id, 10), ok, inv, res)
				}
			}(p)
		}
		wg.Wait()
		if err := CheckLLSC(rec.History(), "0"); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
