package vcodec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	words := make([]uint64, 16)
	w := NewWriter(words)
	if err := w.PutUint64(42); err != nil {
		t.Fatal(err)
	}
	if err := w.PutInt64(-7); err != nil {
		t.Fatal(err)
	}
	if err := w.PutFloat64(3.5); err != nil {
		t.Fatal(err)
	}
	if err := w.PutString("hello multiword"); err != nil {
		t.Fatal(err)
	}

	r := NewReader(words)
	if v, _ := r.Uint64(); v != 42 {
		t.Fatalf("Uint64 = %d", v)
	}
	if v, _ := r.Int64(); v != -7 {
		t.Fatalf("Int64 = %d", v)
	}
	if v, _ := r.Float64(); v != 3.5 {
		t.Fatalf("Float64 = %v", v)
	}
	if s, _ := r.String(); s != "hello multiword" {
		t.Fatalf("String = %q", s)
	}
	if r.Pos() != w.Pos() {
		t.Fatalf("reader pos %d != writer pos %d", r.Pos(), w.Pos())
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		words := make([]uint64, Words(len(b))+1)
		w := NewWriter(words)
		if err := w.PutBytes(b); err != nil {
			return false
		}
		got, err := NewReader(words).Bytes()
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInt64sRoundTrip(t *testing.T) {
	f := func(vs []int64) bool {
		back := ToInt64s(FromInt64s(vs))
		if len(back) != len(vs) {
			return false
		}
		for i := range vs {
			if back[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		words := make([]uint64, 1)
		if err := NewWriter(words).PutFloat64(v); err != nil {
			return false
		}
		got, err := NewReader(words).Float64()
		if err != nil {
			return false
		}
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowDetected(t *testing.T) {
	w := NewWriter(make([]uint64, 1))
	if err := w.PutUint64(1); err != nil {
		t.Fatal(err)
	}
	if err := w.PutUint64(2); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	if err := NewWriter(make([]uint64, 1)).PutString("too long"); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}

	r := NewReader(nil)
	if _, err := r.Uint64(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("read err = %v, want ErrOverflow", err)
	}
	// A corrupt length prefix must not panic.
	if _, err := NewReader([]uint64{1 << 40}).Bytes(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("corrupt length err = %v, want ErrOverflow", err)
	}
}

func TestWordsHelper(t *testing.T) {
	cases := map[int]int{0: 1, 1: 2, 8: 2, 9: 3, 16: 3, 17: 4}
	for n, want := range cases {
		if got := Words(n); got != want {
			t.Errorf("Words(%d) = %d, want %d", n, got, want)
		}
	}
}
