package vcodec

import (
	"bytes"
	"testing"
)

// FuzzBytesRoundTrip fuzzes the byte-string codec: whatever fits must come
// back identical, and nothing may panic.
func FuzzBytesRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("exactly8"))
	f.Add([]byte("nine byte"))
	f.Add(bytes.Repeat([]byte{0xff}, 65))
	f.Fuzz(func(t *testing.T, b []byte) {
		words := make([]uint64, Words(len(b)))
		w := NewWriter(words)
		if err := w.PutBytes(b); err != nil {
			t.Fatalf("PutBytes(%d bytes) into exact-size vector: %v", len(b), err)
		}
		got, err := NewReader(words).Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, b) {
			t.Fatalf("round trip mismatch: %x -> %x", b, got)
		}
	})
}

// FuzzReaderNeverPanics feeds arbitrary word vectors to the reader; every
// decode must return a value or an error, never panic or over-read.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]uint64, len(raw)/8)
		for i := range words {
			for j := 0; j < 8; j++ {
				words[i] |= uint64(raw[i*8+j]) << (8 * j)
			}
		}
		r := NewReader(words)
		for {
			if _, err := r.Bytes(); err != nil {
				break
			}
		}
		// A second pass with scalar decodes on whatever is left.
		r2 := NewReader(words)
		for {
			if _, err := r2.Uint64(); err != nil {
				break
			}
		}
	})
}
