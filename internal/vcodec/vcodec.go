// Package vcodec encodes typed records into the fixed-width []uint64 word
// vectors that multiword LL/SC variables store. Applications that keep a
// small struct (balances, sensor readings, a queue header) in a W-word
// variable use a Writer to lay the fields out and a Reader to take them
// apart; both are cursor-based and bounds-checked.
package vcodec

import (
	"errors"
	"fmt"
	"math"
)

// ErrOverflow is returned when a value does not fit the remaining words.
var ErrOverflow = errors.New("vcodec: record does not fit the word vector")

// Words returns how many words a byte payload of length n occupies when
// written with PutBytes (one length word plus ceil(n/8) payload words).
func Words(n int) int { return 1 + (n+7)/8 }

// Writer lays fields into a word vector front to back.
type Writer struct {
	words []uint64
	pos   int
}

// NewWriter returns a Writer over words (the caller's slice is written in
// place).
func NewWriter(words []uint64) *Writer { return &Writer{words: words} }

// Pos returns the next word index to be written.
func (w *Writer) Pos() int { return w.pos }

// PutUint64 appends one word.
func (w *Writer) PutUint64(v uint64) error {
	if w.pos >= len(w.words) {
		return ErrOverflow
	}
	w.words[w.pos] = v
	w.pos++
	return nil
}

// PutInt64 appends a signed word (two's complement).
func (w *Writer) PutInt64(v int64) error { return w.PutUint64(uint64(v)) }

// PutFloat64 appends an IEEE-754 double.
func (w *Writer) PutFloat64(v float64) error { return w.PutUint64(math.Float64bits(v)) }

// PutBytes appends a length-prefixed byte string, padding the final word
// with zeros.
func (w *Writer) PutBytes(b []byte) error {
	need := Words(len(b))
	if w.pos+need > len(w.words) {
		return ErrOverflow
	}
	w.words[w.pos] = uint64(len(b))
	w.pos++
	for i := 0; i < len(b); i += 8 {
		var word uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			word |= uint64(b[i+j]) << (8 * j)
		}
		w.words[w.pos] = word
		w.pos++
	}
	return nil
}

// PutString appends a length-prefixed string.
func (w *Writer) PutString(s string) error { return w.PutBytes([]byte(s)) }

// Reader takes fields out of a word vector front to back.
type Reader struct {
	words []uint64
	pos   int
}

// NewReader returns a Reader over words.
func NewReader(words []uint64) *Reader { return &Reader{words: words} }

// Pos returns the next word index to be read.
func (r *Reader) Pos() int { return r.pos }

// Uint64 reads one word.
func (r *Reader) Uint64() (uint64, error) {
	if r.pos >= len(r.words) {
		return 0, ErrOverflow
	}
	v := r.words[r.pos]
	r.pos++
	return v, nil
}

// Int64 reads a signed word.
func (r *Reader) Int64() (int64, error) {
	v, err := r.Uint64()
	return int64(v), err
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() (float64, error) {
	v, err := r.Uint64()
	return math.Float64frombits(v), err
}

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uint64()
	if err != nil {
		return nil, err
	}
	words := int(n+7) / 8
	if r.pos+words > len(r.words) {
		return nil, fmt.Errorf("%w: %d payload words past end", ErrOverflow, words)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.words[r.pos+i/8] >> (8 * (i % 8)))
	}
	r.pos += words
	return b, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	b, err := r.Bytes()
	return string(b), err
}

// FromInt64s converts a signed slice to words.
func FromInt64s(vs []int64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = uint64(v)
	}
	return out
}

// ToInt64s converts words to a signed slice.
func ToInt64s(ws []uint64) []int64 {
	out := make([]int64, len(ws))
	for i, w := range ws {
		out[i] = int64(w)
	}
	return out
}
