package mwobj

import "testing"

func TestPaperWords(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Space
		want int64
	}{
		{"zero", Space{}, 0},
		{"registers only", Space{RegisterWords: 7}, 7},
		{"llsc only", Space{LLSCWords: 5}, 5},
		{"both", Space{RegisterWords: 40, LLSCWords: 2}, 42},
		{"phys bytes do not count", Space{RegisterWords: 3, LLSCWords: 4, PhysBytes: 1 << 20}, 7},
	} {
		if got := tc.s.PaperWords(); got != tc.want {
			t.Errorf("%s: PaperWords() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestPaperWordsAccountsJPShape checks the arithmetic on the paper's own
// O(NW) shape: registers = N*(3W+2) + W-ish, one LL/SC word per process
// plus X — the point is that PaperWords sums exactly the two paper-model
// categories for a realistic footprint.
func TestPaperWordsAccountsJPShape(t *testing.T) {
	const n, w = 8, 16
	s := Space{
		RegisterWords: int64(n * (3*w + 2)),
		LLSCWords:     int64(n + 1),
		PhysBytes:     int64(n*(3*w+2))*8 + int64(n+1)*8,
	}
	want := int64(n*(3*w+2) + n + 1)
	if got := s.PaperWords(); got != want {
		t.Fatalf("PaperWords() = %d, want %d", got, want)
	}
	if s.PhysBytes != want*8 {
		t.Fatalf("PhysBytes = %d, want %d (8 bytes per word)", s.PhysBytes, want*8)
	}
}
