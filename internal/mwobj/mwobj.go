// Package mwobj defines the common interface implemented by every
// W-word LL/SC/VL object in this repository — the paper's algorithm
// (internal/core) and all baselines (internal/baseline) — so that
// conformance tests, applications, and benchmarks are implementation
// agnostic.
package mwobj

// MW is an N-process, W-word LL/SC/VL object with the semantics of
// Figure 1 of the paper lifted to W-word values:
//
//   - LL(p, dst) stores the object's current value into dst.
//   - SC(p, src) writes src and returns true iff no process performed a
//     successful SC since p's latest LL; otherwise it returns false and
//     leaves the value unchanged.
//   - VL(p) returns true iff no process performed a successful SC since
//     p's latest LL.
//
// A process id p in [0, N) must be driven by at most one goroutine at a
// time; distinct processes may run fully concurrently.
type MW interface {
	// N returns the number of processes the object was created for.
	N() int
	// W returns the value width in 64-bit words.
	W() int
	// LL performs a load-linked by process p; len(dst) must equal W.
	LL(p int, dst []uint64)
	// SC performs a store-conditional by process p; len(src) must equal W.
	SC(p int, src []uint64) bool
	// VL validates process p's latest LL.
	VL(p int) bool
}

// Factory builds a fresh MW object for n processes and w words holding
// initial; applications and tests are parameterized by it so any
// implementation (the paper's or a baseline) can sit underneath.
type Factory func(n, w int, initial []uint64) (MW, error)

// Space is a memory-footprint report in two accountings:
//
// The paper accounting counts what Theorem 1 counts — 64-bit safe
// registers and single-word LL/SC/VL objects, each as one word — and is the
// right basis for checking the paper's O(NW)-vs-O(N²W) claim.
//
// PhysBytes additionally charges everything our software substrate needs
// that the paper's model treats as free hardware (per-process LL link
// contexts, mutexes, retained GC cells), and is the right basis for "what
// does this cost me in Go".
type Space struct {
	// RegisterWords counts 64-bit safe-register words (paper accounting).
	RegisterWords int64
	// LLSCWords counts single-word LL/SC/VL objects (paper accounting).
	LLSCWords int64
	// PhysBytes estimates total bytes physically allocated.
	PhysBytes int64
}

// PaperWords returns the total paper-accounting word count.
func (s Space) PaperWords() int64 { return s.RegisterWords + s.LLSCWords }

// Spacer is implemented by objects that can report their footprint.
type Spacer interface {
	Space() Space
}

// PhysByteser is implemented by substrate pieces that can report their
// physical size (e.g. words, buffer arrays).
type PhysByteser interface {
	PhysBytes() int64
}
