package llscword

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTaggedValidation(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		valueBits uint
		init      uint64
		wantErr   bool
	}{
		{name: "ok small", n: 8, valueBits: 16, init: 0, wantErr: false},
		{name: "n zero", n: 0, valueBits: 16, init: 0, wantErr: true},
		{name: "valueBits zero", n: 2, valueBits: 0, init: 0, wantErr: true},
		{name: "valueBits too wide", n: 2, valueBits: 63, init: 0, wantErr: true},
		{name: "init too big", n: 2, valueBits: 4, init: 16, wantErr: true},
		{name: "counter squeeze", n: 1 << 20, valueBits: 40, init: 0, wantErr: true},
		{name: "max viable", n: 256, valueBits: 23, init: 1<<23 - 1, wantErr: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewTagged(tc.n, tc.valueBits, tc.init, false)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewTagged(%d, %d, %d) error = %v, wantErr %v",
					tc.n, tc.valueBits, tc.init, err, tc.wantErr)
			}
		})
	}
}

// TestTaggedPackRoundTrip checks that pack/value are inverse on the value
// field for arbitrary pids and counters, for several field geometries.
func TestTaggedPackRoundTrip(t *testing.T) {
	geometries := []struct {
		n         int
		valueBits uint
	}{
		{1, 1}, {1, 16}, {7, 9}, {64, 20}, {255, 12},
	}
	for _, g := range geometries {
		w := MustTagged(g.n, g.valueBits, 0)
		f := func(pid uint8, counter uint32, value uint64) bool {
			p := int(pid) % (g.n + 1) // include the reserved init pid
			v := value & w.valueMask
			packed := w.pack(p, uint64(counter), v)
			return w.value(packed) == v
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("geometry n=%d valueBits=%d: %v", g.n, g.valueBits, err)
		}
	}
}

// TestTaggedTagUniqueness exercises the core soundness property of the
// construction: no packed word (tag+value) is ever produced twice, even when
// the same values are written repeatedly by the same processes.
func TestTaggedTagUniqueness(t *testing.T) {
	const n = 4
	w := MustTagged(n, 8, 0)
	seen := map[uint64]bool{w.word.Load(): true}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		p := rng.Intn(n)
		v := uint64(rng.Intn(4)) // tiny value domain to maximize collision pressure
		if rng.Intn(2) == 0 {
			w.LL(p)
			if !w.SC(p, v) {
				continue
			}
		} else {
			w.Write(p, v)
		}
		packed := w.word.Load()
		if seen[packed] {
			t.Fatalf("packed word %#x repeated after %d mutations", packed, i)
		}
		seen[packed] = true
	}
}

func TestTaggedPanicsOnOversizeValue(t *testing.T) {
	w := MustTagged(2, 4, 0)
	w.LL(0)
	assertPanics(t, "SC oversize", func() { w.SC(0, 16) })
	assertPanics(t, "Write oversize", func() { w.Write(0, 16) })
}

func TestTaggedCounterExhaustionPanics(t *testing.T) {
	w := MustTagged(2, 16, 0)
	w.ctx[0].counter = w.maxCount // simulate an exhausted process
	w.LL(0)
	assertPanics(t, "exhausted SC", func() { w.SC(0, 1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", name)
		}
	}()
	f()
}
