// Package llscword implements single-word (64-bit) Load-Linked /
// Store-Conditional / Validate objects on top of the compare-and-swap and
// swap primitives that Go's sync/atomic exposes.
//
// The paper assumes the hardware provides word-sized LL/SC/VL objects.
// Real processors do not (they provide CAS or restricted LL/SC), so this
// package closes that gap with two wait-free constructions:
//
//   - Tagged packs the value together with a tag that is unique across all
//     mutations of the word (pid + per-process counter). CAS equality on the
//     packed word is then exactly "no successful SC or Write since my LL",
//     which is the LL/SC success rule. The construction is bounded: a process
//     may mutate a given word at most 2^counterBits times (checked, and far
//     beyond any realistic execution for the configurations we accept).
//
//   - Ptr stores an atomic pointer to an immutable cell. Go's garbage
//     collector cannot recycle a cell while some process's LL context still
//     references it, so pointer equality is exact (no ABA) and the
//     construction is unbounded — at the cost of one allocation per mutation.
//
// Both satisfy the Word interface used by the multiword algorithm. All
// operations are wait-free and run in O(1) steps.
//
// Usage rule (inherited from the paper's model): a process id p must be
// driven by at most one goroutine at a time.
package llscword

// Word is a single 64-bit LL/SC/VL object shared by n processes, with the
// semantics of Figure 1 of the paper, plus two auxiliary operations the
// multiword algorithm needs:
//
//   - Read returns the current value without creating an LL context.
//   - Write unconditionally replaces the value. It behaves like a successful
//     SC with respect to everyone else: any SC conditioned on an earlier LL
//     fails afterwards, and any VL on an earlier LL returns false.
//
// Implementations store only values that fit in the object's configured
// value width (valueBits); the remaining bits carry the tag.
type Word interface {
	// LL returns the object's current value and records it as process p's
	// link context for subsequent SC/VL calls.
	LL(p int) uint64
	// SC writes v and returns true iff no successful SC or Write occurred
	// since p's latest LL on this word; otherwise it leaves the value
	// unchanged and returns false.
	SC(p int, v uint64) bool
	// VL returns true iff no successful SC or Write occurred since p's
	// latest LL on this word.
	VL(p int) bool
	// Read returns the current value without affecting p's link context.
	Read(p int) uint64
	// Write unconditionally sets the value, invalidating all outstanding
	// links on this word.
	Write(p int, v uint64)
}

// cacheLine is the assumed cache-line size in bytes; per-process link
// contexts are padded to this size to avoid false sharing between processes.
const cacheLine = 64
