package llscword

import (
	"fmt"
	"sync"
	"testing"
)

// Ablation: per-process link contexts padded to a cache line (64 B each)
// versus compact (16 B, four processes per line). Contended LL/SC rounds
// show the false-sharing cost compact contexts pay; the space benches in
// E2 show what padding costs in bytes.
func BenchmarkTaggedContextPadding(b *testing.B) {
	for _, padded := range []bool{false, true} {
		for _, g := range []int{1, 4} {
			b.Run(fmt.Sprintf("padded=%v/G=%d", padded, g), func(b *testing.B) {
				w, err := NewTagged(g, 16, 0, padded)
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				per := b.N/g + 1
				b.ResetTimer()
				for p := 0; p < g; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							v := w.LL(p)
							w.SC(p, (v+1)&0xffff)
						}
					}(p)
				}
				wg.Wait()
			})
		}
	}
}

// Substrate comparison at the single-word level (the E5 ablation's
// denominator): one LL/SC round on each construction.
func BenchmarkWordRound(b *testing.B) {
	words := map[string]Word{
		"tagged": MustTagged(1, 16, 0),
		"ptr":    NewPtr(1, 0),
	}
	for name, w := range words {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := w.LL(0)
				w.SC(0, (v+1)&0xffff)
			}
		})
	}
}

func BenchmarkWordWrite(b *testing.B) {
	words := map[string]Word{
		"tagged": MustTagged(1, 16, 0),
		"ptr":    NewPtr(1, 0),
	}
	for name, w := range words {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Write(0, uint64(i)&0xffff)
			}
		})
	}
}
