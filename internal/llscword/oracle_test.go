package llscword

import (
	"math/rand"
	"testing"
)

// wordOracle is the exact sequential LL/SC/VL model for a single word.
type wordOracle struct {
	value uint64
	links map[int]bool
}

// TestWordOracleEquivalence drives random single-threaded op sequences
// against both constructions and the model; every return value must agree.
// This pins Write-invalidates-links and cross-process link semantics at the
// substrate level.
func TestWordOracleEquivalence(t *testing.T) {
	for _, build := range []struct {
		name string
		mk   func(n int, init uint64) Word
	}{
		{"tagged", func(n int, init uint64) Word { return MustTagged(n, 12, init) }},
		{"ptr", func(n int, init uint64) Word { return NewPtr(n, init) }},
	} {
		t.Run(build.name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(6)
				init := uint64(rng.Intn(100))
				w := build.mk(n, init)
				oracle := &wordOracle{value: init, links: map[int]bool{}}

				for step := 0; step < 500; step++ {
					p := rng.Intn(n)
					v := uint64(rng.Intn(1000))
					switch rng.Intn(5) {
					case 0: // LL
						got := w.LL(p)
						oracle.links[p] = true
						if got != oracle.value {
							t.Fatalf("seed %d step %d: LL(p%d) = %d, oracle %d",
								seed, step, p, got, oracle.value)
						}
					case 1: // SC
						got := w.SC(p, v)
						want := oracle.links[p]
						if want {
							oracle.value = v
							oracle.links = map[int]bool{}
						}
						if got != want {
							t.Fatalf("seed %d step %d: SC(p%d) = %v, oracle %v",
								seed, step, p, got, want)
						}
					case 2: // VL
						if got, want := w.VL(p), oracle.links[p]; got != want {
							t.Fatalf("seed %d step %d: VL(p%d) = %v, oracle %v",
								seed, step, p, got, want)
						}
					case 3: // Read
						if got := w.Read(p); got != oracle.value {
							t.Fatalf("seed %d step %d: Read(p%d) = %d, oracle %d",
								seed, step, p, got, oracle.value)
						}
					default: // Write
						w.Write(p, v)
						oracle.value = v
						oracle.links = map[int]bool{}
					}
				}
			}
		})
	}
}
