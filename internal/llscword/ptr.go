package llscword

import "sync/atomic"

// Ptr is a wait-free single-word LL/SC/VL object built from CAS on a
// pointer to an immutable cell. Because a cell referenced by some process's
// LL context is reachable, the garbage collector cannot recycle its address,
// so pointer equality is exactly "no successful mutation since my LL" — the
// ABA problem cannot arise. Semantics are exact and unbounded; the cost is
// one small allocation per SC/Write.
//
// The zero value is not usable; use NewPtr.
type Ptr struct {
	word   atomic.Pointer[ptrCell]
	ctx    []ptrCtx // per-process link state, indexed p*stride
	stride int
}

type ptrCell struct {
	v uint64
}

// ptrCtx is 16 bytes like taggedCtx, so compact/padded strides match.
type ptrCtx struct {
	observed *ptrCell
	_        [8]byte
}

// NewPtr returns a Ptr word for n processes initialized to init. If padded
// is true, per-process link contexts get cache-line stride.
func NewPtr(n int, init uint64, padded ...bool) *Ptr {
	stride := strideCompact
	if len(padded) > 0 && padded[0] {
		stride = stridePadded
	}
	p := &Ptr{ctx: make([]ptrCtx, n*stride), stride: stride}
	p.word.Store(&ptrCell{v: init})
	return p
}

// LL implements Word.
func (t *Ptr) LL(p int) uint64 {
	c := t.word.Load()
	t.ctx[p*t.stride].observed = c
	return c.v
}

// SC implements Word.
func (t *Ptr) SC(p int, v uint64) bool {
	return t.word.CompareAndSwap(t.ctx[p*t.stride].observed, &ptrCell{v: v})
}

// VL implements Word.
func (t *Ptr) VL(p int) bool {
	return t.word.Load() == t.ctx[p*t.stride].observed
}

// Read implements Word.
func (t *Ptr) Read(p int) uint64 {
	return t.word.Load().v
}

// Write implements Word.
func (t *Ptr) Write(p int, v uint64) {
	t.word.Swap(&ptrCell{v: v})
}

// PhysBytes reports the physical footprint: the pointer word, the live
// cell, and all per-process link contexts (retained cells referenced only
// by links are attributed to the linking process's context slot).
func (t *Ptr) PhysBytes() int64 {
	return 8 + 8 + int64(len(t.ctx))*16
}

var _ Word = (*Ptr)(nil)
