package llscword

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Tagged is a wait-free single-word LL/SC/VL object built from CAS by
// packing the value and a mutation-unique tag into one uint64:
//
//	| counter (counterBits) | pid (pidBits) | value (valueBits) |
//
// Every mutation (SC or Write) by process p stamps the word with p's next
// counter value, so no packed word is ever repeated during an execution.
// Hence "packed word unchanged" (what CAS/equality tests) is equivalent to
// "no successful mutation happened", which is exactly the LL/SC/VL rule.
// This sidesteps the ABA problem without garbage collection.
//
// The zero value is not usable; use NewTagged.
type Tagged struct {
	word   atomic.Uint64
	ctx    []taggedCtx // per-process link state, indexed p*stride
	stride int

	valueBits uint
	pidBits   uint
	valueMask uint64
	maxCount  uint64
}

// taggedCtx is one process's link state: 16 bytes, so in compact mode four
// processes share a cache line (cheap in space, some false sharing), and in
// padded mode each process owns a full line (fast under contention).
type taggedCtx struct {
	observed uint64 // packed word read by this process's latest LL
	counter  uint64 // next tag counter for this process (starts at 1)
}

// ctxStride values: compact = adjacent contexts, padded = one cache line
// per context.
const (
	strideCompact = 1
	stridePadded  = cacheLine / 16
)

// MinCounterBits is the smallest per-process tag counter width NewTagged
// accepts. With 32 bits a process may mutate one word 4·10^9 times before
// exhausting its tag space. Exhausted tags cause a panic rather than silent
// ABA.
const MinCounterBits = 32

// NewTagged returns a Tagged word for n processes holding values of at most
// valueBits bits, initialized to init. If padded is true, per-process link
// contexts are padded to cache-line stride (use for heavily contended words;
// costs 64 bytes per process instead of 16). It returns an error if the tag
// space left after the value and pid fields is below MinCounterBits, in
// which case the caller should use Ptr instead.
func NewTagged(n int, valueBits uint, init uint64, padded bool) (*Tagged, error) {
	if n < 1 {
		return nil, fmt.Errorf("llscword: n must be >= 1, got %d", n)
	}
	if valueBits < 1 || valueBits > 62 {
		return nil, fmt.Errorf("llscword: valueBits must be in [1,62], got %d", valueBits)
	}
	// Reserve one extra pid value for the initialization tag so that the
	// initial packed word is also unique.
	pidBits := uint(bits.Len(uint(n)))
	counterBits := 64 - valueBits - pidBits
	if counterBits > 64 || counterBits < MinCounterBits { // > 64: unsigned underflow
		return nil, fmt.Errorf(
			"llscword: only %d counter bits left for n=%d, valueBits=%d (need >= %d); use Ptr",
			int64(64)-int64(valueBits)-int64(pidBits), n, valueBits, MinCounterBits)
	}
	stride := strideCompact
	if padded {
		stride = stridePadded
	}
	t := &Tagged{
		ctx:       make([]taggedCtx, n*stride),
		stride:    stride,
		valueBits: valueBits,
		pidBits:   pidBits,
		valueMask: 1<<valueBits - 1,
		maxCount:  1<<counterBits - 1,
	}
	if init > t.valueMask {
		return nil, fmt.Errorf("llscword: init value %d exceeds %d value bits", init, valueBits)
	}
	for p := 0; p < n; p++ {
		t.ctx[p*stride].counter = 1
	}
	// The initialization write uses pid = n (reserved) and counter = 0,
	// a combination no process ever produces.
	t.word.Store(t.pack(n, 0, init))
	return t, nil
}

// MustTagged is NewTagged (compact contexts) that panics on error; for
// tests and tools.
func MustTagged(n int, valueBits uint, init uint64) *Tagged {
	t, err := NewTagged(n, valueBits, init, false)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tagged) pack(pid int, counter, value uint64) uint64 {
	return counter<<(t.valueBits+t.pidBits) | uint64(pid)<<t.valueBits | value
}

func (t *Tagged) value(packed uint64) uint64 { return packed & t.valueMask }

// fresh mints a new packed word carrying v with a tag unique to this
// execution, consuming one counter value of process p.
func (t *Tagged) fresh(p int, v uint64) uint64 {
	c := &t.ctx[p*t.stride]
	if c.counter >= t.maxCount {
		panic("llscword: per-process tag space exhausted; use Ptr for this workload")
	}
	n := t.pack(p, c.counter, v)
	c.counter++
	return n
}

// LL implements Word.
func (t *Tagged) LL(p int) uint64 {
	w := t.word.Load()
	t.ctx[p*t.stride].observed = w
	return t.value(w)
}

// SC implements Word.
func (t *Tagged) SC(p int, v uint64) bool {
	if v > t.valueMask {
		panic(fmt.Sprintf("llscword: SC value %d exceeds %d value bits", v, t.valueBits))
	}
	return t.word.CompareAndSwap(t.ctx[p*t.stride].observed, t.fresh(p, v))
}

// VL implements Word.
func (t *Tagged) VL(p int) bool {
	return t.word.Load() == t.ctx[p*t.stride].observed
}

// Read implements Word.
func (t *Tagged) Read(p int) uint64 {
	return t.value(t.word.Load())
}

// Write implements Word. The swap installs a fresh tag, so every
// outstanding link on this word is invalidated, exactly as a successful SC
// would — which is what the multiword algorithm's Help announcement (Line 1)
// relies on.
func (t *Tagged) Write(p int, v uint64) {
	if v > t.valueMask {
		panic(fmt.Sprintf("llscword: Write value %d exceeds %d value bits", v, t.valueBits))
	}
	t.word.Swap(t.fresh(p, v))
}

// PhysBytes reports the physical memory footprint of this word object:
// the shared word plus all per-process link contexts.
func (t *Tagged) PhysBytes() int64 {
	return 8 + int64(len(t.ctx))*16
}

var _ Word = (*Tagged)(nil)
