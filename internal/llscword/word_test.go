package llscword

import (
	"sync"
	"testing"
)

// variants returns a fresh instance of every Word implementation under a
// common constructor signature, so the semantic tests below run against all
// of them.
func variants(t *testing.T, n int, init uint64) map[string]Word {
	t.Helper()
	return map[string]Word{
		"tagged": MustTagged(n, 16, init),
		"ptr":    NewPtr(n, init),
	}
}

func TestSequentialLLSC(t *testing.T) {
	for name, w := range variants(t, 2, 7) {
		t.Run(name, func(t *testing.T) {
			if got := w.LL(0); got != 7 {
				t.Fatalf("LL = %d, want 7", got)
			}
			if !w.VL(0) {
				t.Fatal("VL after LL with no interference = false, want true")
			}
			if !w.SC(0, 8) {
				t.Fatal("SC after uninterfered LL failed, want success")
			}
			if got := w.Read(0); got != 8 {
				t.Fatalf("Read = %d, want 8", got)
			}
			// A second SC without a new LL must fail: the process's own
			// successful SC counts as "a successful SC since the latest LL".
			if w.SC(0, 9) {
				t.Fatal("second SC without LL succeeded, want failure")
			}
			if got := w.Read(0); got != 8 {
				t.Fatalf("value changed by failed SC: Read = %d, want 8", got)
			}
		})
	}
}

func TestSCFailsAfterInterveningSC(t *testing.T) {
	for name, w := range variants(t, 2, 0) {
		t.Run(name, func(t *testing.T) {
			w.LL(0)
			w.LL(1)
			if !w.SC(1, 42) {
				t.Fatal("process 1's SC failed, want success")
			}
			if w.VL(0) {
				t.Fatal("VL(0) after interfering SC = true, want false")
			}
			if w.SC(0, 99) {
				t.Fatal("process 0's SC after interference succeeded, want failure")
			}
			if got := w.Read(0); got != 42 {
				t.Fatalf("Read = %d, want 42", got)
			}
		})
	}
}

func TestWriteInvalidatesLinks(t *testing.T) {
	for name, w := range variants(t, 2, 1) {
		t.Run(name, func(t *testing.T) {
			w.LL(0)
			w.Write(1, 5)
			if w.VL(0) {
				t.Fatal("VL after Write = true, want false")
			}
			if w.SC(0, 9) {
				t.Fatal("SC after Write succeeded, want failure")
			}
			if got := w.Read(0); got != 5 {
				t.Fatalf("Read = %d, want 5", got)
			}
		})
	}
}

func TestWriteByLinkHolderInvalidatesOwnLink(t *testing.T) {
	// Line 1 of the paper's LL writes Help[p] unconditionally; Lemma 2's
	// proof depends on that write failing SCs linked before it — including
	// the writer's own.
	for name, w := range variants(t, 1, 0) {
		t.Run(name, func(t *testing.T) {
			w.LL(0)
			w.Write(0, 3)
			if w.VL(0) {
				t.Fatal("VL after own Write = true, want false")
			}
			if w.SC(0, 4) {
				t.Fatal("SC after own Write succeeded, want failure")
			}
		})
	}
}

func TestReadDoesNotAffectLink(t *testing.T) {
	for name, w := range variants(t, 2, 10) {
		t.Run(name, func(t *testing.T) {
			w.LL(0)
			w.Write(1, 11)
			if got := w.Read(0); got != 11 {
				t.Fatalf("Read = %d, want 11", got)
			}
			// Read must not refresh the link: SC still fails.
			if w.SC(0, 12) {
				t.Fatal("SC succeeded after Read of changed value, want failure")
			}
		})
	}
}

func TestLLRefreshesLink(t *testing.T) {
	for name, w := range variants(t, 2, 0) {
		t.Run(name, func(t *testing.T) {
			w.LL(0)
			w.Write(1, 1)
			if got := w.LL(0); got != 1 {
				t.Fatalf("LL = %d, want 1", got)
			}
			if !w.SC(0, 2) {
				t.Fatal("SC after refreshed LL failed, want success")
			}
		})
	}
}

func TestIndependentLinksPerProcess(t *testing.T) {
	for name, w := range variants(t, 3, 0) {
		t.Run(name, func(t *testing.T) {
			w.LL(0)
			w.LL(1)
			w.LL(2)
			if !w.SC(2, 5) {
				t.Fatal("SC(2) failed")
			}
			if w.VL(0) || w.VL(1) {
				t.Fatal("VL(0)/VL(1) true after SC(2), want false")
			}
			// Process 2's own link is also consumed by its successful SC.
			if w.SC(2, 6) {
				t.Fatal("SC(2) without new LL succeeded, want failure")
			}
		})
	}
}

// TestConcurrentCounter drives all processes through LL/SC increment loops
// and checks that the final value equals the number of successful SCs — the
// defining property of LL/SC (every successful SC saw the immediately
// preceding value).
func TestConcurrentCounter(t *testing.T) {
	const (
		n      = 8
		perOps = 2000
	)
	for name, w := range variants(t, n, 0) {
		t.Run(name, func(t *testing.T) {
			var (
				wg        sync.WaitGroup
				successes [n]int64
			)
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perOps; i++ {
						v := w.LL(p)
						if w.SC(p, v+1) {
							successes[p]++
						}
					}
				}(p)
			}
			wg.Wait()
			var total int64
			for _, s := range successes {
				total += s
			}
			if got := int64(w.Read(0)); got != total {
				t.Fatalf("final value = %d, want %d (sum of successful SCs)", got, total)
			}
			if total == 0 {
				t.Fatal("no SC ever succeeded; scheduler starvation is not plausible here")
			}
		})
	}
}

// TestConcurrentWritersAndLinkers mixes unconditional Writes with LL/SC and
// checks only that the object never exposes a value nobody wrote.
func TestConcurrentWritersAndLinkers(t *testing.T) {
	const n = 6
	for name, w := range variants(t, n, 0) {
		t.Run(name, func(t *testing.T) {
			valid := func(v uint64) bool { return v < 1<<15 }
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < 1000; i++ {
						switch i % 3 {
						case 0:
							w.Write(p, uint64(i%100))
						case 1:
							v := w.LL(p)
							if !valid(v) {
								t.Errorf("LL returned unwritten value %d", v)
								return
							}
							w.SC(p, v+1)
						default:
							if v := w.Read(p); !valid(v) {
								t.Errorf("Read returned unwritten value %d", v)
								return
							}
						}
					}
				}(p)
			}
			wg.Wait()
		})
	}
}
