package llscword

import (
	"sync"
	"testing"
)

// TestPtrNoABAUnderRecycledValues re-creates the classic ABA pattern
// (value changes A -> B -> A while a process holds a link) and checks that
// the pointer construction still fails the stale SC. The Tagged variant is
// covered by TestTaggedTagUniqueness; this is the Ptr counterpart.
func TestPtrNoABAUnderRecycledValues(t *testing.T) {
	w := NewPtr(2, 100)
	w.LL(0) // process 0 links value 100 (A)
	w.Write(1, 200)
	w.Write(1, 100) // back to A: same value, different cell
	if w.VL(0) {
		t.Fatal("VL = true across A->B->A, want false")
	}
	if w.SC(0, 300) {
		t.Fatal("SC succeeded across A->B->A, want failure")
	}
	if got := w.Read(0); got != 100 {
		t.Fatalf("Read = %d, want 100", got)
	}
}

func TestPtrFullValueRange(t *testing.T) {
	// Unlike Tagged, Ptr imposes no width restriction on values.
	w := NewPtr(1, ^uint64(0))
	if got := w.LL(0); got != ^uint64(0) {
		t.Fatalf("LL = %#x, want all ones", got)
	}
	if !w.SC(0, 1<<63) {
		t.Fatal("SC failed")
	}
	if got := w.Read(0); got != 1<<63 {
		t.Fatalf("Read = %#x, want 1<<63", got)
	}
}

// TestPtrConcurrentDistinctCells checks under the race detector that
// concurrent SC/Write traffic never tears: every observed value is one that
// some process wrote.
func TestPtrConcurrentDistinctCells(t *testing.T) {
	const n = 8
	w := NewPtr(n, 0)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				v := w.LL(p)
				if v%2 == 1 {
					t.Errorf("observed odd value %d; only even values are written", v)
					return
				}
				w.SC(p, v+2)
			}
		}(p)
	}
	wg.Wait()
}
