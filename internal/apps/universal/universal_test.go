package universal

import (
	"sync"
	"testing"

	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
)

func factory(t *testing.T) mwobj.Factory {
	t.Helper()
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func newWF(t *testing.T, n, uw int, initial []uint64) *WaitFree {
	t.Helper()
	u, err := NewWaitFree(factory(t), n, uw, initial)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestWaitFreeSequentialApply(t *testing.T) {
	u := newWF(t, 2, 1, []uint64{10})
	got := u.Apply(0, func(s []uint64) uint64 {
		old := s[0]
		s[0] += 5
		return old
	})
	if got != 10 {
		t.Fatalf("response = %d, want 10", got)
	}
	st := make([]uint64, 1)
	u.Read(1, st)
	if st[0] != 15 {
		t.Fatalf("state = %d, want 15", st[0])
	}
	if u.Applied(0, 0) != 1 {
		t.Fatalf("applied count = %d, want 1", u.Applied(0, 0))
	}
}

func TestWaitFreeValidatesInitialState(t *testing.T) {
	if _, err := NewWaitFree(factory(t), 2, 3, []uint64{0}); err == nil {
		t.Fatal("accepted wrong-width initial state")
	}
}

// TestWaitFreeExactlyOnce is the crucial correctness property of the
// helping construction: concurrent increments are each applied exactly
// once, even though helpers may fold them speculatively many times.
func TestWaitFreeExactlyOnce(t *testing.T) {
	const (
		n   = 8
		ops = 400
	)
	u := newWF(t, n, 1, []uint64{0})
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				u.Apply(p, func(s []uint64) uint64 {
					s[0]++
					return s[0]
				})
			}
		}(p)
	}
	wg.Wait()
	st := make([]uint64, 1)
	u.Read(0, st)
	if st[0] != n*ops {
		t.Fatalf("counter = %d, want %d (exactly-once application)", st[0], n*ops)
	}
	for q := 0; q < n; q++ {
		if got := u.Applied(0, q); got != ops {
			t.Fatalf("process %d applied count = %d, want %d", q, got, ops)
		}
	}
}

// TestWaitFreeResponsesAreOwn verifies responses are routed per process:
// every fetch-and-add response must be unique across all processes.
func TestWaitFreeResponsesAreOwn(t *testing.T) {
	const (
		n   = 6
		ops = 300
	)
	u := newWF(t, n, 1, []uint64{0})
	responses := make([][]uint64, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				r := u.Apply(p, func(s []uint64) uint64 {
					old := s[0]
					s[0]++
					return old
				})
				responses[p] = append(responses[p], r)
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n*ops)
	for p := range responses {
		for _, r := range responses[p] {
			if seen[r] {
				t.Fatalf("duplicate fetch-and-add response %d", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != n*ops {
		t.Fatalf("got %d distinct responses, want %d", len(seen), n*ops)
	}
}

func TestWaitFreeMultiWordState(t *testing.T) {
	const n = 4
	// A 4-word vector where ops rotate and increment; checks user-state
	// slicing against counts/responses regions.
	u := newWF(t, n, 4, []uint64{1, 2, 3, 4})
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u.Apply(p, func(s []uint64) uint64 {
					s[0], s[1], s[2], s[3] = s[3]+1, s[0], s[1], s[2]
					return 0
				})
			}
		}(p)
	}
	wg.Wait()
	st := make([]uint64, 4)
	u.Read(0, st)
	var sum uint64
	for _, x := range st {
		sum += x
	}
	// Initial sum 10; each of the 800 ops adds exactly 1.
	if sum != 10+800 {
		t.Fatalf("state sum = %d, want 810", sum)
	}
}

func TestLockFreeApply(t *testing.T) {
	f := factory(t)
	obj, err := f(4, 2, []uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	u := NewLockFree(obj)
	if u.StateWidth() != 2 {
		t.Fatalf("StateWidth = %d", u.StateWidth())
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				u.Apply(p, func(s []uint64) uint64 {
					s[0]++
					s[1] += 2
					return s[0]
				})
			}
		}(p)
	}
	wg.Wait()
	st := make([]uint64, 2)
	u.Read(0, st)
	if st[0] != 2000 || st[1] != 4000 {
		t.Fatalf("state = %v, want [2000 4000]", st)
	}
}
