package universal

import (
	"sync"
	"testing"

	"mwllsc/internal/impls"
)

// Ablation: the lock-free retry loop vs the wait-free helping construction.
// Helping costs a fold over N announcement slots per attempt; the benefit
// is the bounded step count. Uncontended and contended variants.
func BenchmarkApplyUncontended(b *testing.B) {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		b.Fatal(err)
	}
	inc := func(s []uint64) uint64 { s[0]++; return s[0] }

	b.Run("lockfree", func(b *testing.B) {
		obj, err := f(4, 1, []uint64{0})
		if err != nil {
			b.Fatal(err)
		}
		u := NewLockFree(obj)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u.Apply(0, inc)
		}
	})
	b.Run("waitfree", func(b *testing.B) {
		u, err := NewWaitFree(f, 4, 1, []uint64{0})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u.Apply(0, inc)
		}
	})
}

func BenchmarkApplyContended(b *testing.B) {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		b.Fatal(err)
	}
	inc := func(s []uint64) uint64 { s[0]++; return s[0] }
	const g = 4

	runWith := func(b *testing.B, apply func(p int)) {
		var wg sync.WaitGroup
		per := b.N/g + 1
		b.ResetTimer()
		for p := 0; p < g; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					apply(p)
				}
			}(p)
		}
		wg.Wait()
	}

	b.Run("lockfree", func(b *testing.B) {
		obj, err := f(g, 1, []uint64{0})
		if err != nil {
			b.Fatal(err)
		}
		u := NewLockFree(obj)
		runWith(b, func(p int) { u.Apply(p, inc) })
	})
	b.Run("waitfree", func(b *testing.B) {
		u, err := NewWaitFree(f, g, 1, []uint64{0})
		if err != nil {
			b.Fatal(err)
		}
		runWith(b, func(p int) { u.Apply(p, inc) })
	})
}
