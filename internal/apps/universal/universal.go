// Package universal implements universal constructions over a multiword
// LL/SC object: any sequential object whose state fits in a fixed number of
// 64-bit words becomes a linearizable shared object. This is the first
// application family the paper's introduction cites (Anderson & Moir's
// universal constructions [1]): the multiword LL/SC variable is exactly the
// primitive those constructions consume, and by the paper's result their
// space cost drops by a factor of N.
//
// Two variants are provided:
//
//   - LockFree: the classic LL -> apply -> SC retry loop. Individual
//     operations can starve (lock-free, not wait-free), but the system
//     always makes progress.
//   - WaitFree: operations are announced; every attempt folds all pending
//     announced operations of all processes into its proposed state, so
//     after at most two failed SCs the caller's operation has been applied
//     by somebody (Herlihy-style helping). Every Apply finishes in a
//     bounded number of steps.
//
// Operations must be deterministic pure functions of the state: a helper
// may execute an operation on a proposal that never gets installed, so side
// effects would be duplicated.
package universal

import (
	"fmt"
	"sync/atomic"

	"mwllsc/internal/mwobj"
)

// Op mutates a state vector in place and returns a response word. It must
// be deterministic and side-effect free; it may be executed several times
// on speculative copies of the state.
type Op func(state []uint64) (response uint64)

// LockFree is the retry-loop universal construction.
type LockFree struct {
	obj   mwobj.MW
	local []lfLocal
}

type lfLocal struct {
	cur []uint64
	_   [40]byte
}

// NewLockFree wraps obj; the object's full width is the user state.
func NewLockFree(obj mwobj.MW) *LockFree {
	u := &LockFree{obj: obj, local: make([]lfLocal, obj.N())}
	for p := range u.local {
		u.local[p].cur = make([]uint64, obj.W())
	}
	return u
}

// StateWidth returns the user state width in words.
func (u *LockFree) StateWidth() int { return u.obj.W() }

// Apply runs op atomically on the shared state as process p and returns
// its response. Lock-free: retries until its SC lands.
func (u *LockFree) Apply(p int, op Op) uint64 {
	cur := u.local[p].cur
	for {
		u.obj.LL(p, cur)
		resp := op(cur)
		if u.obj.SC(p, cur) {
			return resp
		}
	}
}

// Read returns the current state into dst. Wait-free (a single LL).
func (u *LockFree) Read(p int, dst []uint64) {
	u.obj.LL(p, dst)
}

// WaitFree is the helping universal construction. The shared state layout
// is [appliedCount[0..n-1] | response[0..n-1] | user state], so the object
// width is 2N + StateWidth words.
type WaitFree struct {
	obj      mwobj.MW
	n, uw    int
	announce []announceSlot
	local    []wfLocal
}

type announceSlot struct {
	ptr atomic.Pointer[annOp]
	_   [56]byte
}

// annOp is an announced operation: it asks to be applied as the seq-th
// operation of its announcing process.
type annOp struct {
	seq uint64
	op  Op
}

type wfLocal struct {
	seq     uint64
	cur     []uint64
	propose []uint64
	_       [40]byte
}

// NewWaitFree builds a WaitFree universal object for n processes with a
// uw-word user state initialized to initialState, allocating the underlying
// multiword LL/SC object via f.
func NewWaitFree(f mwobj.Factory, n, uw int, initialState []uint64) (*WaitFree, error) {
	if len(initialState) != uw {
		return nil, fmt.Errorf("universal: initial state has %d words, want %d", len(initialState), uw)
	}
	w := 2*n + uw
	initial := make([]uint64, w)
	copy(initial[2*n:], initialState)
	obj, err := f(n, w, initial)
	if err != nil {
		return nil, fmt.Errorf("universal: %w", err)
	}
	u := &WaitFree{
		obj:      obj,
		n:        n,
		uw:       uw,
		announce: make([]announceSlot, n),
		local:    make([]wfLocal, n),
	}
	for p := range u.local {
		u.local[p].cur = make([]uint64, w)
		u.local[p].propose = make([]uint64, w)
	}
	return u, nil
}

// StateWidth returns the user state width in words.
func (u *WaitFree) StateWidth() int { return u.uw }

// counts, responses and user views of a full state vector.
func (u *WaitFree) counts(s []uint64) []uint64    { return s[:u.n] }
func (u *WaitFree) responses(s []uint64) []uint64 { return s[u.n : 2*u.n] }
func (u *WaitFree) user(s []uint64) []uint64      { return s[2*u.n:] }

// Apply runs op atomically as process p and returns its response.
// Wait-free: at most three SC attempts; if they all fail, helping has
// already applied the operation (any successful SC linked after our
// announcement folds it in).
func (u *WaitFree) Apply(p int, op Op) uint64 {
	lp := &u.local[p]
	lp.seq++
	u.announce[p].ptr.Store(&annOp{seq: lp.seq, op: op})

	for attempt := 0; attempt < 3; attempt++ {
		u.obj.LL(p, lp.cur)
		if u.counts(lp.cur)[p] >= lp.seq {
			return u.responses(lp.cur)[p] // somebody helped us
		}
		copy(lp.propose, lp.cur)
		u.fold(lp.propose)
		if u.obj.SC(p, lp.propose) {
			return u.responses(lp.propose)[p]
		}
	}
	// Two failed SCs after the announcement imply some successful SC
	// linked after it, and every such SC folds our operation in.
	u.obj.LL(p, lp.cur)
	if u.counts(lp.cur)[p] < lp.seq {
		panic("universal: helping guarantee violated (op not applied after 3 attempts)")
	}
	return u.responses(lp.cur)[p]
}

// fold applies every announced-but-unapplied operation to the proposal, in
// process order, updating counts and responses.
func (u *WaitFree) fold(proposal []uint64) {
	counts := u.counts(proposal)
	resps := u.responses(proposal)
	for q := 0; q < u.n; q++ {
		a := u.announce[q].ptr.Load()
		if a != nil && a.seq == counts[q]+1 {
			resps[q] = a.op(u.user(proposal))
			counts[q]++
		}
	}
}

// Read copies the current user state into dst (len uw). Wait-free.
func (u *WaitFree) Read(p int, dst []uint64) {
	lp := &u.local[p]
	u.obj.LL(p, lp.cur)
	copy(dst, u.user(lp.cur))
}

// Applied returns how many operations of process q have been applied, as
// seen by a fresh LL of process p. Mainly for tests.
func (u *WaitFree) Applied(p, q int) uint64 {
	lp := &u.local[p]
	u.obj.LL(p, lp.cur)
	return u.counts(lp.cur)[q]
}
