package shared

import (
	"fmt"

	"mwllsc/internal/apps/universal"
	"mwllsc/internal/mwobj"
)

// Set is a bounded, wait-free, linearizable set of uint64 values (each
// below 2^62). State layout: [size, slots[cap]] where occupied slots hold
// value+1 (0 marks an empty slot), so membership is a linear scan — fine
// for the small capacities a W-word variable holds.
type Set struct {
	u   *universal.WaitFree
	cap int
}

// NewSet builds a set with the given capacity for n processes, using f for
// the underlying multiword LL/SC object.
func NewSet(f mwobj.Factory, n, capacity int) (*Set, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("shared: set capacity must be >= 1, got %d", capacity)
	}
	u, err := universal.NewWaitFree(f, n, 1+capacity, make([]uint64, 1+capacity))
	if err != nil {
		return nil, err
	}
	return &Set{u: u, cap: capacity}, nil
}

func checkSetValue(v uint64) {
	if v >= 1<<62 {
		panic("shared: set values must be below 2^62")
	}
}

// Add inserts v as process p; it returns false if v was already present or
// the set is full.
func (s *Set) Add(p int, v uint64) bool {
	checkSetValue(v)
	r := s.u.Apply(p, func(st []uint64) uint64 {
		free := -1
		for i := 1; i < len(st); i++ {
			switch st[i] {
			case v + 1:
				return respOK(false, 0) // already present
			case 0:
				if free < 0 {
					free = i
				}
			}
		}
		if free < 0 {
			return respOK(false, 0) // full
		}
		st[free] = v + 1
		st[0]++
		return respOK(true, 0)
	})
	_, ok := respUnpack(r)
	return ok
}

// Remove deletes v as process p, reporting whether it was present.
func (s *Set) Remove(p int, v uint64) bool {
	checkSetValue(v)
	r := s.u.Apply(p, func(st []uint64) uint64 {
		for i := 1; i < len(st); i++ {
			if st[i] == v+1 {
				st[i] = 0
				st[0]--
				return respOK(true, 0)
			}
		}
		return respOK(false, 0)
	})
	_, ok := respUnpack(r)
	return ok
}

// Contains reports membership of v via a wait-free atomic read by p.
func (s *Set) Contains(p int, v uint64) bool {
	checkSetValue(v)
	st := make([]uint64, s.u.StateWidth())
	s.u.Read(p, st)
	for i := 1; i < len(st); i++ {
		if st[i] == v+1 {
			return true
		}
	}
	return false
}

// Len returns the current cardinality (a wait-free read by p).
func (s *Set) Len(p int) int {
	st := make([]uint64, s.u.StateWidth())
	s.u.Read(p, st)
	return int(st[0])
}
