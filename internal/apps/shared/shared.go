// Package shared provides concrete wait-free shared objects — a bounded
// FIFO queue, a bounded stack, and a counter — built on the wait-free
// universal construction over the multiword LL/SC variable. They are the
// "shared data structures (queues, stacks, counters)" of the paper's first
// paragraph, realized end-to-end on the paper's primitive.
//
// All values stored in the queue and stack must fit in 63 bits (the top
// bit of the response word carries the ok flag).
package shared

import (
	"fmt"

	"mwllsc/internal/apps/universal"
	"mwllsc/internal/mwobj"
)

// respOK packs (ok, value) into a response word.
func respOK(ok bool, v uint64) uint64 {
	if ok {
		return 1<<63 | v
	}
	return 0
}

func respUnpack(r uint64) (uint64, bool) {
	return r &^ (1 << 63), r>>63 == 1
}

// Queue is a bounded, wait-free, linearizable FIFO queue shared by N
// processes. State layout: [head, size, ring[cap]].
type Queue struct {
	u   *universal.WaitFree
	cap int
}

// NewQueue builds a queue with the given capacity for n processes, using f
// for the underlying multiword LL/SC object.
func NewQueue(f mwobj.Factory, n, capacity int) (*Queue, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("shared: queue capacity must be >= 1, got %d", capacity)
	}
	u, err := universal.NewWaitFree(f, n, 2+capacity, make([]uint64, 2+capacity))
	if err != nil {
		return nil, err
	}
	return &Queue{u: u, cap: capacity}, nil
}

// Enqueue appends v as process p, returning false if the queue is full.
// v must fit in 63 bits.
func (q *Queue) Enqueue(p int, v uint64) bool {
	if v >= 1<<63 {
		panic("shared: queue values must fit in 63 bits")
	}
	c := uint64(q.cap)
	r := q.u.Apply(p, func(s []uint64) uint64 {
		head, size := s[0], s[1]
		if size == c {
			return respOK(false, 0)
		}
		s[2+int((head+size)%c)] = v
		s[1] = size + 1
		return respOK(true, 0)
	})
	_, ok := respUnpack(r)
	return ok
}

// Dequeue removes and returns the oldest element as process p; ok is false
// if the queue was empty.
func (q *Queue) Dequeue(p int) (v uint64, ok bool) {
	c := uint64(q.cap)
	r := q.u.Apply(p, func(s []uint64) uint64 {
		head, size := s[0], s[1]
		if size == 0 {
			return respOK(false, 0)
		}
		v := s[2+int(head%c)]
		s[0] = (head + 1) % c
		s[1] = size - 1
		return respOK(true, v)
	})
	return respUnpack(r)
}

// Len returns the current number of elements (a wait-free read by p).
func (q *Queue) Len(p int) int {
	s := make([]uint64, q.u.StateWidth())
	q.u.Read(p, s)
	return int(s[1])
}

// Stack is a bounded, wait-free, linearizable LIFO stack shared by N
// processes. State layout: [top, items[cap]].
type Stack struct {
	u   *universal.WaitFree
	cap int
}

// NewStack builds a stack with the given capacity for n processes.
func NewStack(f mwobj.Factory, n, capacity int) (*Stack, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("shared: stack capacity must be >= 1, got %d", capacity)
	}
	u, err := universal.NewWaitFree(f, n, 1+capacity, make([]uint64, 1+capacity))
	if err != nil {
		return nil, err
	}
	return &Stack{u: u, cap: capacity}, nil
}

// Push adds v as process p, returning false if the stack is full. v must
// fit in 63 bits.
func (s *Stack) Push(p int, v uint64) bool {
	if v >= 1<<63 {
		panic("shared: stack values must fit in 63 bits")
	}
	c := uint64(s.cap)
	r := s.u.Apply(p, func(st []uint64) uint64 {
		if st[0] == c {
			return respOK(false, 0)
		}
		st[1+st[0]] = v
		st[0]++
		return respOK(true, 0)
	})
	_, ok := respUnpack(r)
	return ok
}

// Pop removes and returns the newest element as process p; ok is false if
// the stack was empty.
func (s *Stack) Pop(p int) (v uint64, ok bool) {
	r := s.u.Apply(p, func(st []uint64) uint64 {
		if st[0] == 0 {
			return respOK(false, 0)
		}
		st[0]--
		return respOK(true, st[1+st[0]])
	})
	return respUnpack(r)
}

// Len returns the current depth (a wait-free read by p).
func (s *Stack) Len(p int) int {
	st := make([]uint64, s.u.StateWidth())
	s.u.Read(p, st)
	return int(st[0])
}

// Counter is a wait-free, linearizable fetch-and-add counter — the paper's
// own introductory example of what LL/SC makes trivial.
type Counter struct {
	u *universal.WaitFree
}

// NewCounter builds a counter for n processes starting at initial.
func NewCounter(f mwobj.Factory, n int, initial uint64) (*Counter, error) {
	u, err := universal.NewWaitFree(f, n, 1, []uint64{initial})
	if err != nil {
		return nil, err
	}
	return &Counter{u: u}, nil
}

// FetchAdd adds delta as process p and returns the counter's previous value.
func (c *Counter) FetchAdd(p int, delta uint64) uint64 {
	return c.u.Apply(p, func(s []uint64) uint64 {
		old := s[0]
		s[0] = old + delta
		return old
	})
}

// Load returns the current value (a wait-free read by p).
func (c *Counter) Load(p int) uint64 {
	s := make([]uint64, 1)
	c.u.Read(p, s)
	return s[0]
}
