package shared

import (
	"runtime"
	"sync"
	"testing"

	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
)

func factory(t *testing.T) mwobj.Factory {
	t.Helper()
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestQueueFIFOSequential(t *testing.T) {
	q, err := NewQueue(factory(t), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Dequeue(0); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
	for i := uint64(1); i <= 4; i++ {
		if !q.Enqueue(0, i*10) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Enqueue(0, 99) {
		t.Fatal("enqueue into full queue succeeded")
	}
	if got := q.Len(1); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for i := uint64(1); i <= 4; i++ {
		v, ok := q.Dequeue(1)
		if !ok || v != i*10 {
			t.Fatalf("dequeue %d: got (%d,%v), want (%d,true)", i, v, ok, i*10)
		}
	}
	if got := q.Len(0); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

func TestQueueWrapsAround(t *testing.T) {
	q, err := NewQueue(factory(t), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 3; i++ {
			if !q.Enqueue(0, uint64(round)*100+i) {
				t.Fatalf("round %d: enqueue failed", round)
			}
		}
		for i := uint64(0); i < 3; i++ {
			v, ok := q.Dequeue(0)
			if !ok || v != uint64(round)*100+i {
				t.Fatalf("round %d: dequeue got (%d,%v)", round, v, ok)
			}
		}
	}
}

// TestQueueConcurrentConservation checks element conservation under
// concurrent enqueues and dequeues: everything dequeued was enqueued
// exactly once, and nothing vanishes.
func TestQueueConcurrentConservation(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 300
	)
	q, err := NewQueue(factory(t), producers+consumers, 16)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		consumed = make([][]uint64, consumers)
	)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; {
				if q.Enqueue(p, uint64(p*perProd+i+1)) {
					i++
				} else {
					runtime.Gosched() // queue full; let consumers run
				}
			}
		}(p)
	}
	var done sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		done.Add(1)
		go func(c int) {
			defer done.Done()
			pid := producers + c
			for {
				if v, ok := q.Dequeue(pid); ok {
					consumed[c] = append(consumed[c], v)
					continue
				}
				runtime.Gosched() // queue empty; let producers run
				select {
				case <-stop:
					// Drain what's left after producers stopped.
					for {
						v, ok := q.Dequeue(pid)
						if !ok {
							return
						}
						consumed[c] = append(consumed[c], v)
					}
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	done.Wait()

	seen := make(map[uint64]bool, producers*perProd)
	for _, vs := range consumed {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("consumed %d values, want %d", len(seen), producers*perProd)
	}
}

// TestQueuePerProducerOrder: FIFO implies each producer's values come out
// in the order it enqueued them (when a single consumer drains).
func TestQueuePerProducerOrder(t *testing.T) {
	const perProd = 200
	q, err := NewQueue(factory(t), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; {
				if q.Enqueue(p, uint64(p)<<32|uint64(i)) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(p)
	}
	lastSeen := map[uint64]int64{0: -1, 1: -1}
	got := 0
	for got < 2*perProd {
		v, ok := q.Dequeue(2)
		if !ok {
			runtime.Gosched()
			continue
		}
		producer, idx := v>>32, int64(v&0xffffffff)
		if idx <= lastSeen[producer] {
			t.Fatalf("producer %d: value %d arrived after %d", producer, idx, lastSeen[producer])
		}
		lastSeen[producer] = idx
		got++
	}
	wg.Wait()
}

func TestStackLIFO(t *testing.T) {
	s, err := NewStack(factory(t), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Pop(0); ok {
		t.Fatal("pop from empty stack succeeded")
	}
	for i := uint64(1); i <= 3; i++ {
		if !s.Push(0, i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if s.Push(0, 4) {
		t.Fatal("push onto full stack succeeded")
	}
	if got := s.Len(1); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	for i := uint64(3); i >= 1; i-- {
		v, ok := s.Pop(1)
		if !ok || v != i {
			t.Fatalf("pop: got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

// TestStackConcurrentConservation: pushes and pops conserve elements.
func TestStackConcurrentConservation(t *testing.T) {
	const n = 4
	s, err := NewStack(factory(t), n, 64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	popped := make([][]uint64, n)
	const perProc = 200
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				v := uint64(p*perProc + i + 1)
				for !s.Push(p, v) {
				}
				if x, ok := s.Pop(p); ok {
					popped[p] = append(popped[p], x)
				}
			}
		}(p)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	total := 0
	for _, vs := range popped {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d popped twice", v)
			}
			seen[v] = true
			total++
		}
	}
	// Whatever was not popped must still be on the stack.
	rest := s.Len(0)
	if total+rest != n*perProc {
		t.Fatalf("popped %d + remaining %d != pushed %d", total, rest, n*perProc)
	}
}

func TestCounterFetchAdd(t *testing.T) {
	c, err := NewCounter(factory(t), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.FetchAdd(0, 5); got != 100 {
		t.Fatalf("FetchAdd returned %d, want 100", got)
	}
	if got := c.Load(1); got != 105 {
		t.Fatalf("Load = %d, want 105", got)
	}
}

func TestCounterConcurrentUnique(t *testing.T) {
	const (
		n   = 8
		ops = 500
	)
	c, err := NewCounter(factory(t), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]uint64, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				results[p] = append(results[p], c.FetchAdd(p, 1))
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[uint64]bool, n*ops)
	for _, rs := range results {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("fetch-and-add handed out %d twice", r)
			}
			seen[r] = true
		}
	}
	if got := c.Load(0); got != n*ops {
		t.Fatalf("final = %d, want %d", got, n*ops)
	}
}

func TestConstructorValidation(t *testing.T) {
	f := factory(t)
	if _, err := NewQueue(f, 2, 0); err == nil {
		t.Error("queue accepted capacity 0")
	}
	if _, err := NewStack(f, 2, 0); err == nil {
		t.Error("stack accepted capacity 0")
	}
}

func TestOversizeValuesPanic(t *testing.T) {
	q, err := NewQueue(factory(t), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("queue accepted a 64-bit value")
		}
	}()
	q.Enqueue(0, 1<<63)
}
