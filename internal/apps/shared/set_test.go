package shared

import (
	"sync"
	"testing"
)

func TestSetSequential(t *testing.T) {
	s, err := NewSet(factory(t), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(0, 7) {
		t.Fatal("empty set contains 7")
	}
	if !s.Add(0, 7) {
		t.Fatal("add 7 failed")
	}
	if s.Add(0, 7) {
		t.Fatal("duplicate add succeeded")
	}
	if !s.Contains(1, 7) {
		t.Fatal("set does not contain 7")
	}
	if !s.Add(0, 8) || !s.Add(0, 9) {
		t.Fatal("fill failed")
	}
	if s.Add(0, 10) {
		t.Fatal("add to full set succeeded")
	}
	if got := s.Len(1); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	if !s.Remove(1, 8) {
		t.Fatal("remove failed")
	}
	if s.Remove(1, 8) {
		t.Fatal("double remove succeeded")
	}
	if !s.Add(0, 10) {
		t.Fatal("add after remove failed")
	}
}

// TestSetConcurrentUniqueInsert: many processes race to add the same
// values; each value must be admitted exactly once.
func TestSetConcurrentUniqueInsert(t *testing.T) {
	const (
		n      = 6
		values = 32
	)
	s, err := NewSet(factory(t), n, values)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	admitted := make([]int, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for v := uint64(0); v < values; v++ {
				if s.Add(p, v) {
					admitted[p]++
				}
			}
		}(p)
	}
	wg.Wait()
	total := 0
	for _, a := range admitted {
		total += a
	}
	if total != values {
		t.Fatalf("%d successful adds across processes, want exactly %d", total, values)
	}
	if got := s.Len(0); got != values {
		t.Fatalf("Len = %d, want %d", got, values)
	}
	for v := uint64(0); v < values; v++ {
		if !s.Contains(0, v) {
			t.Fatalf("value %d missing", v)
		}
	}
}

func TestSetValidation(t *testing.T) {
	if _, err := NewSet(factory(t), 1, 0); err == nil {
		t.Fatal("accepted capacity 0")
	}
	s, err := NewSet(factory(t), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversize value accepted")
		}
	}()
	s.Add(0, 1<<62)
}
