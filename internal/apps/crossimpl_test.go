// Package apps_test cross-validates the application layer against every
// registered multiword LL/SC implementation: the applications must behave
// identically whether the paper's algorithm or any baseline sits
// underneath (they only assume the mwobj.MW contract).
package apps_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mwllsc/internal/apps/farray"
	"mwllsc/internal/apps/shared"
	"mwllsc/internal/apps/snapshot"
	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
	"mwllsc/internal/shard"
)

func forEachImpl(t *testing.T, f func(t *testing.T, factory mwobj.Factory)) {
	t.Helper()
	for _, name := range impls.Names() {
		factory, err := impls.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { f(t, factory) })
	}
}

func TestQueueConservationAcrossImpls(t *testing.T) {
	forEachImpl(t, func(t *testing.T, factory mwobj.Factory) {
		const (
			n       = 4
			perProc = 150
		)
		q, err := shared.NewQueue(factory, n, 8)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		got := make([][]uint64, n)
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				// Each process alternates enqueue and dequeue so the
				// queue never deadlocks on full/empty.
				for i := 0; i < perProc; i++ {
					v := uint64(p*perProc + i + 1)
					for !q.Enqueue(p, v) {
						if x, ok := q.Dequeue(p); ok {
							got[p] = append(got[p], x)
						}
					}
					if x, ok := q.Dequeue(p); ok {
						got[p] = append(got[p], x)
					}
				}
			}(p)
		}
		wg.Wait()
		seen := map[uint64]bool{}
		count := 0
		for _, vs := range got {
			for _, v := range vs {
				if seen[v] {
					t.Fatalf("value %d dequeued twice", v)
				}
				seen[v] = true
				count++
			}
		}
		if rest := q.Len(0); count+rest != n*perProc {
			t.Fatalf("dequeued %d + queued %d != enqueued %d", count, rest, n*perProc)
		}
	})
}

func TestSnapshotMonotoneAcrossImpls(t *testing.T) {
	forEachImpl(t, func(t *testing.T, factory mwobj.Factory) {
		const writers = 2
		s, err := snapshot.New(factory, writers+1, writers, make([]uint64, writers))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for p := 0; p < writers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
						s.Update(p, p, i)
					}
				}
			}(p)
		}
		prev := make([]uint64, writers)
		cur := make([]uint64, writers)
		for i := 0; i < 300; i++ {
			s.Scan(writers, cur)
			for j := range cur {
				if cur[j] < prev[j] {
					t.Errorf("component %d went backwards: %d < %d", j, cur[j], prev[j])
				}
			}
			copy(prev, cur)
		}
		close(stop)
		wg.Wait()
	})
}

// TestTxnConservationAcrossImpls runs the cross-shard transaction layer
// over every registered implementation: concurrent multi-key transfers
// between shards plus atomic audits must conserve the total no matter
// which LL/SC construction sits under the shards (the txn engine only
// assumes the mwobj.MW contract).
func TestTxnConservationAcrossImpls(t *testing.T) {
	forEachImpl(t, func(t *testing.T, factory mwobj.Factory) {
		const (
			k              = 4
			slots          = 4
			tellers        = 3
			perTeller      = 200
			initialBalance = 500
		)
		m, err := shard.NewMap(k, slots, 1,
			shard.WithFactory(factory), shard.WithInitial([]uint64{initialBalance}))
		if err != nil {
			t.Fatal(err)
		}
		// One representative key per shard so transfers truly cross shards.
		keys := make([]uint64, k)
		for i := range keys {
			keys[i] = m.KeyForShard(i)
		}
		var wg sync.WaitGroup
		for tl := 0; tl < tellers; tl++ {
			wg.Add(1)
			go func(tl int) {
				defer wg.Done()
				h := m.Acquire()
				defer h.Release()
				rng := rand.New(rand.NewSource(int64(tl) + 1))
				for i := 0; i < perTeller; i++ {
					from, to := rng.Intn(k), rng.Intn(k)
					if from == to {
						continue
					}
					amount := uint64(rng.Intn(20) + 1)
					h.UpdateMulti([]uint64{keys[from], keys[to]}, func(vals [][]uint64) {
						if vals[0][0] >= amount {
							vals[0][0] -= amount
							vals[1][0] += amount
						}
					})
				}
			}(tl)
		}
		auditorStop := make(chan struct{})
		auditorDone := make(chan error, 1)
		go func() {
			h := m.Acquire()
			defer h.Release()
			buf := m.NewSnapshotBuffer()
			for {
				select {
				case <-auditorStop:
					auditorDone <- nil
					return
				default:
				}
				h.SnapshotAtomic(buf)
				var total uint64
				for _, row := range buf {
					total += row[0]
				}
				if total != k*initialBalance {
					auditorDone <- fmt.Errorf("atomic audit saw total %d, want %d — torn cross-shard cut",
						total, k*initialBalance)
					return
				}
			}
		}()
		wg.Wait()
		close(auditorStop)
		if err := <-auditorDone; err != nil {
			t.Fatal(err)
		}
		buf := m.NewSnapshotBuffer()
		m.SnapshotAtomic(buf)
		var total uint64
		for _, row := range buf {
			total += row[0]
		}
		if total != k*initialBalance {
			t.Fatalf("final total %d, want %d", total, k*initialBalance)
		}
	})
}

func TestFArraySumAcrossImpls(t *testing.T) {
	forEachImpl(t, func(t *testing.T, factory mwobj.Factory) {
		const m = 4
		a, err := farray.New(factory, 2, m, farray.Sum, []uint64{25, 25, 25, 25})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					// Conserve the sum with a single atomic transfer.
					from, to := i%m, (i+1)%m
					a.Apply(0, from, func(v uint64) uint64 { return v - 1 })
					a.Apply(0, to, func(v uint64) uint64 { return v + 1 })
				}
			}
		}()
		for i := 0; i < 500; i++ {
			if got := a.Query(1); got != 100 && got != 99 {
				// 99 is the legal window between the two transfers.
				t.Fatalf("query %d: sum = %d, want 100 (or 99 mid-transfer)", i, got)
			}
		}
		close(stop)
		wg.Wait()
	})
}
