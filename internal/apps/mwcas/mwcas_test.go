package mwcas

import (
	"sync"
	"testing"

	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
)

func factory(t *testing.T) mwobj.Factory {
	t.Helper()
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSequentialCAS(t *testing.T) {
	m, err := New(factory(t), 2, 3, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 3 {
		t.Fatalf("W = %d", m.W())
	}
	if m.CompareAndSwap(0, []uint64{9, 9, 9}, []uint64{0, 0, 0}) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if !m.CompareAndSwap(0, []uint64{1, 2, 3}, []uint64{4, 5, 6}) {
		t.Fatal("CAS with right expected failed")
	}
	got := make([]uint64, 3)
	m.Read(1, got)
	if got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("value = %v", got)
	}
}

// TestConcurrentChainedCAS: processes CAS the vector from k to k+1 (all
// words equal); exactly one process wins each generation, so the number of
// total wins equals the final generation.
func TestConcurrentChainedCAS(t *testing.T) {
	const (
		n      = 6
		rounds = 300
	)
	m, err := New(factory(t), n, 4, make([]uint64, 4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wins := make([]int64, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cur := make([]uint64, 4)
			next := make([]uint64, 4)
			for i := 0; i < rounds; i++ {
				m.Read(p, cur)
				k := cur[0]
				for j := range cur {
					cur[j] = k
					next[j] = k + 1
				}
				if m.CompareAndSwap(p, cur, next) {
					wins[p]++
				}
			}
		}(p)
	}
	wg.Wait()
	var total int64
	for _, w := range wins {
		total += w
	}
	got := make([]uint64, 4)
	m.Read(0, got)
	for j := 1; j < 4; j++ {
		if got[j] != got[0] {
			t.Fatalf("torn final value %v", got)
		}
	}
	if int64(got[0]) != total {
		t.Fatalf("final generation %d != total wins %d", got[0], total)
	}
}

func TestCASFailureLeavesValue(t *testing.T) {
	m, err := New(factory(t), 2, 2, []uint64{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.CompareAndSwap(0, []uint64{7, 9}, []uint64{0, 0}) {
		t.Fatal("partial-match CAS succeeded")
	}
	got := make([]uint64, 2)
	m.Read(0, got)
	if got[0] != 7 || got[1] != 8 {
		t.Fatalf("failed CAS changed value: %v", got)
	}
}
