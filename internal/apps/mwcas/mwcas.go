// Package mwcas derives a multi-word compare-and-swap and an atomic
// multi-word read from the multiword LL/SC variable — the classic
// LL/manipulate/SC recipe from the paper's introduction, lifted to W words.
package mwcas

import (
	"fmt"

	"mwllsc/internal/mwobj"
)

// MWCAS is a W-word compare-and-swap object for N processes.
type MWCAS struct {
	obj   mwobj.MW
	local []casLocal
}

type casLocal struct {
	cur []uint64
	_   [40]byte
}

// New builds an MWCAS over an object from f.
func New(f mwobj.Factory, n, w int, initial []uint64) (*MWCAS, error) {
	obj, err := f(n, w, initial)
	if err != nil {
		return nil, fmt.Errorf("mwcas: %w", err)
	}
	m := &MWCAS{obj: obj, local: make([]casLocal, n)}
	for p := range m.local {
		m.local[p].cur = make([]uint64, w)
	}
	return m, nil
}

// W returns the value width in words.
func (m *MWCAS) W() int { return m.obj.W() }

// Read copies the current value into dst. Wait-free, O(W).
func (m *MWCAS) Read(p int, dst []uint64) {
	m.obj.LL(p, dst)
}

// CompareAndSwap atomically replaces the value with new iff it currently
// equals expected, reporting whether it did. Lock-free: an SC failure
// triggers a re-read, and the operation only retries while the value keeps
// being changed back to expected by others.
func (m *MWCAS) CompareAndSwap(p int, expected, new []uint64) bool {
	cur := m.local[p].cur
	for {
		m.obj.LL(p, cur)
		for i := range cur {
			if cur[i] != expected[i] {
				return false
			}
		}
		if m.obj.SC(p, new) {
			return true
		}
	}
}
