// Package snapshot implements an atomic multi-writer snapshot object over
// the multiword LL/SC variable — the application family behind the paper's
// citations [12, 13] (Jayanti's f-arrays and multi-writer snapshots), which
// consume a W-word LL/SC object as their underlying primitive and therefore
// inherit the paper's factor-N space improvement.
//
// The object holds C components. Scan is a single multiword LL: wait-free
// and O(C), which is exactly the property that makes the multiword LL/SC
// primitive attractive for snapshots. Two update disciplines are offered:
//
//   - Snapshot.Update: LL/modify/SC retry — lock-free (an updater can be
//     starved by other updaters, but the system always progresses).
//   - WFSnapshot.Update: routed through the wait-free universal
//     construction — every update completes in a bounded number of steps.
package snapshot

import (
	"fmt"

	"mwllsc/internal/apps/universal"
	"mwllsc/internal/mwobj"
)

// Snapshot is a C-component multi-writer snapshot with wait-free scans and
// lock-free updates.
type Snapshot struct {
	obj   mwobj.MW
	c     int
	local []snapLocal
}

type snapLocal struct {
	scratch []uint64
	_       [40]byte
}

// New builds a snapshot with components initialized to initial (len C),
// shared by n processes, over an object from f.
func New(f mwobj.Factory, n, c int, initial []uint64) (*Snapshot, error) {
	if c < 1 {
		return nil, fmt.Errorf("snapshot: need >= 1 component, got %d", c)
	}
	if len(initial) != c {
		return nil, fmt.Errorf("snapshot: initial has %d components, want %d", len(initial), c)
	}
	obj, err := f(n, c, initial)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s := &Snapshot{obj: obj, c: c, local: make([]snapLocal, n)}
	for p := range s.local {
		s.local[p].scratch = make([]uint64, c)
	}
	return s, nil
}

// Components returns C.
func (s *Snapshot) Components() int { return s.c }

// Scan copies an atomic snapshot of all components into dst (len C).
// Wait-free, O(C): a single multiword LL.
func (s *Snapshot) Scan(p int, dst []uint64) {
	s.obj.LL(p, dst)
}

// Update atomically sets component i to v as process p. Lock-free.
func (s *Snapshot) Update(p, i int, v uint64) {
	if i < 0 || i >= s.c {
		panic(fmt.Sprintf("snapshot: component %d out of range [0,%d)", i, s.c))
	}
	scratch := s.local[p].scratch
	for {
		s.obj.LL(p, scratch)
		scratch[i] = v
		if s.obj.SC(p, scratch) {
			return
		}
	}
}

// WFSnapshot is a C-component snapshot with wait-free scans and wait-free
// updates, built on the helping universal construction.
type WFSnapshot struct {
	u *universal.WaitFree
	c int
}

// NewWF builds a wait-free snapshot with components initialized to initial
// (len C), shared by n processes, over an object from f.
func NewWF(f mwobj.Factory, n, c int, initial []uint64) (*WFSnapshot, error) {
	if c < 1 {
		return nil, fmt.Errorf("snapshot: need >= 1 component, got %d", c)
	}
	u, err := universal.NewWaitFree(f, n, c, initial)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &WFSnapshot{u: u, c: c}, nil
}

// Components returns C.
func (s *WFSnapshot) Components() int { return s.c }

// Scan copies an atomic snapshot of all components into dst (len C).
// Wait-free.
func (s *WFSnapshot) Scan(p int, dst []uint64) {
	s.u.Read(p, dst)
}

// Update atomically sets component i to v as process p. Wait-free.
func (s *WFSnapshot) Update(p, i int, v uint64) {
	if i < 0 || i >= s.c {
		panic(fmt.Sprintf("snapshot: component %d out of range [0,%d)", i, s.c))
	}
	s.u.Apply(p, func(st []uint64) uint64 {
		st[i] = v
		return 0
	})
}
