package snapshot

import (
	"sync"
	"testing"

	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
)

func factory(t *testing.T) mwobj.Factory {
	t.Helper()
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// scanner abstracts the two snapshot variants for shared tests.
type scanner interface {
	Scan(p int, dst []uint64)
	Update(p, i int, v uint64)
	Components() int
}

func variants(t *testing.T, n, c int, initial []uint64) map[string]scanner {
	t.Helper()
	lf, err := New(factory(t), n, c, initial)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := NewWF(factory(t), n, c, initial)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]scanner{"lockfree-update": lf, "waitfree-update": wf}
}

func TestSequentialScanUpdate(t *testing.T) {
	for name, s := range variants(t, 2, 3, []uint64{1, 2, 3}) {
		t.Run(name, func(t *testing.T) {
			got := make([]uint64, 3)
			s.Scan(0, got)
			if got[0] != 1 || got[1] != 2 || got[2] != 3 {
				t.Fatalf("initial scan = %v", got)
			}
			s.Update(0, 1, 42)
			s.Scan(1, got)
			if got[0] != 1 || got[1] != 42 || got[2] != 3 {
				t.Fatalf("after update = %v", got)
			}
			if s.Components() != 3 {
				t.Fatalf("Components = %d", s.Components())
			}
		})
	}
}

// TestScanAtomicity is the defining snapshot property: writers keep all
// components equal (each update round sets its component to the round
// number in lockstep per writer... here simpler: a single invariant value
// replicated). Writers write (round) to their own component only after
// reading that every component is >= their previous round; scanners check
// components never differ by more than the writer concurrency allows.
// Stronger and simpler: writers maintain sum parity — every update writes
// component i with a value tagged by writer and round; scanners verify each
// component individually monotone: a later scan never observes an older
// value of the same component than an earlier scan did.
func TestScanMonotonicity(t *testing.T) {
	const (
		writers = 3
		scans   = 400
		c       = writers
	)
	for name, s := range variants(t, writers+1, c, make([]uint64, c)) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for p := 0; p < writers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := uint64(1); ; i++ {
						select {
						case <-stop:
							return
						default:
							s.Update(p, p, i)
						}
					}
				}(p)
			}
			prev := make([]uint64, c)
			cur := make([]uint64, c)
			for i := 0; i < scans; i++ {
				s.Scan(writers, cur)
				for j := range cur {
					if cur[j] < prev[j] {
						t.Errorf("scan %d: component %d went backwards: %d < %d",
							i, j, cur[j], prev[j])
					}
				}
				copy(prev, cur)
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestScanNeverTears: writers update pairs of components together (comp 0
// and comp 1 always move in lockstep: comp1 = comp0 * 2); any scan must see
// the pair consistent.
func TestScanNeverTears(t *testing.T) {
	const n = 4
	lf, err := New(factory(t), n, 2, []uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Use the raw multiword update through the object: Update writes a
	// single component, so for the pair invariant use WF apply-style
	// updates via two single-component updates... instead, test with the
	// underlying LL/SC loop directly through Snapshot's own object by
	// alternating single-component updates that preserve the invariant
	// only pairwise: here we simply spin both components via Update in
	// sequence and accept either generation, but the *pair* (a, b) must
	// always satisfy b == a*2 or b == (a-1)*2 — i.e. b/2 lags a by at most
	// one generation per writer.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < n-1; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, 2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					// Atomic pairwise update via the lock-free LL/SC loop.
					lf.Scan(p, v)
					_ = v
					lf.obj.LL(p, v)
					v[0]++
					v[1] = v[0] * 2
					lf.obj.SC(p, v)
				}
			}
		}(p)
	}
	buf := make([]uint64, 2)
	for i := 0; i < 1000; i++ {
		lf.Scan(n-1, buf)
		if buf[1] != buf[0]*2 {
			t.Fatalf("torn snapshot: %v", buf)
		}
	}
	close(stop)
	wg.Wait()
}

func TestUpdateBoundsChecked(t *testing.T) {
	for name, s := range variants(t, 1, 2, []uint64{0, 0}) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range component accepted")
				}
			}()
			s.Update(0, 2, 1)
		})
	}
}

func TestConstructorValidation(t *testing.T) {
	f := factory(t)
	if _, err := New(f, 1, 0, nil); err == nil {
		t.Error("accepted 0 components")
	}
	if _, err := New(f, 1, 2, []uint64{1}); err == nil {
		t.Error("accepted short initial")
	}
	if _, err := NewWF(f, 1, 0, nil); err == nil {
		t.Error("WF accepted 0 components")
	}
}
