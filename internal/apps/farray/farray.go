// Package farray implements an f-array over the multiword LL/SC variable:
// an m-component array supporting component updates and a wait-free,
// atomic query of an aggregate f(components) — sum, max, or any other
// fold. This is the application behind the paper's citation [12] (Jayanti,
// "f-arrays: implementation and applications"), which consumes a multiword
// LL/SC object as its primitive; by the paper's result its space cost
// drops by a factor of N.
//
// Query is a single multiword LL followed by a local fold: wait-free and
// O(m). Update is an LL/modify/SC retry loop (lock-free); route updates
// through apps/universal if per-update wait-freedom is required.
package farray

import (
	"fmt"

	"mwllsc/internal/mwobj"
)

// F folds the component vector into an aggregate.
type F func(components []uint64) uint64

// Sum aggregates by addition.
func Sum(components []uint64) uint64 {
	var s uint64
	for _, v := range components {
		s += v
	}
	return s
}

// Max aggregates by maximum (0 for an empty vector).
func Max(components []uint64) uint64 {
	var m uint64
	for _, v := range components {
		if v > m {
			m = v
		}
	}
	return m
}

// Min aggregates by minimum (^0 for an empty vector).
func Min(components []uint64) uint64 {
	m := ^uint64(0)
	for _, v := range components {
		if v < m {
			m = v
		}
	}
	return m
}

// FArray is an m-component array with atomic aggregate queries.
type FArray struct {
	obj   mwobj.MW
	f     F
	m     int
	local []faLocal
}

type faLocal struct {
	scratch []uint64
	_       [40]byte
}

// New builds an f-array with m components initialized to initial (len m),
// shared by n processes, aggregating with f, over an object from factory.
func New(factory mwobj.Factory, n, m int, f F, initial []uint64) (*FArray, error) {
	if m < 1 {
		return nil, fmt.Errorf("farray: need >= 1 component, got %d", m)
	}
	if f == nil {
		return nil, fmt.Errorf("farray: nil aggregation function")
	}
	if len(initial) != m {
		return nil, fmt.Errorf("farray: initial has %d components, want %d", len(initial), m)
	}
	obj, err := factory(n, m, initial)
	if err != nil {
		return nil, fmt.Errorf("farray: %w", err)
	}
	a := &FArray{obj: obj, f: f, m: m, local: make([]faLocal, n)}
	for p := range a.local {
		a.local[p].scratch = make([]uint64, m)
	}
	return a, nil
}

// Components returns m.
func (a *FArray) Components() int { return a.m }

// Update atomically sets component i to v as process p. Lock-free.
func (a *FArray) Update(p, i int, v uint64) {
	if i < 0 || i >= a.m {
		panic(fmt.Sprintf("farray: component %d out of range [0,%d)", i, a.m))
	}
	scratch := a.local[p].scratch
	for {
		a.obj.LL(p, scratch)
		scratch[i] = v
		if a.obj.SC(p, scratch) {
			return
		}
	}
}

// Apply atomically transforms component i with g (an atomic read-modify-
// write on one component) and returns the new value. Lock-free.
func (a *FArray) Apply(p, i int, g func(uint64) uint64) uint64 {
	if i < 0 || i >= a.m {
		panic(fmt.Sprintf("farray: component %d out of range [0,%d)", i, a.m))
	}
	scratch := a.local[p].scratch
	for {
		a.obj.LL(p, scratch)
		nv := g(scratch[i])
		scratch[i] = nv
		if a.obj.SC(p, scratch) {
			return nv
		}
	}
}

// Query returns f over an atomic snapshot of all components. Wait-free,
// O(m): one multiword LL plus a local fold.
func (a *FArray) Query(p int) uint64 {
	scratch := a.local[p].scratch
	a.obj.LL(p, scratch)
	return a.f(scratch)
}

// Scan copies an atomic snapshot of the components into dst (len m).
// Wait-free.
func (a *FArray) Scan(p int, dst []uint64) {
	a.obj.LL(p, dst)
}
