package farray

import (
	"sync"
	"sync/atomic"
	"testing"

	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
)

func factory(t *testing.T) mwobj.Factory {
	t.Helper()
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAggregates(t *testing.T) {
	in := []uint64{5, 1, 9, 3}
	if got := Sum(in); got != 18 {
		t.Errorf("Sum = %d", got)
	}
	if got := Max(in); got != 9 {
		t.Errorf("Max = %d", got)
	}
	if got := Min(in); got != 1 {
		t.Errorf("Min = %d", got)
	}
	if got := Max(nil); got != 0 {
		t.Errorf("Max(nil) = %d", got)
	}
	if got := Min(nil); got != ^uint64(0) {
		t.Errorf("Min(nil) = %d", got)
	}
}

func TestSequentialQueryUpdate(t *testing.T) {
	a, err := New(factory(t), 2, 4, Sum, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Query(0); got != 10 {
		t.Fatalf("Query = %d, want 10", got)
	}
	a.Update(0, 2, 100)
	if got := a.Query(1); got != 107 {
		t.Fatalf("Query = %d, want 107", got)
	}
	if got := a.Apply(1, 0, func(v uint64) uint64 { return v + 5 }); got != 6 {
		t.Fatalf("Apply returned %d, want 6", got)
	}
	if got := a.Query(0); got != 112 {
		t.Fatalf("Query = %d, want 112", got)
	}
}

// TestSumInvariantUnderTransfers is the f-array's atomicity witness: each
// writer repeatedly adds 1 to a component and then subtracts 1 from the
// same component, so at any instant the true sum is base plus the number
// of writers currently between their two operations. A Sum query must
// therefore always land in [base, base+writers]; anything outside means a
// torn aggregate.
func TestSumInvariantUnderTransfers(t *testing.T) {
	const (
		writers = 3
		m       = 6
		base    = 600
	)
	initial := make([]uint64, m)
	for i := range initial {
		initial[i] = base / m
	}
	a, err := New(factory(t), writers+1, m, Sum, initial)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	for p := 0; p < writers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				comp := (p + i) % m
				// +1 on one component, then -1 on the same component:
				// between the two the sum is base+1, never anything else.
				a.Apply(p, comp, func(v uint64) uint64 { return v + 1 })
				a.Apply(p, comp, func(v uint64) uint64 { return v - 1 })
			}
		}(p)
	}
	for i := 0; i < 2000; i++ {
		got := a.Query(writers)
		if got < base || got > base+writers {
			t.Fatalf("query %d: sum = %d, want in [%d,%d]", i, got, base, base+writers)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestMaxMonotone: with writers only ever increasing their component, the
// Max query must be non-decreasing across sequential queries.
func TestMaxMonotone(t *testing.T) {
	const writers = 3
	a, err := New(factory(t), writers+1, writers, Max, make([]uint64, writers))
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	for p := 0; p < writers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := uint64(1); !stop.Load(); i++ {
				a.Update(p, p, i)
			}
		}(p)
	}
	prev := uint64(0)
	for i := 0; i < 3000; i++ {
		got := a.Query(writers)
		if got < prev {
			t.Fatalf("max went backwards: %d after %d", got, prev)
		}
		prev = got
	}
	stop.Store(true)
	wg.Wait()
}

func TestValidation(t *testing.T) {
	f := factory(t)
	if _, err := New(f, 1, 0, Sum, nil); err == nil {
		t.Error("accepted 0 components")
	}
	if _, err := New(f, 1, 2, nil, []uint64{0, 0}); err == nil {
		t.Error("accepted nil aggregate")
	}
	if _, err := New(f, 1, 2, Sum, []uint64{0}); err == nil {
		t.Error("accepted short initial")
	}
	a, err := New(f, 1, 2, Sum, []uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "update range", func() { a.Update(0, 2, 1) })
	assertPanics(t, "apply range", func() { a.Apply(0, -1, func(v uint64) uint64 { return v }) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
