package obs

import (
	"testing"
)

func TestCountersSumAcrossStripes(t *testing.T) {
	c := NewCounters(4, 3)
	if c.Stripes() != 4 || c.N() != 3 {
		t.Fatalf("geometry: stripes=%d n=%d", c.Stripes(), c.N())
	}
	for st := 0; st < 4; st++ {
		c.Add(st, 0, uint64(st+1))
		c.Inc(st, 2)
	}
	if got := c.Sum(0); got != 1+2+3+4 {
		t.Errorf("Sum(0) = %d, want 10", got)
	}
	if got := c.Sum(1); got != 0 {
		t.Errorf("Sum(1) = %d, want 0", got)
	}
	if got := c.Sum(2); got != 4 {
		t.Errorf("Sum(2) = %d, want 4", got)
	}
	dst := make([]uint64, 3)
	c.Sums(dst)
	if dst[0] != 10 || dst[1] != 0 || dst[2] != 4 {
		t.Errorf("Sums = %v, want [10 0 4]", dst)
	}
}

func TestCountersStripeIsolation(t *testing.T) {
	// Writes through stripe s must land only in stripe s: this is the
	// structural half of the no-shared-cache-line guarantee (the
	// alignment half is TestStripeAlignment).
	c := NewCounters(8, 4)
	c.Add(3, 1, 7)
	for st := 0; st < 8; st++ {
		want := uint64(0)
		if st == 3 {
			want = 7
		}
		if got := c.StripeSum(st, 1); got != want {
			t.Errorf("StripeSum(%d, 1) = %d, want %d", st, got, want)
		}
	}
}

func TestCountersOutOfRangeStripe(t *testing.T) {
	c := NewCounters(2, 1)
	c.Add(-1, 0, 5)
	c.Add(2, 0, 6)
	c.Add(99, 0, 7)
	if got := c.StripeSum(0, 0); got != 18 {
		t.Errorf("stripe 0 = %d, want 18 (out-of-range stripes redirect there)", got)
	}
	if got := c.StripeSum(1, 0); got != 0 {
		t.Errorf("stripe 1 = %d, want 0", got)
	}
}

func TestCountersDecrementWraps(t *testing.T) {
	// connsOpen is incremented on one stripe and may be decremented on
	// another; the cross-stripe sum must stay correct under wraparound.
	c := NewCounters(4, 1)
	c.Add(1, 0, 1)
	c.Add(2, 0, 1)
	c.Add(3, 0, ^uint64(0)) // -1 on a stripe that never incremented
	if got := c.Sum(0); got != 1 {
		t.Errorf("Sum = %d, want 1", got)
	}
}

func TestStripeAlignment(t *testing.T) {
	// Every stripe must start on a 128-byte boundary and stripes must
	// be >= 128 bytes apart, so no two stripes can share a cache line
	// (or an adjacent-line-prefetched pair).
	c := NewCounters(5, 10)
	for st := 0; st < c.Stripes(); st++ {
		a := c.stripeAddr(st)
		if a%stripeAlign != 0 {
			t.Errorf("counter stripe %d at %#x not %d-aligned", st, a, stripeAlign)
		}
		if st > 0 {
			if d := a - c.stripeAddr(st-1); d < stripeAlign {
				t.Errorf("counter stripes %d/%d only %d bytes apart", st-1, st, d)
			}
		}
	}
	h := NewHistogram(3)
	for st := 0; st < h.Stripes(); st++ {
		a := h.stripeAddr(st)
		if a%stripeAlign != 0 {
			t.Errorf("hist stripe %d at %#x not %d-aligned", st, a, stripeAlign)
		}
		if st > 0 {
			if d := a - h.stripeAddr(st-1); d < stripeAlign {
				t.Errorf("hist stripes %d/%d only %d bytes apart", st-1, st, d)
			}
		}
	}
}

func TestZeroAllocWritePath(t *testing.T) {
	c := NewCounters(4, 8)
	h := NewHistogram(4)
	if n := testing.AllocsPerRun(100, func() {
		c.Add(2, 3, 1)
		c.Inc(1, 0)
		h.Observe(2, 1234)
		h.ObserveN(3, 99, 7)
	}); n != 0 {
		t.Errorf("write path allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		s := h.Snapshot()
		_ = s.Quantile(0.99)
	}); n != 0 {
		t.Errorf("snapshot path allocates %.1f allocs/op, want 0", n)
	}
}
