package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// NewAdminMux builds the llscd admin plane: /metrics (Prometheus
// text), /statsz (JSON snapshot with histogram quantiles), /healthz
// (200 ok, or 503 with the error when healthz returns one), and the
// standard net/http/pprof handlers under /debug/pprof/. The mux is
// registered explicitly — nothing leaks onto http.DefaultServeMux —
// so tests and embedders can mount it wherever they like. healthz
// may be nil, meaning always healthy. buildInfo (typically
// BuildInfo()) is echoed on /healthz after the ok line so probes can
// tell which build answered; empty omits it.
func NewAdminMux(reg *Registry, healthz func() error, buildInfo string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteStatsz(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		if buildInfo != "" {
			fmt.Fprintln(w, buildInfo)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
