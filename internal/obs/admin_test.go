package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

func TestAdminMux(t *testing.T) {
	reg, _ := testRegistry()
	srv := httptest.NewServer(NewAdminMux(reg, nil, "mwllsc test-build abc123"))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "llscd_requests_total 42") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	code, body = get(t, srv, "/statsz")
	if code != 200 || !strings.Contains(body, "\"llscd_request_latency_seconds\"") {
		t.Errorf("/statsz: code=%d body=%q", code, body)
	}
	code, body = get(t, srv, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}
	if !strings.Contains(body, "mwllsc test-build abc123") {
		t.Errorf("/healthz: missing build info: body=%q", body)
	}
	code, body = get(t, srv, "/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d body=%q", code, body)
	}
	code, body = get(t, srv, "/debug/pprof/goroutine?debug=1")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/goroutine: code=%d", code)
	}
}

func TestAdminHealthzUnhealthy(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(NewAdminMux(reg, func() error { return errors.New("log device on fire") }, ""))
	defer srv.Close()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "log device on fire") {
		t.Errorf("/healthz: code=%d body=%q, want 503 with cause", code, body)
	}
}
