package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func testRegistry() (*Registry, *Histogram) {
	reg := NewRegistry()
	var reqs uint64 = 42
	reg.Counter("llscd_requests_total", "Requests executed.", func() uint64 { return reqs })
	reg.Gauge("llscd_connections_open", "Open connections.", func() uint64 { return 3 })
	h := NewHistogram(2)
	h.Observe(0, 1000)
	h.Observe(1, 2000)
	h.Observe(0, 3000)
	reg.Histogram("llscd_request_latency_seconds", "Service latency.", 1e-9, h)
	return reg, h
}

func TestWritePrometheus(t *testing.T) {
	reg, _ := testRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE llscd_requests_total counter",
		"llscd_requests_total 42",
		"# TYPE llscd_connections_open gauge",
		"llscd_connections_open 3",
		"# TYPE llscd_request_latency_seconds histogram",
		`llscd_request_latency_seconds_bucket{le="+Inf"} 3`,
		"llscd_request_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at count.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "llscd_request_latency_seconds_bucket") {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseUint(f[len(f)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("cumulative bucket decreased: %q after %d", line, last)
		}
		last = v
	}
	if last != 3 {
		t.Errorf("final cumulative bucket = %d, want 3", last)
	}
}

func TestWriteStatsz(t *testing.T) {
	reg, _ := testRegistry()
	var buf bytes.Buffer
	if err := reg.WriteStatsz(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("statsz is not JSON: %v\n%s", err, buf.String())
	}
	if string(got["llscd_requests_total"]) != "42" {
		t.Errorf("requests_total = %s, want 42", got["llscd_requests_total"])
	}
	var hs HistStats
	if err := json.Unmarshal(got["llscd_request_latency_seconds"], &hs); err != nil {
		t.Fatalf("histogram stats: %v", err)
	}
	if hs.Count != 3 {
		t.Errorf("hist count = %d, want 3", hs.Count)
	}
	// 1000-3000ns observations scaled to seconds: quantiles must be
	// microsecond-scale, not nanosecond-scale.
	if hs.P50 < 0.5e-6 || hs.P50 > 10e-6 {
		t.Errorf("p50 = %g, want ~1e-6..4e-6 seconds", hs.P50)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	// The 0.0.4 text format's two escaping rules, table-driven: HELP
	// text escapes backslash and newline; label values additionally
	// escape the double quote.
	cases := []struct {
		name        string
		in          string
		help, label string
	}{
		{"plain", "Requests executed.", "Requests executed.", "Requests executed."},
		{"backslash", `path C:\tmp`, `path C:\\tmp`, `path C:\\tmp`},
		{"newline", "line one\nline two", `line one\nline two`, `line one\nline two`},
		{"quote", `say "hi"`, `say "hi"`, `say \"hi\"`},
		{"mixed", "a\\b\n\"c\"", `a\\b\n"c"`, `a\\b\n\"c\"`},
		{"empty", "", "", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := escapeHelp(c.in); got != c.help {
				t.Errorf("escapeHelp(%q) = %q, want %q", c.in, got, c.help)
			}
			if got := escapeLabel(c.in); got != c.label {
				t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.label)
			}
		})
	}

	// End to end: a help string with every special character renders as
	// one well-formed HELP line.
	reg := NewRegistry()
	reg.Counter("esc_total", "count of \"x\\y\"\nsecond line", func() uint64 { return 1 })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP esc_total count of "x\\y"\nsecond line` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("HELP line not escaped:\n%s", buf.String())
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "# HELP") && !strings.HasPrefix(line, "# TYPE") {
			t.Errorf("stray comment line (unescaped newline?): %q", line)
		}
	}
}

func TestReRegistrationReplaces(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "first", func() uint64 { return 1 })
	reg.Counter("x", "second", func() uint64 { return 2 })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE x counter") != 1 {
		t.Errorf("duplicate registration not replaced:\n%s", out)
	}
	if !strings.Contains(out, "x 2") {
		t.Errorf("replacement not in effect:\n%s", out)
	}
}
