package obs

import (
	"math"
	"math/bits"
	"testing"
)

func TestBucketBound(t *testing.T) {
	cases := []struct {
		b    int
		want uint64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023},
		{63, 1<<63 - 1}, {64, math.MaxUint64}, {65, math.MaxUint64},
	}
	for _, c := range cases {
		if got := BucketBound(c.b); got != c.want {
			t.Errorf("BucketBound(%d) = %d, want %d", c.b, got, c.want)
		}
	}
	// Bucket membership: BucketBound(b-1) < v <= BucketBound(b) for the
	// bucket bits.Len64 assigns v to.
	for _, v := range []uint64{0, 1, 2, 3, 4, 255, 256, 1 << 40, math.MaxUint64} {
		b := bits.Len64(v)
		if v > BucketBound(b) || (b > 0 && v <= BucketBound(b-1)) {
			t.Errorf("value %d misfiled in bucket %d (%d, %d]", v, b, BucketBound(b-1), BucketBound(b))
		}
	}
}

func TestHistogramCountSum(t *testing.T) {
	h := NewHistogram(3)
	h.Observe(0, 0)
	h.Observe(1, 100)
	h.ObserveN(2, 1000, 5)
	s := h.Snapshot()
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if s.Sum != 100+5*1000 {
		t.Errorf("Sum = %d, want 5100", s.Sum)
	}
	if s.Buckets[0] != 1 {
		t.Errorf("zero bucket = %d, want 1", s.Buckets[0])
	}
	if s.Buckets[bits.Len64(100)] != 1 || s.Buckets[bits.Len64(1000)] != 5 {
		t.Errorf("buckets misfiled: %v", s.Buckets[:12])
	}
	if got, want := s.Mean(), 5100.0/7; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestQuantileWithinBucketError(t *testing.T) {
	// Feed a known uniform distribution; log bucketing bounds the
	// relative quantile error at 2x (one bucket's width).
	h := NewHistogram(2)
	for v := uint64(1); v <= 10000; v++ {
		h.Observe(int(v%2), v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		want := q * 10000
		if got < want/2 || got > want*2 {
			t.Errorf("Quantile(%g) = %g, want within 2x of %g", q, got, want)
		}
	}
	if got := s.Quantile(1.0); got > 2*10000 || got < 10000/2 {
		t.Errorf("Quantile(1) = %g out of range", got)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	h := NewHistogram(1)
	h.ObserveN(0, 4096, 1000)
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	// All mass is in bucket 13, the range [4096, 8191].
	if b := bits.Len64(4096); s.Buckets[b] != 1000 {
		t.Fatalf("bucket %d = %d, want 1000", b, s.Buckets[b])
	}
	if p50 < 4096 || p50 > 8191 {
		t.Errorf("p50 = %g, want within bucket of 4096", p50)
	}
}

func TestQuantileClamps(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(0, 10)
	s := h.Snapshot()
	if got := s.Quantile(-0.5); got != s.Quantile(0) {
		t.Errorf("Quantile(-0.5) = %g, want clamp to Quantile(0)", got)
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Errorf("Quantile(2) = %g, want clamp to Quantile(1)", got)
	}
}
