package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// NumBuckets is the fixed bucket count of every Histogram: bucket 0
// holds exactly the value 0 and bucket b (1..64) holds values v with
// bits.Len64(v) == b, i.e. the half-open power-of-two range
// [2^(b-1), 2^b). Log bucketing costs one bits.Len64 per observation,
// needs no configuration, and bounds the relative quantile error at
// 2x — plenty for latency distributions whose interesting structure
// spans six decades.
const NumBuckets = 65

// histWords is the per-stripe footprint: NumBuckets bucket counters
// plus one sum word, padded up to a stripeAlign multiple.
const histWords = (NumBuckets + 1 + stripeWords - 1) / stripeWords * stripeWords

// Histogram is a lock-free log-bucketed histogram striped like
// Counters: each writer stripe owns cache-line-padded buckets, so
// concurrent Observe calls from different registry slots never share
// a line. Observe is two atomic adds and allocates nothing.
type Histogram struct {
	words   []atomic.Uint64
	stripes int
}

// NewHistogram builds a histogram with the given stripe count
// (raised to 1 if below).
func NewHistogram(stripes int) *Histogram {
	if stripes < 1 {
		stripes = 1
	}
	return &Histogram{words: alignedWords(stripes * histWords), stripes: stripes}
}

// Stripes returns the number of stripes.
func (h *Histogram) Stripes() int { return h.stripes }

// Observe records one value on the given stripe. Out-of-range
// stripes fall back to stripe 0.
func (h *Histogram) Observe(stripe int, v uint64) { h.ObserveN(stripe, v, 1) }

// ObserveN records n identical observations of v in one pair of
// atomic adds — the batch executor stamps time once per batch and
// attributes the window to every request in it.
func (h *Histogram) ObserveN(stripe int, v, n uint64) {
	if uint(stripe) >= uint(h.stripes) {
		stripe = 0
	}
	base := stripe * histWords
	h.words[base+bits.Len64(v)].Add(n)
	h.words[base+NumBuckets].Add(v * n)
}

// stripeAddr returns the address of the stripe's first word, for the
// alignment test.
func (h *Histogram) stripeAddr(stripe int) uintptr {
	return uintptr(unsafe.Pointer(&h.words[stripe*histWords]))
}

// HistSnapshot is a point-in-time cross-stripe fold of a Histogram —
// a value type so taking one allocates nothing.
type HistSnapshot struct {
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
	// Buckets[b] counts observations v with bits.Len64(v) == b.
	Buckets [NumBuckets]uint64
}

// Snapshot folds every stripe into one snapshot. Concurrent writers
// may land between bucket loads; the snapshot is a consistent-enough
// monitoring view, not a linearizable one.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for st := 0; st < h.stripes; st++ {
		base := st * histWords
		for b := 0; b < NumBuckets; b++ {
			s.Buckets[b] += h.words[base+b].Load()
		}
		s.Sum += h.words[base+NumBuckets].Load()
	}
	for _, c := range s.Buckets {
		s.Count += c
	}
	return s
}

// BucketBound returns the largest value bucket b can hold: 0 for
// bucket 0, 2^b-1 for 1..63, and MaxUint64 for bucket 64.
func BucketBound(b int) uint64 {
	switch {
	case b <= 0:
		return 0
	case b >= 64:
		return math.MaxUint64
	default:
		return 1<<uint(b) - 1
	}
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by locating the
// bucket holding the rank and interpolating linearly inside its
// power-of-two range. Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for b := 0; b < NumBuckets; b++ {
		n := float64(s.Buckets[b])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if b == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(b-1))
			hi := float64(BucketBound(b))
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(BucketBound(NumBuckets - 1))
}

// Mean returns the average observed value, 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
