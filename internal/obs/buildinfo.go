package obs

import "runtime/debug"

// BuildInfo returns a one-line build identity — module path and
// version, vcs revision (and dirty marker) when the binary was built
// from a checkout, and the Go toolchain — for the llscd startup banner,
// the /healthz response, and bench report environment blocks: the first
// question about any surprising number is "which build produced it?".
func BuildInfo() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "build unknown"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	out := bi.Main.Path + " " + ver
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " " + rev + dirty
	}
	return out + " " + bi.GoVersion
}
