package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry names metrics and renders them. Components register
// read-side closures (for counters and gauges) or Histogram handles;
// nothing in the registry touches the write path, so registration
// order and lock discipline here cannot perturb serving.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

type metric struct {
	name, help string
	kind       string // "counter", "gauge", "histogram"
	read       func() uint64
	hist       *Histogram
	scale      float64 // multiplies raw values on output (1e-9: ns -> s)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a monotonically increasing metric read via read.
func (r *Registry) Counter(name, help string, read func() uint64) {
	r.add(metric{name: name, help: help, kind: "counter", read: read})
}

// Gauge registers a point-in-time metric read via read.
func (r *Registry) Gauge(name, help string, read func() uint64) {
	r.add(metric{name: name, help: help, kind: "gauge", read: read})
}

// Histogram registers h under name; scale multiplies raw observed
// values on output (pass 1e-9 for nanosecond observations exposed in
// seconds, Prometheus' base unit, or 1 for dimensionless ones).
func (r *Registry) Histogram(name, help string, scale float64, h *Histogram) {
	if scale == 0 {
		scale = 1
	}
	r.add(metric{name: name, help: help, kind: "histogram", hist: h, scale: scale})
}

func (r *Registry) add(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.metrics {
		if r.metrics[i].name == m.name {
			r.metrics[i] = m // re-registration replaces
			return
		}
	}
	r.metrics = append(r.metrics, m)
}

func (r *Registry) snapshot() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]metric, len(r.metrics))
	copy(out, r.metrics)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Histogram buckets are
// cumulative with power-of-two le bounds; empty buckets are elided
// (cumulative counts stay correct) to keep 65-bucket histograms
// readable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, m.kind); err != nil {
			return err
		}
		switch m.kind {
		case "histogram":
			s := m.hist.Snapshot()
			var cum uint64
			for b := 0; b < NumBuckets; b++ {
				if s.Buckets[b] == 0 {
					continue
				}
				cum += s.Buckets[b]
				if b == NumBuckets-1 {
					continue // top bucket is the +Inf line below
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
					m.name, escapeLabel(promFloat(float64(BucketBound(b))*m.scale)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, s.Count, m.name, promFloat(float64(s.Sum)*m.scale), m.name, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.read()); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFloat formats a float the way Prometheus clients expect:
// shortest representation, scientific notation allowed.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// helpEscaper and labelEscaper implement the text format's (version
// 0.0.4) two escaping rules: HELP text escapes backslash and newline;
// label values additionally escape the double quote that would
// otherwise terminate them. Metric names are identifiers and need
// neither.
var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

// escapeHelp escapes s for use as HELP text.
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// escapeLabel escapes s for use as a label value.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// HistStats is the JSON shape of one histogram in /statsz.
type HistStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// HistStatsOf folds h and summarizes it with values scaled by scale.
func HistStatsOf(h *Histogram, scale float64) HistStats {
	if scale == 0 {
		scale = 1
	}
	s := h.Snapshot()
	return HistStats{
		Count: s.Count,
		Sum:   float64(s.Sum) * scale,
		Mean:  s.Mean() * scale,
		P50:   s.Quantile(0.50) * scale,
		P90:   s.Quantile(0.90) * scale,
		P99:   s.Quantile(0.99) * scale,
		P999:  s.Quantile(0.999) * scale,
	}
}

// WriteStatsz renders every metric as one JSON object: counters and
// gauges as numbers, histograms as HistStats objects with quantiles.
// Keys are the metric names; encoding/json sorts them, so the output
// is deterministic given the same values.
func (r *Registry) WriteStatsz(w io.Writer) error {
	out := make(map[string]any)
	for _, m := range r.snapshot() {
		if m.kind == "histogram" {
			out[m.name] = HistStatsOf(m.hist, m.scale)
		} else {
			out[m.name] = m.read()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
