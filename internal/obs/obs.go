// Package obs is the observability layer: striped counters and
// zero-allocation log-bucketed histograms cheap enough to live on the
// serving hot path, plus a metric registry that renders them as
// Prometheus text and JSON for the llscd admin plane.
//
// The design constraint is the same one that shaped the serving path:
// no allocations and no shared cache lines per request. Counters and
// Histogram both stripe their state per registry process slot — the
// executor already holds a slot id for the duration of a batch — and
// pad each stripe to 128 bytes (two cache lines, defeating the
// adjacent-line prefetcher) so two slots bumping their own counters
// never write the same line. Reads (Sum, Snapshot) walk every stripe;
// they are the rare path and pay for the writes' isolation.
package obs

import (
	"sync/atomic"
	"unsafe"
)

// stripeAlign is the byte alignment and padding granularity of a
// stripe: two 64-byte cache lines, so the adjacent-line prefetcher
// cannot couple neighboring stripes either.
const stripeAlign = 128

// stripeWords is stripeAlign in 8-byte words.
const stripeWords = stripeAlign / 8

// alignedWords allocates total words of atomic storage whose first
// element sits on a stripeAlign boundary. Go does not guarantee slice
// alignment beyond the element size, so it over-allocates one stripe
// and offsets the view.
func alignedWords(total int) []atomic.Uint64 {
	backing := make([]atomic.Uint64, total+stripeWords)
	off := 0
	if rem := uintptr(unsafe.Pointer(&backing[0])) % stripeAlign; rem != 0 {
		off = int((stripeAlign - rem) / 8)
	}
	return backing[off : off+total]
}

// Counters is a bank of n named counters striped over s independent
// cache-line-padded banks. Writers pick a stripe (their registry
// process slot id) and touch only that stripe's lines; Sum folds the
// stripes into the logical counter value. A stripe index outside
// [0, Stripes()) is redirected to stripe 0, so callers off the hot
// path (accept loops, decode errors) can pass a sentinel without
// branching themselves.
type Counters struct {
	words   []atomic.Uint64
	stripes int
	n       int
	stride  int // words per stripe, a multiple of stripeWords
}

// NewCounters builds a bank of n counters with stripes stripes.
// Values below 1 are raised to 1.
func NewCounters(stripes, n int) *Counters {
	if stripes < 1 {
		stripes = 1
	}
	if n < 1 {
		n = 1
	}
	stride := (n + stripeWords - 1) / stripeWords * stripeWords
	return &Counters{
		words:   alignedWords(stripes * stride),
		stripes: stripes,
		n:       n,
		stride:  stride,
	}
}

// Stripes returns the number of stripes.
func (c *Counters) Stripes() int { return c.stripes }

// N returns the number of counters per stripe.
func (c *Counters) N() int { return c.n }

// Add adds d to counter i on the given stripe. Out-of-range stripes
// fall back to stripe 0. Decrements are uint64 wraparound adds
// (Add(s, i, ^uint64(0)) subtracts one); the cross-stripe Sum stays
// correct under modular arithmetic.
func (c *Counters) Add(stripe, i int, d uint64) {
	if uint(stripe) >= uint(c.stripes) {
		stripe = 0
	}
	c.words[stripe*c.stride+i].Add(d)
}

// Inc adds one to counter i on the given stripe.
func (c *Counters) Inc(stripe, i int) { c.Add(stripe, i, 1) }

// Sum folds counter i across all stripes.
func (c *Counters) Sum(i int) uint64 {
	var s uint64
	for st := 0; st < c.stripes; st++ {
		s += c.words[st*c.stride+i].Load()
	}
	return s
}

// Sums writes the cross-stripe totals of counters 0..len(dst)-1 into
// dst (at most N of them), one registry walk instead of N.
func (c *Counters) Sums(dst []uint64) {
	n := len(dst)
	if n > c.n {
		n = c.n
	}
	for i := 0; i < n; i++ {
		dst[i] = 0
	}
	for st := 0; st < c.stripes; st++ {
		base := st * c.stride
		for i := 0; i < n; i++ {
			dst[i] += c.words[base+i].Load()
		}
	}
}

// StripeSum returns counter i's value on a single stripe — a test
// hook for proving writes land only in the writer's stripe.
func (c *Counters) StripeSum(stripe, i int) uint64 {
	if uint(stripe) >= uint(c.stripes) {
		stripe = 0
	}
	return c.words[stripe*c.stride+i].Load()
}

// stripeAddr returns the address of the stripe's first word, for the
// alignment test.
func (c *Counters) stripeAddr(stripe int) uintptr {
	return uintptr(unsafe.Pointer(&c.words[stripe*c.stride]))
}
