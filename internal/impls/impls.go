// Package impls is the registry of multiword LL/SC implementations by
// name, shared by applications, benchmarks, and the CLI tools:
//
//	jp       — the paper's algorithm (tagged single-word substrate)
//	jp-ptr   — the paper's algorithm (pointer single-word substrate)
//	amstyle  — wait-free O(N²W)-space baseline (previous best profile)
//	gcptr    — CAS-on-pointer baseline (GC does the buffer management)
//	lockmw   — mutex baseline (blocking)
package impls

import (
	"fmt"
	"sort"

	"mwllsc/internal/baseline"
	"mwllsc/internal/core"
	"mwllsc/internal/mem"
	"mwllsc/internal/mwobj"
	"mwllsc/internal/shard"
)

// JP is the paper's algorithm on the default (tagged) substrate.
const JP = "jp"

// registry maps implementation names to factories.
var registry = map[string]mwobj.Factory{
	JP: func(n, w int, initial []uint64) (mwobj.MW, error) {
		return core.New(mem.NewReal(n, mem.SubstrateTagged), n, w, initial, nil)
	},
	"jp-ptr": func(n, w int, initial []uint64) (mwobj.MW, error) {
		return core.New(mem.NewReal(n, mem.SubstratePtr), n, w, initial, nil)
	},
	"amstyle": func(n, w int, initial []uint64) (mwobj.MW, error) {
		return baseline.NewAMStyle(n, w, initial)
	},
	"gcptr": func(n, w int, initial []uint64) (mwobj.MW, error) {
		return baseline.NewGCPtr(n, w, initial)
	},
	"lockmw": func(n, w int, initial []uint64) (mwobj.MW, error) {
		return baseline.NewLockMW(n, w, initial)
	},
}

// ByName returns the factory registered under name.
func ByName(name string) (mwobj.Factory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("impls: unknown implementation %q (have %v)", name, Names())
	}
	return f, nil
}

// Names lists all registered implementation names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// JPWithStats returns a factory for the paper's algorithm wired to stats.
func JPWithStats(stats *core.Stats) mwobj.Factory {
	return func(n, w int, initial []uint64) (mwobj.MW, error) {
		return core.New(mem.NewReal(n, mem.SubstrateTagged), n, w, initial, stats)
	}
}

// NewSharded builds a k-shard map whose shards are the named
// implementation, sharing one n-slot goroutine registry — the scaling
// construction from internal/shard over any registered object.
func NewSharded(name string, k, n, w int, opts ...shard.MapOption) (*shard.Map, error) {
	f, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return shard.NewMap(k, n, w, append([]shard.MapOption{shard.WithFactory(f)}, opts...)...)
}
