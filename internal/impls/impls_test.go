package impls

import (
	"sort"
	"strings"
	"testing"

	"mwllsc/internal/core"
	"mwllsc/internal/mwtest"
)

func TestByNameKnown(t *testing.T) {
	for _, name := range Names() {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		obj, err := f(2, 3, mwtest.Pattern(10, 3))
		if err != nil {
			t.Fatalf("%s factory: %v", name, err)
		}
		if obj.N() != 2 || obj.W() != 3 {
			t.Fatalf("%s built a %d-process %d-word object, want 2/3", name, obj.N(), obj.W())
		}
		v := make([]uint64, 3)
		obj.LL(0, v)
		for j, want := range mwtest.Pattern(10, 3) {
			if v[j] != want {
				t.Fatalf("%s initial value %v, want %v", name, v, mwtest.Pattern(10, 3))
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("no-such-impl")
	if err == nil {
		t.Fatal("ByName on an unknown name succeeded")
	}
	// The error must help the caller: name it and list the alternatives.
	msg := err.Error()
	if !strings.Contains(msg, "no-such-impl") {
		t.Fatalf("error %q does not mention the requested name", msg)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not list registered impl %q", msg, name)
		}
	}
}

func TestNamesCompleteSortedAndStable(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d names, registry has %d", len(names), len(registry))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("Names() repeats %q", name)
		}
		seen[name] = true
		if _, ok := registry[name]; !ok {
			t.Fatalf("Names() lists %q which is not registered", name)
		}
	}
	if !seen[JP] {
		t.Fatalf("the paper's implementation %q is not in Names() %v", JP, names)
	}
}

func TestJPWithStatsCounts(t *testing.T) {
	var stats core.Stats
	f := JPWithStats(&stats)
	obj, err := f(2, 2, mwtest.Pattern(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]uint64, 2)
	obj.LL(0, v)
	obj.SC(0, v)
	s := stats.Snapshot()
	if s.LLTotal != 1 || s.SCTotal != 1 {
		t.Fatalf("stats = %+v after one LL and one SC, want 1/1", s)
	}
}

func TestNewSharded(t *testing.T) {
	m, err := NewSharded("lockmw", 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 || m.N() != 2 || m.W() != 2 {
		t.Fatalf("geometry = %d/%d/%d, want 4/2/2", m.Shards(), m.N(), m.W())
	}
	m.Update(9, func(v []uint64) { v[0] = 42 })
	v := make([]uint64, 2)
	m.Read(9, v)
	if v[0] != 42 {
		t.Fatalf("read %v after update, want [42 0]", v)
	}
	if _, err := NewSharded("no-such-impl", 4, 2, 2); err == nil {
		t.Fatal("NewSharded with an unknown impl succeeded")
	}
}
