// Package baseline provides the comparator implementations of the W-word
// LL/SC/VL object that the paper's evaluation story is measured against:
//
//   - AMStyle: a wait-free, O(W)-time construction with Θ(N²W) space —
//     the complexity profile of the previous best algorithm (Anderson &
//     Moir 1995) that the paper improves on by a factor of N. See the
//     type's documentation for the fidelity note.
//   - GCPtr: what an idiomatic Go programmer would write — CAS on a
//     pointer to an immutable value slice. Wait-free and O(W), but it
//     allocates on every SC and leans on the garbage collector for its
//     buffer management (the paper's setting has no GC; its contribution
//     is achieving the same bounds with explicit buffer recycling).
//   - LockMW: a mutex-protected version-counter implementation — the
//     blocking strawman.
//
// All implement mwobj.MW and are exercised by the same conformance suite
// as the paper's algorithm.
package baseline
