package baseline

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"mwllsc/internal/llscword"
	"mwllsc/internal/mwobj"
)

// AMStyle is a wait-free W-word LL/SC/VL object with O(W)-time operations
// and Θ(N²W) space — the complexity profile of the previous best algorithm
// (Anderson & Moir 1995) that the paper's O(NW) construction improves on.
// It is labeled "AM-style" rather than "Anderson-Moir" because it is built
// from the complexity description in the paper's §1 (the AM'95 text is not
// available offline), so it matches the claimed bounds, not the original
// construction's internals.
//
// Construction:
//
//   - X is a single-word LL/SC object holding (pid, poolIdx, seq).
//   - Every process owns a private pool of 2N W-word buffers (2N²W words
//     total). An SC writes its value into the process's cursor slot and
//     swings X to it; the cursor advances only on success, so a slot is
//     reused only after its owner completed 2N more successful SCs — hence
//     at least 2N global successful SCs, mirroring the paper's reuse bound.
//   - LL announces itself in HelpTag[p] (a pointer CAS cell carrying an
//     announcement sequence number), reads X, copies the published buffer
//     and validates X. On validation failure it either consumes help or
//     falls back to the stale-but-valid copy (fewer than 2N SCs intervened,
//     so the slot was not reused).
//   - Helping: each successful SC moving the sequence number from s to s+1
//     first offers the value of its own latest LL to process s mod N by
//     copying it into the dedicated slot HelpBuf[helper][target] — N²W
//     words, the dominant space term — and publishing with a single CAS on
//     HelpTag[target]. Over any 2N consecutive successful SCs every process
//     is offered help twice, so a reader that overlaps 2N successful SCs is
//     guaranteed a valid value.
//
// The same JP-style "retry once, then fall back to the helped value"
// sequence (paper §2.5, Lines 5-7) resolves the obligation that an LL's
// return value be current exactly when the subsequent SC can succeed.
type AMStyle struct {
	n, w int

	x       llscword.Word
	pool    []atomic.Uint64 // [pid][slot][word]: n * 2n * w
	helpBuf []atomic.Uint64 // [helper][target][word]: n * n * w
	helpTag []amHelpTag     // one pointer cell per process

	procs []amProc

	pidBits, idxBits, seqBits uint
}

type amHelpTag struct {
	ptr atomic.Pointer[amHelpState]
	_   [56]byte
}

// amHelpState is an announcement (pending) or a completed help (done).
// A fresh cell is allocated per transition, so pointer CAS has no ABA.
type amHelpState struct {
	asn     uint64
	pending bool
	helper  int
}

type amProc struct {
	asn     uint64
	cursor  int
	xval    uint64   // X value observed by this process's latest LL
	lastVal []uint64 // value returned by this process's latest LL (private)
	_       [24]byte
}

// NewAMStyle returns an AMStyle object for n processes and w-word values.
func NewAMStyle(n, w int, initial []uint64) (*AMStyle, error) {
	if n < 1 || w < 1 {
		return nil, fmt.Errorf("amstyle: invalid n=%d w=%d", n, w)
	}
	if len(initial) != w {
		return nil, fmt.Errorf("amstyle: initial value has %d words, want %d", len(initial), w)
	}
	o := &AMStyle{
		n:       n,
		w:       w,
		pool:    make([]atomic.Uint64, n*2*n*w),
		helpBuf: make([]atomic.Uint64, n*n*w),
		helpTag: make([]amHelpTag, n),
		procs:   make([]amProc, n),
		pidBits: uint(bits.Len(uint(n - 1))),
		idxBits: uint(bits.Len(uint(2*n - 1))),
		seqBits: uint(bits.Len(uint(2*n - 1))),
	}
	if n == 1 {
		o.pidBits = 1 // bits.Len(0) == 0; keep the field addressable
	}
	initX := o.packX(0, 0, 0)
	if t, err := llscword.NewTagged(n, o.pidBits+o.idxBits+o.seqBits, initX, true); err == nil {
		o.x = t
	} else {
		o.x = llscword.NewPtr(n, initX, true)
	}
	// POOL[0][0] holds the initial value; process 0's cursor starts past it.
	for j, v := range initial {
		o.pool[j].Store(v)
	}
	o.procs[0].cursor = 1
	for p := range o.procs {
		o.procs[p].lastVal = make([]uint64, w)
		copy(o.procs[p].lastVal, initial)
		o.procs[p].xval = initX
	}
	return o, nil
}

func (o *AMStyle) packX(pid, idx, seq int) uint64 {
	return (uint64(pid)<<o.idxBits|uint64(idx))<<o.seqBits | uint64(seq)
}

func (o *AMStyle) xPid(x uint64) int { return int(x >> (o.idxBits + o.seqBits)) }
func (o *AMStyle) xIdx(x uint64) int {
	return int(x>>o.seqBits) & (1<<o.idxBits - 1)
}
func (o *AMStyle) xSeq(x uint64) int { return int(x & (1<<o.seqBits - 1)) }

func (o *AMStyle) poolBase(pid, slot int) int { return (pid*2*o.n + slot) * o.w }
func (o *AMStyle) helpBase(helper, target int) int {
	return (helper*o.n + target) * o.w
}

func (o *AMStyle) copyPool(pid, slot int, dst []uint64) {
	base := o.poolBase(pid, slot)
	for i := range dst {
		dst[i] = o.pool[base+i].Load()
	}
}

// N implements mwobj.MW.
func (o *AMStyle) N() int { return o.n }

// W implements mwobj.MW.
func (o *AMStyle) W() int { return o.w }

// LL implements mwobj.MW. Wait-free, O(W): one announcement, at most two
// buffer copies plus one help copy.
func (o *AMStyle) LL(p int, dst []uint64) {
	if len(dst) != o.w {
		panic(fmt.Sprintf("amstyle: LL dst has %d words, want %d", len(dst), o.w))
	}
	pr := &o.procs[p]
	pr.asn++
	o.helpTag[p].ptr.Store(&amHelpState{asn: pr.asn, pending: true})

	x := o.x.LL(p)
	pr.xval = x
	o.copyPool(o.xPid(x), o.xIdx(x), dst)
	if o.x.VL(p) {
		// No successful SC overlapped the copy: dst is current and the
		// link is live; obligations O1 and O2 hold.
		copy(pr.lastVal, dst)
		return
	}

	if ht := o.helpTag[p].ptr.Load(); ht != nil && !ht.pending && ht.asn == pr.asn {
		// Helped: >= 2N successful SCs may have overlapped the first copy.
		// Retry once for the *current* value (fresh link); if X moves yet
		// again, fall back to the helped value — it is valid, and the
		// dead link correctly fails the subsequent SC.
		x = o.x.LL(p)
		pr.xval = x
		o.copyPool(o.xPid(x), o.xIdx(x), dst)
		if !o.x.VL(p) {
			base := o.helpBase(ht.helper, p)
			for i := range dst {
				dst[i] = o.helpBuf[base+i].Load()
			}
		}
	}
	// Not helped: fewer than 2N successful SCs overlapped, so the slot was
	// not reused and dst holds the (stale but valid) value from the LL(X)
	// instant; the dead link correctly fails the subsequent SC.
	copy(pr.lastVal, dst)
}

// SC implements mwobj.MW. Wait-free, O(W): at most one help copy, one
// buffer write, one CAS.
func (o *AMStyle) SC(p int, src []uint64) bool {
	if len(src) != o.w {
		panic(fmt.Sprintf("amstyle: SC src has %d words, want %d", len(src), o.w))
	}
	pr := &o.procs[p]

	// Help the process whose turn it is as seq moves from s to s+1.
	t := o.xSeq(pr.xval) % o.n
	if ht := o.helpTag[t].ptr.Load(); ht != nil && ht.pending {
		base := o.helpBase(p, t)
		for i, v := range pr.lastVal {
			o.helpBuf[base+i].Store(v)
		}
		// The value handed over must still be current at the handoff.
		if o.x.VL(p) {
			o.helpTag[t].ptr.CompareAndSwap(ht, &amHelpState{asn: ht.asn, helper: p})
		}
	}

	slot := pr.cursor
	base := o.poolBase(p, slot)
	for i, v := range src {
		o.pool[base+i].Store(v)
	}
	ok := o.x.SC(p, o.packX(p, slot, (o.xSeq(pr.xval)+1)%(2*o.n)))
	if ok {
		pr.cursor = (pr.cursor + 1) % (2 * o.n)
	}
	return ok
}

// VL implements mwobj.MW.
func (o *AMStyle) VL(p int) bool { return o.x.VL(p) }

// Space implements mwobj.Spacer: 3N²W register words (2N²W pool + N²W help
// buffers) and N+1 LL/SC words — the Θ(N²W) the paper cuts to O(NW).
func (o *AMStyle) Space() mwobj.Space {
	s := mwobj.Space{
		RegisterWords: int64(len(o.pool)) + int64(len(o.helpBuf)),
		LLSCWords:     int64(o.n) + 1,
	}
	s.PhysBytes = int64(len(o.pool))*8 + int64(len(o.helpBuf))*8 +
		int64(len(o.helpTag))*64 + int64(o.n)*(int64(o.w)*8+64)
	if pb, ok := o.x.(mwobj.PhysByteser); ok {
		s.PhysBytes += pb.PhysBytes()
	}
	return s
}

var (
	_ mwobj.MW     = (*AMStyle)(nil)
	_ mwobj.Spacer = (*AMStyle)(nil)
)
