package baseline

import (
	"fmt"
	"sync/atomic"

	"mwllsc/internal/mwobj"
)

// GCPtr implements the W-word LL/SC/VL object as CAS on a pointer to an
// immutable value slice. Correctness is exact (the garbage collector cannot
// recycle a snapshot while some process's link references it, so there is
// no ABA), and all operations are wait-free with O(W) time. The cost is an
// O(W) allocation on every SC — the garbage collector is doing the buffer
// management that the paper's algorithm performs explicitly with its 3N
// recycled buffers.
type GCPtr struct {
	n, w int
	cur  atomic.Pointer[[]uint64]
	ctx  []gcptrCtx
}

type gcptrCtx struct {
	observed *[]uint64
	_        [56]byte // keep per-process links on distinct cache lines
}

// NewGCPtr returns a GCPtr object for n processes and w-word values.
func NewGCPtr(n, w int, initial []uint64) (*GCPtr, error) {
	if n < 1 || w < 1 {
		return nil, fmt.Errorf("gcptr: invalid n=%d w=%d", n, w)
	}
	if len(initial) != w {
		return nil, fmt.Errorf("gcptr: initial value has %d words, want %d", len(initial), w)
	}
	o := &GCPtr{n: n, w: w, ctx: make([]gcptrCtx, n)}
	v := make([]uint64, w)
	copy(v, initial)
	o.cur.Store(&v)
	return o, nil
}

// N implements mwobj.MW.
func (o *GCPtr) N() int { return o.n }

// W implements mwobj.MW.
func (o *GCPtr) W() int { return o.w }

// LL implements mwobj.MW.
func (o *GCPtr) LL(p int, dst []uint64) {
	snap := o.cur.Load()
	o.ctx[p].observed = snap
	copy(dst, *snap)
}

// SC implements mwobj.MW.
func (o *GCPtr) SC(p int, src []uint64) bool {
	v := make([]uint64, o.w)
	copy(v, src)
	return o.cur.CompareAndSwap(o.ctx[p].observed, &v)
}

// VL implements mwobj.MW.
func (o *GCPtr) VL(p int) bool {
	return o.cur.Load() == o.ctx[p].observed
}

// Space implements mwobj.Spacer. Paper accounting: the current value's W
// registers plus one CAS word; physically, up to N retained snapshots (one
// per outstanding link) are also charged.
func (o *GCPtr) Space() mwobj.Space {
	return mwobj.Space{
		RegisterWords: int64(o.w),
		LLSCWords:     1,
		PhysBytes:     8 + int64(o.n)*64 + int64(o.n+1)*int64(o.w)*8,
	}
}

var (
	_ mwobj.MW     = (*GCPtr)(nil)
	_ mwobj.Spacer = (*GCPtr)(nil)
)
