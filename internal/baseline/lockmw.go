package baseline

import (
	"fmt"
	"sync"

	"mwllsc/internal/mwobj"
)

// LockMW implements the W-word LL/SC/VL object with a mutex and a version
// counter. It is linearizable but blocking: a preempted lock holder stalls
// every other process — exactly the failure mode lock-free research exists
// to avoid. It serves as the conventional baseline in throughput
// experiments.
type LockMW struct {
	n, w int

	mu  sync.Mutex
	val []uint64
	ver uint64 // incremented on every successful SC

	linked []lockLink
}

type lockLink struct {
	ver uint64
	_   [56]byte
}

// NewLockMW returns a LockMW object for n processes and w-word values.
func NewLockMW(n, w int, initial []uint64) (*LockMW, error) {
	if n < 1 || w < 1 {
		return nil, fmt.Errorf("lockmw: invalid n=%d w=%d", n, w)
	}
	if len(initial) != w {
		return nil, fmt.Errorf("lockmw: initial value has %d words, want %d", len(initial), w)
	}
	o := &LockMW{n: n, w: w, val: make([]uint64, w), linked: make([]lockLink, n)}
	copy(o.val, initial)
	o.ver = 1
	return o, nil
}

// N implements mwobj.MW.
func (o *LockMW) N() int { return o.n }

// W implements mwobj.MW.
func (o *LockMW) W() int { return o.w }

// LL implements mwobj.MW.
func (o *LockMW) LL(p int, dst []uint64) {
	o.mu.Lock()
	copy(dst, o.val)
	o.linked[p].ver = o.ver
	o.mu.Unlock()
}

// SC implements mwobj.MW.
func (o *LockMW) SC(p int, src []uint64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.linked[p].ver != o.ver {
		return false
	}
	copy(o.val, src)
	o.ver++
	return true
}

// VL implements mwobj.MW.
func (o *LockMW) VL(p int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.linked[p].ver == o.ver
}

// Space implements mwobj.Spacer.
func (o *LockMW) Space() mwobj.Space {
	return mwobj.Space{
		RegisterWords: int64(o.w) + 1,
		LLSCWords:     0,
		PhysBytes:     int64(o.w)*8 + 16 + int64(o.n)*64,
	}
}

var (
	_ mwobj.MW     = (*LockMW)(nil)
	_ mwobj.Spacer = (*LockMW)(nil)
)
