package baseline

import (
	"sync"
	"testing"

	"mwllsc/internal/mwobj"
	"mwllsc/internal/mwtest"
)

func TestAMStyleConformance(t *testing.T) {
	mwtest.RunConformance(t, func(n, w int, initial []uint64) (mwobj.MW, error) {
		return NewAMStyle(n, w, initial)
	})
}

func TestGCPtrConformance(t *testing.T) {
	mwtest.RunConformance(t, func(n, w int, initial []uint64) (mwobj.MW, error) {
		return NewGCPtr(n, w, initial)
	})
}

func TestLockMWConformance(t *testing.T) {
	mwtest.RunConformance(t, func(n, w int, initial []uint64) (mwobj.MW, error) {
		return NewLockMW(n, w, initial)
	})
}

func TestConstructorValidation(t *testing.T) {
	type ctor func(n, w int, initial []uint64) (mwobj.MW, error)
	ctors := map[string]ctor{
		"amstyle": func(n, w int, i []uint64) (mwobj.MW, error) { return NewAMStyle(n, w, i) },
		"gcptr":   func(n, w int, i []uint64) (mwobj.MW, error) { return NewGCPtr(n, w, i) },
		"lockmw":  func(n, w int, i []uint64) (mwobj.MW, error) { return NewLockMW(n, w, i) },
	}
	for name, c := range ctors {
		t.Run(name, func(t *testing.T) {
			if _, err := c(0, 1, []uint64{0}); err == nil {
				t.Error("accepted n=0")
			}
			if _, err := c(1, 0, nil); err == nil {
				t.Error("accepted w=0")
			}
			if _, err := c(2, 3, []uint64{0}); err == nil {
				t.Error("accepted short initial value")
			}
		})
	}
}

// TestAMStyleSpaceQuadraticInN checks the baseline has the Θ(N²W) register
// footprint the paper ascribes to the previous best algorithm: doubling N
// must quadruple the register words.
func TestAMStyleSpaceQuadraticInN(t *testing.T) {
	const w = 16
	var prev int64
	for _, n := range []int{2, 4, 8, 16, 32} {
		o, err := NewAMStyle(n, w, mwtest.Pattern(0, w))
		if err != nil {
			t.Fatal(err)
		}
		now := o.Space().RegisterWords
		if want := int64(3*n*n) * int64(w); now != want {
			t.Fatalf("n=%d: RegisterWords = %d, want %d", n, now, want)
		}
		if prev != 0 && now != 4*prev {
			t.Fatalf("n=%d: register words %d, want exactly 4x previous %d", n, now, prev)
		}
		prev = now
	}
}

func TestGCPtrAllocatesPerSC(t *testing.T) {
	o, err := NewGCPtr(1, 8, make([]uint64, 8))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]uint64, 8)
	avg := testing.AllocsPerRun(100, func() {
		o.LL(0, v)
		o.SC(0, v)
	})
	if avg < 1 {
		t.Fatalf("GCPtr allocated %.1f per LL+SC round, expected >= 1 (that is its design cost)", avg)
	}
}

// TestAMStyleHelpedPathUnderPressure uses a very wide value so a reader's
// O(W) copy overlaps many successful SCs, exercising the announcement/help
// machinery under real concurrency (the analogue of the paper's §2.2
// scenario). The test asserts semantics, not that helping occurred — real
// schedulers cannot be forced — but with W=4096 and 2N=6 the helped branch
// is reached with overwhelming probability.
func TestAMStyleHelpedPathUnderPressure(t *testing.T) {
	const (
		n   = 3
		w   = 4096
		ops = 60
	)
	o, err := NewAMStyle(n, w, mwtest.Pattern(0, w))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, w)
			for i := 0; i < ops; i++ {
				o.LL(p, v)
				for j := 0; j < w; j += 511 {
					if v[j] != v[0]+uint64(j) {
						t.Errorf("p%d: torn wide read (word %d)", p, j)
						return
					}
				}
				o.SC(p, mwtest.Pattern(uint64(1+p*ops+i)*8192, w))
			}
		}(p)
	}
	wg.Wait()
}

// TestLockMWBlockingContrast documents the baseline's nature: it is
// correct, and nothing here can show blocking in-process — the contrast is
// measured in benchmarks (E3) where lock convoying appears as throughput
// collapse.
func TestLockMWSequential(t *testing.T) {
	o, err := NewLockMW(2, 1, []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	v := make([]uint64, 1)
	o.LL(0, v)
	if v[0] != 5 || !o.VL(0) {
		t.Fatal("bad initial read")
	}
	if !o.SC(0, []uint64{6}) {
		t.Fatal("SC failed")
	}
	o.LL(1, v)
	if v[0] != 6 {
		t.Fatal("value not updated")
	}
}
