package server_test

import (
	"bufio"
	"net"
	"path/filepath"
	"testing"
	"time"

	"mwllsc/internal/persist"
	"mwllsc/internal/server"
	"mwllsc/internal/shard"
	"mwllsc/internal/trace"
	"mwllsc/internal/wire"
)

// rawConn speaks the wire protocol directly — the trace tests exercise
// the request suffix at the frame level rather than through
// internal/client, so a client-side regression cannot mask a server one.
type rawConn struct {
	t    *testing.T
	c    net.Conn
	br   *bufio.Reader
	buf  []byte
	resp wire.Response
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c, br: bufio.NewReader(c)}
}

func (rc *rawConn) roundTrip(req *wire.Request) *wire.Response {
	rc.t.Helper()
	payload := wire.AppendRequest(nil, req)
	if err := wire.WriteFrame(rc.c, payload); err != nil {
		rc.t.Fatal(err)
	}
	var err error
	rc.buf, err = wire.ReadFrame(rc.br, rc.buf)
	if err != nil {
		rc.t.Fatal(err)
	}
	if err := wire.DecodeResponse(&rc.resp, rc.buf); err != nil {
		rc.t.Fatal(err)
	}
	return &rc.resp
}

// startTracedServer runs a server with a durability store (SyncAlways,
// so the persist and fsync stages are real) and the given tracer.
func startTracedServer(t *testing.T, tr *trace.Tracer) string {
	t.Helper()
	m, err := shard.NewMap(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := persist.Open(filepath.Join(t.TempDir(), "data"), m,
		persist.Options{Policy: persist.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m, server.WithPersist(st), server.WithTracer(tr))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() {
		s.Close()
		st.Close()
	})
	return addr.String()
}

// waitRetired polls until the tracer has retired at least n spans
// (retirement happens in the writer goroutine, after the response's
// flush, so it can trail the client's read).
func waitRetired(t *testing.T, tr *trace.Tracer, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().Retired < n {
		if time.Now().After(deadline) {
			t.Fatalf("tracer retired %d spans, want >= %d", tr.Stats().Retired, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTracedRequestRoundTrip is the tentpole's integration test: a
// wire-flagged update comes back with the server's stage breakdown, the
// retired span appears in the recent and slow rings, and its stage sum
// is within 10% of its recorded total (it is exact by construction —
// each stamp closes one stage and opens the next).
func TestTracedRequestRoundTrip(t *testing.T) {
	tr := trace.New(trace.Config{SlowN: 8, Recent: 16})
	addr := startTracedServer(t, tr)
	rc := dialRaw(t, addr)

	const traceID = 0x0123456789abcdef
	resp := rc.roundTrip(&wire.Request{
		ID: 1, Op: wire.OpUpdate, Mode: wire.ModeAdd, Key: 7,
		Args: []uint64{5, 6}, Traced: true, TraceID: traceID,
	})
	if resp.Status != wire.StatusOK {
		t.Fatalf("traced update: %v %s", resp.Status, resp.Err)
	}
	if !resp.Traced || resp.TraceID != traceID {
		t.Fatalf("response trace fields: traced=%v id=%x", resp.Traced, resp.TraceID)
	}
	if len(resp.Stages) != trace.WireStages {
		t.Fatalf("response carries %d stages, want %d", len(resp.Stages), trace.WireStages)
	}
	wireStages := append([]uint64(nil), resp.Stages...) // resp is reused below

	// An untraced request on the same connection must not echo a suffix.
	if resp := rc.roundTrip(&wire.Request{ID: 2, Op: wire.OpPing}); resp.Traced {
		t.Fatal("untraced request came back with a trace suffix")
	}

	waitRetired(t, tr, 1)
	var span *trace.Span
	for _, s := range tr.Recent(nil, 0) {
		if s.TraceID == traceID {
			span = &s
			break
		}
	}
	if span == nil {
		t.Fatalf("trace %x not in recent ring: %+v", traceID, tr.Recent(nil, 0))
	}
	if span.Sampled || span.Err || span.Op != uint8(wire.OpUpdate) || span.Key != 7 {
		t.Fatalf("span fields: %+v", span)
	}
	if span.Attempts < 1 || span.Batch < 1 {
		t.Fatalf("span attempts=%d batch=%d, want >= 1", span.Attempts, span.Batch)
	}

	// The acceptance bound: stage sum within 10% of recorded total.
	var sum uint64
	for _, d := range span.Stages {
		sum += d
	}
	if span.Total == 0 {
		t.Fatal("span total is zero")
	}
	if diff := int64(sum) - int64(span.Total); diff > int64(span.Total)/10 || -diff > int64(span.Total)/10 {
		t.Fatalf("stage sum %d vs total %d: off by more than 10%%", sum, span.Total)
	}
	// Persist ran under SyncAlways: the persist stage window is real.
	if span.Stages[trace.StagePersist]+span.Stages[trace.StageFsync] == 0 {
		t.Fatalf("persist+fsync stages zero under SyncAlways: %+v", span.Stages)
	}
	// The wire echo is the same breakdown, minus the not-yet-known flush.
	for i := 0; i < trace.WireStages; i++ {
		if wireStages[i] != span.Stages[i] {
			t.Fatalf("wire stage %d = %d, span records %d", i, wireStages[i], span.Stages[i])
		}
	}

	// The slow ring keeps it too (no threshold: slowest-N of the window).
	slow := tr.Slow(nil)
	found := false
	for _, s := range slow {
		if s.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %x not in slow window: %+v", traceID, slow)
	}
}

// TestHeadSampling: with -trace-sample 4 the server traces every 4th
// request per connection on its own initiative, generating ids; the
// client sees no suffix on those responses.
func TestHeadSampling(t *testing.T) {
	tr := trace.New(trace.Config{SampleN: 4, Recent: 64})
	addr := startTracedServer(t, tr)
	rc := dialRaw(t, addr)

	const reqs = 16
	for i := 0; i < reqs; i++ {
		resp := rc.roundTrip(&wire.Request{ID: uint64(i), Op: wire.OpRead, Key: uint64(i)})
		if resp.Status != wire.StatusOK {
			t.Fatalf("read %d: %v %s", i, resp.Status, resp.Err)
		}
		if resp.Traced {
			t.Fatal("head-sampled request echoed a trace suffix")
		}
	}
	waitRetired(t, tr, reqs/4)
	spans := tr.Recent(nil, 0)
	if len(spans) != reqs/4 {
		t.Fatalf("recent ring holds %d spans, want %d (1-in-4 of %d)", len(spans), reqs/4, reqs)
	}
	ids := make(map[uint64]bool)
	for _, s := range spans {
		if !s.Sampled {
			t.Fatalf("head-sampled span not marked Sampled: %+v", s)
		}
		if s.TraceID == 0 || ids[s.TraceID] {
			t.Fatalf("generated trace ids not unique/nonzero: %+v", spans)
		}
		ids[s.TraceID] = true
	}
}

// TestTracerOffNoSpans: with a tracer attached but sampling off and no
// wire flags, nothing is traced — the configuration E13 and E15 price.
func TestTracerOffNoSpans(t *testing.T) {
	tr := trace.New(trace.Config{})
	addr := startTracedServer(t, tr)
	rc := dialRaw(t, addr)
	for i := 0; i < 8; i++ {
		rc.roundTrip(&wire.Request{ID: uint64(i), Op: wire.OpRead, Key: uint64(i)})
	}
	if st := tr.Stats(); st.Retired != 0 || st.Dropped != 0 {
		t.Fatalf("tracer stats %+v with sampling off and no flags", st)
	}
}
