package server

import (
	"context"
	"net"
	"testing"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/shard"
	"mwllsc/internal/wire"
)

// TestHotPathZeroAlloc is the server half of the zero-alloc guarantee
// E13 gates: once a connection's arena, handle and buffers are warm,
// executing a Read or Update costs no heap allocation.
func TestHotPathZeroAlloc(t *testing.T) {
	read, update, err := HotPathAllocs(200)
	if err != nil {
		t.Fatal(err)
	}
	if read != 0 {
		t.Errorf("read execute path: %v allocs/op, want 0", read)
	}
	if update != 0 {
		t.Errorf("update execute path: %v allocs/op, want 0", update)
	}
}

// TestPartialFrameNoStall is the regression test for the batch-drain
// stall: readLoop used to admit any frame whose 4-byte header had
// arrived, so a partially-buffered frame from a slow peer blocked
// ReadFrame mid-batch while fully-executed work sat unanswered. Now a
// frame joins a batch only when its full payload is buffered.
func TestPartialFrameNoStall(t *testing.T) {
	m, err := shard.NewMap(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	c, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One complete Read frame followed by only the header of a second
	// frame, written together so the server's reader buffers both at
	// once: the stalled server would wait for the second payload before
	// answering the first request.
	full := wire.AppendFrame(nil, wire.AppendRequest(nil, &wire.Request{ID: 1, Op: wire.OpRead, Key: 7}))
	partial := wire.AppendFrame(nil, wire.AppendRequest(nil, &wire.Request{ID: 2, Op: wire.OpRead, Key: 8}))
	split := len(partial) - 3 // header plus a truncated payload
	if _, err := c.Write(append(append([]byte{}, full...), partial[:split]...)); err != nil {
		t.Fatal(err)
	}

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := newFrameReader(c)
	resp, err := br.next()
	if err != nil {
		t.Fatalf("first response did not arrive while second frame was partial: %v", err)
	}
	if resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("first response = id %d status %v, want id 1 ok", resp.ID, resp.Status)
	}

	// Completing the second frame must complete the second request.
	if _, err := c.Write(partial[split:]); err != nil {
		t.Fatal(err)
	}
	resp, err = br.next()
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 || resp.Status != wire.StatusOK {
		t.Fatalf("second response = id %d status %v, want id 2 ok", resp.ID, resp.Status)
	}
}

// frameReader decodes response frames off a raw connection.
type frameReader struct {
	c    net.Conn
	buf  []byte
	resp wire.Response
}

func newFrameReader(c net.Conn) *frameReader { return &frameReader{c: c} }

func (r *frameReader) next() (*wire.Response, error) {
	var err error
	r.buf, err = wire.ReadFrame(r.c, r.buf)
	if err != nil {
		return nil, err
	}
	if err := wire.DecodeResponse(&r.resp, r.buf); err != nil {
		return nil, err
	}
	return &r.resp, nil
}

// TestStatsReflectBatching sanity-checks that pipelined traffic still
// lands in batches with the fully-buffered drain rule (the fix must not
// degrade batching to one request per acquisition under a fast writer).
func TestStatsReflectBatching(t *testing.T) {
	m, err := shard.NewMap(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	cl, err := client.Dial(addr.String(), client.WithConns(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	const workers, per = 16, 25
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			deltas := []uint64{1, 0}
			for i := 0; i < per; i++ {
				if _, err := cl.Add(ctx, uint64(g*per+i), deltas); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < workers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Updates != workers*per {
		t.Fatalf("updates = %d, want %d", st.Updates, workers*per)
	}
	if st.Batches >= st.Reqs {
		t.Logf("note: no batching observed (batches=%d reqs=%d)", st.Batches, st.Reqs)
	}
}
