// Package server exposes a shard.Map over TCP with the wire protocol
// (internal/wire): the serving layer that turns the in-process
// data structure into a system other processes can reach.
//
// Each accepted connection runs two goroutines. The reader decodes
// request frames and gathers them into batches: it blocks for the first
// request, then drains whatever else has already arrived (up to
// MaxBatch), so under pipelined load one registry Acquire/Release pays
// for many operations. Within a batch, single-key operations execute
// grouped by target shard — touching each shard's memory once while it
// is hot — which reorders responses relative to arrival; the request id
// in every response frame is what lets clients match them back up. The
// writer goroutine streams completed responses out and flushes only
// when its queue runs empty, coalescing many small frames into few
// syscalls.
//
// Consistency is exactly the in-process contract: per-key operations
// are linearizable per shard, UpdateMulti is a cross-shard atomic
// commit, Snapshot is per-shard atomic, SnapshotAtomic cross-shard
// linearizable. Batching never weakens this — a batch is just the same
// sequence of linearizable operations issued by one process slot, and
// operations of one connection that target the same key execute in
// arrival order (shard grouping is order-preserving per shard).
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/obs"
	"mwllsc/internal/persist"
	"mwllsc/internal/shard"
	"mwllsc/internal/trace"
	"mwllsc/internal/wire"
)

// Option configures New.
type Option func(*Server)

// WithMaxBatch caps how many pipelined requests one handle acquisition
// may execute (default 64). Larger batches amortize registry traffic
// further but hold a process slot longer.
func WithMaxBatch(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithLogf installs a logger for per-connection errors (default: drop
// them; a dying connection is the client's problem, not the server's).
func WithLogf(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithTracer attaches a per-request tracing layer (internal/trace).
// Requests become traced when the client flags them on the wire or the
// tracer head-samples them (Config.SampleN); everything else pays one
// branch per request plus one clock read per batch. nil (the default)
// disables tracing entirely.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithPersist attaches a durability store (internal/persist): every
// committed Update/UpdateMulti is appended to the store's per-shard log
// after its batch executes — outside the registry slot, so disk I/O
// never pins a process id — and, under persist.SyncAlways, the batch's
// responses are held until a group-commit fsync covers its records. The
// store must have been opened over the same map this server serves.
func WithPersist(st *persist.Store) Option {
	return func(s *Server) { s.persist = st }
}

// WithMaxConns caps concurrently open connections (default 0 =
// unlimited). A connection accepted past the cap is closed immediately
// without serving a byte — shedding at the door is the one overload
// defense that costs the server nothing per rejected client — and
// counted as ShedConns in the stats.
func WithMaxConns(n int) Option {
	return func(s *Server) { s.maxConns = n }
}

// WithIdleTimeout closes a connection whose next request does not
// arrive within d (default 0 = never). The deadline is re-armed before
// each batch-head read, so it also evicts peers that stall mid-frame;
// an active pipelining client never notices it. Closures are counted
// as IdleCloses.
func WithIdleTimeout(d time.Duration) Option {
	return func(s *Server) { s.idleTimeout = d }
}

// WithWriteTimeout evicts a connection whose peer stops draining its
// responses: each coalesced write must complete within d (default 0 =
// never). Without it a non-reading client eventually fills its TCP
// window and parks the writer goroutine forever, pinning the
// connection's buffers; with it the write fails, the connection is
// closed, and the eviction is counted as Evictions.
func WithWriteTimeout(d time.Duration) Option {
	return func(s *Server) { s.writeTimeout = d }
}

// WithMaxInflight bounds how many batches may be executing (registry
// slot through durability) at once (default 0 = unbounded). A batch
// that finds all n admission tokens taken is rejected whole with
// StatusBusy — before acquiring a slot, touching the map, or logging
// anything — which clients treat as an explicit not-executed promise
// and retry with backoff. This converts overload from queueing collapse
// (every request slower) into cheap early rejection (admitted requests
// at full speed, the rest bounced in microseconds); the E16 benchmark
// measures exactly this difference. Rejections count as BusyRejects.
func WithMaxInflight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		}
	}
}

// WithDegradeOnDiskError turns a sick durability store into read-only
// degraded mode: once the store has refused an append (torn write,
// fsync failure — persist.Store.Sick), updates are rejected with
// StatusUnavailable before touching the map, while reads, snapshots,
// pings and stats keep serving from memory. Without it (the default)
// the server keeps accepting updates that are applied in memory but
// never durable — visibly, via PersistErrs, but a restart silently
// rewinds them. Rejections count as DegradedRejects.
func WithDegradeOnDiskError(on bool) Option {
	return func(s *Server) { s.degrade = on }
}

// Server serves a shard.Map over TCP.
type Server struct {
	m        *shard.Map
	maxBatch int
	logf     func(format string, args ...any)
	persist  *persist.Store
	metrics  *Metrics
	tracer   *trace.Tracer

	// Overload controls; zero values mean "off" (see the With* options).
	maxConns     int
	idleTimeout  time.Duration
	writeTimeout time.Duration
	sem          chan struct{} // admission tokens; nil = unbounded
	degrade      bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// ctrs are the server counters (see the c* indices in metrics.go),
	// striped per registry slot: per-request bumps from the batch
	// executor write only the cache lines of the slot it holds, so two
	// executors at high GOMAXPROCS never contend on stats. Events with
	// no slot in hand (accepts, decode rejects) use stripe 0 — they are
	// per-connection or error-path rare, not per-request.
	ctrs *obs.Counters
}

// New creates a server over m. The map is shared: in-process callers may
// keep using it concurrently with remote traffic.
func New(m *shard.Map, opts ...Option) *Server {
	s := &Server{
		m:        m,
		maxBatch: 64,
		logf:     func(string, ...any) {},
		conns:    make(map[net.Conn]struct{}),
		ctrs:     obs.NewCounters(m.N(), numCounters),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Map returns the served map.
func (s *Server) Map() *shard.Map { return s.m }

// Tracer returns the attached tracer, nil when none.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("server: closed")

// Listen binds addr (e.g. "127.0.0.1:7787"; port 0 picks a free port)
// and remembers the listener so Addr works before Serve is called.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		l.Close()
		return nil, ErrClosed
	}
	if s.listener != nil {
		l.Close()
		return nil, errors.New("server: already listening")
	}
	s.listener = l
	return l.Addr(), nil
}

// Addr returns the bound address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Serve accepts connections on the listener bound by Listen until Close.
// It always returns a non-nil error; after a clean Close that error is
// ErrClosed.
func (s *Server) Serve() error {
	s.mu.Lock()
	l := s.listener
	closed := s.closed
	s.mu.Unlock()
	if l == nil {
		return errors.New("server: Serve before Listen")
	}
	if closed {
		return ErrClosed
	}
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrClosed
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			// Shed at the door: closing before serving a byte is the only
			// rejection whose cost does not grow with load. The client sees
			// a reset/EOF and treats it like any broken connection.
			s.mu.Unlock()
			c.Close()
			s.ctrs.Inc(0, cConnsShed)
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.ctrs.Inc(0, cConnsTotal)
		s.ctrs.Inc(0, cConnsOpen)
		go s.serveConn(c)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops accepting, closes every open connection, and waits for
// all connection goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// Stats returns a point-in-time snapshot of the server counters plus
// the served map's geometry, folding the striped banks into the wire
// totals. The latency quantile words are filled from the attached
// Metrics histograms (zero with observability off) and FsyncP99 from
// the durability store (zero without one).
func (s *Server) Stats() wire.ServerStats {
	var c [numCounters]uint64
	s.ctrs.Sums(c[:])
	st := wire.ServerStats{
		Shards:      uint64(s.m.Shards()),
		Slots:       uint64(s.m.N()),
		Words:       uint64(s.m.W()),
		ConnsTotal:  c[cConnsTotal],
		ConnsOpen:   c[cConnsOpen],
		Reqs:        c[cReqs],
		Updates:     c[cUpdates],
		Reads:       c[cReads],
		Snapshots:   c[cSnapshots],
		Multis:      c[cMultis],
		Batches:     c[cBatches],
		BadReqs:     c[cBadReqs],
		PersistErrs: c[cPersistErrs],

		ShedConns:       c[cConnsShed],
		BusyRejects:     c[cBusy],
		Evictions:       c[cEvictions],
		IdleCloses:      c[cIdleClosed],
		DegradedRejects: c[cDegraded],
	}
	if s.metrics != nil {
		snap := s.metrics.Service.Snapshot()
		st.LatP50 = uint64(snap.Quantile(0.50))
		st.LatP99 = uint64(snap.Quantile(0.99))
		st.LatP999 = uint64(snap.Quantile(0.999))
	}
	if s.persist != nil {
		snap := s.persist.SyncHist().Snapshot()
		st.FsyncP99 = uint64(snap.Quantile(0.99))
	}
	return st
}

// respDataSoftCap bounds (in words) the Data backing array a recycled
// response may keep: a rare snapshot-sized response would otherwise pin
// K×W words in the arena for the connection's lifetime.
const respDataSoftCap = 4096

// connState is one connection's reusable serving state — the reason the
// hot path is allocation-free in steady state. It holds the decoded
// batch (whose Request slots recycle their Keys/Args backing arrays),
// the response arena cycled between the executor and the writer
// goroutine, the executor's collection slices, the per-batch map handle
// (re-armed with Reacquire instead of reallocated), and the merge
// closures pre-bound at connection setup, which would otherwise be
// allocated per update to capture that request's arguments.
type connState struct {
	s       *Server
	h       *shard.MapHandle // lazily acquired, then Reacquire per batch
	batch   []batchReq
	resps   []*wire.Response
	recs    []persist.Record
	recResp []int               // recs[i] belongs to resps[recResp[i]]
	free    chan *wire.Response // arena: writer returns, executor takes
	rows    [][]uint64          // snapshot row scratch over resp.Data

	// Update/UpdateMulti state read by the pre-bound merge closures.
	args       []uint64
	dst        []uint64
	mode       wire.Mode
	w          int
	rec        *persist.Record // nil when the op is not persisted
	mergeOne   func(v []uint64)
	mergeMulti func(vals [][]uint64)

	// degraded is the per-batch verdict of the disk-sick check: set once
	// per batch in executeBatch, read by execute for every update in it.
	degraded bool

	// Tracing state. tRead is the batch head's arrival stamp — the one
	// clock read the untraced path pays per batch when a tracer is
	// attached. sampleCtr counts toward the next head sample; rng is the
	// per-connection trace-id generator (splitmix64), contention-free
	// because it is never shared.
	tRead     time.Time
	sampleCtr uint64
	rng       uint64
}

// connSeed differentiates the per-connection trace-id rng streams.
var connSeed atomic.Uint64

// nextTraceID returns the next generated trace id (for head-sampled
// spans; wire-flagged spans carry the client's id).
func (cs *connState) nextTraceID() uint64 {
	cs.rng += 0x9e3779b97f4a7c15
	z := cs.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *Server) newConnState() *connState {
	cs := &connState{
		s:     s,
		batch: make([]batchReq, 0, s.maxBatch),
		resps: make([]*wire.Response, 0, s.maxBatch),
		// Room for everything in flight at once: the out channel's worth
		// plus one executing batch, so recycled responses are almost
		// never dropped.
		free: make(chan *wire.Response, 5*s.maxBatch),
		rng:  uint64(time.Now().UnixNano()) ^ connSeed.Add(1)<<32,
	}
	cs.mergeOne = func(v []uint64) {
		wire.Merge(v, cs.args, cs.mode)
		copy(cs.dst, v)
		if cs.rec != nil {
			cs.rec.Seq = s.persist.NextSeq()
		}
	}
	cs.mergeMulti = func(vals [][]uint64) {
		for i, v := range vals {
			wire.Merge(v, cs.args[i*cs.w:(i+1)*cs.w], cs.mode)
			copy(cs.dst[i*cs.w:(i+1)*cs.w], v)
		}
		if cs.rec != nil {
			cs.rec.Seq = s.persist.NextSeq()
		}
	}
	return cs
}

// getResp takes a recycled response from the arena (or allocates when
// the arena is dry) and resets it for reuse.
func (cs *connState) getResp() *wire.Response {
	select {
	case r := <-cs.free:
		r.Status = wire.StatusOK
		r.Attempts, r.Rows, r.Words = 0, 0, 0
		r.Data, r.Err = r.Data[:0], ""
		r.Traced, r.TraceID, r.Stages = false, 0, r.Stages[:0]
		return r
	default:
		return &wire.Response{}
	}
}

// putResp returns an encoded response to the arena. Oversized data
// backing arrays (snapshots) are dropped first, mirroring
// wire.ReadFrame's shrink of oversized frame buffers.
func (cs *connState) putResp(r *wire.Response) {
	if cap(r.Data) > respDataSoftCap {
		r.Data = nil
	}
	select {
	case cs.free <- r:
	default:
	}
}

// sizedData returns resp.Data resized to n words, reusing its capacity.
func sizedData(resp *wire.Response, n int) []uint64 {
	if cap(resp.Data) < n {
		resp.Data = make([]uint64, n)
	}
	resp.Data = resp.Data[:n]
	return resp.Data
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.ctrs.Add(0, cConnsOpen, ^uint64(0))
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	// The writer owns the outbound half: it encodes responses arriving on
	// out and flushes whenever the queue runs dry. Buffered so the reader
	// can race ahead within a batch.
	out := make(chan outResp, 4*s.maxBatch)
	cs := s.newConnState()
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeLoop(c, out, cs)
	}()
	s.readLoop(c, out, cs)
	close(out)
	writerWG.Wait()
}

// writeBufCap pre-sizes the writer's coalescing buffer (and is the cap
// an oversized one shrinks back to): large enough for a maxBatch of
// small-op responses, far below the 256 KiB coalescing bound.
const writeBufCap = 64 << 10

// outResp is one completed response on its way to the writer, paired
// with its trace span when the request was traced (nil otherwise). The
// span travels with the response because its final stage — writer
// coalesce + flush — only closes after the write that carries it.
type outResp struct {
	resp *wire.Response
	span *trace.Span
}

// writeLoop encodes responses and writes them with frame coalescing: it
// keeps appending frames to one buffer while more responses are queued
// and hands the kernel a single write when the queue is empty. Encoded
// responses return to the connection's arena; trace spans finish (flush
// stage + total) after the write that put them on the wire and retire
// into the tracer's rings.
func (s *Server) writeLoop(c net.Conn, out <-chan outResp, cs *connState) {
	buf := make([]byte, 0, writeBufCap)
	payload := make([]byte, 0, 4<<10)
	var spans []*trace.Span // spans riding in buf, finished at its flush
	// write pushes one coalesced buffer, under the write-stall deadline
	// when one is set. On failure it closes the connection itself: an
	// evicted-but-alive peer would otherwise keep the read loop (and the
	// connection's buffers) parked until it went away on its own.
	write := func(b []byte) error {
		if s.writeTimeout > 0 {
			c.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		_, err := c.Write(b)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.ctrs.Inc(0, cEvictions)
				s.logf("server: evicting stalled reader %v: %v", c.RemoteAddr(), err)
			} else {
				s.logf("server: write to %v: %v", c.RemoteAddr(), err)
			}
			c.Close()
		}
		return err
	}
	finish := func(failed bool) {
		if len(spans) == 0 {
			return
		}
		now := time.Now()
		for _, sp := range spans {
			if failed {
				sp.Err = true
			}
			sp.Finish(now)
			s.tracer.Retire(sp)
		}
		spans = spans[:0]
	}
	for or := range out {
		payload = wire.AppendResponse(payload[:0], or.resp)
		cs.putResp(or.resp)
		if or.span != nil {
			spans = append(spans, or.span)
		}
		buf = wire.AppendFrame(buf[:0], payload)
		// Coalesce whatever else is already queued.
		for len(buf) < 256<<10 {
			select {
			case next, ok := <-out:
				if !ok {
					if write(buf) != nil {
						finish(true)
						return
					}
					finish(false)
					return
				}
				payload = wire.AppendResponse(payload[:0], next.resp)
				cs.putResp(next.resp)
				if next.span != nil {
					spans = append(spans, next.span)
				}
				buf = wire.AppendFrame(buf, payload)
			default:
				goto flush
			}
		}
	flush:
		if write(buf) != nil {
			finish(true)
			// Drain so the reader never blocks on a dead connection;
			// in-flight spans still retire (marked Err) so they are not
			// lost from the free list.
			for or := range out {
				if or.span != nil {
					or.span.Err = true
					or.span.Finish(time.Now())
					s.tracer.Retire(or.span)
				}
			}
			return
		}
		finish(false)
		// A snapshot-sized response grows these past any steady-state
		// need; release the oversized arrays instead of pinning them.
		if cap(buf) > 4*writeBufCap {
			buf = make([]byte, 0, writeBufCap)
		}
		if cap(payload) > 4*writeBufCap {
			payload = make([]byte, 0, 4<<10)
		}
	}
}

// batchReq is one decoded request waiting in a batch, with its target
// shard precomputed for grouping and its trace span when the request is
// traced (nil otherwise).
type batchReq struct {
	req    wire.Request
	shardI int // target shard for Read/Update; -1 otherwise
	span   *trace.Span
}

// readLoop decodes frames into batches and executes them. It returns on
// any read or protocol error (the connection is then closed).
func (s *Server) readLoop(c net.Conn, out chan<- outResp, cs *connState) {
	br := bufio.NewReaderSize(c, 64<<10)
	var frame []byte
	for {
		// Block for the head of the next batch, for at most the idle
		// timeout when one is set. Re-arming before each head read means
		// the deadline also covers a peer that stalls mid-frame; the
		// drain reads below never block (frameBuffered), so an active
		// client pays one SetReadDeadline syscall per batch, not per
		// request.
		if s.idleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		var err error
		frame, err = wire.ReadFrame(br, frame)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.ctrs.Inc(0, cIdleClosed)
				s.logf("server: closing idle connection %v", c.RemoteAddr())
			}
			return
		}
		if s.tracer != nil {
			// The batch head's arrival anchors every span in the batch;
			// stamping it here (after the blocking read, before decode) is
			// tracing's only per-batch cost on the untraced path.
			cs.tRead = time.Now()
		}
		cs.batch = cs.batch[:0]
		frame = s.appendDecoded(cs, frame, out)
		// Drain requests that already arrived, without blocking: only
		// frames whose payload is fully buffered are taken — a partially
		// arrived frame would block ReadFrame mid-batch on a slow peer
		// while the already-gathered batch sat waiting.
		for len(cs.batch) < s.maxBatch && frameBuffered(br) {
			frame, err = wire.ReadFrame(br, frame)
			if err != nil {
				s.executeBatch(cs, out)
				return
			}
			frame = s.appendDecoded(cs, frame, out)
		}
		s.executeBatch(cs, out)
	}
}

// frameBuffered reports whether br holds one complete frame — the
// 4-byte length prefix and its full payload — so reading it cannot
// block. An oversized length also reports true: ReadFrame rejects it
// from the buffered header alone, without blocking.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > wire.MaxFrame {
		return true
	}
	return br.Buffered() >= 4+int(n)
}

// appendDecoded decodes frame into a new batch slot; malformed requests
// are answered immediately with StatusBadRequest and not batched. For
// wire-flagged or head-sampled requests it also draws the trace span the
// batch executor will stamp.
func (s *Server) appendDecoded(cs *connState, frame []byte, out chan<- outResp) []byte {
	// Reslice over a recycled slot when possible: DecodeRequest resets
	// every field and reuses the slot's Keys/Args backing arrays, which
	// is where the per-request allocations would otherwise be.
	batch := cs.batch
	if len(batch) < cap(batch) {
		batch = batch[:len(batch)+1]
	} else {
		batch = append(batch, batchReq{})
	}
	br := &batch[len(batch)-1]
	br.span = nil // recycled slot may hold a retired span's pointer
	if err := wire.DecodeRequest(&br.req, frame); err != nil {
		s.ctrs.Inc(0, cBadReqs)
		// A frame too mangled to carry an id gets id 0; the client will
		// drop it but the stream stays framed.
		resp := cs.getResp()
		resp.ID, resp.Status, resp.Err = br.req.ID, wire.StatusBadRequest, err.Error()
		out <- outResp{resp: resp}
		cs.batch = batch[:len(batch)-1]
		return frame
	}
	if tr := s.tracer; tr != nil {
		if br.req.Traced {
			br.span = tr.Get() // nil when the free list is dry: serve untraced
		} else if n := tr.SampleN(); n > 0 {
			if cs.sampleCtr++; cs.sampleCtr >= n {
				cs.sampleCtr = 0
				br.span = tr.Get()
			}
		}
	}
	switch br.req.Op {
	case wire.OpRead, wire.OpUpdate:
		br.shardI = s.m.ShardIndex(br.req.Key)
	default:
		br.shardI = -1
	}
	cs.batch = batch
	return frame
}

// executeBatch runs a batch through one acquired handle: single-key
// operations grouped by shard, everything else in arrival order.
//
// Grouping must not reorder operations whose effects could be observed
// in issue order by the issuing client: two single-key ops on the same
// shard keep their order under the stable sort, and every op that can
// touch more than one shard (UpdateMulti, the snapshots) acts as a
// barrier — only the runs of single-key ops *between* barriers are
// shard-sorted. Without the barrier, an Update(k) pipelined before an
// UpdateMulti([k,...]) would execute after it.
//
// Responses are collected locally and emitted only after the handle is
// released: the out channel can fill when the peer stops reading its
// responses, and blocking on it while holding a registry slot would let
// one non-reading connection pin a process id that every other
// connection (and in-process callers) may be waiting for.
func (s *Server) executeBatch(cs *connState, out chan<- outResp) {
	batch := cs.batch
	if len(batch) == 0 {
		return
	}
	// Admission: try to take an inflight token before committing any
	// resources to the batch. No token means the server is already
	// executing its configured maximum — reject the whole batch with
	// StatusBusy now, in microseconds, rather than queue it behind work
	// that is itself queued. The non-blocking send is the entire cost on
	// the admitted path.
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejectBusy(cs, out)
			return
		}
	}
	// Degraded mode is decided once per batch: the store's sick flag is
	// a single atomic load, and every update in the batch sees the same
	// verdict.
	cs.degraded = s.degrade && s.persist != nil && s.persist.Sick()
	// One branch decides whether this batch pays for stage stamping:
	// every timestamp below is taken once per batch and attributed to
	// every traced span in it (the same batch-window attribution the
	// Metrics histograms use), which also makes each span's stage sum
	// equal its total by construction.
	traced := false
	if s.tracer != nil {
		for i := range batch {
			if batch[i].span != nil {
				traced = true
				break
			}
		}
	}
	var t0 time.Time
	if s.metrics != nil || traced {
		t0 = time.Now() // end of decode: frames read + batch gathered
	}
	for lo := 0; lo < len(batch); {
		if batch[lo].shardI < 0 {
			lo++
			continue
		}
		hi := lo + 1
		for hi < len(batch) && batch[hi].shardI >= 0 {
			hi++
		}
		sortRunByShard(batch[lo:hi])
		lo = hi
	}
	cs.resps = cs.resps[:0]
	cs.recs = cs.recs[:0]
	cs.recResp = cs.recResp[:0]
	var tQueue time.Time
	if traced {
		tQueue = time.Now() // sort + queue wait over, acquire begins
	}
	if cs.h == nil {
		cs.h = s.m.Acquire()
	} else {
		cs.h.Reacquire()
	}
	h := cs.h
	var tAcquire time.Time
	if traced {
		tAcquire = time.Now()
	}
	// Stats stripe for everything this batch does: the registry slot we
	// just acquired. Another executor necessarily holds a different slot
	// and therefore writes different cache lines.
	p := h.Process()
	s.ctrs.Inc(p, cBatches)
	s.ctrs.Add(p, cReqs, uint64(len(batch)))
	for i := range batch {
		var rec *persist.Record
		if s.persist != nil {
			cs.recs = append(cs.recs, persist.Record{})
			rec = &cs.recs[len(cs.recs)-1]
		}
		resp := cs.getResp()
		s.execute(cs, h, p, &batch[i].req, rec, resp)
		if rec != nil {
			if rec.Op == 0 { // not a committed update; nothing to log
				cs.recs = cs.recs[:len(cs.recs)-1]
			} else {
				cs.recResp = append(cs.recResp, len(cs.resps))
			}
		}
		cs.resps = append(cs.resps, resp)
	}
	h.Release()
	var tExecute time.Time
	if traced {
		tExecute = time.Now()
	}
	tPersist, tFsync := tExecute, tExecute // stay zero-width without persistence
	// Durability happens here: after execution, outside the registry
	// slot, before the responses flush. The record slices alias the
	// batch's decode buffers, which stay untouched until the next batch.
	if len(cs.recs) > 0 {
		err := s.persist.Append(cs.recs)
		if traced {
			tPersist = time.Now()
			tFsync = tPersist
		}
		if err == nil && s.persist.Policy() == persist.SyncAlways {
			err = s.persist.Sync()
			if traced {
				tFsync = time.Now()
			}
		}
		if err != nil {
			s.logf("server: persistence: %v", err)
			s.ctrs.Inc(p, cPersistErrs)
			if s.persist.Policy() == persist.SyncAlways {
				// The in-memory commit stands, but the durability the
				// policy promises does not — fail the acknowledgment
				// rather than lie about it. The conversions count as
				// BadReqs so the drift is visible in the stats.
				s.ctrs.Add(p, cBadReqs, uint64(len(cs.recResp)))
				for _, ri := range cs.recResp {
					r := cs.resps[ri]
					r.Status = wire.StatusBadRequest
					r.Err = fmt.Sprintf("persistence failure: %v", err)
					r.Attempts, r.Rows, r.Words = 0, 0, 0
					r.Data = r.Data[:0]
				}
			}
		}
	}
	// The admission token covers slot acquisition through durability —
	// the stages whose concurrency overload actually multiplies; the
	// stamping and emit below are per-connection bookkeeping.
	if s.sem != nil {
		<-s.sem
	}
	if s.metrics != nil {
		// One timestamp pair per batch: the whole execute+persist window,
		// attributed to every request in it. Under SyncAlways this is the
		// client-visible service time minus queueing and wire transfer.
		d := uint64(time.Since(t0))
		s.metrics.Service.ObserveN(p, d, uint64(len(batch)))
		s.metrics.Batch.Observe(p, uint64(len(batch)))
	}
	if traced {
		// Stamp every traced span with the batch's stage windows and echo
		// the breakdown on wire-flagged requests' responses. The flush
		// stage and the total close in the writer, after the write that
		// carries the response out.
		for i := range batch {
			sp := batch[i].span
			if sp == nil {
				continue
			}
			req, resp := &batch[i].req, cs.resps[i]
			sp.Begin(cs.tRead)
			sp.Stamp(trace.StageDecode, t0)
			sp.Stamp(trace.StageQueue, tQueue)
			sp.Stamp(trace.StageAcquire, tAcquire)
			sp.Stamp(trace.StageExecute, tExecute)
			sp.Stamp(trace.StagePersist, tPersist)
			sp.Stamp(trace.StageFsync, tFsync)
			sp.Op = uint8(req.Op)
			sp.Key = req.Key
			sp.Attempts = resp.Attempts
			sp.Batch = uint32(len(batch))
			sp.Err = resp.Status != wire.StatusOK
			if req.Traced {
				sp.TraceID = req.TraceID
				if resp.Status == wire.StatusOK {
					resp.Traced, resp.TraceID = true, sp.TraceID
					resp.Stages = append(resp.Stages[:0], sp.Stages[:trace.WireStages]...)
				}
			} else {
				sp.Sampled = true
				sp.TraceID = cs.nextTraceID()
			}
		}
	}
	for i, resp := range cs.resps {
		out <- outResp{resp: resp, span: batch[i].span}
	}
}

// busyMsg and degradedMsg are the constant rejection texts: both paths
// run under load (busy: every over-capacity batch; degraded: every
// update while sick), so they must not format anything per request.
const (
	busyMsg     = "server busy: inflight batch limit reached, retry with backoff"
	degradedMsg = "server degraded: durability log failed, updates disabled (reads still serve)"
)

// rejectBusy answers every request of the gathered batch with
// StatusBusy — the server's explicit promise that none of them reached
// the map, which is what lets clients safely retry even updates. It
// runs with no registry slot in hand, so counting uses stripe 0 (like
// the other no-slot paths); traced requests still produce spans so an
// overloaded server remains observable through /tracez.
func (s *Server) rejectBusy(cs *connState, out chan<- outResp) {
	batch := cs.batch
	s.ctrs.Add(0, cBusy, uint64(len(batch)))
	s.ctrs.Add(0, cBadReqs, uint64(len(batch)))
	for i := range batch {
		req := &batch[i].req
		resp := cs.getResp()
		resp.ID = req.ID
		resp.Status = wire.StatusBusy
		resp.Err = busyMsg
		if sp := batch[i].span; sp != nil {
			sp.Begin(cs.tRead) // resets the span; set fields after
			sp.Op = uint8(req.Op)
			sp.Key = req.Key
			sp.Batch = uint32(len(batch))
			sp.Err = true
			if req.Traced {
				sp.TraceID = req.TraceID
			} else {
				sp.Sampled = true
				sp.TraceID = cs.nextTraceID()
			}
		}
		out <- outResp{resp: resp, span: batch[i].span}
	}
}

// sortRunByShard stably sorts a run of single-key requests by target
// shard: an insertion sort, because runs are small (≤ maxBatch), arrival
// order within a shard must be preserved, and sort.SliceStable's closure
// would be the hot path's last per-batch allocation.
func sortRunByShard(run []batchReq) {
	for i := 1; i < len(run); i++ {
		for j := i; j > 0 && run[j].shardI < run[j-1].shardI; j-- {
			run[j], run[j-1] = run[j-1], run[j]
		}
	}
}

// Checkpoint rewrites the durability store's snapshot file and
// truncates its logs (see persist.Store.Checkpoint). The watermark
// capture runs as an identity transaction over all shards: cross-shard
// atomic, so the snapshot is one consistent cut, and conflicting with
// every shard, so the sequence number drawn inside the callback cleanly
// separates the updates the snapshot contains from those it does not.
// Serving continues concurrently; only the capture's brief all-shard
// lock is shared with foreground traffic.
func (s *Server) Checkpoint() error {
	if s.persist == nil {
		return errors.New("server: no durability store attached")
	}
	return s.persist.Checkpoint(func() ([][]uint64, uint64, error) {
		rows := s.m.NewSnapshotBuffer()
		keys := make([]uint64, s.m.Shards())
		for i := range keys {
			keys[i] = s.m.KeyForShard(i)
		}
		var watermark uint64
		h := s.m.Acquire()
		defer h.Release()
		h.UpdateMulti(keys, func(vals [][]uint64) {
			watermark = s.persist.NextSeq()
			for i, v := range vals {
				copy(rows[i], v)
			}
		})
		return rows, watermark, nil
	})
}

// execute runs one request, filling resp (an arena response reset by
// getResp). When persistence is on, rec is a scratch Record the durable
// ops fill in — Seq is drawn inside the merge callback, whose final
// (committing) run leaves the number that orders the record against
// every other committed update on its shards; rec.Op stays 0 for
// non-durable or failed requests.
func (s *Server) execute(cs *connState, h *shard.MapHandle, p int, req *wire.Request, rec *persist.Record, resp *wire.Response) {
	resp.ID = req.ID
	w := s.m.W()
	switch req.Op {
	case wire.OpPing:
		// Empty OK response.

	case wire.OpRead:
		s.ctrs.Inc(p, cReads)
		resp.Rows, resp.Words = 1, uint32(w)
		h.Read(req.Key, sizedData(resp, w))

	case wire.OpUpdate:
		s.ctrs.Inc(p, cUpdates)
		if cs.degraded {
			s.failDegraded(p, resp)
			return
		}
		if len(req.Args) != w {
			s.fail(p, resp, "update args have %d words, map width is %d", len(req.Args), w)
			return
		}
		if req.Mode > wire.ModeSet {
			s.fail(p, resp, "unknown update mode %d", req.Mode)
			return
		}
		resp.Rows, resp.Words = 1, uint32(w)
		cs.args, cs.mode, cs.dst, cs.rec = req.Args, req.Mode, sizedData(resp, w), rec
		resp.Attempts = uint32(h.Update(req.Key, cs.mergeOne))
		if s.metrics != nil {
			s.metrics.Attempts.Observe(p, uint64(resp.Attempts))
		}
		if rec != nil {
			rec.Op, rec.Mode, rec.Key, rec.Args = wire.OpUpdate, req.Mode, req.Key, req.Args
			rec.Shard = s.m.ShardIndex(req.Key)
		}

	case wire.OpSnapshot, wire.OpSnapshotAtomic:
		s.ctrs.Inc(p, cSnapshots)
		k := s.m.Shards()
		// A K×W beyond one frame would be encoded and then kill the
		// client connection at its MaxFrame check; refuse it with a
		// clear error instead (llscd also refuses the geometry at
		// startup).
		if !SnapshotFits(k, w) {
			s.fail(p, resp, "snapshot of %d×%d words exceeds the %d-byte frame limit", k, w, wire.MaxFrame)
			return
		}
		resp.Rows, resp.Words = uint32(k), uint32(w)
		data := sizedData(resp, k*w)
		if cap(cs.rows) < k {
			cs.rows = make([][]uint64, k)
		}
		rows := cs.rows[:k]
		for i := range rows {
			rows[i] = data[i*w : (i+1)*w]
		}
		if req.Op == wire.OpSnapshotAtomic {
			resp.Attempts = uint32(h.SnapshotAtomic(rows))
		} else {
			h.Snapshot(rows)
		}

	case wire.OpUpdateMulti:
		s.ctrs.Inc(p, cMultis)
		if cs.degraded {
			s.failDegraded(p, resp)
			return
		}
		nk := len(req.Keys)
		if len(req.Args) != nk*w {
			s.fail(p, resp, "updatemulti args have %d words, want %d keys × width %d", len(req.Args), nk, w)
			return
		}
		if req.Mode > wire.ModeSet {
			s.fail(p, resp, "unknown update mode %d", req.Mode)
			return
		}
		resp.Rows, resp.Words = uint32(nk), uint32(w)
		cs.args, cs.mode, cs.dst, cs.rec, cs.w = req.Args, req.Mode, sizedData(resp, nk*w), rec, w
		resp.Attempts = uint32(h.UpdateMulti(req.Keys, cs.mergeMulti))
		if s.metrics != nil {
			s.metrics.Attempts.Observe(p, uint64(resp.Attempts))
		}
		if rec != nil {
			rec.Op, rec.Mode, rec.Keys, rec.Args = wire.OpUpdateMulti, req.Mode, req.Keys, req.Args
			rec.Shard = s.m.ShardIndex(req.Keys[0])
			for _, k := range req.Keys[1:] {
				if i := s.m.ShardIndex(k); i < rec.Shard {
					rec.Shard = i
				}
			}
		}

	case wire.OpStats:
		st := s.Stats()
		resp.Data = st.Append(resp.Data[:0])
		resp.Rows, resp.Words = 1, uint32(len(resp.Data))

	default:
		s.fail(p, resp, "unknown opcode %d", uint8(req.Op))
	}
}

// SnapshotFits reports whether a K×W snapshot response fits in one wire
// frame — the only response whose size is set by server geometry rather
// than by a (already frame-bounded) request.
func SnapshotFits(k, w int) bool {
	const respHeader = 9 + 12 // id+status, attempts+rows+words
	return k*w <= (wire.MaxFrame-respHeader)/8
}

// fail marks resp as a StatusBadRequest response, counting it on
// stripe p.
func (s *Server) fail(p int, resp *wire.Response, format string, args ...any) {
	s.ctrs.Inc(p, cBadReqs)
	resp.Status = wire.StatusBadRequest
	resp.Err = fmt.Sprintf(format, args...)
	resp.Attempts, resp.Rows, resp.Words = 0, 0, 0
	resp.Data = resp.Data[:0]
}

// failDegraded marks resp as a StatusUnavailable rejection: the
// read-only degraded mode's answer to an update. The message is
// constant — this path runs for every update while the store is sick.
func (s *Server) failDegraded(p int, resp *wire.Response) {
	s.ctrs.Inc(p, cDegraded)
	s.ctrs.Inc(p, cBadReqs)
	resp.Status = wire.StatusUnavailable
	resp.Err = degradedMsg
	resp.Attempts, resp.Rows, resp.Words = 0, 0, 0
	resp.Data = resp.Data[:0]
}
