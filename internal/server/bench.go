package server

import (
	"runtime"

	"mwllsc/internal/shard"
	"mwllsc/internal/trace"
	"mwllsc/internal/wire"
)

// HotPathAllocs reports the steady-state heap allocations per request of
// the server's batch-execute path, for Read and for Update — the number
// the E13 allocation gate (internal/bench, cmd/llscgate) tracks across
// PRs, and it must be zero: the response arena, the recycled decode
// buffers, the reacquirable map handle and the pre-bound merge closures
// exist precisely so that serving a request costs no allocation.
//
// It drives executeBatch directly with pre-decoded batches rather than
// through a TCP connection: internal/bench cannot reach the unexported
// execute machinery, and a socket would fold goroutine wakeups and bufio
// into a measurement whose entire point is an exact zero for the execute
// path alone (the wire encode/decode halves are measured separately by
// E13's wire rows).
func HotPathAllocs(runs int) (readAllocs, updateAllocs float64, err error) {
	const (
		k      = 4
		w      = 2
		batchN = 8
	)
	m, err := shard.NewMap(k, 2, w)
	if err != nil {
		return 0, 0, err
	}
	// Metrics on, tracer attached with sampling off, admission control
	// enabled: the zero-allocs gate must hold with the full
	// observability stack compiled in and the overload controls armed,
	// or those layers would quietly exempt themselves from the
	// discipline they exist to watch. (The token is a non-blocking
	// channel send per batch — the gate proves it stays free.)
	s := New(m, WithMetrics(NewMetrics(m.N())), WithTracer(trace.New(trace.Config{})),
		WithMaxInflight(4))
	cs := s.newConnState()
	out := make(chan outResp, 2*batchN)

	args := []uint64{1, 2}
	mkBatch := func(op wire.Op) {
		cs.batch = cs.batch[:0]
		for i := 0; i < batchN; i++ {
			key := uint64(i) * 977
			br := batchReq{shardI: m.ShardIndex(key)}
			br.req = wire.Request{ID: uint64(i), Op: op, Key: key}
			if op == wire.OpUpdate {
				br.req.Mode = wire.ModeAdd
				br.req.Args = args
			}
			cs.batch = append(cs.batch, br)
		}
	}
	// One execute round: run the batch, then recycle the responses the
	// writer goroutine would have returned to the arena.
	round := func() {
		s.executeBatch(cs, out)
		for i := 0; i < batchN; i++ {
			cs.putResp((<-out).resp)
		}
	}

	measure := func(op wire.Op) float64 {
		mkBatch(op)
		round() // warm the arena, handle, and data buffers
		return allocsPerRun(runs, round) / batchN
	}
	readAllocs = measure(wire.OpRead)
	updateAllocs = measure(wire.OpUpdate)
	return readAllocs, updateAllocs, nil
}

// allocsPerRun mirrors testing.AllocsPerRun for non-test binaries (the
// same helper internal/bench keeps for E7; duplicated here because bench
// imports this package): average heap allocations per call to f over
// runs calls, with the world pinned to one proc.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warmup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
