package server_test

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/server"
	"mwllsc/internal/shard"
	"mwllsc/internal/wire"
)

func newServer(t *testing.T, k, n, w int, opts ...server.Option) *server.Server {
	t.Helper()
	m, err := shard.NewMap(k, n, w)
	if err != nil {
		t.Fatal(err)
	}
	return server.New(m, opts...)
}

func TestListenServeClose(t *testing.T) {
	s := newServer(t, 2, 2, 1)
	if s.Addr() != nil {
		t.Fatal("Addr non-nil before Listen")
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr().String() != addr.String() {
		t.Fatalf("Addr() = %v, Listen returned %v", s.Addr(), addr)
	}
	if _, err := s.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("second Listen accepted")
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != server.ErrClosed {
			t.Fatalf("Serve returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Close is idempotent; Serve after Close refuses.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(); err != server.ErrClosed {
		t.Fatalf("Serve after Close = %v, want ErrClosed", err)
	}
}

func TestServeBeforeListen(t *testing.T) {
	s := newServer(t, 2, 2, 1)
	if err := s.Serve(); err == nil {
		t.Fatal("Serve before Listen succeeded")
	}
}

// TestIntegrationLoad is the serving-layer integration test: an
// in-process llscd hammered over loopback by many client goroutines
// mixing per-key adds, cross-shard transfers (UpdateMulti) and atomic
// snapshots, then checked for conservation, clean shutdown, and zero
// goroutine leakage. Run it under -race.
func TestIntegrationLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const (
		shards  = 8
		slots   = 6
		words   = 2
		workers = 12
		perW    = 150
	)
	m, err := shard.NewMap(shards, slots, words)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m, server.WithMaxBatch(32))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()

	c, err := client.Dial(addr.String(), client.WithConns(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Seed every shard's word 0 with 1000 units; workers move units
	// between shards (conserving the total) and bump the word-1 op
	// counter (summing to the op count).
	keys := make([]uint64, shards)
	for i := range keys {
		keys[i] = m.KeyForShard(i)
		if _, err := c.Set(ctx, keys[i], []uint64{1000, 0}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g)*2654435761 + 1
			next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 16 }
			for i := 0; i < perW; i++ {
				from, to := keys[next()%shards], keys[next()%shards]
				amt := next() % 5
				switch i % 3 {
				case 0: // cross-shard transfer: conserves word 0, counts 2 ops in word 1
					if from == to {
						continue
					}
					_, err := c.AddMulti(ctx, []uint64{from, to},
						[][]uint64{{-amt & (1<<64 - 1), 1}, {amt, 1}})
					if err != nil {
						t.Errorf("worker %d multi: %v", g, err)
						return
					}
				case 1: // per-key op counter bump
					if _, err := c.Add(ctx, from, []uint64{0, 1}); err != nil {
						t.Errorf("worker %d add: %v", g, err)
						return
					}
				default: // reads and snapshots interleave with the writes
					if i%2 == 0 {
						if _, err := c.Read(ctx, from); err != nil {
							t.Errorf("worker %d read: %v", g, err)
							return
						}
					} else if _, err := c.Snapshot(ctx); err != nil {
						t.Errorf("worker %d snapshot: %v", g, err)
						return
					}
				}
				// Periodically audit conservation mid-flight with a
				// cross-shard linearizable snapshot: the money total must
				// hold at EVERY instant, not only at the end.
				if i%50 == 25 {
					rows, err := c.SnapshotAtomic(ctx)
					if err != nil {
						t.Errorf("worker %d audit: %v", g, err)
						return
					}
					var total uint64
					for _, r := range rows {
						total += r[0]
					}
					if total != shards*1000 {
						t.Errorf("worker %d audit: total %d, want %d", g, total, shards*1000)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	rows, err := c.SnapshotAtomic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var money uint64
	for _, r := range rows {
		money += r[0]
	}
	if money != shards*1000 {
		t.Fatalf("final money total %d, want %d", money, shards*1000)
	}

	st := s.Stats()
	if st.ConnsOpen != 3 || st.Multis == 0 || st.Updates == 0 || st.Snapshots == 0 {
		t.Fatalf("server stats %+v", st)
	}

	// Clean shutdown: no goroutines may outlive Close (server side) and
	// Close (client side).
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		stacks := string(buf)
		if strings.Contains(stacks, "mwllsc/internal/server.") ||
			strings.Contains(stacks, "mwllsc/internal/client.") {
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, stacks)
		}
	}
}

// TestSlotOversubscription runs more connections than registry slots:
// batches queue at the registry (Block policy) instead of failing.
func TestSlotOversubscription(t *testing.T) {
	m, err := shard.NewMap(4, 2, 1) // only 2 slots
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	c, err := client.Dial(addr.String(), client.WithConns(6))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Add(ctx, uint64(i), []uint64{1}); err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	rows, err := c.SnapshotAtomic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range rows {
		total += r[0]
	}
	if total != 12*50 {
		t.Fatalf("total %d, want %d", total, 12*50)
	}
}

// TestBatchBarrierOrder pins the batch-execution ordering contract for
// mixed op kinds: an Update pipelined BEFORE an UpdateMulti on the same
// key must execute before it, even when both land in one batch (multi
// ops are barriers; only single-key runs between barriers are
// shard-sorted). The two frames are written in one syscall so they
// arrive together and batch together.
func TestBatchBarrierOrder(t *testing.T) {
	m, err := shard.NewMap(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	const key = 5
	for round := 0; round < 20; round++ {
		// Frame 1: Add(key, 1). Frame 2: SetMulti([key], 0). In issue
		// order the key must end at 0; reordered it would end at 1.
		var buf []byte
		buf = wire.AppendFrame(buf, wire.AppendRequest(nil,
			&wire.Request{ID: 1, Op: wire.OpUpdate, Mode: wire.ModeAdd, Key: key, Args: []uint64{1}}))
		buf = wire.AppendFrame(buf, wire.AppendRequest(nil,
			&wire.Request{ID: 2, Op: wire.OpUpdateMulti, Mode: wire.ModeSet, Keys: []uint64{key}, Args: []uint64{0}}))
		buf = wire.AppendFrame(buf, wire.AppendRequest(nil,
			&wire.Request{ID: 3, Op: wire.OpRead, Key: key}))
		if _, err := nc.Write(buf); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		var frame []byte
		var resp wire.Response
		for seen := 0; seen < 3; seen++ {
			if frame, err = wire.ReadFrame(nc, frame); err != nil {
				t.Fatal(err)
			}
			if err := wire.DecodeResponse(&resp, frame); err != nil {
				t.Fatal(err)
			}
			if resp.Status != wire.StatusOK {
				t.Fatalf("round %d: id %d failed: %s", round, resp.ID, resp.Err)
			}
			if resp.ID == 3 && resp.Data[0] != 0 {
				t.Fatalf("round %d: key = %d after add-then-set, want 0 (batch reordered across the multi barrier)", round, resp.Data[0])
			}
		}
	}
}

// TestNonReadingClientDoesNotPinSlots starves the server of response
// readers on one connection and checks other connections still make
// progress: batches must release their registry slot before blocking on
// the response queue.
func TestNonReadingClientDoesNotPinSlots(t *testing.T) {
	m, err := shard.NewMap(2, 1, 1) // ONE slot: any pin starves everyone
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m, server.WithMaxBatch(4))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	// The rogue connection: pour in far more requests than the response
	// queue + socket buffers can hold, and never read a byte back.
	rogue, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	req := wire.AppendRequest(nil, &wire.Request{ID: 7, Op: wire.OpRead, Key: 1})
	frame := wire.AppendFrame(nil, req)
	rogue.SetWriteDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 50000; i++ {
		if _, err := rogue.Write(frame); err != nil {
			break // socket buffers full — the server is saturated, good
		}
	}

	// A well-behaved client must still get service within the deadline.
	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := c.Add(ctx, uint64(i), []uint64{1}); err != nil {
			t.Fatalf("well-behaved client starved: %v", err)
		}
	}
}

// TestPerKeyOrderPreserved checks that shard-grouped batch execution
// never reorders two operations on the same key from one connection: a
// Set followed by an Add must land in that order.
func TestPerKeyOrderPreserved(t *testing.T) {
	m, err := shard.NewMap(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	// Issue Set(i);Add(1) pipelined from concurrent goroutines on the
	// same key; whatever batching happens, the final value must reflect
	// set-then-add per pair, i.e. last pair's set + its add.
	for round := 0; round < 50; round++ {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.Set(ctx, 9, []uint64{100}) }()
		go func() { defer wg.Done(); c.Add(ctx, 9, []uint64{1}) }()
		wg.Wait()
		v, err := c.Read(ctx, 9)
		if err != nil {
			t.Fatal(err)
		}
		// Concurrent set/add admit 100 or 101 only (add-then-set, or
		// set-then-add): anything else means an op was lost or doubled.
		if v[0] != 100 && v[0] != 101 {
			t.Fatalf("round %d: value %d, want 100 or 101", round, v[0])
		}
	}
}
