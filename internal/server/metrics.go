package server

import (
	"mwllsc/internal/obs"
)

// Server counter indices within Server.ctrs — one striped bank
// replaces the former per-field shared atomics, so per-request bumps
// land in the cache lines of the registry slot the batch executor
// already holds (see internal/obs).
const (
	cConnsTotal = iota
	cConnsOpen
	cReqs
	cUpdates
	cReads
	cSnapshots
	cMultis
	cBatches
	cBadReqs
	cPersistErrs
	// Overload-control counters (wire stats words 17-21). Shed, idle
	// and eviction events happen with no registry slot in hand and are
	// bumped on stripe 0; busy and degraded rejections follow the path
	// that produced them (stripe 0 for whole-batch busy rejects, the
	// batch's slot stripe for per-update degraded rejects).
	cConnsShed
	cBusy
	cEvictions
	cIdleClosed
	cDegraded
	numCounters
)

// Metrics is the server's optional histogram set. nil (the default)
// disables latency recording entirely — the E14 benchmark's "obs off"
// arm; the counters in Server.ctrs are always on, because they replace
// the stats fields the wire protocol has exposed since PR 3.
type Metrics struct {
	// Service records per-request service latency in nanoseconds: the
	// batch-execute window (handle acquisition through durability),
	// attributed via ObserveN to every request in the batch, so the
	// whole batch costs one time.Now pair instead of two per request.
	Service *obs.Histogram
	// Batch records the size of each executed batch — the live view of
	// how well pipelining amortizes registry acquisition.
	Batch *obs.Histogram
	// Attempts records the attempt count of each Update/UpdateMulti;
	// values above 1 are the wire-visible face of LL/SC contention.
	Attempts *obs.Histogram
}

// NewMetrics builds a Metrics set striped for a map with n registry
// slots (pass Map.N()).
func NewMetrics(n int) *Metrics {
	return &Metrics{
		Service:  obs.NewHistogram(n),
		Batch:    obs.NewHistogram(n),
		Attempts: obs.NewHistogram(n),
	}
}

// WithMetrics attaches histograms to the server (see Metrics). The
// stripe count should match the served map's slot count.
func WithMetrics(m *Metrics) Option {
	return func(s *Server) { s.metrics = m }
}

// Metrics returns the attached histogram set, nil when none.
func (s *Server) Metrics() *Metrics { return s.metrics }

// RegisterMetrics registers the server's full metric surface on reg
// under llscd_* names: the striped request counters, the histogram set
// (when attached), map geometry, registry-slot contention, the txn
// engine's helping/retry counters, and — when a durability store is
// attached — the persistence counters and append/fsync latency
// histograms. The admin plane's /metrics and /statsz render exactly
// this registry, so their totals match the Stats wire opcode by
// construction: both read the same striped banks.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	ctr := func(i int) func() uint64 { return func() uint64 { return s.ctrs.Sum(i) } }
	reg.Counter("llscd_connections_total", "Connections accepted since start.", ctr(cConnsTotal))
	reg.Gauge("llscd_connections_open", "Connections currently open.", ctr(cConnsOpen))
	reg.Counter("llscd_requests_total", "Requests executed, all opcodes.", ctr(cReqs))
	reg.Counter("llscd_updates_total", "Update requests executed.", ctr(cUpdates))
	reg.Counter("llscd_reads_total", "Read requests executed.", ctr(cReads))
	reg.Counter("llscd_snapshots_total", "Snapshot and SnapshotAtomic requests executed.", ctr(cSnapshots))
	reg.Counter("llscd_multis_total", "UpdateMulti requests executed.", ctr(cMultis))
	reg.Counter("llscd_batches_total", "Handle-acquire batches executed.", ctr(cBatches))
	reg.Counter("llscd_bad_requests_total", "Requests rejected with a non-OK status.", ctr(cBadReqs))
	reg.Counter("llscd_persist_errors_total", "Failed persistence rounds (append or fsync).", ctr(cPersistErrs))
	reg.Counter("llscd_conns_shed_total", "Connections closed at accept by the max-conns cap.", ctr(cConnsShed))
	reg.Counter("llscd_busy_rejects_total", "Requests rejected StatusBusy by admission control.", ctr(cBusy))
	reg.Counter("llscd_evictions_total", "Connections evicted for stalling on their responses.", ctr(cEvictions))
	reg.Counter("llscd_idle_closes_total", "Connections closed by the read-idle timeout.", ctr(cIdleClosed))
	reg.Counter("llscd_degraded_rejects_total", "Updates rejected StatusUnavailable in disk-sick degraded mode.", ctr(cDegraded))

	reg.Gauge("llscd_shards", "Map geometry: shard count K.", func() uint64 { return uint64(s.m.Shards()) })
	reg.Gauge("llscd_slots", "Map geometry: registry process slots N.", func() uint64 { return uint64(s.m.N()) })
	reg.Gauge("llscd_words", "Map geometry: words per key W.", func() uint64 { return uint64(s.m.W()) })

	reg.Counter("llscd_slot_acquires_total", "Registry slot acquisitions.",
		func() uint64 { return uint64(s.m.Registry().Stats().Acquires) })
	reg.Counter("llscd_slot_waits_total", "Slot acquisitions that had to wait for a free slot.",
		func() uint64 { return uint64(s.m.Registry().Stats().Waited) })
	reg.Counter("llscd_txn_helps_total", "Lock references found in the way and helped to completion.",
		func() uint64 { return s.m.TxnStats().Helps })
	reg.Counter("llscd_txn_retries_total", "Update attempts rerun after a conflicting commit.",
		func() uint64 { return s.m.TxnStats().Retries })

	if s.metrics != nil {
		reg.Histogram("llscd_request_latency_seconds",
			"Per-request service latency: the batch-execute window, handle acquisition through durability.",
			1e-9, s.metrics.Service)
		reg.Histogram("llscd_batch_size", "Requests per executed batch.", 1, s.metrics.Batch)
		reg.Histogram("llscd_update_attempts", "LL/SC attempts per Update/UpdateMulti (1 = no conflict).",
			1, s.metrics.Attempts)
	}
	if s.tracer != nil {
		tr := s.tracer
		reg.Counter("llscd_trace_spans_total", "Trace spans completed and retired into the rings.",
			func() uint64 { return tr.Stats().Retired })
		reg.Counter("llscd_trace_dropped_total", "Traces skipped because the span free list ran dry.",
			func() uint64 { return tr.Stats().Dropped })
	}
	if s.persist != nil {
		st := s.persist
		reg.Counter("llscd_persist_records_total", "Records appended to the durability log.",
			func() uint64 { return st.Stats().Records })
		reg.Counter("llscd_persist_bytes_total", "Log bytes written.",
			func() uint64 { return st.Stats().Bytes })
		reg.Counter("llscd_persist_syncs_total", "Group-commit fsync rounds completed.",
			func() uint64 { return st.Stats().Syncs })
		reg.Counter("llscd_persist_checkpoints_total", "Checkpoints written.",
			func() uint64 { return st.Stats().Checkpoints })
		reg.Gauge("llscd_persist_seq", "Current commit sequence number.",
			func() uint64 { return st.Stats().Seq })
		reg.Histogram("llscd_persist_append_seconds", "Per-shard log append (write syscall) latency.",
			1e-9, st.AppendHist())
		reg.Histogram("llscd_persist_fsync_seconds", "Group-commit fsync round latency.",
			1e-9, st.SyncHist())
	}
}
