package server

// The stats-counter contention regression tests: PR 3's server bumped
// reqs/reads/updates on globally shared atomics inside the batch
// executor — a cache-line hotspot at high GOMAXPROCS (ROADMAP item 5).
// The obs migration stripes every per-request counter by the registry
// slot the executor holds. "No shared cache line is written
// per-request" is proved deterministically, in the alloc_test.go
// spirit (structure, not timing, because CI runs on whatever cores it
// gets): TestExecuteBatchCountsOnHeldSlotStripe shows every
// per-request bump lands on exactly the held slot's stripe, and
// internal/obs's TestStripeAlignment shows distinct stripes are
// 128-byte-aligned and ≥128 bytes apart — together: distinct slots,
// distinct lines. TestCounterStripingUnderParallelLoad exercises the
// same property racing at GOMAXPROCS=4 (under -race in CI), and the
// BenchmarkCounter* pair measures the timing gap on real cores.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mwllsc/internal/obs"
	"mwllsc/internal/shard"
	"mwllsc/internal/wire"
)

// mkReadBatch fills cs.batch with n pre-decoded reads.
func mkReadBatch(m *shard.Map, cs *connState, n int) {
	cs.batch = cs.batch[:0]
	for i := 0; i < n; i++ {
		key := uint64(i) * 977
		br := batchReq{shardI: m.ShardIndex(key)}
		br.req = wire.Request{ID: uint64(i), Op: wire.OpRead, Key: key}
		cs.batch = append(cs.batch, br)
	}
}

func TestExecuteBatchCountsOnHeldSlotStripe(t *testing.T) {
	const batchN = 8
	m, err := shard.NewMap(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, WithMetrics(NewMetrics(m.N())))
	if got := s.ctrs.Stripes(); got != m.N() {
		t.Fatalf("counter stripes = %d, want one per registry slot = %d", got, m.N())
	}
	cs := s.newConnState()
	out := make(chan outResp, 2*batchN)
	mkReadBatch(m, cs, batchN)
	s.executeBatch(cs, out)
	for i := 0; i < batchN; i++ {
		cs.putResp((<-out).resp)
	}
	p := cs.h.Process()
	for st := 0; st < s.ctrs.Stripes(); st++ {
		wantReqs, wantBatches := uint64(0), uint64(0)
		if st == p {
			wantReqs, wantBatches = batchN, 1
		}
		if got := s.ctrs.StripeSum(st, cReqs); got != wantReqs {
			t.Errorf("stripe %d reqs = %d, want %d (batch held slot %d)", st, got, wantReqs, p)
		}
		if got := s.ctrs.StripeSum(st, cReads); got != wantReqs {
			t.Errorf("stripe %d reads = %d, want %d", st, got, wantReqs)
		}
		if got := s.ctrs.StripeSum(st, cBatches); got != wantBatches {
			t.Errorf("stripe %d batches = %d, want %d", st, got, wantBatches)
		}
	}
	if got := s.Stats().Reqs; got != batchN {
		t.Errorf("Stats().Reqs = %d, want %d (cross-stripe fold)", got, batchN)
	}
}

func TestCounterStripingUnderParallelLoad(t *testing.T) {
	// Four executors race batches at GOMAXPROCS=4 (under -race in CI).
	// Distinct live handles hold distinct slots, so every stripe total
	// must be a whole number of batches — a request counted on any
	// stripe other than its batch's slot would break that — and the
	// fold must see every request exactly once.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		goroutines = 4
		rounds     = 50
		batchN     = 8
	)
	m, err := shard.NewMap(4, goroutines, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, WithMetrics(NewMetrics(m.N())))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := s.newConnState()
			out := make(chan outResp, 2*batchN)
			for r := 0; r < rounds; r++ {
				mkReadBatch(m, cs, batchN)
				s.executeBatch(cs, out)
				for i := 0; i < batchN; i++ {
					cs.putResp((<-out).resp)
				}
			}
		}()
	}
	wg.Wait()
	var sum uint64
	for st := 0; st < s.ctrs.Stripes(); st++ {
		n := s.ctrs.StripeSum(st, cReqs)
		if n%batchN != 0 {
			t.Errorf("stripe %d holds %d reqs, not a whole number of %d-request batches", st, n, batchN)
		}
		sum += n
	}
	if want := uint64(goroutines * rounds * batchN); sum != want {
		t.Errorf("stripes sum to %d reqs, want %d", sum, want)
	}
}

// The benchmark pair behind the striping decision: run with
//
//	go test -run xx -bench 'Counter(Shared|Striped)' -cpu 4 ./internal/server/
//
// on a multicore box to see the shared-line penalty. On the 1-CPU CI
// container the gap mostly vanishes (no true parallelism), which is
// why the tests above gate the structure rather than the timing.
func BenchmarkCounterShared(b *testing.B) {
	var c atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkCounterStriped(b *testing.B) {
	c := obs.NewCounters(runtime.GOMAXPROCS(0), 1)
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		st := int(next.Add(1)-1) % c.Stripes()
		for pb.Next() {
			c.Add(st, 0, 1)
		}
	})
}
