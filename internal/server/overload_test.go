package server

import (
	"errors"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"mwllsc/internal/fault"
	"mwllsc/internal/persist"
	"mwllsc/internal/shard"
	"mwllsc/internal/wire"
)

// Internal tests for the overload controls: they reach the admission
// semaphore directly to make saturation deterministic instead of racing
// goroutines against a microsecond-wide window.

func newTestServer(t *testing.T, opts ...Option) (*Server, string) {
	t.Helper()
	m, err := shard.NewMap(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, opts...)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func sendReq(t *testing.T, c net.Conn, req *wire.Request) {
	t.Helper()
	if err := wire.WriteFrame(c, wire.AppendRequest(nil, req)); err != nil {
		t.Fatalf("send request: %v", err)
	}
}

func readResp(t *testing.T, c net.Conn) *wire.Response {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := wire.ReadFrame(c, nil)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var resp wire.Response
	if err := wire.DecodeResponse(&resp, frame); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &resp
}

// waitClosed asserts the peer closes c: the next read returns EOF or a
// reset instead of blocking.
func waitClosed(t *testing.T, c net.Conn) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	_, err := c.Read(b[:])
	if err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("connection still delivering data, want close")
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		t.Fatal("connection still open after 5s, want server-side close")
	}
}

func waitConnsOpen(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.ctrs.Sum(cConnsOpen) != want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.ctrs.Sum(cConnsOpen); got != want {
		t.Fatalf("ConnsOpen = %d, want %d", got, want)
	}
}

func TestMaxConnsShed(t *testing.T) {
	s, addr := newTestServer(t, WithMaxConns(2))
	c1, c2 := rawDial(t, addr), rawDial(t, addr)
	sendReq(t, c1, &wire.Request{ID: 1, Op: wire.OpPing})
	sendReq(t, c2, &wire.Request{ID: 2, Op: wire.OpPing})
	readResp(t, c1)
	readResp(t, c2)

	// The third connection is shed at accept: closed before a byte.
	c3 := rawDial(t, addr)
	waitClosed(t, c3)
	if got := s.Stats().ShedConns; got != 1 {
		t.Fatalf("ShedConns = %d, want 1", got)
	}
	// The survivors still serve, and freeing a slot readmits.
	sendReq(t, c1, &wire.Request{ID: 3, Op: wire.OpPing})
	if resp := readResp(t, c1); resp.Status != wire.StatusOK {
		t.Fatalf("survivor got %v after shed", resp.Status)
	}
	c2.Close()
	waitConnsOpen(t, s, 1)
	c4 := rawDial(t, addr)
	sendReq(t, c4, &wire.Request{ID: 4, Op: wire.OpPing})
	if resp := readResp(t, c4); resp.Status != wire.StatusOK {
		t.Fatalf("readmitted conn got %v", resp.Status)
	}
}

func TestIdleTimeoutCloses(t *testing.T) {
	s, addr := newTestServer(t, WithIdleTimeout(50*time.Millisecond))
	c := rawDial(t, addr)
	sendReq(t, c, &wire.Request{ID: 1, Op: wire.OpPing})
	if resp := readResp(t, c); resp.Status != wire.StatusOK {
		t.Fatalf("ping got %v", resp.Status)
	}
	// Go quiet past the deadline: the server closes from its side, the
	// connection goroutines drain, and the closure is counted.
	waitClosed(t, c)
	waitConnsOpen(t, s, 0)
	if got := s.Stats().IdleCloses; got != 1 {
		t.Fatalf("IdleCloses = %d, want 1", got)
	}
}

// TestIdleTimeoutSparesActiveClient: a client that keeps requests
// coming — slower than the batch rate but faster than the deadline —
// is never closed.
func TestIdleTimeoutSparesActiveClient(t *testing.T) {
	s, addr := newTestServer(t, WithIdleTimeout(200*time.Millisecond))
	c := rawDial(t, addr)
	for i := 0; i < 10; i++ {
		sendReq(t, c, &wire.Request{ID: uint64(i), Op: wire.OpPing})
		if resp := readResp(t, c); resp.Status != wire.StatusOK {
			t.Fatalf("ping %d got %v", i, resp.Status)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if got := s.Stats().IdleCloses; got != 0 {
		t.Fatalf("IdleCloses = %d for an active client, want 0", got)
	}
}

// TestWriteStallEviction: a peer that requests snapshots and never
// reads the responses fills its TCP window; the write deadline evicts
// it instead of parking the writer goroutine forever.
func TestWriteStallEviction(t *testing.T) {
	m, err := shard.NewMap(64, 4, 64) // 32 KiB per snapshot response
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, WithWriteTimeout(100*time.Millisecond))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	baseline := runtime.NumGoroutine()
	c := rawDial(t, addr.String())
	// Enough snapshot responses to overrun any default socket buffer
	// while this side never reads a byte.
	for i := 0; i < 256; i++ {
		sendReq(t, c, &wire.Request{ID: uint64(i), Op: wire.OpSnapshot})
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Evictions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().Evictions; got == 0 {
		t.Fatal("stalled reader was never evicted")
	}
	// Both connection goroutines must unwind — the eviction closed the
	// conn, so the read loop sees the error too.
	waitConnsOpen(t, s, 0)
	dl := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(dl) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after eviction: %d > %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestBusyRejectWhenSaturated fills the admission semaphore by hand —
// the deterministic stand-in for max-inflight concurrent batches — and
// checks the whole-batch StatusBusy rejection, then that draining a
// token readmits.
func TestBusyRejectWhenSaturated(t *testing.T) {
	s, addr := newTestServer(t, WithMaxInflight(2))
	s.sem <- struct{}{}
	s.sem <- struct{}{}

	c := rawDial(t, addr)
	sendReq(t, c, &wire.Request{ID: 7, Op: wire.OpUpdate, Key: 1, Mode: wire.ModeAdd, Args: []uint64{1}})
	resp := readResp(t, c)
	if resp.Status != wire.StatusBusy {
		t.Fatalf("saturated server answered %v, want StatusBusy", resp.Status)
	}
	if resp.ID != 7 || resp.Err == "" {
		t.Fatalf("busy response = id %d err %q, want the request id and a message", resp.ID, resp.Err)
	}
	st := s.Stats()
	if st.BusyRejects != 1 || st.BadReqs != 1 {
		t.Fatalf("BusyRejects=%d BadReqs=%d, want 1 and 1", st.BusyRejects, st.BadReqs)
	}
	// The rejected update must not have touched the map.
	got := make([]uint64, 1)
	s.Map().Read(1, got)
	if got[0] != 0 {
		t.Fatalf("rejected update reached the map: key 1 = %d", got[0])
	}

	<-s.sem // capacity frees up
	sendReq(t, c, &wire.Request{ID: 8, Op: wire.OpUpdate, Key: 1, Mode: wire.ModeAdd, Args: []uint64{1}})
	if resp := readResp(t, c); resp.Status != wire.StatusOK {
		t.Fatalf("after drain got %v, want OK", resp.Status)
	}
	s.Map().Read(1, got)
	if got[0] != 1 {
		t.Fatalf("admitted update lost: key 1 = %d, want 1", got[0])
	}
	<-s.sem
}

// TestDegradedModeReadOnly drives the durability store into its sticky
// sick state through an injected disk fault and checks the degrade
// contract: updates bounce with StatusUnavailable, reads and stats keep
// serving from memory.
func TestDegradedModeReadOnly(t *testing.T) {
	m, err := shard.NewMap(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ff := fault.NewFiles(fault.FilesConfig{Seed: 3, FailWriteAfterBytes: 1})
	st, _, err := persist.Open(t.TempDir(), m, persist.Options{
		OpenLog: func(path string) (persist.LogFile, error) { return ff.Open(path) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(m, WithPersist(st), WithDegradeOnDiskError(true))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	c := rawDial(t, addr.String())
	// First update: committed in memory, but its append hits the fault
	// and poisons the store. Under SyncNone the ack still goes out (the
	// durability loss is visible as PersistErrs, not as a failure).
	sendReq(t, c, &wire.Request{ID: 1, Op: wire.OpUpdate, Key: 5, Mode: wire.ModeSet, Args: []uint64{42}})
	if resp := readResp(t, c); resp.Status != wire.StatusOK {
		t.Fatalf("poisoning update got %v", resp.Status)
	}
	if !st.Sick() {
		t.Fatal("store not sick after injected append failure")
	}

	// Now degraded: updates bounce before touching the map...
	sendReq(t, c, &wire.Request{ID: 2, Op: wire.OpUpdate, Key: 5, Mode: wire.ModeSet, Args: []uint64{99}})
	resp := readResp(t, c)
	if resp.Status != wire.StatusUnavailable {
		t.Fatalf("update on sick store got %v, want StatusUnavailable", resp.Status)
	}
	sendReq(t, c, &wire.Request{ID: 3, Op: wire.OpUpdateMulti, Keys: []uint64{1, 2}, Mode: wire.ModeAdd, Args: []uint64{1, 1}})
	if resp := readResp(t, c); resp.Status != wire.StatusUnavailable {
		t.Fatalf("multi on sick store got %v, want StatusUnavailable", resp.Status)
	}

	// ...while reads still serve the in-memory truth.
	sendReq(t, c, &wire.Request{ID: 4, Op: wire.OpRead, Key: 5})
	rr := readResp(t, c)
	if rr.Status != wire.StatusOK || rr.Data[0] != 42 {
		t.Fatalf("read in degraded mode = %v %v, want OK [42]", rr.Status, rr.Data)
	}
	sendReq(t, c, &wire.Request{ID: 5, Op: wire.OpSnapshot})
	if resp := readResp(t, c); resp.Status != wire.StatusOK {
		t.Fatalf("snapshot in degraded mode got %v", resp.Status)
	}
	stats := s.Stats()
	if stats.DegradedRejects != 2 || stats.PersistErrs == 0 {
		t.Fatalf("DegradedRejects=%d PersistErrs=%d, want 2 and >0", stats.DegradedRejects, stats.PersistErrs)
	}
}

// TestDegradeOffKeepsAccepting: without the option, a sick store only
// shows up in PersistErrs — updates keep succeeding in memory. This
// pins the default so enabling degrade stays an explicit choice.
func TestDegradeOffKeepsAccepting(t *testing.T) {
	m, err := shard.NewMap(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ff := fault.NewFiles(fault.FilesConfig{Seed: 4, FailWriteAfterBytes: 1})
	st, _, err := persist.Open(t.TempDir(), m, persist.Options{
		OpenLog: func(path string) (persist.LogFile, error) { return ff.Open(path) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(m, WithPersist(st))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	c := rawDial(t, addr.String())
	for i := 0; i < 3; i++ {
		sendReq(t, c, &wire.Request{ID: uint64(i), Op: wire.OpUpdate, Key: 5, Mode: wire.ModeAdd, Args: []uint64{1}})
		if resp := readResp(t, c); resp.Status != wire.StatusOK {
			t.Fatalf("update %d with degrade off got %v", i, resp.Status)
		}
	}
	stats := s.Stats()
	if stats.DegradedRejects != 0 || stats.PersistErrs == 0 {
		t.Fatalf("DegradedRejects=%d PersistErrs=%d, want 0 and >0", stats.DegradedRejects, stats.PersistErrs)
	}
}
