package server_test

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mwllsc/internal/client"
	"mwllsc/internal/persist"
	"mwllsc/internal/server"
	"mwllsc/internal/shard"
)

// TestPersistIntegration drives a real server with the durability layer
// attached: concurrent adds, sets and cross-shard transfers over
// loopback, a checkpoint taken under load, more traffic, a clean
// shutdown — then recovery into a fresh map must reproduce the exact
// final snapshot. Run it under -race.
func TestPersistIntegration(t *testing.T) {
	const (
		shards  = 8
		slots   = 6
		words   = 2
		workers = 8
		perW    = 60
	)
	dir := filepath.Join(t.TempDir(), "data")
	m, err := shard.NewMap(shards, slots, words)
	if err != nil {
		t.Fatal(err)
	}
	st, rec, err := persist.Open(dir, m, persist.Options{Policy: persist.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint || rec.Replayed != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	s := server.New(m, server.WithMaxBatch(32), server.WithPersist(st))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()

	c, err := client.Dial(addr.String(), client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	keys := make([]uint64, shards)
	for i := range keys {
		keys[i] = m.KeyForShard(i)
		if _, err := c.Set(ctx, keys[i], []uint64{1000, 0}); err != nil {
			t.Fatal(err)
		}
	}

	load := func() {
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					src, dst := keys[(wkr+i)%shards], keys[(wkr+i+1)%shards]
					switch i % 3 {
					case 0:
						if _, err := c.Add(ctx, src, []uint64{0, 1}); err != nil {
							t.Error(err)
							return
						}
					default:
						_, err := c.AddMulti(ctx, []uint64{src, dst},
							[][]uint64{{^uint64(0), 1}, {1, 1}}) // move one unit, bump op counters
						if err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(wkr)
		}
		wg.Wait()
	}

	load()
	// Checkpoint while a second round of traffic is in flight: the
	// watermark must cleanly split records between snapshot and logs.
	ckptDone := make(chan error, 1)
	go func() { ckptDone <- s.Checkpoint() }()
	load()
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}

	want, err := c.SnapshotAtomic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := shard.NewMap(shards, slots, words)
	if err != nil {
		t.Fatal(err)
	}
	st2, rec2, err := persist.Open(dir, m2, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !rec2.Checkpoint {
		t.Fatalf("recovery %+v, want a checkpoint", rec2)
	}
	got := m2.NewSnapshotBuffer()
	m2.SnapshotAtomic(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state %v\nwant %v", got, want)
	}

	// Conservation double-check: units were only moved, never created.
	var units uint64
	for _, row := range got {
		units += row[0]
	}
	if units != shards*1000 {
		t.Fatalf("recovered unit total %d, want %d", units, shards*1000)
	}
}

// TestCheckpointWithoutStore verifies the error path when no durability
// layer is attached.
func TestCheckpointWithoutStore(t *testing.T) {
	s := newServer(t, 2, 2, 1)
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory server succeeded")
	}
}

// TestPersistFailureCountsInStats pins the operator-visibility contract
// of a persistence failure under -fsync always: the committed update is
// converted into an error response (the durability the policy promises
// did not happen), and the event is counted — PersistErrs for the
// failing round, BadReqs for each converted acknowledgment — so an
// operator can alert on silent durability loss instead of discovering
// it during recovery.
func TestPersistFailureCountsInStats(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	m, err := shard.NewMap(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := persist.Open(dir, m, persist.Options{Policy: persist.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m, server.WithPersist(st))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer s.Close()

	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Add(ctx, 1, []uint64{1, 0}); err != nil {
		t.Fatalf("healthy update failed: %v", err)
	}
	before, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.PersistErrs != 0 {
		t.Fatalf("PersistErrs = %d before any failure", before.PersistErrs)
	}

	// Closing the store underneath the server makes the next append (or
	// its group-commit fsync) fail — the same observable outcome as a
	// full disk or a dying device.
	st.Close()

	if _, err := c.Add(ctx, 2, []uint64{1, 0}); err == nil {
		t.Fatal("update acked despite persistence failure under SyncAlways")
	}
	after, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.PersistErrs == 0 {
		t.Error("PersistErrs not incremented by a persistence failure")
	}
	if after.BadReqs <= before.BadReqs {
		t.Errorf("BadReqs did not count the converted ack: before %d after %d",
			before.BadReqs, after.BadReqs)
	}
}
