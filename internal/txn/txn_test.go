package txn_test

import (
	"math/rand"
	"sync"
	"testing"

	"mwllsc/internal/shard"
	"mwllsc/internal/txn"
)

// lockShards is a deliberately simple, obviously correct ShardSet for
// engine unit tests: per-shard mutex + version counter. The engine only
// assumes the LL/SC/VL contract, so a trivial substrate exercises the
// protocol as well as the paper's object does.
type lockShards struct {
	mu    sync.Mutex
	k, w  int
	vals  [][]uint64
	vers  []uint64
	links [][]uint64 // [shard][proc]: version at latest LL
}

func newLockShards(k, words, n int, initial []uint64) *lockShards {
	s := &lockShards{k: k, w: words,
		vals:  make([][]uint64, k),
		vers:  make([]uint64, k),
		links: make([][]uint64, k),
	}
	for i := range s.vals {
		s.vals[i] = make([]uint64, words)
		copy(s.vals[i], initial)
		s.links[i] = make([]uint64, n)
	}
	return s
}

func (s *lockShards) Shards() int { return s.k }
func (s *lockShards) Words() int  { return s.w }

func (s *lockShards) LL(p, i int, dst []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	copy(dst, s.vals[i])
	s.links[i][p] = s.vers[i]
}

func (s *lockShards) SC(p, i int, src []uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.links[i][p] != s.vers[i] {
		return false
	}
	copy(s.vals[i], src)
	s.vers[i]++
	return true
}

func (s *lockShards) VL(p, i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.links[i][p] == s.vers[i]
}

func (s *lockShards) value(i int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, s.w)
	copy(out, s.vals[i])
	return out
}

func TestEngineUpdateBasics(t *testing.T) {
	const k, w, n = 4, 2, 2
	s := newLockShards(k, w, n, []uint64{10, 20})
	e, err := txn.New(s, n)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != k || e.Words() != w {
		t.Fatalf("geometry %d/%d, want %d/%d", e.Shards(), e.Words(), k, w)
	}
	// Uncontended multi-shard update commits in one attempt.
	attempts := e.Update(0, []int{0, 2, 3}, func(vals [][]uint64) {
		for _, v := range vals {
			v[0]++
			v[1] += 100
		}
	})
	if attempts != 1 {
		t.Fatalf("uncontended Update took %d attempts, want 1", attempts)
	}
	for _, i := range []int{0, 2, 3} {
		v := s.value(i)
		if v[0] != 11 || v[1] != 120 {
			t.Fatalf("shard %d = %v, want [11 120]", i, v)
		}
	}
	if v := s.value(1); v[0] != 10 || v[1] != 20 {
		t.Fatalf("untouched shard 1 = %v, want [10 20]", v)
	}
	// Empty key list is a no-op.
	if attempts := e.Update(0, nil, func([][]uint64) { t.Fatal("f ran for empty keys") }); attempts != 0 {
		t.Fatalf("empty Update returned %d, want 0", attempts)
	}
}

func TestEngineDuplicateShardsAlias(t *testing.T) {
	const k, w, n = 4, 1, 1
	s := newLockShards(k, w, n, []uint64{0})
	e, err := txn.New(s, n)
	if err != nil {
		t.Fatal(err)
	}
	// Three entries naming shard 1 twice: the duplicates must alias one
	// slice, so the shard is incremented twice, not once in two copies.
	e.Update(0, []int{1, 1, 2}, func(vals [][]uint64) {
		if &vals[0][0] != &vals[1][0] {
			t.Fatal("duplicate shard entries do not alias the same slice")
		}
		vals[0][0] += 5
		vals[1][0] += 5
		vals[2][0] = 7
	})
	if v := s.value(1); v[0] != 10 {
		t.Fatalf("shard 1 = %d, want 10 (two aliased +5s)", v[0])
	}
	if v := s.value(2); v[0] != 7 {
		t.Fatalf("shard 2 = %d, want 7", v[0])
	}
}

func TestEngineSnapshotQuiescent(t *testing.T) {
	const k, w, n = 3, 2, 1
	s := newLockShards(k, w, n, []uint64{1, 2})
	e, err := txn.New(s, n)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([][]uint64, k)
	for i := range dst {
		dst[i] = make([]uint64, w)
	}
	if attempts := e.Snapshot(0, dst); attempts != 1 {
		t.Fatalf("quiescent Snapshot took %d attempts, want 1", attempts)
	}
	for i, row := range dst {
		if row[0] != 1 || row[1] != 2 {
			t.Fatalf("row %d = %v, want [1 2]", i, row)
		}
	}
}

func TestEngineBadArgs(t *testing.T) {
	s := newLockShards(2, 2, 2, []uint64{0, 0})
	if _, err := txn.New(s, 0); err == nil {
		t.Fatal("New with n=0 succeeded")
	}
	if _, err := txn.New(s, txn.MaxProcs+1); err == nil {
		t.Fatal("New with n > MaxProcs succeeded")
	}
	e, err := txn.New(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "out-of-range shard", func() { e.Update(0, []int{5}, func([][]uint64) {}) })
	mustPanic(t, "short snapshot buffer", func() { e.Snapshot(0, make([][]uint64, 1)) })
	mustPanic(t, "short read buffer", func() { e.Read(0, 0, make([]uint64, 5)) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestConservationUnderConcurrentTransfers is the conservation-of-money
// property test over the full stack (txn engine on the paper's sharded
// object): many goroutines move money between accounts on different
// shards with UpdateMulti while auditors take SnapshotAtomic cuts. Every
// audit and the final state must account for every unit — a torn
// multi-shard transfer or a non-linearizable snapshot shows up as drift.
// Sized to run under -race -short in CI.
func TestConservationUnderConcurrentTransfers(t *testing.T) {
	const (
		k              = 8 // one account per shard
		slots          = 6
		tellers        = 4
		auditors       = 2
		transfersEach  = 400
		auditsEach     = 150
		initialBalance = 1_000
	)
	m, err := shard.NewMap(k, slots, 1, shard.WithInitial([]uint64{initialBalance}))
	if err != nil {
		t.Fatal(err)
	}
	// One representative key per shard, so transfers pick true cross-shard
	// account pairs.
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = m.KeyForShard(i)
	}

	var wg sync.WaitGroup
	for tl := 0; tl < tellers; tl++ {
		wg.Add(1)
		go func(tl int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			rng := rand.New(rand.NewSource(int64(tl) + 1))
			for i := 0; i < transfersEach; i++ {
				from, to := rng.Intn(k), rng.Intn(k)
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(40) + 1)
				h.UpdateMulti([]uint64{keys[from], keys[to]}, func(vals [][]uint64) {
					if vals[0][0] >= amount {
						vals[0][0] -= amount
						vals[1][0] += amount
					}
				})
			}
		}(tl)
	}
	auditErr := make(chan string, auditors)
	for a := 0; a < auditors; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			buf := m.NewSnapshotBuffer()
			for i := 0; i < auditsEach; i++ {
				h.SnapshotAtomic(buf)
				var total uint64
				for _, row := range buf {
					total += row[0]
				}
				if total != k*initialBalance {
					select {
					case auditErr <- "": // detail formatted below
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-auditErr:
		t.Fatal("an atomic audit observed a total != initial total — cross-shard cut was torn")
	default:
	}

	buf := m.NewSnapshotBuffer()
	m.SnapshotAtomic(buf)
	var total uint64
	for _, row := range buf {
		total += row[0]
	}
	if total != k*initialBalance {
		t.Fatalf("final total = %d, want %d — money created or destroyed", total, k*initialBalance)
	}
	if m.Registry().InUse() != 0 {
		t.Fatalf("registry leaked %d slots", m.Registry().InUse())
	}
}

// TestSingleKeyAndMultiKeyCompose drives single-key Updates and
// multi-key transactions at the same shards concurrently: the single-key
// fast path must honor (and help) in-flight transactions.
func TestSingleKeyAndMultiKeyCompose(t *testing.T) {
	const (
		k     = 4
		slots = 4
		perG  = 300
	)
	m, err := shard.NewMap(k, slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = m.KeyForShard(i)
	}
	var wg sync.WaitGroup
	// Two single-key incrementers on word 0...
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			for i := 0; i < perG; i++ {
				h.Update(keys[(g+i)%k], func(v []uint64) { v[0]++ })
			}
		}(g)
	}
	// ...and two multi-key incrementers on word 1 across all shards.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			for i := 0; i < perG; i++ {
				h.UpdateMulti(keys, func(vals [][]uint64) {
					for _, v := range vals {
						v[1]++
					}
				})
			}
		}()
	}
	wg.Wait()

	buf := m.NewSnapshotBuffer()
	m.SnapshotAtomic(buf)
	var word0, word1 uint64
	for _, row := range buf {
		word0 += row[0]
		word1 += row[1]
	}
	if word0 != 2*perG {
		t.Fatalf("single-key increments: %d, want %d", word0, 2*perG)
	}
	if word1 != uint64(2*perG*k) {
		t.Fatalf("multi-key increments: %d, want %d", word1, 2*perG*k)
	}
}
