// Package txn provides lock-free multi-shard atomic transactions over a
// set of independent multiword LL/SC/VL objects — the paper's
// LL/manipulate/SC recipe (the same one internal/apps/mwcas lifts to one
// W-word object) lifted once more, to a two-phase commit that spans
// several objects.
//
// The substrate is a ShardSet: K independent atomic multiword LL/SC/VL
// shards holding the user values, untouched and at their native width.
// Beside them the engine keeps one lock word per shard in its own padded
// memory; a multi-key update then runs as a descriptor-based two-phase
// commit:
//
//  1. Collect: read a stable (unlocked) value of every target shard and
//     run the caller's function on a private copy.
//  2. Publish: write the target shard list plus the expected old and
//     computed new values into the calling process's descriptor, and flip
//     the descriptor's status word to Active. From here the transaction
//     is completable by ANY process.
//  3. Lock and seal: visit the target shards in ascending index order;
//     on each, CAS the lock word from its free marker to a lock
//     reference (descriptor owner + sequence number, locked bit set),
//     then "seal" the shard — verify its value still equals the recorded
//     old value and rewrite it unchanged with an SC. The seal's version
//     bump invalidates the link of every writer that read the lock word
//     before the CAS, so no single-key SC can land on a sealed shard
//     (writers re-check the lock word after re-LL and help instead). A
//     value mismatch atomically moves the descriptor to Aborted.
//     Encountering a foreign lock reference first helps that transaction
//     to completion (bounded, because locks are only ever taken in
//     ascending shard order), then retries.
//  4. Commit: when every target shard is locked and sealed, CAS the
//     descriptor from Active to Committed — the linearization point.
//  5. Release: SC the recorded new value into each shard (Committed) —
//     or leave the value untouched (Aborted) — and swing its lock word
//     to the reference's free marker. Free markers never repeat, which
//     closes the last reuse race (see the lock-word layout notes).
//
// Helping makes the construction lock-free rather than blocking: a
// process that stalls — or crashes — between Publish and the end of
// Release leaves a descriptor that any other process completes the
// moment it trips over one of its lock references, so a stalled
// transaction never blocks anyone else's progress. Descriptor slots are
// recycled under a sequence number; helpers copy a descriptor's data out
// and re-validate the sequence number before acting, re-check it after
// every shard LL, and recognize (and clear) stale lock references whose
// sequence number no longer matches, so a helper that outlives an
// incarnation can never corrupt the next one.
//
// Snapshot obtains a cross-shard linearizable view the optimistic way
// first: LL every shard, then VL every shard. All LLs precede all VLs,
// so if every VL validates, the values all coexisted at the instant
// between the two passes. Under sustained update traffic the double
// collect retries a bounded number of times and then falls back to the
// descriptor path: an identity transaction over all K shards whose
// collected old values are, by the commit-point argument above, a
// consistent cut.
package txn

import (
	"fmt"
	"sort"
	"sync/atomic"

	"mwllsc/internal/obs"
)

// ShardSet is the substrate the engine runs over: Shards() independent
// atomic multiword LL/SC/VL objects, each Words() words wide, with the
// usual per-process semantics (process p's SC succeeds iff no successful
// SC hit that shard since p's latest LL of it). The engine stores no
// metadata inside the shard values — they stay at their native width.
type ShardSet interface {
	// Shards returns K, the number of shards.
	Shards() int
	// Words returns the per-shard value width in 64-bit words.
	Words() int
	// LL performs a load-linked of shard i by process p (len(dst) = Words()).
	LL(p, i int, dst []uint64)
	// SC performs a store-conditional on shard i by process p.
	SC(p, i int, src []uint64) bool
	// VL validates process p's latest LL of shard i.
	VL(p, i int) bool
}

// Stepper is optionally implemented by a ShardSet (the deterministic
// simulator does) to insert a scheduling point before each of the
// engine's own shared-memory accesses — lock-word and descriptor status
// operations — so an adversarial scheduler controls their interleaving
// exactly as it does the shard operations'. Real shard sets omit it.
type Stepper interface {
	Step(p int)
}

// Descriptor status word layout: seq<<2 | phase. The sequence number
// distinguishes incarnations of the same descriptor slot so that stale
// lock references are recognizable.
const (
	phaseFree      = 0 // descriptor idle; owner may prepare the next txn
	phaseActive    = 1 // published; lock phase in progress
	phaseCommitted = 2 // all shards locked and sealed; new values win
	phaseAborted   = 3 // a shard changed since collect; old values stand
	phaseMask      = 3
)

// Lock reference layout: seq<<17 | proc<<1 | 1. Bit 0 set marks a LOCKED
// shard; 16 bits of process id bound N; the sequence number is truncated
// to the remaining 47 bits (a slot would need >10^14 transactions to
// wrap).
//
// A lock word with bit 0 clear is FREE — but its upper bits still carry
// the reference of the transaction that last released it (zero only
// before the first lock ever). Free markers therefore never repeat,
// which is load-bearing: a claim is CAS(marker -> ref), so a helper that
// stalls between reading the marker and CASing can never re-lock a shard
// that went through any lock/release cycle in between — its CAS fails on
// the changed marker. Without this, a stale claim plus a lagging
// releaser could overwrite a later single-key update (a lost update).
const (
	refProcBits = 16
	// MaxProcs is the largest process count an Engine supports (the lock
	// reference encoding reserves 16 bits for the owner's process id).
	MaxProcs   = 1 << refProcBits
	refSeqMask = 1<<(63-refProcBits) - 1
)

func makeRef(q int, seq uint64) uint64 {
	return (seq&refSeqMask)<<(refProcBits+1) | uint64(q)<<1 | 1
}

func refProc(r uint64) int   { return int(r >> 1 & (MaxProcs - 1)) }
func refSeq(r uint64) uint64 { return r >> (refProcBits + 1) }

// freeMarker is the unlocked lock-word state a released reference leaves
// behind: the reference with its locked bit cleared.
func freeMarker(ref uint64) uint64 { return ref &^ 1 }

// locked reports whether a lock-word value denotes a held lock.
func locked(v uint64) bool { return v&1 == 1 }

// SnapshotRetries is how many optimistic double collects Snapshot
// attempts before falling back to the descriptor path; Snapshot's return
// value exceeds it iff the fallback ran.
const SnapshotRetries = 4

// lockWord is one shard's transaction lock, padded so neighboring
// shards' locks do not share a cache line (every single-key update loads
// its shard's lock word once).
type lockWord struct {
	v atomic.Uint64
	_ [56]byte
}

// descriptor is one process's published transaction. All fields that
// helpers read are atomic words: the owner rewrites them between
// incarnations while a late helper of the previous incarnation may still
// be looking, so the accesses must be well-defined — and helpers guard
// against acting on the wrong incarnation by re-validating the sequence
// number (see helpRef).
type descriptor struct {
	status atomic.Uint64 // seq<<2 | phase
	nsh    atomic.Uint64 // number of target shards this incarnation
	_      [48]byte      // keep neighboring descriptors' hot words apart
	shards []atomic.Uint64
	oldv   []atomic.Uint64 // nsh rows of w expected old words
	newv   []atomic.Uint64 // nsh rows of w replacement words
}

// ownerLocal is per-process scratch, touched only by the goroutine
// driving that process id (the same discipline as a shard.MapHandle).
type ownerLocal struct {
	full []uint64   // one LL/SC scratch frame of w words
	ds   []int      // distinct ascending target shards
	olds []uint64   // k rows of w collected words
	news []uint64   // k rows of w words handed to f
	vals [][]uint64 // per-key aliases into news
	// frames is the helping scratch pool, indexed by depth: helpRef can
	// nest (helping a transaction whose lock phase trips over a third
	// transaction's lock), but each level needs its own frame and the
	// depth is bounded (lock chains strictly ascend in shard index), so
	// the pool grows to the observed maximum once and helping is
	// allocation-free afterwards.
	frames []*frame
	depth  int
	_      [64]byte
}

// frame is a private, immutable copy of one descriptor incarnation's
// data, the only thing the transaction state machine reads while it
// works. Helpers copy it out of the descriptor and re-validate the
// sequence number afterwards; the owner aliases its own scratch. Working
// from a frame (instead of re-reading the descriptor) means a helper
// that outlives the incarnation can never act on the NEXT transaction's
// shard list or values.
type frame struct {
	shards []int
	oldv   []uint64 // len(shards) rows of w words
	newv   []uint64
	full   []uint64 // LL/SC scratch, w words
}

// Engine provides multi-shard atomic operations for N processes over a
// ShardSet. Like the objects underneath, process id p must be driven by
// at most one goroutine at a time.
type Engine struct {
	s       ShardSet
	stepper Stepper // nil outside the simulator
	k       int     // shards
	w       int     // words per shard
	locks   []lockWord
	descs   []descriptor
	local   []ownerLocal
	all     []int // [0,k): Snapshot's fallback target list
	// ctrs are the engine's contention counters (helps, retries),
	// striped per process so bumping them costs no shared cache line —
	// these fire exactly when shards are already contended, the worst
	// possible moment to add false sharing.
	ctrs *obs.Counters
}

// Engine counter indices within ctrs.
const (
	ctrHelps   = iota // helpRef invocations: lock references found in the way
	ctrRetries        // extra Update attempts beyond the first (conflict aborts)
	numEngineCtrs
)

// Stats is a snapshot of the engine's contention counters.
type Stats struct {
	// Helps counts lock references processes found in their way and
	// helped to completion (or recognized as stale and cleared) —
	// the paper's helping mechanism firing.
	Helps uint64
	// Retries counts Update attempts beyond each call's first: how
	// often a conflicting commit forced a collect-lock cycle to rerun.
	Retries uint64
}

// Stats returns the engine's contention counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Helps:   e.ctrs.Sum(ctrHelps),
		Retries: e.ctrs.Sum(ctrRetries),
	}
}

// New builds an engine for n processes over s.
func New(s ShardSet, n int) (*Engine, error) {
	k, w := s.Shards(), s.Words()
	if k < 1 || w < 1 {
		return nil, fmt.Errorf("txn: need >=1 shards of >=1 words, got %d of %d", k, w)
	}
	if n < 1 || n > MaxProcs {
		return nil, fmt.Errorf("txn: process count %d outside [1,%d]", n, MaxProcs)
	}
	e := &Engine{s: s, k: k, w: w,
		locks: make([]lockWord, k),
		descs: make([]descriptor, n),
		local: make([]ownerLocal, n),
		all:   make([]int, k),
		ctrs:  obs.NewCounters(n, numEngineCtrs),
	}
	e.stepper, _ = s.(Stepper)
	for i := range e.all {
		e.all[i] = i
	}
	for p := range e.descs {
		d := &e.descs[p]
		d.shards = make([]atomic.Uint64, k)
		d.oldv = make([]atomic.Uint64, k*w)
		d.newv = make([]atomic.Uint64, k*w)
		l := &e.local[p]
		l.full = make([]uint64, w)
		l.olds = make([]uint64, k*w)
		l.news = make([]uint64, k*w)
	}
	return e, nil
}

// Shards returns K, the shard count.
func (e *Engine) Shards() int { return e.k }

// Words returns the per-shard value width in 64-bit words.
func (e *Engine) Words() int { return e.w }

// step yields to the simulator's scheduler, when there is one.
func (e *Engine) step(p int) {
	if e.stepper != nil {
		e.stepper.Step(p)
	}
}

// Locked returns zero when no transaction is mid-commit on shard sh,
// else the lock reference to pass to Help. The single-key fast path
// loads it once per attempt, between its LL and SC.
func (e *Engine) Locked(p, sh int) uint64 {
	e.step(p)
	if v := e.locks[sh].v.Load(); locked(v) {
		return v
	}
	return 0
}

// Help completes or clears the transaction whose lock reference ref was
// observed on shard sh, on behalf of process p. Callers (e.g. the
// single-key update fast path) re-read the shard afterwards.
func (e *Engine) Help(p, sh int, ref uint64) { e.helpRef(p, sh, ref) }

// Update atomically applies f to the user values of the listed shards
// (one entry per key; duplicates collapse onto one shard). f receives one
// slice per input position, in input order — entries naming the same
// shard alias the same slice — and must mutate them in place. Like a
// single-key update's function, f may run several times (once per
// attempt) and therefore must be deterministic and side-effect free.
//
// Update returns the number of collect-lock attempts; 1 means no
// conflicting operation intervened. Lock-free: an attempt only aborts
// when another process's operation committed on one of the target shards
// between collect and lock.
func (e *Engine) Update(p int, keyShards []int, f func(vals [][]uint64)) int {
	if len(keyShards) == 0 {
		return 0
	}
	l := &e.local[p]
	d := &e.descs[p]
	w := e.w

	// Distinct ascending target shard list.
	ds := l.ds[:0]
	for _, sh := range keyShards {
		if sh < 0 || sh >= e.k {
			panic(fmt.Sprintf("txn: shard index %d out of range [0,%d)", sh, e.k))
		}
		pos := sort.SearchInts(ds, sh)
		if pos < len(ds) && ds[pos] == sh {
			continue
		}
		ds = append(ds, 0)
		copy(ds[pos+1:], ds[pos:])
		ds[pos] = sh
	}
	l.ds = ds

	// vals[i] aliases the news row of keyShards[i]'s shard.
	vals := l.vals[:0]
	for _, sh := range keyShards {
		j := sort.SearchInts(ds, sh)
		vals = append(vals, l.news[j*w:(j+1)*w:(j+1)*w])
	}
	l.vals = vals

	for attempt := 1; ; attempt++ {
		// Collect stable values and run f on a private copy.
		for j, sh := range ds {
			e.stableRead(p, sh, l.olds[j*w:(j+1)*w])
		}
		copy(l.news[:len(ds)*w], l.olds[:len(ds)*w])
		f(vals)

		// Publish: from here any process can finish this transaction.
		seq := d.status.Load() >> 2
		d.nsh.Store(uint64(len(ds)))
		for j, sh := range ds {
			d.shards[j].Store(uint64(sh))
			for t := 0; t < w; t++ {
				d.oldv[j*w+t].Store(l.olds[j*w+t])
				d.newv[j*w+t].Store(l.news[j*w+t])
			}
		}
		e.step(p)
		d.status.Store(seq<<2 | phaseActive)

		fr := &frame{shards: ds, oldv: l.olds[:len(ds)*w], newv: l.news[:len(ds)*w], full: l.full}
		e.run(p, p, seq, fr)

		outcome := d.status.Load() & phaseMask
		// Recycle the descriptor under the next sequence number. All our
		// lock references are gone (release re-checked each shard until
		// the reference was absent), so any reference carrying the old
		// seq that appears later is a recognizably stale late-helper
		// install, which every visitor clears on sight.
		e.step(p)
		d.status.Store((seq + 1) << 2)
		if outcome == phaseCommitted {
			if attempt > 1 {
				e.ctrs.Add(p, ctrRetries, uint64(attempt-1))
			}
			return attempt
		}
	}
}

// Snapshot fills dst — K rows of Words() words — with a cross-shard
// linearizable snapshot: all K values coexisted at one instant between
// Snapshot's invocation and response. It returns the number of attempts;
// a value above SnapshotRetries means the optimistic double collect kept
// getting invalidated and the descriptor fallback (an identity
// transaction over all K shards) produced the cut. Lock-free.
func (e *Engine) Snapshot(p int, dst [][]uint64) int {
	if len(dst) != e.k {
		panic(fmt.Sprintf("txn: snapshot buffer has %d rows, want %d", len(dst), e.k))
	}
	for i, row := range dst {
		if len(row) != e.w {
			panic(fmt.Sprintf("txn: snapshot row %d has %d words, want %d", i, len(row), e.w))
		}
	}
	for attempt := 1; attempt <= SnapshotRetries; attempt++ {
		// Pass 1: LL every shard. Pass 2: VL every shard. Every LL
		// precedes every VL, so if no VL fails, all K values were
		// simultaneously current at the instant between the passes.
		//
		// An attempt must contain NO helping between its LLs and VLs:
		// helping re-LLs already collected shards under this same process
		// id, which would make their VLs validate the helper's fresh link
		// instead of the collecting LL and let a torn view through. So a
		// locked shard aborts the attempt, gets helped out of the way,
		// and the collect restarts from scratch.
		lockedShard, lockedRef := -1, uint64(0)
		for i := 0; i < e.k; i++ {
			e.s.LL(p, i, dst[i])
			e.step(p)
			if v := e.locks[i].v.Load(); locked(v) {
				lockedShard, lockedRef = i, v
				break
			}
		}
		if lockedShard >= 0 {
			e.helpRef(p, lockedShard, lockedRef)
			continue
		}
		ok := true
		for i := 0; i < e.k; i++ {
			if !e.s.VL(p, i) {
				ok = false
				break
			}
		}
		if ok {
			return attempt
		}
	}
	// Descriptor fallback: an identity transaction over every shard. Its
	// f sees the collected values of the attempt that commits — a
	// consistent cut as of the moment all K locks were held.
	e.Update(p, e.all, func(vals [][]uint64) {
		for i, v := range vals {
			copy(dst[i], v)
		}
	})
	return SnapshotRetries + 1
}

// LockedShards returns how many shards currently carry a held lock
// reference — a post-run diagnostic for tests; it is not linearizable
// against concurrent operations and takes no scheduling steps.
func (e *Engine) LockedShards() int {
	n := 0
	for i := range e.locks {
		if locked(e.locks[i].v.Load()) {
			n++
		}
	}
	return n
}

// Read copies a stable (no transaction mid-commit) value of shard sh
// into dst. The value is the shard's logical value at some instant during
// the call. Lock-free.
func (e *Engine) Read(p, sh int, dst []uint64) {
	if len(dst) != e.w {
		panic(fmt.Sprintf("txn: read buffer has %d words, want %d", len(dst), e.w))
	}
	e.stableRead(p, sh, dst)
}

// stableRead reads shard sh's logical value into dst: LL, then check the
// lock word (helping any pending transaction out of the way), then VL.
// The VL closes the last gap: a release could have rewritten the shard
// between our LL and an unlocked lock-word read, in which case the LL'd
// value predates a committed transaction — the release's SC broke our
// link, so VL fails and we re-read. On return, p's link on sh is from
// the final (validated) LL.
func (e *Engine) stableRead(p, sh int, dst []uint64) {
	for {
		e.s.LL(p, sh, dst)
		e.step(p)
		if v := e.locks[sh].v.Load(); locked(v) {
			e.helpRef(p, sh, v)
			continue
		}
		if e.s.VL(p, sh) {
			return
		}
	}
}

// helpRef reacts to lock reference ref observed on shard sh: if the
// owning descriptor is still on that incarnation, copy its data out,
// re-validate the incarnation, and drive the transaction to completion;
// otherwise the reference is a stale late-helper install — clear it (a
// lock install never touches the shard value, so clearing the lock word
// is the identity).
func (e *Engine) helpRef(p, sh int, ref uint64) {
	e.ctrs.Inc(p, ctrHelps)
	q := refProc(ref)
	if q >= len(e.descs) {
		e.clearStale(p, sh, ref)
		return
	}
	d := &e.descs[q]
	e.step(p)
	st := d.status.Load()
	if st>>2&refSeqMask != refSeq(ref) || st&phaseMask == phaseFree {
		// Sequence numbers only grow, so a mismatch can never become a
		// match again: the reference is stale forever and clearing it is
		// safe at any later time.
		e.clearStale(p, sh, ref)
		return
	}
	seq := st >> 2
	// Copy the incarnation's data into a private frame, then re-check
	// that the incarnation is still current. The owner rewrites these
	// fields only after bumping the sequence number, so a clean re-check
	// proves the copy is this incarnation's data, not the next one's.
	w := e.w
	nsh := int(d.nsh.Load())
	if nsh < 1 || nsh > e.k {
		return
	}
	fr := e.getFrame(p, nsh)
	defer e.putFrame(p)
	for j := 0; j < nsh; j++ {
		fr.shards[j] = int(d.shards[j].Load())
		for t := 0; t < w; t++ {
			fr.oldv[j*w+t] = d.oldv[j*w+t].Load()
			fr.newv[j*w+t] = d.newv[j*w+t].Load()
		}
	}
	e.step(p)
	if d.status.Load()>>2 != seq {
		// Recycled mid-copy; the caller re-reads the shard and, on the
		// next encounter of the (now provably stale) reference, clears it.
		return
	}
	for j := 0; j < nsh; j++ {
		if fr.shards[j] < 0 || fr.shards[j] >= e.k {
			return
		}
	}
	e.run(p, q, seq, fr)
}

// getFrame checks a frame for nsh shards out of process p's depth-indexed
// helping pool, growing the pool on first use of a new nesting depth;
// putFrame returns the most recent one.
func (e *Engine) getFrame(p, nsh int) *frame {
	l := &e.local[p]
	if l.depth == len(l.frames) {
		l.frames = append(l.frames, &frame{
			shards: make([]int, e.k),
			oldv:   make([]uint64, e.k*e.w),
			newv:   make([]uint64, e.k*e.w),
			full:   make([]uint64, e.w),
		})
	}
	fr := l.frames[l.depth]
	l.depth++
	fr.shards = fr.shards[:nsh]
	fr.oldv = fr.oldv[:nsh*e.w]
	fr.newv = fr.newv[:nsh*e.w]
	return fr
}

func (e *Engine) putFrame(p int) { e.local[p].depth-- }

// clearStale removes a stale lock reference from shard sh's lock word
// (leaving the reference's free marker, so the slot stays
// never-repeating). A CAS failure is fine: the reference already
// changed, so somebody else dealt with it (callers re-read regardless).
func (e *Engine) clearStale(p, sh int, ref uint64) {
	e.step(p)
	e.locks[sh].v.CompareAndSwap(ref, freeMarker(ref))
}

// run drives descriptor q's transaction with sequence number seq to
// completion (through release), performing shard operations as process p
// and reading the transaction's data exclusively from fr. It returns as
// soon as the descriptor leaves that incarnation.
func (e *Engine) run(p, q int, seq uint64, fr *frame) {
	d := &e.descs[q]
	ref := makeRef(q, seq)
	for {
		e.step(p)
		st := d.status.Load()
		if st>>2 != seq {
			return // recycled: that incarnation is fully finished
		}
		switch st & phaseMask {
		case phaseActive:
			e.lockAll(p, d, seq, ref, fr)
		case phaseCommitted:
			e.release(p, d, seq, ref, true, fr)
			return
		case phaseAborted:
			e.release(p, d, seq, ref, false, fr)
			return
		default: // phaseFree: owner is between transactions; nothing to do
			return
		}
	}
}

// lockAll is the lock-and-seal phase: visit the target shards in
// ascending order; on each, claim the lock word, verify the recorded old
// value, and seal the shard with a value-unchanged SC. The seal's
// version bump cuts off every writer whose lock-word check predates the
// claim, so a sealed shard's value is frozen until release. The phase
// ends by moving the descriptor to Committed (all sealed) or Aborted (a
// value mismatch), either of which may already have been done by a
// concurrent helper.
//
// Every status and lock-word check that justifies an SC sits between
// that SC's LL and the SC itself, so the justification cannot be stale
// relative to the shard state the SC is conditioned on. A helper stalled
// between a check and a lock-word CAS can at worst re-install the
// reference after the transaction finished — a stale reference that
// every later visitor recognizes by its sequence number and clears,
// value untouched.
func (e *Engine) lockAll(p int, d *descriptor, seq, ref uint64, fr *frame) {
	w := e.w
	for j, sh := range fr.shards {
		lw := &e.locks[sh].v
		for {
			e.step(p)
			cur := lw.Load()
			if cur != ref && locked(cur) {
				e.helpRef(p, sh, cur)
				continue
			}
			if cur != ref {
				// cur is a free marker: claim it. The marker load
				// precedes the status check on purpose — a current
				// Active phase proves the marker predates this
				// transaction's commit, and free markers never repeat,
				// so the CAS cannot land atop any later lock cycle of
				// this shard.
				e.step(p)
				if d.status.Load() != seq<<2|phaseActive {
					return // a helper finished (or aborted) the lock phase
				}
				e.step(p)
				lw.CompareAndSwap(cur, ref) // next iteration verifies and seals
				continue
			}
			// Claimed for this transaction: verify and seal.
			e.s.LL(p, sh, fr.full)
			e.step(p)
			if d.status.Load() != seq<<2|phaseActive {
				return
			}
			e.step(p)
			if lw.Load() != ref {
				continue
			}
			match := true
			for t := 0; t < w; t++ {
				if fr.full[t] != fr.oldv[j*w+t] {
					match = false
					break
				}
			}
			if !match {
				e.step(p)
				d.status.CompareAndSwap(seq<<2|phaseActive, seq<<2|phaseAborted)
				return
			}
			if e.s.SC(p, sh, fr.full) {
				break // sealed: the value is frozen under our reference
			}
			// A writer or another sealer slipped in; re-verify.
		}
	}
	// Commit point: every target shard is locked, sealed, and verified.
	e.step(p)
	d.status.CompareAndSwap(seq<<2|phaseActive, seq<<2|phaseCommitted)
}

// release is the unlock phase: on commit, SC the recorded new value into
// every target shard that still carries the lock reference and clear the
// reference; on abort, just clear the references (a claim or seal never
// changed any value).
//
// The status re-check between the LL and the SC makes the data write
// safe under descriptor reuse: new values are written only while the
// incarnation is provably still current at a moment AFTER the lock
// reference was observed, which rules out writing through a stale
// late-helper install (those can only exist once the incarnation is
// over, and are cleared here value-untouched instead).
func (e *Engine) release(p int, d *descriptor, seq, ref uint64, commit bool, fr *frame) {
	w := e.w
	for j, sh := range fr.shards {
		lw := &e.locks[sh].v
		for {
			e.step(p)
			if lw.Load() != ref {
				break // released already (or, under abort, never claimed)
			}
			if !commit {
				// The claim and seal left the value untouched; dropping
				// the reference is the whole abort.
				e.step(p)
				lw.CompareAndSwap(ref, freeMarker(ref))
				break
			}
			e.s.LL(p, sh, fr.full)
			e.step(p)
			if lw.Load() != ref {
				break
			}
			e.step(p)
			if d.status.Load() != seq<<2|phaseCommitted {
				// Recycled: the reference under our eyes is a stale late
				// install — clear it without touching the value.
				e.step(p)
				lw.CompareAndSwap(ref, freeMarker(ref))
				break
			}
			copy(fr.full, fr.newv[j*w:(j+1)*w])
			if e.s.SC(p, sh, fr.full) {
				e.step(p)
				lw.CompareAndSwap(ref, freeMarker(ref))
				break
			}
			// Our link broke: another releaser's SC (or a stale seal
			// bump) landed; re-read and re-decide.
		}
	}
}
