// Package mwtest is the conformance suite for W-word LL/SC/VL objects: a
// set of semantic tests run identically against the paper's algorithm and
// every baseline, so "implements mwobj.MW" means the same thing everywhere.
package mwtest

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"mwllsc/internal/check"
	"mwllsc/internal/mwobj"
)

// Factory builds a fresh object for n processes and w words holding
// initial; tests call it once per scenario.
type Factory = mwobj.Factory

// Pattern returns the w-word test value with word j = base+j.
func Pattern(base uint64, w int) []uint64 {
	v := make([]uint64, w)
	for j := range v {
		v[j] = base + uint64(j)
	}
	return v
}

// RunConformance runs the full semantic suite against the factory.
func RunConformance(t *testing.T, f Factory) {
	t.Helper()
	t.Run("InitialValue", func(t *testing.T) { testInitialValue(t, f) })
	t.Run("SequentialSemantics", func(t *testing.T) { testSequentialSemantics(t, f) })
	t.Run("InterferenceFailsSC", func(t *testing.T) { testInterferenceFailsSC(t, f) })
	t.Run("FailedSCPreservesValue", func(t *testing.T) { testFailedSCPreservesValue(t, f) })
	t.Run("SingleProcess", func(t *testing.T) { testSingleProcess(t, f) })
	t.Run("CounterInvariant", func(t *testing.T) { testCounterInvariant(t, f) })
	t.Run("NoTornReads", func(t *testing.T) { testNoTornReads(t, f) })
	t.Run("VLFalseImpliesSCFails", func(t *testing.T) { testVLFalseImpliesSCFails(t, f) })
	t.Run("SmallHistoriesLinearizable", func(t *testing.T) { testSmallHistoriesLinearizable(t, f) })
	t.Run("SpaceReporting", func(t *testing.T) { testSpaceReporting(t, f) })
}

// testSpaceReporting checks that implementations reporting a footprint do
// so consistently: positive physical bytes, at least the register words
// they claim, and monotone in both N and W.
func testSpaceReporting(t *testing.T, f Factory) {
	obj, err := f(2, 2, Pattern(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := obj.(mwobj.Spacer); !ok {
		t.Skip("implementation does not report space")
	}
	space := func(n, w int) mwobj.Space {
		o, err := f(n, w, Pattern(0, w))
		if err != nil {
			t.Fatal(err)
		}
		return o.(mwobj.Spacer).Space()
	}
	base := space(2, 2)
	if base.PhysBytes <= 0 {
		t.Fatalf("PhysBytes = %d, want > 0", base.PhysBytes)
	}
	if base.PhysBytes < base.RegisterWords*8 {
		t.Fatalf("PhysBytes %d below register floor %d", base.PhysBytes, base.RegisterWords*8)
	}
	widerW := space(2, 16)
	if widerW.PaperWords() < base.PaperWords() || widerW.PhysBytes < base.PhysBytes {
		t.Fatalf("space not monotone in W: %+v vs %+v", widerW, base)
	}
	widerN := space(8, 2)
	if widerN.PhysBytes < base.PhysBytes {
		t.Fatalf("physical space not monotone in N: %+v vs %+v", widerN, base)
	}
}

func mustNew(t *testing.T, f Factory, n, w int, initial []uint64) mwobj.MW {
	t.Helper()
	o, err := f(n, w, initial)
	if err != nil {
		t.Fatalf("factory(n=%d, w=%d): %v", n, w, err)
	}
	if o.N() != n || o.W() != w {
		t.Fatalf("N/W = %d/%d, want %d/%d", o.N(), o.W(), n, w)
	}
	return o
}

func testInitialValue(t *testing.T, f Factory) {
	for _, cfg := range []struct{ n, w int }{{1, 1}, {2, 3}, {4, 8}} {
		o := mustNew(t, f, cfg.n, cfg.w, Pattern(7, cfg.w))
		got := make([]uint64, cfg.w)
		o.LL(0, got)
		for j, x := range got {
			if x != 7+uint64(j) {
				t.Fatalf("n=%d w=%d: initial word %d = %d", cfg.n, cfg.w, j, x)
			}
		}
	}
}

func testSequentialSemantics(t *testing.T, f Factory) {
	o := mustNew(t, f, 2, 2, Pattern(0, 2))
	v := make([]uint64, 2)

	o.LL(0, v)
	if !o.VL(0) {
		t.Fatal("VL after quiet LL = false")
	}
	if !o.SC(0, Pattern(10, 2)) {
		t.Fatal("SC after quiet LL failed")
	}
	if o.VL(0) {
		t.Fatal("VL after own successful SC = true")
	}
	if o.SC(0, Pattern(20, 2)) {
		t.Fatal("SC without fresh LL succeeded")
	}
	o.LL(1, v)
	if v[0] != 10 || v[1] != 11 {
		t.Fatalf("value = %v, want [10 11]", v)
	}
}

func testInterferenceFailsSC(t *testing.T, f Factory) {
	o := mustNew(t, f, 3, 2, Pattern(0, 2))
	v := make([]uint64, 2)
	o.LL(0, v)
	o.LL(1, v)
	if !o.SC(1, Pattern(5, 2)) {
		t.Fatal("SC(1) failed")
	}
	if o.VL(0) {
		t.Fatal("VL(0) = true after interference")
	}
	if o.SC(0, Pattern(9, 2)) {
		t.Fatal("SC(0) succeeded after interference")
	}
	o.LL(2, v)
	if v[0] != 5 {
		t.Fatalf("value = %v, want base 5", v)
	}
}

func testFailedSCPreservesValue(t *testing.T, f Factory) {
	o := mustNew(t, f, 2, 3, Pattern(1, 3))
	v := make([]uint64, 3)
	o.LL(0, v)
	o.LL(1, v)
	if !o.SC(0, Pattern(2, 3)) {
		t.Fatal("SC(0) failed")
	}
	if o.SC(1, Pattern(3, 3)) {
		t.Fatal("SC(1) succeeded")
	}
	o.LL(0, v)
	if v[0] != 2 {
		t.Fatalf("failed SC changed value: %v", v)
	}
}

func testSingleProcess(t *testing.T, f Factory) {
	o := mustNew(t, f, 1, 2, Pattern(0, 2))
	v := make([]uint64, 2)
	for i := 0; i < 200; i++ {
		o.LL(0, v)
		if v[1] != v[0]+1 {
			t.Fatalf("round %d: torn %v", i, v)
		}
		if !o.SC(0, Pattern(v[0]+1, 2)) {
			t.Fatalf("round %d: SC failed", i)
		}
	}
	o.LL(0, v)
	if v[0] != 200 {
		t.Fatalf("final %d, want 200", v[0])
	}
}

func testCounterInvariant(t *testing.T, f Factory) {
	configs := []struct{ n, w, ops int }{
		{2, 1, 3000}, {4, 4, 1500}, {8, 8, 800},
	}
	for _, cfg := range configs {
		t.Run(fmt.Sprintf("n%d_w%d", cfg.n, cfg.w), func(t *testing.T) {
			o := mustNew(t, f, cfg.n, cfg.w, Pattern(0, cfg.w))
			var wg sync.WaitGroup
			successes := make([]int64, cfg.n)
			for p := 0; p < cfg.n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					v := make([]uint64, cfg.w)
					for i := 0; i < cfg.ops; i++ {
						o.LL(p, v)
						if o.SC(p, Pattern(v[0]+1, cfg.w)) {
							successes[p]++
						}
					}
				}(p)
			}
			wg.Wait()
			var total int64
			for _, s := range successes {
				total += s
			}
			v := make([]uint64, cfg.w)
			o.LL(0, v)
			if int64(v[0]) != total {
				t.Fatalf("final counter %d != %d successful SCs", v[0], total)
			}
			if total == 0 {
				t.Fatal("no SC ever succeeded")
			}
		})
	}
}

func testNoTornReads(t *testing.T, f Factory) {
	const (
		n   = 6
		w   = 16
		ops = 600
	)
	o := mustNew(t, f, n, w, Pattern(0, w))
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, w)
			for i := 0; i < ops; i++ {
				o.LL(p, v)
				for j := range v {
					if v[j] != v[0]+uint64(j) {
						t.Errorf("p%d round %d: torn read %v", p, i, v)
						return
					}
				}
				o.SC(p, Pattern(uint64(1+p*ops+i)*64, w))
			}
		}(p)
	}
	wg.Wait()
}

func testVLFalseImpliesSCFails(t *testing.T, f Factory) {
	const n = 4
	o := mustNew(t, f, n, 2, Pattern(0, 2))
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, 2)
			for i := 0; i < 1200; i++ {
				o.LL(p, v)
				valid := o.VL(p)
				if ok := o.SC(p, Pattern(v[0]+1, 2)); ok && !valid {
					t.Errorf("p%d: SC succeeded after VL=false", p)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func testSmallHistoriesLinearizable(t *testing.T, f Factory) {
	const (
		n      = 3
		w      = 4
		opsPer = 5
		rounds = 120
	)
	for round := 0; round < rounds; round++ {
		o := mustNew(t, f, n, w, Pattern(0, w))
		rec := check.NewRecorder(n)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				v := make([]uint64, w)
				for i := 0; i < opsPer; i++ {
					inv := rec.Begin()
					o.LL(p, v)
					rec.RecordLL(p, check.PatternValue(v), inv, rec.End())

					inv = rec.Begin()
					ok := o.VL(p)
					rec.RecordVL(p, ok, inv, rec.End())

					id := uint64(1 + p*opsPer + i)
					inv = rec.Begin()
					ok = o.SC(p, Pattern(id, w))
					rec.RecordSC(p, strconv.FormatUint(id, 10), ok, inv, rec.End())
				}
			}(p)
		}
		wg.Wait()
		if err := check.CheckLLSC(rec.History(), "0"); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
