package fault

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy is a loopback TCP proxy that forwards every accepted connection
// to a fixed target, wrapping the client-facing side in a fault Conn.
// Tests point a real client at Addr() and a real server at the target,
// then inject network hostility between them without either side
// cooperating: read-side faults hit the request stream, write-side
// faults hit the response stream, DropAll simulates a network blip, and
// SetReject simulates an unreachable host during reconnect storms.
//
// Each accepted connection gets its own deterministic seed derived from
// the proxy seed and the connection's accept ordinal.
type Proxy struct {
	ln     net.Listener
	target string
	seed   uint64
	read   Faults
	write  Faults

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	reject   atomic.Bool
	accepted atomic.Int64
	wg       sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards to target.
func NewProxy(target string, seed uint64, read, write Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, seed: seed, read: read, write: write,
		conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted returns how many connections the proxy has accepted — the
// reconnect count, from a resilience test's point of view.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// SetReject makes the proxy close new connections immediately (true),
// simulating a dead host, or accept them again (false).
func (p *Proxy) SetReject(v bool) { p.reject.Store(v) }

// DropAll abortively closes every live proxied connection; established
// traffic dies mid-flight while the listener keeps accepting.
func (p *Proxy) DropAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for nc := range p.conns {
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		nc.Close()
	}
}

// Close stops accepting, drops every connection, and waits for the
// forwarder goroutines to drain.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.DropAll()
	p.wg.Wait()
}

func (p *Proxy) track(nc net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[nc] = struct{}{}
	return true
}

func (p *Proxy) untrack(nc net.Conn) {
	p.mu.Lock()
	delete(p.conns, nc)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.reject.Load() {
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			nc.Close()
			continue
		}
		i := p.accepted.Add(1)
		bc, err := net.Dial("tcp", p.target)
		if err != nil {
			nc.Close()
			continue
		}
		wc := Wrap(nc, p.seed+uint64(i)*0x9e3779b97f4a7c15, p.read, p.write)
		if !p.track(wc) || !p.track(bc) {
			nc.Close()
			bc.Close()
			return
		}
		p.wg.Add(2)
		go p.forward(wc, bc)
		go p.forward(bc, wc)
	}
}

// forward pumps src into dst until either side dies, then tears both
// down so the peer notices promptly.
func (p *Proxy) forward(dst, src net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	io.CopyBuffer(dst, src, buf)
	src.Close()
	dst.Close()
	p.untrack(src)
	p.untrack(dst)
}
