package fault

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// FilesConfig configures an error-injecting file layer for the
// persistence log. Counters are shared across every file opened by the
// same Files, so "fail after N bytes" means N bytes across all shard
// logs together — matching how a sick disk fails the whole store, not
// one file. The zero value injects nothing.
type FilesConfig struct {
	// Seed drives the short-write truncation points.
	Seed uint64
	// WriteLatency is added to every Write — a slow disk.
	WriteLatency time.Duration
	// WriteBytesPerSec throttles Writes to this many bytes per second,
	// serialized across every file sharing the Files — a disk with
	// bounded bandwidth. Unlike WriteLatency (a per-call seek cost, which
	// batching amortizes), a byte-rate cost is the same per record no
	// matter how records coalesce into writes, so it pins an operation
	// throughput ceiling that concurrency cannot lift — what E16 uses to
	// make overload reproducible across machines. 0 disables.
	WriteBytesPerSec int64
	// SyncLatency is added to every Sync that is not failed by
	// FailFsyncAfter — a slow disk's flush, and the knob that pins a
	// deterministic IO cost regardless of what the host's filesystem
	// actually does (E16 uses it to make fsync-bound capacity
	// reproducible across machines).
	SyncLatency time.Duration
	// ShortWriteEvery makes every Nth Write persist only a seeded prefix
	// of its buffer and return an error wrapping ErrInjected — a torn
	// append the recovery path must truncate. 0 disables.
	ShortWriteEvery int
	// FailWriteAfterBytes fails every Write once this many bytes have
	// been written across all files; the write that crosses the
	// threshold persists exactly up to it (a torn record at a known
	// offset). 0 disables.
	FailWriteAfterBytes int64
	// FailFsyncAfter makes every Sync fail (without syncing) after this
	// many Syncs have succeeded across all files. 0 disables.
	FailFsyncAfter int
}

// Files opens real files whose Write/Sync inject the configured
// failures deterministically. A *File satisfies the persist.LogFile
// interface; wire it in with
//
//	ff := fault.NewFiles(cfg)
//	opts.OpenLog = func(path string) (persist.LogFile, error) { return ff.Open(path) }
type Files struct {
	mu       sync.Mutex
	cfg      FilesConfig
	rng      rng
	bytes    int64
	writes   int64
	syncs    int64
	injected int64
	diskFree time.Time // WriteBytesPerSec pacing: when the modeled disk next idles
}

// NewFiles builds the shared injection state for one store.
func NewFiles(cfg FilesConfig) *Files {
	return &Files{cfg: cfg, rng: rng{s: cfg.Seed}}
}

// Injected returns how many failures have been injected so far — a
// test's proof the fault actually fired.
func (fs *Files) Injected() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injected
}

// Open opens path for appending (creating it if needed) behind the
// injection layer.
func (fs *Files) Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, f: f}, nil
}

// File is one log file behind the injection layer.
type File struct {
	fs *Files
	f  *os.File
}

// Write appends b, injecting configured torn or refused writes.
func (f *File) Write(b []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cfg.WriteLatency > 0 {
		time.Sleep(fs.cfg.WriteLatency)
	}
	if r := fs.cfg.WriteBytesPerSec; r > 0 {
		// Virtual-time pacing: advance the disk-free clock by this
		// write's transfer time and sleep until it. Sleeping under the
		// mutex serializes writers like one device; charging a clock
		// instead of sleeping a fixed amount keeps the long-run byte rate
		// exact even when the scheduler overshoots short sleeps — the
		// overshoot leaves the clock in the past and later writes pass
		// without sleeping until the debt is repaid.
		now := time.Now()
		if fs.diskFree.Before(now) {
			fs.diskFree = now
		}
		fs.diskFree = fs.diskFree.Add(time.Duration(int64(len(b)) * int64(time.Second) / r))
		if wait := fs.diskFree.Sub(now); wait > 0 {
			time.Sleep(wait)
		}
	}
	fs.writes++
	if n := fs.cfg.FailWriteAfterBytes; n > 0 {
		if fs.bytes >= n {
			fs.injected++
			return 0, fmt.Errorf("write refused after %d bytes: %w", n, ErrInjected)
		}
		if fs.bytes+int64(len(b)) > n {
			k := int(n - fs.bytes)
			k, _ = f.f.Write(b[:k])
			fs.bytes += int64(k)
			fs.injected++
			return k, fmt.Errorf("torn write at byte budget %d: %w", n, ErrInjected)
		}
	}
	if e := fs.cfg.ShortWriteEvery; e > 0 && fs.writes%int64(e) == 0 && len(b) > 1 {
		k := 1 + int(fs.rng.next()%uint64(len(b)-1))
		k, _ = f.f.Write(b[:k])
		fs.bytes += int64(k)
		fs.injected++
		return k, fmt.Errorf("short write (%d of %d bytes): %w", k, len(b), ErrInjected)
	}
	k, err := f.f.Write(b)
	fs.bytes += int64(k)
	return k, err
}

// Sync fsyncs, or fails without syncing once the budget is spent.
func (f *File) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	if n := fs.cfg.FailFsyncAfter; n > 0 && fs.syncs >= int64(n) {
		fs.injected++
		fs.mu.Unlock()
		return fmt.Errorf("fsync failed after %d rounds: %w", n, ErrInjected)
	}
	fs.syncs++
	fs.mu.Unlock()
	// Sleep outside the lock: concurrent syncs of different shard logs
	// overlap, like independent flushes in a device queue.
	if d := fs.cfg.SyncLatency; d > 0 {
		time.Sleep(d)
	}
	return f.f.Sync()
}

// Close closes the underlying file.
func (f *File) Close() error { return f.f.Close() }
