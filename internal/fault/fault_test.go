package fault

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// frame builds a length-prefixed frame with n payload bytes.
func frame(n int) []byte {
	b := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(b, uint32(n))
	for i := 0; i < n; i++ {
		b[4+i] = byte(i)
	}
	return b
}

func TestFrameTracker(t *testing.T) {
	var ft frameTracker
	stream := append(append(frame(8), frame(3)...), frame(0)...)
	// Feed one byte at a time; boundaries must appear exactly after each
	// frame, nowhere else.
	wantBoundary := map[int]bool{12: true, 19: true, 23: true}
	for i := range stream {
		ft.feed(stream[i : i+1])
		if got, want := ft.atBoundary(), wantBoundary[i+1] || i+1 == 0; got != want {
			t.Fatalf("after %d bytes: atBoundary=%v want %v", i+1, got, want)
		}
	}
	if ft.until() != 4 {
		t.Fatalf("until at boundary = %d, want 4 (next header)", ft.until())
	}
}

// tcpPair returns two ends of a real loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnCutAtFrameBoundary(t *testing.T) {
	client, server := tcpPair(t)
	// Threshold lands mid-frame (5 of a 12-byte frame); the cut must
	// wait for the boundary so the peer sees exactly one whole frame.
	fc := Wrap(client, 1, Faults{}, Faults{CutAfterBytes: 5, CutAtFrame: true})
	var got bytes.Buffer
	var rerr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, rerr = io.Copy(&got, server)
	}()
	payload := append(frame(8), frame(8)...)
	n, err := fc.Write(payload)
	if !errors.Is(err, ErrCut) || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = %d, %v; want ErrCut wrapping ErrInjected", n, err)
	}
	if n != 12 {
		t.Fatalf("wrote %d bytes before cut, want exactly one frame (12)", n)
	}
	<-done
	if rerr == nil {
		t.Fatalf("peer read ended cleanly; want a reset error")
	}
	if !bytes.Equal(got.Bytes(), frame(8)) {
		t.Fatalf("peer received %d bytes, want exactly the first frame (12)", got.Len())
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrCut) {
		t.Fatalf("post-cut Write err = %v, want ErrCut", err)
	}
}

func TestConnCutAfterBytes(t *testing.T) {
	client, server := tcpPair(t)
	fc := Wrap(client, 2, Faults{}, Faults{CutAfterBytes: 6})
	var got bytes.Buffer
	done := make(chan struct{})
	go func() { defer close(done); io.Copy(&got, server) }()
	n, err := fc.Write(make([]byte, 64))
	if !errors.Is(err, ErrCut) {
		t.Fatalf("Write = %d, %v; want ErrCut", n, err)
	}
	if n != 6 {
		t.Fatalf("wrote %d bytes before cut, want 6", n)
	}
	<-done
	if got.Len() != 6 {
		t.Fatalf("peer received %d bytes, want 6", got.Len())
	}
}

// chunkRecorder records the size of every underlying Write.
type chunkRecorder struct {
	net.Conn
	mu     sync.Mutex
	chunks []int
}

func (r *chunkRecorder) Write(b []byte) (int, error) {
	r.mu.Lock()
	r.chunks = append(r.chunks, len(b))
	r.mu.Unlock()
	return r.Conn.Write(b)
}

func TestConnPartialWriteDeterminism(t *testing.T) {
	run := func(seed uint64) ([]int, []byte) {
		client, server := tcpPair(t)
		rec := &chunkRecorder{Conn: client}
		fc := Wrap(rec, seed, Faults{}, Faults{PartialEvery: 1})
		var got bytes.Buffer
		done := make(chan struct{})
		go func() { defer close(done); io.Copy(&got, server) }()
		payload := append(frame(32), frame(16)...)
		if _, err := fc.Write(payload); err != nil {
			t.Fatalf("Write: %v", err)
		}
		fc.Close()
		<-done
		return rec.chunks, got.Bytes()
	}
	c1, b1 := run(42)
	c2, b2 := run(42)
	if len(c1) < 2 {
		t.Fatalf("PartialEvery=1 produced %d chunks, want a split (>=2)", len(c1))
	}
	want := append(frame(32), frame(16)...)
	if !bytes.Equal(b1, want) || !bytes.Equal(b2, want) {
		t.Fatalf("partial writes corrupted the stream")
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed, different chunking: %v vs %v", c1, c2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("same seed, different chunking: %v vs %v", c1, c2)
		}
	}
}

func TestConnReadStallAndLatency(t *testing.T) {
	client, server := tcpPair(t)
	fc := Wrap(server, 3, Faults{Latency: 5 * time.Millisecond}, Faults{})
	go client.Write([]byte("hello"))
	start := time.Now()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("read returned in %v; want >=3ms injected latency", d)
	}
}

func TestFilesTornAndRefusedWrites(t *testing.T) {
	dir := t.TempDir()
	ff := NewFiles(FilesConfig{FailWriteAfterBytes: 25})
	f, err := ff.Open(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	chunk := make([]byte, 10)
	for i := 0; i < 2; i++ {
		if n, err := f.Write(chunk); n != 10 || err != nil {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	n, err := f.Write(chunk) // crosses the 25-byte budget at offset 20
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v; want torn write of 5 wrapping ErrInjected", n, err)
	}
	if n, err := f.Write(chunk); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget write: n=%d err=%v; want full refusal", n, err)
	}
	st, err := os.Stat(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 25 {
		t.Fatalf("file size %d, want exactly the 25-byte budget", st.Size())
	}
	if ff.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", ff.Injected())
	}
}

func TestFilesShortWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFiles(FilesConfig{Seed: 7, ShortWriteEvery: 2})
	f, err := ff.Open(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := f.Write(make([]byte, 10)); n != 10 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	n, err := f.Write(make([]byte, 10))
	if err == nil || !errors.Is(err, ErrInjected) || n >= 10 || n < 1 {
		t.Fatalf("write 2: n=%d err=%v; want short write 1..9 wrapping ErrInjected", n, err)
	}
}

func TestFilesFsyncBudget(t *testing.T) {
	dir := t.TempDir()
	ff := NewFiles(FilesConfig{FailFsyncAfter: 2})
	f, err := ff.Open(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync after budget: %v; want ErrInjected (sticky)", err)
		}
	}
}

// echoServer accepts and echoes until its listener closes.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String()
}

func TestProxyForwardDropReject(t *testing.T) {
	target := echoServer(t)
	p, err := NewProxy(target, 9, Faults{}, Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	roundtrip := func(c net.Conn) error {
		if _, err := c.Write([]byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 4)
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err := io.ReadFull(c, buf)
		return err
	}

	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := roundtrip(c1); err != nil {
		t.Fatalf("echo through proxy: %v", err)
	}

	p.DropAll()
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on dropped conn succeeded; want error")
	}

	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := roundtrip(c2); err != nil {
		t.Fatalf("echo after DropAll: %v", err)
	}
	if p.Accepted() != 2 {
		t.Fatalf("Accepted() = %d, want 2", p.Accepted())
	}

	p.SetReject(true)
	c3, err := net.Dial("tcp", p.Addr())
	if err == nil {
		defer c3.Close()
		c3.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c3.Read(make([]byte, 1)); err == nil {
			t.Fatal("rejected conn served a read; want immediate close")
		}
	}
}
