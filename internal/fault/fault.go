// Package fault is a deterministic, seeded fault-injection harness for
// tests: a net.Conn wrapper that adds latency, read/write stalls,
// chunked ("partial") writes, and byte- or frame-boundary-aligned
// connection resets; a loopback TCP proxy that applies those faults to
// live traffic between a real client and a real server; and an
// error-injecting file layer (short writes, fsync failures,
// fail-after-N-bytes) that plugs into internal/persist via
// persist.Options.OpenLog.
//
// Everything is driven by explicit counters and a splitmix64 generator
// seeded by the caller, so a failing run replays identically: the same
// seed cuts the same connection after the same bytes and tears the same
// write. No fault fires unless its knob is set, and the zero value of
// every config means "no faults".
package fault

import (
	"errors"
	"fmt"
)

// ErrInjected is wrapped by every error this package fabricates, so
// tests can tell an injected failure from a real one with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// ErrCut is returned by Conn.Read/Write after the connection was
// deliberately reset; it wraps ErrInjected.
var ErrCut = fmt.Errorf("connection cut: %w", ErrInjected)

// rng is splitmix64: tiny, seedable, and good enough to pick jitter and
// truncation points deterministically.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
