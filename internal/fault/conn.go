package fault

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults configures one direction (read or write) of a wrapped
// connection. The zero value injects nothing.
type Faults struct {
	// Latency is added before every Read/Write, with ±25% seeded jitter.
	Latency time.Duration
	// StallEvery makes every Nth operation additionally sleep StallFor —
	// a periodic read stall or write stall, depending on the side this
	// Faults is installed on. 0 disables.
	StallEvery int
	// StallFor is the duration of each injected stall.
	StallFor time.Duration
	// PartialEvery splits every Nth Write into two separate underlying
	// writes at a seeded split point, so the peer observes the frame in
	// fragments (exercising its short-read reassembly). The data still
	// arrives complete; only its arrival pattern changes. Reads are
	// unaffected. 0 disables.
	PartialEvery int
	// CutAfterBytes resets the connection (RST, via SO_LINGER 0 on TCP)
	// once this many bytes have crossed this direction. 0 disables.
	CutAfterBytes int64
	// CutAtFrame defers the CutAfterBytes reset to the first
	// length-prefixed frame boundary at or after the byte threshold, so
	// the peer sees a whole number of frames and then a dead connection
	// — the "request arrived, response never did" ambiguity — instead of
	// a torn frame.
	CutAtFrame bool
}

// frameTracker follows a stream of length-prefixed frames (uint32
// little-endian length, then payload — the wire package's framing) so
// cuts can be aligned to frame boundaries.
type frameTracker struct {
	hdr    [4]byte
	hdrN   int
	remain int
}

// feed advances the tracker over b.
func (t *frameTracker) feed(b []byte) {
	for len(b) > 0 {
		if t.hdrN < 4 {
			k := min(4-t.hdrN, len(b))
			copy(t.hdr[t.hdrN:], b[:k])
			t.hdrN += k
			b = b[k:]
			if t.hdrN == 4 {
				t.remain = int(binary.LittleEndian.Uint32(t.hdr[:]))
				if t.remain == 0 {
					t.hdrN = 0
				}
			}
			continue
		}
		k := min(t.remain, len(b))
		t.remain -= k
		b = b[k:]
		if t.remain == 0 {
			t.hdrN = 0
		}
	}
}

// atBoundary reports whether the stream sits exactly between frames.
func (t *frameTracker) atBoundary() bool { return t.hdrN == 0 }

// until returns how many more bytes may pass without crossing the next
// frame boundary (the rest of the header if it is mid-header, else the
// rest of the payload).
func (t *frameTracker) until() int {
	if t.hdrN < 4 {
		return 4 - t.hdrN
	}
	return t.remain
}

// side is the per-direction state of a wrapped connection.
type side struct {
	mu  sync.Mutex
	f   Faults
	rng rng
	n   int64 // bytes so far in this direction
	ops int64
	ft  frameTracker
}

func (s *side) sleep() {
	if d := s.f.Latency; d > 0 {
		d += time.Duration(s.rng.next()%uint64(d/2+1)) - d/4
		time.Sleep(d)
	}
	if s.f.StallEvery > 0 && s.f.StallFor > 0 && s.ops%int64(s.f.StallEvery) == 0 {
		time.Sleep(s.f.StallFor)
	}
}

// Conn wraps a net.Conn with independently configured read-side and
// write-side faults. It assumes the usual one-reader/one-writer
// discipline (concurrent Reads, or concurrent Writes, serialize on an
// internal lock).
type Conn struct {
	net.Conn
	rd  side
	wr  side
	cut atomic.Bool
}

// Wrap wraps nc; seed makes every jittered choice reproducible.
func Wrap(nc net.Conn, seed uint64, read, write Faults) *Conn {
	c := &Conn{Conn: nc}
	c.rd.f, c.wr.f = read, write
	c.rd.rng = rng{s: seed}
	c.wr.rng = rng{s: seed ^ 0xa5a5a5a5a5a5a5a5}
	return c
}

// doCut marks the connection dead and forces an abortive close — a real
// RST on TCP, so the peer's next read fails instead of seeing EOF after
// a tidy FIN.
func (c *Conn) doCut() {
	c.cut.Store(true)
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

// Cut reports whether an injected reset has fired.
func (c *Conn) Cut() bool { return c.cut.Load() }

// Read applies read-side faults, then reads from the wrapped conn.
func (c *Conn) Read(b []byte) (int, error) {
	s := &c.rd
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.cut.Load() {
		return 0, ErrCut
	}
	s.ops++
	s.sleep()
	if s.f.CutAfterBytes > 0 {
		if s.n >= s.f.CutAfterBytes && (!s.f.CutAtFrame || s.ft.atBoundary()) {
			c.doCut()
			return 0, ErrCut
		}
		if s.f.CutAtFrame {
			if u := s.ft.until(); u > 0 && u < len(b) {
				b = b[:u]
			}
		} else if rest := s.f.CutAfterBytes - s.n; rest < int64(len(b)) {
			b = b[:rest]
		}
	}
	k, err := c.Conn.Read(b)
	s.n += int64(k)
	if s.f.CutAtFrame {
		s.ft.feed(b[:k])
	}
	return k, err
}

// Write applies write-side faults, then writes to the wrapped conn.
func (c *Conn) Write(b []byte) (n int, err error) {
	s := &c.wr
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.cut.Load() {
		return 0, ErrCut
	}
	s.ops++
	s.sleep()
	partial := s.f.PartialEvery > 0 && s.ops%int64(s.f.PartialEvery) == 0
	for len(b) > 0 {
		chunk := b
		if s.f.CutAfterBytes > 0 {
			if s.n >= s.f.CutAfterBytes && (!s.f.CutAtFrame || s.ft.atBoundary()) {
				c.doCut()
				return n, ErrCut
			}
			if s.f.CutAtFrame {
				// Cap each underlying write at the current frame's end so
				// the loop revisits the cut condition exactly on every
				// boundary.
				if u := s.ft.until(); u > 0 && u < len(chunk) {
					chunk = chunk[:u]
				}
			} else if rest := s.f.CutAfterBytes - s.n; rest < int64(len(chunk)) {
				chunk = chunk[:rest]
			}
		}
		if partial && len(chunk) > 1 {
			chunk = chunk[:1+int(s.rng.next()%uint64(len(chunk)-1))]
			partial = false
		}
		k, werr := c.Conn.Write(chunk)
		s.n += int64(k)
		if s.f.CutAtFrame {
			s.ft.feed(chunk[:k])
		}
		n += k
		if werr != nil {
			return n, werr
		}
		b = b[k:]
		if s.f.CutAfterBytes > 0 && s.n >= s.f.CutAfterBytes &&
			(!s.f.CutAtFrame || s.ft.atBoundary()) {
			c.doCut()
			return n, ErrCut
		}
	}
	return n, nil
}
