package persist

import (
	"errors"
	"reflect"
	"testing"

	"mwllsc/internal/fault"
	"mwllsc/internal/wire"
)

// TestFaultInjectedTornWriteNoAckedLoss drives the store through
// internal/fault's disk layer until a torn write poisons it, then
// recovers the directory and checks the durability contract under
// injected failure: every Append that returned nil is recovered, the
// failure is sticky (no append is accepted afterwards, so nothing can
// be acked and then lost), and Sick()/Err() report it.
func TestFaultInjectedTornWriteNoAckedLoss(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	ff := fault.NewFiles(fault.FilesConfig{Seed: 1, FailWriteAfterBytes: 900})
	st, _ := openStore(t, dir, m, Options{
		OpenLog: func(path string) (LogFile, error) { return ff.Open(path) },
	})

	// The map holds one value per shard, so track the last *acked* Set
	// per shard: that is exactly what recovery must reproduce —
	// in-memory commits whose Append failed were never acked and may
	// vanish.
	acked := map[uint64][]uint64{} // sample key per shard -> last acked args
	ackedCount := 0
	failures := 0
	for i := uint64(0); i < 200; i++ {
		args := []uint64{i + 1, 2*i + 1}
		var seq uint64
		m.Update(i, func(v []uint64) {
			wire.Merge(v, args, wire.ModeSet)
			seq = st.NextSeq()
		})
		err := st.Append([]Record{{
			Seq: seq, Op: wire.OpUpdate, Mode: wire.ModeSet, Key: i,
			Args: args, Shard: m.ShardIndex(i),
		}})
		if err != nil {
			failures++
			if !st.Sick() || st.Err() == nil {
				t.Fatalf("Append failed (%v) but Sick=%v Err=%v", err, st.Sick(), st.Err())
			}
		} else {
			if failures > 0 {
				t.Fatalf("Append %d accepted after a sticky failure — could be acked then lost", i)
			}
			acked[uint64(m.ShardIndex(i))] = args
			ackedCount++
		}
	}
	if failures == 0 || ff.Injected() == 0 {
		t.Fatalf("fault never fired: failures=%d injected=%d", failures, ff.Injected())
	}
	if !errors.Is(st.Err(), fault.ErrInjected) {
		t.Fatalf("Err() = %v, want the injected failure", st.Err())
	}
	st.Close()

	m2, st2, rec := reopen(t, dir, Options{})
	defer st2.Close()
	if rec.Replayed < ackedCount {
		t.Fatalf("recovered %d records, want >= %d acked", rec.Replayed, ackedCount)
	}
	got := make([]uint64, tW)
	for sh, want := range acked {
		m2.Read(m2.KeyForShard(int(sh)), got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("acked write to shard %d lost: got %v want %v", sh, got, want)
		}
	}
}
