// Package persist is the durability layer under the serving stack: a
// Redis-AOF-style per-shard append-only log of committed declarative
// updates plus periodic checkpoints, so an llscd restart — graceful or
// SIGKILL — recovers the map instead of losing every word.
//
// # What is logged
//
// Only the wire layer's declarative word-merge updates (Add/Set, single
// or multi key) are durable; they are replayable by construction —
// closures never enter the log. Each record is the wire encoding of the
// original request (wire.AppendRequest) with the request id field
// carrying a commit sequence number instead, framed as
//
//	uint32 length | uint32 crc32c(payload) | payload
//
// in the log file of the owning shard (a multi-key record goes to the
// log of its lowest target shard; recovery reads every log, so the
// choice only spreads append traffic).
//
// # Commit ordering without touching the lock-free hot path
//
// Appends happen after the in-memory commit, outside the registry slot,
// so two connections' records can reach the files in an order different
// from their commit order. Replay must still apply same-shard updates in
// commit order (Set does not commute). The sequence number restores it:
// the server captures Seq inside the update's merge callback — the
// committed attempt's callback run is always the last one for that
// record, and on one shard it happens strictly between that update's
// link and its successful store-conditional. Two committed updates on
// the same shard therefore carry sequence numbers in their commit
// order, whatever order their records land in the files, and recovery
// sorts by Seq before replaying. The cost on the hot path is one atomic
// counter increment per merge attempt; the LL/SC protocol itself is
// untouched.
//
// # Checkpoints and the watermark
//
// A checkpoint must know exactly which logged records its snapshot
// already contains. Store.Checkpoint first rotates every shard log to a
// fresh segment generation, then asks the caller (the server) to run an
// identity transaction over all shards — a cross-shard atomic
// UpdateMulti whose callback changes nothing but captures one more
// sequence number S and copies the values out. Because that transaction
// conflicts with every shard, S is a total watermark: on every shard,
// exactly the updates with Seq < S are in the snapshot and those with
// Seq > S are not. The snapshot (geometry, S, K×W values, CRC) is
// written to checkpoint.tmp, fsynced, renamed over checkpoint, and only
// then are the pre-rotation segments deleted. A crash at any point
// leaves either the old checkpoint with all segments or the new one
// with the new segments — recovery replays only records with Seq > S,
// so nothing is lost or double-applied either way.
//
// # Recovery
//
// Open loads the checkpoint if present (validating magic, version,
// geometry and CRC), reads every shard-*.log segment, truncates each at
// the first framing or CRC failure (a torn tail from a crash mid-append,
// repaired Redis-AOF-style), sorts the surviving records by Seq, drops
// those at or below the watermark, and replays the rest through the
// map's own Update/UpdateMulti. The sequence counter resumes above
// everything seen, and appends continue into a fresh segment
// generation.
//
// # Fsync policies
//
// SyncNone never fsyncs (the OS decides; fastest, weakest), SyncEverySec
// fsyncs dirty logs on a ticker (bounded loss window), SyncAlways makes
// the server hold each batch's responses until a group-commit round has
// fsynced its records — many concurrent batches share one fsync, which
// is what keeps the policy affordable. The exact contract per policy is
// documented in docs/OPERATIONS.md.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"mwllsc/internal/wire"
)

// Policy selects when the append-only log is fsynced.
type Policy int

const (
	// SyncNone never fsyncs: writes reach the OS page cache and the
	// kernel flushes them on its own schedule. A machine crash can lose
	// everything since the last checkpoint; a process crash loses
	// nothing (the writes are already in the kernel).
	SyncNone Policy = iota
	// SyncEverySec fsyncs dirty logs about once per second from a
	// background goroutine. A machine crash loses at most the last
	// interval of acknowledged writes.
	SyncEverySec
	// SyncAlways fsyncs before a write is acknowledged: the server
	// holds a batch's responses until a group-commit round covers its
	// records. No acknowledged write is ever lost.
	SyncAlways
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncEverySec:
		return "everysec"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag spelling.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "everysec":
		return SyncEverySec, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync policy %q (want none, everysec or always)", s)
	}
}

// LogFile is what the store needs from a log segment file. The default
// is a plain *os.File; fault-injection harnesses substitute an
// error-injecting implementation through Options.OpenLog.
type LogFile interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures Open.
type Options struct {
	// Policy is the fsync policy (default SyncNone).
	Policy Policy
	// Interval overrides SyncEverySec's period (default 1s); tests use
	// short intervals.
	Interval time.Duration
	// OpenLog opens a log segment file for appending (default:
	// os.OpenFile with O_CREATE|O_WRONLY|O_APPEND). It exists so tests
	// can inject disk faults (internal/fault.Files) under the store's
	// real append and group-commit paths; checkpoint files are not
	// routed through it.
	OpenLog func(path string) (LogFile, error)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.OpenLog == nil {
		o.OpenLog = func(path string) (LogFile, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
	}
	return o
}

// Record is one durable update: the declarative form of a committed
// Update (one key) or UpdateMulti (cross-shard transaction), stamped
// with the commit sequence number captured inside its merge callback.
type Record struct {
	// Seq orders same-shard records by commit; unique across the store.
	Seq uint64
	// Op is wire.OpUpdate or wire.OpUpdateMulti.
	Op wire.Op
	// Mode is the word-merge mode (wire.ModeAdd or wire.ModeSet).
	Mode wire.Mode
	// Key is the target key (OpUpdate).
	Key uint64
	// Keys are the target keys (OpUpdateMulti).
	Keys []uint64
	// Args are the merge arguments: W words (OpUpdate) or len(Keys)×W
	// words (OpUpdateMulti).
	Args []uint64
	// Shard routes the record to a log file: the owning shard for
	// OpUpdate, the lowest target shard for OpUpdateMulti. Recovery
	// reads every log, so routing affects only append parallelism.
	Shard int
}

// castagnoli is the CRC-32C table used for record and checkpoint
// integrity (the polynomial with hardware support on current CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recHeader is the per-record frame header: uint32 payload length plus
// uint32 CRC-32C of the payload.
const recHeader = 8

// appendRecord appends r's framed encoding to dst. The payload reuses
// the wire request encoding with the id field carrying Seq.
func appendRecord(dst []byte, r *Record) []byte {
	req := wire.Request{ID: r.Seq, Op: r.Op, Mode: r.Mode, Key: r.Key, Keys: r.Keys, Args: r.Args}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc, patched below
	dst = wire.AppendRequest(dst, &req)
	payload := dst[start+recHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// parseRecords decodes the records of one segment. It returns the
// records that parse cleanly and the byte offset of the first framing or
// CRC failure (== len(data) when the whole segment is clean); everything
// from that offset on is a torn or corrupt tail the caller truncates.
// A record that passes its CRC but does not match the map's geometry is
// not corruption — it means the operator changed -words — and is
// returned as an error instead of being silently dropped.
func parseRecords(data []byte, w int) (recs []Record, goodLen int, err error) {
	off := 0
	for {
		if len(data)-off < recHeader {
			return recs, off, nil // clean end, or a torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n < 9 || n > wire.MaxFrame || len(data)-off-recHeader < n {
			return recs, off, nil // impossible length or torn payload
		}
		payload := data[off+recHeader : off+recHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, off, nil // corrupt payload
		}
		var req wire.Request
		if err := wire.DecodeRequest(&req, payload); err != nil {
			return recs, off, nil // CRC-valid but undecodable: treat as corruption
		}
		rec := Record{Seq: req.ID, Op: req.Op, Mode: req.Mode, Key: req.Key}
		switch req.Op {
		case wire.OpUpdate:
			if len(req.Args) != w {
				return recs, off, fmt.Errorf("persist: log record has %d-word args, map width is %d (geometry changed?)", len(req.Args), w)
			}
		case wire.OpUpdateMulti:
			if len(req.Args) != len(req.Keys)*w {
				return recs, off, fmt.Errorf("persist: multi log record has %d keys × %d-word args, map width is %d (geometry changed?)",
					len(req.Keys), len(req.Args)/max(1, len(req.Keys)), w)
			}
			rec.Keys = append([]uint64(nil), req.Keys...)
		default:
			return recs, off, nil // not an update record: treat as corruption
		}
		rec.Args = append([]uint64(nil), req.Args...)
		recs = append(recs, rec)
		off += recHeader + n
	}
}
