package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mwllsc/internal/shard"
	"mwllsc/internal/wire"
)

const (
	tK = 4
	tW = 2
)

func newMap(t *testing.T) *shard.Map {
	t.Helper()
	m, err := shard.NewMap(tK, 8, tW)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openStore(t *testing.T, dir string, m *shard.Map, opts Options) (*Store, Recovery) {
	t.Helper()
	st, rec, err := Open(dir, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, rec
}

// apply commits one single-key update to the map and logs it, exactly as
// the server does: Seq drawn inside the merge callback, append after.
func apply(t *testing.T, m *shard.Map, st *Store, mode wire.Mode, key uint64, args []uint64) {
	t.Helper()
	var seq uint64
	m.Update(key, func(v []uint64) {
		wire.Merge(v, args, mode)
		seq = st.NextSeq()
	})
	err := st.Append([]Record{{
		Seq: seq, Op: wire.OpUpdate, Mode: mode, Key: key,
		Args: args, Shard: m.ShardIndex(key),
	}})
	if err != nil {
		t.Fatal(err)
	}
}

// applyMulti commits one cross-shard update and logs it.
func applyMulti(t *testing.T, m *shard.Map, st *Store, mode wire.Mode, keys []uint64, args []uint64) {
	t.Helper()
	w := m.W()
	var seq uint64
	m.UpdateMulti(keys, func(vals [][]uint64) {
		for i, v := range vals {
			wire.Merge(v, args[i*w:(i+1)*w], mode)
		}
		seq = st.NextSeq()
	})
	lowest := m.ShardIndex(keys[0])
	for _, k := range keys[1:] {
		if i := m.ShardIndex(k); i < lowest {
			lowest = i
		}
	}
	err := st.Append([]Record{{
		Seq: seq, Op: wire.OpUpdateMulti, Mode: mode, Keys: keys,
		Args: args, Shard: lowest,
	}})
	if err != nil {
		t.Fatal(err)
	}
}

// checkpointMap runs the server's checkpoint capture: an identity
// transaction over all shards drawing the watermark inside the callback.
func checkpointMap(t *testing.T, st *Store, m *shard.Map) {
	t.Helper()
	err := st.Checkpoint(func() ([][]uint64, uint64, error) {
		rows := m.NewSnapshotBuffer()
		keys := make([]uint64, m.Shards())
		for i := range keys {
			keys[i] = m.KeyForShard(i)
		}
		var wm uint64
		h := m.Acquire()
		defer h.Release()
		h.UpdateMulti(keys, func(vals [][]uint64) {
			wm = st.NextSeq()
			for i, v := range vals {
				copy(rows[i], v)
			}
		})
		return rows, wm, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func snapshotOf(t *testing.T, m *shard.Map) [][]uint64 {
	t.Helper()
	dst := m.NewSnapshotBuffer()
	m.SnapshotAtomic(dst)
	return dst
}

// reopen recovers dir into a fresh map and returns it with the summary.
func reopen(t *testing.T, dir string, opts Options) (*shard.Map, *Store, Recovery) {
	t.Helper()
	m := newMap(t)
	st, rec := openStore(t, dir, m, opts)
	return m, st, rec
}

func TestFreshOpenAndRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, rec := openStore(t, dir, m, Options{Policy: SyncAlways})
	if rec.Checkpoint || rec.Replayed != 0 || rec.Segments != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}

	apply(t, m, st, wire.ModeAdd, m.KeyForShard(0), []uint64{5, 1})
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(1), []uint64{7, 2})
	apply(t, m, st, wire.ModeSet, m.KeyForShard(2), []uint64{100, 200})
	applyMulti(t, m, st, wire.ModeAdd,
		[]uint64{m.KeyForShard(0), m.KeyForShard(3)}, []uint64{1, 1, 2, 2})
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, m)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	m2, st2, rec2 := reopen(t, dir, Options{})
	defer st2.Close()
	if rec2.Replayed != 4 || rec2.Checkpoint {
		t.Fatalf("recovery %+v, want 4 replayed and no checkpoint", rec2)
	}
	if got := snapshotOf(t, m2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state %v, want %v", got, want)
	}
	if rec2.NextSeq < 4 {
		t.Fatalf("NextSeq %d, want >= 4", rec2.NextSeq)
	}
}

func TestSetOrderRestoredBySeqSort(t *testing.T) {
	// Two Sets on one shard whose records land in the log in REVERSE
	// commit order: replay must sort by Seq, so the later Set wins.
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	key := m.KeyForShard(1)

	var seq1, seq2 uint64
	m.Update(key, func(v []uint64) { wire.Merge(v, []uint64{1, 1}, wire.ModeSet); seq1 = st.NextSeq() })
	m.Update(key, func(v []uint64) { wire.Merge(v, []uint64{9, 9}, wire.ModeSet); seq2 = st.NextSeq() })
	sh := m.ShardIndex(key)
	// Append out of order, as two racing connections could.
	recs := []Record{
		{Seq: seq2, Op: wire.OpUpdate, Mode: wire.ModeSet, Key: key, Args: []uint64{9, 9}, Shard: sh},
		{Seq: seq1, Op: wire.OpUpdate, Mode: wire.ModeSet, Key: key, Args: []uint64{1, 1}, Shard: sh},
	}
	if err := st.Append(recs); err != nil {
		t.Fatal(err)
	}
	st.Close()

	m2, st2, _ := reopen(t, dir, Options{})
	defer st2.Close()
	got := make([]uint64, tW)
	m2.Read(key, got)
	if got[0] != 9 || got[1] != 9 {
		t.Fatalf("recovered %v, want [9 9] (the later Set)", got)
	}
}

// segWithData returns the segment files that contain at least one byte.
func segWithData(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, sg := range segs {
		fi, err := os.Stat(sg.path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 {
			paths = append(paths, sg.path)
		}
	}
	return paths
}

func TestTornFinalRecordIsTruncated(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	key := m.KeyForShard(0)
	for i := 0; i < 3; i++ {
		apply(t, m, st, wire.ModeAdd, key, []uint64{1, 10})
	}
	st.Close()

	paths := segWithData(t, dir)
	if len(paths) != 1 {
		t.Fatalf("expected one data-bearing segment, found %d", len(paths))
	}
	fi, _ := os.Stat(paths[0])
	recSize := fi.Size() / 3
	// Tear the last record: the crash left a partial append.
	if err := os.Truncate(paths[0], fi.Size()-recSize/2); err != nil {
		t.Fatal(err)
	}

	m2, st2, rec := reopen(t, dir, Options{})
	defer st2.Close()
	if rec.Replayed != 2 || rec.Repaired != 1 {
		t.Fatalf("recovery %+v, want 2 replayed / 1 repaired", rec)
	}
	got := make([]uint64, tW)
	m2.Read(key, got)
	if got[0] != 2 || got[1] != 20 {
		t.Fatalf("recovered %v, want [2 20] (two surviving adds)", got)
	}
	// The repair is physical: the torn bytes are gone from disk.
	fi2, _ := os.Stat(paths[0])
	if fi2.Size() != 2*recSize {
		t.Fatalf("repaired segment is %d bytes, want %d", fi2.Size(), 2*recSize)
	}
}

func TestCRCMismatchMidLogDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	key := m.KeyForShard(0)
	for i := 0; i < 3; i++ {
		apply(t, m, st, wire.ModeAdd, key, []uint64{1, 0})
	}
	st.Close()

	paths := segWithData(t, dir)
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	recSize := len(data) / 3
	// Flip a payload byte of the SECOND record: mid-log corruption.
	data[recSize+recHeader+12] ^= 0xff
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, st2, rec := reopen(t, dir, Options{})
	defer st2.Close()
	if rec.Replayed != 1 || rec.Repaired != 1 {
		t.Fatalf("recovery %+v, want 1 replayed / 1 repaired (suffix dropped)", rec)
	}
	got := make([]uint64, tW)
	m2.Read(key, got)
	if got[0] != 1 {
		t.Fatalf("recovered word0 %d, want 1", got[0])
	}
	fi, _ := os.Stat(paths[0])
	if fi.Size() != int64(recSize) {
		t.Fatalf("segment is %d bytes after repair, want %d", fi.Size(), recSize)
	}
}

func TestEmptyLogWithValidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(0), []uint64{42, 7})
	apply(t, m, st, wire.ModeSet, m.KeyForShard(3), []uint64{3, 4})
	checkpointMap(t, st, m) // logs rotate to fresh, empty segments
	want := snapshotOf(t, m)
	st.Close()

	m2, st2, rec := reopen(t, dir, Options{})
	defer st2.Close()
	if !rec.Checkpoint || rec.Replayed != 0 {
		t.Fatalf("recovery %+v, want checkpoint-only", rec)
	}
	if got := snapshotOf(t, m2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestCheckpointWithNoLogFiles(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(2), []uint64{11, 13})
	checkpointMap(t, st, m)
	want := snapshotOf(t, m)
	st.Close()

	// An operator copied only the checkpoint (and meta) to a new host.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range segs {
		if err := os.Remove(sg.path); err != nil {
			t.Fatal(err)
		}
	}

	m2, st2, rec := reopen(t, dir, Options{})
	defer st2.Close()
	if !rec.Checkpoint || rec.Segments != 0 {
		t.Fatalf("recovery %+v, want checkpoint and zero segments", rec)
	}
	if got := snapshotOf(t, m2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestWatermarkFiltersAlreadyCheckpointedRecords(t *testing.T) {
	// Fabricate the crash window the watermark exists for: a checkpoint
	// at S=2 plus a log still holding records below and above S.
	dir := t.TempDir()
	if err := checkMeta(dir, tK, tW); err != nil {
		t.Fatal(err)
	}
	m := newMap(t)
	base := m.NewSnapshotBuffer()
	base[0][0] = 10
	if err := writeCheckpoint(dir, tK, tW, base, 2); err != nil {
		t.Fatal(err)
	}
	key := m.KeyForShard(0)
	var buf []byte
	buf = appendRecord(buf, &Record{Seq: 1, Op: wire.OpUpdate, Mode: wire.ModeAdd, Key: key, Args: []uint64{5, 0}})
	buf = appendRecord(buf, &Record{Seq: 3, Op: wire.OpUpdate, Mode: wire.ModeAdd, Key: key, Args: []uint64{7, 0}})
	if err := os.WriteFile(filepath.Join(dir, segName(0, 1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	st, rec := openStore(t, dir, m, Options{})
	defer st.Close()
	if rec.Skipped != 1 || rec.Replayed != 1 || rec.Watermark != 2 {
		t.Fatalf("recovery %+v, want 1 skipped / 1 replayed at watermark 2", rec)
	}
	got := make([]uint64, tW)
	m.Read(key, got)
	if got[0] != 17 { // 10 from the checkpoint + 7 from seq 3; seq 1 already included
		t.Fatalf("recovered word0 %d, want 17", got[0])
	}
	if rec.NextSeq != 3 {
		t.Fatalf("NextSeq %d, want 3", rec.NextSeq)
	}
}

func TestDoubleRecoveryIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(0), []uint64{1, 2})
	checkpointMap(t, st, m)
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(1), []uint64{3, 4})
	apply(t, m, st, wire.ModeSet, m.KeyForShard(2), []uint64{5, 6})
	want := snapshotOf(t, m)
	st.Close()

	// First recovery: replays, repairs, opens a new generation — then
	// "crashes" (no checkpoint, no new writes).
	m1, st1, rec1 := reopen(t, dir, Options{})
	st1.Close()
	// Second recovery over the directory the first one left behind.
	m2, st2, rec2 := reopen(t, dir, Options{})
	defer st2.Close()

	if got := snapshotOf(t, m1); !reflect.DeepEqual(got, want) {
		t.Fatalf("first recovery %v, want %v", got, want)
	}
	if got := snapshotOf(t, m2); !reflect.DeepEqual(got, want) {
		t.Fatalf("second recovery %v, want %v", got, want)
	}
	if rec1.Replayed != rec2.Replayed {
		t.Fatalf("replay counts diverge across recoveries: %d then %d", rec1.Replayed, rec2.Replayed)
	}
}

func TestGeometryMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(0), []uint64{1, 1})
	st.Close()

	wide, err := shard.NewMap(tK, 8, tW+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, wide, Options{}); err == nil {
		t.Fatal("opening a W=3 map over a W=2 directory succeeded")
	}
	narrow, err := shard.NewMap(tK-1, 8, tW)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, narrow, Options{}); err == nil {
		t.Fatal("opening a K=3 map over a K=4 directory succeeded")
	}
}

func TestGroupCommitUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{Policy: SyncAlways})
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := m.KeyForShard(g % tK)
			for i := 0; i < each; i++ {
				var seq uint64
				m.Update(key, func(v []uint64) {
					wire.Merge(v, []uint64{1, 0}, wire.ModeAdd)
					seq = st.NextSeq()
				})
				if err := st.Append([]Record{{Seq: seq, Op: wire.OpUpdate, Mode: wire.ModeAdd,
					Key: key, Args: []uint64{1, 0}, Shard: m.ShardIndex(key)}}); err != nil {
					t.Error(err)
					return
				}
				if err := st.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stats := st.Stats()
	if stats.Records != goroutines*each {
		t.Fatalf("stats report %d records, want %d", stats.Records, goroutines*each)
	}
	if stats.Syncs == 0 || stats.Syncs > goroutines*each {
		t.Fatalf("stats report %d sync rounds for %d Sync calls", stats.Syncs, goroutines*each)
	}
	st.Close()

	m2, st2, rec := reopen(t, dir, Options{})
	defer st2.Close()
	if rec.Replayed != goroutines*each {
		t.Fatalf("recovered %d records, want %d", rec.Replayed, goroutines*each)
	}
	var total uint64
	for _, row := range snapshotOf(t, m2) {
		total += row[0]
	}
	if total != goroutines*each {
		t.Fatalf("recovered sum %d, want %d", total, goroutines*each)
	}
}

func TestEverySecSyncsInBackground(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{Policy: SyncEverySec, Interval: 5 * time.Millisecond})
	defer st.Close()
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(0), []uint64{1, 1})
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background syncer never ran a round")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCorruptCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	m := newMap(t)
	st, _ := openStore(t, dir, m, Options{})
	apply(t, m, st, wire.ModeAdd, m.KeyForShard(0), []uint64{1, 1})
	checkpointMap(t, st, m)
	st.Close()

	path := filepath.Join(dir, ckptFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, newMap(t), Options{}); err == nil {
		t.Fatal("open over a corrupt checkpoint succeeded")
	}
}

func TestParseRecordsStopsAtGarbage(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, &Record{Seq: 1, Op: wire.OpUpdate, Mode: wire.ModeAdd, Key: 9, Args: []uint64{1, 2}})
	good := len(buf)
	buf = append(buf, bytes.Repeat([]byte{0xab}, 5)...) // torn header
	recs, n, err := parseRecords(buf, tW)
	if err != nil || len(recs) != 1 || n != good {
		t.Fatalf("parse = %d recs, %d good, %v; want 1, %d, nil", len(recs), n, err, good)
	}
	if recs[0].Seq != 1 || recs[0].Key != 9 || recs[0].Args[1] != 2 {
		t.Fatalf("parsed record %+v", recs[0])
	}
}
