package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/obs"
	"mwllsc/internal/shard"
	"mwllsc/internal/wire"
)

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("persist: store closed")

// Store is the open durability state of one map: a log file per shard at
// the current segment generation, the commit sequence counter, and the
// group-commit syncer. Append, Sync and NextSeq are safe for concurrent
// use; Checkpoint serializes with itself.
type Store struct {
	dir      string
	k, w     int
	policy   Policy
	interval time.Duration

	seq  atomic.Uint64
	logs []*shardLog

	ckptMu sync.Mutex // serializes Checkpoint; guards gen
	gen    uint64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	waitMu  sync.Mutex
	waiters []chan struct{}
	closed  bool
	close1  sync.Once

	failMu  sync.Mutex
	failure error
	sick    atomic.Bool

	openLog func(path string) (LogFile, error)

	records atomic.Uint64
	bytes   atomic.Uint64
	syncs   atomic.Uint64
	ckpts   atomic.Uint64

	// appendHist times appendRun's log write, striped by shard (the
	// write already serializes on the shard's log mutex, so a stripe
	// per shard means no cross-shard line sharing). syncHist times each
	// group-commit round that actually fsynced something — the number
	// that bounds commit acknowledgment latency under SyncAlways.
	// Both record nanoseconds.
	appendHist *obs.Histogram
	syncHist   *obs.Histogram
}

// shardLog is one shard's current segment file.
type shardLog struct {
	mu    sync.Mutex
	f     LogFile
	buf   []byte
	dirty atomic.Bool
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Records     uint64 // records appended since Open
	Bytes       uint64 // log bytes written since Open
	Syncs       uint64 // group-commit fsync rounds completed
	Checkpoints uint64 // checkpoints written since Open
	Seq         uint64 // current commit sequence number
}

// Recovery summarizes what Open reconstructed from dir.
type Recovery struct {
	Checkpoint bool   // a checkpoint file was loaded
	Watermark  uint64 // its sequence watermark (0 without a checkpoint)
	Segments   int    // log segment files read
	Replayed   int    // records applied on top of the checkpoint
	Skipped    int    // records at or below the watermark (already in it)
	Repaired   int    // segments truncated at a torn or corrupt tail
	NextSeq    uint64 // first sequence number new appends will exceed
}

// Open recovers dir's durable state into m — which must be freshly
// created and not yet shared — and returns a Store appending to a new
// segment generation. The map's geometry must match what the directory
// was created with; a mismatch is an error, never a silent
// reinterpretation. An empty or absent dir starts fresh.
func Open(dir string, m *shard.Map, opts Options) (*Store, Recovery, error) {
	opts = opts.withDefaults()
	k, w := m.Shards(), m.W()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("persist: %w", err)
	}
	if err := checkMeta(dir, k, w); err != nil {
		return nil, Recovery{}, err
	}
	rec, maxGen, maxSeq, err := recoverInto(dir, m)
	if err != nil {
		return nil, Recovery{}, err
	}
	s := &Store{
		dir:        dir,
		k:          k,
		w:          w,
		policy:     opts.Policy,
		interval:   opts.Interval,
		gen:        maxGen + 1,
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		appendHist: obs.NewHistogram(k),
		syncHist:   obs.NewHistogram(1),
		openLog:    opts.OpenLog,
	}
	s.seq.Store(maxSeq)
	rec.NextSeq = maxSeq
	s.logs = make([]*shardLog, k)
	for i := range s.logs {
		f, err := s.openLog(filepath.Join(dir, segName(i, s.gen)))
		if err != nil {
			for _, lg := range s.logs[:i] {
				lg.f.Close()
			}
			return nil, Recovery{}, fmt.Errorf("persist: %w", err)
		}
		s.logs[i] = &shardLog{f: f}
	}
	if err := syncDir(dir); err != nil {
		return nil, Recovery{}, err
	}
	go s.syncLoop()
	return s, rec, nil
}

// Dir returns the durability directory.
func (s *Store) Dir() string { return s.dir }

// Policy returns the fsync policy.
func (s *Store) Policy() Policy { return s.policy }

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Records:     s.records.Load(),
		Bytes:       s.bytes.Load(),
		Syncs:       s.syncs.Load(),
		Checkpoints: s.ckpts.Load(),
		Seq:         s.seq.Load(),
	}
}

// AppendHist returns the log-append latency histogram (nanoseconds,
// one stripe per shard).
func (s *Store) AppendHist() *obs.Histogram { return s.appendHist }

// SyncHist returns the group-commit fsync-round latency histogram
// (nanoseconds; a round covers every dirty shard log).
func (s *Store) SyncHist() *obs.Histogram { return s.syncHist }

// Err returns the store's sticky failure, if any: the first disk error
// seen. A failed store keeps accepting calls but every durability
// guarantee is void until the operator intervenes; under SyncAlways the
// server surfaces the failure to clients instead of acknowledging.
func (s *Store) Err() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failure
}

// Sick reports whether the store has a sticky failure — the lock-free
// form of Err() != nil, cheap enough for the server to consult on every
// batch when disk-sick degraded mode is enabled.
func (s *Store) Sick() bool { return s.sick.Load() }

func (s *Store) fail(err error) {
	s.failMu.Lock()
	if s.failure == nil {
		s.failure = err
	}
	s.failMu.Unlock()
	s.sick.Store(true)
}

// NextSeq allocates the next commit sequence number. The server calls
// it inside every update merge callback; the callback's final run — the
// one whose store-conditional lands — leaves the number that orders the
// record against every other committed update on its shards.
func (s *Store) NextSeq() uint64 { return s.seq.Add(1) }

// Append writes recs to their shards' logs. It issues the writes but
// does not wait for fsync — callers needing durability-before-ack follow
// with Sync (group commit). Records must already carry their Seq and
// Shard fields; consecutive same-shard records coalesce into one write.
func (s *Store) Append(recs []Record) error {
	if err := s.Err(); err != nil {
		return err
	}
	var firstErr error
	for lo := 0; lo < len(recs); {
		hi := lo + 1
		for hi < len(recs) && recs[hi].Shard == recs[lo].Shard {
			hi++
		}
		if err := s.appendRun(recs[lo:hi]); err != nil && firstErr == nil {
			firstErr = err
		}
		lo = hi
	}
	s.records.Add(uint64(len(recs)))
	if firstErr != nil {
		s.fail(firstErr)
	}
	return firstErr
}

// appendRun writes a run of records for one shard under its log mutex.
func (s *Store) appendRun(recs []Record) error {
	sh := recs[0].Shard
	if sh < 0 || sh >= s.k {
		return fmt.Errorf("persist: record routed to shard %d of %d", sh, s.k)
	}
	lg := s.logs[sh]
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.buf = lg.buf[:0]
	for i := range recs {
		lg.buf = appendRecord(lg.buf, &recs[i])
	}
	t0 := time.Now()
	n, err := lg.f.Write(lg.buf)
	s.appendHist.Observe(sh, uint64(time.Since(t0)))
	s.bytes.Add(uint64(n))
	lg.dirty.Store(true)
	if err != nil {
		return fmt.Errorf("persist: appending to shard %d log: %w", sh, err)
	}
	return nil
}

// Sync waits for a group-commit round that covers every write issued
// before the call: it registers with the syncer, kicks it, and returns
// when the round's fsyncs are done. Concurrent callers share one round —
// this is what makes SyncAlways affordable under pipelined load.
func (s *Store) Sync() error {
	ch := make(chan struct{})
	s.waitMu.Lock()
	if s.closed {
		s.waitMu.Unlock()
		return ErrClosed
	}
	s.waiters = append(s.waiters, ch)
	s.waitMu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default: // a kick is already pending; its round starts after our registration
	}
	select {
	case <-ch:
	case <-s.done:
	}
	return s.Err()
}

// syncLoop is the group-commit goroutine: it runs a round per kick
// (SyncAlways callers), per tick (SyncEverySec), and a final one at
// Close.
func (s *Store) syncLoop() {
	defer close(s.done)
	var tick <-chan time.Time
	if s.policy == SyncEverySec {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stop:
			s.syncRound()
			return
		case <-s.kick:
		case <-tick:
		}
		s.syncRound()
	}
}

// syncRound takes the registered waiters, fsyncs every dirty log, and
// releases them. Waiters registered before the round starts have their
// writes already issued, so the fsyncs that follow cover them.
func (s *Store) syncRound() {
	s.waitMu.Lock()
	ws := s.waiters
	s.waiters = nil
	s.waitMu.Unlock()
	synced := false
	t0 := time.Now()
	for _, lg := range s.logs {
		if !lg.dirty.Swap(false) {
			continue
		}
		lg.mu.Lock()
		err := lg.f.Sync()
		lg.mu.Unlock()
		if err != nil {
			s.fail(fmt.Errorf("persist: fsync: %w", err))
		}
		synced = true
	}
	if synced {
		s.syncs.Add(1)
		s.syncHist.Observe(0, uint64(time.Since(t0)))
	}
	for _, ch := range ws {
		close(ch)
	}
}

// Checkpoint rewrites the snapshot file and truncates the logs. capture
// must return a cross-shard-atomic K×W snapshot of the map together with
// a sequence watermark S such that, on every shard, exactly the updates
// with Seq < S are reflected in the snapshot — the server implements it
// as an identity transaction over all shards that calls NextSeq inside
// its callback. The store rotates every log to a new segment generation
// first, so records racing the checkpoint keep accumulating in files
// that survive; the old segments are deleted only after the new
// checkpoint is durably in place. Crash-safe at every step.
func (s *Store) Checkpoint(capture func() (rows [][]uint64, watermark uint64, err error)) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if err := s.Err(); err != nil {
		return err
	}
	oldGen := s.gen
	if err := s.rotate(); err != nil {
		s.fail(err)
		return err
	}
	rows, watermark, err := capture()
	if err != nil {
		// The rotation stands — harmless — but the old checkpoint and
		// old segments remain authoritative.
		return err
	}
	if len(rows) != s.k {
		return fmt.Errorf("persist: checkpoint capture returned %d rows, map has %d shards", len(rows), s.k)
	}
	if err := writeCheckpoint(s.dir, s.k, s.w, rows, watermark); err != nil {
		s.fail(err)
		return err
	}
	if err := removeSegments(s.dir, oldGen); err != nil {
		// The new checkpoint is in place; stale segments only cost disk
		// and replay-time filtering, so this is not a durability failure.
		return err
	}
	s.ckpts.Add(1)
	return nil
}

// rotate moves every shard log to the next segment generation, fsyncing
// and closing the old files.
func (s *Store) rotate() error {
	s.gen++
	for i, lg := range s.logs {
		f, err := s.openLog(filepath.Join(s.dir, segName(i, s.gen)))
		if err != nil {
			return fmt.Errorf("persist: rotating shard %d log: %w", i, err)
		}
		lg.mu.Lock()
		old := lg.f
		lg.f = f
		lg.mu.Unlock()
		if err := old.Sync(); err != nil {
			old.Close()
			return fmt.Errorf("persist: syncing retired shard %d log: %w", i, err)
		}
		if err := old.Close(); err != nil {
			return fmt.Errorf("persist: closing retired shard %d log: %w", i, err)
		}
	}
	return syncDir(s.dir)
}

// Close runs a final group-commit round, stops the syncer, and fsyncs
// and closes every log. The caller must have stopped appending (the
// server's Close drains every connection first).
func (s *Store) Close() error {
	s.close1.Do(func() {
		s.waitMu.Lock()
		s.closed = true
		s.waitMu.Unlock()
		close(s.stop)
		<-s.done
		for i, lg := range s.logs {
			lg.mu.Lock()
			if err := lg.f.Sync(); err != nil {
				s.fail(fmt.Errorf("persist: closing shard %d log: %w", i, err))
			}
			if err := lg.f.Close(); err != nil {
				s.fail(fmt.Errorf("persist: closing shard %d log: %w", i, err))
			}
			lg.mu.Unlock()
		}
	})
	return s.Err()
}

// segName is the segment filename for one shard at one generation.
func segName(shardI int, gen uint64) string {
	return fmt.Sprintf("shard-%04d-%08d.log", shardI, gen)
}

var segRE = regexp.MustCompile(`^shard-(\d+)-(\d+)\.log$`)

// listSegments returns dir's segment files as (path, shard, gen)
// tuples, sorted by shard then generation.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var segs []segment
	for _, ent := range ents {
		m := segRE.FindStringSubmatch(ent.Name())
		if m == nil {
			continue
		}
		sh, err1 := strconv.Atoi(m[1])
		gen, err2 := strconv.ParseUint(m[2], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, ent.Name()), shard: sh, gen: gen})
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].shard != segs[j].shard {
			return segs[i].shard < segs[j].shard
		}
		return segs[i].gen < segs[j].gen
	})
	return segs, nil
}

type segment struct {
	path  string
	shard int
	gen   uint64
}

// removeSegments deletes every segment at or below gen.
func removeSegments(dir string, gen uint64) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, sg := range segs {
		if sg.gen > gen {
			continue
		}
		if err := os.Remove(sg.path); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("persist: %w", err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return syncDir(dir)
}

// Checkpoint file layout (little-endian):
//
//	[8]byte magic "MWLLSCP1" | uint32 version | uint32 k | uint32 w |
//	uint64 watermark | k·w × uint64 values | uint32 crc32c(everything above)
const (
	ckptMagic   = "MWLLSCP1"
	ckptVersion = 1
	ckptFile    = "checkpoint"
)

// writeCheckpoint durably replaces dir's checkpoint file: build, write
// to a temp file, fsync, rename into place, fsync the directory.
func writeCheckpoint(dir string, k, w int, rows [][]uint64, watermark uint64) error {
	buf := make([]byte, 0, 28+k*w*8+4)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w))
	buf = binary.LittleEndian.AppendUint64(buf, watermark)
	for _, row := range rows {
		if len(row) != w {
			return fmt.Errorf("persist: checkpoint row has %d words, want %d", len(row), w)
		}
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := filepath.Join(dir, ckptFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptFile)); err != nil {
		return fmt.Errorf("persist: installing checkpoint: %w", err)
	}
	return syncDir(dir)
}

// readCheckpoint loads and validates dir's checkpoint. ok is false when
// no checkpoint exists; any present-but-invalid checkpoint is an error
// (it was written atomically, so damage means something is deeply wrong
// — better to stop than to serve silently wrong data).
func readCheckpoint(dir string, k, w int) (rows [][]uint64, watermark uint64, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, ckptFile))
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("persist: %w", err)
	}
	want := 28 + k*w*8 + 4
	if len(data) < 28 || string(data[:8]) != ckptMagic {
		return nil, 0, false, fmt.Errorf("persist: %s is not a checkpoint file", ckptFile)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ckptVersion {
		return nil, 0, false, fmt.Errorf("persist: checkpoint version %d, this build reads %d", v, ckptVersion)
	}
	ck, cw := binary.LittleEndian.Uint32(data[12:]), binary.LittleEndian.Uint32(data[16:])
	if int(ck) != k || int(cw) != w {
		return nil, 0, false, fmt.Errorf("persist: checkpoint is for K=%d W=%d, map is K=%d W=%d", ck, cw, k, w)
	}
	if len(data) != want {
		return nil, 0, false, fmt.Errorf("persist: checkpoint is %d bytes, want %d", len(data), want)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(data[:len(data)-4], castagnoli) != sum {
		return nil, 0, false, fmt.Errorf("persist: checkpoint CRC mismatch")
	}
	watermark = binary.LittleEndian.Uint64(data[20:])
	body := data[28 : len(data)-4]
	rows = make([][]uint64, k)
	for i := range rows {
		rows[i] = make([]uint64, w)
		for t := range rows[i] {
			rows[i][t] = binary.LittleEndian.Uint64(body[(i*w+t)*8:])
		}
	}
	return rows, watermark, true, nil
}

// recoverInto loads the checkpoint and replays the logs into m,
// repairing torn tails in place. It returns the recovery summary, the
// highest segment generation seen, and the highest sequence number seen.
func recoverInto(dir string, m *shard.Map) (Recovery, uint64, uint64, error) {
	k, w := m.Shards(), m.W()
	var rec Recovery

	rows, watermark, haveCkpt, err := readCheckpoint(dir, k, w)
	if err != nil {
		return rec, 0, 0, err
	}
	rec.Checkpoint, rec.Watermark = haveCkpt, watermark

	segs, err := listSegments(dir)
	if err != nil {
		return rec, 0, 0, err
	}
	var maxGen, maxSeq uint64
	maxSeq = watermark
	var all []Record
	for _, sg := range segs {
		if sg.gen > maxGen {
			maxGen = sg.gen
		}
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return rec, 0, 0, fmt.Errorf("persist: %w", err)
		}
		recs, good, err := parseRecords(data, w)
		if err != nil {
			return rec, 0, 0, fmt.Errorf("%w (%s)", err, sg.path)
		}
		if good < len(data) {
			if err := os.Truncate(sg.path, int64(good)); err != nil {
				return rec, 0, 0, fmt.Errorf("persist: repairing %s: %w", sg.path, err)
			}
			rec.Repaired++
		}
		all = append(all, recs...)
		rec.Segments++
	}
	// Same-shard commit order is Seq order (see the package comment);
	// a global Seq sort therefore replays every shard correctly.
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })

	h := m.Acquire()
	defer h.Release()
	if haveCkpt {
		for i, row := range rows {
			row := row
			h.Update(m.KeyForShard(i), func(v []uint64) { copy(v, row) })
		}
	}
	for i := range all {
		r := &all[i]
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		if r.Seq <= watermark {
			rec.Skipped++
			continue
		}
		switch r.Op {
		case wire.OpUpdate:
			args, mode := r.Args, r.Mode
			h.Update(r.Key, func(v []uint64) { wire.Merge(v, args, mode) })
		case wire.OpUpdateMulti:
			args, mode := r.Args, r.Mode
			h.UpdateMulti(r.Keys, func(vals [][]uint64) {
				for j, v := range vals {
					wire.Merge(v, args[j*w:(j+1)*w], mode)
				}
			})
		}
		rec.Replayed++
	}
	return rec, maxGen, maxSeq, nil
}

// metaFile pins the directory to one map geometry so a daemon restarted
// with different -shards/-words fails loudly even before the first
// checkpoint exists.
const metaFile = "meta"

// checkMeta validates dir's geometry stamp, writing it on first use.
func checkMeta(dir string, k, w int) error {
	path := filepath.Join(dir, metaFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		tmp := path + ".tmp"
		body := fmt.Sprintf("mwllsc persist v1\nk=%d\nw=%d\n", k, w)
		if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
		return syncDir(dir)
	}
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	var mk, mw int
	if _, err := fmt.Sscanf(string(data), "mwllsc persist v1\nk=%d\nw=%d\n", &mk, &mw); err != nil {
		return fmt.Errorf("persist: %s is not a durability directory (bad meta file)", dir)
	}
	if mk != k || mw != w {
		return fmt.Errorf("persist: %s was created for K=%d W=%d, map is K=%d W=%d", dir, mk, mw, k, w)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing %s: %w", dir, err)
	}
	return nil
}
