package bench

import (
	"fmt"
	"os"
	"runtime"

	"mwllsc/internal/persist"
	"mwllsc/internal/server"
	"mwllsc/internal/shard"
)

// E12Durability builds the durability-cost table: closed-loop Add
// throughput and latency over loopback TCP with the persistence layer
// at each fsync policy, against the in-memory server as baseline. The
// spread between rows prices the append-only log itself (memory →
// none), the background fsync (none → everysec) and group-commit
// acknowledgement gating (everysec → always); log MiB and syncs show
// how much disk work bought each row's guarantee.
func E12Durability(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		k        = 16
		w        = 2
		maxBatch = 64
		conns    = 2
		workers  = 32
	)
	t := &Table{
		ID: "e12",
		Title: fmt.Sprintf("E12: durability cost over loopback TCP (K=%d shards, W=%d, maxbatch=%d, conns=%d, inflight=%d, %v/point)",
			k, w, maxBatch, conns, workers, o.Dur),
		Note: "closed-loop Add load as in E11; procs = GOMAXPROCS for the point; memory = no persistence; " +
			"none/everysec/always = append-only log with that fsync policy (always gates each ack on a " +
			"group-commit fsync); log MiB / syncs = disk work during the measurement window.",
		Cols: []string{"procs", "durability", "ops/s", "p50 us", "p99 us", "avg batch", "log MiB", "syncs"},
	}

	type row struct {
		name    string
		durable bool
		policy  persist.Policy
	}
	rows := []row{
		{"memory", false, 0},
		{"none", true, persist.SyncNone},
		{"everysec", true, persist.SyncEverySec},
		{"always", true, persist.SyncAlways},
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore the ambient setting
	for _, procs := range o.Procs {
		runtime.GOMAXPROCS(procs)
		for _, r := range rows {
			if err := e12Point(t, procs, r.name, r.durable, r.policy, k, w, maxBatch, conns, workers, o); err != nil {
				return nil, fmt.Errorf("E12 procs=%d %s: %w", procs, r.name, err)
			}
		}
	}
	return t, nil
}

// e12Point measures one durability configuration on a fresh server and
// appends its row.
func e12Point(t *Table, procs int, name string, durable bool, policy persist.Policy, k, w, maxBatch, conns, workers int, o Options) error {
	m, err := shard.NewMap(k, conns+2, w)
	if err != nil {
		return err
	}
	opts := []server.Option{server.WithMaxBatch(maxBatch)}
	var st *persist.Store
	if durable {
		dir, err := os.MkdirTemp("", "llscbench-e12-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, _, err = persist.Open(dir, m, persist.Options{Policy: policy})
		if err != nil {
			return err
		}
		defer st.Close()
		opts = append(opts, server.WithPersist(st))
	}
	s := server.New(m, opts...)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	go s.Serve()
	defer s.Close()

	res, err := NetLoadClosedLoop(addr.String(), conns, workers, w, o.Dur, 0)
	if err != nil {
		return err
	}
	logMiB, syncs := "-", "-"
	if st != nil {
		ps := st.Stats()
		logMiB = fmt.Sprintf("%.1f", float64(ps.Bytes)/(1<<20))
		syncs = fmt.Sprintf("%d", ps.Syncs)
	}
	t.AddRow(procs, name, res.OpsPerSec,
		float64(res.P50.Nanoseconds())/1e3, float64(res.P99.Nanoseconds())/1e3,
		res.AvgBatch, logMiB, syncs)
	return nil
}
