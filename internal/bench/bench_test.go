package bench

import (
	"strings"
	"testing"
	"time"

	"mwllsc/internal/impls"
)

// fast options keep the experiment smoke tests quick.
func fast() Options {
	return Options{Dur: 5 * time.Millisecond, Iters: 300}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "demo", Note: "note", Cols: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 1234567.0)
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"## demo", "note", "a", "bb", "2.5", "1.23e+06"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "csv demo", Cols: []string{"a", "b"}}
	tb.AddRow("plain", 1.5)
	tb.AddRow(`quo"ted,cell`, 2)
	var sb strings.Builder
	tb.FprintCSV(&sb)
	out := sb.String()
	for _, want := range []string{"# csv demo", "a,b", "plain,1.5", `"quo""ted,cell",2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureLatencyRuns(t *testing.T) {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := MeasureLatency(f, 4, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if lat.LL <= 0 || lat.VL <= 0 {
		t.Fatalf("non-positive latencies: %+v", lat)
	}
}

func TestThroughputRuns(t *testing.T) {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	ops, frac, err := Throughput(f, 4, 4, 2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ops <= 0 {
		t.Fatal("zero throughput")
	}
	if frac <= 0 || frac > 1 {
		t.Fatalf("implausible success fraction %v", frac)
	}
	if _, _, err := Throughput(f, 2, 4, 4, time.Millisecond); err == nil {
		t.Fatal("accepted g > n")
	}
}

func TestReadMostlyThroughputRuns(t *testing.T) {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := ReadMostlyThroughput(f, 4, 8, 3, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if reads <= 0 {
		t.Fatal("zero read throughput")
	}
}

func TestAllocsPerRoundJPIsZero(t *testing.T) {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	allocs, err := AllocsPerRound(f, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("paper's algorithm allocated %v per round on tagged substrate, want 0", allocs)
	}
}

func TestAllocsPerRoundGCPtrPositive(t *testing.T) {
	f, err := impls.ByName("gcptr")
	if err != nil {
		t.Fatal(err)
	}
	allocs, err := AllocsPerRound(f, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if allocs < 1 {
		t.Fatalf("gcptr allocated %v per round, want >= 1", allocs)
	}
}

// TestAllExperimentsBuild smoke-runs every experiment at tiny scale; the
// goal is that the full harness can always regenerate every table.
func TestAllExperimentsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow-ish; skipped with -short")
	}
	o := fast()
	o.Impls = []string{"jp", "amstyle"} // keep the smoke test fast
	builders := map[string]func(Options) (*Table, error){
		"E1": E1TimeComplexity,
		"E2": E2Space,
		"E3": E3Throughput,
		"E4": E4Helping,
		"E5": E5Substrate,
		"E6": E6Applications,
		"E7": E7Allocation,
		"E8": E8Sharding,
		"E9": E9Registry,
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			tb, err := build(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("empty table")
			}
			var sb strings.Builder
			tb.Fprint(&sb)
			if !strings.Contains(sb.String(), name+":") {
				t.Fatalf("table title missing experiment id:\n%s", sb.String())
			}
		})
	}
}

// TestE2SpaceRatioGrowsWithN pins the headline: the amstyle/jp paper-word
// ratio must increase monotonically in N for fixed W (it is Θ(N)).
func TestE2SpaceRatioGrowsWithN(t *testing.T) {
	jp, err := impls.ByName(impls.JP)
	if err != nil {
		t.Fatal(err)
	}
	am, err := impls.ByName("amstyle")
	if err != nil {
		t.Fatal(err)
	}
	const w = 16
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		js, err := SpaceOf(jp, n, w)
		if err != nil {
			t.Fatal(err)
		}
		as, err := SpaceOf(am, n, w)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(as.PaperWords()) / float64(js.PaperWords())
		if ratio <= prev {
			t.Fatalf("n=%d: ratio %.2f did not grow (prev %.2f)", n, ratio, prev)
		}
		prev = ratio
	}
	if prev < 16 {
		t.Fatalf("ratio at n=64 is %.1f, expected the factor-N separation to exceed 16", prev)
	}
}
