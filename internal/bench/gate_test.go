package bench

import (
	"strings"
	"testing"
)

// mkReport builds a one-experiment report in the E11 shape with the
// given ops/s values and an e13-style allocs table.
func mkReport(ops []float64, allocs float64) *Report {
	t := &Table{ID: "e11", Cols: []string{"procs", "conns", "ops/s", "p99 us"}}
	for i, v := range ops {
		t.AddRow(1, i+1, v, 12.5)
	}
	a := &Table{ID: "e13", Cols: []string{"path", "allocs/op"}}
	a.AddRow("server update execute", allocs)
	return NewReport([]*Table{t, a})
}

func TestGatePassesOnIdenticalReports(t *testing.T) {
	base := mkReport([]float64{100000, 200000}, 0)
	res := CompareReports(base, base, GateOptions{})
	if !res.OK() {
		t.Fatalf("identical reports failed the gate: %v", res.Failures)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("identical reports warned: %v", res.Warnings)
	}
	// Two throughput cells + one alloc cell.
	if res.Checked != 3 {
		t.Fatalf("checked %d cells, want 3", res.Checked)
	}
}

func TestGateWarnsAndFailsOnThroughputLoss(t *testing.T) {
	base := mkReport([]float64{100000, 200000}, 0)

	// 15% loss on one row: inside the warn band, outside the fail band.
	warn := CompareReports(base, mkReport([]float64{85000, 200000}, 0), GateOptions{})
	if !warn.OK() {
		t.Fatalf("15%% loss failed the gate: %v", warn.Failures)
	}
	if len(warn.Warnings) != 1 || !strings.Contains(warn.Warnings[0], "warn band") {
		t.Fatalf("15%% loss warnings = %v, want one warn-band entry", warn.Warnings)
	}

	// 30% loss on one of two rows: the median (15%) stays under the fail
	// band — single-point jitter warns instead of failing.
	point := CompareReports(base, mkReport([]float64{70000, 200000}, 0), GateOptions{})
	if !point.OK() {
		t.Fatalf("single-row 30%% loss failed the gate: %v", point.Failures)
	}

	// 30% loss on every row: the median crosses the fail band.
	fail := CompareReports(base, mkReport([]float64{70000, 140000}, 0), GateOptions{})
	if fail.OK() {
		t.Fatal("across-the-board 30% throughput loss passed the gate")
	}
	if !strings.Contains(fail.Failures[0], "median") {
		t.Fatalf("failure message %q does not name the median rule", fail.Failures[0])
	}

	// 60% loss on one row: past twice the fail band, localized or not,
	// that is a regression.
	crater := CompareReports(base, mkReport([]float64{40000, 200000}, 0), GateOptions{})
	if crater.OK() {
		t.Fatal("a 60% single-row crater passed the gate")
	}

	// Gains never warn.
	gain := CompareReports(base, mkReport([]float64{150000, 300000}, 0), GateOptions{})
	if !gain.OK() || len(gain.Warnings) != 0 {
		t.Fatalf("throughput gain tripped the gate: %v %v", gain.Failures, gain.Warnings)
	}
}

func TestGateFailsOnAnyAllocIncrease(t *testing.T) {
	base := mkReport([]float64{100000}, 0)
	res := CompareReports(base, mkReport([]float64{100000}, 1), GateOptions{})
	if res.OK() {
		t.Fatal("a new hot-path allocation passed the gate")
	}
	if !strings.Contains(res.Failures[0], "allocation-free") {
		t.Fatalf("failure message %q does not name the alloc gate", res.Failures[0])
	}
}

func TestGateMatchesRowsByKeyNotOrder(t *testing.T) {
	base := mkReport([]float64{100000, 200000}, 0)
	cur := mkReport(nil, 0)
	// Same rows, reversed order: keys (procs, conns) must pair them up.
	e11 := &Table{ID: "e11", Cols: []string{"procs", "conns", "ops/s", "p99 us"}}
	e11.AddRow(1, 2, 200000.0, 12.5)
	e11.AddRow(1, 1, 100000.0, 12.5)
	cur.Experiments[0] = e11.JSON()
	res := CompareReports(base, cur, GateOptions{})
	if !res.OK() || len(res.Warnings) != 0 {
		t.Fatalf("reordered rows tripped the gate: %v %v", res.Failures, res.Warnings)
	}
}

func TestGateStructuralMismatchesWarnOnly(t *testing.T) {
	base := mkReport([]float64{100000, 200000}, 0)
	cur := mkReport([]float64{100000}, 0) // second row gone
	cur.Experiments = cur.Experiments[:1] // e13 gone entirely
	res := CompareReports(base, cur, GateOptions{})
	if !res.OK() {
		t.Fatalf("missing rows/experiments failed the gate: %v", res.Failures)
	}
	if len(res.Warnings) != 2 {
		t.Fatalf("warnings = %v, want a missing-row and a missing-experiment entry", res.Warnings)
	}
}

// TestE13AllocsZero runs the real E13 table and requires every gated
// path to be allocation-free — the same bar CI's gate holds the
// committed baseline to.
func TestE13AllocsZero(t *testing.T) {
	tbl, err := E13Allocs(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("e13 has %d rows, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != "0" {
			t.Errorf("%s: %s allocs/op, want 0", row[0], row[1])
		}
	}
}

func TestBestOfTakesBestCells(t *testing.T) {
	slow := mkReport([]float64{60000, 200000}, 1)
	fast := mkReport([]float64{100000, 150000}, 0)
	best := BestOf(slow, fast)
	// Row 1 throughput from fast, row 2 from slow, allocs from fast.
	res := CompareReports(mkReport([]float64{100000, 200000}, 0), best, GateOptions{})
	if !res.OK() || len(res.Warnings) != 0 {
		t.Fatalf("best-of merge tripped the gate: %v %v", res.Failures, res.Warnings)
	}
	// The merged report's records stay in sync with its rows.
	e11 := best.Experiments[0]
	if e11.Rows[0][2] != e11.Records[0]["ops/s"] {
		t.Fatalf("row %q and record %q diverge", e11.Rows[0][2], e11.Records[0]["ops/s"])
	}
}
