package bench

import (
	"strings"
	"testing"
	"time"

	"mwllsc/internal/trace"
)

func TestNetLoadClosedLoop(t *testing.T) {
	srv, addr, err := StartLoopbackServer(4, 4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := NetLoadClosedLoop(addr, 2, 4, 2, 30*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible latencies: %+v", res)
	}
	if res.AvgBatch <= 0 {
		t.Fatalf("no batching stats: %+v", res)
	}
}

func TestNetLoadWrongWidthFails(t *testing.T) {
	srv, addr, err := StartLoopbackServer(2, 3, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// w=1 against a W=4 server: the server rejects every Add. The worker
	// counts and continues, so the zero-success error must report more
	// than one failure — proof it did not abort on the first.
	_, err = NetLoadClosedLoop(addr, 1, 1, 1, 20*time.Millisecond, 0)
	if err == nil {
		t.Fatal("width mismatch went unnoticed")
	}
	if !strings.Contains(err.Error(), "errors") {
		t.Fatalf("error does not carry the failure count: %v", err)
	}
}

func TestNetLoadTraced(t *testing.T) {
	srv, addr, err := StartLoopbackServer(4, 4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := NetLoadClosedLoop(addr, 1, 2, 2, 30*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) == 0 {
		t.Fatal("traceEvery=4 collected no traces")
	}
	for _, tr := range res.Traces {
		if tr.ID == 0 || tr.Total <= 0 {
			t.Fatalf("incomplete trace: %+v", tr)
		}
		// The loopback server runs with a tracer attached, so the
		// server-side stage breakdown must come back on the wire.
		if len(tr.ServerStages) != trace.WireStages {
			t.Fatalf("trace has %d server stages, want %d: %+v", len(tr.ServerStages), trace.WireStages, tr)
		}
	}
	if res.Errs != 0 {
		t.Fatalf("unexpected op errors: %d (%s)", res.Errs, res.LastErr)
	}
}

func TestE11NetServing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point load run; skipped with -short")
	}
	// Two explicit procs values: the sweep must yield one row group per
	// value regardless of the machine's core count.
	tab, err := E11NetServing(Options{Dur: 10 * time.Millisecond, Iters: 100, Procs: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "e11" || len(tab.Rows) != 14 || len(tab.Cols) != 7 {
		t.Fatalf("table shape: id=%s rows=%d cols=%d", tab.ID, len(tab.Rows), len(tab.Cols))
	}
	for i, row := range tab.Rows {
		want := "1"
		if i >= 7 {
			want = "2"
		}
		if row[0] != want {
			t.Fatalf("row %d procs = %s, want %s", i, row[0], want)
		}
	}
}
