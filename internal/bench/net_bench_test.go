package bench

import (
	"testing"
	"time"
)

func TestNetLoadClosedLoop(t *testing.T) {
	srv, addr, err := StartLoopbackServer(4, 4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := NetLoadClosedLoop(addr, 2, 4, 2, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible latencies: %+v", res)
	}
	if res.AvgBatch <= 0 {
		t.Fatalf("no batching stats: %+v", res)
	}
}

func TestNetLoadWrongWidthFails(t *testing.T) {
	srv, addr, err := StartLoopbackServer(2, 3, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// w=1 against a W=4 server: the server rejects every Add.
	if _, err := NetLoadClosedLoop(addr, 1, 1, 1, 20*time.Millisecond); err == nil {
		t.Fatal("width mismatch went unnoticed")
	}
}

func TestE11NetServing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point load run; skipped with -short")
	}
	tab, err := E11NetServing(Options{Dur: 10 * time.Millisecond, Iters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "e11" || len(tab.Rows) != 7 || len(tab.Cols) != 6 {
		t.Fatalf("table shape: id=%s rows=%d cols=%d", tab.ID, len(tab.Rows), len(tab.Cols))
	}
}
