package bench

import (
	"testing"
	"time"
)

func TestNetLoadClosedLoop(t *testing.T) {
	srv, addr, err := StartLoopbackServer(4, 4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := NetLoadClosedLoop(addr, 2, 4, 2, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible latencies: %+v", res)
	}
	if res.AvgBatch <= 0 {
		t.Fatalf("no batching stats: %+v", res)
	}
}

func TestNetLoadWrongWidthFails(t *testing.T) {
	srv, addr, err := StartLoopbackServer(2, 3, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// w=1 against a W=4 server: the server rejects every Add.
	if _, err := NetLoadClosedLoop(addr, 1, 1, 1, 20*time.Millisecond); err == nil {
		t.Fatal("width mismatch went unnoticed")
	}
}

func TestE11NetServing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point load run; skipped with -short")
	}
	// Two explicit procs values: the sweep must yield one row group per
	// value regardless of the machine's core count.
	tab, err := E11NetServing(Options{Dur: 10 * time.Millisecond, Iters: 100, Procs: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "e11" || len(tab.Rows) != 14 || len(tab.Cols) != 7 {
		t.Fatalf("table shape: id=%s rows=%d cols=%d", tab.ID, len(tab.Rows), len(tab.Cols))
	}
	for i, row := range tab.Rows {
		want := "1"
		if i >= 7 {
			want = "2"
		}
		if row[0] != want {
			t.Fatalf("row %d procs = %s, want %s", i, row[0], want)
		}
	}
}
