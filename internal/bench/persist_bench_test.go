package bench

import (
	"testing"
	"time"
)

func TestE12Durability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point load run with disk I/O; skipped with -short")
	}
	tab, err := E12Durability(Options{Dur: 10 * time.Millisecond, Procs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "e12" || len(tab.Rows) != 4 || len(tab.Cols) != 8 {
		t.Fatalf("table shape: id=%s rows=%d cols=%d", tab.ID, len(tab.Rows), len(tab.Cols))
	}
	// The memory row has no disk columns; every durable row does.
	if tab.Rows[0][1] != "memory" || tab.Rows[0][6] != "-" {
		t.Fatalf("memory row: %v", tab.Rows[0])
	}
	for _, row := range tab.Rows[1:] {
		if row[6] == "-" || row[7] == "-" {
			t.Fatalf("durable row %q is missing its disk columns: %v", row[1], row)
		}
	}
}
