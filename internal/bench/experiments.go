package bench

import (
	"fmt"
	"runtime"
	"time"

	"mwllsc/internal/core"
	"mwllsc/internal/impls"
	"mwllsc/internal/sim"
)

// Options tunes experiment scale; zero values select defaults sized for an
// interactive run (a few seconds per experiment).
type Options struct {
	// Dur is the measurement window per throughput point.
	Dur time.Duration
	// Iters is the iteration count per latency point.
	Iters int
	// Impls restricts which implementations run (default: all).
	Impls []string
	// Procs is the GOMAXPROCS sweep for the serving experiments E11/E12
	// (default: ProcsSweep()). Values above NumCPU are honored — on a
	// small CI box that still exercises the scheduler-contention shape,
	// and the report's gomaxprocs/num_cpu stamps keep the run honest.
	Procs []int
}

func (o Options) withDefaults() Options {
	if o.Dur == 0 {
		o.Dur = 100 * time.Millisecond
	}
	if o.Iters == 0 {
		o.Iters = 20000
	}
	if len(o.Impls) == 0 {
		o.Impls = impls.Names()
	}
	if len(o.Procs) == 0 {
		o.Procs = ProcsSweep()
	}
	return o
}

// ProcsSweep returns the default GOMAXPROCS sweep for the serving
// experiments: {1, 4, 8, 16} capped at the ambient parallelism — the
// larger of NumCPU and the starting GOMAXPROCS, so GOMAXPROCS=4 in the
// environment raises the ceiling on a single-core machine.
func ProcsSweep() []int {
	ceil := runtime.NumCPU()
	if g := runtime.GOMAXPROCS(0); g > ceil {
		ceil = g
	}
	procs := []int{1}
	for _, p := range []int{4, 8, 16} {
		if p <= ceil {
			procs = append(procs, p)
		}
	}
	return procs
}

// E1TimeComplexity builds the Theorem 1 time table: per-op latency vs W.
// The paper's claim is the shape — LL and SC linear in W, VL flat.
func E1TimeComplexity(o Options) (*Table, error) {
	o = o.withDefaults()
	const n = 8
	ws := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

	t := &Table{
		Title: "E1: operation latency vs W (N=8, uncontended) — Theorem 1 time bounds",
		Note:  "paper: LL,SC = O(W); VL = O(1). Expect LL/SC columns linear in W, VL flat.",
		Cols:  []string{"impl", "op"},
	}
	for _, w := range ws {
		t.Cols = append(t.Cols, fmt.Sprintf("W=%d ns", w))
	}
	for _, name := range o.Impls {
		f, err := impls.ByName(name)
		if err != nil {
			return nil, err
		}
		rows := map[string][]any{
			"LL": {name, "LL"},
			"SC": {name, "SC"},
			"VL": {name, "VL"},
		}
		for _, w := range ws {
			lat, err := MeasureLatency(f, n, w, o.Iters)
			if err != nil {
				return nil, fmt.Errorf("E1 %s W=%d: %w", name, w, err)
			}
			rows["LL"] = append(rows["LL"], lat.LL)
			rows["SC"] = append(rows["SC"], lat.SC)
			rows["VL"] = append(rows["VL"], lat.VL)
		}
		for _, op := range []string{"LL", "SC", "VL"} {
			t.AddRow(rows[op]...)
		}
	}
	return t, nil
}

// E2Space builds the headline space table: footprint vs N at several W,
// paper accounting and physical bytes, with the AM/JP ratio that the paper
// predicts to be Θ(N).
func E2Space(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title: "E2: space vs N and W — paper accounting (64-bit words) and physical bytes",
		Note:  "paper: JP = O(NW) vs previous best O(N^2 W); the am/jp ratio column should grow ~linearly with N.",
		Cols: []string{"N", "W", "jp words", "amstyle words", "ratio",
			"jp phys KiB", "amstyle phys KiB", "phys ratio"},
	}
	jp, err := impls.ByName(impls.JP)
	if err != nil {
		return nil, err
	}
	am, err := impls.ByName("amstyle")
	if err != nil {
		return nil, err
	}
	for _, w := range []int{4, 16, 64, 256} {
		for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
			js, err := SpaceOf(jp, n, w)
			if err != nil {
				return nil, err
			}
			as, err := SpaceOf(am, n, w)
			if err != nil {
				return nil, err
			}
			t.AddRow(n, w, js.PaperWords(), as.PaperWords(),
				float64(as.PaperWords())/float64(js.PaperWords()),
				float64(js.PhysBytes)/1024, float64(as.PhysBytes)/1024,
				float64(as.PhysBytes)/float64(js.PhysBytes))
		}
	}
	return t, nil
}

// E3Throughput builds the contention scaling table: LL;SC rounds/sec vs
// active goroutines for every implementation.
func E3Throughput(o Options) (*Table, error) {
	o = o.withDefaults()
	const w = 16
	gs := goroutineSweep()
	n := gs[len(gs)-1]

	t := &Table{
		Title: fmt.Sprintf("E3: throughput vs contention (W=%d, N=%d, %v/point) — wait-free progress", w, n, o.Dur),
		Note:  "rounds = completed LL;SC pairs per second (all goroutines); sc% = successful SC fraction.",
		Cols:  []string{"impl"},
	}
	for _, g := range gs {
		t.Cols = append(t.Cols, fmt.Sprintf("G=%d", g), fmt.Sprintf("sc%%@%d", g))
	}
	for _, name := range o.Impls {
		f, err := impls.ByName(name)
		if err != nil {
			return nil, err
		}
		row := []any{name}
		for _, g := range gs {
			ops, frac, err := Throughput(f, n, w, g, o.Dur)
			if err != nil {
				return nil, fmt.Errorf("E3 %s G=%d: %w", name, g, err)
			}
			row = append(row, ops, 100*frac)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// E4Helping builds the helping-dynamics table: the fraction of LL
// operations completed via the Help mechanism under real contention, plus
// handoff and bank-fix counters; and one simulator row with forced
// starvation where helping is provoked deterministically.
func E4Helping(o Options) (*Table, error) {
	o = o.withDefaults()
	const w = 8
	gs := goroutineSweep()
	n := gs[len(gs)-1]

	t := &Table{
		Title: "E4: helping dynamics (paper §2.2) — helped LLs, handoffs, bank fixes",
		Note:  "real rows: natural contention. sim row: a reader starved to 1/250 steps, which forces the help path.",
		Cols:  []string{"scenario", "LLs", "helped", "helped%", "handoffs", "bankfixes", "sc%"},
	}
	for _, g := range gs {
		var stats core.Stats
		f := impls.JPWithStats(&stats)
		if _, _, err := Throughput(f, n, w, g, o.Dur); err != nil {
			return nil, fmt.Errorf("E4 G=%d: %w", g, err)
		}
		s := stats.Snapshot()
		t.AddRow(fmt.Sprintf("real G=%d", g), s.LLTotal, s.LLHelped,
			100*s.HelpedFraction(), s.Handoffs, s.BankFixes, 100*s.SuccessFraction())
	}

	res, err := sim.Run(sim.Config{
		N: 3, W: w, OpsPerProc: 30, Seed: 4,
		Policy: &sim.Starve{Victim: 0, Every: 250, Inner: sim.NewRandom(4)},
	})
	if err != nil {
		return nil, err
	}
	if len(res.Violations) != 0 {
		return nil, fmt.Errorf("E4 sim run had violations: %v", res.Violations)
	}
	s := res.Stats
	t.AddRow("sim starved reader", s.LLTotal, s.LLHelped,
		100*s.HelpedFraction(), s.Handoffs, s.BankFixes, 100*s.SuccessFraction())
	return t, nil
}

// E5Substrate builds the substrate-ablation table: the paper's algorithm on
// the tagged vs pointer single-word constructions.
func E5Substrate(o Options) (*Table, error) {
	o = o.withDefaults()
	const n, w = 8, 16
	t := &Table{
		Title: "E5: single-word substrate ablation (N=8, W=16)",
		Note:  "tagged: packed value+unique tag (no allocation); ptr: pointer-to-cell (exact, allocates per mutation).",
		Cols:  []string{"substrate", "LL ns", "SC ns", "VL ns", "allocs/round", "rounds/s G=4"},
	}
	for _, name := range []string{"jp", "jp-ptr"} {
		f, err := impls.ByName(name)
		if err != nil {
			return nil, err
		}
		lat, err := MeasureLatency(f, n, w, o.Iters)
		if err != nil {
			return nil, err
		}
		allocs, err := AllocsPerRound(f, n, w)
		if err != nil {
			return nil, err
		}
		ops, _, err := Throughput(f, n, w, 4, o.Dur)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, lat.LL, lat.SC, lat.VL, allocs, ops)
	}
	return t, nil
}

// E6Applications builds the application table: snapshot and queue
// throughput over the paper's object vs baselines.
func E6Applications(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		comps = 16
		g     = 4
		n     = 8
	)
	t := &Table{
		Title: fmt.Sprintf("E6: applications on top of the multiword object (G=%d, %v/point)", g, o.Dur),
		Note:  "snapshot: C=16 components, 1 writer + 3 scanners (scans/s); queue: 2 producers + 2 consumers (ops/s).",
		Cols:  []string{"impl", "snapshot scans/s", "queue ops/s"},
	}
	for _, name := range o.Impls {
		f, err := impls.ByName(name)
		if err != nil {
			return nil, err
		}
		scans, err := snapshotScanThroughput(f, n, comps, g, o.Dur)
		if err != nil {
			return nil, fmt.Errorf("E6 %s snapshot: %w", name, err)
		}
		qops, err := queueThroughput(f, n, o.Dur)
		if err != nil {
			return nil, fmt.Errorf("E6 %s queue: %w", name, err)
		}
		t.AddRow(name, scans, qops)
	}
	return t, nil
}

// E7Allocation builds the allocation-cost table: B/op evidence that the
// paper's explicit buffer recycling avoids the GC pressure of the pointer
// approaches.
func E7Allocation(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		Title: "E7: steady-state heap allocations per LL;SC round (N=8)",
		Note:  "paper's algorithm recycles its 3N buffers: zero steady-state allocation on the tagged substrate.",
		Cols:  []string{"impl", "W=4", "W=64", "W=512"},
	}
	for _, name := range o.Impls {
		f, err := impls.ByName(name)
		if err != nil {
			return nil, err
		}
		row := []any{name}
		for _, w := range []int{4, 64, 512} {
			allocs, err := AllocsPerRound(f, 8, w)
			if err != nil {
				return nil, err
			}
			row = append(row, allocs)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// goroutineSweep returns the contention sweep 1..2*cores (capped at 16).
func goroutineSweep() []int {
	maxG := 2 * runtime.GOMAXPROCS(0)
	if maxG > 16 {
		maxG = 16
	}
	if maxG < 4 {
		maxG = 4
	}
	var gs []int
	for g := 1; g <= maxG; g *= 2 {
		gs = append(gs, g)
	}
	return gs
}
