package bench

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/fault"
	"mwllsc/internal/persist"
	"mwllsc/internal/server"
	"mwllsc/internal/shard"
	"mwllsc/internal/trace"
)

// E16: overload behavior with and without admission control.
//
// The experiment is the classic open- vs closed-loop contrast. A
// closed-loop run (each worker waits for its response) can never offer
// more than capacity — push it harder and latency absorbs the excess.
// Real overload is open-loop: requests arrive on their own clock,
// indifferent to how the server is doing. Under sustained 2× offered
// load a work-conserving server still completes operations at capacity,
// but the queue in front of it grows until every response is late —
// throughput looks healthy while goodput (responses within an SLO)
// collapses to zero. Admission control trades that silent collapse for
// explicit, cheap busy rejections: excess batches bounce before
// touching the map, the admitted ones run at capacity latency, and
// goodput holds near capacity.

// sloResult is one open-loop measurement window.
type sloResult struct {
	ok, errs  int64 // completed ops / failed ops
	dropped   int64 // arrivals shed at the generator because outstanding was full
	withinSLO int64 // completed ops whose arrival-to-response time met the SLO
	elapsed   float64
	lats      []time.Duration // sorted completion latencies (bounded)
}

// netLoadOpenLoop drives addr at a fixed arrival rate (ops/sec) for
// roughly dur, with at most outstanding operations in flight at the
// client. Arrivals are paced by wall clock and stamped at generation;
// an operation's latency runs from its arrival stamp to its response,
// so client-side queueing — the first symptom of an overloaded server —
// is charged to the operation, exactly as a caller upstream of this
// client would experience it. Arrivals that find all outstanding slots
// taken are counted as dropped: by then the backlog alone guarantees
// they would miss any SLO.
func netLoadOpenLoop(addr string, conns, w int, rate float64, outstanding int,
	dur time.Duration, slo time.Duration, opts ...client.Option) (sloResult, error) {
	c, err := client.Dial(addr, append([]client.Option{client.WithConns(conns)}, opts...)...)
	if err != nil {
		return sloResult{}, err
	}
	defer c.Close()

	var (
		res     sloResult
		okN     atomic.Int64
		errN    atomic.Int64
		sloN    atomic.Int64
		wg      sync.WaitGroup
		tokens  = make(chan time.Time, outstanding)
		latMu   sync.Mutex
		lats    []time.Duration
		deltas  = make([]uint64, w)
		ctx     = context.Background()
		dropped int64
	)
	deltas[0] = 1
	for g := 0; g < outstanding; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := uint64(g) << 40
			var local []time.Duration
			for ts := range tokens {
				key++
				_, err := c.Add(ctx, shard.HashUint64(key), deltas)
				lat := time.Since(ts)
				if err != nil {
					errN.Add(1)
					continue
				}
				okN.Add(1)
				if lat <= slo {
					sloN.Add(1)
				}
				if len(local) < latencySamples/64 {
					local = append(local, lat)
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(g)
	}

	// Pacer: every tick, top the issued count up to rate*elapsed.
	// Arrivals beyond the outstanding window are shed and counted.
	start := time.Now()
	issued := 0
	for {
		elapsed := time.Since(start)
		if elapsed >= dur {
			break
		}
		for target := int(rate * elapsed.Seconds()); issued < target; issued++ {
			select {
			case tokens <- time.Now():
			default:
				dropped++
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(tokens)
	wg.Wait() // drain: at most `outstanding` stragglers past the window

	res.elapsed = time.Since(start).Seconds()
	res.ok, res.errs, res.dropped = okN.Load(), errN.Load(), dropped
	res.withinSLO = sloN.Load()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.lats = lats
	if res.ok == 0 && res.errs == 0 {
		return res, fmt.Errorf("bench: open-loop window completed no ops")
	}
	return res, nil
}

func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(float64(len(lats)) * q)
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

// E16Overload builds the overload-control table: capacity under
// closed-loop load, then goodput and tail latency under 2× open-loop
// offered load with admission control off versus on. The acceptance
// bar for the on arm is sustaining ≥ 90% of capacity goodput while the
// off arm collapses.
func E16Overload(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		// Few shards: the group-commit round fsyncs each dirty shard log
		// sequentially, so the shard count sets the latency floor every
		// ack pays; keeping it low keeps the healthy p99 — and the SLO
		// derived from it — in the tens of milliseconds.
		k        = 4
		w        = 2
		maxBatch = 64
		// The capacity probe saturates the disk with moderate inflight:
		// enough concurrent ops to keep the write path busy, few enough
		// that the probe's own queueing does not inflate the p99 the SLO
		// is derived from.
		capConns   = 8
		capWorkers = 16
		// The overload arms arrive through more connections and a
		// client-side window deep enough that, at 2x capacity, the backlog
		// alone pushes waiting time far past any SLO the capacity run can
		// set — collapse by queueing, not by connection starvation.
		ovConns     = 32
		outstanding = 8192
		// Admitted batches queue for the bandwidth-bound disk; maxInflight
		// is sized so the admitted backlog drains well inside the SLO at
		// disk speed while still keeping the disk saturated at 2x offered
		// load.
		maxInflight = 8
	)
	// The off arm's story needs room to unfold: its queue grows at
	// roughly capacity ops per second, so latency crosses the SLO only
	// (SLO) seconds into the window and goodput decays from there. A
	// short -dur would end the window before the collapse; floor it.
	dur := o.Dur
	if dur < time.Second {
		dur = time.Second
	}

	// Every arm serves durably with group-commit fsync on every ack —
	// llscd's production arrangement, and the configuration where
	// overload is a server-side phenomenon: acks gate on fsync rounds,
	// so under excess load batches pile up inside the durability wait
	// (where the admission token is held) instead of vanishing into
	// scheduler queues. A purely in-memory map on this benchmark's
	// loopback setup never holds more than a core's worth of batches
	// in flight at once, and admission would have nothing to reject.
	//
	// The log runs behind the fault harness's file layer modeling a
	// bandwidth-bound disk: writes are throttled to a fixed byte rate,
	// serialized across the shard logs like one device. A byte-rate cost
	// — unlike a per-write cost — is identical per record however
	// records coalesce into writes, so the ops/sec ceiling it pins is
	// independent of batch size and concurrency: the capacity probe and
	// the small-batch admission-on arm meter against the same disk.
	// Capacity is then IO-bound by construction, deterministic across
	// machines instead of reading the CI box's filesystem, and the CPU
	// headroom left over is what lets the admission-on arm reject the
	// excess cheaply, the way a server whose bottleneck is its disk (not
	// its core count) can.
	// The byte rate is chosen well below what this serving stack can
	// push through the persist layer even on one core, so the modeled
	// disk — not the scheduler — is the binding constraint in every arm.
	const (
		diskBytesPerSec = 24 << 10 // ~42 B/record (w=2) => ~585 ops/s ceiling
		fsyncLatency    = 500 * time.Microsecond
	)
	startServer := func(extra ...server.Option) (srv *server.Server, addr string, cleanup func(), err error) {
		m, err := shard.NewMap(k, ovConns+2, w)
		if err != nil {
			return nil, "", nil, err
		}
		dir, err := os.MkdirTemp("", "llscbench-e16-")
		if err != nil {
			return nil, "", nil, err
		}
		ff := fault.NewFiles(fault.FilesConfig{
			Seed:             1,
			WriteBytesPerSec: diskBytesPerSec,
			SyncLatency:      fsyncLatency,
		})
		st, _, err := persist.Open(dir, m, persist.Options{
			Policy:  persist.SyncAlways,
			OpenLog: func(path string) (persist.LogFile, error) { return ff.Open(path) },
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, "", nil, err
		}
		opts := append([]server.Option{
			server.WithMaxBatch(maxBatch),
			server.WithMetrics(server.NewMetrics(ovConns + 2)),
			server.WithTracer(trace.New(trace.Config{})),
			server.WithPersist(st),
		}, extra...)
		s := server.New(m, opts...)
		a, err := s.Listen("127.0.0.1:0")
		if err != nil {
			st.Close()
			os.RemoveAll(dir)
			return nil, "", nil, err
		}
		go s.Serve()
		return s, a.String(), func() { s.Close(); st.Close(); os.RemoveAll(dir) }, nil
	}

	// Arm 1 — capacity: closed-loop saturation throughput, and the SLO
	// every later arm is held to: 4× the capacity p99, floored at 1ms so
	// a fast machine does not set an unmeetable bar.
	_, capAddr, capCleanup, err := startServer()
	if err != nil {
		return nil, err
	}
	capRes, err := NetLoadClosedLoop(capAddr, capConns, capWorkers, w, dur, 0)
	capCleanup()
	if err != nil {
		return nil, fmt.Errorf("E16 capacity arm: %w", err)
	}
	slo := 4 * capRes.P99
	if slo < time.Millisecond {
		slo = time.Millisecond
	}
	capWithin := 0
	for _, l := range capRes.Lats {
		if l <= slo {
			capWithin++
		}
	}
	capGoodput := capRes.OpsPerSec * float64(capWithin) / float64(len(capRes.Lats))
	rate := 2 * capRes.OpsPerSec

	// Overload arms: identical 2× open-loop offered load; the only
	// difference is WithMaxInflight. Retries are off — at sustained
	// overload the goodput-optimal client policy is drop-and-move-on
	// (each arrival is replaced by a fresh one anyway); the retry path
	// is exercised by the client resilience tests, not priced here.
	type armOut struct {
		res  sloResult
		busy uint64
	}
	overloadArm := func(extra ...server.Option) (armOut, error) {
		srv, addr, cleanup, err := startServer(extra...)
		if err != nil {
			return armOut{}, err
		}
		defer cleanup()
		res, err := netLoadOpenLoop(addr, ovConns, w, rate, outstanding, dur, slo,
			client.WithRetries(0))
		if err != nil {
			return armOut{}, err
		}
		return armOut{res, srv.Stats().BusyRejects}, nil
	}
	off, err := overloadArm()
	if err != nil {
		return nil, fmt.Errorf("E16 admission-off arm: %w", err)
	}
	on, err := overloadArm(server.WithMaxInflight(maxInflight))
	if err != nil {
		return nil, fmt.Errorf("E16 admission-on arm: %w", err)
	}

	t := &Table{
		ID: "e16",
		Title: fmt.Sprintf("E16: goodput under 2x open-loop overload, admission control off vs on "+
			"(K=%d shards, W=%d, maxbatch=%d, fsync=always, SLO=%v, %v/arm)", k, w, maxBatch, slo, dur),
		Note: "goodput = OK responses within the SLO per second, SLO = max(4x capacity p99, 1ms), " +
			"latency charged from open-loop arrival (client queueing included); " +
			"all arms serve durably with group-commit fsync gating each ack; " +
			fmt.Sprintf("admission on = WithMaxInflight(%d), excess batches bounced StatusBusy; ", maxInflight) +
			"goodput column deliberately not \"/s\"-suffixed: the off arm collapses toward zero " +
			"by design, which must stay outside the regression gate.",
		Cols: []string{"arm", "load", "conns", "admit",
			"ok ops/s", "goodput", "%cap", "p50 ms", "p99 ms", "busy rejects", "errs", "drops"},
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	t.AddRow("capacity", "closed", capConns, "off",
		capRes.OpsPerSec, capGoodput, 100.0,
		ms(capRes.P50), ms(capRes.P99), uint64(0), capRes.Errs, 0)
	addOv := func(name, admit string, a armOut) {
		goodput := float64(a.res.withinSLO) / a.res.elapsed
		t.AddRow(name, "2x open", ovConns, admit,
			float64(a.res.ok)/a.res.elapsed, goodput, 100*goodput/capGoodput,
			ms(quantile(a.res.lats, 0.50)), ms(quantile(a.res.lats, 0.99)),
			a.busy, a.res.errs, a.res.dropped)
	}
	addOv("overload", "off", off)
	addOv("overload", fmt.Sprintf("on(%d)", maxInflight), on)
	return t, nil
}
