package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
	"mwllsc/internal/mwtest"
	"mwllsc/internal/shard"
)

// ShardedUpdateThroughput runs g goroutines (g <= n) against a k-shard map
// of the named implementation for roughly dur. Each goroutine pins one
// registry slot and performs Update(key, increment) on pseudo-random keys,
// so SC traffic spreads over the shards. Returns aggregate updates/sec.
//
// With yield set, each modify step calls runtime.Gosched, widening the
// LL..SC window across scheduler turns — the adversarial interleaving for
// optimistic concurrency (a long or IO-bound modify step). This is the
// regime where sharding pays most visibly: at K=1 every concurrent update
// conflicts, at K=k only ~1/k do.
func ShardedUpdateThroughput(name string, k, n, w, g int, yield bool, dur time.Duration) (opsPerSec float64, err error) {
	if g > n {
		return 0, fmt.Errorf("bench: %d goroutines > %d registry slots", g, n)
	}
	m, err := impls.NewSharded(name, k, n, w, shard.WithInitial(mwtest.Pattern(0, w)))
	if err != nil {
		return 0, err
	}
	var (
		stop   atomic.Bool
		wg     sync.WaitGroup
		counts = make([]int64, g)
	)
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			f := func(v []uint64) { v[0]++ }
			if yield {
				f = func(v []uint64) {
					v[0]++
					runtime.Gosched()
				}
			}
			// Count locally; adjacent counts[i] slots share cache lines
			// and per-op stores there would perturb the measurement.
			var done int64
			ctr := uint64(i) << 32 // disjoint per-goroutine counter ranges
			for !stop.Load() {
				for j := 0; j < 64; j++ {
					ctr++
					h.Update(shard.HashUint64(ctr), f)
					done++
				}
			}
			counts[i] = done
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("bench: no sharded updates completed")
	}
	return float64(total) / elapsed, nil
}

// RegistryUpdateThroughput measures Update throughput on a single-shard
// map of the named implementation in one of three slot-management modes,
// isolating the registry's cost:
//
//	raw      — no registry: each goroutine uses a hard-assigned process id
//	pinned   — registry: acquire one handle per goroutine, reuse for every op
//	peracq   — registry: acquire + release around every single Update
func RegistryUpdateThroughput(name, mode string, n, w, g int, dur time.Duration) (opsPerSec float64, err error) {
	if g > n {
		return 0, fmt.Errorf("bench: %d goroutines > %d registry slots", g, n)
	}
	// Build only what the mode drives: the raw object for "raw", the
	// registry-backed map for the other two.
	var m *shard.Map
	var raw mwobj.MW
	switch mode {
	case "raw":
		f, err := impls.ByName(name)
		if err != nil {
			return 0, err
		}
		if raw, err = f(n, w, mwtest.Pattern(0, w)); err != nil {
			return 0, err
		}
	case "pinned", "peracq":
		var err error
		if m, err = impls.NewSharded(name, 1, n, w, shard.WithInitial(mwtest.Pattern(0, w))); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("bench: unknown registry mode %q", mode)
	}
	var (
		stop   atomic.Bool
		wg     sync.WaitGroup
		counts = make([]int64, g)
	)
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var done int64 // local count; see ShardedUpdateThroughput
			defer func() { counts[i] = done }()
			switch mode {
			case "raw":
				v := make([]uint64, w)
				for !stop.Load() {
					for j := 0; j < 64; j++ {
						for {
							raw.LL(i, v)
							v[0]++
							if raw.SC(i, v) {
								break
							}
						}
						done++
					}
				}
			case "pinned":
				h := m.Acquire()
				defer h.Release()
				for !stop.Load() {
					for j := 0; j < 64; j++ {
						h.Update(0, func(v []uint64) { v[0]++ })
						done++
					}
				}
			case "peracq":
				for !stop.Load() {
					for j := 0; j < 64; j++ {
						m.Update(0, func(v []uint64) { v[0]++ })
						done++
					}
				}
			default:
				panic("bench: unknown registry mode " + mode)
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("bench: no registry-mode updates completed")
	}
	return float64(total) / elapsed, nil
}

// E8Sharding builds the horizontal-scaling table: aggregate Update
// throughput vs shard count K at a fixed goroutine count, for each
// implementation. The single-object bottleneck (all SCs through one X
// word) should dissolve as K grows.
func E8Sharding(o Options) (*Table, error) {
	o = o.withDefaults()
	const w = 4
	g := fixedShardGoroutines()
	ks := []int{1, 2, 4, 8, 16}

	t := &Table{
		ID: "e8",
		Title: fmt.Sprintf("E8: sharded aggregate throughput vs shard count K (G=%d goroutines, W=%d, %v/point)",
			g, w, o.Dur),
		Note: "updates = random-key read-modify-writes/sec across all goroutines, keys spread over K independent objects; " +
			"tight = back-to-back updates, yield = modify step yields the scheduler mid-transaction (long-RMW regime).",
		Cols: []string{"impl", "workload"},
	}
	for _, k := range ks {
		t.Cols = append(t.Cols, fmt.Sprintf("K=%d upd/s", k))
	}
	for _, name := range o.Impls {
		for _, workload := range []string{"tight", "yield"} {
			row := []any{name, workload}
			for _, k := range ks {
				ops, err := ShardedUpdateThroughput(name, k, g, w, g, workload == "yield", o.Dur)
				if err != nil {
					return nil, fmt.Errorf("E8 %s %s K=%d: %w", name, workload, k, err)
				}
				row = append(row, ops)
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// E9Registry builds the registry-overhead table: Update throughput through
// the handle registry (pinned handle, and acquire/release per op) against
// raw hand-assigned process ids, at 1 and G goroutines.
func E9Registry(o Options) (*Table, error) {
	o = o.withDefaults()
	const w = 4
	g := fixedShardGoroutines()

	t := &Table{
		ID:    "e9",
		Title: fmt.Sprintf("E9: handle-registry overhead on a single object (W=%d, %v/point)", w, o.Dur),
		Note:  "raw = hand-assigned ids (the seed API); pinned = one Acquire per goroutine; peracq = Acquire+Release per op.",
		Cols:  []string{"impl", "mode", "upd/s G=1", fmt.Sprintf("upd/s G=%d", g)},
	}
	for _, name := range o.Impls {
		for _, mode := range []string{"raw", "pinned", "peracq"} {
			one, err := RegistryUpdateThroughput(name, mode, g, w, 1, o.Dur)
			if err != nil {
				return nil, fmt.Errorf("E9 %s %s G=1: %w", name, mode, err)
			}
			many, err := RegistryUpdateThroughput(name, mode, g, w, g, o.Dur)
			if err != nil {
				return nil, fmt.Errorf("E9 %s %s G=%d: %w", name, mode, g, err)
			}
			t.AddRow(name, mode, one, many)
		}
	}
	return t, nil
}

// fixedShardGoroutines returns the fixed goroutine count for the sharding
// experiments: 8, the issue's reference point (K=1 -> K=8 at 8
// goroutines).
func fixedShardGoroutines() int { return 8 }
