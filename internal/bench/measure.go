package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/mwobj"
	"mwllsc/internal/mwtest"
)

// Latency holds single-operation latencies in nanoseconds.
type Latency struct {
	LL, SC, VL float64
}

// MeasureLatency times uncontended LL, SC and VL on a fresh object from f
// (one process running alone — the paper's O(W) constants without
// interference). iters should be a few thousand.
func MeasureLatency(f mwobj.Factory, n, w, iters int) (Latency, error) {
	obj, err := f(n, w, mwtest.Pattern(0, w))
	if err != nil {
		return Latency{}, err
	}
	v := make([]uint64, w)

	start := time.Now()
	for i := 0; i < iters; i++ {
		obj.LL(0, v)
	}
	ll := time.Since(start)

	// SC requires a fresh link each time; time LL+SC and subtract LL.
	start = time.Now()
	for i := 0; i < iters; i++ {
		obj.LL(0, v)
		obj.SC(0, v)
	}
	llsc := time.Since(start)

	obj.LL(0, v)
	start = time.Now()
	for i := 0; i < iters; i++ {
		obj.VL(0)
	}
	vl := time.Since(start)

	per := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(iters) }
	sc := per(llsc) - per(ll)
	if sc < 0 {
		sc = 0
	}
	return Latency{LL: per(ll), SC: sc, VL: per(vl)}, nil
}

// Throughput runs g goroutines (each bound to a distinct process id of an
// n-process object, g <= n) doing LL;SC rounds for roughly dur, and
// returns completed rounds per second plus the fraction of successful SCs.
func Throughput(f mwobj.Factory, n, w, g int, dur time.Duration) (opsPerSec, scSuccessFrac float64, err error) {
	if g > n {
		return 0, 0, fmt.Errorf("bench: %d goroutines > %d processes", g, n)
	}
	obj, err := f(n, w, mwtest.Pattern(0, w))
	if err != nil {
		return 0, 0, err
	}
	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		rounds    = make([]int64, g)
		successes = make([]int64, g)
	)
	start := time.Now()
	for p := 0; p < g; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, w)
			for !stop.Load() {
				// Batch the stop check to keep the loop tight.
				for i := 0; i < 64; i++ {
					obj.LL(p, v)
					v[0]++
					if obj.SC(p, v) {
						successes[p]++
					}
					rounds[p]++
				}
			}
		}(p)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var totalRounds, totalSucc int64
	for p := 0; p < g; p++ {
		totalRounds += rounds[p]
		totalSucc += successes[p]
	}
	if totalRounds == 0 {
		return 0, 0, fmt.Errorf("bench: no rounds completed")
	}
	return float64(totalRounds) / elapsed, float64(totalSucc) / float64(totalRounds), nil
}

// ReadMostlyThroughput runs one writer (LL;SC) and g-1 readers (LL only)
// and returns reader ops/sec — the snapshot-style workload.
func ReadMostlyThroughput(f mwobj.Factory, n, w, g int, dur time.Duration) (readsPerSec float64, err error) {
	if g > n || g < 2 {
		return 0, fmt.Errorf("bench: need 2 <= g <= n, got g=%d n=%d", g, n)
	}
	obj, err := f(n, w, mwtest.Pattern(0, w))
	if err != nil {
		return 0, err
	}
	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		reads = make([]int64, g)
	)
	start := time.Now()
	wg.Add(1)
	go func() { // writer is process 0
		defer wg.Done()
		v := make([]uint64, w)
		for !stop.Load() {
			obj.LL(0, v)
			v[0]++
			obj.SC(0, v)
		}
	}()
	for p := 1; p < g; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, w)
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					obj.LL(p, v)
					reads[p]++
				}
			}
		}(p)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total int64
	for _, r := range reads {
		total += r
	}
	return float64(total) / elapsed, nil
}

// AllocsPerRound reports average heap allocations per LL+SC round for an
// implementation (steady state, after warmup) — experiment E7.
func AllocsPerRound(f mwobj.Factory, n, w int) (float64, error) {
	obj, err := f(n, w, mwtest.Pattern(0, w))
	if err != nil {
		return 0, err
	}
	v := make([]uint64, w)
	for i := 0; i < 100; i++ { // warmup
		obj.LL(0, v)
		obj.SC(0, v)
	}
	allocs := allocsPerRun(500, func() {
		obj.LL(0, v)
		obj.SC(0, v)
	})
	return allocs, nil
}

// SpaceOf returns the footprint report of a fresh object from f, or zeros
// if the implementation cannot report.
func SpaceOf(f mwobj.Factory, n, w int) (mwobj.Space, error) {
	obj, err := f(n, w, mwtest.Pattern(0, w))
	if err != nil {
		return mwobj.Space{}, err
	}
	if sp, ok := obj.(mwobj.Spacer); ok {
		return sp.Space(), nil
	}
	return mwobj.Space{}, nil
}
