package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file is the benchmark regression gate behind cmd/llscgate: it
// compares a freshly-recorded report (BENCH_<sha>.json from CI's
// bench-smoke job) against the committed BENCH_baseline.json and turns
// the performance trajectory into a pass/warn/fail verdict, so a
// throughput regression or a new hot-path allocation fails the build
// instead of accumulating silently in the artifact trail.
//
// Only two kinds of columns are gated, found by name: throughput
// columns (name containing "/s", where noisy CI boxes get generous
// tolerance bands) and "allocs/op" columns (gated strictly — the gated
// paths are exactly zero by design, so any increase is a real leak, not
// noise). Everything else (latencies, ratios, counters) is recorded in
// the artifacts for trend-reading humans but not gated: p99 on a shared
// runner is too noisy to block merges on.
//
// Throughput failure is decided on the MEDIAN fractional loss across an
// experiment's rows, not row by row: on a time-shared runner individual
// points jitter past any usable band (back-to-back identical runs show
// single rows ±35% while the experiment median stays within ~20%), and
// a real regression — a new lock, a lost fast path — shifts every row,
// so the median catches it without flaking on one noisy cell. A single
// row falling past twice the fail band still fails outright: that far
// outside observed noise it is a localized regression, not jitter.

// GateOptions tunes the regression tolerances.
type GateOptions struct {
	// WarnFrac is the fractional throughput loss that warns (default
	// 0.10): noted in the job log, does not fail the build.
	WarnFrac float64
	// FailFrac is the fractional throughput loss that fails (default
	// 0.25), applied to the median loss across an experiment's rows
	// (and, doubled, to any single row): large enough that scheduler
	// jitter on a busy CI box stays under it, small enough that a real
	// serialization bug does not.
	FailFrac float64
	// AllocEps is the allocs/op slack (default 0.01) — covers only
	// float formatting, not real allocations: one alloc per op on a
	// gated path reads 1.0 and fails.
	AllocEps float64
}

func (o GateOptions) withDefaults() GateOptions {
	if o.WarnFrac == 0 {
		o.WarnFrac = 0.10
	}
	if o.FailFrac == 0 {
		o.FailFrac = 0.25
	}
	if o.AllocEps == 0 {
		o.AllocEps = 0.01
	}
	return o
}

// GateResult is the verdict of one baseline/current comparison.
type GateResult struct {
	// Checked counts the metric cells actually compared.
	Checked int
	// Warnings are tolerable drifts and structural mismatches (missing
	// experiments or rows, unparseable cells) — logged, not fatal, so a
	// baseline predating a new experiment does not block the PR adding it.
	Warnings []string
	// Failures are regressions beyond the tolerance bands.
	Failures []string
}

// OK reports whether the gate passes (warnings allowed).
func (r *GateResult) OK() bool { return len(r.Failures) == 0 }

// BestOf merges runs of the same suite cell-wise into the machine's
// demonstrated capability: each gated throughput cell takes its maximum
// across the runs and each allocs/op cell its minimum; everything else
// (and any experiment or row absent from the first run) comes from the
// first run that has it. Gating a best-of-N merge instead of a single
// run is the usual benchmarking defense against one-sided scheduler
// noise — a run that caught a slow episode cannot fail the gate when a
// sibling run demonstrated the real throughput, while a true regression
// depresses every run and survives the merge.
func BestOf(reports ...*Report) *Report {
	if len(reports) == 0 {
		return nil
	}
	out := reports[0]
	for _, r := range reports[1:] {
		for i := range out.Experiments {
			bt := &out.Experiments[i]
			for j := range r.Experiments {
				if r.Experiments[j].ID == bt.ID {
					mergeBest(bt, &r.Experiments[j])
					break
				}
			}
		}
	}
	return out
}

// mergeBest folds ct's gated cells into bt where they are better.
func mergeBest(bt, ct *TableJSON) {
	kw := keyWidth(bt.Cols)
	ckw := keyWidth(ct.Cols)
	curCols := make(map[string]int, len(ct.Cols))
	for i, c := range ct.Cols {
		curCols[c] = i
	}
	curRows := make(map[string][]string, len(ct.Rows))
	for _, row := range ct.Rows {
		curRows[rowKey(ct.Cols, row, ckw)] = row
	}
	for ri, brow := range bt.Rows {
		crow, ok := curRows[rowKey(bt.Cols, brow, kw)]
		if !ok {
			continue
		}
		for i, col := range bt.Cols {
			tp, al := gatedCol(col)
			ci, have := curCols[col]
			if (!tp && !al) || i >= len(brow) || !have || ci >= len(crow) {
				continue
			}
			bv, berr := strconv.ParseFloat(brow[i], 64)
			cv, cerr := strconv.ParseFloat(crow[ci], 64)
			if berr != nil || cerr != nil {
				continue
			}
			if (tp && cv > bv) || (al && cv < bv) {
				brow[i] = crow[ci]
				if ri < len(bt.Records) {
					bt.Records[ri][col] = crow[ci]
				}
			}
		}
	}
}

// ReadReport loads a report written by llscbench -json.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing report %s: %w", path, err)
	}
	return &r, nil
}

// CompareReports gates current against baseline. Rows are matched
// within same-id experiments by their key columns — every column left
// of the first gated metric column (so E11 rows pair up by
// procs/conns/inflight even if row order changes); metric columns are
// matched by name, tolerating added or reordered columns.
func CompareReports(baseline, current *Report, o GateOptions) *GateResult {
	o = o.withDefaults()
	res := &GateResult{}
	cur := make(map[string]*TableJSON, len(current.Experiments))
	for i := range current.Experiments {
		cur[current.Experiments[i].ID] = &current.Experiments[i]
	}
	for i := range baseline.Experiments {
		bt := &baseline.Experiments[i]
		ct, ok := cur[bt.ID]
		if !ok {
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("%s: experiment missing from current run", bt.ID))
			continue
		}
		compareTables(bt, ct, o, res)
	}
	return res
}

// gatedCol classifies a column name: throughput, alloc, or ungated.
func gatedCol(name string) (throughput, alloc bool) {
	return strings.Contains(name, "/s"), name == "allocs/op"
}

// keyWidth returns how many leading columns identify a row: everything
// before the first gated metric column.
func keyWidth(cols []string) int {
	for i, c := range cols {
		if tp, al := gatedCol(c); tp || al {
			return i
		}
	}
	return len(cols)
}

// rowKey renders a row's identity from its first kw columns.
func rowKey(cols []string, row []string, kw int) string {
	parts := make([]string, 0, kw)
	for i := 0; i < kw && i < len(row); i++ {
		parts = append(parts, cols[i]+"="+row[i])
	}
	return strings.Join(parts, " ")
}

func compareTables(bt, ct *TableJSON, o GateOptions, res *GateResult) {
	kw := keyWidth(bt.Cols)
	var losses []float64 // fractional throughput losses, one per gated cell
	curCols := make(map[string]int, len(ct.Cols))
	for i, c := range ct.Cols {
		curCols[c] = i
	}
	curRows := make(map[string][]string, len(ct.Rows))
	ckw := keyWidth(ct.Cols)
	for _, row := range ct.Rows {
		curRows[rowKey(ct.Cols, row, ckw)] = row
	}

	for _, brow := range bt.Rows {
		key := rowKey(bt.Cols, brow, kw)
		crow, ok := curRows[key]
		if !ok {
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("%s: row {%s} missing from current run", bt.ID, key))
			continue
		}
		for i, col := range bt.Cols {
			tp, al := gatedCol(col)
			if (!tp && !al) || i >= len(brow) {
				continue
			}
			ci, ok := curCols[col]
			if !ok || ci >= len(crow) {
				res.Warnings = append(res.Warnings,
					fmt.Sprintf("%s {%s}: column %q missing from current run", bt.ID, key, col))
				continue
			}
			bv, berr := strconv.ParseFloat(brow[i], 64)
			cv, cerr := strconv.ParseFloat(crow[ci], 64)
			if berr != nil || cerr != nil {
				res.Warnings = append(res.Warnings,
					fmt.Sprintf("%s {%s} %s: unparseable cells %q vs %q", bt.ID, key, col, brow[i], crow[ci]))
				continue
			}
			res.Checked++
			switch {
			case al:
				if cv > bv+o.AllocEps {
					res.Failures = append(res.Failures,
						fmt.Sprintf("%s {%s}: %s rose %g -> %g (hot path must stay allocation-free)",
							bt.ID, key, col, bv, cv))
				}
			case tp && bv > 0:
				loss := (bv - cv) / bv
				losses = append(losses, loss)
				switch {
				case loss >= 2*o.FailFrac:
					res.Failures = append(res.Failures,
						fmt.Sprintf("%s {%s}: %s fell %.3g -> %.3g (-%.0f%%, past twice the %.0f%% fail band)",
							bt.ID, key, col, bv, cv, 100*loss, 100*o.FailFrac))
				case loss >= o.WarnFrac:
					res.Warnings = append(res.Warnings,
						fmt.Sprintf("%s {%s}: %s fell %.3g -> %.3g (-%.0f%%, over the %.0f%% warn band)",
							bt.ID, key, col, bv, cv, 100*loss, 100*o.WarnFrac))
				}
			}
		}
	}
	if med, ok := median(losses); ok && med >= o.FailFrac {
		res.Failures = append(res.Failures,
			fmt.Sprintf("%s: median throughput loss -%.0f%% over %d cells (fail band %.0f%%)",
				bt.ID, 100*med, len(losses), 100*o.FailFrac))
	}
}

// median returns the middle value of xs (mean of the middle two for an
// even count); ok is false for an empty slice.
func median(xs []float64) (m float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2], true
	} else {
		return (s[n/2-1] + s[n/2]) / 2, true
	}
}
