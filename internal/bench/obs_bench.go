package bench

import (
	"fmt"
	"runtime"

	"mwllsc/internal/server"
	"mwllsc/internal/shard"
)

// E14ObsOverhead prices the observability layer on the serving hot
// path: the same closed-loop loopback load as E11, run back to back
// against a server without latency histograms ("off") and one with
// them ("on", the daemon's always-on configuration). The striped
// counters are part of the server in both rows — they replaced the
// shared atomics outright — so the delta isolates what the gated part
// costs: the per-batch time.Now() pair plus three histogram ObserveN
// calls. docs/OBSERVABILITY.md records the budget: the "on" rows must
// hold within the gate's throughput bands of "off", i.e. well under a
// 3% median loss; both row sets are gated against the baseline by
// cmd/llscgate so neither the layer nor its bypass regresses silently.
func E14ObsOverhead(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		k        = 16
		w        = 2
		maxBatch = 64
		conns    = 4
		perConn  = 8
	)

	t := &Table{
		ID: "e14",
		Title: fmt.Sprintf("E14: observability overhead on the serving path (K=%d, W=%d, conns=%d, inflight=%d, %v/point)",
			k, w, conns, conns*perConn, o.Dur),
		Note: "closed-loop loopback Add load, as E11; obs=off is a server without latency histograms, " +
			"obs=on the daemon's always-on configuration. Striped counters run in both. " +
			"srv p99 is the server's own batch-execute histogram (0 when off).",
		Cols: []string{"procs", "obs", "ops/s", "p50 us", "p99 us", "srv p99 us"},
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore the ambient setting
	for _, procs := range o.Procs {
		runtime.GOMAXPROCS(procs)
		for _, mode := range []struct {
			label string
			on    bool
		}{{"off", false}, {"on", true}} {
			// A fresh server per point, as in E11: no cross-point state.
			err := func() error {
				m, err := shard.NewMap(k, conns+2, w)
				if err != nil {
					return err
				}
				opts := []server.Option{server.WithMaxBatch(maxBatch)}
				if mode.on {
					opts = append(opts, server.WithMetrics(server.NewMetrics(m.N())))
				}
				s := server.New(m, opts...)
				addr, err := s.Listen("127.0.0.1:0")
				if err != nil {
					return err
				}
				go s.Serve()
				defer s.Close()
				res, err := NetLoadClosedLoop(addr.String(), conns, conns*perConn, w, o.Dur, 0)
				if err != nil {
					return err
				}
				t.AddRow(procs, mode.label, res.OpsPerSec,
					float64(res.P50.Nanoseconds())/1e3, float64(res.P99.Nanoseconds())/1e3,
					float64(res.SrvP99.Nanoseconds())/1e3)
				return nil
			}()
			if err != nil {
				return nil, fmt.Errorf("E14 procs=%d obs=%s: %w", procs, mode.label, err)
			}
		}
	}
	return t, nil
}
