package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/impls"
	"mwllsc/internal/shard"
	"mwllsc/internal/txn"
)

// TxnUpdateThroughput runs g goroutines (g <= n) against a k-shard map of
// the named implementation for roughly dur, each committing UpdateMulti
// transactions over span distinct keys drawn from a keyspace-sized window.
// A small keyspace makes the spans overlap almost totally (the
// high-conflict regime, where transactions keep aborting each other's
// collect phase and helping kicks in); a large one keeps them mostly
// disjoint. With yield set, the transaction function yields the scheduler,
// widening the collect-to-lock window across scheduler turns — the
// adversarial interleaving for optimistic concurrency, and the only way
// to provoke real conflicts on a single-core box. Returns committed
// transactions/sec and mean collect-lock attempts per transaction
// (1.0 = conflict-free).
func TxnUpdateThroughput(name string, k, n, w, g, span, keyspace int, yield bool, dur time.Duration) (opsPerSec, attemptsPerOp float64, err error) {
	if g > n {
		return 0, 0, fmt.Errorf("bench: %d goroutines > %d registry slots", g, n)
	}
	if span < 1 || keyspace < span {
		return 0, 0, fmt.Errorf("bench: bad span %d / keyspace %d", span, keyspace)
	}
	m, err := impls.NewSharded(name, k, n, w)
	if err != nil {
		return 0, 0, err
	}
	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		counts   = make([]int64, g)
		attempts = make([]int64, g)
	)
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			keys := make([]uint64, span)
			f := func(vals [][]uint64) {
				for _, v := range vals {
					v[0]++
				}
			}
			if yield {
				f = func(vals [][]uint64) {
					for _, v := range vals {
						v[0]++
					}
					runtime.Gosched()
				}
			}
			var done, tried int64
			ctr := uint64(i) * 0x9e3779b97f4a7c15
			for !stop.Load() {
				for j := 0; j < 16; j++ {
					ctr++
					base := shard.HashUint64(ctr) % uint64(keyspace)
					for t := range keys {
						keys[t] = (base + uint64(t)) % uint64(keyspace)
					}
					tried += int64(h.UpdateMulti(keys, f))
					done++
				}
			}
			counts[i], attempts[i] = done, tried
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total, tried int64
	for i := range counts {
		total += counts[i]
		tried += attempts[i]
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("bench: no transactions committed")
	}
	return float64(total) / elapsed, float64(tried) / float64(total), nil
}

// TxnSnapshotThroughput measures SnapshotAtomic against write pressure:
// one auditor takes cross-shard linearizable snapshots in a loop while
// g-1 goroutines commit span-key transactions from a keyspace-sized
// window. Returns snapshots/sec and the fraction that needed the
// descriptor fallback (the optimistic double collect kept failing).
func TxnSnapshotThroughput(name string, k, n, w, g, span, keyspace int, dur time.Duration) (snapsPerSec, fallbackFrac float64, err error) {
	if g > n {
		return 0, 0, fmt.Errorf("bench: %d goroutines > %d registry slots", g, n)
	}
	if g < 2 {
		return 0, 0, fmt.Errorf("bench: need >= 2 goroutines (1 auditor + writers), got %d", g)
	}
	m, err := impls.NewSharded(name, k, n, w)
	if err != nil {
		return 0, 0, err
	}
	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		snaps     int64
		fallbacks int64
	)
	for i := 0; i < g-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			keys := make([]uint64, span)
			f := func(vals [][]uint64) {
				for _, v := range vals {
					v[0]++
				}
			}
			ctr := uint64(i) * 0x9e3779b97f4a7c15
			for !stop.Load() {
				for j := 0; j < 16; j++ {
					ctr++
					base := shard.HashUint64(ctr) % uint64(keyspace)
					for t := range keys {
						keys[t] = (base + uint64(t)) % uint64(keyspace)
					}
					h.UpdateMulti(keys, f)
				}
			}
		}(i)
	}
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := m.Acquire()
		defer h.Release()
		buf := m.NewSnapshotBuffer()
		var done, fell int64
		for { // at least one snapshot, even if the window already closed
			if h.SnapshotAtomic(buf) > txn.SnapshotRetries {
				fell++
			}
			done++
			if stop.Load() {
				break
			}
		}
		snaps, fallbacks = done, fell
	}()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if snaps == 0 {
		return 0, 0, fmt.Errorf("bench: no snapshots completed")
	}
	return float64(snaps) / elapsed, float64(fallbacks) / float64(snaps), nil
}

// E10Transactions builds the cross-shard transaction table: committed
// UpdateMulti throughput and mean attempts vs key-span at low and high
// conflict, plus the SnapshotAtomic rate an auditor sustains against the
// low-conflict writers.
func E10Transactions(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		w       = 4
		k       = 8
		lowKeys = 4096
	)
	g := fixedShardGoroutines()
	spans := []int{2, 4, 8}

	t := &Table{
		ID: "e10",
		Title: fmt.Sprintf("E10: cross-shard transactions — UpdateMulti throughput vs key-span and conflict (K=%d, G=%d, W=%d, %v/point)",
			k, g, w, o.Dur),
		Note: "txn = committed multi-key updates/sec; att = mean collect-lock attempts per commit (1.0 = conflict-free); " +
			fmt.Sprintf("low = spans from %d keys, back-to-back; high = spans from span+1 keys (near-total overlap) with a yielding modify step (long-RMW regime, constant aborts+helping); ", lowKeys) +
			"snap/s = cross-shard linearizable SnapshotAtomic rate of 1 auditor vs G-1 low-conflict writers (fb%% = descriptor-fallback share).",
		Cols: []string{"impl", "span", "low txn/s", "low att", "high txn/s", "high att", "snap/s", "fb%"},
	}
	for _, name := range o.Impls {
		for _, span := range spans {
			low, lowAtt, err := TxnUpdateThroughput(name, k, g, w, g, span, lowKeys, false, o.Dur)
			if err != nil {
				return nil, fmt.Errorf("E10 %s span=%d low: %w", name, span, err)
			}
			high, highAtt, err := TxnUpdateThroughput(name, k, g, w, g, span, span+1, true, o.Dur)
			if err != nil {
				return nil, fmt.Errorf("E10 %s span=%d high: %w", name, span, err)
			}
			snaps, fb, err := TxnSnapshotThroughput(name, k, g, w, g, span, lowKeys, o.Dur)
			if err != nil {
				return nil, fmt.Errorf("E10 %s span=%d snap: %w", name, span, err)
			}
			t.AddRow(name, span, low, lowAtt, high, highAtt, snaps, 100*fb)
		}
	}
	return t, nil
}
