// Package bench is the shared benchmark harness behind cmd/llscbench,
// cmd/llscspace and the root bench_test.go: workload generators, latency
// and throughput measurement, space accounting, and table rendering
// (text, CSV, and JSON reports) for the experiments E1-E14 cataloged in
// docs/BENCHMARKS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a plain-text result table.
type Table struct {
	// ID is the experiment's short name (e1, e2, ...), used by the JSON
	// emitter; cmd/llscbench fills it for tables that do not set it.
	ID string
	// Title is printed above the table.
	Title string
	// Note is an optional caption printed under the title.
	Note string
	// Cols are the column headers; Rows hold the cells.
	Cols []string
	Rows [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	fmt.Fprintln(w)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	printRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FprintCSV renders the table as CSV (header row then data rows) for
// plotting the experiment series.
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintln(w, strings.Join(t.Cols, ","))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			cells[i] = c
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}
