package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/apps/shared"
	"mwllsc/internal/apps/snapshot"
	"mwllsc/internal/mwobj"
)

// snapshotScanThroughput measures scans/sec of a C-component snapshot with
// one writer and g-1 scanners over the given multiword implementation.
func snapshotScanThroughput(f mwobj.Factory, n, comps, g int, dur time.Duration) (float64, error) {
	if g < 2 || g > n {
		return 0, fmt.Errorf("bench: need 2 <= g <= n, got g=%d n=%d", g, n)
	}
	snap, err := snapshot.New(f, n, comps, make([]uint64, comps))
	if err != nil {
		return 0, err
	}
	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		scans = make([]int64, g)
	)
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); !stop.Load(); i++ {
			snap.Update(0, int(i)%comps, i)
		}
	}()
	for p := 1; p < g; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dst := make([]uint64, comps)
			for !stop.Load() {
				for i := 0; i < 32; i++ {
					snap.Scan(p, dst)
					scans[p]++
				}
			}
		}(p)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total int64
	for _, s := range scans {
		total += s
	}
	return float64(total) / elapsed, nil
}

// queueThroughput measures enqueue+dequeue ops/sec of the wait-free queue
// (2 producers + 2 consumers) built on the given implementation.
func queueThroughput(f mwobj.Factory, n int, dur time.Duration) (float64, error) {
	if n < 4 {
		return 0, fmt.Errorf("bench: queue throughput needs n >= 4")
	}
	q, err := shared.NewQueue(f, n, 64)
	if err != nil {
		return 0, err
	}
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		ops  = make([]int64, 4)
	)
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := uint64(1); !stop.Load(); v++ {
				if q.Enqueue(i, v) {
					ops[i]++
				} else {
					runtime.Gosched()
				}
			}
		}(i)
	}
	for i := 2; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stop.Load() {
				if _, ok := q.Dequeue(i); ok {
					ops[i]++
				} else {
					runtime.Gosched()
				}
			}
		}(i)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total int64
	for _, o := range ops {
		total += o
	}
	return float64(total) / elapsed, nil
}
