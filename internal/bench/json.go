package bench

import (
	"encoding/json"
	"io"
	"os"
	"runtime"

	"mwllsc/internal/obs"
)

// Report is the machine-readable form of a benchmark run, written by
// `llscbench -json` so successive runs can be archived (BENCH_*.json) and
// diffed to track the performance trajectory across PRs.
type Report struct {
	// Tool identifies the producer ("llscbench").
	Tool string `json:"tool"`
	// GoVersion, GOMAXPROCS, NumCPU and Hostname pin down enough of the
	// environment to compare runs honestly: BENCH_baseline.json was
	// recorded at GOMAXPROCS=1, which is invisible without this stamp
	// and makes its absolute numbers incomparable to parallel runs.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Hostname   string `json:"hostname,omitempty"`
	// Build is the producing binary's identity (obs.BuildInfo): module,
	// version, vcs revision and toolchain. "Which build produced these
	// numbers?" is the first question about any regression.
	Build string `json:"build,omitempty"`
	// Experiments holds one entry per table, in run order.
	Experiments []TableJSON `json:"experiments"`
}

// TableJSON is one experiment table in both layouts: the raw grid
// (cols/rows, lossless) and flat records (one object per row with cells
// keyed by column name, convenient for jq / dataframe loading).
type TableJSON struct {
	ID      string              `json:"id"`
	Title   string              `json:"title"`
	Note    string              `json:"note,omitempty"`
	Cols    []string            `json:"cols"`
	Rows    [][]string          `json:"rows"`
	Records []map[string]string `json:"records"`
}

// JSON converts the table to its machine-readable form.
func (t *Table) JSON() TableJSON {
	tj := TableJSON{
		ID:      t.ID,
		Title:   t.Title,
		Note:    t.Note,
		Cols:    t.Cols,
		Rows:    t.Rows,
		Records: make([]map[string]string, 0, len(t.Rows)),
	}
	for _, row := range t.Rows {
		rec := make(map[string]string, len(row)+1)
		if t.ID != "" {
			rec["experiment"] = t.ID
		}
		for i, cell := range row {
			if i < len(t.Cols) {
				rec[t.Cols[i]] = cell
			}
		}
		tj.Records = append(tj.Records, rec)
	}
	return tj
}

// NewReport assembles a Report from finished tables, stamping the
// environment.
func NewReport(tables []*Table) *Report {
	host, _ := os.Hostname() // best-effort; omitted from the JSON on error
	r := &Report{
		Tool:       "llscbench",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Hostname:   host,
		Build:      obs.BuildInfo(),
	}
	for _, t := range tables {
		r.Experiments = append(r.Experiments, t.JSON())
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
