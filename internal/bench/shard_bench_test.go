package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestShardedUpdateThroughputRuns(t *testing.T) {
	ops, err := ShardedUpdateThroughput("jp", 4, 4, 2, 4, false, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ops <= 0 {
		t.Fatal("zero sharded throughput")
	}
	if _, err := ShardedUpdateThroughput("jp", 2, 2, 2, 4, false, time.Millisecond); err == nil {
		t.Fatal("accepted g > n")
	}
	if _, err := ShardedUpdateThroughput("nonexistent", 2, 2, 2, 2, false, time.Millisecond); err == nil {
		t.Fatal("accepted unknown implementation")
	}
}

func TestRegistryUpdateThroughputModes(t *testing.T) {
	for _, mode := range []string{"raw", "pinned", "peracq"} {
		ops, err := RegistryUpdateThroughput("jp", mode, 4, 2, 2, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if ops <= 0 {
			t.Fatalf("%s: zero throughput", mode)
		}
	}
	if _, err := RegistryUpdateThroughput("jp", "raw", 2, 2, 4, time.Millisecond); err == nil {
		t.Fatal("accepted g > n")
	}
	if _, err := RegistryUpdateThroughput("nonexistent", "raw", 2, 2, 2, time.Millisecond); err == nil {
		t.Fatal("accepted unknown implementation")
	}
}

func TestTxnUpdateThroughputRuns(t *testing.T) {
	ops, att, err := TxnUpdateThroughput("jp", 4, 4, 2, 4, 2, 64, true, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ops <= 0 || att < 1 {
		t.Fatalf("txn throughput %f, attempts %f", ops, att)
	}
	if _, _, err := TxnUpdateThroughput("jp", 2, 2, 2, 4, 2, 64, false, time.Millisecond); err == nil {
		t.Fatal("accepted g > n")
	}
	if _, _, err := TxnUpdateThroughput("jp", 2, 2, 2, 2, 3, 2, false, time.Millisecond); err == nil {
		t.Fatal("accepted keyspace < span")
	}
	if _, _, err := TxnUpdateThroughput("nonexistent", 2, 2, 2, 2, 1, 8, false, time.Millisecond); err == nil {
		t.Fatal("accepted unknown implementation")
	}
}

func TestTxnSnapshotThroughputRuns(t *testing.T) {
	snaps, fb, err := TxnSnapshotThroughput("jp", 4, 4, 2, 3, 2, 64, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if snaps <= 0 || fb < 0 || fb > 1 {
		t.Fatalf("snapshot throughput %f, fallback fraction %f", snaps, fb)
	}
	if _, _, err := TxnSnapshotThroughput("jp", 2, 2, 2, 1, 1, 8, time.Millisecond); err == nil {
		t.Fatal("accepted a single goroutine (no writers)")
	}
}

func TestShardExperimentsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow-ish; skipped with -short")
	}
	o := fast()
	o.Impls = []string{"jp"}
	for name, build := range map[string]func(Options) (*Table, error){
		"E8":  E8Sharding,
		"E9":  E9Registry,
		"E10": E10Transactions,
	} {
		tb, err := build(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", name)
		}
		var sb strings.Builder
		tb.Fprint(&sb)
		if !strings.Contains(sb.String(), name+":") {
			t.Fatalf("%s: table title missing experiment id:\n%s", name, sb.String())
		}
	}
}

// TestShardedThroughputScalesWithK pins the issue's acceptance criterion in
// the regime where it is deterministic even on one core: with a yielding
// modify step, aggregate update throughput must grow from K=1 to K=8 at 8
// goroutines (observed ~4x; asserted >= 1.2x to stay robust on loaded CI).
func TestShardedThroughputScalesWithK(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison needs a real measurement window; skipped with -short")
	}
	const (
		g   = 8
		w   = 4
		dur = 100 * time.Millisecond
	)
	one, err := ShardedUpdateThroughput("jp", 1, g, w, g, true, dur)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := ShardedUpdateThroughput("jp", 8, g, w, g, true, dur)
	if err != nil {
		t.Fatal(err)
	}
	if eight < 1.2*one {
		t.Fatalf("K=8 throughput %.0f not meaningfully above K=1 throughput %.0f", eight, one)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	tb := &Table{
		ID:    "e8",
		Title: "demo sharding table",
		Note:  "a note",
		Cols:  []string{"impl", "K=1 upd/s"},
	}
	tb.AddRow("jp", 123456.0)
	tb.AddRow("lockmw", 7890.0)

	report := NewReport([]*Table{tb})
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip through encoding/json: %v", err)
	}
	if !reflect.DeepEqual(*report, back) {
		t.Fatalf("round-trip changed the report:\nwrote %+v\nread  %+v", *report, back)
	}
	if back.GoVersion != runtime.Version() {
		t.Fatalf("go_version = %q, want %q", back.GoVersion, runtime.Version())
	}
	if len(back.Experiments) != 1 {
		t.Fatalf("%d experiments, want 1", len(back.Experiments))
	}
	exp := back.Experiments[0]
	if exp.ID != "e8" || len(exp.Rows) != 2 || len(exp.Records) != 2 {
		t.Fatalf("experiment did not survive: %+v", exp)
	}
	want := map[string]string{"experiment": "e8", "impl": "jp", "K=1 upd/s": "123456"}
	if !reflect.DeepEqual(exp.Records[0], want) {
		t.Fatalf("record = %v, want %v", exp.Records[0], want)
	}
}
