package bench

import (
	"testing"
	"time"
)

func TestE15TraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point load run; skipped with -short")
	}
	tab, err := E15TraceOverhead(Options{Dur: 15 * time.Millisecond, Iters: 100, Procs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "e15" || len(tab.Rows) != 4 || len(tab.Cols) != 6 {
		t.Fatalf("table shape: id=%s rows=%d cols=%d", tab.ID, len(tab.Rows), len(tab.Cols))
	}
	// Rows run off, idle, 1/64, all. The span rate column must be zero
	// without sampling and nonzero when every request is traced.
	for i, mode := range []string{"off", "idle", "1/64", "all"} {
		if tab.Rows[i][1] != mode {
			t.Fatalf("row %d mode = %s, want %s", i, tab.Rows[i][1], mode)
		}
	}
	if got := tab.Rows[0][5]; got != "0" {
		t.Errorf("off row spans/s = %s, want 0", got)
	}
	if got := tab.Rows[1][5]; got != "0" {
		t.Errorf("idle row spans/s = %s, want 0", got)
	}
	if got := tab.Rows[3][5]; got == "0" {
		t.Errorf("all-on row retired no spans")
	}
}
