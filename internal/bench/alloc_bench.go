package bench

import (
	"fmt"

	"mwllsc/internal/server"
	"mwllsc/internal/wire"
)

// E13Allocs builds the allocation-gate table: steady-state heap
// allocations per operation on every stage of the serving hot path —
// wire encode and decode for requests and responses, and the server's
// batch-execute path for Read and Update. Each row must be zero: the
// response arena, recycled frame/data buffers, reacquirable map handle
// and pre-bound merge closures exist precisely so that serving a warm
// request allocates nothing, and the CI gate (cmd/llscgate) fails the
// build on any increase, which is how an accidental new allocation on
// the hot path surfaces as a red check instead of a slow drift in the
// throughput trend.
func E13Allocs(o Options) (*Table, error) {
	const runs = 400
	t := &Table{
		ID:    "e13",
		Title: "E13: steady-state heap allocations per op on the serving hot path",
		Note: "wire rows: one encode or decode of a W=2 Update/Read-shaped payload into recycled buffers; " +
			"server rows: one request through the batch executor (arena, handle and buffers warm). " +
			"All rows are gated at zero — any increase fails llscgate.",
		Cols: []string{"path", "allocs/op"},
	}

	req := &wire.Request{ID: 7, Op: wire.OpUpdate, Mode: wire.ModeAdd, Key: 42, Args: []uint64{1, 2}}
	var reqBuf []byte
	t.AddRow("wire request encode", allocsPerRun(runs, func() {
		reqBuf = wire.AppendRequest(reqBuf[:0], req)
	}))
	var reqDec wire.Request
	t.AddRow("wire request decode", allocsPerRun(runs, func() {
		if err := wire.DecodeRequest(&reqDec, reqBuf); err != nil {
			panic(err)
		}
	}))

	resp := &wire.Response{ID: 7, Status: wire.StatusOK, Rows: 1, Words: 2, Data: []uint64{3, 4}}
	var respBuf []byte
	t.AddRow("wire response encode", allocsPerRun(runs, func() {
		respBuf = wire.AppendResponse(respBuf[:0], resp)
	}))
	var respDec wire.Response
	t.AddRow("wire response decode", allocsPerRun(runs, func() {
		if err := wire.DecodeResponse(&respDec, respBuf); err != nil {
			panic(err)
		}
	}))

	read, update, err := server.HotPathAllocs(runs)
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	t.AddRow("server read execute", read)
	t.AddRow("server update execute", update)
	return t, nil
}
