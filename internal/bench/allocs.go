package bench

import "runtime"

// allocsPerRun mirrors testing.AllocsPerRun for non-test binaries: average
// heap allocations per call to f over runs calls, measured with the world
// pinned to one proc.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warmup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
