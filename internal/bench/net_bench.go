package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/server"
	"mwllsc/internal/shard"
	"mwllsc/internal/trace"
	"mwllsc/internal/wire"
)

// StartLoopbackServer builds a k×w map with n slots and serves it on a
// free loopback port — the in-process llscd the serving benchmarks (and
// cmd/llscload without -addr) measure against. Callers own Close.
func StartLoopbackServer(k, n, w, maxBatch int) (*server.Server, string, error) {
	m, err := shard.NewMap(k, n, w)
	if err != nil {
		return nil, "", err
	}
	// Metrics and tracer on, matching the daemon's always-on
	// configuration: the numbers the serving benchmarks record are the
	// numbers production pays, llscload's server-side latency columns
	// need the histograms populated, and its -trace exemplars need a
	// tracer answering. Sampling stays off, so the tracer's untraced
	// cost is one clock read per batch (priced by E15).
	s := server.New(m,
		server.WithMaxBatch(maxBatch),
		server.WithMetrics(server.NewMetrics(n)),
		server.WithTracer(trace.New(trace.Config{})))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go s.Serve()
	return s, addr.String(), nil
}

// NetLoadResult is one closed-loop load measurement point.
type NetLoadResult struct {
	Ops       int64           // operations completed
	Errs      int64           // operations that returned an error (not in Ops)
	LastErr   string          // one representative error when Errs > 0
	OpsPerSec float64         // aggregate throughput
	P50       time.Duration   // median request latency
	P99       time.Duration   // tail request latency
	AvgBatch  float64         // server-side requests per registry acquisition (0 if unknown)
	SrvP50    time.Duration   // server-side batch-execute latency p50 (0 if the server has no histograms)
	SrvP99    time.Duration   // server-side batch-execute latency p99 (0 if unknown)
	Traces    []client.Trace  // end-to-end stage samples, when tracing was requested
	Lats      []time.Duration // sorted latency samples behind P50/P99 (bounded per worker,
	// decimated on long runs) — E16 computes SLO goodput from them
}

// latencySamples bounds per-worker latency recording so long runs do
// not grow memory without bound; beyond it, sampling decimates.
const latencySamples = 1 << 15

// traceSamples bounds per-worker trace collection, like latencySamples
// bounds latency recording.
const traceSamples = 256

// NetLoadClosedLoop drives addr with `workers` closed-loop goroutines
// (each waits for its response before issuing the next request — the
// load a synchronous service client applies) spread over a pool of
// `conns` connections, for roughly dur. Every operation is a W-word
// Add on a pseudo-random key. Workers sharing a connection pipeline
// through it, so conns controls server-side parallelism and
// workers/conns the pipelining depth per connection.
//
// Op errors are counted, not fatal: workers keep driving load so one
// failing request cannot silently halve the offered load mid-window.
// The caller sees the count (and one representative error) in the
// result; only a window with zero successes is an error.
//
// With traceEvery > 0 every traceEvery-th op per worker runs traced
// (client.WithTrace): its client-side queue/round-trip split — and,
// against a tracer-equipped server, the server stage breakdown — is
// collected into Traces (bounded per worker).
//
// Extra client options are applied after the pool size — llscload's
// -timeout passes client.WithOpTimeout so a stalled server turns into
// counted op errors instead of a hung loadgen, and the E16 overload
// benchmark shapes the retry policy per arm.
func NetLoadClosedLoop(addr string, conns, workers, w int, dur time.Duration, traceEvery int, opts ...client.Option) (NetLoadResult, error) {
	c, err := client.Dial(addr, append([]client.Option{client.WithConns(conns)}, opts...)...)
	if err != nil {
		return NetLoadResult{}, err
	}
	defer c.Close()

	var before wire.ServerStats
	if before, err = c.Stats(context.Background()); err != nil {
		return NetLoadResult{}, err
	}

	var (
		wg       sync.WaitGroup
		stopped  = make(chan struct{})
		counts   = make([]int64, workers)
		errCount = make([]int64, workers)
		lastErr  = make([]error, workers)
		lats     = make([][]time.Duration, workers)
		traces   = make([][]client.Trace, workers)
	)
	ctx := context.Background()
	deltas := make([]uint64, w)
	deltas[0] = 1
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, 4096)
			var trs []client.Trace
			var done, failed int64
			var err1 error
			key := uint64(g) << 40
			for {
				select {
				case <-stopped:
					counts[g], lats[g] = done, lat
					errCount[g], lastErr[g] = failed, err1
					traces[g] = trs
					return
				default:
				}
				key++
				opCtx := ctx
				var tr *client.Trace
				if traceEvery > 0 && key%uint64(traceEvery) == 0 && len(trs) < traceSamples {
					tr = &client.Trace{}
					opCtx = client.WithTrace(ctx, tr)
				}
				t0 := time.Now()
				if _, err := c.Add(opCtx, shard.HashUint64(key), deltas); err != nil {
					// Count and keep going: a closed-loop worker that aborts
					// on the first error silently removes its share of the
					// offered load for the rest of the window.
					failed++
					err1 = fmt.Errorf("bench: net worker %d: %w", g, err)
					continue
				}
				d := time.Since(t0)
				done++
				if tr != nil {
					trs = append(trs, *tr)
				}
				if len(lat) < latencySamples {
					lat = append(lat, d)
				} else if done%16 == 0 { // decimate once full, keeping tail coverage
					lat[int(done/16)%latencySamples] = d
				}
			}
		}(g)
	}
	time.Sleep(dur)
	close(stopped)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var total, totalErrs int64
	var someErr error
	var all []time.Duration
	for g := range counts {
		total += counts[g]
		totalErrs += errCount[g]
		if lastErr[g] != nil {
			someErr = lastErr[g]
		}
		all = append(all, lats[g]...)
	}
	if total == 0 {
		if someErr != nil {
			return NetLoadResult{}, fmt.Errorf("bench: no net ops completed (%d errors, e.g. %v)", totalErrs, someErr)
		}
		return NetLoadResult{}, fmt.Errorf("bench: no net ops completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := NetLoadResult{
		Ops:       total,
		Errs:      totalErrs,
		OpsPerSec: float64(total) / elapsed,
		P50:       all[len(all)/2],
		P99:       all[len(all)*99/100],
		Lats:      all,
	}
	if someErr != nil {
		res.LastErr = someErr.Error()
	}
	for g := range traces {
		res.Traces = append(res.Traces, traces[g]...)
	}
	if after, err := c.Stats(context.Background()); err == nil {
		if db := after.Batches - before.Batches; db > 0 {
			res.AvgBatch = float64(after.Reqs-before.Reqs) / float64(db)
		}
		// Cumulative quantiles, not windowed — fine for a loadgen run
		// against a fresh or steady-state server, and zero when the
		// target predates the latency words (tolerant decode).
		res.SrvP50 = time.Duration(after.LatP50)
		res.SrvP99 = time.Duration(after.LatP99)
	}
	return res, nil
}

// E11NetServing builds the serving-layer load table: closed-loop Add
// throughput and latency over loopback TCP vs connection count and
// per-connection pipelining depth, against one in-process llscd. This
// is the experiment that turns the in-process E8 numbers into
// end-to-end service numbers: the deltas between the two are the wire,
// syscall and batching costs.
func E11NetServing(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		k        = 16
		w        = 2
		maxBatch = 64
	)
	type point struct{ conns, perConn int }
	points := []point{
		{1, 1}, {1, 8}, {1, 32},
		{2, 8}, {2, 32},
		{4, 8}, {4, 32},
	}
	maxConns := 0
	for _, p := range points {
		if p.conns > maxConns {
			maxConns = p.conns
		}
	}

	t := &Table{
		ID: "e11",
		Title: fmt.Sprintf("E11: networked serving over loopback TCP (K=%d shards, W=%d, maxbatch=%d, %v/point)",
			k, w, maxBatch, o.Dur),
		Note: "closed-loop Add(key, deltas) load; procs = GOMAXPROCS for the point; " +
			"conns = client pool size (server-side parallelism), " +
			"inflight = concurrent workers (pipelining depth = inflight/conns); " +
			"avg batch = server requests per registry acquisition.",
		Cols: []string{"procs", "conns", "inflight", "ops/s", "p50 us", "p99 us", "avg batch"},
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore the ambient setting
	for _, procs := range o.Procs {
		runtime.GOMAXPROCS(procs)
		// A fresh server per procs value: goroutines parked on the old
		// setting's run queues must not color the next sweep point.
		err := func() error {
			// Each in-flight batch pins one registry slot; a couple of spares
			// keep Stats and stragglers from queueing behind the loadgen.
			srv, addr, err := StartLoopbackServer(k, maxConns+2, w, maxBatch)
			if err != nil {
				return err
			}
			defer srv.Close()
			for _, p := range points {
				res, err := NetLoadClosedLoop(addr, p.conns, p.conns*p.perConn, w, o.Dur, 0)
				if err != nil {
					return fmt.Errorf("conns=%d inflight=%d: %w", p.conns, p.conns*p.perConn, err)
				}
				t.AddRow(procs, p.conns, p.conns*p.perConn, res.OpsPerSec,
					float64(res.P50.Nanoseconds())/1e3, float64(res.P99.Nanoseconds())/1e3, res.AvgBatch)
			}
			return nil
		}()
		if err != nil {
			return nil, fmt.Errorf("E11 procs=%d: %w", procs, err)
		}
	}
	return t, nil
}
