package bench

import (
	"fmt"
	"runtime"

	"mwllsc/internal/server"
	"mwllsc/internal/shard"
	"mwllsc/internal/trace"
)

// E15TraceOverhead prices the tracing layer on the serving hot path:
// the same closed-loop loopback load as E11/E14, run against four
// server configurations per procs value —
//
//	off:   no tracer attached (the pre-tracing server)
//	idle:  tracer attached, sampling off — the daemon's default; the
//	       delta vs off is one time.Now() per batch head, and the E13
//	       gate holds this configuration at zero allocations
//	1/64:  head sampling at -trace-sample 64, the suggested production
//	       setting; every 64th request pays the full span path
//	all:   -trace-sample 1, every request traced — the worst case,
//	       what a debugging session costs
//
// docs/OBSERVABILITY.md records the budget: idle must hold within 3%
// of off (the acceptance bar), and all-on is allowed to cost — its row
// exists so the cost is a number, not a guess. Metrics run in every
// row, as in the daemon.
func E15TraceOverhead(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		k        = 16
		w        = 2
		maxBatch = 64
		conns    = 4
		perConn  = 8
	)

	t := &Table{
		ID: "e15",
		Title: fmt.Sprintf("E15: tracing overhead on the serving path (K=%d, W=%d, conns=%d, inflight=%d, %v/point)",
			k, w, conns, conns*perConn, o.Dur),
		Note: "closed-loop loopback Add load, as E11; off = no tracer, idle = tracer attached sampling off " +
			"(daemon default), 1/64 = -trace-sample 64, all = every request traced. Metrics on in every row.",
		Cols: []string{"procs", "trace", "ops/s", "p50 us", "p99 us", "spans/s"},
	}
	modes := []struct {
		label   string
		tracer  bool
		sampleN uint64
	}{
		{"off", false, 0},
		{"idle", true, 0},
		{"1/64", true, 64},
		{"all", true, 1},
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore the ambient setting
	for _, procs := range o.Procs {
		runtime.GOMAXPROCS(procs)
		for _, mode := range modes {
			// A fresh server per point, as in E11: no cross-point state.
			err := func() error {
				m, err := shard.NewMap(k, conns+2, w)
				if err != nil {
					return err
				}
				opts := []server.Option{
					server.WithMaxBatch(maxBatch),
					server.WithMetrics(server.NewMetrics(m.N())),
				}
				var tr *trace.Tracer
				if mode.tracer {
					tr = trace.New(trace.Config{SampleN: mode.sampleN})
					opts = append(opts, server.WithTracer(tr))
				}
				s := server.New(m, opts...)
				addr, err := s.Listen("127.0.0.1:0")
				if err != nil {
					return err
				}
				go s.Serve()
				defer s.Close()
				res, err := NetLoadClosedLoop(addr.String(), conns, conns*perConn, w, o.Dur, 0)
				if err != nil {
					return err
				}
				spansPerSec := 0.0
				if tr != nil && res.Ops > 0 {
					// Retired spans over the window, normalized the same way
					// as ops/s (the window dominates the elapsed time).
					spansPerSec = float64(tr.Stats().Retired) * res.OpsPerSec / float64(res.Ops)
				}
				t.AddRow(procs, mode.label, res.OpsPerSec,
					float64(res.P50.Nanoseconds())/1e3, float64(res.P99.Nanoseconds())/1e3,
					spansPerSec)
				return nil
			}()
			if err != nil {
				return nil, fmt.Errorf("E15 procs=%d trace=%s: %w", procs, mode.label, err)
			}
		}
	}
	return t, nil
}
