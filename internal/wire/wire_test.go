package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpRead, Key: 0xdeadbeef},
		{ID: 3, Op: OpUpdate, Mode: ModeAdd, Key: 7, Args: []uint64{1, 2, 3}},
		{ID: 4, Op: OpUpdate, Mode: ModeSet, Key: 9, Args: []uint64{42}},
		{ID: 5, Op: OpSnapshot},
		{ID: 6, Op: OpSnapshotAtomic},
		{ID: 7, Op: OpUpdateMulti, Mode: ModeAdd, Keys: []uint64{10, 20, 30}, Args: []uint64{1, 2, 3, 4, 5, 6}},
		{ID: 8, Op: OpStats},
	}
	var got Request
	for _, want := range reqs {
		payload := AppendRequest(nil, &want)
		if err := DecodeRequest(&got, payload); err != nil {
			t.Fatalf("%v: decode: %v", want.Op, err)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Mode != want.Mode || got.Key != want.Key {
			t.Fatalf("%v: header round trip: got %+v want %+v", want.Op, got, want)
		}
		if !equalWords(got.Keys, want.Keys) || !equalWords(got.Args, want.Args) {
			t.Fatalf("%v: body round trip: got keys=%v args=%v want keys=%v args=%v",
				want.Op, got.Keys, got.Args, want.Keys, want.Args)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Attempts: 3, Rows: 1, Words: 2, Data: []uint64{5, 6}},
		{ID: 3, Status: StatusOK, Attempts: 1, Rows: 4, Words: 2, Data: []uint64{1, 2, 3, 4, 5, 6, 7, 8}},
		{ID: 4, Status: StatusBadRequest, Err: "wrong width"},
		{ID: 5, Status: StatusShutdown, Err: "draining"},
	}
	var got Response
	for _, want := range resps {
		payload := AppendResponse(nil, &want)
		if err := DecodeResponse(&got, payload); err != nil {
			t.Fatalf("id %d: decode: %v", want.ID, err)
		}
		if got.ID != want.ID || got.Status != want.Status || got.Attempts != want.Attempts ||
			got.Rows != want.Rows || got.Words != want.Words || got.Err != want.Err {
			t.Fatalf("id %d: round trip: got %+v want %+v", want.ID, got, want)
		}
		if !equalWords(got.Data, want.Data) {
			t.Fatalf("id %d: data round trip: got %v want %v", want.ID, got.Data, want.Data)
		}
	}
}

func TestResponseRow(t *testing.T) {
	r := Response{Rows: 3, Words: 2, Data: []uint64{1, 2, 3, 4, 5, 6}}
	if row := r.Row(1); row[0] != 3 || row[1] != 4 {
		t.Fatalf("Row(1) = %v, want [3 4]", row)
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"truncated header", []byte{1, 2, 3}},
		{"unknown opcode", append(make([]byte, 8), 0xff)},
		{"ping with body", append(AppendRequest(nil, &Request{Op: OpPing}), 9)},
		{"read short key", AppendRequest(nil, &Request{Op: OpRead})[:12]},
		{"update no mode", append(make([]byte, 8), byte(OpUpdate))},
		{"update ragged args", append(AppendRequest(nil, &Request{Op: OpUpdate, Key: 1, Args: []uint64{1}}), 0)},
		{"multi zero keys", AppendRequest(nil, &Request{Op: OpUpdateMulti, Keys: nil, Args: nil})},
		{"multi missing args", AppendRequest(nil, &Request{Op: OpUpdateMulti, Keys: []uint64{1, 2}, Args: []uint64{7}})[:20]},
		{"multi ragged args", AppendRequest(nil, &Request{Op: OpUpdateMulti, Keys: []uint64{1, 2}, Args: []uint64{7}})},
	}
	var req Request
	for _, tc := range cases {
		if err := DecodeRequest(&req, tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestDecodeResponseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"short ok body", AppendResponse(nil, &Response{Status: StatusOK})[:10]},
		{"data shorter than header promises", AppendResponse(nil, &Response{Status: StatusOK, Rows: 2, Words: 2, Data: []uint64{1, 2, 3, 4}})[:9+12+8]},
		{"error message truncated", AppendResponse(nil, &Response{Status: StatusBadRequest, Err: "boom"})[:12]},
	}
	var resp Response
	for _, tc := range cases {
		if err := DecodeResponse(&resp, tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1}, {}, []byte(strings.Repeat("x", 1000))}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	// AppendFrame must produce the identical byte stream.
	var app []byte
	for _, p := range payloads {
		app = AppendFrame(app, p)
	}
	if !bytes.Equal(app, buf.Bytes()) {
		t.Fatal("AppendFrame and WriteFrame disagree")
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round trip: got %q want %q", got, want)
		}
		scratch = got
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf, nil); err == nil {
		t.Fatal("oversize frame accepted")
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversize WriteFrame accepted")
	}
}

func TestReadFrameShortPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{8, 0, 0, 0, 1, 2}) // promises 8 bytes, carries 2
	if _, err := ReadFrame(&buf, nil); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := ServerStats{
		Shards: 8, Slots: 4, Words: 2,
		ConnsTotal: 10, ConnsOpen: 3,
		Reqs: 100, Updates: 50, Reads: 30, Snapshots: 5, Multis: 15,
		Batches: 40, BadReqs: 1, PersistErrs: 2,
		LatP50: 12_000, LatP99: 250_000, LatP999: 900_000, FsyncP99: 4_000_000,
	}
	row := want.Append(nil)
	got, err := DecodeStats(row)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stats round trip: got %+v want %+v", got, want)
	}
	// A future server may append fields; old decoders must tolerate it.
	if _, err := DecodeStats(append(row, 99)); err != nil {
		t.Fatalf("longer row rejected: %v", err)
	}
	if _, err := DecodeStats(row[:3]); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	for _, op := range []Op{OpPing, OpRead, OpUpdate, OpSnapshot, OpSnapshotAtomic, OpUpdateMulti, OpStats} {
		if s := op.String(); strings.HasPrefix(s, "Op(") {
			t.Errorf("opcode %d has no mnemonic", uint8(op))
		}
	}
	if Op(200).String() != "Op(200)" {
		t.Error("unknown opcode formatting")
	}
	for _, st := range []Status{StatusOK, StatusBadRequest, StatusShutdown} {
		if s := st.String(); strings.HasPrefix(s, "Status(") {
			t.Errorf("status %d has no mnemonic", uint8(st))
		}
	}
	for _, m := range []Mode{ModeAdd, ModeSet} {
		if s := m.String(); strings.HasPrefix(s, "Mode(") {
			t.Errorf("mode %d has no mnemonic", uint8(m))
		}
	}
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
