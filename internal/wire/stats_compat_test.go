package wire

// Cross-version Stats compatibility: the stats row has grown twice —
// PersistErrs (word 13, PR 4) and the latency quantiles
// LatP50/LatP99/LatP999/FsyncP99 (words 14-17, the obs PR) — always as
// optional trailing words under the tolerant-decode rule. These tests
// pin both directions of every pairing: each historical row shape
// through today's decoder, and today's row through reconstructions of
// the historical decoders.

import (
	"bytes"
	"testing"
)

// appendStatsV0 emits the PR 3 row: 12 words, no PersistErrs.
func appendStatsV0(s *ServerStats) []uint64 {
	return []uint64{
		s.Shards, s.Slots, s.Words,
		s.ConnsTotal, s.ConnsOpen,
		s.Reqs, s.Updates, s.Reads, s.Snapshots, s.Multis,
		s.Batches, s.BadReqs,
	}
}

// decodeStatsV1 reconstructs the PR 4 decoder: requires >= 12 words,
// reads word 12 when present, ignores everything after — the
// "truncating old-style decoder" a deployed client still runs.
func decodeStatsV1(row []uint64) (ServerStats, bool) {
	if len(row) < 12 {
		return ServerStats{}, false
	}
	st := ServerStats{
		Shards: row[0], Slots: row[1], Words: row[2],
		ConnsTotal: row[3], ConnsOpen: row[4],
		Reqs: row[5], Updates: row[6], Reads: row[7], Snapshots: row[8], Multis: row[9],
		Batches: row[10], BadReqs: row[11],
	}
	if len(row) > 12 {
		st.PersistErrs = row[12]
	}
	return st, true
}

var compatStats = ServerStats{
	Shards: 4, Slots: 8, Words: 2,
	ConnsTotal: 7, ConnsOpen: 2,
	Reqs: 1000, Updates: 600, Reads: 350, Snapshots: 10, Multis: 40,
	Batches: 120, BadReqs: 3, PersistErrs: 1,
	LatP50: 15_000, LatP99: 400_000, LatP999: 2_000_000, FsyncP99: 5_000_000,
}

func TestNewDecoderReadsOldRows(t *testing.T) {
	// PR 3 row (12 words): every field since then must come back zero.
	got, err := DecodeStats(appendStatsV0(&compatStats))
	if err != nil {
		t.Fatalf("decoding 12-word row: %v", err)
	}
	if got.Reqs != compatStats.Reqs || got.BadReqs != compatStats.BadReqs {
		t.Errorf("12-word row: counters mangled: %+v", got)
	}
	if got.PersistErrs != 0 || got.LatP50 != 0 || got.LatP99 != 0 || got.LatP999 != 0 || got.FsyncP99 != 0 {
		t.Errorf("12-word row: phantom trailing fields: %+v", got)
	}

	// PR 4 row (13 words): PersistErrs present, latency words absent.
	s13 := compatStats
	s13.LatP50, s13.LatP99, s13.LatP999, s13.FsyncP99 = 0, 0, 0, 0
	row13 := append(appendStatsV0(&compatStats), compatStats.PersistErrs)
	got, err = DecodeStats(row13)
	if err != nil {
		t.Fatalf("decoding 13-word row: %v", err)
	}
	if got != s13 {
		t.Errorf("13-word row: got %+v want %+v", got, s13)
	}

	// Partial latency suffix (a hypothetical 15-word row): present
	// words land, absent ones stay zero — no index arithmetic slips.
	row15 := compatStats.Append(nil)[:15]
	got, err = DecodeStats(row15)
	if err != nil {
		t.Fatalf("decoding 15-word row: %v", err)
	}
	if got.LatP50 != compatStats.LatP50 || got.LatP99 != compatStats.LatP99 {
		t.Errorf("15-word row dropped present latency words: %+v", got)
	}
	if got.LatP999 != 0 || got.FsyncP99 != 0 {
		t.Errorf("15-word row invented absent latency words: %+v", got)
	}
}

func TestOldDecoderReadsNewRows(t *testing.T) {
	row := compatStats.Append(nil)
	got, ok := decodeStatsV1(row)
	if !ok {
		t.Fatal("old-style decoder rejected a new row")
	}
	want := compatStats
	want.LatP50, want.LatP99, want.LatP999, want.FsyncP99 = 0, 0, 0, 0
	if got != want {
		t.Errorf("old-style decode of new row: got %+v want %+v", got, want)
	}
}

func TestStatsOverWireRoundTrip(t *testing.T) {
	// The full path a Stats response takes: stats row into a Response
	// body, framed, read back, decoded — with the new trailing words
	// riding along.
	resp := &Response{ID: 9, Status: StatusOK}
	resp.Data = compatStats.Append(resp.Data[:0])
	resp.Rows, resp.Words = 1, uint32(len(resp.Data))
	var buf bytes.Buffer
	if err := WriteFrame(&buf, AppendResponse(nil, resp)); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dec Response
	if err := DecodeResponse(&dec, frame); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStats(dec.Data)
	if err != nil {
		t.Fatal(err)
	}
	if got != compatStats {
		t.Errorf("wire round trip: got %+v want %+v", got, compatStats)
	}
}

func TestMalformedStatsFrames(t *testing.T) {
	// Frame-level damage around a stats response: each case must error
	// out of ReadFrame or the decoders, never panic or misread.
	resp := &Response{ID: 1, Status: StatusOK}
	resp.Data = compatStats.Append(nil)
	resp.Rows, resp.Words = 1, uint32(len(resp.Data))
	var whole bytes.Buffer
	if err := WriteFrame(&whole, AppendResponse(nil, resp)); err != nil {
		t.Fatal(err)
	}
	full := whole.Bytes()

	frames := []struct {
		name string
		raw  []byte
	}{
		{"empty stream", nil},
		{"truncated length prefix", full[:3]},
		{"header only, payload missing", full[:4]},
		{"payload cut mid-stats-row", full[:len(full)-40]},
	}
	for _, tc := range frames {
		if _, err := ReadFrame(bytes.NewReader(tc.raw), nil); err == nil {
			t.Errorf("%s: ReadFrame accepted it", tc.name)
		}
	}

	// A well-framed response whose stats row is too short to be one.
	short := &Response{ID: 2, Status: StatusOK}
	short.Data = []uint64{1, 2, 3}
	short.Rows, short.Words = 1, 3
	var dec Response
	if err := DecodeResponse(&dec, AppendResponse(nil, short)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStats(dec.Data); err == nil {
		t.Error("3-word stats row decoded without error")
	}
}
