package wire

// Cross-version status compatibility: PR 8 added StatusBusy (3,
// retryable overload rejection) and StatusUnavailable (4, sticky
// degraded-mode rejection). Response status is a raw byte on the wire,
// so the compatibility surface is the value assignments themselves —
// they can never be renumbered — plus the tolerant-decode behavior of
// a client that predates them: it must read the response cleanly,
// treat the unknown status as a failure (it is non-zero), and surface
// the server's message. These tests pin both directions.

import (
	"bytes"
	"testing"
)

// TestStatusValuesPinned pins the wire byte of every status ever
// shipped. A renumbering would make deployed old clients misread new
// servers (and vice versa) while every in-tree test still passed —
// this is the only place the raw numbers are load-bearing in a test.
func TestStatusValuesPinned(t *testing.T) {
	pins := []struct {
		st   Status
		val  uint8
		name string
	}{
		{StatusOK, 0, "ok"},
		{StatusBadRequest, 1, "bad-request"},
		{StatusShutdown, 2, "shutdown"},
		{StatusBusy, 3, "busy"},
		{StatusUnavailable, 4, "unavailable"},
	}
	for _, p := range pins {
		if uint8(p.st) != p.val {
			t.Errorf("%s = %d, pinned wire value is %d", p.name, p.st, p.val)
		}
		if p.st.String() != p.name {
			t.Errorf("Status(%d).String() = %q, want %q", p.val, p.st.String(), p.name)
		}
	}
}

// TestNewStatusesThroughDecoder: a response carrying each new status
// survives the full frame round trip with id, status and message
// intact — the path an old client (whose decoder is byte-identical)
// takes when a new server rejects it.
func TestNewStatusesThroughDecoder(t *testing.T) {
	for _, st := range []Status{StatusBusy, StatusUnavailable} {
		resp := &Response{ID: 42, Status: st, Err: "rejected: " + st.String()}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, AppendResponse(nil, resp)); err != nil {
			t.Fatal(err)
		}
		frame, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		var dec Response
		if err := DecodeResponse(&dec, frame); err != nil {
			t.Fatalf("%v: decode: %v", st, err)
		}
		if dec.ID != 42 || dec.Status != st || dec.Err != resp.Err {
			t.Errorf("%v round trip: got id=%d status=%v err=%q", st, dec.ID, dec.Status, dec.Err)
		}
		// The one property an unknowing client relies on: non-OK.
		if dec.Status == StatusOK {
			t.Errorf("%v decoded as OK", st)
		}
	}
}

// TestUnknownFutureStatusTolerated: tomorrow's status 5 through today's
// decoder — decodes cleanly, stringifies without panicking, reads as a
// failure. This is the same promise PR 8 leaned on when it introduced
// 3 and 4 against deployed PR 3 clients.
func TestUnknownFutureStatusTolerated(t *testing.T) {
	resp := &Response{ID: 7, Status: Status(5), Err: "from the future"}
	var dec Response
	if err := DecodeResponse(&dec, AppendResponse(nil, resp)); err != nil {
		t.Fatalf("decode of unknown status: %v", err)
	}
	if dec.Status != Status(5) || dec.Status == StatusOK || dec.Err != "from the future" {
		t.Errorf("unknown status mangled: %+v", dec)
	}
	if s := dec.Status.String(); s == "" {
		t.Error("unknown Status.String() empty")
	}
}

// appendStatsV2 emits the observability-PR row: 17 words, everything
// through FsyncP99, none of the overload counters.
func appendStatsV2(s *ServerStats) []uint64 {
	return append(appendStatsV0(s),
		s.PersistErrs, s.LatP50, s.LatP99, s.LatP999, s.FsyncP99)
}

// decodeStatsV2 reconstructs the observability-PR decoder: reads
// through word 16 when present, ignores the rest.
func decodeStatsV2(row []uint64) (ServerStats, bool) {
	st, ok := decodeStatsV1(row)
	if !ok {
		return ServerStats{}, false
	}
	for i, dst := range []*uint64{&st.LatP50, &st.LatP99, &st.LatP999, &st.FsyncP99} {
		if len(row) > 13+i {
			*dst = row[13+i]
		}
	}
	return st, true
}

var overloadStats = func() ServerStats {
	s := compatStats
	s.ShedConns, s.BusyRejects, s.Evictions, s.IdleCloses, s.DegradedRejects = 5, 900, 2, 11, 44
	return s
}()

// TestNewDecoderReadsPreOverloadRows: a 17-word row (a server without
// the overload counters) through today's decoder — counters land,
// overload words stay zero instead of swallowing garbage.
func TestNewDecoderReadsPreOverloadRows(t *testing.T) {
	got, err := DecodeStats(appendStatsV2(&compatStats))
	if err != nil {
		t.Fatalf("decoding 17-word row: %v", err)
	}
	want := compatStats
	if got != want {
		t.Errorf("17-word row: got %+v want %+v", got, want)
	}
	if got.ShedConns != 0 || got.BusyRejects != 0 || got.DegradedRejects != 0 {
		t.Errorf("17-word row: phantom overload words: %+v", got)
	}

	// Partial overload suffix (19 words): ShedConns and BusyRejects
	// present, the rest absent.
	row19 := overloadStats.Append(nil)[:19]
	got, err = DecodeStats(row19)
	if err != nil {
		t.Fatalf("decoding 19-word row: %v", err)
	}
	if got.ShedConns != 5 || got.BusyRejects != 900 {
		t.Errorf("19-word row dropped present overload words: %+v", got)
	}
	if got.Evictions != 0 || got.IdleCloses != 0 || got.DegradedRejects != 0 {
		t.Errorf("19-word row invented absent overload words: %+v", got)
	}
}

// TestOldDecoderReadsOverloadRows: today's 22-word row through the
// reconstructed older decoders — both must take what they know and
// ignore the overload tail.
func TestOldDecoderReadsOverloadRows(t *testing.T) {
	row := overloadStats.Append(nil)
	if got, ok := decodeStatsV2(row); !ok {
		t.Fatal("observability-era decoder rejected an overload row")
	} else {
		want := compatStats
		if got != want {
			t.Errorf("v2 decode of overload row: got %+v want %+v", got, want)
		}
	}
	if got, ok := decodeStatsV1(row); !ok {
		t.Fatal("PR 4 decoder rejected an overload row")
	} else if got.Reqs != overloadStats.Reqs || got.PersistErrs != overloadStats.PersistErrs {
		t.Errorf("v1 decode of overload row mangled counters: %+v", got)
	}
}

// TestOverloadStatsRoundTrip: the full 22-word row through the wire.
func TestOverloadStatsRoundTrip(t *testing.T) {
	got, err := DecodeStats(overloadStats.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != overloadStats {
		t.Errorf("round trip: got %+v want %+v", got, overloadStats)
	}
}
