// Package wire defines the compact binary protocol spoken between the
// llscd server (internal/server) and its clients (internal/client): a
// length-prefixed frame carrying one request or one response, with an
// explicit request id so many requests can be in flight on one
// connection at once (pipelining) and responses may return out of
// order.
//
// Every data operation of the in-process map has a wire counterpart
// with the same consistency contract — Update and UpdateMulti become
// declarative (the server applies a per-word merge, Add or Set, instead
// of a caller closure, since closures do not travel), Read, Snapshot
// and SnapshotAtomic carry their per-key / per-shard-atomic /
// cross-shard-linearizable guarantees unchanged, and Stats exposes the
// server's counters.
//
// # Frame layout
//
// Everything is little-endian. A frame is
//
//	uint32 length | payload (length bytes)
//
// and a payload is
//
//	request:  uint64 id | uint8 op | op-specific body
//	response: uint64 id | uint8 status | body
//
// Request bodies:
//
//	Ping           —
//	Read           uint64 key
//	Update         uint8 mode | uint64 key | W×uint64 args
//	Snapshot       —
//	SnapshotAtomic —
//	UpdateMulti    uint8 mode | uint16 nkeys | nkeys×uint64 keys | (nkeys·W)×uint64 args
//	Stats          —
//
// Response bodies:
//
//	status OK:  uint32 attempts | uint32 rows | uint32 words | (rows·words)×uint64 data
//	status err: uint16 len | len bytes of message
//
// Rows×words is 1×W for Read/Update, nkeys×W for UpdateMulti, K×W for
// the snapshots, 1×len for Stats (see ServerStats), and 0×0 for Ping.
//
// # Trace suffix
//
// A request may carry an optional trailing trace suffix after its
// op-specific body:
//
//	uint8 'T' (0x54) | uint64 traceid
//
// asking the server to trace this request (internal/trace) and echo
// the per-stage latency breakdown. The suffix follows the same
// tolerant-decode rule as the Stats row's optional words: decoders
// that understand it parse it, and it is unambiguous for every opcode
// because every op-specific body is a whole number of 8-byte words
// after its fixed header, while the suffix is 9 bytes. Old clients
// never send it; servers that predate it reject the frame, so clients
// must flag requests only against servers known to speak it (see
// docs/WIRE.md).
//
// A response to a traced request carries its own trailing suffix
// after the data words:
//
//	uint8 'T' | uint64 traceid | uint8 nstages | nstages×uint64 stage-ns
//
// with the server-side stage durations in internal/trace stage order
// (decode, queue, acquire, execute, persist, fsync — flush cannot
// travel, it is still happening while these bytes leave). The server
// sends it only on responses to traced requests, so a client that
// never flags a request never sees one.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Op identifies a request's operation.
type Op uint8

// Request opcodes.
const (
	OpPing Op = iota + 1
	OpRead
	OpUpdate
	OpSnapshot
	OpSnapshotAtomic
	OpUpdateMulti
	OpStats
)

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpSnapshot:
		return "snapshot"
	case OpSnapshotAtomic:
		return "snapshotatomic"
	case OpUpdateMulti:
		return "updatemulti"
	case OpStats:
		return "stats"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Mode selects how Update/UpdateMulti merge the request's args into the
// stored value, word by word.
type Mode uint8

const (
	// ModeAdd adds each arg word to the stored word (wrapping) — the
	// fetch-and-add family: counters, ledgers, accumulators.
	ModeAdd Mode = iota
	// ModeSet overwrites each stored word with the arg word.
	ModeSet
)

// String returns the mode mnemonic.
func (m Mode) String() string {
	switch m {
	case ModeAdd:
		return "add"
	case ModeSet:
		return "set"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Status is the response's outcome code.
type Status uint8

// Response status codes.
const (
	StatusOK Status = iota
	// StatusBadRequest: the request did not decode, used an unknown
	// opcode, or had the wrong arg width for the server's W.
	StatusBadRequest
	// StatusShutdown: the server is draining; retry against another one.
	StatusShutdown
	// StatusBusy: the server's admission controller rejected the request
	// before executing any of it (no map state was touched), because too
	// many batches were already in flight. Explicitly retryable for every
	// op, including non-idempotent updates: the server guarantees the
	// request did not run. Clients should back off before retrying.
	StatusBusy
	// StatusUnavailable: the server is in disk-sick read-only degraded
	// mode (a sticky persistence failure with -degrade-on-disk-error);
	// the update was rejected without touching the map so it cannot be
	// acked-but-lost. Reads keep working. Not worth retrying against the
	// same server: the condition is sticky until an operator intervenes.
	StatusUnavailable
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusShutdown:
		return "shutdown"
	case StatusBusy:
		return "busy"
	case StatusUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Merge applies an update's word-merge mode to a stored value: ModeAdd
// adds each arg word into v (wrapping), ModeSet overwrites v with args.
// It is the one merge semantic shared by the server's live execution
// path and the persistence layer's log replay — deterministic and
// side-effect free, as the LL/SC retry loop requires.
func Merge(v, args []uint64, mode Mode) {
	if mode == ModeSet {
		copy(v, args)
		return
	}
	for i := range v {
		v[i] += args[i]
	}
}

// MaxFrame bounds a frame's payload; both sides reject bigger frames
// instead of allocating attacker-controlled amounts. Generous enough for
// a snapshot of thousands of shards times a wide W.
const MaxFrame = 8 << 20

// MaxMultiKeys bounds the keys of one UpdateMulti (the uint16 nkeys
// field caps it at 65535 anyway; this keeps worst-case descriptor work
// sane and matches the transaction layer's sweet spot of small spans).
const MaxMultiKeys = 1 << 12

// TraceMark is the first byte of the optional trailing trace suffix on
// requests and responses ('T').
const TraceMark = 0x54

// reqTraceLen is the request trace suffix length: marker + trace id.
const reqTraceLen = 9

// MaxTraceStages bounds the stage count a response trace suffix may
// carry — a decode sanity bound, not a protocol promise (the current
// server sends trace.WireStages = 6).
const MaxTraceStages = 16

// Request is one decoded request frame.
type Request struct {
	ID   uint64
	Op   Op
	Mode Mode     // Update, UpdateMulti
	Key  uint64   // Read, Update
	Keys []uint64 // UpdateMulti (aliases decode buffer; copy to retain)
	Args []uint64 // Update: W words; UpdateMulti: len(Keys)·W words
	// Traced marks a request carrying the optional trace suffix: the
	// client asks the server to trace it under TraceID and echo the
	// stage breakdown on the response.
	Traced  bool
	TraceID uint64
}

// Response is one decoded response frame.
type Response struct {
	ID       uint64
	Status   Status
	Attempts uint32 // LL/SC attempts or txn attempts; 0 when n/a
	Rows     uint32 // data shape: Rows rows of Words words
	Words    uint32
	Data     []uint64 // aliases decode buffer; copy to retain
	Err      string   // set iff Status != StatusOK
	// Traced marks a response carrying the trace suffix; Stages holds
	// the server-side per-stage durations in nanoseconds, in
	// internal/trace stage order (reuses its backing array on decode).
	Traced  bool
	TraceID uint64
	Stages  []uint64
}

// Row returns row i of the response data.
func (r *Response) Row(i int) []uint64 {
	w := int(r.Words)
	return r.Data[i*w : (i+1)*w]
}

// AppendRequest appends req's payload (without the frame length) to dst.
// The payload is sized up front and the words bulk-encoded, so a dst
// with enough capacity (a recycled encode buffer) costs zero allocations.
func AppendRequest(dst []byte, req *Request) []byte {
	size := 9
	switch req.Op {
	case OpRead:
		size += 8
	case OpUpdate:
		size += 1 + 8 + 8*len(req.Args)
	case OpUpdateMulti:
		size += 1 + 2 + 8*(len(req.Keys)+len(req.Args))
	}
	if req.Traced {
		size += reqTraceLen
	}
	dst = growBytes(dst, size)
	dst = binary.LittleEndian.AppendUint64(dst, req.ID)
	dst = append(dst, byte(req.Op))
	switch req.Op {
	case OpRead:
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
	case OpUpdate:
		dst = append(dst, byte(req.Mode))
		dst = binary.LittleEndian.AppendUint64(dst, req.Key)
		dst = appendUint64s(dst, req.Args)
	case OpUpdateMulti:
		dst = append(dst, byte(req.Mode))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(req.Keys)))
		dst = appendUint64s(dst, req.Keys)
		dst = appendUint64s(dst, req.Args)
	}
	if req.Traced {
		dst = append(dst, TraceMark)
		dst = binary.LittleEndian.AppendUint64(dst, req.TraceID)
	}
	return dst
}

// splitReqTrace strips the optional trailing trace suffix from a
// request body when extra — the body length beyond the op's base shape
// modulo its word granularity — says one is present, filling req's
// trace fields. It returns the body without the suffix.
func splitReqTrace(req *Request, body []byte) []byte {
	n := len(body) - reqTraceLen
	if n < 0 || body[n] != TraceMark {
		return body // leave the length error to the per-op check
	}
	req.Traced = true
	req.TraceID = binary.LittleEndian.Uint64(body[n+1:])
	return body[:n]
}

// DecodeRequest decodes a request payload into req, reusing req's Keys
// and Args backing arrays when they are large enough.
func DecodeRequest(req *Request, payload []byte) error {
	if len(payload) < 9 {
		return fmt.Errorf("wire: request payload %d bytes, need >= 9", len(payload))
	}
	req.ID = binary.LittleEndian.Uint64(payload)
	req.Op = Op(payload[8])
	body := payload[9:]
	req.Mode, req.Key = 0, 0
	req.Keys, req.Args = req.Keys[:0], req.Args[:0]
	req.Traced, req.TraceID = false, 0
	// The trace suffix is detectable by length alone: every op-specific
	// body is a whole number of 8-byte words past its fixed header, and
	// the suffix is 9 bytes, so the length residue says whether one is
	// present (the marker byte is then required).
	switch req.Op {
	case OpPing, OpSnapshot, OpSnapshotAtomic, OpStats:
		if len(body) == reqTraceLen {
			body = splitReqTrace(req, body)
		}
		if len(body) != 0 {
			return fmt.Errorf("wire: %v request carries %d unexpected body bytes", req.Op, len(body))
		}
	case OpRead:
		if len(body) == 8+reqTraceLen {
			body = splitReqTrace(req, body)
		}
		if len(body) != 8 {
			return fmt.Errorf("wire: read request body %d bytes, want 8", len(body))
		}
		req.Key = binary.LittleEndian.Uint64(body)
	case OpUpdate:
		if len(body) >= 9+reqTraceLen && (len(body)-9)%8 == reqTraceLen%8 {
			body = splitReqTrace(req, body)
		}
		if len(body) < 9 || (len(body)-9)%8 != 0 {
			return fmt.Errorf("wire: update request body %d bytes, want 9+8·w", len(body))
		}
		req.Mode = Mode(body[0])
		req.Key = binary.LittleEndian.Uint64(body[1:])
		req.Args = appendWords(req.Args, body[9:])
	case OpUpdateMulti:
		if len(body) < 3 {
			return fmt.Errorf("wire: updatemulti request body %d bytes, want >= 3", len(body))
		}
		req.Mode = Mode(body[0])
		nkeys := int(binary.LittleEndian.Uint16(body[1:]))
		if nkeys == 0 || nkeys > MaxMultiKeys {
			return fmt.Errorf("wire: updatemulti with %d keys, want 1..%d", nkeys, MaxMultiKeys)
		}
		if extra := len(body) - 3 - nkeys*8; extra >= reqTraceLen && extra%8 == reqTraceLen%8 {
			body = splitReqTrace(req, body)
		}
		rest := body[3:]
		if len(rest) < nkeys*8 || (len(rest)-nkeys*8)%8 != 0 {
			return fmt.Errorf("wire: updatemulti body %d bytes does not fit %d keys + args", len(body), nkeys)
		}
		req.Keys = appendWords(req.Keys, rest[:nkeys*8])
		req.Args = appendWords(req.Args, rest[nkeys*8:])
		if len(req.Args)%nkeys != 0 {
			return fmt.Errorf("wire: updatemulti args %d words not a multiple of %d keys", len(req.Args), nkeys)
		}
	default:
		return fmt.Errorf("wire: unknown opcode %d", uint8(req.Op))
	}
	return nil
}

// AppendResponse appends resp's payload (without the frame length) to
// dst. Like AppendRequest it pre-sizes and bulk-encodes: with a recycled
// dst this is the server's per-response cost, and it must not allocate.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, resp.ID)
	dst = append(dst, byte(resp.Status))
	if resp.Status != StatusOK {
		msg := resp.Err
		if len(msg) > 1<<15 {
			msg = msg[:1<<15]
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
		return append(dst, msg...)
	}
	size := 12 + 8*len(resp.Data)
	if resp.Traced {
		size += 10 + 8*len(resp.Stages)
	}
	dst = growBytes(dst, size)
	dst = binary.LittleEndian.AppendUint32(dst, resp.Attempts)
	dst = binary.LittleEndian.AppendUint32(dst, resp.Rows)
	dst = binary.LittleEndian.AppendUint32(dst, resp.Words)
	dst = appendUint64s(dst, resp.Data)
	if resp.Traced {
		dst = append(dst, TraceMark)
		dst = binary.LittleEndian.AppendUint64(dst, resp.TraceID)
		dst = append(dst, byte(len(resp.Stages)))
		dst = appendUint64s(dst, resp.Stages)
	}
	return dst
}

// DecodeResponse decodes a response payload into resp, reusing resp's
// Data backing array when it is large enough.
func DecodeResponse(resp *Response, payload []byte) error {
	if len(payload) < 9 {
		return fmt.Errorf("wire: response payload %d bytes, need >= 9", len(payload))
	}
	resp.ID = binary.LittleEndian.Uint64(payload)
	resp.Status = Status(payload[8])
	body := payload[9:]
	resp.Attempts, resp.Rows, resp.Words = 0, 0, 0
	resp.Data, resp.Err = resp.Data[:0], ""
	resp.Traced, resp.TraceID, resp.Stages = false, 0, resp.Stages[:0]
	if resp.Status != StatusOK {
		if len(body) < 2 {
			return fmt.Errorf("wire: error response body %d bytes, want >= 2", len(body))
		}
		n := int(binary.LittleEndian.Uint16(body))
		if len(body) != 2+n {
			return fmt.Errorf("wire: error response message %d bytes, frame carries %d", n, len(body)-2)
		}
		resp.Err = string(body[2 : 2+n])
		return nil
	}
	if len(body) < 12 {
		return fmt.Errorf("wire: ok response body %d bytes, want >= 12", len(body))
	}
	resp.Attempts = binary.LittleEndian.Uint32(body)
	resp.Rows = binary.LittleEndian.Uint32(body[4:])
	resp.Words = binary.LittleEndian.Uint32(body[8:])
	data := body[12:]
	want := uint64(resp.Rows) * uint64(resp.Words) * 8
	if uint64(len(data)) > want {
		// Extra bytes past the promised data words: the trailing trace
		// suffix, marker | traceid | nstages | stage words. Anything else
		// is still a shape error.
		extra := data[want:]
		if len(extra) < 10 || extra[0] != TraceMark {
			return fmt.Errorf("wire: response data %d bytes, header promises %d", len(data), want)
		}
		nstages := int(extra[9])
		if nstages > MaxTraceStages || len(extra) != 10+8*nstages {
			return fmt.Errorf("wire: response trace suffix %d bytes does not fit %d stages", len(extra), nstages)
		}
		resp.Traced = true
		resp.TraceID = binary.LittleEndian.Uint64(extra[1:])
		resp.Stages = appendWords(resp.Stages, extra[10:])
		data = data[:want]
	}
	if uint64(len(data)) != want {
		return fmt.Errorf("wire: response data %d bytes, header promises %d", len(data), want)
	}
	resp.Data = appendWords(resp.Data, data)
	return nil
}

// appendWords appends b (a multiple of 8 bytes) to dst as little-endian
// uint64s, growing dst at most once so a pre-sized destination (a reused
// Request/Response backing array) decodes without allocating.
func appendWords(dst []uint64, b []byte) []uint64 {
	n := len(b) / 8
	if need := len(dst) + n; cap(dst) < need {
		grown := make([]uint64, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		dst = append(dst, binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst
}

// growBytes returns dst with capacity for at least n more bytes,
// reallocating at most once up front so the appends that follow cannot.
func growBytes(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	grown := make([]byte, len(dst), len(dst)+n)
	copy(grown, dst)
	return grown
}

// appendUint64s bulk-encodes words as little-endian bytes: one capacity
// check, then PutUint64 into pre-sized space instead of per-word appends.
func appendUint64s(dst []byte, words []uint64) []byte {
	n := len(dst)
	dst = growBytes(dst, 8*len(words))[:n+8*len(words)]
	for i, w := range words {
		binary.LittleEndian.PutUint64(dst[n+8*i:], w)
	}
	return dst
}

// WriteFrame writes one length-prefixed frame carrying payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends the length prefix and payload to dst — for callers
// that coalesce several frames into one Write.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// FrameBufCap is the soft cap on the reusable buffer ReadFrame hands
// back: a jumbo frame (up to MaxFrame = 8 MiB) may grow the buffer past
// it, but the next small frame releases the oversized backing array
// instead of pinning MaxFrame bytes per connection for its lifetime.
const FrameBufCap = 64 << 10

// ReadFrame reads one frame into buf (growing it as needed) and returns
// the payload (a prefix of the returned buffer). Callers pass the
// returned buffer back in once they are done with the payload; buffers
// left oversized by a rare jumbo frame shrink back to FrameBufCap.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	// The header is read into the reusable buffer itself: a stack array
	// would escape through the io.Reader interface and cost an allocation
	// per frame.
	if cap(buf) < 4 {
		buf = make([]byte, 512)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return buf, err
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	if n > MaxFrame {
		return buf, fmt.Errorf("wire: incoming frame of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	switch {
	case cap(buf) < n:
		c := n
		if c < 512 {
			c = 512
		}
		buf = make([]byte, c)
	case cap(buf) > FrameBufCap && n <= FrameBufCap:
		buf = make([]byte, FrameBufCap)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, fmt.Errorf("wire: short frame: %w", err)
	}
	return buf, nil
}

// ServerStats is the counter snapshot a Stats request returns, carried
// on the wire as one row of uint64 words in field order. Decoding
// tolerates a longer row (a newer server may append fields), so old
// clients keep working against new servers.
type ServerStats struct {
	Shards     uint64 // map geometry: K
	Slots      uint64 // map geometry: N (registry slots)
	Words      uint64 // map geometry: W
	ConnsTotal uint64 // connections accepted since start
	ConnsOpen  uint64 // connections currently open
	Reqs       uint64 // requests executed, all ops
	Updates    uint64
	Reads      uint64
	Snapshots  uint64 // Snapshot + SnapshotAtomic
	Multis     uint64 // UpdateMulti
	Batches    uint64 // handle-acquire batches executed
	BadReqs    uint64 // requests rejected with a non-OK status
	// PersistErrs counts persistence failures: append or group-commit
	// fsync rounds that returned an error. Under fsync policy "always"
	// each such round also converts its batch's committed updates into
	// error responses (counted in BadReqs); under the other policies the
	// commit is acked and this counter is the only sign durability is
	// degraded — alert on it.
	PersistErrs uint64
	// LatP50/LatP99/LatP999 are server-side service-latency quantiles in
	// nanoseconds (the batch-execute window: handle acquisition through
	// durability, attributed to every request in the batch), estimated
	// from the server's log-bucketed histogram. Zero when the server
	// predates them or runs with observability off. Like PersistErrs,
	// they ride as optional trailing words: old clients ignore them, new
	// clients read zeros from old servers.
	LatP50  uint64
	LatP99  uint64
	LatP999 uint64
	// FsyncP99 is the p99 group-commit fsync latency in nanoseconds,
	// zero when the server runs without a durability store.
	FsyncP99 uint64
	// Overload-control counters (optional words 17-21), zero on servers
	// that predate them or run with the limits off:
	//
	// ShedConns counts connections closed at accept because -max-conns
	// was reached; BusyRejects counts requests answered StatusBusy by the
	// admission controller; Evictions counts connections closed because a
	// slow reader stalled the server's response write past the write
	// deadline; IdleCloses counts connections closed by the read-idle
	// deadline; DegradedRejects counts updates answered
	// StatusUnavailable in disk-sick read-only degraded mode.
	ShedConns       uint64
	BusyRejects     uint64
	Evictions       uint64
	IdleCloses      uint64
	DegradedRejects uint64
}

// statsWords is the minimum wire width of ServerStats; PersistErrs
// rides as an optional 13th word, the latency quantiles
// (LatP50/LatP99/LatP999/FsyncP99) as optional words 14-17, and the
// overload-control counters (ShedConns/BusyRejects/Evictions/
// IdleCloses/DegradedRejects) as optional words 17-21, so new clients
// still decode rows from older servers (and, per the tolerant-decode
// rule above, vice versa).
const statsWords = 12

// Append encodes s in field order.
func (s *ServerStats) Append(dst []uint64) []uint64 {
	return append(dst,
		s.Shards, s.Slots, s.Words,
		s.ConnsTotal, s.ConnsOpen,
		s.Reqs, s.Updates, s.Reads, s.Snapshots, s.Multis,
		s.Batches, s.BadReqs, s.PersistErrs,
		s.LatP50, s.LatP99, s.LatP999, s.FsyncP99,
		s.ShedConns, s.BusyRejects, s.Evictions, s.IdleCloses, s.DegradedRejects)
}

// DecodeStats decodes a stats row previously produced by Append.
func DecodeStats(row []uint64) (ServerStats, error) {
	if len(row) < statsWords {
		return ServerStats{}, fmt.Errorf("wire: stats row has %d words, want >= %d", len(row), statsWords)
	}
	st := ServerStats{
		Shards: row[0], Slots: row[1], Words: row[2],
		ConnsTotal: row[3], ConnsOpen: row[4],
		Reqs: row[5], Updates: row[6], Reads: row[7], Snapshots: row[8], Multis: row[9],
		Batches: row[10], BadReqs: row[11],
	}
	// Optional trailing words, newest-last; a shorter row from an older
	// server leaves them zero.
	opt := []*uint64{&st.PersistErrs, &st.LatP50, &st.LatP99, &st.LatP999, &st.FsyncP99,
		&st.ShedConns, &st.BusyRejects, &st.Evictions, &st.IdleCloses, &st.DegradedRejects}
	for i, p := range opt {
		if len(row) > statsWords+i {
			*p = row[statsWords+i]
		}
	}
	return st, nil
}
