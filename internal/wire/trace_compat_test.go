package wire

import (
	"bytes"
	"testing"
)

// The trace suffix is an optional trailing field under the same
// tolerant-decode rule as the Stats row's optional words: frames without
// it are byte-for-byte what pre-trace encoders produced, and decoders
// detect it purely from the length residue (every op body is a whole
// number of 8-byte words past its fixed header; the suffix is 9 bytes).

func TestRequestTraceSuffixRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpRead, Key: 0xdeadbeef},
		{ID: 3, Op: OpUpdate, Mode: ModeAdd, Key: 7, Args: []uint64{1, 2, 3}},
		{ID: 4, Op: OpSnapshot},
		{ID: 5, Op: OpSnapshotAtomic},
		{ID: 6, Op: OpUpdateMulti, Mode: ModeSet, Keys: []uint64{10, 20}, Args: []uint64{1, 2, 3, 4}},
		{ID: 7, Op: OpStats},
	}
	var got Request
	for _, want := range reqs {
		want.Traced, want.TraceID = true, 0xfeedface12345678
		payload := AppendRequest(nil, &want)
		if err := DecodeRequest(&got, payload); err != nil {
			t.Fatalf("%v traced: decode: %v", want.Op, err)
		}
		if !got.Traced || got.TraceID != want.TraceID {
			t.Fatalf("%v: trace fields did not round trip: %+v", want.Op, got)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Mode != want.Mode || got.Key != want.Key ||
			!equalWords(got.Keys, want.Keys) || !equalWords(got.Args, want.Args) {
			t.Fatalf("%v traced: body round trip: got %+v want %+v", want.Op, got, want)
		}
		// An untraced frame must be byte-identical to what a pre-trace
		// encoder produced: the suffix is strictly additive.
		want.Traced, want.TraceID = false, 0
		plain := AppendRequest(nil, &want)
		if !bytes.Equal(plain, payload[:len(payload)-reqTraceLen]) {
			t.Fatalf("%v: traced frame is not plain frame + suffix", want.Op)
		}
		if err := DecodeRequest(&got, plain); err != nil {
			t.Fatalf("%v plain: decode: %v", want.Op, err)
		}
		if got.Traced || got.TraceID != 0 {
			t.Fatalf("%v: trace fields leaked across decodes: %+v", want.Op, got)
		}
	}
}

func TestResponseTraceSuffixRoundTrip(t *testing.T) {
	want := Response{ID: 9, Status: StatusOK, Attempts: 2, Rows: 1, Words: 3,
		Data:   []uint64{5, 6, 7},
		Traced: true, TraceID: 0xabad1dea,
		Stages: []uint64{100, 200, 300, 400, 500, 600}}
	payload := AppendResponse(nil, &want)
	var got Response
	if err := DecodeResponse(&got, payload); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Traced || got.TraceID != want.TraceID || !equalWords(got.Stages, want.Stages) {
		t.Fatalf("trace suffix round trip: %+v", got)
	}
	if !equalWords(got.Data, want.Data) || got.Attempts != want.Attempts {
		t.Fatalf("data round trip with suffix: %+v", got)
	}
	// Plain responses stay byte-identical, and decoding one after a
	// traced one must reset the trace fields.
	want.Traced, want.TraceID, want.Stages = false, 0, nil
	plain := AppendResponse(nil, &want)
	if !bytes.Equal(plain, payload[:len(plain)]) {
		t.Fatal("traced response is not plain response + suffix")
	}
	if err := DecodeResponse(&got, plain); err != nil {
		t.Fatalf("plain decode: %v", err)
	}
	if got.Traced || got.TraceID != 0 || len(got.Stages) != 0 {
		t.Fatalf("trace fields leaked across decodes: %+v", got)
	}
}

func TestResponseTraceSuffixZeroStages(t *testing.T) {
	want := Response{ID: 1, Status: StatusOK, Traced: true, TraceID: 42}
	var got Response
	if err := DecodeResponse(&got, AppendResponse(nil, &want)); err != nil {
		t.Fatal(err)
	}
	if !got.Traced || got.TraceID != 42 || len(got.Stages) != 0 {
		t.Fatalf("zero-stage suffix: %+v", got)
	}
}

func TestTraceSuffixRejectsMalformed(t *testing.T) {
	traced := func(op Op) []byte {
		return AppendRequest(nil, &Request{Op: op, Key: 1, Args: []uint64{1},
			Keys: []uint64{1}, Traced: true, TraceID: 7})
	}
	badMark := traced(OpRead)
	badMark[len(badMark)-reqTraceLen] = 'X' // length says suffix, marker disagrees
	truncated := traced(OpPing)
	var req Request
	for name, payload := range map[string][]byte{
		"bad marker":       badMark,
		"truncated suffix": truncated[:len(truncated)-1],
	} {
		if err := DecodeRequest(&req, payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	resp := &Response{Status: StatusOK, Rows: 1, Words: 1, Data: []uint64{9},
		Traced: true, TraceID: 7, Stages: []uint64{1, 2, 3}}
	good := AppendResponse(nil, resp)
	badRespMark := append([]byte(nil), good...)
	badRespMark[9+12+8] = 'X'
	lyingCount := append([]byte(nil), good...)
	lyingCount[9+12+8+9] = 5 // claims 5 stages, carries 3
	var dec Response
	for name, payload := range map[string][]byte{
		"resp bad marker":   badRespMark,
		"resp stage count":  lyingCount,
		"resp short suffix": good[:len(good)-1],
	} {
		if err := DecodeResponse(&dec, payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestTraceSuffixZeroAlloc(t *testing.T) {
	req := &Request{ID: 1, Op: OpUpdate, Key: 3, Args: []uint64{1, 2},
		Traced: true, TraceID: 99}
	resp := &Response{ID: 1, Status: StatusOK, Rows: 1, Words: 2, Data: []uint64{4, 5},
		Traced: true, TraceID: 99, Stages: []uint64{10, 20, 30, 40, 50, 60}}
	var reqBuf, respBuf []byte
	var dreq Request
	var dresp Response
	reqBuf = AppendRequest(reqBuf[:0], req)
	respBuf = AppendResponse(respBuf[:0], resp)
	if err := DecodeRequest(&dreq, reqBuf); err != nil {
		t.Fatal(err)
	}
	if err := DecodeResponse(&dresp, respBuf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		reqBuf = AppendRequest(reqBuf[:0], req)
		respBuf = AppendResponse(respBuf[:0], resp)
		if err := DecodeRequest(&dreq, reqBuf); err != nil {
			t.Fatal(err)
		}
		if err := DecodeResponse(&dresp, respBuf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("traced encode+decode: %v allocs/op, want 0", allocs)
	}
}
