package wire

import (
	"bytes"
	"testing"
)

// The serving hot path budgets zero allocations per request once its
// buffers are warm: encode and decode reuse the caller's backing arrays
// (growBytes/appendWords grow them at most once), and ReadFrame hands
// the same payload buffer back and forth. These assertions are the
// wire-level half of the E13 allocation gate; the server-side half lives
// in internal/server.

func TestAppendDecodeRequestZeroAlloc(t *testing.T) {
	req := &Request{ID: 42, Op: OpUpdate, Mode: ModeAdd, Key: 7, Args: []uint64{1, 2, 3, 4}}
	var payload []byte
	var dec Request
	// Warm the buffers once; steady state must not allocate.
	payload = AppendRequest(payload[:0], req)
	if err := DecodeRequest(&dec, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		payload = AppendRequest(payload[:0], req)
		if err := DecodeRequest(&dec, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("request encode+decode: %v allocs/op, want 0", allocs)
	}
}

func TestAppendDecodeRequestMultiZeroAlloc(t *testing.T) {
	req := &Request{ID: 42, Op: OpUpdateMulti, Mode: ModeSet,
		Keys: []uint64{1, 2, 3}, Args: []uint64{1, 2, 3, 4, 5, 6}}
	var payload []byte
	var dec Request
	payload = AppendRequest(payload[:0], req)
	if err := DecodeRequest(&dec, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		payload = AppendRequest(payload[:0], req)
		if err := DecodeRequest(&dec, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("updatemulti encode+decode: %v allocs/op, want 0", allocs)
	}
}

func TestAppendDecodeResponseZeroAlloc(t *testing.T) {
	resp := &Response{ID: 42, Status: StatusOK, Attempts: 1, Rows: 2, Words: 2,
		Data: []uint64{1, 2, 3, 4}}
	var payload []byte
	var dec Response
	payload = AppendResponse(payload[:0], resp)
	if err := DecodeResponse(&dec, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		payload = AppendResponse(payload[:0], resp)
		if err := DecodeResponse(&dec, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("response encode+decode: %v allocs/op, want 0", allocs)
	}
}

func TestReadFrameZeroAlloc(t *testing.T) {
	frame := AppendFrame(nil, []byte("0123456789abcdef"))
	r := bytes.NewReader(frame)
	buf := make([]byte, 0, 512)
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		buf, err = ReadFrame(r, buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadFrame: %v allocs/op, want 0", allocs)
	}
}

func TestReadFrameShrinksOversizedBuffer(t *testing.T) {
	// A jumbo frame grows the buffer past FrameBufCap; the next small
	// frame must release the oversized backing array instead of pinning
	// MaxFrame-scale memory for the connection's lifetime.
	var stream bytes.Buffer
	big := make([]byte, 1<<20)
	if err := WriteFrame(&stream, big); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&stream, []byte("small")); err != nil {
		t.Fatal(err)
	}
	buf, err := ReadFrame(&stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cap(buf) < len(big) {
		t.Fatalf("jumbo frame buffer cap %d, want >= %d", cap(buf), len(big))
	}
	buf, err = ReadFrame(&stream, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "small" {
		t.Fatalf("payload after shrink = %q, want %q", buf, "small")
	}
	if cap(buf) > FrameBufCap {
		t.Fatalf("buffer cap %d still oversized after small frame, want <= %d", cap(buf), FrameBufCap)
	}
}
