package client_test

import (
	"context"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/server"
	"mwllsc/internal/shard"
	"mwllsc/internal/wire"
)

// startServer spins an in-process server on a loopback port and returns
// its address; cleanup closes it.
func startServer(t *testing.T, k, n, w int, opts ...server.Option) (*server.Server, string) {
	t.Helper()
	m, err := shard.NewMap(k, n, w)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(m, opts...)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func dial(t *testing.T, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingReadAddSet(t *testing.T) {
	_, addr := startServer(t, 4, 4, 2)
	c := dial(t, addr)
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("fresh value = %v, want zeros", v)
	}
	if v, err = c.Add(ctx, 7, []uint64{5, 9}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 5 || v[1] != 9 {
		t.Fatalf("after add: %v, want [5 9]", v)
	}
	if v, err = c.Set(ctx, 7, []uint64{100, 200}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 100 || v[1] != 200 {
		t.Fatalf("after set: %v, want [100 200]", v)
	}
	if v, err = c.Read(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if v[0] != 100 || v[1] != 200 {
		t.Fatalf("read back: %v, want [100 200]", v)
	}
}

func TestSnapshotAndMulti(t *testing.T) {
	srv, addr := startServer(t, 8, 4, 1)
	c := dial(t, addr)
	ctx := context.Background()
	m := srv.Map()

	// Pin one key per shard so the expected snapshot is deterministic.
	keys := make([]uint64, m.Shards())
	deltas := make([][]uint64, m.Shards())
	for i := range keys {
		keys[i] = m.KeyForShard(i)
		deltas[i] = []uint64{uint64(i + 1)}
	}
	vals, err := c.AddMulti(ctx, keys, deltas)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v[0] != uint64(i+1) {
			t.Fatalf("multi row %d = %v, want %d", i, v, i+1)
		}
	}
	for _, snap := range []func(context.Context) ([][]uint64, error){c.Snapshot, c.SnapshotAtomic} {
		rows, err := snap(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != m.Shards() {
			t.Fatalf("%d snapshot rows, want %d", len(rows), m.Shards())
		}
		for i := range rows {
			if rows[i][0] != uint64(i+1) {
				t.Fatalf("snapshot shard %d = %v, want %d", i, rows[i], i+1)
			}
		}
	}
}

func TestStats(t *testing.T) {
	_, addr := startServer(t, 4, 3, 2)
	c := dial(t, addr)
	ctx := context.Background()
	if _, err := c.Add(ctx, 1, []uint64{1, 0}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.Slots != 3 || st.Words != 2 {
		t.Fatalf("geometry %+v, want 4/3/2", st)
	}
	if st.Updates != 1 || st.Reqs < 2 || st.ConnsTotal != 1 {
		t.Fatalf("counters %+v", st)
	}
}

func TestServerRejectsWrongWidth(t *testing.T) {
	_, addr := startServer(t, 2, 2, 3)
	c := dial(t, addr)
	ctx := context.Background()
	if _, err := c.Add(ctx, 1, []uint64{1}); err == nil {
		t.Fatal("wrong-width add accepted")
	}
	// The connection survives a rejected request.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after rejected request: %v", err)
	}
	if _, err := c.AddMulti(ctx, []uint64{1, 2}, [][]uint64{{1}, {2}}); err == nil {
		t.Fatal("wrong-width multi accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	_, addr := startServer(t, 2, 2, 1)
	c := dial(t, addr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Read(ctx, 1); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A canceled call must not wedge the connection for later calls.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestContextDeadline(t *testing.T) {
	// A server that accepts but never answers: the raw listener.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	c, err := client.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Ping(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestClientClose(t *testing.T) {
	_, addr := startServer(t, 2, 2, 1)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(context.Background()); err != client.ErrClosed {
		t.Fatalf("err after close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestServerCloseFailsInFlight(t *testing.T) {
	srv, addr := startServer(t, 2, 2, 1)
	c := dial(t, addr)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The dead connection surfaces as an error (possibly after a few
	// calls, depending on shutdown interleaving), never a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var lastErr error
	for i := 0; i < 100; i++ {
		if lastErr = c.Ping(ctx); lastErr != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if lastErr == nil {
		t.Fatal("pings kept succeeding after server close")
	}
}

func TestConcurrentPipelinedLoad(t *testing.T) {
	srv, addr := startServer(t, 8, 4, 1)
	c := dial(t, addr, client.WithConns(2))
	ctx := context.Background()

	const (
		workers = 16
		perW    = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := shard.HashUint64(uint64(g*perW + i))
				if _, err := c.Add(ctx, key, []uint64{1}); err != nil {
					t.Errorf("worker %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	rows, err := c.SnapshotAtomic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, r := range rows {
		total += r[0]
	}
	if total != workers*perW {
		t.Fatalf("sum over shards = %d, want %d", total, workers*perW)
	}
	st := srv.Stats()
	if st.Batches == 0 || st.Updates != workers*perW {
		t.Fatalf("server stats %+v", st)
	}
	// Pipelining must actually have batched: strictly fewer handle
	// acquisitions than operations.
	if st.Batches >= st.Reqs {
		t.Logf("note: no batching observed (batches=%d reqs=%d)", st.Batches, st.Reqs)
	}
}

func TestAllConnsBrokenSurfaceError(t *testing.T) {
	srv, addr := startServer(t, 2, 2, 1)
	c := dial(t, addr, client.WithConns(2))
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i := 0; i < 200; i++ {
		if err := c.Ping(ctx); err != nil && err != context.DeadlineExceeded {
			return // broken-connection error surfaced
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("broken pool never surfaced an error")
}

// TestRawMalformedFrame drives the server with a hand-built bad frame
// and checks the error response comes back well-formed.
func TestRawMalformedFrame(t *testing.T) {
	_, addr := startServer(t, 2, 2, 1)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Opcode 0xee does not exist.
	payload := make([]byte, 9)
	payload[8] = 0xee
	if err := wire.WriteFrame(nc, payload); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	frame, err := wire.ReadFrame(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.DecodeResponse(&resp, frame); err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("status %v, want bad-request", resp.Status)
	}
}

// fakeServer accepts one connection and hands each decoded request to
// respond, which writes whatever frames it wants back on the socket.
func fakeServer(t *testing.T, respond func(nc net.Conn, req *wire.Request)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		var frame []byte
		var req wire.Request
		for {
			frame, err = wire.ReadFrame(nc, frame)
			if err != nil {
				return
			}
			if err := wire.DecodeRequest(&req, frame); err != nil {
				return
			}
			respond(nc, &req)
		}
	}()
	return ln.Addr().String()
}

// TestUnmatchedResponsesDropped pins the reader's drop path: responses
// whose id matches no pending caller (a canceled request's late answer,
// or a server-pushed id-0 error) are consumed without disturbing the
// stream, and later matched responses still complete their callers.
func TestUnmatchedResponsesDropped(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn, req *wire.Request) {
		// A well-formed response nobody is waiting for, then the real one.
		stray := wire.AppendResponse(nil, &wire.Response{ID: req.ID + 1<<40, Status: wire.StatusOK})
		real := wire.AppendResponse(nil, &wire.Response{ID: req.ID, Status: wire.StatusOK})
		wire.WriteFrame(nc, stray)
		wire.WriteFrame(nc, real)
	})
	c := dial(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if err := c.Ping(ctx); err != nil {
			t.Fatalf("ping %d after stray responses: %v", i, err)
		}
	}
}

// TestDecodeErrorCompletesPending pins the reader's failure path when
// the malformed frame carries a real caller's id: that caller must be
// completed with the decode error, not stranded until its deadline,
// even though the reader has already removed it from the pending map.
func TestDecodeErrorCompletesPending(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn, req *wire.Request) {
		// Correct id, StatusOK, but a truncated body (no attempts/rows/
		// words header) — DecodeResponse must reject it.
		payload := make([]byte, 9)
		binary.LittleEndian.PutUint64(payload, req.ID)
		payload[8] = byte(wire.StatusOK)
		wire.WriteFrame(nc, payload)
	})
	c := dial(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := c.Ping(ctx)
	if err == nil {
		t.Fatal("ping succeeded on a malformed response")
	}
	if ctx.Err() != nil {
		t.Fatalf("caller hung until deadline instead of completing with the decode error (%v)", err)
	}
}
