package client_test

import (
	"context"
	"testing"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/server"
	"mwllsc/internal/trace"
)

func TestWithTraceFillsClientAndServerStages(t *testing.T) {
	tr := trace.New(trace.Config{Recent: 16, SlowN: 4})
	_, addr := startServer(t, 4, 3, 2, server.WithTracer(tr))
	c := dial(t, addr)

	var ct client.Trace
	got, err := c.Add(client.WithTrace(context.Background(), &ct), 7, []uint64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("traced add returned %v", got)
	}
	if ct.ID == 0 {
		t.Fatal("client did not generate a trace id")
	}
	if ct.Total <= 0 || ct.RoundTrip <= 0 {
		t.Fatalf("client stages not stamped: %+v", ct)
	}
	if ct.QueueWait < 0 || ct.QueueWait+ct.RoundTrip > ct.Total+time.Millisecond {
		t.Fatalf("client stage decomposition inconsistent: %+v", ct)
	}
	if len(ct.ServerStages) != trace.WireStages {
		t.Fatalf("server echoed %d stages, want %d", len(ct.ServerStages), trace.WireStages)
	}

	// The server retired the span under the client's id.
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, s := range tr.Recent(nil, 0) {
			if s.TraceID == ct.ID {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %x never reached the server's recent ring", ct.ID)
		}
		time.Sleep(time.Millisecond)
	}

	// A caller-chosen id rides through unchanged.
	ct2 := client.Trace{ID: 0xc0ffee}
	if _, err := c.Read(client.WithTrace(context.Background(), &ct2), 7); err != nil {
		t.Fatal(err)
	}
	if ct2.ID != 0xc0ffee {
		t.Fatalf("caller trace id rewritten to %x", ct2.ID)
	}

	// Untraced calls on the same client leave no new span behind. Wait
	// for the two traced spans to retire first (retirement trails the
	// client's read of the response), then hold the count steady.
	deadline = time.Now().Add(5 * time.Second)
	for tr.Stats().Retired < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("retired %d spans, want 2", tr.Stats().Retired)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Read(context.Background(), 7); err != nil {
			t.Fatal(err)
		}
	}
	// One more traced call fences the pipeline: by the time its span
	// retires, any span the untraced reads had wrongly produced would
	// have retired too.
	var ct3 client.Trace
	if _, err := c.Read(client.WithTrace(context.Background(), &ct3), 7); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for tr.Stats().Retired < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("retired %d spans, want 3", tr.Stats().Retired)
		}
		time.Sleep(time.Millisecond)
	}
	if got := tr.Stats().Retired; got != 3 {
		t.Fatalf("untraced reads produced spans: retired = %d, want 3", got)
	}
}

func TestWithTraceAgainstTracerlessServer(t *testing.T) {
	// A traced call against a server with no tracer attached still
	// succeeds; the request's suffix decodes fine, the server just has
	// nowhere to record it, so no breakdown comes back.
	_, addr := startServer(t, 4, 3, 2)
	c := dial(t, addr)
	var ct client.Trace
	if _, err := c.Add(client.WithTrace(context.Background(), &ct), 1, []uint64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if len(ct.ServerStages) != 0 {
		t.Fatalf("tracerless server echoed stages: %+v", ct)
	}
	if ct.Total <= 0 {
		t.Fatalf("client stages not stamped: %+v", ct)
	}
}
