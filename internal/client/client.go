// Package client is the Go client for the llscd serving layer: a
// connection pool speaking the wire protocol (internal/wire) with
// request pipelining, automatic write coalescing, and failure
// resilience (reconnect with capped exponential backoff, per-op
// deadline defaults, and a status-aware retry policy).
//
// Every call is safe for concurrent use. Calls are spread round-robin
// over the pool's connections; on each connection a writer goroutine
// drains a send queue and flushes only when the queue runs empty, so
// concurrent callers' requests coalesce into few syscalls and pipeline
// through the server's batch executor without any explicit batch API.
// A reader goroutine matches responses — which the server may reorder —
// back to callers by request id. Contexts are honored: a canceled call
// abandons its slot (the response, when it arrives, is dropped).
//
// # Failure semantics
//
// A connection that dies is redialed in the background with capped
// exponential backoff and jitter; callers never see a permanently
// broken pool unless the server stays unreachable. The retry policy is
// deliberately asymmetric about what a lost connection means:
//
//   - Idempotent ops (Ping, Read, Snapshot, SnapshotAtomic, Stats)
//     retry on any connection failure — re-executing them is harmless.
//   - Updates (Add/Set/AddMulti/SetMulti) are declarative but not
//     idempotent (Add applied twice double-counts), so they are NOT
//     retried when a connection dies with the request in flight — the
//     server may or may not have executed it. They surface an error
//     wrapping ErrConnBroken and the caller decides.
//   - Updates ARE retried when nothing was ever sent (the whole pool is
//     down between attempts) and on an explicit retryable status:
//     StatusBusy is the server's promise that it rejected the request
//     before executing any of it.
//   - StatusUnavailable (disk-sick read-only degraded mode) is not
//     retried: the condition is sticky until an operator intervenes.
//
// Context cancellation and deadlines are never retried and surface
// exactly as context.Canceled / context.DeadlineExceeded.
//
// The remote operations carry the same consistency contract as the
// in-process shard.Map they reach: per-key Update/Read linearizable per
// shard, UpdateMulti a cross-shard atomic commit, Snapshot per-shard
// atomic, SnapshotAtomic cross-shard linearizable.
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/wire"
)

// Option configures Dial.
type Option func(*config)

type config struct {
	conns       int
	dialTimeout time.Duration
	queue       int
	opTimeout   time.Duration
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration
}

// WithConns sets the pool size (default 1). More connections raise the
// server-side parallelism ceiling: each in-flight batch occupies one
// registry slot, and batches from different connections execute
// concurrently.
func WithConns(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.conns = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s), initial
// and background redial alike.
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithSendQueue sets the per-connection send queue depth (default 256)
// — the pipelining window per connection.
func WithSendQueue(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.queue = n
		}
	}
}

// WithOpTimeout gives every call without its own context deadline a
// default deadline of d. Zero (the default) leaves calls unbounded —
// existing callers keep their exact context semantics.
func WithOpTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.opTimeout = d
		}
	}
}

// WithRetries sets how many times a failed call is retried beyond its
// first attempt (default 3), within its retry policy — see the package
// comment. 0 disables retries entirely.
func WithRetries(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.maxRetries = n
		}
	}
}

// WithBackoff sets the retry/reconnect backoff band: base is the first
// delay, max the cap of the exponential growth (defaults 2ms, 250ms).
// Each sleep is jittered over [d/2, d] to break retry synchronization
// across clients.
func WithBackoff(base, max time.Duration) Option {
	return func(c *config) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// ErrConnBroken wraps every error caused by a connection dying. For an
// update it marks the ambiguous outcome — the server may or may not
// have executed the request — which is exactly why updates are not
// retried on it.
var ErrConnBroken = errors.New("client: connection broken")

// ErrRetriesExhausted wraps the final error of a call that failed after
// its full retry budget.
var ErrRetriesExhausted = errors.New("client: retries exhausted")

// ErrBusy wraps a StatusBusy response: the server's admission control
// rejected the request before executing it. Safe to retry for every op
// (and retried automatically, with backoff).
var ErrBusy = errors.New("client: server busy")

// ErrUnavailable wraps a StatusUnavailable response: the server is in
// disk-sick read-only degraded mode and rejected the update without
// executing it. Not retried — the condition is sticky.
var ErrUnavailable = errors.New("client: server unavailable (degraded)")

// errNotSent marks a failure that happened before the request was ever
// enqueued, so retrying cannot double-execute anything.
var errNotSent = errors.New("request not sent")

// Trace is one traced call's client-side record. Pass it to a call via
// WithTrace; when the call returns, the client has filled in the
// client-side stage durations and any server-side breakdown the
// response carried. A Trace must not be shared across concurrent calls.
type Trace struct {
	// ID is the trace id the request carries on the wire. Zero asks the
	// client to generate one (filled in before the request is sent).
	ID uint64
	// QueueWait is the send-queue wait: from the call enqueueing its
	// encoded request to the writer goroutine picking it up.
	QueueWait time.Duration
	// RoundTrip covers the wire and the server: from the writer picking
	// the request up to the response being decoded.
	RoundTrip time.Duration
	// Total is the call's full client-side duration (QueueWait +
	// RoundTrip, measured independently).
	Total time.Duration
	// ServerStages holds the server's echoed per-stage durations in
	// nanoseconds, in internal/trace stage order (decode, queue,
	// acquire, execute, persist, fsync). Empty when the server did not
	// echo a breakdown (old server, or its span free list ran dry).
	ServerStages []uint64
}

// traceKey carries a *Trace through a context.
type traceKey struct{}

// WithTrace returns a context that traces the one call made with it:
// the request is flagged on the wire (the server traces it under
// t.ID and echoes its stage breakdown) and t is filled in when the
// call completes. The caller owns t; reuse it only sequentially.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// traceSeed feeds generated trace ids (splitmix64 over a shared
// counter: unique process-wide, no coordination with the server).
var traceSeed atomic.Uint64

func nextTraceID() uint64 {
	z := traceSeed.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Client is a pooled, self-healing connection to one llscd server.
type Client struct {
	addr   string
	cfg    config
	slots  []*slot
	next   atomic.Uint64
	closed atomic.Bool
	closeC chan struct{} // closed by Close; wakes backoff sleeps
	wg     sync.WaitGroup

	retries    atomic.Uint64 // attempts beyond the first, all calls
	reconnects atomic.Uint64 // successful background redials
}

// slot is one pool position: it holds the current connection and
// redials in the background when that connection breaks, so the pool
// heals without any caller waiting on a dial.
type slot struct {
	c         *Client
	mu        sync.Mutex
	cn        *conn // nil while down
	redialing bool
}

// Dial connects the pool to addr. Initial connections are dialed
// synchronously — a dead target fails Dial instead of queueing calls.
func Dial(addr string, opts ...Option) (*Client, error) {
	cfg := config{
		conns: 1, dialTimeout: 5 * time.Second, queue: 256,
		maxRetries: 3, backoffBase: 2 * time.Millisecond, backoffMax: 250 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Client{addr: addr, cfg: cfg, closeC: make(chan struct{})}
	for i := 0; i < cfg.conns; i++ {
		cn, err := c.dialConn()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
		}
		c.slots = append(c.slots, &slot{c: c, cn: cn})
	}
	return c, nil
}

func (c *Client) dialConn() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.cfg.dialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency over bandwidth; coalescing happens in the writer
	}
	return newConn(nc, c.cfg.queue), nil
}

// Close tears down every connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.closeC)
	for _, sl := range c.slots {
		sl.mu.Lock()
		cn := sl.cn
		sl.mu.Unlock()
		if cn != nil {
			cn.close(ErrClosed)
		}
	}
	c.wg.Wait() // redial goroutines exit via closeC
	return nil
}

// Reconnects returns how many background redials have succeeded.
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

// Retries returns how many call attempts beyond the first have been
// made (transport retries and busy retries together).
func (c *Client) Retries() uint64 { return c.retries.Load() }

// pick returns the next healthy connection round-robin, kicking a
// background redial for every broken slot it passes over.
func (c *Client) pick() (*conn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	n := len(c.slots)
	// Reduce in uint64 before narrowing: int(counter) goes negative on
	// 32-bit platforms once the counter passes 2^31.
	start := int((c.next.Add(1) - 1) % uint64(n))
	var lastErr error
	for i := 0; i < n; i++ {
		sl := c.slots[(start+i)%n]
		sl.mu.Lock()
		cn := sl.cn
		sl.mu.Unlock()
		if cn != nil {
			if err := cn.err(); err == nil {
				return cn, nil
			} else {
				lastErr = err
			}
		}
		sl.ensureRedial()
	}
	if lastErr != nil && errors.Is(lastErr, ErrConnBroken) {
		return nil, fmt.Errorf("client: all %d connections down: %w", n, lastErr)
	}
	return nil, fmt.Errorf("client: all %d connections down (reconnecting): %w", n, ErrConnBroken)
}

// ensureRedial retires a broken connection from the slot and starts the
// background redial loop, at most one per slot.
func (sl *slot) ensureRedial() {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.redialing || sl.c.closed.Load() {
		return
	}
	if sl.cn != nil && sl.cn.err() == nil {
		return // healed by a racing pick
	}
	sl.cn = nil
	sl.redialing = true
	sl.c.wg.Add(1)
	go sl.redial()
}

// redial dials until it succeeds or the client closes, sleeping a
// capped, jittered exponential backoff between attempts.
func (sl *slot) redial() {
	c := sl.c
	defer c.wg.Done()
	d := c.cfg.backoffBase
	for {
		if c.closed.Load() {
			sl.mu.Lock()
			sl.redialing = false
			sl.mu.Unlock()
			return
		}
		cn, err := c.dialConn()
		if err == nil {
			sl.mu.Lock()
			if c.closed.Load() {
				sl.redialing = false
				sl.mu.Unlock()
				cn.close(ErrClosed)
				return
			}
			sl.cn = cn
			sl.redialing = false
			sl.mu.Unlock()
			c.reconnects.Add(1)
			return
		}
		t := time.NewTimer(jitter(d))
		select {
		case <-t.C:
		case <-c.closeC:
			t.Stop()
			sl.mu.Lock()
			sl.redialing = false
			sl.mu.Unlock()
			return
		}
		if d < c.cfg.backoffMax {
			d *= 2
			if d > c.cfg.backoffMax {
				d = c.cfg.backoffMax
			}
		}
	}
}

// jitter spreads d over [d/2, d] so a fleet of clients does not retry
// in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Millisecond
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// opCtx applies the configured default op deadline when the caller's
// context has none.
func (c *Client) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.cfg.opTimeout <= 0 {
		return ctx, nil
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, nil
	}
	return context.WithTimeout(ctx, c.cfg.opTimeout)
}

// do runs req through the retry policy: pick a connection, send, map
// the response status, classify any failure, back off, repeat. idem
// marks ops safe to re-execute; see the package comment for the exact
// policy.
func (c *Client) do(ctx context.Context, req *wire.Request, idem bool) (*wire.Response, error) {
	ctx, cancel := c.opCtx(ctx)
	if cancel != nil {
		defer cancel()
	}
	for attempt := 0; ; attempt++ {
		cn, err := c.pick()
		sent := false
		if err == nil {
			sent = true
			var resp *wire.Response
			resp, err = cn.do(ctx, req)
			if err == nil {
				err = statusErr(resp)
			}
			if err == nil {
				return resp, nil
			}
		}
		if !retryable(err, idem, sent) {
			return nil, err
		}
		if attempt >= c.cfg.maxRetries {
			return nil, fmt.Errorf("%w (%d attempts): %w", ErrRetriesExhausted, attempt+1, err)
		}
		c.retries.Add(1)
		d := c.cfg.backoffBase << attempt
		if d <= 0 || d > c.cfg.backoffMax {
			d = c.cfg.backoffMax
		}
		t := time.NewTimer(jitter(d))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-c.closeC:
			t.Stop()
			return nil, ErrClosed
		}
	}
}

// retryable classifies one attempt's failure. sent reports whether the
// request reached a connection at all — when it never did, even a
// non-idempotent update is safe to retry.
func retryable(err error, idem, sent bool) bool {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false // the caller's clock ran out; retrying steals time it no longer has
	case errors.Is(err, ErrClosed):
		return false
	case errors.Is(err, ErrBusy):
		return true // explicit pre-execution rejection: safe for every op
	case errors.Is(err, ErrUnavailable):
		return false // sticky degraded mode; retrying hammers a sick server
	case errors.Is(err, errNotSent):
		return true // the connection was already dead before we queued
	case errors.Is(err, ErrConnBroken):
		return idem || !sent
	}
	return false
}

// statusErr maps a non-OK response status to an error.
func statusErr(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusShutdown:
		return fmt.Errorf("client: server shutting down: %s", resp.Err)
	case wire.StatusBusy:
		return fmt.Errorf("%w: %s", ErrBusy, resp.Err)
	case wire.StatusUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, resp.Err)
	default:
		return fmt.Errorf("client: %v: %s", resp.Status, resp.Err)
	}
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpPing}, true)
	return err
}

// Read returns the current W-word value of the shard owning key.
func (c *Client) Read(ctx context.Context, key uint64) ([]uint64, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpRead, Key: key}, true)
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Add atomically adds deltas (word by word, wrapping; len = the map's W)
// to the value owning key and returns the resulting value — the
// multiword fetch-and-add.
func (c *Client) Add(ctx context.Context, key uint64, deltas []uint64) ([]uint64, error) {
	return c.update(ctx, wire.ModeAdd, key, deltas)
}

// Set atomically overwrites the value owning key and returns the stored
// value.
func (c *Client) Set(ctx context.Context, key uint64, vals []uint64) ([]uint64, error) {
	return c.update(ctx, wire.ModeSet, key, vals)
}

func (c *Client) update(ctx context.Context, mode wire.Mode, key uint64, args []uint64) ([]uint64, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpUpdate, Mode: mode, Key: key, Args: args}, false)
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// AddMulti atomically adds deltas[i] to the value of keys[i] for all i
// in one cross-shard transaction (len(deltas) = len(keys), each W
// words), returning the resulting values. Keys in the same shard alias
// the same stored value, exactly as in-process.
func (c *Client) AddMulti(ctx context.Context, keys []uint64, deltas [][]uint64) ([][]uint64, error) {
	return c.updateMulti(ctx, wire.ModeAdd, keys, deltas)
}

// SetMulti atomically overwrites the values of keys in one cross-shard
// transaction, returning the stored values.
func (c *Client) SetMulti(ctx context.Context, keys []uint64, vals [][]uint64) ([][]uint64, error) {
	return c.updateMulti(ctx, wire.ModeSet, keys, vals)
}

func (c *Client) updateMulti(ctx context.Context, mode wire.Mode, keys []uint64, args [][]uint64) ([][]uint64, error) {
	if len(args) != len(keys) {
		return nil, fmt.Errorf("client: %d keys but %d arg rows", len(keys), len(args))
	}
	flat := make([]uint64, 0, len(keys)*wordsOf(args))
	for _, row := range args {
		flat = append(flat, row...)
	}
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpUpdateMulti, Mode: mode, Keys: keys, Args: flat}, false)
	if err != nil {
		return nil, err
	}
	return rows(resp), nil
}

// Snapshot returns every shard's value (K rows of W words), each row
// individually atomic (rows may stem from different instants; see
// SnapshotAtomic for one consistent cut).
func (c *Client) Snapshot(ctx context.Context) ([][]uint64, error) {
	return c.snapshot(ctx, wire.OpSnapshot)
}

// SnapshotAtomic returns every shard's value from one instant — the
// cross-shard linearizable snapshot.
func (c *Client) SnapshotAtomic(ctx context.Context) ([][]uint64, error) {
	return c.snapshot(ctx, wire.OpSnapshotAtomic)
}

func (c *Client) snapshot(ctx context.Context, op wire.Op) ([][]uint64, error) {
	resp, err := c.do(ctx, &wire.Request{Op: op}, true)
	if err != nil {
		return nil, err
	}
	return rows(resp), nil
}

// Stats returns the server's counter snapshot.
func (c *Client) Stats(ctx context.Context) (wire.ServerStats, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpStats}, true)
	if err != nil {
		return wire.ServerStats{}, err
	}
	return wire.DecodeStats(resp.Data)
}

// rows reshapes a response's flat data into its Rows×Words grid.
func rows(resp *wire.Response) [][]uint64 {
	w := int(resp.Words)
	out := make([][]uint64, resp.Rows)
	for i := range out {
		out[i] = resp.Data[i*w : (i+1)*w]
	}
	return out
}

func wordsOf(rows [][]uint64) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}

// pending is one in-flight request's completion slot. sentNS is the
// wall-clock instant the writer goroutine dequeued the request, stored
// atomically because no other happens-before edge links the writer to
// the caller that reads it after completion.
type pending struct {
	done   chan struct{}
	resp   wire.Response
	err    error
	sentNS atomic.Int64
}

// sendReq is one queued request: its encoded payload, plus its pending
// slot when the call is traced (nil otherwise) so the writer can stamp
// the send-queue wait.
type sendReq struct {
	payload []byte
	traced  *pending
}

// conn is one pooled connection: a send queue drained by a writer
// goroutine (coalescing frames) and a reader goroutine completing
// pendings by id.
type conn struct {
	nc     net.Conn
	send   chan sendReq  // encoded requests awaiting the writer
	dead   chan struct{} // closed when the conn fails or is closed
	close1 sync.Once

	mu     sync.Mutex
	pend   map[uint64]*pending
	nextID uint64
	broken error
}

func newConn(nc net.Conn, queue int) *conn {
	cn := &conn{
		nc:   nc,
		send: make(chan sendReq, queue),
		dead: make(chan struct{}),
		pend: make(map[uint64]*pending),
	}
	go cn.writeLoop()
	go cn.readLoop()
	return cn
}

func (cn *conn) err() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.broken
}

// close fails the connection: every pending and queued request
// completes with err, and the socket is torn down.
func (cn *conn) close(err error) {
	cn.close1.Do(func() {
		cn.mu.Lock()
		cn.broken = err
		pend := cn.pend
		cn.pend = map[uint64]*pending{}
		cn.mu.Unlock()
		close(cn.dead)
		cn.nc.Close()
		for _, p := range pend {
			p.err = err
			close(p.done)
		}
	})
}

// do registers a pending slot, enqueues the encoded request, and waits.
func (cn *conn) do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	p := &pending{done: make(chan struct{})}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	if tr != nil {
		if tr.ID == 0 {
			tr.ID = nextTraceID()
		}
		req.Traced, req.TraceID = true, tr.ID
	}

	cn.mu.Lock()
	if cn.broken != nil {
		err := cn.broken
		cn.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", errNotSent, err)
	}
	cn.nextID++
	id := cn.nextID
	cn.pend[id] = p
	cn.mu.Unlock()

	req.ID = id
	sr := sendReq{payload: wire.AppendRequest(nil, req)}
	var tEnq time.Time
	if tr != nil {
		sr.traced = p
		tEnq = time.Now()
	}
	select {
	case cn.send <- sr:
	case <-ctx.Done():
		cn.forget(id)
		return nil, ctx.Err()
	case <-p.done:
		return nil, p.err // connection failed while we queued
	}

	select {
	case <-p.done:
		if p.err != nil {
			return nil, p.err
		}
		if tr != nil {
			end := time.Now()
			tr.Total = end.Sub(tEnq)
			if ns := p.sentNS.Load(); ns != 0 {
				sent := time.Unix(0, ns)
				tr.QueueWait = sent.Sub(tEnq)
				tr.RoundTrip = end.Sub(sent)
			}
			tr.ServerStages = tr.ServerStages[:0]
			if p.resp.Traced {
				tr.ServerStages = append(tr.ServerStages, p.resp.Stages...)
			}
		}
		return &p.resp, nil
	case <-ctx.Done():
		cn.forget(id)
		return nil, ctx.Err()
	}
}

// forget abandons a pending slot (context cancellation); a late
// response for the id is dropped by the reader.
func (cn *conn) forget(id uint64) {
	cn.mu.Lock()
	delete(cn.pend, id)
	cn.mu.Unlock()
}

// writeLoop drains the send queue, coalescing every already-queued
// request into one buffer before handing it to the kernel.
func (cn *conn) writeLoop() {
	bw := bufio.NewWriterSize(cn.nc, 64<<10)
	for {
		var sr sendReq
		select {
		case sr = <-cn.send:
		case <-cn.dead:
			return
		}
		if sr.traced != nil {
			sr.traced.sentNS.Store(time.Now().UnixNano())
		}
		if err := wire.WriteFrame(bw, sr.payload); err != nil {
			cn.close(fmt.Errorf("%w: write: %w", ErrConnBroken, err))
			return
		}
		// Coalesce: keep encoding while more requests are queued; flush
		// only when the queue runs empty.
		for {
			select {
			case next := <-cn.send:
				if next.traced != nil {
					next.traced.sentNS.Store(time.Now().UnixNano())
				}
				if err := wire.WriteFrame(bw, next.payload); err != nil {
					cn.close(fmt.Errorf("%w: write: %w", ErrConnBroken, err))
					return
				}
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			cn.close(fmt.Errorf("%w: flush: %w", ErrConnBroken, err))
			return
		}
	}
}

// readLoop decodes response frames and completes pendings by id.
//
// The response id is the frame's first 8 words of payload, so the loop
// matches the pending first and decodes straight into the caller's
// slot: the waiting caller's Response — not a loop-local temporary —
// owns the decoded Data. Frames nobody is waiting for (canceled
// callers, the server's id-0 error frame) decode into a per-connection
// scratch Response whose Data backing array is reused, so a stream of
// abandoned responses costs no per-frame allocation.
//
// Transport failures wrap ErrConnBroken (the retry policy's ambiguous
// case); protocol corruption — a malformed or undecodable frame — does
// not, so it surfaces to the caller immediately instead of being
// retried against a server that is speaking garbage.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	var frame []byte
	var scratch wire.Response
	for {
		var err error
		frame, err = wire.ReadFrame(br, frame)
		if err != nil {
			cn.close(fmt.Errorf("%w: read: %w", ErrConnBroken, err))
			return
		}
		if len(frame) < 8 {
			cn.close(fmt.Errorf("client: response frame %d bytes, need >= 8", len(frame)))
			return
		}
		cn.mu.Lock()
		id := binary.LittleEndian.Uint64(frame)
		p := cn.pend[id]
		delete(cn.pend, id)
		cn.mu.Unlock()
		if p == nil {
			// Still decode, so a malformed frame kills the connection
			// instead of silently desynchronizing it.
			if err := wire.DecodeResponse(&scratch, frame); err != nil {
				cn.close(err)
				return
			}
			continue
		}
		if err := wire.DecodeResponse(&p.resp, frame); err != nil {
			// p left the map above, so close() can no longer reach it:
			// complete it by hand before failing the connection.
			p.err = err
			close(p.done)
			cn.close(err)
			return
		}
		close(p.done)
	}
}
