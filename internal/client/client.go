// Package client is the Go client for the llscd serving layer: a
// connection pool speaking the wire protocol (internal/wire) with
// request pipelining and automatic write coalescing.
//
// Every call is safe for concurrent use. Calls are spread round-robin
// over the pool's connections; on each connection a writer goroutine
// drains a send queue and flushes only when the queue runs empty, so
// concurrent callers' requests coalesce into few syscalls and pipeline
// through the server's batch executor without any explicit batch API.
// A reader goroutine matches responses — which the server may reorder —
// back to callers by request id. Contexts are honored: a canceled call
// abandons its slot (the response, when it arrives, is dropped).
//
// The remote operations carry the same consistency contract as the
// in-process shard.Map they reach: per-key Update/Read linearizable per
// shard, UpdateMulti a cross-shard atomic commit, Snapshot per-shard
// atomic, SnapshotAtomic cross-shard linearizable.
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mwllsc/internal/wire"
)

// Option configures Dial.
type Option func(*config)

type config struct {
	conns       int
	dialTimeout time.Duration
	queue       int
}

// WithConns sets the pool size (default 1). More connections raise the
// server-side parallelism ceiling: each in-flight batch occupies one
// registry slot, and batches from different connections execute
// concurrently.
func WithConns(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.conns = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithSendQueue sets the per-connection send queue depth (default 256)
// — the pipelining window per connection.
func WithSendQueue(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.queue = n
		}
	}
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// Trace is one traced call's client-side record. Pass it to a call via
// WithTrace; when the call returns, the client has filled in the
// client-side stage durations and any server-side breakdown the
// response carried. A Trace must not be shared across concurrent calls.
type Trace struct {
	// ID is the trace id the request carries on the wire. Zero asks the
	// client to generate one (filled in before the request is sent).
	ID uint64
	// QueueWait is the send-queue wait: from the call enqueueing its
	// encoded request to the writer goroutine picking it up.
	QueueWait time.Duration
	// RoundTrip covers the wire and the server: from the writer picking
	// the request up to the response being decoded.
	RoundTrip time.Duration
	// Total is the call's full client-side duration (QueueWait +
	// RoundTrip, measured independently).
	Total time.Duration
	// ServerStages holds the server's echoed per-stage durations in
	// nanoseconds, in internal/trace stage order (decode, queue,
	// acquire, execute, persist, fsync). Empty when the server did not
	// echo a breakdown (old server, or its span free list ran dry).
	ServerStages []uint64
}

// traceKey carries a *Trace through a context.
type traceKey struct{}

// WithTrace returns a context that traces the one call made with it:
// the request is flagged on the wire (the server traces it under
// t.ID and echoes its stage breakdown) and t is filled in when the
// call completes. The caller owns t; reuse it only sequentially.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// traceSeed feeds generated trace ids (splitmix64 over a shared
// counter: unique process-wide, no coordination with the server).
var traceSeed atomic.Uint64

func nextTraceID() uint64 {
	z := traceSeed.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Client is a pooled connection to one llscd server.
type Client struct {
	conns  []*conn
	next   atomic.Uint64
	closed atomic.Bool
}

// Dial connects the pool to addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	cfg := config{conns: 1, dialTimeout: 5 * time.Second, queue: 256}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Client{}
	for i := 0; i < cfg.conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, cfg.dialTimeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true) // latency over bandwidth; coalescing happens in the writer
		}
		c.conns = append(c.conns, newConn(nc, cfg.queue))
	}
	return c, nil
}

// Close tears down every connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cn := range c.conns {
		cn.close(ErrClosed)
	}
	return nil
}

// pick returns the next connection round-robin, skipping broken ones.
func (c *Client) pick() (*conn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	n := len(c.conns)
	// Reduce in uint64 before narrowing: int(counter) goes negative on
	// 32-bit platforms once the counter passes 2^31.
	start := int((c.next.Add(1) - 1) % uint64(n))
	for i := 0; i < n; i++ {
		cn := c.conns[(start+i)%n]
		if cn.err() == nil {
			return cn, nil
		}
	}
	return nil, fmt.Errorf("client: all %d connections broken: %w", n, c.conns[start].err())
}

// do sends req on one connection and waits for its response or ctx.
func (c *Client) do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	cn, err := c.pick()
	if err != nil {
		return nil, err
	}
	return cn.do(ctx, req)
}

// ok maps a non-OK response status to an error.
func ok(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusShutdown:
		return fmt.Errorf("client: server shutting down: %s", resp.Err)
	default:
		return fmt.Errorf("client: %v: %s", resp.Status, resp.Err)
	}
}

// Ping round-trips an empty request.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	return ok(resp)
}

// Read returns the current W-word value of the shard owning key.
func (c *Client) Read(ctx context.Context, key uint64) ([]uint64, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpRead, Key: key})
	if err != nil {
		return nil, err
	}
	if err := ok(resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Add atomically adds deltas (word by word, wrapping; len = the map's W)
// to the value owning key and returns the resulting value — the
// multiword fetch-and-add.
func (c *Client) Add(ctx context.Context, key uint64, deltas []uint64) ([]uint64, error) {
	return c.update(ctx, wire.ModeAdd, key, deltas)
}

// Set atomically overwrites the value owning key and returns the stored
// value.
func (c *Client) Set(ctx context.Context, key uint64, vals []uint64) ([]uint64, error) {
	return c.update(ctx, wire.ModeSet, key, vals)
}

func (c *Client) update(ctx context.Context, mode wire.Mode, key uint64, args []uint64) ([]uint64, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpUpdate, Mode: mode, Key: key, Args: args})
	if err != nil {
		return nil, err
	}
	if err := ok(resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// AddMulti atomically adds deltas[i] to the value of keys[i] for all i
// in one cross-shard transaction (len(deltas) = len(keys), each W
// words), returning the resulting values. Keys in the same shard alias
// the same stored value, exactly as in-process.
func (c *Client) AddMulti(ctx context.Context, keys []uint64, deltas [][]uint64) ([][]uint64, error) {
	return c.updateMulti(ctx, wire.ModeAdd, keys, deltas)
}

// SetMulti atomically overwrites the values of keys in one cross-shard
// transaction, returning the stored values.
func (c *Client) SetMulti(ctx context.Context, keys []uint64, vals [][]uint64) ([][]uint64, error) {
	return c.updateMulti(ctx, wire.ModeSet, keys, vals)
}

func (c *Client) updateMulti(ctx context.Context, mode wire.Mode, keys []uint64, args [][]uint64) ([][]uint64, error) {
	if len(args) != len(keys) {
		return nil, fmt.Errorf("client: %d keys but %d arg rows", len(keys), len(args))
	}
	flat := make([]uint64, 0, len(keys)*wordsOf(args))
	for _, row := range args {
		flat = append(flat, row...)
	}
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpUpdateMulti, Mode: mode, Keys: keys, Args: flat})
	if err != nil {
		return nil, err
	}
	if err := ok(resp); err != nil {
		return nil, err
	}
	return rows(resp), nil
}

// Snapshot returns every shard's value (K rows of W words), each row
// individually atomic (rows may stem from different instants; see
// SnapshotAtomic for one consistent cut).
func (c *Client) Snapshot(ctx context.Context) ([][]uint64, error) {
	return c.snapshot(ctx, wire.OpSnapshot)
}

// SnapshotAtomic returns every shard's value from one instant — the
// cross-shard linearizable snapshot.
func (c *Client) SnapshotAtomic(ctx context.Context) ([][]uint64, error) {
	return c.snapshot(ctx, wire.OpSnapshotAtomic)
}

func (c *Client) snapshot(ctx context.Context, op wire.Op) ([][]uint64, error) {
	resp, err := c.do(ctx, &wire.Request{Op: op})
	if err != nil {
		return nil, err
	}
	if err := ok(resp); err != nil {
		return nil, err
	}
	return rows(resp), nil
}

// Stats returns the server's counter snapshot.
func (c *Client) Stats(ctx context.Context) (wire.ServerStats, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.ServerStats{}, err
	}
	if err := ok(resp); err != nil {
		return wire.ServerStats{}, err
	}
	return wire.DecodeStats(resp.Data)
}

// rows reshapes a response's flat data into its Rows×Words grid.
func rows(resp *wire.Response) [][]uint64 {
	w := int(resp.Words)
	out := make([][]uint64, resp.Rows)
	for i := range out {
		out[i] = resp.Data[i*w : (i+1)*w]
	}
	return out
}

func wordsOf(rows [][]uint64) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}

// pending is one in-flight request's completion slot. sentNS is the
// wall-clock instant the writer goroutine dequeued the request, stored
// atomically because no other happens-before edge links the writer to
// the caller that reads it after completion.
type pending struct {
	done   chan struct{}
	resp   wire.Response
	err    error
	sentNS atomic.Int64
}

// sendReq is one queued request: its encoded payload, plus its pending
// slot when the call is traced (nil otherwise) so the writer can stamp
// the send-queue wait.
type sendReq struct {
	payload []byte
	traced  *pending
}

// conn is one pooled connection: a send queue drained by a writer
// goroutine (coalescing frames) and a reader goroutine completing
// pendings by id.
type conn struct {
	nc     net.Conn
	send   chan sendReq  // encoded requests awaiting the writer
	dead   chan struct{} // closed when the conn fails or is closed
	close1 sync.Once

	mu     sync.Mutex
	pend   map[uint64]*pending
	nextID uint64
	broken error
}

func newConn(nc net.Conn, queue int) *conn {
	cn := &conn{
		nc:   nc,
		send: make(chan sendReq, queue),
		dead: make(chan struct{}),
		pend: make(map[uint64]*pending),
	}
	go cn.writeLoop()
	go cn.readLoop()
	return cn
}

func (cn *conn) err() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.broken
}

// close fails the connection: every pending and queued request
// completes with err, and the socket is torn down.
func (cn *conn) close(err error) {
	cn.close1.Do(func() {
		cn.mu.Lock()
		cn.broken = err
		pend := cn.pend
		cn.pend = map[uint64]*pending{}
		cn.mu.Unlock()
		close(cn.dead)
		cn.nc.Close()
		for _, p := range pend {
			p.err = err
			close(p.done)
		}
	})
}

// do registers a pending slot, enqueues the encoded request, and waits.
func (cn *conn) do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	p := &pending{done: make(chan struct{})}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	if tr != nil {
		if tr.ID == 0 {
			tr.ID = nextTraceID()
		}
		req.Traced, req.TraceID = true, tr.ID
	}

	cn.mu.Lock()
	if cn.broken != nil {
		err := cn.broken
		cn.mu.Unlock()
		return nil, err
	}
	cn.nextID++
	id := cn.nextID
	cn.pend[id] = p
	cn.mu.Unlock()

	req.ID = id
	sr := sendReq{payload: wire.AppendRequest(nil, req)}
	var tEnq time.Time
	if tr != nil {
		sr.traced = p
		tEnq = time.Now()
	}
	select {
	case cn.send <- sr:
	case <-ctx.Done():
		cn.forget(id)
		return nil, ctx.Err()
	case <-p.done:
		return nil, p.err // connection failed while we queued
	}

	select {
	case <-p.done:
		if p.err != nil {
			return nil, p.err
		}
		if tr != nil {
			end := time.Now()
			tr.Total = end.Sub(tEnq)
			if ns := p.sentNS.Load(); ns != 0 {
				sent := time.Unix(0, ns)
				tr.QueueWait = sent.Sub(tEnq)
				tr.RoundTrip = end.Sub(sent)
			}
			tr.ServerStages = tr.ServerStages[:0]
			if p.resp.Traced {
				tr.ServerStages = append(tr.ServerStages, p.resp.Stages...)
			}
		}
		return &p.resp, nil
	case <-ctx.Done():
		cn.forget(id)
		return nil, ctx.Err()
	}
}

// forget abandons a pending slot (context cancellation); a late
// response for the id is dropped by the reader.
func (cn *conn) forget(id uint64) {
	cn.mu.Lock()
	delete(cn.pend, id)
	cn.mu.Unlock()
}

// writeLoop drains the send queue, coalescing every already-queued
// request into one buffer before handing it to the kernel.
func (cn *conn) writeLoop() {
	bw := bufio.NewWriterSize(cn.nc, 64<<10)
	for {
		var sr sendReq
		select {
		case sr = <-cn.send:
		case <-cn.dead:
			return
		}
		if sr.traced != nil {
			sr.traced.sentNS.Store(time.Now().UnixNano())
		}
		if err := wire.WriteFrame(bw, sr.payload); err != nil {
			cn.close(fmt.Errorf("client: write: %w", err))
			return
		}
		// Coalesce: keep encoding while more requests are queued; flush
		// only when the queue runs empty.
		for {
			select {
			case next := <-cn.send:
				if next.traced != nil {
					next.traced.sentNS.Store(time.Now().UnixNano())
				}
				if err := wire.WriteFrame(bw, next.payload); err != nil {
					cn.close(fmt.Errorf("client: write: %w", err))
					return
				}
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			cn.close(fmt.Errorf("client: flush: %w", err))
			return
		}
	}
}

// readLoop decodes response frames and completes pendings by id.
//
// The response id is the frame's first 8 words of payload, so the loop
// matches the pending first and decodes straight into the caller's
// slot: the waiting caller's Response — not a loop-local temporary —
// owns the decoded Data. Frames nobody is waiting for (canceled
// callers, the server's id-0 error frame) decode into a per-connection
// scratch Response whose Data backing array is reused, so a stream of
// abandoned responses costs no per-frame allocation.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 64<<10)
	var frame []byte
	var scratch wire.Response
	for {
		var err error
		frame, err = wire.ReadFrame(br, frame)
		if err != nil {
			cn.close(fmt.Errorf("client: read: %w", err))
			return
		}
		if len(frame) < 8 {
			cn.close(fmt.Errorf("client: response frame %d bytes, need >= 8", len(frame)))
			return
		}
		cn.mu.Lock()
		id := binary.LittleEndian.Uint64(frame)
		p := cn.pend[id]
		delete(cn.pend, id)
		cn.mu.Unlock()
		if p == nil {
			// Still decode, so a malformed frame kills the connection
			// instead of silently desynchronizing it.
			if err := wire.DecodeResponse(&scratch, frame); err != nil {
				cn.close(err)
				return
			}
			continue
		}
		if err := wire.DecodeResponse(&p.resp, frame); err != nil {
			// p left the map above, so close() can no longer reach it:
			// complete it by hand before failing the connection.
			p.err = err
			close(p.done)
			cn.close(err)
			return
		}
		close(p.done)
	}
}
