package client_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/fault"
	"mwllsc/internal/wire"
)

// multiServer is fakeServer that keeps accepting connections, handing
// every decoded request (with its conn) to respond. It returns the
// address and a counter of accepted conns.
func multiServer(t *testing.T, respond func(nc net.Conn, req *wire.Request)) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepted atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func() {
				defer nc.Close()
				var frame []byte
				var req wire.Request
				for {
					var err error
					frame, err = wire.ReadFrame(nc, frame)
					if err != nil {
						return
					}
					if err := wire.DecodeRequest(&req, frame); err != nil {
						return
					}
					respond(nc, &req)
				}
			}()
		}
	}()
	return ln.Addr().String(), &accepted
}

func respondStatus(nc net.Conn, id uint64, st wire.Status, msg string) {
	payload := wire.AppendResponse(nil, &wire.Response{ID: id, Status: st, Err: msg})
	wire.WriteFrame(nc, payload)
}

// TestReconnectAfterDrop: the pool heals itself after every connection
// is killed mid-stream, without the caller doing anything but retry.
func TestReconnectAfterDrop(t *testing.T) {
	_, addr := startServer(t, 4, 4, 1)
	p, err := fault.NewProxy(addr, 1, fault.Faults{}, fault.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dial(t, p.Addr(), client.WithBackoff(time.Millisecond, 20*time.Millisecond), client.WithRetries(20))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	p.DropAll()
	// The very next pings ride the retry policy across the redial.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after drop: %v", err)
	}
	if c.Reconnects() == 0 {
		t.Fatal("pool healed without recording a reconnect")
	}
	if p.Accepted() < 2 {
		t.Fatalf("proxy accepted %d conns, want >= 2 (the redial)", p.Accepted())
	}
}

// TestCloseDuringRedialNoLeak: closing the client while its redial loop
// is spinning against a dead host must not leak the loop.
func TestCloseDuringRedialNoLeak(t *testing.T) {
	_, addr := startServer(t, 2, 2, 1)
	p, err := fault.NewProxy(addr, 2, fault.Faults{}, fault.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	baseline := runtime.NumGoroutine()
	c := dial(t, p.Addr(), client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	p.SetReject(true) // redials now fail forever
	p.DropAll()
	c.Ping(ctx) // kicks the redial loop; outcome irrelevant
	c.Close()   // must stop the redial loop promptly
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after Close during redial: %d > %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestUpdateNotRetriedOnConnDeath: a connection dying with an update in
// flight is ambiguous — the client must surface ErrConnBroken, not
// silently re-execute a non-idempotent Add.
func TestUpdateNotRetriedOnConnDeath(t *testing.T) {
	var updates atomic.Int64
	addr, _ := multiServer(t, func(nc net.Conn, req *wire.Request) {
		switch req.Op {
		case wire.OpUpdate:
			updates.Add(1)
			nc.Close() // die with the update in flight, no response
		default:
			respondStatus(nc, req.ID, wire.StatusOK, "")
		}
	})
	c := dial(t, addr, client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.Add(ctx, 1, []uint64{1})
	if err == nil {
		t.Fatal("Add succeeded with no response")
	}
	if !errors.Is(err, client.ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	if got := updates.Load(); got != 1 {
		t.Fatalf("server saw %d update attempts, want exactly 1 (no blind retry)", got)
	}
}

// TestReadRetriedOnConnDeath: the same connection death retries a Read
// transparently — re-executing a read is harmless.
func TestReadRetriedOnConnDeath(t *testing.T) {
	var reads atomic.Int64
	addr, _ := multiServer(t, func(nc net.Conn, req *wire.Request) {
		if req.Op == wire.OpRead && reads.Add(1) == 1 {
			nc.Close() // kill the first attempt
			return
		}
		payload := wire.AppendResponse(nil, &wire.Response{
			ID: req.ID, Status: wire.StatusOK, Rows: 1, Words: 1, Data: []uint64{7}})
		wire.WriteFrame(nc, payload)
	})
	c := dial(t, addr, client.WithRetries(10), client.WithBackoff(time.Millisecond, 10*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Read(ctx, 1)
	if err != nil {
		t.Fatalf("Read across conn death: %v", err)
	}
	if len(v) != 1 || v[0] != 7 {
		t.Fatalf("Read = %v, want [7]", v)
	}
	if c.Retries() == 0 {
		t.Fatal("read survived conn death without a recorded retry")
	}
}

// TestBusyRetriedForUpdates: StatusBusy is the server's explicit
// promise of non-execution, so even updates retry on it.
func TestBusyRetriedForUpdates(t *testing.T) {
	var attempts atomic.Int64
	addr, _ := multiServer(t, func(nc net.Conn, req *wire.Request) {
		if attempts.Add(1) == 1 {
			respondStatus(nc, req.ID, wire.StatusBusy, "max inflight")
			return
		}
		payload := wire.AppendResponse(nil, &wire.Response{
			ID: req.ID, Status: wire.StatusOK, Rows: 1, Words: 1, Data: []uint64{1}})
		wire.WriteFrame(nc, payload)
	})
	c := dial(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := c.Add(ctx, 1, []uint64{1})
	if err != nil {
		t.Fatalf("Add across busy: %v", err)
	}
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("Add = %v, want [1]", v)
	}
	if attempts.Load() != 2 || c.Retries() != 1 {
		t.Fatalf("attempts=%d retries=%d, want 2 and 1", attempts.Load(), c.Retries())
	}
}

// TestBusyExhaustsRetries: a server that never admits anything yields a
// typed ErrRetriesExhausted still carrying ErrBusy.
func TestBusyExhaustsRetries(t *testing.T) {
	addr, _ := multiServer(t, func(nc net.Conn, req *wire.Request) {
		respondStatus(nc, req.ID, wire.StatusBusy, "max inflight")
	})
	c := dial(t, addr, client.WithRetries(2), client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.Add(ctx, 1, []uint64{1})
	if !errors.Is(err, client.ErrRetriesExhausted) || !errors.Is(err, client.ErrBusy) {
		t.Fatalf("err = %v, want ErrRetriesExhausted wrapping ErrBusy", err)
	}
}

// TestUnavailableNotRetried: degraded mode is sticky; the client fails
// fast with the typed error instead of hammering a sick server.
func TestUnavailableNotRetried(t *testing.T) {
	var attempts atomic.Int64
	addr, _ := multiServer(t, func(nc net.Conn, req *wire.Request) {
		attempts.Add(1)
		respondStatus(nc, req.ID, wire.StatusUnavailable, "read-only: disk sick")
	})
	c := dial(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.Set(ctx, 1, []uint64{1})
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if errors.Is(err, client.ErrRetriesExhausted) || attempts.Load() != 1 {
		t.Fatalf("unavailable was retried (%d attempts): %v", attempts.Load(), err)
	}
}

// TestOpTimeoutDefault: WithOpTimeout bounds calls whose context has no
// deadline; the surface error stays context.DeadlineExceeded.
func TestOpTimeoutDefault(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept and never answer
		}
	}()
	c, err := client.Dial(l.Addr().String(), client.WithOpTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Ping(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from the default op timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("default op timeout took %v, want ~30ms", d)
	}
}

// TestChaosNoAckedLossThroughProxy hammers a real server through a
// proxy that keeps cutting connections at frame boundaries, then checks
// the acked-adds invariant: every Add the client acked is in the final
// value (the server may additionally hold unacked ones — that is the
// ambiguity the retry policy refuses to paper over).
func TestChaosNoAckedLossThroughProxy(t *testing.T) {
	srv, addr := startServer(t, 4, 4, 1)
	p, err := fault.NewProxy(addr, 42,
		fault.Faults{CutAfterBytes: 4 << 10, CutAtFrame: true},
		fault.Faults{PartialEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dial(t, p.Addr(), client.WithConns(2),
		client.WithRetries(20), client.WithBackoff(time.Millisecond, 10*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	const workers = 4
	const perW = 150
	var acked atomic.Uint64
	var wg sync.WaitGroup
	key := uint64(99)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := c.Add(ctx, key, []uint64{1}); err == nil {
					acked.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if acked.Load() == 0 {
		t.Fatal("no add was ever acked through the chaos proxy")
	}
	if p.Accepted() <= 2 {
		t.Fatalf("proxy accepted %d conns; cuts never forced a reconnect", p.Accepted())
	}
	// Read the truth off the server directly, bypassing the proxy.
	direct := dial(t, addr)
	v, err := direct.Read(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] < acked.Load() {
		t.Fatalf("acked-write loss: server holds %d, clients got %d acks", v[0], acked.Load())
	}
	if v[0] > workers*perW {
		t.Fatalf("server holds %d adds, more than the %d issued", v[0], workers*perW)
	}
	_ = srv
}
