package shard

import (
	"sync"
	"testing"

	"mwllsc/internal/baseline"
	"mwllsc/internal/mwobj"
)

func TestMapBasics(t *testing.T) {
	m, err := NewMap(8, 4, 2, WithInitial([]uint64{7, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 8 || m.N() != 4 || m.W() != 2 {
		t.Fatalf("geometry = %d/%d/%d, want 8/4/2", m.Shards(), m.N(), m.W())
	}
	v := make([]uint64, 2)
	m.Read(42, v)
	if v[0] != 7 || v[1] != 9 {
		t.Fatalf("initial value = %v, want [7 9]", v)
	}
	if attempts := m.Update(42, func(v []uint64) { v[0]++ }); attempts != 1 {
		t.Fatalf("uncontended Update took %d attempts, want 1", attempts)
	}
	m.Read(42, v)
	if v[0] != 8 {
		t.Fatalf("after Update, v[0] = %d, want 8", v[0])
	}
	// A key on a different shard is unaffected.
	other := uint64(0)
	for k := uint64(0); k < 1000; k++ {
		if m.ShardIndex(k) != m.ShardIndex(42) {
			other = k
			break
		}
	}
	m.Read(other, v)
	if v[0] != 7 || v[1] != 9 {
		t.Fatalf("other shard's value = %v, want untouched [7 9]", v)
	}
}

func TestMapBadArgs(t *testing.T) {
	if _, err := NewMap(0, 4, 2); err == nil {
		t.Fatal("NewMap with k=0 succeeded")
	}
	if _, err := NewMap(2, 0, 2); err == nil {
		t.Fatal("NewMap with n=0 succeeded")
	}
	if _, err := NewMap(2, 4, 2, WithInitial([]uint64{1})); err == nil {
		t.Fatal("NewMap with short initial succeeded")
	}
	if _, err := NewMap(2, 4, 0); err == nil {
		t.Fatal("NewMap with w=0 succeeded")
	}
}

func TestMapWithFactory(t *testing.T) {
	built := 0
	f := func(n, w int, initial []uint64) (mwobj.MW, error) {
		built++
		return baseline.NewLockMW(n, w, initial)
	}
	m, err := NewMap(4, 2, 1, WithFactory(f))
	if err != nil {
		t.Fatal(err)
	}
	if built != 4 {
		t.Fatalf("factory built %d shards, want 4", built)
	}
	m.Update(1, func(v []uint64) { v[0] = 5 })
	v := make([]uint64, 1)
	m.Read(1, v)
	if v[0] != 5 {
		t.Fatalf("read %v through lockmw factory, want [5]", v)
	}
}

func TestShardIndexSpreadsDenseKeys(t *testing.T) {
	const k = 8
	m, err := NewMap(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	const keys = 8000
	for key := uint64(0); key < keys; key++ {
		i := m.ShardIndex(key)
		if i < 0 || i >= k {
			t.Fatalf("ShardIndex(%d) = %d out of range", key, i)
		}
		counts[i]++
	}
	for i, c := range counts {
		if c < keys/k/2 || c > keys/k*2 {
			t.Fatalf("shard %d got %d of %d dense keys — hash does not spread (counts %v)", i, c, keys, counts)
		}
	}
}

func TestHashBytes(t *testing.T) {
	a, b := HashBytes([]byte("user:1234")), HashBytes([]byte("user:1235"))
	if a == b {
		t.Fatal("adjacent string keys hash identically")
	}
	if HashBytes([]byte("user:1234")) != a {
		t.Fatal("HashBytes is not deterministic")
	}
}

func TestHashUint64(t *testing.T) {
	if HashUint64(1234) == HashUint64(1235) {
		t.Fatal("adjacent integer keys hash identically")
	}
	if HashUint64(1234) != HashUint64(1234) {
		t.Fatal("HashUint64 is not deterministic")
	}
	// The finalizer is a bijection: a small dense range must not collide.
	seen := map[uint64]bool{}
	for k := uint64(0); k < 4096; k++ {
		h := HashUint64(k)
		if seen[h] {
			t.Fatalf("collision at key %d", k)
		}
		seen[h] = true
	}
}

func TestKeyForShard(t *testing.T) {
	for _, k := range []int{1, 2, 7, 16} {
		m, err := NewMap(k, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if got := m.ShardIndex(m.KeyForShard(i)); got != i {
				t.Fatalf("k=%d: KeyForShard(%d) lands in shard %d", k, i, got)
			}
		}
	}
}

// shardKeys returns each shard's representative key, so tests can target
// shards deliberately through the key API.
func shardKeys(m *Map) []uint64 {
	keys := make([]uint64, m.Shards())
	for i := range keys {
		keys[i] = m.KeyForShard(i)
	}
	return keys
}

func TestUpdateMultiBasics(t *testing.T) {
	m, err := NewMap(4, 2, 2, WithInitial([]uint64{100, 0}))
	if err != nil {
		t.Fatal(err)
	}
	keys := shardKeys(m)
	// A cross-shard transfer: shards 0 and 3 change together.
	attempts := m.UpdateMulti([]uint64{keys[0], keys[3]}, func(vals [][]uint64) {
		vals[0][0] -= 30
		vals[1][0] += 30
		vals[0][1]++
		vals[1][1]++
	})
	if attempts != 1 {
		t.Fatalf("uncontended UpdateMulti took %d attempts, want 1", attempts)
	}
	v := make([]uint64, 2)
	m.Read(keys[0], v)
	if v[0] != 70 || v[1] != 1 {
		t.Fatalf("shard 0 = %v, want [70 1]", v)
	}
	m.Read(keys[3], v)
	if v[0] != 130 || v[1] != 1 {
		t.Fatalf("shard 3 = %v, want [130 1]", v)
	}
	m.Read(keys[1], v)
	if v[0] != 100 || v[1] != 0 {
		t.Fatalf("untouched shard 1 = %v, want [100 0]", v)
	}
	// Zero keys: a no-op.
	if got := m.UpdateMulti(nil, func([][]uint64) { t.Fatal("f ran") }); got != 0 {
		t.Fatalf("empty UpdateMulti returned %d, want 0", got)
	}
}

func TestSnapshotAtomicQuiescent(t *testing.T) {
	m, err := NewMap(3, 2, 1, WithInitial([]uint64{9}))
	if err != nil {
		t.Fatal(err)
	}
	buf := m.NewSnapshotBuffer()
	if attempts := m.SnapshotAtomic(buf); attempts != 1 {
		t.Fatalf("quiescent SnapshotAtomic took %d attempts, want 1", attempts)
	}
	for i, row := range buf {
		if row[0] != 9 {
			t.Fatalf("row %d = %v, want [9]", i, row)
		}
	}
}

// TestSnapshotAtomicConsistentCut is the guarantee Snapshot does NOT
// give: writers move a unit between two shards with UpdateMulti (the
// all-shards sum is invariant), and every SnapshotAtomic must see exactly
// that sum. A merely per-shard-atomic view would catch one shard
// pre-transfer and the other post-transfer.
func TestSnapshotAtomicConsistentCut(t *testing.T) {
	const (
		k       = 4
		total   = 1000 * k
		writers = 2
		snaps   = 1500
	)
	m, err := NewMap(k, writers+1, 1, WithInitial([]uint64{1000}))
	if err != nil {
		t.Fatal(err)
	}
	keys := shardKeys(m)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, b := (wr+i)%k, (wr+i+1+wr)%k
				if a == b {
					continue
				}
				h.UpdateMulti([]uint64{keys[a], keys[b]}, func(vals [][]uint64) {
					vals[0][0]--
					vals[1][0]++
				})
			}
		}(wr)
	}

	h := m.Acquire()
	buf := m.NewSnapshotBuffer()
	for i := 0; i < snaps; i++ {
		h.SnapshotAtomic(buf)
		var sum uint64
		for _, row := range buf {
			sum += row[0]
		}
		if sum != total {
			close(stop)
			t.Fatalf("snapshot %d: sum %d, want %d — not a consistent cut: %v", i, sum, total, buf)
		}
	}
	h.Release()
	close(stop)
	wg.Wait()
}

// TestMapConcurrentCounters runs many goroutines incrementing per-key
// counters through the registry and checks every increment landed exactly
// once.
func TestMapConcurrentCounters(t *testing.T) {
	const (
		k          = 4
		n          = 4
		goroutines = 16 // 4x oversubscribed
		perG       = 500
		keys       = 32
	)
	m, err := NewMap(k, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := uint64((g*perG + i) % keys)
				m.Update(key, func(v []uint64) { v[0]++ })
			}
		}(g)
	}
	wg.Wait()

	var total uint64
	buf := m.NewSnapshotBuffer()
	m.Snapshot(buf)
	for _, row := range buf {
		total += row[0]
	}
	if want := uint64(goroutines * perG); total != want {
		t.Fatalf("sum over shards = %d, want %d — lost or duplicated updates", total, want)
	}
	if m.Registry().InUse() != 0 {
		t.Fatalf("registry leaked %d slots", m.Registry().InUse())
	}
}

// TestMapHandlePinned exercises the long-lived-handle path: one handle per
// goroutine, many updates each, with spin policy.
func TestMapHandlePinned(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
	)
	m, err := NewMap(8, goroutines, 2, WithMapWaitPolicy(Spin))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			for i := 0; i < perG; i++ {
				h.Update(uint64(i), func(v []uint64) { v[0]++; v[1] += 2 })
			}
		}()
	}
	wg.Wait()

	h := m.Acquire()
	defer h.Release()
	var got0, got1 uint64
	v := make([]uint64, 2)
	for i := 0; i < m.Shards(); i++ {
		h.ReadShard(i, v)
		got0 += v[0]
		got1 += v[1]
	}
	if want := uint64(goroutines * perG); got0 != want || got1 != 2*want {
		t.Fatalf("sums = %d/%d, want %d/%d", got0, got1, want, 2*want)
	}
}

// TestSnapshotRowsAtomic checks per-shard atomicity of Snapshot under
// concurrent writers: every row must be internally consistent (writer
// keeps all words of a shard equal), even though rows may be from
// different instants.
func TestSnapshotRowsAtomic(t *testing.T) {
	const (
		k = 4
		w = 4
	)
	m, err := NewMap(k, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wr := 0; wr < 2; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			key := uint64(wr)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Update(key, func(v []uint64) {
					x := v[0] + 1
					for j := range v {
						v[j] = x // all words move together
					}
				})
			}
		}(wr)
	}

	h := m.Acquire()
	buf := m.NewSnapshotBuffer()
	for i := 0; i < 2000; i++ {
		h.Snapshot(buf)
		for s, row := range buf {
			for j := 1; j < w; j++ {
				if row[j] != row[0] {
					close(stop)
					t.Fatalf("snapshot %d shard %d torn: %v", i, s, row)
				}
			}
		}
	}
	h.Release()
	close(stop)
	wg.Wait()
}

func TestMapHandleDoubleReleasePanics(t *testing.T) {
	m, err := NewMap(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := m.Acquire()
	h.Release()
	// Reuse the id so a second (unguarded) release would free an id
	// another goroutine legitimately holds.
	h2 := m.Acquire()
	defer h2.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	h.Release()
}

func TestSnapshotBadBuffer(t *testing.T) {
	m, err := NewMap(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot with wrong row count did not panic")
		}
	}()
	m.Snapshot(make([][]uint64, 3))
}
