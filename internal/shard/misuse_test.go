package shard

import (
	"sync"
	"testing"
)

// The misuse tests pin the registry/handle failure modes: every way two
// goroutines could end up aliasing one process id must panic loudly
// instead, because aliased ids silently void the paper's per-process
// guarantees.

func TestMapHandleUseAfterReleasePanics(t *testing.T) {
	m, err := NewMap(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.NewSnapshotBuffer()
	dst := make([]uint64, 2)
	ops := []struct {
		name string
		op   func(h *MapHandle)
	}{
		{"Update", func(h *MapHandle) { h.Update(1, func(v []uint64) { v[0]++ }) }},
		{"UpdateMulti", func(h *MapHandle) { h.UpdateMulti([]uint64{1, 2}, func(vals [][]uint64) {}) }},
		{"Read", func(h *MapHandle) { h.Read(1, dst) }},
		{"ReadShard", func(h *MapHandle) { h.ReadShard(0, dst) }},
		{"Snapshot", func(h *MapHandle) { h.Snapshot(snap) }},
		{"SnapshotAtomic", func(h *MapHandle) { h.SnapshotAtomic(snap) }},
	}
	for _, tc := range ops {
		t.Run(tc.name, func(t *testing.T) {
			h := m.Acquire()
			tc.op(h) // sanity: fine while live
			h.Release()
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after Release did not panic", tc.name)
				}
			}()
			tc.op(h)
		})
	}
}

func TestMapHandleDoubleReleaseDoesNotFreeSlot(t *testing.T) {
	// The second Release must panic BEFORE touching the registry: a
	// double release that slipped through would push the id into the
	// free pool while another goroutine holds it.
	m, err := NewMap(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := m.Acquire()
	h.Release()
	func() {
		defer func() { recover() }()
		h.Release()
	}()
	// The slot must have been freed exactly once: one TryAcquire
	// succeeds, a second fails.
	if _, ok := m.TryAcquire(); !ok {
		t.Fatal("slot lost after double-release panic")
	}
	if _, ok := m.TryAcquire(); ok {
		t.Fatal("double release freed the slot twice")
	}
}

// TestMapAcquireStorm oversubscribes a small map's registry from many
// goroutines under both wait policies, with every goroutine doing real
// per-key and cross-shard work between Acquire and Release. The final
// counter total checks that no operation was lost or doubled — the
// symptom aliased ids would produce.
func TestMapAcquireStorm(t *testing.T) {
	for _, policy := range []WaitPolicy{Block, Spin} {
		t.Run(policy.String(), func(t *testing.T) {
			const (
				slots      = 3
				goroutines = 16
				iters      = 100
			)
			m, err := NewMap(4, slots, 1, WithMapWaitPolicy(policy))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						h := m.Acquire()
						if i%8 == 0 {
							h.UpdateMulti([]uint64{uint64(g), uint64(g + 1)}, func(vals [][]uint64) {
								for _, v := range vals {
									v[0]++
								}
							})
						} else {
							h.Update(uint64(g*iters+i), func(v []uint64) { v[0]++ })
						}
						h.Release()
					}
				}(g)
			}
			wg.Wait()
			if got := m.Registry().InUse(); got != 0 {
				t.Fatalf("%d slots still in use after storm", got)
			}
			snap := m.NewSnapshotBuffer()
			m.SnapshotAtomic(snap)
			var total uint64
			for _, row := range snap {
				total += row[0]
			}
			// Each goroutine: iters/8 rounded up multi ops counting 2, the
			// rest counting 1.
			multis := (iters + 7) / 8
			want := uint64(goroutines * (2*multis + (iters - multis)))
			if total != want {
				t.Fatalf("counter total %d, want %d (lost or doubled updates)", total, want)
			}
		})
	}
}

// TestTryAcquireStorm hammers TryAcquire concurrently with blocking
// acquirers; every successful TryAcquire must hold an exclusive id.
func TestTryAcquireStorm(t *testing.T) {
	const (
		slots      = 2
		goroutines = 12
		iters      = 300
	)
	r, err := NewRegistry(slots)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int32, slots)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p, ok := r.TryAcquire()
				if !ok {
					continue
				}
				mu.Lock()
				if owner[p] != 0 {
					mu.Unlock()
					t.Errorf("id %d try-acquired by %d while held by %d", p, g, owner[p]-1)
					r.Release(p)
					return
				}
				owner[p] = int32(g) + 1
				mu.Unlock()

				mu.Lock()
				owner[p] = 0
				mu.Unlock()
				r.Release(p)
			}
		}(g)
	}
	wg.Wait()
	if got := r.InUse(); got != 0 {
		t.Fatalf("InUse() = %d after storm, want 0", got)
	}
}

func TestMapHandleReacquire(t *testing.T) {
	m, err := NewMap(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := m.Acquire()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reacquire of a live handle did not panic")
			}
		}()
		h.Reacquire()
	}()
	h.Release()
	h.Reacquire()
	// The re-armed handle must be fully usable again.
	if n := h.Update(7, func(v []uint64) { v[0]++ }); n < 1 {
		t.Fatalf("Update after Reacquire: %d attempts", n)
	}
	dst := make([]uint64, m.W())
	h.Read(7, dst)
	if dst[0] != 1 {
		t.Fatalf("Read after Reacquire = %v, want [1 0]", dst)
	}
	// Release/Reacquire is the serving layer's per-batch cycle; it must
	// not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		h.Release()
		h.Reacquire()
	})
	if allocs != 0 {
		t.Errorf("Release+Reacquire: %v allocs, want 0", allocs)
	}
	h.Release()
	// A released-then-reacquired-elsewhere id stays exclusive: both slots
	// can be out at once.
	h1, h2 := m.Acquire(), m.Acquire()
	if h1.Process() == h2.Process() {
		t.Fatal("two live handles share a process id")
	}
	h1.Release()
	h2.Release()
}
