package shard

import (
	"fmt"

	"mwllsc/internal/core"
	"mwllsc/internal/mem"
	"mwllsc/internal/mwobj"
)

// Map is a K-shard array of independent N-process W-word LL/SC/VL objects,
// keyed by hash. Each shard carries the paper's full per-object guarantees
// (wait-free O(W) LL/SC, linearizable per shard); spreading keys over K
// shards multiplies aggregate SC throughput because writes to different
// shards no longer contend on a single X word.
//
// Consistency contract: operations on one key (one shard) are atomic and
// linearizable exactly as for a single object. Snapshot reads every shard
// individually-atomically (per-shard LL + VL revalidation) but is NOT
// cross-shard linearizable: the K values need not have coexisted at any
// single instant. Workloads that need a cross-shard atomic view must keep
// those words in one shard (or one plain object).
//
// A Map shares one Registry across all shards: an acquired process id is
// valid on every shard, so a goroutine pins one id and then touches any
// subset of shards.
type Map struct {
	shards []mwobj.MW
	reg    *Registry
	k      int
	n      int
	w      int
}

// MapOption configures NewMap.
type MapOption func(*mapConfig)

type mapConfig struct {
	factory mwobj.Factory
	policy  WaitPolicy
	initial []uint64
}

// WithFactory builds each shard with f instead of the default (the paper's
// algorithm on the tagged substrate).
func WithFactory(f mwobj.Factory) MapOption {
	return func(c *mapConfig) { c.factory = f }
}

// WithMapWaitPolicy selects the registry's exhaustion behavior.
func WithMapWaitPolicy(p WaitPolicy) MapOption {
	return func(c *mapConfig) { c.policy = p }
}

// WithInitial sets every shard's initial value (len must be w).
func WithInitial(v []uint64) MapOption {
	return func(c *mapConfig) { c.initial = v }
}

// WithSubstrate builds each shard with the paper's algorithm on the given
// single-word substrate. Mutually exclusive with WithFactory (later option
// wins).
func WithSubstrate(s mem.Substrate) MapOption {
	return func(c *mapConfig) {
		c.factory = func(n, w int, initial []uint64) (mwobj.MW, error) {
			return core.New(mem.NewReal(n, s), n, w, initial, nil)
		}
	}
}

// DefaultFactory builds the paper's algorithm on the tagged substrate —
// the same construction as the top-level package's New.
func DefaultFactory(n, w int, initial []uint64) (mwobj.MW, error) {
	return core.New(mem.NewReal(n, mem.SubstrateTagged), n, w, initial, nil)
}

// NewMap creates a map of k shards, each an n-process w-word object
// initialized to zeros (or WithInitial). n bounds the number of goroutines
// that can operate concurrently; additional goroutines wait at the
// registry.
func NewMap(k, n, w int, opts ...MapOption) (*Map, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: map needs k >= 1 shards, got %d", k)
	}
	cfg := mapConfig{factory: DefaultFactory, policy: Block}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.initial == nil {
		cfg.initial = make([]uint64, w)
	}
	if len(cfg.initial) != w {
		return nil, fmt.Errorf("shard: initial value has %d words, want %d", len(cfg.initial), w)
	}
	reg, err := NewRegistry(n, WithWaitPolicy(cfg.policy))
	if err != nil {
		return nil, err
	}
	m := &Map{shards: make([]mwobj.MW, k), reg: reg, k: k, n: n, w: w}
	for i := range m.shards {
		obj, err := cfg.factory(n, w, cfg.initial)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		if obj.N() != n || obj.W() != w {
			return nil, fmt.Errorf("shard: factory built a %d-process %d-word object, want %d/%d",
				obj.N(), obj.W(), n, w)
		}
		m.shards[i] = obj
	}
	return m, nil
}

// Shards returns K, the shard count.
func (m *Map) Shards() int { return m.k }

// N returns the number of process slots (concurrent operators) per shard.
func (m *Map) N() int { return m.n }

// W returns the per-shard value width in 64-bit words.
func (m *Map) W() int { return m.w }

// Registry returns the process-slot registry shared by all shards.
func (m *Map) Registry() *Registry { return m.reg }

// ShardIndex returns the shard that owns key.
func (m *Map) ShardIndex(key uint64) int {
	return int(mix64(key) % uint64(m.k))
}

// Acquire checks out a process id valid on every shard and returns a
// handle bound to it. The handle must be used by one goroutine at a time
// and returned with Release. Prefer one long-lived handle per worker
// goroutine; the per-op convenience wrappers on Map pay an
// acquire/release round trip each call.
func (m *Map) Acquire() *MapHandle {
	return &MapHandle{m: m, p: m.reg.Acquire()}
}

// TryAcquire is Acquire without waiting; ok is false if all n slots are
// checked out.
func (m *Map) TryAcquire() (h *MapHandle, ok bool) {
	p, ok := m.reg.TryAcquire()
	if !ok {
		return nil, false
	}
	return &MapHandle{m: m, p: p}, true
}

// Update acquires a slot, atomically applies f to the shard owning key,
// and releases the slot. It returns the number of LL/SC attempts.
func (m *Map) Update(key uint64, f func(v []uint64)) int {
	h := m.Acquire()
	defer h.Release()
	return h.Update(key, f)
}

// Read acquires a slot, copies the current value of the shard owning key
// into dst (len(dst) must be W), and releases the slot.
func (m *Map) Read(key uint64, dst []uint64) {
	h := m.Acquire()
	defer h.Release()
	h.Read(key, dst)
}

// Snapshot acquires a slot, reads every shard individually-atomically into
// dst (dst must have K rows of W words; see NewSnapshotBuffer), and
// releases the slot. Per-shard atomic, not cross-shard linearizable — see
// MapHandle.Snapshot for the exact guarantees.
func (m *Map) Snapshot(dst [][]uint64) {
	h := m.Acquire()
	defer h.Release()
	h.Snapshot(dst)
}

// NewSnapshotBuffer allocates a K×W destination for Snapshot.
func (m *Map) NewSnapshotBuffer() [][]uint64 {
	buf := make([][]uint64, m.k)
	backing := make([]uint64, m.k*m.w)
	for i := range buf {
		buf[i] = backing[i*m.w : (i+1)*m.w : (i+1)*m.w]
	}
	return buf
}

// MapHandle binds a Map to one acquired process id. It is valid on every
// shard and must be driven by at most one goroutine at a time.
type MapHandle struct {
	m        *Map
	p        int
	released bool
	scratch  []uint64
}

// Process returns the underlying process id (the same id on every shard).
func (h *MapHandle) Process() int { return h.p }

// Release returns the process id to the registry. The handle must not be
// used afterwards; releasing twice panics (a second release could
// otherwise silently free an id that a different goroutine has since
// re-acquired).
func (h *MapHandle) Release() {
	if h.released {
		panic("shard: MapHandle released twice")
	}
	h.released = true
	h.m.reg.Release(h.p)
}

// Update atomically applies f to the shard owning key via the LL -> f ->
// SC loop, returning the number of attempts. f receives the shard's
// current value in a scratch buffer reused across calls of this handle and
// must mutate it in place; it may run several times, so it must be
// side-effect free. Lock-free: a retry only happens when another process's
// SC landed on the same shard.
func (h *MapHandle) Update(key uint64, f func(v []uint64)) int {
	if h.scratch == nil {
		h.scratch = make([]uint64, h.m.w)
	}
	obj := h.m.shards[h.m.ShardIndex(key)]
	for attempt := 1; ; attempt++ {
		obj.LL(h.p, h.scratch)
		f(h.scratch)
		if obj.SC(h.p, h.scratch) {
			return attempt
		}
	}
}

// Read copies the current value of the shard owning key into dst (len(dst)
// must be W) — a wait-free atomic multiword read (one LL).
func (h *MapHandle) Read(key uint64, dst []uint64) {
	h.m.shards[h.m.ShardIndex(key)].LL(h.p, dst)
}

// ReadShard copies shard i's current value into dst.
func (h *MapHandle) ReadShard(i int, dst []uint64) {
	h.m.shards[i].LL(h.p, dst)
}

// Snapshot reads every shard into dst (K rows of W words). Each LL is by
// itself an atomic (and wait-free) multiword read, so every row is
// internally consistent after the first pass; the second pass revalidates
// each link with VL and re-reads shards whose link was broken by an
// intervening SC, so each returned row is additionally *current* as of
// its validation point near the end of the snapshot, rather than as of
// the first pass. That freshness loop makes Snapshot lock-free (a hot
// shard under sustained SC traffic can force re-reads) instead of
// wait-free. The result is per-shard atomic only: the K rows need not
// have coexisted at one instant.
func (h *MapHandle) Snapshot(dst [][]uint64) {
	if len(dst) != h.m.k {
		panic(fmt.Sprintf("shard: snapshot buffer has %d rows, want %d", len(dst), h.m.k))
	}
	for i, obj := range h.m.shards {
		obj.LL(h.p, dst[i])
	}
	for i, obj := range h.m.shards {
		for !obj.VL(h.p) {
			obj.LL(h.p, dst[i])
		}
	}
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection on uint64,
// so dense key ranges (0,1,2,...) still spread uniformly over shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashBytes maps an arbitrary byte-string key onto the uint64 key space
// (FNV-1a), for callers whose keys are not already integers.
func HashBytes(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
