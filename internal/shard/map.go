package shard

import (
	"fmt"

	"mwllsc/internal/core"
	"mwllsc/internal/mem"
	"mwllsc/internal/mwobj"
	"mwllsc/internal/txn"
)

// Map is a K-shard array of independent N-process W-word LL/SC/VL objects,
// keyed by hash. Each shard carries the paper's full per-object guarantees
// (wait-free O(W) LL/SC, linearizable per shard); spreading keys over K
// shards multiplies aggregate SC throughput because writes to different
// shards no longer contend on a single X word.
//
// Consistency contract: operations on one key (one shard) are atomic and
// linearizable exactly as for a single object. For atomicity ACROSS
// shards, the map carries a lock-free transaction layer (internal/txn):
// UpdateMulti applies one function atomically to the values of several
// keys in different shards, and SnapshotAtomic returns a cross-shard
// linearizable view of all K shards. Both are lock-free rather than
// wait-free and cost more than their per-key counterparts — UpdateMulti
// pays two LL/SC rounds per touched shard (lock + release) plus a
// descriptor publish, SnapshotAtomic two passes over all K shards plus
// retries under sustained write traffic — so per-key Update/Read and the
// weaker per-shard-atomic Snapshot remain the fast path.
//
// A Map shares one Registry across all shards: an acquired process id is
// valid on every shard, so a goroutine pins one id and then touches any
// subset of shards.
//
// The shards hold user values only, at their native width; the
// transaction engine keeps one padded lock word per shard in its own
// memory, so the per-key fast path pays exactly one extra atomic load.
type Map struct {
	shards  []mwobj.MW
	reg     *Registry
	eng     *txn.Engine
	repKeys []uint64 // repKeys[i] is owned by shard i; see KeyForShard
	k       int
	n       int
	w       int
}

// MapOption configures NewMap.
type MapOption func(*mapConfig)

type mapConfig struct {
	factory mwobj.Factory
	policy  WaitPolicy
	initial []uint64
}

// WithFactory builds each shard with f instead of the default (the paper's
// algorithm on the tagged substrate).
func WithFactory(f mwobj.Factory) MapOption {
	return func(c *mapConfig) { c.factory = f }
}

// WithMapWaitPolicy selects the registry's exhaustion behavior.
func WithMapWaitPolicy(p WaitPolicy) MapOption {
	return func(c *mapConfig) { c.policy = p }
}

// WithInitial sets every shard's initial value (len must be w).
func WithInitial(v []uint64) MapOption {
	return func(c *mapConfig) { c.initial = v }
}

// WithSubstrate builds each shard with the paper's algorithm on the given
// single-word substrate. Mutually exclusive with WithFactory (later option
// wins).
func WithSubstrate(s mem.Substrate) MapOption {
	return func(c *mapConfig) {
		c.factory = func(n, w int, initial []uint64) (mwobj.MW, error) {
			return core.New(mem.NewReal(n, s), n, w, initial, nil)
		}
	}
}

// DefaultFactory builds the paper's algorithm on the tagged substrate —
// the same construction as the top-level package's New.
func DefaultFactory(n, w int, initial []uint64) (mwobj.MW, error) {
	return core.New(mem.NewReal(n, mem.SubstrateTagged), n, w, initial, nil)
}

// NewMap creates a map of k shards, each an n-process w-word object
// initialized to zeros (or WithInitial). n bounds the number of goroutines
// that can operate concurrently; additional goroutines wait at the
// registry.
func NewMap(k, n, w int, opts ...MapOption) (*Map, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: map needs k >= 1 shards, got %d", k)
	}
	if w < 1 {
		return nil, fmt.Errorf("shard: map needs w >= 1 words, got %d", w)
	}
	cfg := mapConfig{factory: DefaultFactory, policy: Block}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.initial == nil {
		cfg.initial = make([]uint64, w)
	}
	if len(cfg.initial) != w {
		return nil, fmt.Errorf("shard: initial value has %d words, want %d", len(cfg.initial), w)
	}
	reg, err := NewRegistry(n, WithWaitPolicy(cfg.policy))
	if err != nil {
		return nil, err
	}
	m := &Map{shards: make([]mwobj.MW, k), reg: reg, k: k, n: n, w: w}
	for i := range m.shards {
		obj, err := cfg.factory(n, w, cfg.initial)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		if obj.N() != n || obj.W() != w {
			return nil, fmt.Errorf("shard: factory built a %d-process %d-word object, want %d/%d",
				obj.N(), obj.W(), n, w)
		}
		m.shards[i] = obj
	}
	eng, err := txn.New(mapShards{m}, n)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	m.eng = eng
	// One representative key per shard, for KeyForShard: scan the dense
	// integers once (the hash is a bijection, so every shard is hit in
	// expected ~K·lnK probes).
	m.repKeys = make([]uint64, k)
	filled := make([]bool, k)
	for next, found := uint64(0), 0; found < k; next++ {
		if i := m.ShardIndex(next); !filled[i] {
			m.repKeys[i] = next
			filled[i] = true
			found++
		}
	}
	return m, nil
}

// mapShards adapts a Map to the txn engine's substrate interface.
type mapShards struct{ m *Map }

func (s mapShards) Shards() int                    { return s.m.k }
func (s mapShards) Words() int                     { return s.m.w }
func (s mapShards) LL(p, i int, dst []uint64)      { s.m.shards[i].LL(p, dst) }
func (s mapShards) SC(p, i int, src []uint64) bool { return s.m.shards[i].SC(p, src) }
func (s mapShards) VL(p, i int) bool               { return s.m.shards[i].VL(p) }

// Shards returns K, the shard count.
func (m *Map) Shards() int { return m.k }

// N returns the number of process slots (concurrent operators) per shard.
func (m *Map) N() int { return m.n }

// W returns the per-shard value width in 64-bit words.
func (m *Map) W() int { return m.w }

// Registry returns the process-slot registry shared by all shards.
func (m *Map) Registry() *Registry { return m.reg }

// TxnStats returns the transaction engine's contention counters
// (helping and retry rates) — the observability window onto how often
// the paper's helping mechanism actually fires under this map's load.
func (m *Map) TxnStats() txn.Stats { return m.eng.Stats() }

// ShardIndex returns the shard that owns key.
func (m *Map) ShardIndex(key uint64) int {
	return int(mix64(key) % uint64(m.k))
}

// KeyForShard returns a key owned by shard i (so
// ShardIndex(KeyForShard(i)) == i) — the inverse of ShardIndex for
// workloads that pin one entity per shard (one account per shard, one
// partition head per shard, ...) and address it through the key API.
func (m *Map) KeyForShard(i int) uint64 { return m.repKeys[i] }

// Acquire checks out a process id valid on every shard and returns a
// handle bound to it. The handle must be used by one goroutine at a time
// and returned with Release. Prefer one long-lived handle per worker
// goroutine; the per-op convenience wrappers on Map pay an
// acquire/release round trip each call.
func (m *Map) Acquire() *MapHandle {
	return &MapHandle{m: m, p: m.reg.Acquire()}
}

// TryAcquire is Acquire without waiting; ok is false if all n slots are
// checked out.
func (m *Map) TryAcquire() (h *MapHandle, ok bool) {
	p, ok := m.reg.TryAcquire()
	if !ok {
		return nil, false
	}
	return &MapHandle{m: m, p: p}, true
}

// Update acquires a slot, atomically applies f to the shard owning key,
// and releases the slot. It returns the number of LL/SC attempts.
func (m *Map) Update(key uint64, f func(v []uint64)) int {
	h := m.Acquire()
	defer h.Release()
	return h.Update(key, f)
}

// UpdateMulti acquires a slot, atomically applies f to the values of the
// shards owning keys (see MapHandle.UpdateMulti), and releases the slot.
func (m *Map) UpdateMulti(keys []uint64, f func(vals [][]uint64)) int {
	h := m.Acquire()
	defer h.Release()
	return h.UpdateMulti(keys, f)
}

// Read acquires a slot, copies the current value of the shard owning key
// into dst (len(dst) must be W), and releases the slot.
func (m *Map) Read(key uint64, dst []uint64) {
	h := m.Acquire()
	defer h.Release()
	h.Read(key, dst)
}

// Snapshot acquires a slot, reads every shard individually-atomically into
// dst (dst must have K rows of W words; see NewSnapshotBuffer), and
// releases the slot. Per-shard atomic, not cross-shard linearizable — see
// MapHandle.Snapshot for the exact guarantees and SnapshotAtomic for the
// cross-shard linearizable (and costlier) variant.
func (m *Map) Snapshot(dst [][]uint64) {
	h := m.Acquire()
	defer h.Release()
	h.Snapshot(dst)
}

// SnapshotAtomic acquires a slot, takes a cross-shard linearizable
// snapshot into dst (see MapHandle.SnapshotAtomic), and releases the slot.
func (m *Map) SnapshotAtomic(dst [][]uint64) int {
	h := m.Acquire()
	defer h.Release()
	return h.SnapshotAtomic(dst)
}

// NewSnapshotBuffer allocates a K×W destination for Snapshot and
// SnapshotAtomic.
func (m *Map) NewSnapshotBuffer() [][]uint64 {
	buf := make([][]uint64, m.k)
	backing := make([]uint64, m.k*m.w)
	for i := range buf {
		buf[i] = backing[i*m.w : (i+1)*m.w : (i+1)*m.w]
	}
	return buf
}

// MapHandle binds a Map to one acquired process id. It is valid on every
// shard and must be driven by at most one goroutine at a time.
type MapHandle struct {
	m        *Map
	p        int
	released bool
	scratch  []uint64
	multi    []int
}

// Process returns the underlying process id (the same id on every shard).
func (h *MapHandle) Process() int { return h.p }

// Release returns the process id to the registry. The handle must not be
// used afterwards; releasing twice panics (a second release could
// otherwise silently free an id that a different goroutine has since
// re-acquired), and so does any data operation on a released handle
// (which would otherwise silently alias whichever goroutine has since
// re-acquired the id — see live).
func (h *MapHandle) Release() {
	if h.released {
		panic("shard: MapHandle released twice")
	}
	h.released = true
	h.m.reg.Release(h.p)
}

// Reacquire re-arms a released handle with a freshly acquired process
// id, reusing its scratch buffers — the allocation-free counterpart of
// Map.Acquire for callers that hold a slot only in bursts but keep the
// handle across them (the serving layer's batch executor acquires per
// batch; without this it would allocate a handle per batch). Reacquiring
// a handle that is still live panics: that would leak its process id.
func (h *MapHandle) Reacquire() {
	if !h.released {
		panic("shard: Reacquire of a live MapHandle")
	}
	h.p = h.m.reg.Acquire()
	h.released = false
}

// live panics on use-after-Release: a released id may already belong to
// another goroutine, and two goroutines driving one process id void
// every per-process guarantee in the construction. The check is one
// branch on an unshared bool — noise next to the LL/SC work it guards.
func (h *MapHandle) live() {
	if h.released {
		panic("shard: use of MapHandle after Release")
	}
}

// Update atomically applies f to the shard owning key via the LL -> f ->
// SC loop, returning the number of attempts. f receives the shard's
// current value in a scratch buffer reused across calls of this handle and
// must mutate it in place; it may run several times, so it must be
// side-effect free. Lock-free: a retry only happens when another process's
// SC landed on the same shard, or when a multi-key transaction was
// mid-commit on it (in which case this process first helps the
// transaction finish — the fast path pays just one atomic lock-word
// load). The lock check sits between LL and SC: a transaction that locks
// the shard after the check also reseals it with an SC, which invalidates
// this LL's link, so the subsequent SC here fails rather than landing on
// a locked shard.
func (h *MapHandle) Update(key uint64, f func(v []uint64)) int {
	h.live()
	if h.scratch == nil {
		h.scratch = make([]uint64, h.m.w)
	}
	i := h.m.ShardIndex(key)
	obj := h.m.shards[i]
	for attempt := 1; ; attempt++ {
		obj.LL(h.p, h.scratch)
		if ref := h.m.eng.Locked(h.p, i); ref != 0 {
			h.m.eng.Help(h.p, i, ref)
			continue
		}
		f(h.scratch)
		if obj.SC(h.p, h.scratch) {
			return attempt
		}
	}
}

// UpdateMulti atomically applies f to the values of the shards owning
// keys — a cross-shard atomic read-modify-write, linearizable against
// every other map operation. f receives one W-word slice per key, in key
// order (keys landing in the same shard alias the same slice), and must
// mutate them in place; like Update's f it may run once per attempt and
// must be deterministic and side-effect free. Returns the number of
// attempts (1 = no conflicting operation intervened). Lock-free via the
// helping protocol of internal/txn: a process stalled mid-commit never
// blocks others.
func (h *MapHandle) UpdateMulti(keys []uint64, f func(vals [][]uint64)) int {
	h.live()
	h.multi = h.multi[:0]
	for _, key := range keys {
		h.multi = append(h.multi, h.m.ShardIndex(key))
	}
	return h.m.eng.Update(h.p, h.multi, f)
}

// Read copies the current value of the shard owning key into dst (len(dst)
// must be W) — an atomic multiword read. Lock-free: it only retries while
// a multi-key transaction is mid-commit on the shard (helping it finish).
func (h *MapHandle) Read(key uint64, dst []uint64) {
	h.live()
	h.m.eng.Read(h.p, h.m.ShardIndex(key), dst)
}

// ReadShard copies shard i's current value into dst.
func (h *MapHandle) ReadShard(i int, dst []uint64) {
	h.live()
	h.m.eng.Read(h.p, i, dst)
}

// Snapshot reads every shard into dst (K rows of W words). Every row is an
// atomic read of its shard, and the VL pass re-reads shards whose link was
// broken by an intervening SC, so each returned row is additionally
// *current* as of its validation point near the end of the snapshot,
// rather than as of the first pass. That freshness loop makes Snapshot
// lock-free (a hot shard under sustained SC traffic can force re-reads)
// instead of wait-free. The result is per-shard atomic only: the K rows
// need not have coexisted at one instant. When the rows must form one
// consistent cut, use SnapshotAtomic and pay its retry/fallback cost.
func (h *MapHandle) Snapshot(dst [][]uint64) {
	h.live()
	if len(dst) != h.m.k {
		panic(fmt.Sprintf("shard: snapshot buffer has %d rows, want %d", len(dst), h.m.k))
	}
	for i := range h.m.shards {
		h.m.eng.Read(h.p, i, dst[i])
	}
	for i, obj := range h.m.shards {
		for !obj.VL(h.p) {
			h.m.eng.Read(h.p, i, dst[i])
		}
	}
}

// SnapshotAtomic reads every shard into dst (K rows of W words, see
// NewSnapshotBuffer) as one cross-shard linearizable snapshot: all K
// values coexisted at a single instant during the call. It first tries a
// bounded number of optimistic double collects (LL every shard, then VL
// every shard — if nothing moved between the passes, the values form a
// cut) and under sustained write traffic falls back to the transaction
// layer, which briefly locks all shards in order. The return value is the
// number of attempts; above txn.SnapshotRetries means the fallback ran.
// Lock-free, not wait-free: prefer Snapshot when per-shard atomicity is
// enough.
func (h *MapHandle) SnapshotAtomic(dst [][]uint64) int {
	h.live()
	if len(dst) != h.m.k {
		panic(fmt.Sprintf("shard: snapshot buffer has %d rows, want %d", len(dst), h.m.k))
	}
	return h.m.eng.Snapshot(h.p, dst)
}

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection on uint64,
// so dense key ranges (0,1,2,...) still spread uniformly over shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashUint64 maps an integer key onto the uint64 key space (SplitMix64
// finalizer — a bijection, so distinct inputs never collide), for callers
// whose keys are small or dense integers. The byte-string counterpart is
// HashBytes.
func HashUint64(k uint64) uint64 { return mix64(k) }

// HashBytes maps an arbitrary byte-string key onto the uint64 key space
// (FNV-1a), for callers whose keys are not already integers.
func HashBytes(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
