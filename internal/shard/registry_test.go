package shard

import (
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestSlotIsCacheLinePadded(t *testing.T) {
	if got := unsafe.Sizeof(slot{}); got != 64 {
		t.Fatalf("slot is %d bytes, want one 64-byte cache line", got)
	}
}

func TestRegistryAcquireReleaseRoundTrip(t *testing.T) {
	r, err := NewRegistry(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 4 {
		t.Fatalf("N() = %d, want 4", r.N())
	}
	seen := map[int]bool{}
	var held []int
	for i := 0; i < 4; i++ {
		p := r.Acquire()
		if p < 0 || p >= 4 {
			t.Fatalf("acquired id %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("id %d handed out twice", p)
		}
		seen[p] = true
		held = append(held, p)
	}
	if got := r.InUse(); got != 4 {
		t.Fatalf("InUse() = %d, want 4", got)
	}
	if _, ok := r.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an exhausted registry")
	}
	for _, p := range held {
		r.Release(p)
	}
	if got := r.InUse(); got != 0 {
		t.Fatalf("InUse() = %d after release of all, want 0", got)
	}
}

func TestRegistryBadN(t *testing.T) {
	if _, err := NewRegistry(0); err == nil {
		t.Fatal("NewRegistry(0) succeeded, want error")
	}
}

func TestRegistryBlockingAcquireWaits(t *testing.T) {
	r, err := NewRegistry(1)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Acquire()
	got := make(chan int)
	go func() { got <- r.Acquire() }()
	select {
	case q := <-got:
		t.Fatalf("Acquire returned %d while the only slot was held", q)
	case <-time.After(20 * time.Millisecond):
	}
	r.Release(p)
	select {
	case q := <-got:
		if q != p {
			t.Fatalf("blocked Acquire got id %d, want released id %d", q, p)
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire still blocked after Release")
	}
	s := r.Stats()
	if s.Acquires != 2 || s.Waited != 1 {
		t.Fatalf("stats = %+v, want 2 acquires / 1 waited", s)
	}
	r.Release(p)
}

func TestRegistrySpinPolicy(t *testing.T) {
	r, err := NewRegistry(1, WithWaitPolicy(Spin))
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy() != Spin {
		t.Fatalf("Policy() = %v, want Spin", r.Policy())
	}
	p := r.Acquire()
	done := make(chan int)
	go func() { done <- r.Acquire() }()
	time.Sleep(5 * time.Millisecond)
	r.Release(p)
	select {
	case q := <-done:
		r.Release(q)
	case <-time.After(time.Second):
		t.Fatal("spinning Acquire never got the released slot")
	}
}

func TestRegistryReleasePanics(t *testing.T) {
	r, err := NewRegistry(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		p    int
	}{
		{"not acquired", 0},
		{"out of range", 7},
		{"negative", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Release(%d) did not panic", tc.p)
				}
			}()
			r.Release(tc.p)
		})
	}
}

// TestRegistryOversubscribed hammers a small registry from many more
// goroutines than slots and checks mutual exclusion: no two goroutines may
// hold the same id at once.
func TestRegistryOversubscribed(t *testing.T) {
	for _, policy := range []WaitPolicy{Block, Spin} {
		t.Run(policy.String(), func(t *testing.T) {
			const (
				slots      = 3
				goroutines = 24
				iters      = 200
			)
			r, err := NewRegistry(slots, WithWaitPolicy(policy))
			if err != nil {
				t.Fatal(err)
			}
			owner := make([]int32, slots) // 0 = free; else goroutine id+1
			var mu sync.Mutex
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						p := r.Acquire()
						mu.Lock()
						if owner[p] != 0 {
							mu.Unlock()
							t.Errorf("id %d acquired by goroutine %d while held by %d", p, g, owner[p]-1)
							r.Release(p)
							return
						}
						owner[p] = int32(g) + 1
						mu.Unlock()

						mu.Lock()
						owner[p] = 0
						mu.Unlock()
						r.Release(p)
					}
				}(g)
			}
			wg.Wait()
			if got := r.InUse(); got != 0 {
				t.Fatalf("InUse() = %d after all goroutines finished, want 0", got)
			}
			s := r.Stats()
			if s.Acquires != goroutines*iters {
				t.Fatalf("Acquires = %d, want %d", s.Acquires, goroutines*iters)
			}
		})
	}
}
