// Package shard scales the paper's N-process W-word LL/SC/VL object to
// goroutine-shaped workloads along two orthogonal axes:
//
//   - Registry multiplexes an unbounded set of goroutines onto an object's
//     N process slots, so callers no longer hand-assign process ids.
//   - Map spreads traffic over K independent multiword objects keyed by
//     hash, so SC traffic no longer serializes through a single X word.
//
// Both are built purely on the mwobj.MW interface, so any registered
// implementation (the paper's algorithm or a baseline) can sit underneath.
package shard

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// WaitPolicy selects how Registry.Acquire behaves when all process slots
// are checked out.
type WaitPolicy int

const (
	// Block parks the acquiring goroutine until a slot is released
	// (channel-based; the runtime wakes it). The default.
	Block WaitPolicy = iota
	// Spin retries with runtime.Gosched between attempts. Lower latency
	// when slots turn over quickly; burns CPU when they do not.
	Spin
)

// String returns the policy name.
func (p WaitPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case Spin:
		return "spin"
	default:
		return fmt.Sprintf("WaitPolicy(%d)", int(p))
	}
}

// slot is the per-process-id ownership flag, padded to its own cache line
// so concurrent acquire/release traffic on neighboring ids does not false
// share.
type slot struct {
	inUse atomic.Bool
	_     [64 - unsafe.Sizeof(atomic.Bool{})]byte
}

// Registry multiplexes an unbounded set of goroutines onto the N process
// slots of a multiword LL/SC object. The paper's wait-freedom guarantees
// attach to process ids; the registry's job is to hand each goroutine an
// exclusive id for the duration of its critical work and take it back
// after, so ids can be shared by far more goroutines than N.
//
// Acquire/Release themselves are not wait-free: with more than N
// concurrent goroutines some must wait for a slot (that bound is inherent
// — the object only has N identities). Within an acquired slot, every
// LL/SC/VL retains the paper's guarantees.
type Registry struct {
	n      int
	policy WaitPolicy
	free   chan int
	slots  []slot

	acquires atomic.Int64
	waited   atomic.Int64
}

// RegistryOption configures NewRegistry.
type RegistryOption func(*Registry)

// WithWaitPolicy selects the exhaustion behavior (default Block).
func WithWaitPolicy(p WaitPolicy) RegistryOption {
	return func(r *Registry) { r.policy = p }
}

// NewRegistry creates a registry over process ids [0, n).
func NewRegistry(n int, opts ...RegistryOption) (*Registry, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: registry needs n >= 1 slots, got %d", n)
	}
	r := &Registry{
		n:      n,
		policy: Block,
		free:   make(chan int, n),
		slots:  make([]slot, n),
	}
	for _, opt := range opts {
		opt(r)
	}
	for p := 0; p < n; p++ {
		r.free <- p
	}
	return r, nil
}

// N returns the number of process slots.
func (r *Registry) N() int { return r.n }

// Policy returns the configured exhaustion behavior.
func (r *Registry) Policy() WaitPolicy { return r.policy }

// Acquire checks out an exclusive process id, waiting (per the configured
// WaitPolicy) if all n are in use. The id must be returned with Release
// and must be driven by only the acquiring goroutine in between.
func (r *Registry) Acquire() int {
	r.acquires.Add(1)
	var p int
	select {
	case p = <-r.free:
	default:
		r.waited.Add(1)
		if r.policy == Spin {
			for {
				select {
				case p = <-r.free:
					r.claim(p)
					return p
				default:
					runtime.Gosched()
				}
			}
		}
		p = <-r.free
	}
	r.claim(p)
	return p
}

// TryAcquire checks out a process id without waiting; ok is false if all
// slots are in use.
func (r *Registry) TryAcquire() (p int, ok bool) {
	select {
	case p = <-r.free:
		r.acquires.Add(1)
		r.claim(p)
		return p, true
	default:
		return 0, false
	}
}

func (r *Registry) claim(p int) {
	if !r.slots[p].inUse.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("shard: registry handed out process id %d twice", p))
	}
}

// Release returns a process id obtained from Acquire/TryAcquire to the
// pool. Releasing an id that is not currently checked out panics — that is
// always a caller bug (double release or a fabricated id) and silently
// accepting it would let two goroutines share one process identity. The
// check is best-effort: a stale double-release that lands after another
// goroutine has re-acquired the same id is indistinguishable from a valid
// release and WILL alias two goroutines onto one process — release each
// acquired id exactly once (MapHandle.Release enforces this per handle).
func (r *Registry) Release(p int) {
	if p < 0 || p >= r.n {
		panic(fmt.Sprintf("shard: release of process id %d out of range [0,%d)", p, r.n))
	}
	if !r.slots[p].inUse.CompareAndSwap(true, false) {
		panic(fmt.Sprintf("shard: release of process id %d that is not acquired", p))
	}
	r.free <- p
}

// InUse reports how many slots are currently checked out.
func (r *Registry) InUse() int { return r.n - len(r.free) }

// RegistryStats is a point-in-time snapshot of registry counters.
type RegistryStats struct {
	// Acquires counts Acquire calls (TryAcquire counts only successes).
	Acquires int64
	// Waited counts Acquire calls that found no free slot and had to
	// wait; Waited/Acquires approximates slot pressure.
	Waited int64
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() RegistryStats {
	return RegistryStats{Acquires: r.acquires.Load(), Waited: r.waited.Load()}
}
