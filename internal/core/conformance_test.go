package core_test

import (
	"testing"

	"mwllsc/internal/core"
	"mwllsc/internal/mem"
	"mwllsc/internal/mwobj"
	"mwllsc/internal/mwtest"
)

// The paper's algorithm passes the same conformance suite as every
// baseline, on both single-word substrates.
func TestCoreConformanceTagged(t *testing.T) {
	mwtest.RunConformance(t, func(n, w int, initial []uint64) (mwobj.MW, error) {
		return core.New(mem.NewReal(n, mem.SubstrateTagged), n, w, initial, nil)
	})
}

func TestCoreConformancePtr(t *testing.T) {
	mwtest.RunConformance(t, func(n, w int, initial []uint64) (mwobj.MW, error) {
		return core.New(mem.NewReal(n, mem.SubstratePtr), n, w, initial, nil)
	})
}
