package core

import (
	"fmt"
	"sync"
	"testing"

	"mwllsc/internal/mem"
)

// TestStressLargeConfigs runs the counter invariant at scales beyond the
// regular tests (more processes, wider values, both substrates). Skipped
// with -short.
func TestStressLargeConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	configs := []struct {
		n, w, ops int
		substrate mem.Substrate
	}{
		{32, 8, 300, mem.SubstrateTagged},
		{16, 64, 300, mem.SubstrateTagged},
		{8, 256, 200, mem.SubstrateTagged},
		{32, 8, 300, mem.SubstratePtr},
		{4, 1024, 100, mem.SubstrateTagged},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("n%d_w%d_%s", cfg.n, cfg.w, cfg.substrate), func(t *testing.T) {
			t.Parallel()
			var stats Stats
			o, err := New(mem.NewReal(cfg.n, cfg.substrate), cfg.n, cfg.w, make([]uint64, cfg.w), &stats)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			successes := make([]int64, cfg.n)
			for p := 0; p < cfg.n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					v := make([]uint64, cfg.w)
					next := make([]uint64, cfg.w)
					for i := 0; i < cfg.ops; i++ {
						o.LL(p, v)
						for j := 1; j < cfg.w; j++ {
							if v[j] != v[0] {
								t.Errorf("p%d: torn read at word %d", p, j)
								return
							}
						}
						for j := range next {
							next[j] = v[0] + 1
						}
						if o.SC(p, next) {
							successes[p]++
						}
					}
				}(p)
			}
			wg.Wait()
			var total int64
			for _, s := range successes {
				total += s
			}
			final := make([]uint64, cfg.w)
			o.LL(0, final)
			if int64(final[0]) != total {
				t.Fatalf("final %d != %d successful SCs", final[0], total)
			}
			snap := stats.Snapshot()
			if snap.SCSuccess != total {
				t.Fatalf("stats disagree: %d vs %d", snap.SCSuccess, total)
			}
		})
	}
}
