// Package core implements the paper's contribution: a wait-free, linearizable
// N-process W-word LL/SC/VL object built from single-word LL/SC/VL objects
// and safe registers, with O(W)-time LL and SC, O(1)-time VL, and O(NW)
// space (Figure 2 of Jayanti & Petrovic, "Efficient Wait-Free Implementation
// of Multiword LL/SC Variables", TR2004-523 / ICDCS 2005).
//
// # Shared variables (paper §2.1)
//
//   - BUF[0..3N-1]: 3N W-word buffers. 2N of them hold the 2N most recent
//     values of the object; the other N are owned by processes, one each.
//   - X = (buf, seq): the tag of the current value — the buffer holding it
//     and its sequence number. seq increases by 1 (mod 2N) with every
//     successful SC, and the buffer holding the current value is not reused
//     until 2N more successful SCs occur.
//   - Bank[0..2N-1]: Bank[j] is the buffer holding the value written by the
//     most recent successful SC with sequence number j.
//   - Help[0..N-1]: Help[p] = (helpme, buf) coordinates p with its helpers.
//
// # Helping (paper §2.2)
//
// An LL by p announces itself, then reads the current buffer. If the buffer
// is overwritten while p reads it, at least 2N successful SCs have occurred,
// and the round-robin helping rule (the SC moving the sequence number from
// s to s+1 first offers its buffer — which holds a valid value — to process
// s mod N) guarantees some process handed p a valid value before p finished
// reading. Either way p holds a valid value after one O(W) pass.
//
// Line numbers in comments refer to Figure 2 of the paper.
package core

import (
	"fmt"

	"mwllsc/internal/mem"
	"mwllsc/internal/mwobj"
)

// Object is the W-word LL/SC/VL variable. Create it with New; drive each
// process id from at most one goroutine at a time.
type Object struct {
	n, w int

	x    mem.Word   // X = (buf, seq)
	bank []mem.Word // Bank[0..2N-1]
	help []mem.Word // Help[0..N-1] = (helpme, buf)
	buf  mem.Buffers

	local []localState

	memory mem.Memory
	traced bool
	stats  *Stats
	debug  Debug

	geom Geometry // packing geometry for X and Help values
}

// Debug deliberately disables parts of the algorithm. It exists solely as a
// negative control for the verification harness (package sim): a harness
// that cannot catch these mutations would be vacuous. Production code must
// always use the zero value.
type Debug struct {
	// SkipHelping omits Lines 14-16 of SC (the buffer handoff). Starved
	// readers then return torn values, which the linearizability checker
	// and Lemma 2 (S1) checker must detect.
	SkipHelping bool
	// SkipBankFix omits Lines 12-13 of SC (the Bank repair). Invariant
	// (I2) must then be violated as soon as two SCs race.
	SkipBankFix bool
	// SkipAnnounce omits Line 1 of LL (the help announcement). The LL
	// then mistakes stale Help contents for a handoff, which the checkers
	// must flag.
	SkipAnnounce bool
}

// localState is the paper's per-process persistent state (mybuf_p, x_p),
// padded so adjacent processes do not share a cache line.
type localState struct {
	mybuf int    // index of the buffer currently owned by this process
	x     uint64 // packed (buf, seq) read from X by the latest LL
	_     [48]byte
}

// New creates the object for n processes and w-word values, with the given
// initial value (len(initial) must be w), using m to allocate the shared
// variables. stats may be nil to disable counting.
func New(m mem.Memory, n, w int, initial []uint64, stats *Stats) (*Object, error) {
	return NewDebug(m, n, w, initial, stats, Debug{})
}

// NewDebug is New with parts of the algorithm switched off as a negative
// control for the verification harness; see Debug. Never use outside tests.
func NewDebug(m mem.Memory, n, w int, initial []uint64, stats *Stats, debug Debug) (*Object, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: n must be >= 1, got %d", n)
	}
	if w < 1 {
		return nil, fmt.Errorf("core: w must be >= 1, got %d", w)
	}
	if len(initial) != w {
		return nil, fmt.Errorf("core: initial value has %d words, want %d", len(initial), w)
	}
	o := &Object{
		n:      n,
		w:      w,
		bank:   make([]mem.Word, 2*n),
		help:   make([]mem.Word, n),
		local:  make([]localState, n),
		memory: m,
		traced: m.Tracing(),
		stats:  stats,
		debug:  debug,
		geom:   Geom(n),
	}

	// Initialization (paper Figure 2): X = (0, 0); BUF[0] = initial value;
	// Bank[k] = k; mybuf_p = 2N + p; Help[p] = (0, _).
	o.x = m.NewWord(mem.WordX, 0, o.geom.XValueBits(), o.geom.PackX(0, 0))
	for k := 0; k < 2*n; k++ {
		o.bank[k] = m.NewWord(mem.WordBank, k, o.geom.BufBits, uint64(k))
	}
	for p := 0; p < n; p++ {
		o.help[p] = m.NewWord(mem.WordHelp, p, o.geom.HelpValueBits(), o.geom.PackHelp(0, 0))
		o.local[p].mybuf = 2*n + p
	}
	o.buf = m.NewBuffers(3*n, w)
	o.buf.WriteBuf(0, 0, initial)
	return o, nil
}

// N implements mwobj.MW.
func (o *Object) N() int { return o.n }

// W implements mwobj.MW.
func (o *Object) W() int { return o.w }

// LL performs procedure LL(p, O, retval) (Figure 2, Lines 1-11): it stores
// a valid value of the object into retval and arranges that p's subsequent
// SC or VL succeeds iff that value is still current (obligations O1 and O2,
// paper §2.4). len(retval) must equal W. Runs in O(W) steps.
func (o *Object) LL(p int, retval []uint64) {
	if len(retval) != o.w {
		panic(fmt.Sprintf("core: LL retval has %d words, want %d", len(retval), o.w))
	}
	lp := &o.local[p]
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvLLStart, Arg: lp.mybuf})
	}

	// Line 1: announce, seeking help: Help[p] = (1, mybuf_p).
	if !o.debug.SkipAnnounce {
		o.help[p].Write(p, o.geom.PackHelp(1, lp.mybuf))
	}
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvLLAnnounced, Arg: lp.mybuf})
	}

	// Line 2: x_p = LL(X).
	lp.x = o.x.LL(p)
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvLLReadX})
	}
	// Line 3: copy BUF[x_p.buf] into retval.
	o.buf.ReadBuf(p, o.geom.XBuf(lp.x), retval)

	// Line 4: if LL(Help[p]) == (0, b), we were helped: the copy above may
	// be torn (>= 2N successful SCs intervened), but BUF[b] holds a valid
	// value handed to us by a helper.
	if h := o.help[p].LL(p); o.geom.HelpFlag(h) == 0 {
		if o.traced {
			o.memory.Trace(p, mem.Event{Kind: mem.EvLLCheckedHelp, Arg: 1})
		}
		if o.stats != nil {
			o.stats.LLHelped.Add(1)
		}
		// Line 5: retry once for the *current* value: x_p = LL(X).
		lp.x = o.x.LL(p)
		// Line 6: copy BUF[x_p.buf] into retval.
		o.buf.ReadBuf(p, o.geom.XBuf(lp.x), retval)
		// Line 7: if X moved during Lines 5-6, the copy cannot be trusted
		// — but then the helper's value satisfies both obligations
		// (the subsequent SC will fail anyway), so return it instead.
		if !o.x.VL(p) {
			o.buf.ReadBuf(p, o.geom.HelpBuf(h), retval)
		}
	} else if o.traced {
		// Not helped: by Lemma 4, X changed at most 2N-1 times between
		// Lines 2 and 4, so the Line 3 copy is a valid value.
		o.memory.Trace(p, mem.Event{Kind: mem.EvLLCheckedHelp, Arg: 0})
	}

	// Lines 8-9: withdraw the request for help. If the SC fails, somebody
	// helped us between Lines 8 and 9 and Help[p] already reads (0, _).
	if h := o.help[p].LL(p); o.geom.HelpFlag(h) == 1 {
		o.help[p].SC(p, o.geom.PackHelp(0, o.geom.HelpBuf(h)))
	}
	// Line 10: settle ownership: either we reclaimed our own buffer (our
	// Line 9 SC won) or we own the buffer a helper handed us.
	lp.mybuf = o.geom.HelpBuf(o.help[p].Read(p))
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvLLWithdrawn, Arg: lp.mybuf})
	}

	// Line 11: store the return value into our own buffer; a subsequent SC
	// hands this buffer (holding a valid value) to a process needing help.
	o.buf.WriteBuf(p, lp.mybuf, retval)

	if o.stats != nil {
		o.stats.LLTotal.Add(1)
	}
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvLLDone, Arg: lp.mybuf})
	}
}

// SC performs procedure SC(p, O, v) (Figure 2, Lines 12-22): it writes v
// and returns true iff no process performed a successful SC since p's
// latest LL. len(v) must equal W. Runs in O(W) steps.
func (o *Object) SC(p int, v []uint64) bool {
	if len(v) != o.w {
		panic(fmt.Sprintf("core: SC value has %d words, want %d", len(v), o.w))
	}
	lp := &o.local[p]
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvSCStart, Arg: lp.mybuf})
	}
	s := o.geom.XSeq(lp.x)
	b := uint64(o.geom.XBuf(lp.x))

	// Lines 12-13: ensure Bank[s] records the buffer holding the value of
	// sequence number s (the SC that installed it may not have done so
	// yet). The VL(X) confirms (buf, seq) = (b, s) is still current.
	if !o.debug.SkipBankFix && o.bank[s].LL(p) != b && o.x.VL(p) {
		if o.stats != nil {
			o.stats.BankFixes.Add(1)
		}
		o.bank[s].SC(p, b)
	}

	// Lines 14-16: offer help to process s mod N — the process whose turn
	// it is as the sequence number moves from s to s+1. Our buffer holds a
	// valid value (Line 11 of our latest LL); VL(X) makes sure that value
	// is still current at the moment of the handoff.
	q := s % o.n
	if h := o.help[q].LL(p); !o.debug.SkipHelping && o.geom.HelpFlag(h) == 1 && o.x.VL(p) {
		if o.help[q].SC(p, o.geom.PackHelp(0, lp.mybuf)) {
			// Line 16: the handoff succeeded; we exchanged buffers with q.
			lp.mybuf = o.geom.HelpBuf(h)
			if o.stats != nil {
				o.stats.Handoffs.Add(1)
			}
			if o.traced {
				o.memory.Trace(p, mem.Event{Kind: mem.EvSCHandoff, Arg: lp.mybuf})
			}
		}
	}

	// Line 17: write the proposed value into our buffer.
	o.buf.WriteBuf(p, lp.mybuf, v)
	// Line 18: e = Bank[(s+1) mod 2N] — the buffer holding the old value
	// with the *next* sequence number, which becomes reusable if we win.
	next := (s + 1) % (2 * o.n)
	e := int(o.bank[next].Read(p))
	// Line 19: attempt to install (mybuf, s+1) as the new tag.
	ok := o.x.SC(p, o.geom.PackX(lp.mybuf, next))
	if o.stats != nil {
		o.stats.SCTotal.Add(1)
	}
	if ok {
		// Line 20: our buffer now holds the current value; take ownership
		// of the expired buffer e instead.
		lp.mybuf = e
		if o.stats != nil {
			o.stats.SCSuccess.Add(1)
		}
		if o.traced {
			o.memory.Trace(p, mem.Event{Kind: mem.EvSCPublished, Arg: lp.mybuf})
			o.memory.Trace(p, mem.Event{Kind: mem.EvSCDone, Arg: 1})
		}
		return true // Line 21
	}
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvSCDone, Arg: 0})
	}
	return false // Line 22
}

// VL performs procedure VL(p, O) (Figure 2, Line 23): it returns true iff
// no process performed a successful SC since p's latest LL. Runs in O(1)
// steps.
func (o *Object) VL(p int) bool {
	if o.traced {
		o.memory.Trace(p, mem.Event{Kind: mem.EvVLStart})
	}
	ok := o.x.VL(p)
	if o.traced {
		arg := 0
		if ok {
			arg = 1
		}
		o.memory.Trace(p, mem.Event{Kind: mem.EvVLDone, Arg: arg})
	}
	return ok
}

// Space implements mwobj.Spacer. Paper accounting matches Theorem 1:
// 3N·W register words and 3N+1 single-word LL/SC objects. PhysBytes also
// charges per-process link contexts and local state.
func (o *Object) Space() mwobj.Space {
	s := mwobj.Space{
		RegisterWords: int64(3*o.n) * int64(o.w),
		LLSCWords:     int64(3*o.n) + 1,
	}
	s.PhysBytes = physBytes(o.buf) + physBytes(o.x) + int64(len(o.local))*64
	for _, w := range o.bank {
		s.PhysBytes += physBytes(w)
	}
	for _, w := range o.help {
		s.PhysBytes += physBytes(w)
	}
	return s
}

// physBytes asks a substrate piece for its physical size, estimating one
// word if it cannot say.
func physBytes(v any) int64 {
	if pb, ok := v.(mwobj.PhysByteser); ok {
		return pb.PhysBytes()
	}
	return 8
}

var _ mwobj.MW = (*Object)(nil)
var _ mwobj.Spacer = (*Object)(nil)
