package core

import (
	"fmt"
	"sync"
	"testing"

	"mwllsc/internal/mem"
)

func newObject(t *testing.T, n, w int, initial []uint64) *Object {
	t.Helper()
	o, err := New(mem.NewReal(n, mem.SubstrateTagged), n, w, initial, nil)
	if err != nil {
		t.Fatalf("New(n=%d, w=%d): %v", n, w, err)
	}
	return o
}

func words(vs ...uint64) []uint64 { return vs }

func TestNewValidation(t *testing.T) {
	m := mem.NewReal(2, mem.SubstrateTagged)
	cases := []struct {
		name    string
		n, w    int
		initial []uint64
	}{
		{"n zero", 0, 2, words(0, 0)},
		{"w zero", 2, 0, nil},
		{"initial short", 2, 3, words(0, 0)},
		{"initial long", 2, 1, words(0, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(m, tc.n, tc.w, tc.initial, nil); err == nil {
				t.Fatalf("New(n=%d, w=%d, len(init)=%d) succeeded, want error",
					tc.n, tc.w, len(tc.initial))
			}
		})
	}
}

func TestInitialValue(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		for _, w := range []int{1, 4, 7} {
			t.Run(fmt.Sprintf("n%d_w%d", n, w), func(t *testing.T) {
				initial := make([]uint64, w)
				for i := range initial {
					initial[i] = uint64(100 + i)
				}
				o := newObject(t, n, w, initial)
				got := make([]uint64, w)
				o.LL(0, got)
				for i := range got {
					if got[i] != initial[i] {
						t.Fatalf("word %d = %d, want %d", i, got[i], initial[i])
					}
				}
			})
		}
	}
}

func TestSequentialLLSCVL(t *testing.T) {
	o := newObject(t, 2, 3, words(1, 2, 3))
	v := make([]uint64, 3)

	o.LL(0, v)
	if !o.VL(0) {
		t.Fatal("VL after quiet LL = false, want true")
	}
	if !o.SC(0, words(4, 5, 6)) {
		t.Fatal("SC after quiet LL failed, want success")
	}

	o.LL(1, v)
	if v[0] != 4 || v[1] != 5 || v[2] != 6 {
		t.Fatalf("LL = %v, want [4 5 6]", v)
	}

	// Process 0's link was consumed by its own successful SC.
	if o.VL(0) {
		t.Fatal("VL(0) after own successful SC = true, want false")
	}
	if o.SC(0, words(7, 8, 9)) {
		t.Fatal("SC(0) without fresh LL succeeded, want failure")
	}

	// Process 1's link is still live; its SC must succeed.
	if !o.SC(1, words(7, 8, 9)) {
		t.Fatal("SC(1) after uninterfered LL failed, want success")
	}
	o.LL(0, v)
	if v[0] != 7 || v[1] != 8 || v[2] != 9 {
		t.Fatalf("LL = %v, want [7 8 9]", v)
	}
}

func TestSCFailsAfterInterferingSC(t *testing.T) {
	o := newObject(t, 3, 2, words(0, 0))
	v := make([]uint64, 2)
	o.LL(0, v)
	o.LL(1, v)
	if !o.SC(1, words(10, 10)) {
		t.Fatal("SC(1) failed")
	}
	if o.VL(0) {
		t.Fatal("VL(0) after interfering SC = true, want false")
	}
	if o.SC(0, words(20, 20)) {
		t.Fatal("SC(0) after interfering SC succeeded, want failure")
	}
	o.LL(2, v)
	if v[0] != 10 || v[1] != 10 {
		t.Fatalf("value = %v, want [10 10]", v)
	}
}

func TestFailedSCLeavesValueUnchanged(t *testing.T) {
	o := newObject(t, 2, 4, words(1, 1, 1, 1))
	v := make([]uint64, 4)
	o.LL(0, v)
	o.LL(1, v)
	if !o.SC(0, words(2, 2, 2, 2)) {
		t.Fatal("SC(0) failed")
	}
	if o.SC(1, words(3, 3, 3, 3)) {
		t.Fatal("SC(1) succeeded, want failure")
	}
	o.LL(0, v)
	for i, x := range v {
		if x != 2 {
			t.Fatalf("word %d = %d, want 2 (failed SC must not write)", i, x)
		}
	}
}

func TestRepeatedLLRefreshesLink(t *testing.T) {
	o := newObject(t, 2, 1, words(0))
	v := make([]uint64, 1)
	for i := 0; i < 10; i++ {
		o.LL(0, v)
		if v[0] != uint64(i) {
			t.Fatalf("round %d: LL = %d, want %d", i, v[0], i)
		}
		if !o.SC(0, words(uint64(i+1))) {
			t.Fatalf("round %d: SC failed", i)
		}
	}
}

func TestSingleProcessObject(t *testing.T) {
	// N=1 exercises the smallest geometry: 2 sequence numbers, 3 buffers.
	o := newObject(t, 1, 2, words(5, 5))
	v := make([]uint64, 2)
	for i := 0; i < 100; i++ {
		o.LL(0, v)
		if v[0] != v[1] {
			t.Fatalf("inconsistent words %v", v)
		}
		if !o.SC(0, words(v[0]+1, v[1]+1)) {
			t.Fatalf("round %d: SC failed", i)
		}
	}
	o.LL(0, v)
	if v[0] != 105 {
		t.Fatalf("final value %d, want 105", v[0])
	}
}

func TestLLPanicsOnWrongWidth(t *testing.T) {
	o := newObject(t, 2, 3, words(0, 0, 0))
	assertPanics(t, "LL short", func() { o.LL(0, make([]uint64, 2)) })
	assertPanics(t, "SC long", func() { o.SC(0, make([]uint64, 4)) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestConcurrentCounterInvariant is the defining end-to-end test of LL/SC
// semantics: every process runs LL; SC(value+1) loops, with the value
// replicated across all W words. Because a successful SC must have linked
// the immediately preceding value, the final counter must equal the total
// number of successful SCs, and every LL must observe all W words equal.
func TestConcurrentCounterInvariant(t *testing.T) {
	configs := []struct{ n, w, ops int }{
		{1, 1, 4000},
		{2, 1, 4000},
		{2, 8, 3000},
		{4, 4, 2000},
		{8, 16, 1000},
		{16, 3, 500},
	}
	for _, cfg := range configs {
		t.Run(fmt.Sprintf("n%d_w%d", cfg.n, cfg.w), func(t *testing.T) {
			o := newObject(t, cfg.n, cfg.w, make([]uint64, cfg.w))
			var (
				wg        sync.WaitGroup
				successes = make([]int64, cfg.n)
			)
			for p := 0; p < cfg.n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					v := make([]uint64, cfg.w)
					next := make([]uint64, cfg.w)
					for i := 0; i < cfg.ops; i++ {
						o.LL(p, v)
						for j := 1; j < cfg.w; j++ {
							if v[j] != v[0] {
								t.Errorf("p%d: torn LL: word %d = %d, word 0 = %d",
									p, j, v[j], v[0])
								return
							}
						}
						for j := range next {
							next[j] = v[0] + 1
						}
						if o.SC(p, next) {
							successes[p]++
						}
					}
				}(p)
			}
			wg.Wait()
			var total int64
			for _, s := range successes {
				total += s
			}
			final := make([]uint64, cfg.w)
			o.LL(0, final)
			if int64(final[0]) != total {
				t.Fatalf("final counter = %d, want %d successful SCs", final[0], total)
			}
			if total == 0 {
				t.Fatal("no SC succeeded at all")
			}
		})
	}
}

// TestConcurrentDistinctPatterns has each successful SC write a pattern
// derived from a fresh id so any buffer mix-up or stale read surfaces as a
// pattern violation: word i must equal base+i for some base that was
// actually written.
func TestConcurrentDistinctPatterns(t *testing.T) {
	const (
		n   = 8
		w   = 8
		ops = 1500
	)
	o := newObject(t, n, w, patternOf(0, w))
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, w)
			for i := 0; i < ops; i++ {
				o.LL(p, v)
				base := v[0]
				for j := range v {
					if v[j] != base+uint64(j) {
						t.Errorf("p%d: non-pattern value at word %d: %v", p, j, v)
						return
					}
				}
				id := uint64(p*ops+i+1) * uint64(w+1)
				o.SC(p, patternOf(id, w))
			}
		}(p)
	}
	wg.Wait()
}

func patternOf(base uint64, w int) []uint64 {
	v := make([]uint64, w)
	for i := range v {
		v[i] = base + uint64(i)
	}
	return v
}

// TestVLAgreesWithSC: when VL returns false, the subsequent SC (with no
// LL in between) must fail.
func TestVLFalseImpliesSCFails(t *testing.T) {
	const n = 4
	o := newObject(t, n, 2, words(0, 0))
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			v := make([]uint64, 2)
			for i := 0; i < 2000; i++ {
				o.LL(p, v)
				valid := o.VL(p)
				ok := o.SC(p, words(v[0]+1, v[1]+1))
				if !valid && ok {
					t.Errorf("p%d: SC succeeded after VL returned false", p)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestStatsCounting(t *testing.T) {
	var st Stats
	o, err := New(mem.NewReal(2, mem.SubstrateTagged), 2, 2, words(0, 0), &st)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]uint64, 2)
	o.LL(0, v)
	o.SC(0, words(1, 1))
	o.LL(0, v)
	o.SC(0, words(2, 2))
	o.LL(1, v)
	o.VL(1)

	snap := st.Snapshot()
	if snap.LLTotal != 3 {
		t.Errorf("LLTotal = %d, want 3", snap.LLTotal)
	}
	if snap.SCTotal != 2 || snap.SCSuccess != 2 {
		t.Errorf("SC counters = %d/%d, want 2/2", snap.SCSuccess, snap.SCTotal)
	}
	if snap.SuccessFraction() != 1 {
		t.Errorf("SuccessFraction = %v, want 1", snap.SuccessFraction())
	}
	if snap.HelpedFraction() != 0 {
		t.Errorf("HelpedFraction = %v, want 0 in sequential run", snap.HelpedFraction())
	}
}

func TestSpaceAccounting(t *testing.T) {
	for _, cfg := range []struct{ n, w int }{{1, 1}, {4, 8}, {16, 64}} {
		o := newObject(t, cfg.n, cfg.w, make([]uint64, cfg.w))
		s := o.Space()
		wantRegs := int64(3*cfg.n) * int64(cfg.w)
		if s.RegisterWords != wantRegs {
			t.Errorf("n=%d w=%d: RegisterWords = %d, want %d", cfg.n, cfg.w, s.RegisterWords, wantRegs)
		}
		wantLLSC := int64(3*cfg.n) + 1
		if s.LLSCWords != wantLLSC {
			t.Errorf("n=%d w=%d: LLSCWords = %d, want %d", cfg.n, cfg.w, s.LLSCWords, wantLLSC)
		}
		if s.PhysBytes < wantRegs*8 {
			t.Errorf("n=%d w=%d: PhysBytes = %d below register floor %d",
				cfg.n, cfg.w, s.PhysBytes, wantRegs*8)
		}
	}
}

// TestSpaceLinearInN is the shape check behind the paper's headline: for
// fixed W, doubling N must roughly double the paper-accounting footprint
// (it is exactly linear), never quadruple it.
func TestSpaceLinearInN(t *testing.T) {
	const w = 16
	prev := int64(0)
	for _, n := range []int{2, 4, 8, 16, 32} {
		o := newObject(t, n, w, make([]uint64, w))
		now := o.Space().PaperWords()
		if prev != 0 {
			ratio := float64(now) / float64(prev)
			if ratio < 1.8 || ratio > 2.2 {
				t.Errorf("paper words ratio at n=%d: %.2f, want ~2 (linear in N)", n, ratio)
			}
		}
		prev = now
	}
}
