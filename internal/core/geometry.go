package core

import "math/bits"

// Geometry fixes how the algorithm packs its composite shared values into
// single words for a given process count: X = (buf, seq) and
// Help[p] = (helpme, buf). The simulator's invariant checkers use it to
// decode raw word values; the Object uses it internally.
type Geometry struct {
	// N is the process count.
	N int
	// BufBits is the width of a buffer index in 0..3N-1.
	BufBits uint
	// SeqBits is the width of a sequence number in 0..2N-1.
	SeqBits uint
}

// Geom returns the packing geometry for n processes.
func Geom(n int) Geometry {
	return Geometry{
		N:       n,
		BufBits: uint(bits.Len(uint(3*n - 1))),
		SeqBits: uint(bits.Len(uint(2*n - 1))),
	}
}

// XValueBits returns the value width needed for the X word.
func (g Geometry) XValueBits() uint { return g.BufBits + g.SeqBits }

// HelpValueBits returns the value width needed for a Help word.
func (g Geometry) HelpValueBits() uint { return g.BufBits + 1 }

// PackX packs (buf, seq) into an X word value.
func (g Geometry) PackX(buf, seq int) uint64 {
	return uint64(buf)<<g.SeqBits | uint64(seq)
}

// XBuf extracts the buffer index from an X word value.
func (g Geometry) XBuf(x uint64) int { return int(x >> g.SeqBits) }

// XSeq extracts the sequence number from an X word value.
func (g Geometry) XSeq(x uint64) int { return int(x & (1<<g.SeqBits - 1)) }

// PackHelp packs (helpme, buf) into a Help word value.
func (g Geometry) PackHelp(helpme, buf int) uint64 {
	return uint64(helpme)<<g.BufBits | uint64(buf)
}

// HelpFlag extracts the helpme flag from a Help word value.
func (g Geometry) HelpFlag(h uint64) int { return int(h >> g.BufBits) }

// HelpBuf extracts the buffer index from a Help word value.
func (g Geometry) HelpBuf(h uint64) int { return int(h & (1<<g.BufBits - 1)) }
