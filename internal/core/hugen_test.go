package core

import (
	"sync"
	"testing"

	"mwllsc/internal/mem"
)

// TestHugeProcessCount exercises the packing geometry at scales where the
// tagged substrate's budget gets tight (N=1200: the X word needs 24 value
// bits plus 11 pid bits, leaving fewer than 32 counter bits) and the Real
// backend silently falls back to the pointer substrate for words that no
// longer fit. Only a handful of process ids are actually driven; the
// object must still be correct. (Per-(process,word) link contexts make
// much larger N memory-heavy — an O(N²) substrate term on top of the
// paper's O(NW).)
func TestHugeProcessCount(t *testing.T) {
	const (
		n       = 1200
		w       = 4
		drivers = 8
		ops     = 300
	)
	r := mem.NewReal(n, mem.SubstrateTagged)
	o, err := New(r, n, w, make([]uint64, w), nil)
	if err != nil {
		t.Fatal(err)
	}
	g := Geom(n)
	if g.BufBits < 12 || g.SeqBits < 12 {
		t.Fatalf("unexpected geometry for n=%d: %+v", n, g)
	}

	var wg sync.WaitGroup
	successes := make([]int64, drivers)
	for i := 0; i < drivers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := i * (n / drivers) // spread driven pids across the range
			v := make([]uint64, w)
			next := make([]uint64, w)
			for k := 0; k < ops; k++ {
				o.LL(p, v)
				for j := 1; j < w; j++ {
					if v[j] != v[0] {
						t.Errorf("driver %d: torn read %v", i, v)
						return
					}
				}
				for j := range next {
					next[j] = v[0] + 1
				}
				if o.SC(p, next) {
					successes[i]++
				}
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, s := range successes {
		total += s
	}
	final := make([]uint64, w)
	o.LL(0, final)
	if int64(final[0]) != total {
		t.Fatalf("final %d != %d successes", final[0], total)
	}
	// At n=1200 the X word's counter space falls below the tagged
	// minimum, so the fallback must have engaged.
	if r.FellBack() == 0 {
		t.Fatal("expected tagged->ptr fallback at n=1200, got none")
	}
}

// TestGeometryWidths pins the packing widths across representative sizes.
func TestGeometryWidths(t *testing.T) {
	cases := []struct {
		n                int
		bufBits, seqBits uint
	}{
		{1, 2, 1},
		{2, 3, 2},
		{8, 5, 4},
		{128, 9, 8},
		{1024, 12, 11},
	}
	for _, tc := range cases {
		g := Geom(tc.n)
		if g.BufBits != tc.bufBits || g.SeqBits != tc.seqBits {
			t.Errorf("Geom(%d) = {%d,%d}, want {%d,%d}",
				tc.n, g.BufBits, g.SeqBits, tc.bufBits, tc.seqBits)
		}
		// Round-trip extremes through the packers.
		maxBuf, maxSeq := 3*tc.n-1, 2*tc.n-1
		x := g.PackX(maxBuf, maxSeq)
		if g.XBuf(x) != maxBuf || g.XSeq(x) != maxSeq {
			t.Errorf("n=%d: X round trip failed: buf %d seq %d", tc.n, g.XBuf(x), g.XSeq(x))
		}
		h := g.PackHelp(1, maxBuf)
		if g.HelpFlag(h) != 1 || g.HelpBuf(h) != maxBuf {
			t.Errorf("n=%d: Help round trip failed", tc.n)
		}
	}
}
