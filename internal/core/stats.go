package core

import "sync/atomic"

// Stats counts algorithm events across all processes of one Object; pass a
// Stats to New to enable. All counters are safe for concurrent use and for
// reading while the object is in use. Stats quantify the helping mechanism
// (paper §2.2-§2.3) for experiment E4.
type Stats struct {
	// LLTotal counts completed LL operations.
	LLTotal atomic.Int64
	// LLHelped counts LL operations that found themselves helped at
	// Line 4, i.e. at least 2N successful SCs overlapped their first
	// buffer read.
	LLHelped atomic.Int64
	// SCTotal counts completed SC operations (successful or not).
	SCTotal atomic.Int64
	// SCSuccess counts successful SC operations.
	SCSuccess atomic.Int64
	// Handoffs counts successful buffer handoffs at Line 15 (an SC
	// donating its buffer to an announced LL).
	Handoffs atomic.Int64
	// BankFixes counts Line 13 executions (an SC repairing a Bank entry
	// its predecessor had not yet recorded).
	BankFixes atomic.Int64
}

// Snapshot returns a plain-struct copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		LLTotal:   s.LLTotal.Load(),
		LLHelped:  s.LLHelped.Load(),
		SCTotal:   s.SCTotal.Load(),
		SCSuccess: s.SCSuccess.Load(),
		Handoffs:  s.Handoffs.Load(),
		BankFixes: s.BankFixes.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	LLTotal   int64
	LLHelped  int64
	SCTotal   int64
	SCSuccess int64
	Handoffs  int64
	BankFixes int64
}

// HelpedFraction returns LLHelped/LLTotal, or 0 when no LLs completed.
func (s StatsSnapshot) HelpedFraction() float64 {
	if s.LLTotal == 0 {
		return 0
	}
	return float64(s.LLHelped) / float64(s.LLTotal)
}

// SuccessFraction returns SCSuccess/SCTotal, or 0 when no SCs completed.
func (s StatsSnapshot) SuccessFraction() float64 {
	if s.SCTotal == 0 {
		return 0
	}
	return float64(s.SCSuccess) / float64(s.SCTotal)
}
