package core

import (
	"math/rand"
	"testing"

	"mwllsc/internal/mem"
)

// oracleModel is the trivial sequential LL/SC/VL specification: the value,
// and per process whether its link is live.
type oracleModel struct {
	value []uint64
	links map[int]bool
}

func newOracle(initial []uint64) *oracleModel {
	v := make([]uint64, len(initial))
	copy(v, initial)
	return &oracleModel{value: v, links: map[int]bool{}}
}

func (m *oracleModel) ll(p int) []uint64 {
	m.links[p] = true
	out := make([]uint64, len(m.value))
	copy(out, m.value)
	return out
}

func (m *oracleModel) sc(p int, v []uint64) bool {
	if !m.links[p] {
		return false
	}
	copy(m.value, v)
	m.links = map[int]bool{} // a successful SC kills every link
	return true
}

func (m *oracleModel) vl(p int) bool { return m.links[p] }

// TestSequentialOracleEquivalence interleaves random LL/SC/VL operations by
// random processes single-threadedly (so the model is exact) and requires
// the implementation to agree with the oracle on every return value, for
// both substrates and many seeds. This pins the full sequential semantics,
// including cross-process link invalidation, in a way individual unit tests
// cannot.
func TestSequentialOracleEquivalence(t *testing.T) {
	for _, substrate := range []mem.Substrate{mem.SubstrateTagged, mem.SubstratePtr} {
		t.Run(substrate.String(), func(t *testing.T) {
			for seed := int64(0); seed < 30; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 1 + rng.Intn(5)
				w := 1 + rng.Intn(6)
				initial := make([]uint64, w)
				for i := range initial {
					initial[i] = uint64(rng.Intn(100))
				}

				obj, err := New(mem.NewReal(n, substrate), n, w, initial, nil)
				if err != nil {
					t.Fatal(err)
				}
				oracle := newOracle(initial)
				buf := make([]uint64, w)

				for step := 0; step < 400; step++ {
					p := rng.Intn(n)
					switch rng.Intn(3) {
					case 0: // LL
						obj.LL(p, buf)
						want := oracle.ll(p)
						for j := range buf {
							if buf[j] != want[j] {
								t.Fatalf("seed %d step %d: LL(p%d) word %d = %d, oracle %d",
									seed, step, p, j, buf[j], want[j])
							}
						}
					case 1: // SC of a fresh random value
						v := make([]uint64, w)
						for j := range v {
							v[j] = uint64(rng.Intn(1000))
						}
						got := obj.SC(p, v)
						want := oracle.sc(p, v)
						if got != want {
							t.Fatalf("seed %d step %d: SC(p%d) = %v, oracle %v",
								seed, step, p, got, want)
						}
					default: // VL
						got := obj.VL(p)
						want := oracle.vl(p)
						if got != want {
							t.Fatalf("seed %d step %d: VL(p%d) = %v, oracle %v",
								seed, step, p, got, want)
						}
					}
				}
			}
		})
	}
}
