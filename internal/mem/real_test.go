package mem

import (
	"sync"
	"testing"
)

func TestRealNewWordSubstrates(t *testing.T) {
	r := NewReal(4, SubstrateTagged)
	w := r.NewWord(WordX, 0, 10, 5)
	if got := w.Read(0); got != 5 {
		t.Fatalf("Read = %d, want 5", got)
	}
	if r.FellBack() != 0 {
		t.Fatalf("unexpected fallback for small config")
	}

	// A value width that starves the tag counter must fall back to Ptr.
	w2 := r.NewWord(WordBank, 0, 60, 1)
	if got := w2.Read(0); got != 1 {
		t.Fatalf("fallback word Read = %d, want 1", got)
	}
	if r.FellBack() != 1 {
		t.Fatalf("FellBack = %d, want 1", r.FellBack())
	}
}

func TestRealNewWordPtrSubstrate(t *testing.T) {
	r := NewReal(2, SubstratePtr)
	w := r.NewWord(WordHelp, 1, 8, 3)
	w.LL(0)
	if !w.SC(0, 200) {
		t.Fatal("SC failed")
	}
	if got := w.Read(1); got != 200 {
		t.Fatalf("Read = %d, want 200", got)
	}
}

func TestRealBuffersRoundTrip(t *testing.T) {
	r := NewReal(2, SubstrateTagged)
	b := r.NewBuffers(3, 4)
	if b.W() != 4 {
		t.Fatalf("W = %d, want 4", b.W())
	}
	src := []uint64{1, 2, 3, 4}
	b.WriteBuf(0, 1, src)
	dst := make([]uint64, 4)
	b.ReadBuf(1, 1, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	// Other buffers stay zero.
	b.ReadBuf(0, 0, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("buffer 0 word %d = %d, want 0", i, v)
		}
	}
	b.ReadBuf(0, 2, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("buffer 2 word %d = %d, want 0", i, v)
		}
	}
}

// TestRealBuffersConcurrentDisjoint writes disjoint buffers from many
// goroutines; with the race detector this validates the flat-atomics layout.
func TestRealBuffersConcurrentDisjoint(t *testing.T) {
	const n, w = 8, 16
	r := NewReal(n, SubstrateTagged)
	b := r.NewBuffers(n, w)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := make([]uint64, w)
			dst := make([]uint64, w)
			for i := 0; i < 500; i++ {
				for j := range src {
					src[j] = uint64(p*1000 + i)
				}
				b.WriteBuf(p, p, src)
				b.ReadBuf(p, p, dst)
				for j := range dst {
					if dst[j] != src[j] {
						t.Errorf("p%d word %d = %d, want %d", p, j, dst[j], src[j])
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestWordKindString(t *testing.T) {
	if WordX.String() != "X" || WordBank.String() != "Bank" || WordHelp.String() != "Help" {
		t.Fatal("WordKind.String mismatch")
	}
	if WordKind(0).String() != "?" {
		t.Fatal("unknown WordKind should stringify to ?")
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{
		EvLLStart, EvLLAnnounced, EvLLWithdrawn, EvLLDone,
		EvSCStart, EvSCHandoff, EvSCPublished, EvSCDone, EvVLStart, EvVLDone,
	}
	seen := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Fatalf("EventKind %d stringifies badly: %q", k, s)
		}
		seen[s] = true
	}
}
