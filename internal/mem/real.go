package mem

import (
	"fmt"
	"sync/atomic"

	"mwllsc/internal/llscword"
)

// Substrate selects how Real memory realizes single-word LL/SC objects.
type Substrate uint8

// Substrate choices; see package llscword for the constructions.
const (
	// SubstrateTagged packs value+tag in one uint64 (no allocation,
	// bounded tag space). Falls back to SubstratePtr per word when the
	// configuration leaves too little tag space.
	SubstrateTagged Substrate = iota + 1
	// SubstratePtr uses CAS on pointers to immutable cells (exact,
	// unbounded, allocates per mutation).
	SubstratePtr
)

// String returns the substrate's name.
func (s Substrate) String() string {
	switch s {
	case SubstrateTagged:
		return "tagged"
	case SubstratePtr:
		return "ptr"
	default:
		return "?"
	}
}

// Real is the production Memory backend: words are llscword objects and
// buffers are flat arrays of per-word atomics. Trace events are discarded.
type Real struct {
	n         int
	substrate Substrate

	// fellBack counts words that requested SubstrateTagged but were given
	// SubstratePtr because the tag space was too small.
	fellBack atomic.Int64
}

// NewReal returns a Real memory for n processes using the given substrate.
func NewReal(n int, substrate Substrate) *Real {
	if n < 1 {
		panic(fmt.Sprintf("mem: n must be >= 1, got %d", n))
	}
	return &Real{n: n, substrate: substrate}
}

// NewWord implements Memory. The X word gets cache-line-padded link
// contexts (it is touched by every operation of every process); Bank and
// Help words get compact contexts.
func (r *Real) NewWord(kind WordKind, idx int, valueBits uint, init uint64) Word {
	padded := kind == WordX
	if r.substrate == SubstrateTagged {
		w, err := llscword.NewTagged(r.n, valueBits, init, padded)
		if err == nil {
			return w
		}
		r.fellBack.Add(1)
	}
	return llscword.NewPtr(r.n, init, padded)
}

// NewBuffers implements Memory.
func (r *Real) NewBuffers(count, w int) Buffers {
	return &realBuffers{w: w, words: make([]atomic.Uint64, count*w)}
}

// Trace implements Memory as a no-op.
func (r *Real) Trace(int, Event) {}

// Tracing implements Memory; Real memory never consumes events.
func (r *Real) Tracing() bool { return false }

// FellBack reports how many words silently used SubstratePtr despite
// SubstrateTagged being requested.
func (r *Real) FellBack() int64 { return r.fellBack.Load() }

var _ Memory = (*Real)(nil)

// realBuffers stores count*w words flat; each buffer b occupies words
// [b*w, (b+1)*w). Per-word atomics make every read/write race-free, which
// is strictly stronger than the safe registers the paper requires.
type realBuffers struct {
	w     int
	words []atomic.Uint64
}

func (b *realBuffers) W() int { return b.w }

func (b *realBuffers) ReadBuf(p, buf int, dst []uint64) {
	base := buf * b.w
	for i := range dst {
		dst[i] = b.words[base+i].Load()
	}
}

func (b *realBuffers) WriteBuf(p, buf int, src []uint64) {
	base := buf * b.w
	for i, v := range src {
		b.words[base+i].Store(v)
	}
}

// PhysBytes reports the buffer array's physical size.
func (b *realBuffers) PhysBytes() int64 { return int64(len(b.words)) * 8 }

var _ Buffers = (*realBuffers)(nil)
