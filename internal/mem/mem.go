// Package mem abstracts the shared-memory primitives the paper's algorithm
// is written against — single-word LL/SC/VL objects and W-word buffers of
// safe registers — behind interfaces, so that one implementation of the
// algorithm runs both on real sync/atomic memory (package mem's Real
// backend, for performance) and on the deterministic simulator (package sim,
// for adversarial-schedule verification).
//
// The Trace hook carries algorithm-level events (operation boundaries,
// buffer-ownership changes) that the simulator's invariant checkers consume;
// the real backend discards them.
package mem

import "mwllsc/internal/llscword"

// Word is a single-word LL/SC/VL/read object; see llscword.Word.
type Word = llscword.Word

// Buffers is an array of fixed-size multi-word buffers of safe registers
// (the paper's BUF[0..count-1], each of W words). The paper requires only
// safe-register semantics per word: a read overlapping a write may return
// anything. The Real backend is stronger (per-word atomic); the simulator
// models the weak semantics faithfully.
type Buffers interface {
	// W returns the number of words per buffer.
	W() int
	// ReadBuf copies buffer b into dst (len(dst) == W), on behalf of
	// process p.
	ReadBuf(p, b int, dst []uint64)
	// WriteBuf copies src (len(src) == W) into buffer b, on behalf of
	// process p.
	WriteBuf(p, b int, src []uint64)
}

// WordKind identifies which of the algorithm's shared variables a word
// realizes; the simulator uses it to key invariant checks.
type WordKind uint8

// Word kinds, one per shared-variable family in Figure 2 of the paper.
const (
	WordX    WordKind = iota + 1 // the tag X = (buf, seq)
	WordBank                     // Bank[idx]
	WordHelp                     // Help[idx]
)

// String returns the paper's name for the kind.
func (k WordKind) String() string {
	switch k {
	case WordX:
		return "X"
	case WordBank:
		return "Bank"
	case WordHelp:
		return "Help"
	default:
		return "?"
	}
}

// Memory is the factory for the shared variables of one multiword object,
// plus the trace sink. Implementations: Real (this package) and sim.Memory.
type Memory interface {
	// NewWord allocates a single-word LL/SC/VL object for n processes
	// holding values of at most valueBits bits, initialized to init.
	// kind/idx identify the variable (e.g. WordBank, 3 for Bank[3]).
	NewWord(kind WordKind, idx int, valueBits uint, init uint64) Word
	// NewBuffers allocates count buffers of w words each, zero-initialized.
	NewBuffers(count, w int) Buffers
	// Trace reports an algorithm-level event by process p. Real memory
	// ignores it; the simulator feeds invariant checkers and step
	// accounting.
	Trace(p int, ev Event)
	// Tracing reports whether Trace consumes events; callers may skip
	// building events when it returns false (keeps the hot path free of
	// interface calls).
	Tracing() bool
}

// EventKind enumerates algorithm-level events emitted by the core
// algorithm via Memory.Trace.
type EventKind uint8

// Trace event kinds. The Arg meaning is given per kind.
const (
	// EvLLStart marks entry into the LL procedure. Arg: current mybuf.
	EvLLStart EventKind = iota + 1
	// EvLLAnnounced marks completion of Line 1 (Help[p] = (1, mybuf)):
	// the paper's "PC in (2..10)" region begins. Arg: announced buffer.
	EvLLAnnounced
	// EvLLReadX marks completion of Line 2 (x_p = LL(X)). Arg: unused.
	// Lemma 4's interval starts here.
	EvLLReadX
	// EvLLCheckedHelp marks completion of the Line 4 check. Arg: 1 if the
	// process found itself helped (took the Lines 5-7 path), else 0.
	// Lemma 4's interval ends here: an unhelped LL must have seen at most
	// 2N-1 changes of X since EvLLReadX.
	EvLLCheckedHelp
	// EvLLWithdrawn marks completion of Line 10: the region ends and p's
	// ownership is settled. Arg: new mybuf.
	EvLLWithdrawn
	// EvLLDone marks return from LL (after Line 11). Arg: mybuf.
	EvLLDone
	// EvSCStart marks entry into the SC procedure. Arg: mybuf.
	EvSCStart
	// EvSCHandoff marks Line 16: p handed its buffer to a helped process
	// and took ownership of d. Arg: new mybuf (d).
	EvSCHandoff
	// EvSCPublished marks a successful Line 19 SC on X plus Line 20.
	// Arg: new mybuf (e).
	EvSCPublished
	// EvSCDone marks return from SC. Arg: 1 if the SC succeeded, else 0.
	EvSCDone
	// EvVLStart marks entry into the VL procedure. Arg: unused.
	EvVLStart
	// EvVLDone marks return from VL. Arg: 1 if VL returned true, else 0.
	EvVLDone
)

// String returns a short name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EvLLStart:
		return "LLStart"
	case EvLLAnnounced:
		return "LLAnnounced"
	case EvLLReadX:
		return "LLReadX"
	case EvLLCheckedHelp:
		return "LLCheckedHelp"
	case EvLLWithdrawn:
		return "LLWithdrawn"
	case EvLLDone:
		return "LLDone"
	case EvSCStart:
		return "SCStart"
	case EvSCHandoff:
		return "SCHandoff"
	case EvSCPublished:
		return "SCPublished"
	case EvSCDone:
		return "SCDone"
	case EvVLStart:
		return "VLStart"
	case EvVLDone:
		return "VLDone"
	default:
		return "?"
	}
}

// Event is one algorithm-level trace event.
type Event struct {
	Kind EventKind
	Arg  int
}
