package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// retireOne runs one synthetic span of the given total through t,
// splitting the time over two stages so stage bookkeeping is visible.
func retireOne(t *Tracer, id uint64, total time.Duration) {
	s := t.Get()
	if s == nil {
		panic("free list dry in test")
	}
	base := time.Now()
	s.Begin(base)
	s.TraceID = id
	s.Op, s.Key, s.Attempts, s.Batch = 3, 42, 1, 4
	s.Stamp(StageDecode, base.Add(total/4))
	s.Stamp(StageExecute, base.Add(3*total/4))
	s.Finish(base.Add(total))
	t.Retire(s)
}

func TestStageSumEqualsTotal(t *testing.T) {
	var s Span
	base := time.Now()
	s.Begin(base)
	s.Stamp(StageDecode, base.Add(10*time.Microsecond))
	s.Stamp(StageQueue, base.Add(15*time.Microsecond))
	s.Stamp(StageAcquire, base.Add(17*time.Microsecond))
	s.Stamp(StageExecute, base.Add(100*time.Microsecond))
	s.Stamp(StagePersist, base.Add(130*time.Microsecond))
	s.Stamp(StageFsync, base.Add(180*time.Microsecond))
	s.Finish(base.Add(200 * time.Microsecond))
	var sum uint64
	for _, d := range s.Stages {
		sum += d
	}
	if sum != s.Total {
		t.Fatalf("stage sum %d != total %d", sum, s.Total)
	}
	if s.Total != uint64(200*time.Microsecond) {
		t.Fatalf("total = %d, want 200us", s.Total)
	}
	if got := s.Stages[StageExecute]; got != uint64(83*time.Microsecond) {
		t.Fatalf("execute stage = %v, want 83us", time.Duration(got))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Span{
		TraceID:  0xdeadbeefcafe,
		Op:       6,
		Sampled:  true,
		Err:      true,
		Attempts: 123456,
		Batch:    64,
		Key:      987,
		Start:    1700000000123456789,
		Total:    42_000,
	}
	for i := range in.Stages {
		in.Stages[i] = uint64(i * 1000)
	}
	var w [spanWords]uint64
	in.encode(&w)
	var out Span
	out.decode(&w)
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestRecentRingNewestFirstAndOverwrite(t *testing.T) {
	tr := New(Config{Recent: 4, SlowN: 2})
	for i := 1; i <= 6; i++ {
		retireOne(tr, uint64(i), time.Duration(i)*time.Millisecond)
	}
	got := tr.Recent(nil, 0)
	if len(got) != 4 {
		t.Fatalf("recent returned %d spans, want 4 (ring capacity)", len(got))
	}
	want := []uint64{6, 5, 4, 3} // newest first; 1 and 2 overwritten
	for i, s := range got {
		if s.TraceID != want[i] {
			t.Fatalf("recent[%d].TraceID = %d, want %d (all: %+v)", i, s.TraceID, want[i], got)
		}
	}
}

func TestFreeListRecyclesWithoutGrowth(t *testing.T) {
	tr := New(Config{Recent: 2, MaxLive: 3})
	for i := 0; i < 100; i++ {
		retireOne(tr, uint64(i), time.Millisecond)
	}
	if st := tr.Stats(); st.Retired != 100 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 100 retired / 0 dropped", st)
	}
	// Drain the free list: exactly MaxLive spans exist, ever.
	var live int
	for tr.Get() != nil {
		live++
	}
	if live != 3 {
		t.Fatalf("free list held %d spans, want MaxLive=3", live)
	}
	if st := tr.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the failed Get)", st.Dropped)
	}
}

func TestSlowWindowKeepsSlowest(t *testing.T) {
	tr := New(Config{SlowN: 3, Recent: 8})
	for _, ms := range []int{5, 1, 9, 2, 7, 3} {
		retireOne(tr, uint64(ms), time.Duration(ms)*time.Millisecond)
	}
	got := tr.Slow(nil)
	if len(got) != 3 {
		t.Fatalf("slow window has %d spans, want 3", len(got))
	}
	want := []uint64{9, 7, 5} // slowest first
	for i, s := range got {
		if s.TraceID != want[i] {
			t.Fatalf("slow[%d].TraceID = %d, want %d", i, s.TraceID, want[i])
		}
	}
}

func TestSlowThresholdLogsStructuredLine(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	tr := New(Config{
		SlowN:         4,
		SlowThreshold: 2 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, strings.TrimSpace(fmt.Sprintf(format, args...)))
			mu.Unlock()
		},
	})
	retireOne(tr, 0xabc, time.Millisecond)   // under threshold: no line
	retireOne(tr, 0xdef, 5*time.Millisecond) // over: one line
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d, want 1: %q", len(lines), lines)
	}
	for _, want := range []string{"slow-op", "trace=0000000000000def", "total=5ms", "decode=", "execute=", "flush="} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("slow-op line missing %q: %s", want, lines[0])
		}
	}
}

func TestExemplarTracksMaxAndResets(t *testing.T) {
	tr := New(Config{Recent: 8, SlowN: 2})
	retireOne(tr, 1, time.Millisecond)
	retireOne(tr, 2, 9*time.Millisecond)
	retireOne(tr, 3, 2*time.Millisecond)
	id, lat := tr.Exemplar()
	if id != 2 || lat != uint64(9*time.Millisecond) {
		t.Fatalf("exemplar = (%d, %v), want trace 2 at 9ms", id, time.Duration(lat))
	}
	if id, _ = tr.Exemplar(); id != 0 {
		t.Fatalf("exemplar did not reset: %d", id)
	}
}

func TestConcurrentRetireAndRead(t *testing.T) {
	// Retirement races /tracez + /slowz readers; under -race this pins
	// that the rings are safe to scrape mid-load.
	tr := New(Config{Recent: 16, SlowN: 4, SlowThreshold: time.Microsecond,
		Logf: func(string, ...any) {}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := tr.Get()
				if s == nil {
					continue
				}
				base := time.Now()
				s.Begin(base)
				s.TraceID = uint64(g)<<32 | uint64(i)
				s.Stamp(StageExecute, base.Add(time.Duration(i%7)*time.Microsecond))
				s.Finish(base.Add(time.Duration(i%11) * time.Microsecond))
				tr.Retire(s)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		tr.Recent(nil, 0)
		tr.Slow(nil)
		tr.Exemplar()
	}
	close(stop)
	wg.Wait()
}

func TestTracezAndSlowzHandlers(t *testing.T) {
	tr := New(Config{Recent: 8, SlowN: 4, SampleN: 64})
	retireOne(tr, 0x1111, 3*time.Millisecond)
	retireOne(tr, 0x2222, time.Millisecond)

	rec := httptest.NewRecorder()
	tr.ServeTracez(rec, httptest.NewRequest("GET", "/tracez", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Fatalf("/tracez content type %q", ct)
	}
	var page struct {
		Kind    string `json:"kind"`
		SampleN uint64 `json:"sample_n"`
		Spans   []struct {
			TraceID string            `json:"trace_id"`
			TotalNS uint64            `json:"total_ns"`
			Stages  map[string]uint64 `json:"stages_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("/tracez JSON: %v\n%s", err, rec.Body)
	}
	if page.Kind != "recent" || page.SampleN != 64 || len(page.Spans) != 2 {
		t.Fatalf("/tracez page = %+v", page)
	}
	if page.Spans[0].TraceID != "0000000000002222" {
		t.Fatalf("/tracez newest first: %+v", page.Spans[0])
	}
	var sum uint64
	for _, d := range page.Spans[0].Stages {
		sum += d
	}
	if len(page.Spans[0].Stages) != NumStages || sum != page.Spans[0].TotalNS {
		t.Fatalf("stage decomposition: stages=%v total=%d", page.Spans[0].Stages, page.Spans[0].TotalNS)
	}

	rec = httptest.NewRecorder()
	tr.ServeSlowz(rec, httptest.NewRequest("GET", "/slowz?format=text", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "slow traces") || !strings.Contains(body, "0000000000001111") {
		t.Fatalf("/slowz text body:\n%s", body)
	}
	if strings.Contains(body, "<") {
		t.Fatalf("/slowz text output contains HTML: %s", body)
	}
}

func TestRetireDoesNotAllocate(t *testing.T) {
	tr := New(Config{Recent: 8, SlowN: 4})
	base := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		s := tr.Get()
		s.Begin(base)
		s.TraceID = 7
		s.Stamp(StageExecute, base.Add(time.Microsecond))
		s.Finish(base.Add(2 * time.Microsecond))
		tr.Retire(s)
	})
	if allocs != 0 {
		t.Fatalf("Get+Retire allocates %.1f/op, want 0", allocs)
	}
}
