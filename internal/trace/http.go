package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// SpanJSON is the JSON shape of one span in /tracez and /slowz.
type SpanJSON struct {
	TraceID  string            `json:"trace_id"` // %016x, grep-able against slow-op log lines
	Op       uint8             `json:"op"`
	Key      uint64            `json:"key"`
	Sampled  bool              `json:"sampled"`
	Err      bool              `json:"err,omitempty"`
	Attempts uint32            `json:"attempts"`
	Batch    uint32            `json:"batch"`
	Start    string            `json:"start"` // RFC3339Nano wall time
	TotalNS  uint64            `json:"total_ns"`
	Stages   map[string]uint64 `json:"stages_ns"`
}

// pageJSON is the top-level /tracez | /slowz JSON document.
type pageJSON struct {
	Kind          string `json:"kind"` // "recent" or "slow"
	SampleN       uint64 `json:"sample_n"`
	SlowThreshold uint64 `json:"slow_threshold_ns"`
	Retired       uint64 `json:"retired"`
	Dropped       uint64 `json:"dropped"`
	// Exemplar links the aggregate latency histograms to a trace: the
	// id of the max-latency span retired since the previous scrape.
	ExemplarID string     `json:"exemplar_trace_id,omitempty"`
	ExemplarNS uint64     `json:"exemplar_ns,omitempty"`
	Spans      []SpanJSON `json:"spans"`
}

func spanJSON(s *Span) SpanJSON {
	stages := make(map[string]uint64, NumStages)
	for i := 0; i < NumStages; i++ {
		stages[StageName(Stage(i))] = s.Stages[i]
	}
	return SpanJSON{
		TraceID:  fmt.Sprintf("%016x", s.TraceID),
		Op:       s.Op,
		Key:      s.Key,
		Sampled:  s.Sampled,
		Err:      s.Err,
		Attempts: s.Attempts,
		Batch:    s.Batch,
		Start:    time.Unix(0, s.Start).UTC().Format(time.RFC3339Nano),
		TotalNS:  s.Total,
		Stages:   stages,
	}
}

// serve renders spans as JSON (the default) or, with ?format=text, as
// an aligned HTML-free text table for humans on a terminal.
func (t *Tracer) serve(w http.ResponseWriter, r *http.Request, kind string, spans []Span) {
	exID, exNS := t.Exemplar()
	st := t.Stats()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s traces: %d span(s)  sample=1/%d  slow-threshold=%s  retired=%d dropped=%d\n",
			kind, len(spans), t.sampleN, time.Duration(t.slowNS), st.Retired, st.Dropped)
		if exID != 0 {
			fmt.Fprintf(w, "exemplar: trace=%016x total=%s\n", exID, time.Duration(exNS))
		}
		fmt.Fprintf(w, "%-16s %-4s %-8s %-7s %11s | %10s %10s %10s %10s %10s %10s %10s | %8s %5s\n",
			"trace", "op", "key", "kind", "total",
			"decode", "queue", "acquire", "execute", "persist", "fsync", "flush",
			"attempts", "batch")
		for i := range spans {
			s := &spans[i]
			knd := "client"
			if s.Sampled {
				knd = "sample"
			}
			fmt.Fprintf(w, "%016x %-4d %-8d %-7s %11s | %10s %10s %10s %10s %10s %10s %10s | %8d %5d\n",
				s.TraceID, s.Op, s.Key, knd, time.Duration(s.Total),
				time.Duration(s.Stages[StageDecode]), time.Duration(s.Stages[StageQueue]),
				time.Duration(s.Stages[StageAcquire]), time.Duration(s.Stages[StageExecute]),
				time.Duration(s.Stages[StagePersist]), time.Duration(s.Stages[StageFsync]),
				time.Duration(s.Stages[StageFlush]), s.Attempts, s.Batch)
		}
		return
	}
	page := pageJSON{
		Kind:          kind,
		SampleN:       t.sampleN,
		SlowThreshold: t.slowNS,
		Retired:       st.Retired,
		Dropped:       st.Dropped,
		ExemplarNS:    exNS,
		Spans:         make([]SpanJSON, 0, len(spans)),
	}
	if exID != 0 {
		page.ExemplarID = fmt.Sprintf("%016x", exID)
	}
	for i := range spans {
		page.Spans = append(page.Spans, spanJSON(&spans[i]))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(page)
}

// ServeTracez handles /tracez: the most recently retired spans, newest
// first. ?format=text renders a terminal table; ?max=N caps the count.
func (t *Tracer) ServeTracez(w http.ResponseWriter, r *http.Request) {
	max := 0
	fmt.Sscanf(r.URL.Query().Get("max"), "%d", &max)
	t.serve(w, r, "recent", t.Recent(nil, max))
}

// ServeSlowz handles /slowz: the slowest spans of the sliding window,
// slowest first, with the full stage breakdown.
func (t *Tracer) ServeSlowz(w http.ResponseWriter, r *http.Request) {
	t.serve(w, r, "slow", t.Slow(nil))
}
