// Package trace is the per-request tracing layer for the llscd serving
// path: where aggregate histograms (internal/obs) answer "how slow is
// the service", a trace answers the question every tail-latency
// investigation starts with — *where did this one slow request spend
// its time?*
//
// A request becomes traced one of two ways: the client flags it on the
// wire (an optional trailing trace id on the request frame, see
// internal/wire and docs/WIRE.md), or the server head-samples it at a
// 1-in-N rate. Either way the server stamps monotonic timestamps at
// each stage the request already passes through — frame decode, batch
// queue wait, registry slot acquire, shard execute, persist append,
// group-commit fsync wait, writer coalesce/flush — into a Span drawn
// from a preallocated free list, and retires the completed span here.
//
// The design constraint is the same one that shaped the serving path
// and the obs layer: the *untraced* path must stay allocation-free and
// within the E15 overhead budget. Everything per-request is gated on
// one branch; spans are preallocated and recycled; retirement copies
// the span into fixed rings of atomic words (no locks on the recent
// ring, a short mutex on the rare slow-candidate path) so concurrent
// /tracez and /slowz readers race nothing.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes a span's per-stage duration. The stages partition the
// span's server-side lifetime in order; their sum equals Total by
// construction (each stamp closes one stage and opens the next).
type Stage uint8

// Server pipeline stages, in timeline order.
const (
	// StageDecode: reading the request's frame(s) off the socket and
	// decoding the batch it arrived in (batched frames share the read).
	StageDecode Stage = iota
	// StageQueue: from batch fully decoded to execution start — the
	// batch queue wait, including the shard-grouping sort.
	StageQueue
	// StageAcquire: acquiring the registry process slot for the batch.
	StageAcquire
	// StageExecute: running the batch's operations against the shards
	// (the LL/SC attempt/retry window; per-request attempts are in
	// Span.Attempts).
	StageExecute
	// StagePersist: appending the batch's committed updates to the
	// durability log (zero on in-memory servers).
	StagePersist
	// StageFsync: waiting for the group-commit fsync round (nonzero
	// only under -fsync always).
	StageFsync
	// StageFlush: from responses handed to the writer goroutine to the
	// flush write that put this span's response on the wire — writer
	// coalesce plus the write syscall.
	StageFlush
	// NumStages is the number of server stages.
	NumStages = int(StageFlush) + 1
)

// WireStages is the number of leading stages a traced response carries
// back to the client: everything through fsync. StageFlush cannot
// travel — it is still happening while the response's bytes leave.
const WireStages = int(StageFlush)

// StageName returns the short lowercase stage mnemonic.
func StageName(st Stage) string {
	switch st {
	case StageDecode:
		return "decode"
	case StageQueue:
		return "queue"
	case StageAcquire:
		return "acquire"
	case StageExecute:
		return "execute"
	case StagePersist:
		return "persist"
	case StageFsync:
		return "fsync"
	case StageFlush:
		return "flush"
	default:
		return "stage?"
	}
}

// Span is one traced request's record. The server fills it in while the
// request moves through the pipeline and retires it with
// Tracer.Retire, which copies it into the rings and recycles it; a
// *Span must not be held past Retire.
type Span struct {
	// TraceID identifies the trace: client-chosen for wire-flagged
	// requests, generated for head-sampled ones.
	TraceID uint64
	// Op is the request's wire opcode (a wire.Op; uint8 here so this
	// package does not import the protocol).
	Op uint8
	// Sampled is true for head-sampled spans, false for client-flagged.
	Sampled bool
	// Err is true when the request was answered with a non-OK status
	// (or its connection died before the flush).
	Err bool
	// Attempts is the LL/SC or transaction attempt count (0 when n/a).
	Attempts uint32
	// Batch is the size of the batch the request executed in.
	Batch uint32
	// Key is the request's key (0 for keyless ops).
	Key uint64
	// Start is the span's wall-clock start, nanoseconds since the Unix
	// epoch (durations use the monotonic clock; Start is for display).
	Start int64
	// Total is the span's full duration in nanoseconds: frame arrival
	// through flush.
	Total uint64
	// Stages holds the per-stage durations in nanoseconds. Their sum
	// equals Total.
	Stages [NumStages]uint64

	// begin anchors Total (monotonic); mark is the running stamp, each
	// Stamp closing the stage since the previous mark.
	begin time.Time
	mark  time.Time
}

// Begin resets the span and anchors its clock at t.
func (s *Span) Begin(t time.Time) {
	*s = Span{Start: t.UnixNano(), begin: t, mark: t}
}

// Stamp closes stage st at time t: the stage's duration is the time
// since the previous stamp (or Begin). Stages stamped out of order
// accumulate, so a stage touched twice (persist then fsync per batch
// half) stays correct.
func (s *Span) Stamp(st Stage, t time.Time) {
	s.Stages[st] += uint64(t.Sub(s.mark))
	s.mark = t
}

// Finish closes the final stage (flush) at t and fixes Total as the
// stage sum's wall: t minus Begin's anchor.
func (s *Span) Finish(t time.Time) {
	s.Stamp(StageFlush, t)
	s.Total = uint64(t.Sub(s.begin))
}

// spanWords is the fixed word footprint of a span in the rings:
// trace id, meta (op/flags/attempts/batch), key, start, total, and the
// per-stage durations.
const spanWords = 5 + NumStages

// encode packs the span into dst.
func (s *Span) encode(dst *[spanWords]uint64) {
	meta := uint64(s.Op) | uint64(s.Attempts)<<16 | uint64(s.Batch)<<48
	if s.Sampled {
		meta |= 1 << 8
	}
	if s.Err {
		meta |= 1 << 9
	}
	dst[0] = s.TraceID
	dst[1] = meta
	dst[2] = s.Key
	dst[3] = uint64(s.Start)
	dst[4] = s.Total
	for i := 0; i < NumStages; i++ {
		dst[5+i] = s.Stages[i]
	}
}

// decode unpacks a ring record into s (clock anchors are zero; the
// span is display-only).
func (s *Span) decode(src *[spanWords]uint64) {
	*s = Span{
		TraceID:  src[0],
		Op:       uint8(src[1]),
		Sampled:  src[1]&(1<<8) != 0,
		Err:      src[1]&(1<<9) != 0,
		Attempts: uint32(src[1] >> 16 & 0xffffffff),
		Batch:    uint32(src[1] >> 48),
		Key:      src[2],
		Start:    int64(src[3]),
		Total:    src[4],
	}
	for i := 0; i < NumStages; i++ {
		s.Stages[i] = src[5+i]
	}
}

// Attempts packing caps at 32 bits; Batch at 16. Both are far beyond
// any real batch executor's values (maxbatch defaults to 64, attempts
// are per-request retry counts).

// ringSlot is one seqlock-guarded span slot: writers bump seq to odd,
// store the words, bump to even; readers copy the words and discard
// the copy when seq changed underneath them. Everything is atomic, so
// the ring is lock-free and race-clean while readers and the writer
// overlap.
type ringSlot struct {
	seq   atomic.Uint64
	words [spanWords]atomic.Uint64
}

func (sl *ringSlot) store(w *[spanWords]uint64) {
	sl.seq.Add(1) // odd: write in progress
	for i := range sl.words {
		sl.words[i].Store(w[i])
	}
	sl.seq.Add(1) // even: stable
}

// load copies the slot out; ok is false when the slot is empty or a
// writer raced the read.
func (sl *ringSlot) load(w *[spanWords]uint64) (ok bool) {
	s1 := sl.seq.Load()
	if s1 == 0 || s1%2 == 1 {
		return false
	}
	for i := range sl.words {
		w[i] = sl.words[i].Load()
	}
	return sl.seq.Load() == s1
}

// slowEntry is one slot of the slowest-N window.
type slowEntry struct {
	words [spanWords]uint64
	total uint64
	seen  time.Time // retirement time, for window expiry
	live  bool
}

// Config tunes New. Zero values select sensible defaults.
type Config struct {
	// SampleN enables head sampling: the server traces 1 in SampleN
	// requests on its own initiative. 0 disables head sampling
	// (client-flagged requests are always traced).
	SampleN uint64
	// SlowThreshold marks spans whose Total exceeds it: they always
	// enter the slow ring and emit one structured slow-op log line.
	// 0 disables the threshold (the slow ring still keeps the
	// slowest-N seen in the window).
	SlowThreshold time.Duration
	// Recent is the recent-trace ring capacity (default 256).
	Recent int
	// SlowN is the slowest-N window capacity (default 64).
	SlowN int
	// Window bounds how long a span defends its slowest-N slot
	// (default 60s): /slowz shows the slowest of the recent past, not
	// of all time.
	Window time.Duration
	// MaxLive bounds concurrently live spans — the free list size
	// (default 4×Recent). When the list runs dry new traces are
	// dropped (counted), never allocated: tracing may lose spans under
	// overload but cannot add GC pressure.
	MaxLive int
	// Logf, when set, receives one structured line per span past
	// SlowThreshold.
	Logf func(format string, args ...any)
}

// Tracer owns the span free list and the retirement rings, and serves
// them as /tracez and /slowz (http.go).
type Tracer struct {
	sampleN uint64
	slowNS  uint64
	window  time.Duration
	logf    func(format string, args ...any)

	free chan *Span

	recent []ringSlot
	next   atomic.Uint64 // next recent slot

	slowGate atomic.Uint64 // fast-path filter: min total currently in slow
	slowMu   sync.Mutex
	slow     []slowEntry

	// exemplar-lite: the trace id + latency of the slowest span since
	// the last Exemplar() read, linking histogram tails to traces.
	exMu  sync.Mutex
	exID  uint64
	exLat uint64

	retired atomic.Uint64
	dropped atomic.Uint64
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	if cfg.Recent <= 0 {
		cfg.Recent = 256
	}
	if cfg.SlowN <= 0 {
		cfg.SlowN = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = 4 * cfg.Recent
	}
	t := &Tracer{
		sampleN: cfg.SampleN,
		slowNS:  uint64(cfg.SlowThreshold),
		window:  cfg.Window,
		logf:    cfg.Logf,
		free:    make(chan *Span, cfg.MaxLive),
		recent:  make([]ringSlot, cfg.Recent),
		slow:    make([]slowEntry, cfg.SlowN),
	}
	for i := 0; i < cfg.MaxLive; i++ {
		t.free <- &Span{}
	}
	return t
}

// SampleN returns the head-sampling rate (1-in-N; 0 = off).
func (t *Tracer) SampleN() uint64 { return t.sampleN }

// SlowThreshold returns the slow-span threshold (0 = off).
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNS) }

// Get draws a span from the free list, or nil when every span is live
// — the caller then serves the request untraced (counted in Stats).
func (t *Tracer) Get() *Span {
	select {
	case s := <-t.free:
		return s
	default:
		t.dropped.Add(1)
		return nil
	}
}

// Retire completes s: copies it into the recent ring (and the slow
// window when it qualifies), updates the exemplar, emits the slow-op
// log line when past the threshold, and recycles s. The caller must
// not touch s afterwards.
func (t *Tracer) Retire(s *Span) {
	var w [spanWords]uint64
	s.encode(&w)
	total := s.Total
	t.retired.Add(1)

	slot := (t.next.Add(1) - 1) % uint64(len(t.recent))
	t.recent[slot].store(&w)

	t.exMu.Lock()
	if total > t.exLat {
		t.exLat, t.exID = total, s.TraceID
	}
	t.exMu.Unlock()

	slow := t.slowNS > 0 && total >= t.slowNS
	if slow && t.logf != nil {
		t.logf("slow-op trace=%016x op=%d key=%d sampled=%v total=%s decode=%s queue=%s acquire=%s execute=%s persist=%s fsync=%s flush=%s attempts=%d batch=%d",
			s.TraceID, s.Op, s.Key, s.Sampled, time.Duration(total),
			time.Duration(s.Stages[StageDecode]), time.Duration(s.Stages[StageQueue]),
			time.Duration(s.Stages[StageAcquire]), time.Duration(s.Stages[StageExecute]),
			time.Duration(s.Stages[StagePersist]), time.Duration(s.Stages[StageFsync]),
			time.Duration(s.Stages[StageFlush]), s.Attempts, s.Batch)
	}
	// The gate makes the common case one atomic load: only spans that
	// beat the current slowest-N floor (or are past the threshold) pay
	// the mutex.
	if slow || total > t.slowGate.Load() {
		t.offerSlow(&w, total, time.Now())
	}

	*s = Span{}
	select {
	case t.free <- s:
	default: // impossible by construction (list is sized to all spans)
	}
}

// offerSlow inserts the span into the slowest-N window, evicting the
// best victim: an empty or expired slot first, else the smallest
// total if the newcomer beats it. It then refreshes the gate to the
// window's floor.
func (t *Tracer) offerSlow(w *[spanWords]uint64, total uint64, now time.Time) {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	victim := -1
	var victimTotal uint64 = ^uint64(0)
	for i := range t.slow {
		e := &t.slow[i]
		if !e.live || now.Sub(e.seen) > t.window {
			victim, victimTotal = i, 0
			break
		}
		if e.total < victimTotal {
			victim, victimTotal = i, e.total
		}
	}
	if victim < 0 || (victimTotal > 0 && total < victimTotal) {
		return
	}
	t.slow[victim] = slowEntry{words: *w, total: total, seen: now, live: true}
	floor := ^uint64(0)
	full := true
	for i := range t.slow {
		e := &t.slow[i]
		if !e.live || now.Sub(e.seen) > t.window {
			full = false
			continue
		}
		if e.total < floor {
			floor = e.total
		}
	}
	if !full {
		floor = 0 // free slots: let everything through
	}
	t.slowGate.Store(floor)
}

// Recent appends up to max of the most recently retired spans to dst,
// newest first. Spans a concurrent writer is overwriting are skipped.
func (t *Tracer) Recent(dst []Span, max int) []Span {
	n := len(t.recent)
	if max <= 0 || max > n {
		max = n
	}
	head := t.next.Load()
	var w [spanWords]uint64
	for i := 0; i < n && max > 0; i++ {
		slot := (head + uint64(n) - 1 - uint64(i)) % uint64(n)
		if !t.recent[slot].load(&w) {
			continue
		}
		var s Span
		s.decode(&w)
		dst = append(dst, s)
		max--
	}
	return dst
}

// Slow appends the live slowest-N window to dst, slowest first,
// dropping entries that have aged out.
func (t *Tracer) Slow(dst []Span) []Span {
	now := time.Now()
	t.slowMu.Lock()
	entries := make([]slowEntry, 0, len(t.slow))
	for i := range t.slow {
		e := t.slow[i]
		if e.live && now.Sub(e.seen) <= t.window {
			entries = append(entries, e)
		}
	}
	t.slowMu.Unlock()
	for i := 1; i < len(entries); i++ { // insertion sort, slowest first
		for j := i; j > 0 && entries[j].total > entries[j-1].total; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	for i := range entries {
		var s Span
		s.decode(&entries[i].words)
		dst = append(dst, s)
	}
	return dst
}

// Exemplar returns and resets the trace id and latency of the slowest
// span retired since the previous call — the "exemplar-lite" link from
// a histogram snapshot's max-latency observation to its trace.
func (t *Tracer) Exemplar() (id, latNS uint64) {
	t.exMu.Lock()
	id, latNS = t.exID, t.exLat
	t.exID, t.exLat = 0, 0
	t.exMu.Unlock()
	return id, latNS
}

// Stats is the tracer's own counter snapshot.
type Stats struct {
	// Retired counts spans completed and recorded.
	Retired uint64
	// Dropped counts traces skipped because the free list ran dry.
	Dropped uint64
}

// Stats returns the tracer's counters.
func (t *Tracer) Stats() Stats {
	return Stats{Retired: t.retired.Load(), Dropped: t.dropped.Load()}
}
