// Benchmarks regenerating the core experiment index E1-E7 (see
// docs/BENCHMARKS.md) as testing.B targets. One Benchmark family per
// experiment; cmd/llscbench produces the corresponding full tables. Run:
//
//	go test -bench=. -benchmem
package mwllsc_test

import (
	"fmt"
	"sync"
	"testing"

	"mwllsc/internal/bench"
	"mwllsc/internal/core"
	"mwllsc/internal/impls"
	"mwllsc/internal/mwobj"
	"mwllsc/internal/mwtest"
	"mwllsc/internal/sim"
)

// benchImpls are the implementations compared in timing benchmarks.
var benchImpls = []string{"jp", "jp-ptr", "amstyle", "gcptr", "lockmw"}

func factoryOf(b *testing.B, name string) mwobj.Factory {
	b.Helper()
	f, err := impls.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func newObj(b *testing.B, name string, n, w int) mwobj.MW {
	b.Helper()
	obj, err := factoryOf(b, name)(n, w, mwtest.Pattern(0, w))
	if err != nil {
		b.Fatal(err)
	}
	return obj
}

// BenchmarkE1_LL measures uncontended LL latency vs W (Theorem 1: O(W)).
func BenchmarkE1_LL(b *testing.B) {
	for _, name := range benchImpls {
		for _, w := range []int{1, 16, 128} {
			b.Run(fmt.Sprintf("impl=%s/W=%d", name, w), func(b *testing.B) {
				obj := newObj(b, name, 8, w)
				v := make([]uint64, w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					obj.LL(0, v)
				}
			})
		}
	}
}

// BenchmarkE1_LLSC measures an uncontended LL;SC round vs W; with
// -benchmem its allocs/op column is experiment E7, and the jp vs jp-ptr
// rows are experiment E5.
func BenchmarkE1_LLSC(b *testing.B) {
	for _, name := range benchImpls {
		for _, w := range []int{1, 16, 128} {
			b.Run(fmt.Sprintf("impl=%s/W=%d", name, w), func(b *testing.B) {
				obj := newObj(b, name, 8, w)
				v := make([]uint64, w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					obj.LL(0, v)
					v[0]++
					if !obj.SC(0, v) {
						b.Fatal("uncontended SC failed")
					}
				}
			})
		}
	}
}

// BenchmarkE1_VL measures VL (Theorem 1: O(1) — flat across W).
func BenchmarkE1_VL(b *testing.B) {
	for _, w := range []int{1, 128} {
		b.Run(fmt.Sprintf("impl=jp/W=%d", w), func(b *testing.B) {
			obj := newObj(b, "jp", 8, w)
			v := make([]uint64, w)
			obj.LL(0, v)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj.VL(0)
			}
		})
	}
}

// BenchmarkE2_Space reports the paper-accounting footprint (words) of the
// paper's algorithm and the AM-profile baseline as custom metrics, along
// with the ratio the paper predicts to be Θ(N). The timed body is empty —
// this benchmark exists so the E2 numbers appear in bench output.
func BenchmarkE2_Space(b *testing.B) {
	const w = 16
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("N=%d/W=%d", n, w), func(b *testing.B) {
			jp, err := bench.SpaceOf(factoryOf(b, "jp"), n, w)
			if err != nil {
				b.Fatal(err)
			}
			am, err := bench.SpaceOf(factoryOf(b, "amstyle"), n, w)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(float64(jp.PaperWords()), "jp-words")
			b.ReportMetric(float64(am.PaperWords()), "amstyle-words")
			b.ReportMetric(float64(am.PaperWords())/float64(jp.PaperWords()), "ratio")
		})
	}
}

// BenchmarkE3_Contended measures LL;SC rounds under contention: G
// goroutines share the object; each benchmark iteration is one completed
// round by some goroutine.
func BenchmarkE3_Contended(b *testing.B) {
	for _, name := range benchImpls {
		for _, g := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("impl=%s/G=%d", name, g), func(b *testing.B) {
				const w = 16
				obj := newObj(b, name, g, w)
				var wg sync.WaitGroup
				per := b.N/g + 1
				b.ResetTimer()
				for p := 0; p < g; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						v := make([]uint64, w)
						for i := 0; i < per; i++ {
							obj.LL(p, v)
							v[0]++
							obj.SC(p, v)
						}
					}(p)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkE4_Helping runs a contended workload on the paper's algorithm
// with stats enabled and reports the helped-LL and handoff rates as
// metrics (paper §2.2's mechanism at work).
func BenchmarkE4_Helping(b *testing.B) {
	for _, g := range []int{4, 8} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			const w = 8
			var stats core.Stats
			obj, err := impls.JPWithStats(&stats)(g, w, mwtest.Pattern(0, w))
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			per := b.N/g + 1
			b.ResetTimer()
			for p := 0; p < g; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					v := make([]uint64, w)
					for i := 0; i < per; i++ {
						obj.LL(p, v)
						v[0]++
						obj.SC(p, v)
					}
				}(p)
			}
			wg.Wait()
			b.StopTimer()
			s := stats.Snapshot()
			b.ReportMetric(100*s.HelpedFraction(), "helped-%")
			b.ReportMetric(float64(s.Handoffs), "handoffs")
			b.ReportMetric(100*s.SuccessFraction(), "sc-%")
		})
	}
}

// BenchmarkE4_SimStarved reports the helped fraction under a deterministic
// starvation adversary in the simulator — the schedule real benchmarks
// cannot force. Steps, not wall time, are the meaningful cost here.
func BenchmarkE4_SimStarved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			N: 3, W: 8, OpsPerProc: 20, Seed: int64(i),
			Policy: &sim.Starve{Victim: 0, Every: 250, Inner: sim.NewRandom(int64(i))},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) != 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
		if i == 0 {
			b.ReportMetric(100*res.Stats.HelpedFraction(), "helped-%")
			b.ReportMetric(float64(res.MaxLLSteps), "worst-LL-steps")
		}
	}
}

// BenchmarkE6_SnapshotScan measures wait-free snapshot scans (C=16, one
// concurrent writer) over the paper's object vs baselines.
func BenchmarkE6_SnapshotScan(b *testing.B) {
	for _, name := range []string{"jp", "gcptr", "lockmw"} {
		b.Run("impl="+name, func(b *testing.B) {
			const comps = 16
			snap := newSnapshot(b, name, comps)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
						snap.Update(0, int(i)%comps, i)
					}
				}
			}()
			dst := make([]uint64, comps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.Scan(1, dst)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkE6_QueueRoundTrip measures a wait-free queue enqueue+dequeue
// pair (single process; contended variants live in cmd/llscbench -e e6).
func BenchmarkE6_QueueRoundTrip(b *testing.B) {
	for _, name := range []string{"jp", "gcptr", "lockmw"} {
		b.Run("impl="+name, func(b *testing.B) {
			q := newQueue(b, name, 4, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !q.Enqueue(0, uint64(i)&(1<<62)) {
					b.Fatal("enqueue failed")
				}
				if _, ok := q.Dequeue(0); !ok {
					b.Fatal("dequeue failed")
				}
			}
		})
	}
}
