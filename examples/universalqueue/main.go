// Universalqueue: a wait-free FIFO queue obtained from the universal
// construction over the multiword LL/SC variable (the paper's citation [1]
// — Anderson & Moir's universal constructions are exactly what the
// multiword LL/SC object was designed to feed).
//
// Producers enqueue tagged values, consumers drain them; the program
// verifies exactly-once delivery and per-producer FIFO order — properties
// that only hold if every queue operation was linearizable.
//
//	go run ./examples/universalqueue
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"

	"mwllsc/internal/apps/shared"
	"mwllsc/internal/impls"
)

const (
	producers = 3
	consumers = 3
	perProd   = 4000
	capacity  = 32
)

func main() {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		log.Fatal(err)
	}
	q, err := shared.NewQueue(f, producers+consumers, capacity)
	if err != nil {
		log.Fatal(err)
	}

	var (
		prodWG   sync.WaitGroup
		consWG   sync.WaitGroup
		stop     = make(chan struct{})
		consumed = make([][]uint64, consumers)
	)

	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProd; {
				if q.Enqueue(p, uint64(p)<<32|uint64(i)) {
					i++
				} else {
					runtime.Gosched() // full; let consumers drain
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			pid := producers + c
			for {
				if v, ok := q.Dequeue(pid); ok {
					consumed[c] = append(consumed[c], v)
					continue
				}
				select {
				case <-stop:
					for { // drain the tail
						v, ok := q.Dequeue(pid)
						if !ok {
							return
						}
						consumed[c] = append(consumed[c], v)
					}
				default:
					runtime.Gosched()
				}
			}
		}(c)
	}

	prodWG.Wait()
	close(stop)
	consWG.Wait()

	// Exactly-once delivery.
	seen := make(map[uint64]bool, producers*perProd)
	for _, vs := range consumed {
		for _, v := range vs {
			if seen[v] {
				log.Fatalf("value %x delivered twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != producers*perProd {
		log.Fatalf("delivered %d values, want %d", len(seen), producers*perProd)
	}

	// Per-producer FIFO order within each consumer's stream.
	for c, vs := range consumed {
		last := map[uint64]int64{}
		for _, v := range vs {
			prod, idx := v>>32, int64(v&0xffffffff)
			if prev, ok := last[prod]; ok && idx < prev {
				log.Fatalf("consumer %d saw producer %d out of order: %d after %d",
					c, prod, idx, prev)
			}
			last[prod] = idx
		}
	}

	counts := make([]int, consumers)
	for c := range consumed {
		counts[c] = len(consumed[c])
	}
	fmt.Printf("produced: %d x %d = %d values\n", producers, perProd, producers*perProd)
	fmt.Printf("consumed per consumer: %v (total %d)\n", counts, len(seen))
	fmt.Println("exactly-once delivery and per-producer FIFO order verified")
	fmt.Println("every operation was wait-free: announce, fold pending ops, at most 3 SC attempts")
}
