// Remote counter: the sharded counter served over TCP — the serving
// layer's client/server pieces in one self-contained program.
//
// The server half owns a Sharded map and serves it with the llscd wire
// protocol (mwllsc.NewServer — the embeddable form of cmd/llscd). The
// client half dials it like any remote process would (mwllsc.Dial) and
// drives per-key counters from many goroutines; concurrent calls
// pipeline through the connection pool automatically, and the server
// executes them in batches. A cross-shard AddMulti moves units between
// two counters atomically, and the final SnapshotAtomic audits
// conservation from one linearizable cut — the same guarantees as
// in-process, now across a socket.
//
//	go run ./examples/remotecounter
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"mwllsc"
)

func main() {
	const (
		shards    = 8
		slots     = 6
		words     = 2 // [count, sum] moved together atomically
		workers   = 32
		perWorker = 200
		delta     = 3
		keyspace  = 64
		transfers = 100 // cross-shard moves of word-1 units
	)

	// --- server half: own the map, serve it ---
	m, err := mwllsc.NewSharded(shards, slots, words)
	if err != nil {
		log.Fatal(err)
	}
	srv := mwllsc.NewServer(m)
	served := make(chan error, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { served <- srv.Serve() }()

	// --- client half: dial and hammer, as a separate process would ---
	c, err := mwllsc.Dial(addr.String(), mwllsc.WithClientConns(3))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := mwllsc.HashUint64(uint64((wkr*perWorker + i) % keyspace))
				// One atomic fetch-and-add of both words; concurrent
				// workers' requests coalesce into pipelined batches.
				if _, err := c.Add(ctx, key, []uint64{1, delta}); err != nil {
					log.Fatalf("worker %d: %v", wkr, err)
				}
			}
		}(wkr)
	}
	// Concurrently, move sum units between two fixed counters in
	// different shards — each move is one cross-shard atomic commit, so
	// the grand total never wavers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		a, b := mwllsc.HashUint64(1_000_001), mwllsc.HashUint64(1_000_002)
		for i := 0; i < transfers; i++ {
			_, err := c.AddMulti(ctx, []uint64{a, b},
				[][]uint64{{0, ^uint64(5) + 1}, {0, 5}}) // two's-complement -5 here, +5 there
			if err != nil {
				log.Fatalf("transfer %d: %v", i, err)
			}
		}
	}()
	wg.Wait()

	// Audit from one cross-shard linearizable cut.
	rows, err := c.SnapshotAtomic(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var count, sum uint64
	for _, row := range rows {
		count += row[0]
		sum += row[1]
	}
	const (
		wantCount = workers * perWorker
		wantSum   = uint64(wantCount * delta) // transfers conserve the sum
	)
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served:  K=%d shards × W=%d words on %s\n", stats.Shards, stats.Words, addr)
	fmt.Printf("traffic: %d requests over %d conns in %d server batches (avg %.1f req/batch)\n",
		stats.Reqs, stats.ConnsTotal, stats.Batches, float64(stats.Reqs)/float64(stats.Batches))
	fmt.Printf("count:   %d (expected %d)\n", count, wantCount)
	fmt.Printf("sum:     %d (expected %d, conserved across %d cross-shard transfers)\n", sum, wantSum, transfers)
	if count != wantCount || sum != wantSum {
		log.Fatal("totals do not match — updates lost, duplicated, or torn!")
	}

	// Graceful teardown: client first, then drain the server.
	c.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if err := <-served; !errors.Is(err, mwllsc.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Println("conserved across the wire; server drained cleanly")
}
