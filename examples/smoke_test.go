// Package examples_test keeps the runnable examples from rotting: every
// example program must pass go vet, and the quick ones must actually run
// to completion (each example self-checks its invariants and exits
// non-zero on violation).
package examples_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// goTool locates the go command; the test is skipped if the toolchain is
// not on PATH (it always is in CI).
func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	return path
}

// repoRoot returns the module root (the parent of examples/).
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(wd)
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("no go.mod above examples/: %v", err)
	}
	return root
}

func TestExamplesVet(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool; skipped with -short")
	}
	cmd := exec.Command(goTool(t), "vet", "./examples/...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet ./examples/...: %v\n%s", err, out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs example binaries; skipped with -short")
	}
	root := repoRoot(t)
	go_ := goTool(t)
	// The examples that terminate on their own; each must exit 0 within
	// the timeout (they log.Fatal on any broken invariant).
	for _, name := range []string{"quickstart", "shardedcounter", "bankledger", "remotecounter"} {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, go_, "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
		})
	}
}
