// Sensorsnapshot: an atomic multi-writer snapshot built on the multiword
// LL/SC variable (the application family behind the paper's snapshot
// citations [12, 13]). Sensor goroutines each update their own component;
// a monitor scans all components atomically with a single wait-free LL and
// verifies cross-sensor consistency rules that only hold on atomic
// snapshots.
//
// Each sensor writes pairs (reading, checksum=reading*3+sensorID) into two
// adjacent components with a wait-free update through the helping universal
// construction — a torn scan would be caught immediately.
//
//	go run ./examples/sensorsnapshot
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"mwllsc/internal/apps/snapshot"
	"mwllsc/internal/impls"
)

const (
	sensors     = 4
	updatesEach = 3000
	scanTarget  = 5000
)

func main() {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		log.Fatal(err)
	}
	// Two components per sensor: value and checksum.
	comps := 2 * sensors
	initial := make([]uint64, comps)
	for s := 0; s < sensors; s++ {
		initial[2*s+1] = uint64(s) // checksum of reading 0
	}
	snap, err := snapshot.NewWF(f, sensors+1, comps, initial)
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	for s := 0; s < sensors; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := uint64(1); i <= updatesEach; i++ {
				// The paired update must be atomic; route both writes
				// through one wait-free state transition by updating the
				// value and checksum components back to back via the
				// snapshot's atomic per-component updates. To keep the
				// pair atomic we write them as a single component pair:
				// component 2s carries the reading, 2s+1 its checksum,
				// and both move in one Update via the combined encoding.
				snap.Update(s, 2*s, i)
				snap.Update(s, 2*s+1, i*3+uint64(s))
			}
		}(s)
	}

	scans := 0
	inconsistentWindows := 0
	buf := make([]uint64, comps)
	go func() {
		wg.Wait()
		stop.Store(true)
	}()
	for !stop.Load() || scans < scanTarget {
		snap.Scan(sensors, buf)
		scans++
		for s := 0; s < sensors; s++ {
			reading, sum := buf[2*s], buf[2*s+1]
			// The two components are written by two separate atomic
			// updates, so a scan may catch the window between them: the
			// checksum then matches the *previous* reading. Anything else
			// would mean the scan itself tore.
			if sum != reading*3+uint64(s) && sum != (reading-1)*3+uint64(s) {
				log.Fatalf("scan %d: sensor %d torn: reading=%d checksum=%d", scans, s, reading, sum)
			}
			if sum != reading*3+uint64(s) {
				inconsistentWindows++
			}
		}
		if stop.Load() && scans >= scanTarget {
			break
		}
	}

	snap.Scan(sensors, buf)
	fmt.Printf("sensors: %d, updates each: %d, scans: %d\n", sensors, updatesEach, scans)
	fmt.Printf("final snapshot: %v\n", buf)
	fmt.Printf("scans that caught an update mid-pair (legal): %d\n", inconsistentWindows)
	fmt.Println("no scan ever observed a torn component: snapshots were atomic")
}
