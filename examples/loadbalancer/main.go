// Loadbalancer: an f-array (paper citation [12]) tracking per-worker queue
// depths. Dispatchers pick the least-loaded worker with one wait-free
// atomic Min query over an atomic snapshot, then move load with lock-free
// component updates; workers drain their own component. The f-array's
// aggregate query is O(m) and wait-free because it is a single multiword
// LL — exactly the property the multiword LL/SC object buys.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"sync"

	"mwllsc/internal/apps/farray"
	"mwllsc/internal/impls"
)

const (
	workers     = 6
	dispatchers = 3
	jobsEach    = 4000
)

func main() {
	f, err := impls.ByName(impls.JP)
	if err != nil {
		log.Fatal(err)
	}
	loads, err := farray.New(f, dispatchers+workers, workers, farray.Min, make([]uint64, workers))
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg         sync.WaitGroup
		dispatched = make([]int64, workers) // total jobs sent to each worker
		mu         sync.Mutex
	)

	for d := 0; d < dispatchers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			snap := make([]uint64, workers)
			for j := 0; j < jobsEach; j++ {
				// Atomic snapshot, then pick the least-loaded worker.
				loads.Scan(d, snap)
				best, bestLoad := 0, snap[0]
				for i, l := range snap {
					if l < bestLoad {
						best, bestLoad = i, l
					}
				}
				loads.Apply(d, best, func(v uint64) uint64 { return v + 1 })
				mu.Lock()
				dispatched[best]++
				mu.Unlock()
			}
		}(d)
	}

	// Workers drain their own queue component.
	var workerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			p := dispatchers + w
			for {
				drained := loads.Apply(p, w, func(v uint64) uint64 {
					if v > 0 {
						return v - 1
					}
					return v
				})
				if drained == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	workerWG.Wait()

	total := int64(0)
	min, max := dispatched[0], dispatched[0]
	for _, d := range dispatched {
		total += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	fmt.Printf("jobs dispatched: %d (expected %d)\n", total, dispatchers*jobsEach)
	fmt.Printf("per-worker: %v\n", dispatched)
	fmt.Printf("balance spread (max-min): %d\n", max-min)
	if total != dispatchers*jobsEach {
		log.Fatal("jobs lost or duplicated")
	}
	if remaining := loads.Query(0); remaining != 0 {
		// Min over drained queues; check all zero via scan.
		snap := make([]uint64, workers)
		loads.Scan(0, snap)
		fmt.Printf("residual loads: %v (min=%d)\n", snap, remaining)
	}
	fmt.Println("least-loaded dispatch used one wait-free atomic Min query per job")
}
