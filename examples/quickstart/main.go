// Quickstart: create a 4-word LL/SC variable shared by 4 processes and run
// the canonical read-modify-write loop from the paper's introduction
// (fetch&increment generalized to a whole vector).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"mwllsc"
)

func main() {
	const (
		processes = 4
		words     = 4
		perProc   = 10000
	)

	obj, err := mwllsc.New(processes, words, []uint64{0, 0, 0, 0}, mwllsc.WithStats())
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < processes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := obj.Handle(p) // one handle per process, on its own goroutine
			v := make([]uint64, words)
			for done := 0; done < perProc; {
				h.LL(v) // load-linked: atomic multiword read
				for j := range v {
					v[j]++ // modify locally
				}
				if h.SC(v) { // store-conditional: writes iff nobody else did
					done++
				}
			}
		}(p)
	}
	wg.Wait()

	final := obj.Handle(0).LLNew()
	fmt.Printf("final value: %v\n", final)
	fmt.Printf("expected:    [%d %d %d %d]\n", perProc*processes, perProc*processes,
		perProc*processes, perProc*processes)
	if stats, ok := obj.Stats(); ok {
		fmt.Printf("operations:  %d LL, %d SC (%.1f%% success), %d helped LLs, %d buffer handoffs\n",
			stats.LLTotal, stats.SCTotal, 100*stats.SuccessFraction(),
			stats.LLHelped, stats.Handoffs)
	}
	for j := range final {
		if final[j] != perProc*processes {
			log.Fatalf("word %d = %d, want %d — atomicity violated!", j, final[j], perProc*processes)
		}
	}
	fmt.Println("every successful SC saw the latest value: LL/SC semantics held")
}
