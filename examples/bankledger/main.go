// Bankledger: a W-word LL/SC variable as an atomically updated ledger of
// account balances. Concurrent tellers transfer random amounts between
// random accounts; because each transfer is an LL -> modify -> SC round,
// no money is ever created or destroyed, and any teller can audit the
// whole ledger atomically with a single wait-free LL.
//
//	go run ./examples/bankledger
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"mwllsc"
)

const (
	accounts       = 8
	tellers        = 4
	auditors       = 2
	transfersEach  = 5000
	initialBalance = 1000
)

func main() {
	initial := make([]uint64, accounts)
	for i := range initial {
		initial[i] = initialBalance
	}
	ledger, err := mwllsc.New(tellers+auditors, accounts, initial)
	if err != nil {
		log.Fatal(err)
	}

	var (
		tellerWG  sync.WaitGroup
		auditorWG sync.WaitGroup
		stop      atomic.Bool
		audits    = make([]int64, auditors)
	)

	// Tellers: atomic transfers between random accounts.
	for t := 0; t < tellers; t++ {
		tellerWG.Add(1)
		go func(t int) {
			defer tellerWG.Done()
			h := ledger.Handle(t)
			rng := rand.New(rand.NewSource(int64(t) + 1))
			v := make([]uint64, accounts)
			for done := 0; done < transfersEach; {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(50) + 1)
				h.LL(v)
				if v[from] < amount {
					continue // insufficient funds in this snapshot; retry
				}
				v[from] -= amount
				v[to] += amount
				if h.SC(v) {
					done++
				}
			}
		}(t)
	}

	// Auditors: concurrent atomic audits. An audit is one wait-free LL;
	// the total must be exact in every single snapshot.
	for a := 0; a < auditors; a++ {
		auditorWG.Add(1)
		go func(a int) {
			defer auditorWG.Done()
			h := ledger.Handle(tellers + a)
			v := make([]uint64, accounts)
			for !stop.Load() {
				h.LL(v)
				var total uint64
				for _, bal := range v {
					total += bal
				}
				if total != accounts*initialBalance {
					log.Fatalf("auditor %d: inconsistent snapshot, total=%d want %d",
						a, total, accounts*initialBalance)
				}
				audits[a]++
			}
		}(a)
	}

	tellerWG.Wait()
	stop.Store(true)
	auditorWG.Wait()

	final := ledger.Handle(0).LLNew()
	var total uint64
	for _, bal := range final {
		total += bal
	}
	fmt.Printf("transfers: %d tellers x %d each\n", tellers, transfersEach)
	fmt.Printf("final balances: %v\n", final)
	fmt.Printf("total: %d (expected %d) — conservation %v\n",
		total, accounts*initialBalance, total == accounts*initialBalance)
	fmt.Printf("concurrent audits, all consistent: %d\n", audits[0]+audits[1])
	if total != accounts*initialBalance {
		log.Fatal("conservation violated")
	}
}
