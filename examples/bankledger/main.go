// Bankledger: atomic money transfers two ways.
//
// Part 1 keeps the whole ledger in ONE W-word LL/SC variable: every
// transfer is an LL -> modify -> SC round, and any teller audits the
// whole ledger atomically with a single wait-free LL. Simple and exact —
// but every transfer serializes through one variable.
//
// Part 2 shards the ledger: one account per shard of a Sharded map, so
// transfers on disjoint account pairs run in parallel. A transfer now
// crosses shards, which is exactly what the map's transaction layer is
// for: UpdateMulti debits and credits atomically across shards, and
// auditors use SnapshotAtomic — a cross-shard linearizable cut — so the
// total balances exactly in every single audit (the cheaper per-shard
// Snapshot could legally see a debit without its credit).
//
//	go run ./examples/bankledger
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"mwllsc"
)

const (
	accounts       = 8
	tellers        = 4
	auditors       = 2
	transfersEach  = 5000
	initialBalance = 1000
)

func main() {
	singleLedger()
	shardedLedger()
}

// singleLedger is the one-object variant: the ledger is a W-word value.
func singleLedger() {
	initial := make([]uint64, accounts)
	for i := range initial {
		initial[i] = initialBalance
	}
	ledger, err := mwllsc.New(tellers+auditors, accounts, initial)
	if err != nil {
		log.Fatal(err)
	}

	var (
		tellerWG  sync.WaitGroup
		auditorWG sync.WaitGroup
		stop      atomic.Bool
		audits    = make([]int64, auditors)
	)

	// Tellers: atomic transfers between random accounts.
	for t := 0; t < tellers; t++ {
		tellerWG.Add(1)
		go func(t int) {
			defer tellerWG.Done()
			h := ledger.Handle(t)
			rng := rand.New(rand.NewSource(int64(t) + 1))
			v := make([]uint64, accounts)
			for done := 0; done < transfersEach; {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(50) + 1)
				h.LL(v)
				if v[from] < amount {
					continue // insufficient funds in this snapshot; retry
				}
				v[from] -= amount
				v[to] += amount
				if h.SC(v) {
					done++
				}
			}
		}(t)
	}

	// Auditors: concurrent atomic audits. An audit is one wait-free LL;
	// the total must be exact in every single snapshot.
	for a := 0; a < auditors; a++ {
		auditorWG.Add(1)
		go func(a int) {
			defer auditorWG.Done()
			h := ledger.Handle(tellers + a)
			v := make([]uint64, accounts)
			for !stop.Load() {
				h.LL(v)
				var total uint64
				for _, bal := range v {
					total += bal
				}
				if total != accounts*initialBalance {
					log.Fatalf("auditor %d: inconsistent snapshot, total=%d want %d",
						a, total, accounts*initialBalance)
				}
				audits[a]++
			}
		}(a)
	}

	tellerWG.Wait()
	stop.Store(true)
	auditorWG.Wait()

	final := ledger.Handle(0).LLNew()
	var total uint64
	for _, bal := range final {
		total += bal
	}
	fmt.Println("— one object —")
	fmt.Printf("transfers: %d tellers x %d each\n", tellers, transfersEach)
	fmt.Printf("final balances: %v\n", final)
	fmt.Printf("total: %d (expected %d) — conservation %v\n",
		total, accounts*initialBalance, total == accounts*initialBalance)
	var auditTotal int64
	for _, a := range audits {
		auditTotal += a
	}
	fmt.Printf("concurrent audits, all consistent: %d\n", auditTotal)
	if total != accounts*initialBalance {
		log.Fatal("conservation violated")
	}
}

// shardedLedger is the scaled variant: one account per shard, transfers
// as cross-shard transactions, audits as cross-shard linearizable
// snapshots.
func shardedLedger() {
	m, err := mwllsc.NewSharded(accounts /*one shard per account*/, tellers+auditors, 1,
		mwllsc.WithShardedInitial([]uint64{initialBalance}))
	if err != nil {
		log.Fatal(err)
	}
	// Account i lives in shard i, addressed by the shard's representative key.
	keys := make([]uint64, accounts)
	for i := range keys {
		keys[i] = m.KeyForShard(i)
	}

	var (
		tellerWG  sync.WaitGroup
		auditorWG sync.WaitGroup
		stop      atomic.Bool
		audits    = make([]int64, auditors)
		attempts  = make([]int64, tellers)
	)

	for t := 0; t < tellers; t++ {
		tellerWG.Add(1)
		go func(t int) {
			defer tellerWG.Done()
			h := m.Acquire()
			defer h.Release()
			rng := rand.New(rand.NewSource(int64(t) + 101))
			for done := 0; done < transfersEach; done++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					to = (to + 1) % accounts
				}
				amount := uint64(rng.Intn(50) + 1)
				// One atomic transaction across the two shards: the debit
				// and credit commit together or not at all.
				attempts[t] += int64(h.UpdateMulti([]uint64{keys[from], keys[to]},
					func(vals [][]uint64) {
						if vals[0][0] >= amount {
							vals[0][0] -= amount
							vals[1][0] += amount
						}
					}))
			}
		}(t)
	}

	for a := 0; a < auditors; a++ {
		auditorWG.Add(1)
		go func(a int) {
			defer auditorWG.Done()
			h := m.Acquire()
			defer h.Release()
			buf := m.NewSnapshotBuffer()
			for !stop.Load() {
				h.SnapshotAtomic(buf) // all shards from ONE instant
				var total uint64
				for _, row := range buf {
					total += row[0]
				}
				if total != accounts*initialBalance {
					log.Fatalf("sharded auditor %d: torn cut, total=%d want %d",
						a, total, accounts*initialBalance)
				}
				audits[a]++
			}
		}(a)
	}

	tellerWG.Wait()
	stop.Store(true)
	auditorWG.Wait()

	buf := m.NewSnapshotBuffer()
	m.SnapshotAtomic(buf)
	var total uint64
	final := make([]uint64, accounts)
	for i, row := range buf {
		final[i] = row[0]
		total += row[0]
	}
	var tried int64
	for _, a := range attempts {
		tried += a
	}
	fmt.Println("— sharded, cross-shard transactions —")
	fmt.Printf("transfers: %d tellers x %d each over %d shards\n", tellers, transfersEach, m.Shards())
	fmt.Printf("final balances: %v\n", final)
	fmt.Printf("total: %d (expected %d) — conservation %v\n",
		total, accounts*initialBalance, total == accounts*initialBalance)
	var auditTotal int64
	for _, a := range audits {
		auditTotal += a
	}
	fmt.Printf("atomic audits, all consistent: %d; txn attempts/transfer: %.2f\n",
		auditTotal, float64(tried)/float64(tellers*transfersEach))
	if total != accounts*initialBalance {
		log.Fatal("conservation violated")
	}
}
