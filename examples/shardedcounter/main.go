// Sharded counter: a bank of per-key counters served by far more
// goroutines than the object has process slots, on the two scaling pieces
// this package adds on top of the paper's object:
//
//   - mwllsc.NewSharded spreads keys over K independent multiword LL/SC
//     objects, so writes to different keys stop contending on one X word;
//   - the built-in handle registry multiplexes all worker goroutines onto
//     the N process ids, so nobody hand-assigns ids.
//
// Each shard holds 2 words moved together atomically: [count, sum]. The
// final per-shard-atomic Snapshot must therefore see count*delta == sum in
// every shard, and the grand totals must match what the workers did.
//
//	go run ./examples/shardedcounter
package main

import (
	"fmt"
	"log"
	"sync"

	"mwllsc"
)

func main() {
	const (
		shards     = 8   // K independent LL/SC objects
		slots      = 4   // N process ids, shared by all shards
		workers    = 64  // goroutines — 16x oversubscribed on purpose
		perWorker  = 500 // increments each
		delta      = 3   // every increment adds delta to the sum word
		keyspace   = 256 // distinct counter keys
		words      = 2   // [count, sum] per shard
		totalIncs  = workers * perWorker
		totalDelta = totalIncs * delta
	)

	m, err := mwllsc.NewSharded(shards, slots, words)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			// Acquire pins one of the N process ids; with workers >> slots
			// most goroutines wait here at any instant — that is the
			// registry doing its job, not a bug.
			h := m.Acquire()
			defer h.Release()
			for i := 0; i < perWorker; i++ {
				// Integer ids hash straight through HashUint64 — no byte
				// round-trip (that is what HashBytes is for).
				key := mwllsc.HashUint64(uint64((wkr*perWorker + i) % keyspace))
				h.Update(key, func(v []uint64) {
					v[0]++        // count
					v[1] += delta // sum, atomically with count
				})
			}
		}(wkr)
	}
	wg.Wait()

	snap := m.NewSnapshotBuffer()
	m.Snapshot(snap) // each row atomic; rows from (possibly) different instants
	var count, sum uint64
	for i, row := range snap {
		if row[1] != row[0]*delta {
			log.Fatalf("shard %d torn: count=%d sum=%d — per-shard atomicity violated!", i, row[0], row[1])
		}
		count += row[0]
		sum += row[1]
	}

	fmt.Printf("shards:     %d (x %d-word values), %d process slots, %d workers\n",
		m.Shards(), m.W(), m.N(), workers)
	fmt.Printf("increments: %d (expected %d)\n", count, totalIncs)
	fmt.Printf("sum:        %d (expected %d)\n", sum, totalDelta)
	stats := m.Registry().Stats()
	fmt.Printf("registry:   %d acquires, %d had to wait for a slot\n", stats.Acquires, stats.Waited)
	if count != totalIncs || sum != totalDelta {
		log.Fatal("totals do not match — updates lost or duplicated!")
	}
	fmt.Println("every shard internally consistent; all updates accounted for")
}
