package mwllsc_test

import (
	"fmt"
	"sync"

	"mwllsc"
)

// Example shows the canonical LL/SC read-modify-write loop: four goroutines
// atomically transfer units between the two halves of a 2-word balance
// vector; the total is conserved.
func Example() {
	const n = 4
	obj, err := mwllsc.New(n, 2, []uint64{500, 500})
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := obj.Handle(p)
			v := make([]uint64, 2)
			for moved := 0; moved < 100; {
				h.LL(v)
				if v[0] == 0 {
					continue
				}
				v[0]--
				v[1]++
				if h.SC(v) {
					moved++
				}
			}
		}(p)
	}
	wg.Wait()

	final := obj.Handle(0).LLNew()
	fmt.Println("total conserved:", final[0]+final[1] == 1000)
	fmt.Println("transferred:", final[1])
	// Output:
	// total conserved: true
	// transferred: 900
}

// ExampleHandle_Update shows the convenience read-modify-write helper: the
// closure may run several times under contention, but its effect is applied
// exactly once.
func ExampleHandle_Update() {
	obj, err := mwllsc.New(2, 3, []uint64{100, 200, 300})
	if err != nil {
		panic(err)
	}
	h := obj.Handle(0)
	attempts := h.Update(func(v []uint64) {
		v[0] += 1
		v[2] -= 1
	})
	fmt.Println("applied in", attempts, "attempt(s):", h.LLNew())
	// Output:
	// applied in 1 attempt(s): [101 200 299]
}

// ExampleHandle_VL shows validating a link without writing: a reader can
// check that a previously read multiword value is still current.
func ExampleHandle_VL() {
	obj, err := mwllsc.New(2, 3, []uint64{7, 8, 9})
	if err != nil {
		panic(err)
	}
	reader, writer := obj.Handle(0), obj.Handle(1)

	v := reader.LLNew()
	fmt.Println("read:", v, "still current:", reader.VL())

	writer.LL(v)
	writer.SC([]uint64{1, 1, 1})
	fmt.Println("after writer's SC, still current:", reader.VL())
	// Output:
	// read: [7 8 9] still current: true
	// after writer's SC, still current: false
}
