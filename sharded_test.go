package mwllsc_test

import (
	"fmt"
	"sync"
	"testing"

	"mwllsc"
)

func TestNewShardedOptions(t *testing.T) {
	m, err := mwllsc.NewSharded(4, 2, 3,
		mwllsc.WithShardedInitial([]uint64{1, 2, 3}),
		mwllsc.WithShardedWaitPolicy(mwllsc.Spin),
		mwllsc.WithShardedSubstrate(mwllsc.SubstratePtr),
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 || m.N() != 2 || m.W() != 3 {
		t.Fatalf("geometry = %d/%d/%d, want 4/2/3", m.Shards(), m.N(), m.W())
	}
	if m.Registry().Policy() != mwllsc.Spin {
		t.Fatalf("policy = %v, want Spin", m.Registry().Policy())
	}
	v := make([]uint64, 3)
	m.Read(99, v)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("initial value %v, want [1 2 3]", v)
	}
	if _, err := mwllsc.NewSharded(0, 2, 3); err == nil {
		t.Fatal("NewSharded(0, ...) succeeded")
	}
}

func TestRegistryWithObjectHandles(t *testing.T) {
	const n = 3
	obj, err := mwllsc.New(n, 1, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := mwllsc.NewRegistry(n, mwllsc.WithWaitPolicy(mwllsc.Block))
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 12
		perG       = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := reg.Acquire()
				obj.Handle(p).Update(func(v []uint64) { v[0]++ })
				reg.Release(p)
			}
		}()
	}
	wg.Wait()
	if got := obj.Handle(0).LLNew()[0]; got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if reg.InUse() != 0 {
		t.Fatalf("registry leaked %d slots", reg.InUse())
	}
}

func TestHashBytesTopLevel(t *testing.T) {
	if mwllsc.HashBytes([]byte("a")) == mwllsc.HashBytes([]byte("b")) {
		t.Fatal("distinct keys collide")
	}
}

func TestHashUint64TopLevel(t *testing.T) {
	if mwllsc.HashUint64(7) == mwllsc.HashUint64(8) {
		t.Fatal("distinct integer keys collide")
	}
}

// TestShardedTransactions drives the public cross-shard transaction API:
// concurrent multi-key transfers against concurrent single-key updates,
// with atomic snapshots that must always balance.
func TestShardedTransactions(t *testing.T) {
	const (
		shards  = 4
		slots   = 4
		initial = 100
		perG    = 250
	)
	m, err := mwllsc.NewSharded(shards, slots, 1, mwllsc.WithShardedInitial([]uint64{initial}))
	if err != nil {
		t.Fatal(err)
	}
	// Representative keys, one per shard.
	keys := make([]uint64, shards)
	for i := range keys {
		keys[i] = m.KeyForShard(i)
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := m.Acquire()
			defer h.Release()
			for i := 0; i < perG; i++ {
				from, to := (g+i)%shards, (g+i+1)%shards
				h.UpdateMulti([]uint64{keys[from], keys[to]}, func(vals [][]uint64) {
					vals[0][0]--
					vals[1][0]++
				})
			}
		}(g)
	}
	auditFail := make(chan uint64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := m.Acquire()
		defer h.Release()
		buf := m.NewSnapshotBuffer()
		for i := 0; i < perG; i++ {
			h.SnapshotAtomic(buf)
			var sum uint64
			for _, row := range buf {
				sum += row[0]
			}
			if sum != shards*initial {
				select {
				case auditFail <- sum:
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case sum := <-auditFail:
		t.Fatalf("atomic snapshot saw total %d, want %d", sum, shards*initial)
	default:
	}

	buf := m.NewSnapshotBuffer()
	m.SnapshotAtomic(buf)
	var sum uint64
	for _, row := range buf {
		sum += row[0]
	}
	if sum != shards*initial {
		t.Fatalf("final total %d, want %d", sum, shards*initial)
	}
}

// ExampleShardedHandle_UpdateMulti transfers between two accounts that
// live in different shards — atomically, in one transaction — and audits
// with a cross-shard linearizable snapshot.
func ExampleShardedHandle_UpdateMulti() {
	m, err := mwllsc.NewSharded(4 /*shards*/, 2 /*slots*/, 1 /*word*/, mwllsc.WithShardedInitial([]uint64{100}))
	if err != nil {
		panic(err)
	}
	h := m.Acquire()
	defer h.Release()

	alice := mwllsc.HashBytes([]byte("acct:alice"))
	bob := mwllsc.HashBytes([]byte("acct:bob"))
	h.UpdateMulti([]uint64{alice, bob}, func(vals [][]uint64) {
		vals[0][0] -= 25 // debit alice
		vals[1][0] += 25 // credit bob, atomically with the debit
	})

	snap := m.NewSnapshotBuffer()
	h.SnapshotAtomic(snap) // all shards from one instant
	var total uint64
	for _, row := range snap {
		total += row[0]
	}
	fmt.Println("total:", total)
	// Output: total: 400
}

// ExampleNewSharded serves a bank of counters from more goroutines than
// the object has process slots: the registry hands out ids, the hash
// spreads keys over shards.
func ExampleNewSharded() {
	m, err := mwllsc.NewSharded(4 /*shards*/, 2 /*slots*/, 1 /*word*/)
	if err != nil {
		panic(err)
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Acquire() // waits if both slots are busy
			defer h.Release()
			for key := uint64(0); key < 100; key++ {
				h.Update(key, func(v []uint64) { v[0]++ })
			}
		}()
	}
	wg.Wait()

	snap := m.NewSnapshotBuffer()
	m.Snapshot(snap) // each shard's value read atomically
	var total uint64
	for _, row := range snap {
		total += row[0]
	}
	fmt.Println("total increments:", total)
	// Output: total increments: 800
}
