package mwllsc_test

import (
	"fmt"
	"sync"
	"testing"

	"mwllsc"
)

func TestNewShardedOptions(t *testing.T) {
	m, err := mwllsc.NewSharded(4, 2, 3,
		mwllsc.WithShardedInitial([]uint64{1, 2, 3}),
		mwllsc.WithShardedWaitPolicy(mwllsc.Spin),
		mwllsc.WithShardedSubstrate(mwllsc.SubstratePtr),
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 || m.N() != 2 || m.W() != 3 {
		t.Fatalf("geometry = %d/%d/%d, want 4/2/3", m.Shards(), m.N(), m.W())
	}
	if m.Registry().Policy() != mwllsc.Spin {
		t.Fatalf("policy = %v, want Spin", m.Registry().Policy())
	}
	v := make([]uint64, 3)
	m.Read(99, v)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("initial value %v, want [1 2 3]", v)
	}
	if _, err := mwllsc.NewSharded(0, 2, 3); err == nil {
		t.Fatal("NewSharded(0, ...) succeeded")
	}
}

func TestRegistryWithObjectHandles(t *testing.T) {
	const n = 3
	obj, err := mwllsc.New(n, 1, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := mwllsc.NewRegistry(n, mwllsc.WithWaitPolicy(mwllsc.Block))
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 12
		perG       = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := reg.Acquire()
				obj.Handle(p).Update(func(v []uint64) { v[0]++ })
				reg.Release(p)
			}
		}()
	}
	wg.Wait()
	if got := obj.Handle(0).LLNew()[0]; got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if reg.InUse() != 0 {
		t.Fatalf("registry leaked %d slots", reg.InUse())
	}
}

func TestHashBytesTopLevel(t *testing.T) {
	if mwllsc.HashBytes([]byte("a")) == mwllsc.HashBytes([]byte("b")) {
		t.Fatal("distinct keys collide")
	}
}

// ExampleNewSharded serves a bank of counters from more goroutines than
// the object has process slots: the registry hands out ids, the hash
// spreads keys over shards.
func ExampleNewSharded() {
	m, err := mwllsc.NewSharded(4 /*shards*/, 2 /*slots*/, 1 /*word*/)
	if err != nil {
		panic(err)
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Acquire() // waits if both slots are busy
			defer h.Release()
			for key := uint64(0); key < 100; key++ {
				h.Update(key, func(v []uint64) { v[0]++ })
			}
		}()
	}
	wg.Wait()

	snap := m.NewSnapshotBuffer()
	m.Snapshot(snap) // each shard's value read atomically
	var total uint64
	for _, row := range snap {
		total += row[0]
	}
	fmt.Println("total increments:", total)
	// Output: total increments: 800
}
