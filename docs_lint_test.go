package mwllsc_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestExportedSymbolsDocumented is the docs lint CI runs: every exported
// declaration in the public API files must carry a doc comment, so the
// godoc surface can't silently rot as layers are added.
func TestExportedSymbolsDocumented(t *testing.T) {
	files := []string{"client.go", "server.go", "sharded.go", "mwllsc.go", "doc.go"}
	fset := token.NewFileSet()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc.Text() == "" {
					t.Errorf("%s: exported %s %s has no doc comment",
						file, kindOf(d), d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && d.Doc.Text() == "" && sp.Doc.Text() == "" {
							t.Errorf("%s: exported type %s has no doc comment", file, sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && d.Doc.Text() == "" && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
								t.Errorf("%s: exported %s %s has no doc comment",
									file, d.Tok, name.Name)
							}
						}
					}
				}
			}
		}
	}
}

// kindOf distinguishes methods from functions in lint messages.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}
