package main

import (
	"bytes"
	"context"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mwllsc/internal/client"
)

// syncBuf is a goroutine-safe bytes.Buffer: the daemon writes it from
// its own goroutine while the test polls it.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRE = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// startDaemon runs the daemon on a free port and returns its address
// and a shutdown func that delivers the signal and waits for exit.
func startDaemon(t *testing.T, extra ...string) (addr string, out *syncBuf, shutdown func() int) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	out, errOut := &syncBuf{}, &syncBuf{}
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	exit := make(chan int, 1)
	go func() { exit <- run(args, stop, out, errOut) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported an address\nstdout: %s\nstderr: %s", out, errOut)
		}
		time.Sleep(time.Millisecond)
	}
	return addr, out, func() int {
		stop <- os.Interrupt
		select {
		case code := <-exit:
			return code
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not exit on signal")
			return -1
		}
	}
}

func TestRunServeAndGracefulShutdown(t *testing.T) {
	addr, out, shutdown := startDaemon(t, "-shards", "4", "-slots", "4", "-words", "2")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Add(ctx, 7, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.Words != 2 {
		t.Fatalf("daemon geometry %+v, want K=4 W=2", st)
	}
	c.Close()
	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if s := out.String(); !strings.Contains(s, "shutting down") || !strings.Contains(s, "served") {
		t.Fatalf("shutdown log missing from:\n%s", s)
	}
}

func TestRunStatsTicker(t *testing.T) {
	_, out, shutdown := startDaemon(t, "-stats", "10ms")
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "conns=") {
		if time.Now().After(deadline) {
			t.Fatalf("no stats line within deadline:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}, nil, &syncBuf{}, &syncBuf{}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunBadImpl(t *testing.T) {
	if code := run([]string{"-impl", "nonexistent"}, nil, &syncBuf{}, &syncBuf{}); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestRunRejectsOversizeGeometry(t *testing.T) {
	// A snapshot of this geometry could never fit one wire frame.
	if code := run([]string{"-shards", "2000000", "-words", "1"}, nil, &syncBuf{}, &syncBuf{}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunBadAddr(t *testing.T) {
	if code := run([]string{"-addr", "256.256.256.256:1"}, nil, &syncBuf{}, &syncBuf{}); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
