// Command llscd is the mwllsc serving daemon: it owns a sharded
// multiword LL/SC map (shard.Map) and serves the five data operations —
// Update, Read, Snapshot, UpdateMulti, SnapshotAtomic — plus server
// stats over TCP with the pipelined binary protocol of internal/wire.
// Reach it with the mwllsc.Client (mwllsc.Dial) or any implementation
// of the wire format.
//
// Usage:
//
//	llscd [-addr 127.0.0.1:7787] [-shards 16] [-slots 16] [-words 2]
//	      [-impl jp] [-maxbatch 64] [-stats 0] [-v] [-admin ""]
//	      [-dir ""] [-fsync everysec] [-checkpoint-interval 1m]
//	      [-trace-sample 0] [-slow-threshold 0]
//	      [-max-conns 0] [-idle-timeout 0] [-write-timeout 0]
//	      [-max-inflight 0] [-degrade-on-disk-error]
//
// With -dir the daemon is durable: committed updates are appended to
// per-shard logs in that directory (fsynced per -fsync: none, everysec
// or always), checkpoints are taken every -checkpoint-interval, and
// startup recovers the previous state from checkpoint plus logs. The
// geometry flags (-shards, -words) must match the directory's; see
// docs/OPERATIONS.md for the per-policy durability contract. Without
// -dir the map is purely in-memory, as before.
//
// With -admin ADDR the daemon serves an admin HTTP plane on ADDR (port
// 0 picks a free port; the bound address is printed as "llscd: admin
// on ..."): Prometheus-text metrics on /metrics, a JSON snapshot with
// histogram quantiles on /statsz, a liveness probe on /healthz (503
// once the durability layer has a sticky disk failure; the body echoes
// the build info), recent traces on /tracez and the slowest traces
// with stage breakdowns on /slowz, and the standard Go profiler under
// /debug/pprof/. See docs/OBSERVABILITY.md for the metric catalog.
//
// The overload controls are off by default and opt-in per deployment:
// -max-conns caps open connections (excess closed at accept),
// -idle-timeout and -write-timeout evict silent and non-reading peers,
// -max-inflight bounds concurrently executing batches (excess rejected
// with the retryable busy status instead of queueing), and
// -degrade-on-disk-error turns a sticky durability failure into
// read-only degraded mode — reads keep serving from memory, updates are
// rejected as unavailable — instead of accepting updates that would not
// survive a restart. docs/OPERATIONS.md has the runbook.
//
// Per-request tracing (internal/trace) is always compiled in: requests
// flagged by the client are traced on demand, -trace-sample N
// additionally head-samples 1 in N requests per connection, and every
// trace slower than -slow-threshold emits one structured slow-op log
// line on stdout. With sampling off and no flagged requests the
// tracing layer costs one clock read per batch (priced by E15).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, closes open connections, waits for the per-connection
// goroutines to drain, and (with -dir) writes a final checkpoint. With
// -stats D it prints one counters line every D (expvar-style:
// cumulative totals, not rates, plus p50/p99 service latency and —
// when durable — the p99 group-commit fsync time, from the same
// histograms /metrics exposes).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mwllsc/internal/fault"
	"mwllsc/internal/impls"
	"mwllsc/internal/obs"
	"mwllsc/internal/persist"
	"mwllsc/internal/server"
	"mwllsc/internal/trace"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], stop, os.Stdout, os.Stderr))
}

func run(args []string, stop <-chan os.Signal, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llscd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7787", "TCP listen address (port 0 picks a free port)")
		shards   = fs.Int("shards", 16, "number of independent multiword objects (K)")
		slots    = fs.Int("slots", 16, "process slots shared by all shards (N); bounds concurrent batches")
		words    = fs.Int("words", 2, "value width per shard in 64-bit words (W)")
		impl     = fs.String("impl", "jp", "implementation backing each shard (one of "+strings.Join(impls.Names(), ",")+")")
		maxBatch = fs.Int("maxbatch", 64, "max pipelined requests executed per registry acquisition")
		statsDur = fs.Duration("stats", 0, "print a cumulative stats + latency line this often (0 = never)")
		admin    = fs.String("admin", "", "admin HTTP listen address: /metrics, /statsz, /healthz, /debug/pprof (empty = disabled, port 0 picks a free port)")
		verbose  = fs.Bool("v", false, "log per-connection errors")
		dir      = fs.String("dir", "", "data directory for the durability layer (empty = in-memory only)")
		fsyncStr = fs.String("fsync", "everysec", "log fsync policy: none, everysec or always")
		ckptDur  = fs.Duration("checkpoint-interval", time.Minute, "time between checkpoints (0 = only at shutdown)")
		sampleN  = fs.Uint64("trace-sample", 0, "head-sample 1 in N requests per connection into /tracez and /slowz (0 = only client-flagged requests)")
		slowThr  = fs.Duration("slow-threshold", 0, "log one structured slow-op line per trace slower than this (0 = never)")
		maxConns = fs.Int("max-conns", 0, "max open connections; excess closed at accept (0 = unlimited)")
		idleTO   = fs.Duration("idle-timeout", 0, "close a connection whose next request does not arrive within this (0 = never)")
		writeTO  = fs.Duration("write-timeout", 0, "evict a connection whose peer stops reading responses for this long (0 = never)")
		inflight = fs.Int("max-inflight", 0, "max concurrently executing batches; excess rejected with the retryable busy status (0 = unbounded)")
		degrade  = fs.Bool("degrade-on-disk-error", false, "serve read-only (updates rejected as unavailable) once the durability log has a sticky failure")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if !server.SnapshotFits(*shards, *words) {
		fmt.Fprintf(stderr, "llscd: K=%d × W=%d words cannot fit a snapshot response in one wire frame\n", *shards, *words)
		return 2
	}
	m, err := impls.NewSharded(*impl, *shards, *slots, *words)
	if err != nil {
		fmt.Fprintf(stderr, "llscd: %v\n", err)
		return 1
	}
	// Histograms are always on in the daemon: E14 prices them at well
	// under the gate's 3% and a daemon you cannot ask for its latency
	// distribution is not operable. The tracer likewise: with sampling
	// off it only serves client-flagged requests (E15 prices the
	// untraced path), and a daemon that cannot answer "where did this
	// slow request go" is not debuggable.
	tr := trace.New(trace.Config{
		SampleN:       *sampleN,
		SlowThreshold: *slowThr,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, "llscd: "+format+"\n", a...)
		},
	})
	opts := []server.Option{
		server.WithMaxBatch(*maxBatch),
		server.WithMetrics(server.NewMetrics(*slots)),
		server.WithTracer(tr),
		server.WithMaxConns(*maxConns),
		server.WithIdleTimeout(*idleTO),
		server.WithWriteTimeout(*writeTO),
		server.WithMaxInflight(*inflight),
		server.WithDegradeOnDiskError(*degrade),
	}
	if *verbose {
		opts = append(opts, server.WithLogf(func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}))
	}
	var st *persist.Store
	if *dir != "" {
		policy, err := persist.ParsePolicy(*fsyncStr)
		if err != nil {
			fmt.Fprintf(stderr, "llscd: %v\n", err)
			return 2
		}
		popts := persist.Options{Policy: policy}
		// Crash-harness knobs, deliberately env-only: the fault-injecting
		// log layer (internal/fault) is for tests that SIGKILL the daemon
		// mid-failure and audit recovery, never for deployments, so it
		// does not get a flag. Any activation is announced loudly.
		writeAfter := envInt64(stderr, "LLSCD_FAULT_WRITE_AFTER")
		fsyncAfter := envInt64(stderr, "LLSCD_FAULT_FSYNC_AFTER")
		if writeAfter > 0 || fsyncAfter > 0 {
			ff := fault.NewFiles(fault.FilesConfig{
				Seed:                1,
				FailWriteAfterBytes: writeAfter,
				FailFsyncAfter:      int(fsyncAfter),
			})
			popts.OpenLog = func(path string) (persist.LogFile, error) { return ff.Open(path) }
			fmt.Fprintf(stdout, "llscd: FAULT INJECTION ACTIVE: log writes fail after %d bytes, fsync after %d rounds\n",
				writeAfter, fsyncAfter)
		}
		var rec persist.Recovery
		st, rec, err = persist.Open(*dir, m, popts)
		if err != nil {
			fmt.Fprintf(stderr, "llscd: %v\n", err)
			return 1
		}
		defer st.Close()
		fmt.Fprintf(stdout, "llscd: recovered %s: checkpoint=%v replayed=%d skipped=%d repaired=%d segments=%d next-seq=%d\n",
			*dir, rec.Checkpoint, rec.Replayed, rec.Skipped, rec.Repaired, rec.Segments, rec.NextSeq)
		opts = append(opts, server.WithPersist(st))
	}
	s := server.New(m, opts...)
	bound, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "llscd: %v\n", err)
		return 1
	}
	durable := "in-memory"
	if st != nil {
		durable = "dir=" + *dir + " fsync=" + st.Policy().String()
	}
	fmt.Fprintf(stdout, "llscd: %s\n", obs.BuildInfo())
	fmt.Fprintf(stdout, "llscd: serving K=%d shards × W=%d words (N=%d slots, impl=%s, maxbatch=%d, %s) on %s\n",
		*shards, *words, *slots, *impl, *maxBatch, durable, bound)

	if *admin != "" {
		reg := obs.NewRegistry()
		s.RegisterMetrics(reg)
		healthz := func() error { return nil }
		if st != nil {
			healthz = st.Err
		}
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintf(stderr, "llscd: admin: %v\n", err)
			return 1
		}
		mux := obs.NewAdminMux(reg, healthz, obs.BuildInfo())
		mux.HandleFunc("/tracez", tr.ServeTracez)
		mux.HandleFunc("/slowz", tr.ServeSlowz)
		adminSrv := &http.Server{Handler: mux}
		adminDone := make(chan struct{})
		go func() {
			defer close(adminDone)
			if err := adminSrv.Serve(al); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(stderr, "llscd: admin: %v\n", err)
			}
		}()
		defer func() {
			// Close (not Shutdown): admin requests are cheap and
			// stateless, nothing is worth delaying process exit for.
			adminSrv.Close()
			<-adminDone
		}()
		fmt.Fprintf(stdout, "llscd: admin on %s\n", al.Addr())
	}

	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsDur > 0 {
		ticker = time.NewTicker(*statsDur)
		tick = ticker.C
		defer ticker.Stop()
	}
	var ckptTicker *time.Ticker
	var ckptTick <-chan time.Time
	if st != nil && *ckptDur > 0 {
		ckptTicker = time.NewTicker(*ckptDur)
		ckptTick = ckptTicker.C
		defer ckptTicker.Stop()
	}
	for {
		select {
		case <-tick:
			sv := s.Stats()
			fmt.Fprintf(stdout, "llscd: conns=%d/%d reqs=%d upd=%d read=%d snap=%d multi=%d batches=%d avgbatch=%.1f badreq=%d persisterr=%d lat p50=%s p99=%s\n",
				sv.ConnsOpen, sv.ConnsTotal, sv.Reqs, sv.Updates, sv.Reads, sv.Snapshots, sv.Multis,
				sv.Batches, avg(sv.Reqs, sv.Batches), sv.BadReqs, sv.PersistErrs,
				time.Duration(sv.LatP50), time.Duration(sv.LatP99))
			if n := sv.ShedConns + sv.BusyRejects + sv.Evictions + sv.IdleCloses + sv.DegradedRejects; n > 0 {
				fmt.Fprintf(stdout, "llscd: overload shed=%d busy=%d evicted=%d idleclosed=%d degraded=%d\n",
					sv.ShedConns, sv.BusyRejects, sv.Evictions, sv.IdleCloses, sv.DegradedRejects)
			}
			if st != nil {
				ps := st.Stats()
				fmt.Fprintf(stdout, "llscd: persist records=%d bytes=%d syncs=%d ckpts=%d seq=%d fsync p99=%s\n",
					ps.Records, ps.Bytes, ps.Syncs, ps.Checkpoints, ps.Seq, time.Duration(sv.FsyncP99))
			}
		case <-ckptTick:
			if err := s.Checkpoint(); err != nil {
				fmt.Fprintf(stderr, "llscd: checkpoint: %v\n", err)
			} else if *verbose {
				fmt.Fprintf(stdout, "llscd: checkpoint written\n")
			}
		case <-stop:
			fmt.Fprintf(stdout, "llscd: shutting down\n")
			if err := s.Close(); err != nil {
				fmt.Fprintf(stderr, "llscd: close: %v\n", err)
				return 1
			}
			<-served
			if st != nil {
				// All connections have drained; one final checkpoint
				// makes the next startup instant (empty logs).
				if err := s.Checkpoint(); err != nil {
					fmt.Fprintf(stderr, "llscd: final checkpoint: %v\n", err)
					return 1
				}
			}
			sv := s.Stats()
			fmt.Fprintf(stdout, "llscd: served %d requests over %d connections\n", sv.Reqs, sv.ConnsTotal)
			return 0
		case err := <-served:
			if err == server.ErrClosed {
				return 0
			}
			fmt.Fprintf(stderr, "llscd: serve: %v\n", err)
			return 1
		}
	}
}

func avg(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// envInt64 parses an optional integer environment variable (the
// crash-harness fault knobs); unset or empty means 0, garbage is
// reported and treated as unset rather than silently arming a fault.
func envInt64(stderr io.Writer, name string) int64 {
	v := os.Getenv(name)
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		fmt.Fprintf(stderr, "llscd: ignoring %s=%q: %v\n", name, v, err)
		return 0
	}
	return n
}
