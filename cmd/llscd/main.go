// Command llscd is the mwllsc serving daemon: it owns a sharded
// multiword LL/SC map (shard.Map) and serves the five data operations —
// Update, Read, Snapshot, UpdateMulti, SnapshotAtomic — plus server
// stats over TCP with the pipelined binary protocol of internal/wire.
// Reach it with the mwllsc.Client (mwllsc.Dial) or any implementation
// of the wire format.
//
// Usage:
//
//	llscd [-addr 127.0.0.1:7787] [-shards 16] [-slots 16] [-words 2]
//	      [-impl jp] [-maxbatch 64] [-stats 0] [-v]
//	      [-dir ""] [-fsync everysec] [-checkpoint-interval 1m]
//
// With -dir the daemon is durable: committed updates are appended to
// per-shard logs in that directory (fsynced per -fsync: none, everysec
// or always), checkpoints are taken every -checkpoint-interval, and
// startup recovers the previous state from checkpoint plus logs. The
// geometry flags (-shards, -words) must match the directory's; see
// docs/OPERATIONS.md for the per-policy durability contract. Without
// -dir the map is purely in-memory, as before.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, closes open connections, waits for the per-connection
// goroutines to drain, and (with -dir) writes a final checkpoint. With
// -stats D it prints one counters line every D (expvar-style:
// cumulative totals, not rates).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mwllsc/internal/impls"
	"mwllsc/internal/persist"
	"mwllsc/internal/server"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], stop, os.Stdout, os.Stderr))
}

func run(args []string, stop <-chan os.Signal, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llscd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7787", "TCP listen address (port 0 picks a free port)")
		shards   = fs.Int("shards", 16, "number of independent multiword objects (K)")
		slots    = fs.Int("slots", 16, "process slots shared by all shards (N); bounds concurrent batches")
		words    = fs.Int("words", 2, "value width per shard in 64-bit words (W)")
		impl     = fs.String("impl", "jp", "implementation backing each shard (one of "+strings.Join(impls.Names(), ",")+")")
		maxBatch = fs.Int("maxbatch", 64, "max pipelined requests executed per registry acquisition")
		statsDur = fs.Duration("stats", 0, "print a cumulative stats line this often (0 = never)")
		verbose  = fs.Bool("v", false, "log per-connection errors")
		dir      = fs.String("dir", "", "data directory for the durability layer (empty = in-memory only)")
		fsyncStr = fs.String("fsync", "everysec", "log fsync policy: none, everysec or always")
		ckptDur  = fs.Duration("checkpoint-interval", time.Minute, "time between checkpoints (0 = only at shutdown)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if !server.SnapshotFits(*shards, *words) {
		fmt.Fprintf(stderr, "llscd: K=%d × W=%d words cannot fit a snapshot response in one wire frame\n", *shards, *words)
		return 2
	}
	m, err := impls.NewSharded(*impl, *shards, *slots, *words)
	if err != nil {
		fmt.Fprintf(stderr, "llscd: %v\n", err)
		return 1
	}
	opts := []server.Option{server.WithMaxBatch(*maxBatch)}
	if *verbose {
		opts = append(opts, server.WithLogf(func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}))
	}
	var st *persist.Store
	if *dir != "" {
		policy, err := persist.ParsePolicy(*fsyncStr)
		if err != nil {
			fmt.Fprintf(stderr, "llscd: %v\n", err)
			return 2
		}
		var rec persist.Recovery
		st, rec, err = persist.Open(*dir, m, persist.Options{Policy: policy})
		if err != nil {
			fmt.Fprintf(stderr, "llscd: %v\n", err)
			return 1
		}
		defer st.Close()
		fmt.Fprintf(stdout, "llscd: recovered %s: checkpoint=%v replayed=%d skipped=%d repaired=%d segments=%d next-seq=%d\n",
			*dir, rec.Checkpoint, rec.Replayed, rec.Skipped, rec.Repaired, rec.Segments, rec.NextSeq)
		opts = append(opts, server.WithPersist(st))
	}
	s := server.New(m, opts...)
	bound, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "llscd: %v\n", err)
		return 1
	}
	durable := "in-memory"
	if st != nil {
		durable = "dir=" + *dir + " fsync=" + st.Policy().String()
	}
	fmt.Fprintf(stdout, "llscd: serving K=%d shards × W=%d words (N=%d slots, impl=%s, maxbatch=%d, %s) on %s\n",
		*shards, *words, *slots, *impl, *maxBatch, durable, bound)

	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsDur > 0 {
		ticker = time.NewTicker(*statsDur)
		tick = ticker.C
		defer ticker.Stop()
	}
	var ckptTicker *time.Ticker
	var ckptTick <-chan time.Time
	if st != nil && *ckptDur > 0 {
		ckptTicker = time.NewTicker(*ckptDur)
		ckptTick = ckptTicker.C
		defer ckptTicker.Stop()
	}
	for {
		select {
		case <-tick:
			sv := s.Stats()
			fmt.Fprintf(stdout, "llscd: conns=%d/%d reqs=%d upd=%d read=%d snap=%d multi=%d batches=%d avgbatch=%.1f badreq=%d persisterr=%d\n",
				sv.ConnsOpen, sv.ConnsTotal, sv.Reqs, sv.Updates, sv.Reads, sv.Snapshots, sv.Multis,
				sv.Batches, avg(sv.Reqs, sv.Batches), sv.BadReqs, sv.PersistErrs)
			if st != nil {
				ps := st.Stats()
				fmt.Fprintf(stdout, "llscd: persist records=%d bytes=%d syncs=%d ckpts=%d seq=%d\n",
					ps.Records, ps.Bytes, ps.Syncs, ps.Checkpoints, ps.Seq)
			}
		case <-ckptTick:
			if err := s.Checkpoint(); err != nil {
				fmt.Fprintf(stderr, "llscd: checkpoint: %v\n", err)
			} else if *verbose {
				fmt.Fprintf(stdout, "llscd: checkpoint written\n")
			}
		case <-stop:
			fmt.Fprintf(stdout, "llscd: shutting down\n")
			if err := s.Close(); err != nil {
				fmt.Fprintf(stderr, "llscd: close: %v\n", err)
				return 1
			}
			<-served
			if st != nil {
				// All connections have drained; one final checkpoint
				// makes the next startup instant (empty logs).
				if err := s.Checkpoint(); err != nil {
					fmt.Fprintf(stderr, "llscd: final checkpoint: %v\n", err)
					return 1
				}
			}
			sv := s.Stats()
			fmt.Fprintf(stdout, "llscd: served %d requests over %d connections\n", sv.Reqs, sv.ConnsTotal)
			return 0
		case err := <-served:
			if err == server.ErrClosed {
				return 0
			}
			fmt.Fprintf(stderr, "llscd: serve: %v\n", err)
			return 1
		}
	}
}

func avg(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
