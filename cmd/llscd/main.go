// Command llscd is the mwllsc serving daemon: it owns a sharded
// multiword LL/SC map (shard.Map) and serves the five data operations —
// Update, Read, Snapshot, UpdateMulti, SnapshotAtomic — plus server
// stats over TCP with the pipelined binary protocol of internal/wire.
// Reach it with the mwllsc.Client (mwllsc.Dial) or any implementation
// of the wire format.
//
// Usage:
//
//	llscd [-addr 127.0.0.1:7787] [-shards 16] [-slots 16] [-words 2]
//	      [-impl jp] [-maxbatch 64] [-stats 0] [-v]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, closes open connections, and waits for the per-connection
// goroutines to drain. With -stats D it prints one counters line every
// D (expvar-style: cumulative totals, not rates).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mwllsc/internal/impls"
	"mwllsc/internal/server"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], stop, os.Stdout, os.Stderr))
}

func run(args []string, stop <-chan os.Signal, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llscd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7787", "TCP listen address (port 0 picks a free port)")
		shards   = fs.Int("shards", 16, "number of independent multiword objects (K)")
		slots    = fs.Int("slots", 16, "process slots shared by all shards (N); bounds concurrent batches")
		words    = fs.Int("words", 2, "value width per shard in 64-bit words (W)")
		impl     = fs.String("impl", "jp", "implementation backing each shard (one of "+strings.Join(impls.Names(), ",")+")")
		maxBatch = fs.Int("maxbatch", 64, "max pipelined requests executed per registry acquisition")
		statsDur = fs.Duration("stats", 0, "print a cumulative stats line this often (0 = never)")
		verbose  = fs.Bool("v", false, "log per-connection errors")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if !server.SnapshotFits(*shards, *words) {
		fmt.Fprintf(stderr, "llscd: K=%d × W=%d words cannot fit a snapshot response in one wire frame\n", *shards, *words)
		return 2
	}
	m, err := impls.NewSharded(*impl, *shards, *slots, *words)
	if err != nil {
		fmt.Fprintf(stderr, "llscd: %v\n", err)
		return 1
	}
	opts := []server.Option{server.WithMaxBatch(*maxBatch)}
	if *verbose {
		opts = append(opts, server.WithLogf(func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}))
	}
	s := server.New(m, opts...)
	bound, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "llscd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "llscd: serving K=%d shards × W=%d words (N=%d slots, impl=%s, maxbatch=%d) on %s\n",
		*shards, *words, *slots, *impl, *maxBatch, bound)

	served := make(chan error, 1)
	go func() { served <- s.Serve() }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsDur > 0 {
		ticker = time.NewTicker(*statsDur)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-tick:
			st := s.Stats()
			fmt.Fprintf(stdout, "llscd: conns=%d/%d reqs=%d upd=%d read=%d snap=%d multi=%d batches=%d avgbatch=%.1f badreq=%d\n",
				st.ConnsOpen, st.ConnsTotal, st.Reqs, st.Updates, st.Reads, st.Snapshots, st.Multis,
				st.Batches, avg(st.Reqs, st.Batches), st.BadReqs)
		case <-stop:
			fmt.Fprintf(stdout, "llscd: shutting down\n")
			if err := s.Close(); err != nil {
				fmt.Fprintf(stderr, "llscd: close: %v\n", err)
				return 1
			}
			<-served
			st := s.Stats()
			fmt.Fprintf(stdout, "llscd: served %d requests over %d connections\n", st.Reqs, st.ConnsTotal)
			return 0
		case err := <-served:
			if err == server.ErrClosed {
				return 0
			}
			fmt.Fprintf(stderr, "llscd: serve: %v\n", err)
			return 1
		}
	}
}

func avg(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
