package main

// The admin-plane smoke CI runs (see .github/workflows/ci.yml): start
// the daemon with -admin, hit /metrics and /healthz over real HTTP,
// assert a known metric name, cross-check the Prometheus totals
// against the Stats wire opcode, and verify shutdown leaks no
// goroutines. Written as a Go test rather than a curl script so the
// same check runs locally, under -race, and without shell quoting rot.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"mwllsc/internal/client"
)

var adminRE = regexp.MustCompile(`admin on (127\.0\.0\.1:\d+)`)

// adminAddr waits for the daemon's "llscd: admin on ..." line.
func adminAddr(t *testing.T, out *syncBuf) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := adminRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported an admin address\nstdout: %s", out)
		}
		time.Sleep(time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// metricValue extracts an un-labeled metric's value from Prometheus
// text output.
func metricValue(t *testing.T, body, name string) uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not in /metrics output:\n%s", name, body)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func TestAdminPlane(t *testing.T) {
	baseline := runtime.NumGoroutine()

	addr, out, shutdown := startDaemon(t,
		"-shards", "4", "-slots", "4", "-words", "2",
		"-admin", "127.0.0.1:0")
	aaddr := adminAddr(t, out)
	base := "http://" + aaddr

	// Drive some traffic so the counters are nonzero.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const updates = 10
	for i := 0; i < updates; i++ {
		if _, err := c.Add(ctx, uint64(i), []uint64{1, uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read(ctx, 3); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}

	// The wire Stats snapshot and the Prometheus totals must agree:
	// both fold the same striped banks. The Stats request itself is
	// counted before it executes, so its own request is in Reqs; no
	// wire traffic follows it, so /metrics sees the identical totals.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	code, body = httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: code=%d", code)
	}
	for name, want := range map[string]uint64{
		"llscd_requests_total":     st.Reqs,
		"llscd_updates_total":      st.Updates,
		"llscd_reads_total":        st.Reads,
		"llscd_bad_requests_total": st.BadReqs,
		"llscd_shards":             st.Shards,
	} {
		if got := metricValue(t, body, name); got != want {
			t.Errorf("%s = %d, want %d (the Stats wire snapshot)", name, got, want)
		}
	}
	if !strings.Contains(body, "llscd_request_latency_seconds_bucket") {
		t.Errorf("/metrics missing the service-latency histogram:\n%s", body)
	}

	code, body = httpGet(t, base+"/statsz")
	if code != 200 {
		t.Fatalf("/statsz: code=%d", code)
	}
	var statsz map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &statsz); err != nil {
		t.Fatalf("/statsz is not JSON: %v\n%s", err, body)
	}
	var lat struct {
		Count uint64  `json:"count"`
		P99   float64 `json:"p99"`
	}
	if err := json.Unmarshal(statsz["llscd_request_latency_seconds"], &lat); err != nil {
		t.Fatalf("/statsz latency histogram: %v", err)
	}
	if lat.Count == 0 || lat.P99 <= 0 {
		t.Errorf("/statsz latency histogram empty after %d requests: %+v", updates, lat)
	}

	code, _ = httpGet(t, base+"/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}

	c.Close()
	if got := shutdown(); got != 0 {
		t.Fatalf("daemon exit code %d\nstdout: %s", got, out)
	}
	// Goroutine-leak check: the admin http.Server, its listener, and
	// every request goroutine must be gone after shutdown.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		stacks := string(buf)
		if strings.Contains(stacks, "net/http") ||
			strings.Contains(stacks, "mwllsc/internal/server.") ||
			strings.Contains(stacks, "main.run") {
			t.Fatalf("goroutine leak after shutdown: %d > baseline %d\n%s", n, baseline, stacks)
		}
	}
}

// traceSpan mirrors the /tracez | /slowz span JSON (internal/trace
// SpanJSON); only the fields this test asserts on.
type traceSpan struct {
	TraceID string            `json:"trace_id"`
	Sampled bool              `json:"sampled"`
	TotalNS uint64            `json:"total_ns"`
	Stages  map[string]uint64 `json:"stages_ns"`
}

type tracePage struct {
	Kind    string      `json:"kind"`
	SampleN uint64      `json:"sample_n"`
	Retired uint64      `json:"retired"`
	Spans   []traceSpan `json:"spans"`
}

func TestAdminTracePlane(t *testing.T) {
	baseline := runtime.NumGoroutine()

	addr, out, shutdown := startDaemon(t,
		"-shards", "4", "-slots", "4", "-words", "2",
		"-trace-sample", "2", "-slow-threshold", "1ns",
		"-admin", "127.0.0.1:0")
	aaddr := adminAddr(t, out)
	base := "http://" + aaddr

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// One client-flagged trace with a known id plus enough plain traffic
	// that head sampling (1 in 2) must fire too.
	ct := client.Trace{ID: 0xfeedface}
	if _, err := c.Add(client.WithTrace(ctx, &ct), 1, []uint64{2, 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := c.Read(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Scrape mid-load: the daemon is still serving; spans retire after
	// the response flush, so poll until the rings are populated.
	var page tracePage
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := httpGet(t, base+"/tracez")
		if code != 200 {
			t.Fatalf("/tracez: code=%d", code)
		}
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatalf("/tracez is not JSON: %v\n%s", err, body)
		}
		if len(page.Spans) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/tracez never filled: %+v", page)
		}
		time.Sleep(time.Millisecond)
	}
	if page.Kind != "recent" || page.SampleN != 2 {
		t.Errorf("/tracez header: %+v", page)
	}

	code, body := httpGet(t, base+"/slowz")
	if code != 200 {
		t.Fatalf("/slowz: code=%d", code)
	}
	var slow tracePage
	if err := json.Unmarshal([]byte(body), &slow); err != nil {
		t.Fatalf("/slowz is not JSON: %v\n%s", err, body)
	}
	if slow.Kind != "slow" || len(slow.Spans) == 0 {
		t.Fatalf("/slowz empty with a 1ns threshold: %+v", slow)
	}

	// Every span's stage breakdown must account for its total: the
	// flush stage is defined as the remainder, so the sum should land
	// within 10% of total_ns (clock granularity is the only slack).
	found := false
	for _, spans := range [][]traceSpan{page.Spans, slow.Spans} {
		for _, s := range spans {
			var sum uint64
			for _, ns := range s.Stages {
				sum += ns
			}
			lo, hi := s.TotalNS*9/10, s.TotalNS*11/10
			if sum < lo || sum > hi {
				t.Errorf("span %s: stage sum %d outside 10%% of total %d (%+v)",
					s.TraceID, sum, s.TotalNS, s.Stages)
			}
			if s.TraceID == "00000000feedface" && !s.Sampled {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("client-flagged trace 0xfeedface not in /tracez or /slowz")
	}

	// The client got the server-side breakdown back on the wire.
	if len(ct.ServerStages) == 0 || ct.Total <= 0 {
		t.Errorf("client trace not filled: %+v", ct)
	}

	// The 1ns threshold makes every trace slow; at least one structured
	// slow-op line must have hit stdout.
	if !strings.Contains(out.String(), "slow-op trace=") {
		t.Errorf("no slow-op log line on stdout:\n%s", out)
	}

	c.Close()
	if got := shutdown(); got != 0 {
		t.Fatalf("daemon exit code %d\nstdout: %s", got, out)
	}
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		stacks := string(buf)
		if strings.Contains(stacks, "net/http") ||
			strings.Contains(stacks, "mwllsc/internal/server.") ||
			strings.Contains(stacks, "mwllsc/internal/trace.") ||
			strings.Contains(stacks, "main.run") {
			t.Fatalf("goroutine leak after shutdown: %d > baseline %d\n%s", n, baseline, stacks)
		}
	}
}

func TestAdminHealthzTracksPersistFailure(t *testing.T) {
	// A durable daemon's /healthz is wired to the store's sticky error;
	// a healthy store answers 200.
	dir := t.TempDir()
	_, out, shutdown := startDaemon(t,
		"-shards", "4", "-slots", "4", "-words", "2",
		"-dir", dir, "-admin", "127.0.0.1:0")
	aaddr := adminAddr(t, out)
	code, body := httpGet(t, fmt.Sprintf("http://%s/healthz", aaddr))
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz on healthy durable daemon: code=%d body=%q", code, body)
	}
	if got := shutdown(); got != 0 {
		t.Fatalf("daemon exit code %d", got)
	}
}
