package main

import (
	"context"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/impls"
	"mwllsc/internal/persist"
)

// The crash harness re-execs the test binary as a real llscd process so
// it can be SIGKILLed mid-load. With LLSCD_CRASH_CHILD=1 the binary is
// not a test run at all: TestMain becomes the daemon's main().
func TestMain(m *testing.M) {
	if os.Getenv("LLSCD_CRASH_CHILD") == "1" {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		args := []string{
			"-addr", "127.0.0.1:0",
			"-shards", "8", "-slots", "8", "-words", "2",
			"-dir", os.Getenv("LLSCD_CRASH_DIR"),
			"-fsync", "always",
			"-checkpoint-interval", "25ms", // let checkpoints race the kill
		}
		if os.Getenv("LLSCD_CRASH_DEGRADE") == "1" {
			args = append(args, "-degrade-on-disk-error")
		}
		// The LLSCD_FAULT_* knobs (disk fault injection) are read by
		// run() itself; the harness just leaves them in the environment.
		os.Exit(run(args, stop, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestCrashRecovery is the durability acceptance test: a real daemon
// process under -fsync always is killed with SIGKILL mid-load (with
// checkpoints racing the kill), then the data directory is recovered
// in-process and checked for two properties:
//
//   - no acknowledged write is lost, and nothing is double-applied:
//     acked <= recovered op count <= issued;
//   - conservation: every op added {1, 3}, so the recovered word-1 sum
//     is exactly three times the word-0 sum, whatever tail of
//     unacknowledged ops survived.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), "LLSCD_CRASH_CHILD=1", "LLSCD_CRASH_DIR="+dir)
	out := &syncBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never reported an address:\n%s", out)
		}
		time.Sleep(time.Millisecond)
	}

	const (
		workers = 6
		target  = 1500 // acks to collect before pulling the plug
	)
	var issued, acked atomic.Uint64
	stopLoad := make(chan struct{})
	loadDone := make(chan struct{}, workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func(wkr int) {
			defer func() { loadDone <- struct{}{} }()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				key := uint64(wkr*100003 + i) // spread across shards
				issued.Add(1)
				if _, err := c.Add(ctx, key, []uint64{1, 3}); err != nil {
					return // the kill severed the connection
				}
				acked.Add(1)
			}
		}(wkr)
	}

	deadline = time.Now().Add(30 * time.Second)
	for acked.Load() < target {
		if time.Now().After(deadline) {
			t.Fatalf("only %d acks before deadline:\n%s", acked.Load(), out)
		}
		time.Sleep(time.Millisecond)
	}
	// Pull the plug mid-flight: SIGKILL, no shutdown path runs.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait()
	close(stopLoad)
	for i := 0; i < workers; i++ {
		<-loadDone
	}
	nIssued, nAcked := issued.Load(), acked.Load()

	// Recover the directory the way a restarted daemon would.
	m, err := impls.NewSharded("jp", 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, rec, err := persist.Open(dir, m, persist.Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st.Close()
	t.Logf("issued=%d acked=%d recovery=%+v", nIssued, nAcked, rec)

	snap := m.NewSnapshotBuffer()
	m.SnapshotAtomic(snap)
	var sum0, sum1 uint64
	for _, row := range snap {
		sum0 += row[0]
		sum1 += row[1]
	}
	if sum0 < nAcked {
		t.Errorf("acknowledged-write loss: recovered %d ops, %d were acked", sum0, nAcked)
	}
	if sum0 > nIssued {
		t.Errorf("phantom writes: recovered %d ops, only %d were issued", sum0, nIssued)
	}
	if sum1 != 3*sum0 {
		t.Errorf("conservation broken: word sums (%d, %d), want word1 == 3×word0", sum0, sum1)
	}
}

// TestCrashRecoveryUnderDiskFault is the hostile variant: the child
// daemon runs with fault injection armed (the fsync budget runs dry
// mid-load) and -degrade-on-disk-error, so partway through the run the
// durability layer goes sick, in-flight acks start failing, and the
// server drops to read-only. The harness keeps driving load through
// the failures, verifies reads still serve while updates are refused,
// then SIGKILLs the child and checks the same two recovery invariants
// as TestCrashRecovery: the acks that landed before the disk went bad
// are never lost (acked <= recovered <= issued), and conservation
// holds across whatever unacknowledged tail survived.
func TestCrashRecoveryUnderDiskFault(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"LLSCD_CRASH_CHILD=1",
		"LLSCD_CRASH_DIR="+dir,
		"LLSCD_CRASH_DEGRADE=1",
		// Let ~300 group-commit fsync rounds succeed, then fail them
		// all: enough runway for a real acked prefix under -fsync
		// always, with the fault guaranteed to fire mid-load.
		"LLSCD_FAULT_FSYNC_AFTER=300",
	)
	out := &syncBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child never reported an address:\n%s", out)
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(out.String(), "FAULT INJECTION ACTIVE") {
		t.Fatalf("child did not announce fault injection:\n%s", out)
	}

	// Unlike TestCrashRecovery's workers, these continue through
	// errors: once the disk goes sick every update fails its ack, and
	// the point is to keep offering load across that transition.
	const workers = 6
	var issued, acked, failed atomic.Uint64
	stopLoad := make(chan struct{})
	loadDone := make(chan struct{}, workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func(wkr int) {
			defer func() { loadDone <- struct{}{} }()
			c, err := client.Dial(addr, client.WithRetries(0))
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				key := uint64(wkr*100003 + i) // spread across shards
				issued.Add(1)
				if _, err := c.Add(ctx, key, []uint64{1, 3}); err != nil {
					failed.Add(1)
					time.Sleep(time.Millisecond) // don't spin hot on a dead daemon
					continue
				}
				acked.Add(1)
			}
		}(wkr)
	}

	// Wait for a healthy acked prefix AND for the fault to have fired
	// (a burst of failed acks proves it).
	deadline = time.Now().Add(45 * time.Second)
	for acked.Load() < 50 || failed.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatalf("fault never surfaced: acked=%d failed=%d\n%s",
				acked.Load(), failed.Load(), out)
		}
		time.Sleep(time.Millisecond)
	}

	// Degraded mode is read-only, not down: a fresh client must still
	// be admitted and served reads while every update is being refused.
	probe, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial during degraded mode: %v", err)
	}
	probeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if _, err := probe.Read(probeCtx, 0); err != nil {
		t.Errorf("read during degraded mode: %v", err)
	}
	cancel()
	probe.Close()

	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait()
	close(stopLoad)
	for i := 0; i < workers; i++ {
		<-loadDone
	}
	nIssued, nAcked, nFailed := issued.Load(), acked.Load(), failed.Load()
	if nFailed == 0 {
		t.Fatal("no failed acks observed; the injected fault never fired")
	}

	// Recover with a clean (fault-free) persistence layer, the way a
	// restarted daemon on a healed disk would.
	m, err := impls.NewSharded("jp", 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, rec, err := persist.Open(dir, m, persist.Options{})
	if err != nil {
		t.Fatalf("recovery after disk fault failed: %v", err)
	}
	defer st.Close()
	t.Logf("issued=%d acked=%d failed=%d recovery=%+v", nIssued, nAcked, nFailed, rec)

	snap := m.NewSnapshotBuffer()
	m.SnapshotAtomic(snap)
	var sum0, sum1 uint64
	for _, row := range snap {
		sum0 += row[0]
		sum1 += row[1]
	}
	if sum0 < nAcked {
		t.Errorf("acknowledged-write loss: recovered %d ops, %d were acked", sum0, nAcked)
	}
	if sum0 > nIssued {
		t.Errorf("phantom writes: recovered %d ops, only %d were issued", sum0, nIssued)
	}
	if sum1 != 3*sum0 {
		t.Errorf("conservation broken: word sums (%d, %d), want word1 == 3×word0", sum0, sum1)
	}
}
