package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mwllsc/internal/bench"
)

// writeReport renders a one-experiment report to a temp file.
func writeReport(t *testing.T, name string, ops float64, allocs float64) string {
	t.Helper()
	e11 := &bench.Table{ID: "e11", Cols: []string{"procs", "conns", "ops/s"}}
	e11.AddRow(1, 1, ops)
	e13 := &bench.Table{ID: "e13", Cols: []string{"path", "allocs/op"}}
	e13.AddRow("server update execute", allocs)
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bench.NewReport([]*bench.Table{e11, e13}).WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateCLI(t *testing.T) {
	base := writeReport(t, "base.json", 100000, 0)

	var out, errOut strings.Builder
	if code := run([]string{base, writeReport(t, "same.json", 100000, 0)}, &out, &errOut); code != 0 {
		t.Fatalf("identical reports: exit %d, out %q err %q", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "llscgate: ok") {
		t.Fatalf("pass output %q", out.String())
	}

	out.Reset()
	if code := run([]string{base, writeReport(t, "slow.json", 60000, 0)}, &out, &errOut); code != 1 {
		t.Fatalf("40%% throughput loss: exit %d, want 1 (out %q)", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("fail output %q", out.String())
	}

	out.Reset()
	if code := run([]string{base, writeReport(t, "leak.json", 100000, 1)}, &out, &errOut); code != 1 {
		t.Fatalf("alloc increase: exit %d, want 1 (out %q)", code, out.String())
	}

	// Loosened bands via flags: the same 40% loss passes with -fail 0.5.
	out.Reset()
	if code := run([]string{"-fail", "0.5", base, writeReport(t, "slow2.json", 60000, 0)}, &out, &errOut); code != 0 {
		t.Fatalf("-fail 0.5 with 40%% loss: exit %d, want 0 (out %q)", code, out.String())
	}
}

func TestGateCLIUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent.json", "/nonexistent2.json"}, &out, &errOut); code != 2 {
		t.Fatalf("unreadable reports: exit %d, want 2", code)
	}
}

func TestGateCLIBestOfSeveralRuns(t *testing.T) {
	base := writeReport(t, "base.json", 100000, 0)
	slow := writeReport(t, "slow.json", 60000, 0)
	fast := writeReport(t, "fast.json", 98000, 0)

	var out, errOut strings.Builder
	// The slow run alone fails (40% median loss)...
	if code := run([]string{base, slow}, &out, &errOut); code != 1 {
		t.Fatalf("slow run alone: exit %d, want 1 (out %q)", code, out.String())
	}
	// ...but paired with a healthy run the cell-wise best passes.
	out.Reset()
	if code := run([]string{base, slow, fast}, &out, &errOut); code != 0 {
		t.Fatalf("best-of slow+fast: exit %d, want 0 (out %q)", code, out.String())
	}
}
