// Command llscgate is the benchmark regression gate: it compares a
// fresh llscbench JSON report against a committed baseline and exits
// non-zero when the performance trajectory regressed beyond the
// tolerance bands, which is how CI turns the BENCH_*.json artifact
// trail into a blocking check instead of a graph nobody reads.
//
// Usage:
//
//	llscgate [-warn 0.10] [-fail 0.25] BENCH_baseline.json BENCH_current.json [more_current.json ...]
//
// With several current reports (CI records two back-to-back runs) the
// gate compares against their cell-wise best — maximum throughput,
// minimum allocs/op — so one run catching a slow scheduler episode
// cannot fail the build while a real regression, which depresses every
// run, still does.
//
// Gated columns (matched by name, rows matched by their leading key
// columns so ordering may differ): throughput columns ("…/s") warn per
// row at -warn fractional loss and fail when an experiment's MEDIAN
// loss reaches -fail — or any single row falls past twice -fail — a
// rule sized so that single-point jitter on a shared runner warns while
// an across-the-board regression fails (see internal/bench/gate.go for
// the noise measurements behind it). "allocs/op" columns fail on any
// increase, because the gated hot paths are exactly zero by design.
// Structural differences — experiments or rows present in only one
// report — are warnings, so a baseline predating a new experiment does
// not block the PR adding it.
//
// Exit status: 0 pass (warnings allowed), 1 regression, 2 usage or
// unreadable report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mwllsc/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llscgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		warn = fs.Float64("warn", 0.10, "fractional throughput loss that warns")
		fail = fs.Float64("fail", 0.25, "fractional throughput loss that fails")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 2 {
		fmt.Fprintln(stderr, "usage: llscgate [-warn f] [-fail f] baseline.json current.json [more_current.json ...]")
		return 2
	}
	base, err := bench.ReadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "llscgate: baseline: %v\n", err)
		return 2
	}
	runs := make([]*bench.Report, 0, fs.NArg()-1)
	for _, arg := range fs.Args()[1:] {
		r, err := bench.ReadReport(arg)
		if err != nil {
			fmt.Fprintf(stderr, "llscgate: current: %v\n", err)
			return 2
		}
		runs = append(runs, r)
	}
	cur := bench.BestOf(runs...)

	// Comparing runs from different parallelism regimes silently gates
	// apples against oranges; say so, then gate anyway — the row keys
	// carry the procs value, so same-procs rows still pair up honestly.
	if base.GOMAXPROCS != cur.GOMAXPROCS || base.NumCPU != cur.NumCPU {
		fmt.Fprintf(stdout, "note: baseline recorded at GOMAXPROCS=%d/cpus=%d, current at GOMAXPROCS=%d/cpus=%d\n",
			base.GOMAXPROCS, base.NumCPU, cur.GOMAXPROCS, cur.NumCPU)
	}

	res := bench.CompareReports(base, cur, bench.GateOptions{WarnFrac: *warn, FailFrac: *fail})
	for _, w := range res.Warnings {
		fmt.Fprintf(stdout, "warn: %s\n", w)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(stdout, "FAIL: %s\n", f)
	}
	if !res.OK() {
		fmt.Fprintf(stdout, "llscgate: %d regression(s) over %d gated cells\n", len(res.Failures), res.Checked)
		return 1
	}
	fmt.Fprintf(stdout, "llscgate: ok (%d gated cells, %d warnings)\n", res.Checked, len(res.Warnings))
	return 0
}
