package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mwllsc/internal/bench"
)

func TestRunInProcess(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-conns", "1", "-workers", "2", "-dur", "30ms", "-shards", "2", "-words", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	if s := out.String(); !strings.Contains(s, "ops/s") || !strings.Contains(s, "in-process llscd") {
		t.Fatalf("unexpected output:\n%s", s)
	}
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-conns", "1", "-workers", "1", "-dur", "30ms", "-shards", "2", "-words", "1", "-json", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report bench.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "e11" {
		t.Fatalf("report experiments: %+v", report.Experiments)
	}
	if len(report.Experiments[0].Records) != 1 {
		t.Fatalf("%d records, want 1", len(report.Experiments[0].Records))
	}
}

func TestRunTraceExemplars(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-conns", "1", "-workers", "2", "-dur", "40ms", "-shards", "2", "-words", "1", "-trace", "4"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "end-to-end stage breakdown") {
		t.Fatalf("no trace exemplar table:\n%s", s)
	}
	for _, col := range []string{"p50", "p99", "execute us", "wire us"} {
		if !strings.Contains(s, col) {
			t.Fatalf("trace table missing %q:\n%s", col, s)
		}
	}
}

func TestRunErrsColumnInJSON(t *testing.T) {
	// The JSON record must carry the op-error count (zero on a clean
	// run) so a CI smoke can assert on it.
	path := filepath.Join(t.TempDir(), "load.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-conns", "1", "-workers", "1", "-dur", "30ms", "-shards", "2", "-words", "1", "-json", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report bench.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	rec := report.Experiments[0].Records[0]
	v, ok := rec["errs"]
	if !ok {
		t.Fatalf("record has no errs field: %+v", rec)
	}
	if fmt.Sprintf("%v", v) != "0" {
		t.Fatalf("errs = %v on a clean run", v)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunWorkersBelowConns(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-conns", "4", "-workers", "2", "-dur", "10ms"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunUnreachableAddr(t *testing.T) {
	var out, errOut bytes.Buffer
	// A reserved port on loopback nothing listens on; dialing must fail fast.
	if code := run([]string{"-addr", "127.0.0.1:1", "-conns", "1", "-workers", "1", "-dur", "10ms"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
