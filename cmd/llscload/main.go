// Command llscload is the standalone load generator for the llscd
// serving layer — the same closed-loop measurement as llscbench's E11,
// pointed at any server. With -addr it drives a running llscd; without
// it, it spins an in-process server over loopback first (the
// self-contained E11 setup).
//
// Usage:
//
//	llscload [-addr host:port] [-conns 4] [-workers 64] [-dur 2s]
//	         [-shards 16] [-slots 16] [-words 2] [-maxbatch 64] [-json out.json]
//
// It reports aggregate throughput, client-side p50/p99 latency, the
// server-side batch-execute p50/p99 from the target's latency
// histograms (zero against servers that predate them), and the
// server's average batch size, in the same table and JSON formats as
// llscbench, so runs slot into the BENCH_*.json trajectory. The gap
// between the client and server columns is the wire, syscall and queue
// time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mwllsc/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llscload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "", "llscd address to drive; empty = start an in-process server")
		conns    = fs.Int("conns", 4, "client connection-pool size")
		workers  = fs.Int("workers", 64, "closed-loop worker goroutines (pipelining depth = workers/conns)")
		dur      = fs.Duration("dur", 2*time.Second, "measurement window")
		shards   = fs.Int("shards", 16, "in-process server: shard count K")
		slots    = fs.Int("slots", 16, "in-process server: process slots N")
		words    = fs.Int("words", 2, "value width in 64-bit words W (must match a remote server)")
		maxBatch = fs.Int("maxbatch", 64, "in-process server: max requests per registry acquisition")
		jsonOut  = fs.String("json", "", "also write a JSON report to this path (\"-\" = stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *conns < 1 || *workers < *conns {
		fmt.Fprintf(stderr, "llscload: need conns >= 1 and workers >= conns (got %d/%d)\n", *conns, *workers)
		return 2
	}

	target := *addr
	if target == "" {
		n := *slots
		if n < *conns+2 {
			// Each in-flight batch pins a slot; keep spares so the
			// loadgen's stats calls never queue behind its own load.
			n = *conns + 2
		}
		srv, a, err := bench.StartLoopbackServer(*shards, n, *words, *maxBatch)
		if err != nil {
			fmt.Fprintf(stderr, "llscload: %v\n", err)
			return 1
		}
		defer srv.Close()
		target = a
		fmt.Fprintf(stdout, "llscload: in-process llscd (K=%d N=%d W=%d) on %s\n", *shards, n, *words, target)
	}

	res, err := bench.NetLoadClosedLoop(target, *conns, *workers, *words, *dur)
	if err != nil {
		fmt.Fprintf(stderr, "llscload: %v\n", err)
		return 1
	}

	t := &bench.Table{
		ID:    "e11",
		Title: fmt.Sprintf("llscload: closed-loop serving load against %s (%v)", target, *dur),
		Note:  "one Add per round trip per worker; workers pipeline through the shared connection pool.",
		Cols:  []string{"conns", "inflight", "ops", "ops/s", "p50 us", "p99 us", "srv p50 us", "srv p99 us", "avg batch"},
	}
	t.AddRow(*conns, *workers, res.Ops, res.OpsPerSec,
		float64(res.P50.Nanoseconds())/1e3, float64(res.P99.Nanoseconds())/1e3,
		float64(res.SrvP50.Nanoseconds())/1e3, float64(res.SrvP99.Nanoseconds())/1e3, res.AvgBatch)

	jsonOnly := *jsonOut == "-"
	if !jsonOnly {
		t.Fprint(stdout)
	}
	if *jsonOut != "" {
		report := bench.NewReport([]*bench.Table{t})
		out := stdout
		if !jsonOnly {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(stderr, "llscload: %v\n", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(stderr, "llscload: writing JSON report: %v\n", err)
			return 1
		}
	}
	return 0
}
