// Command llscload is the standalone load generator for the llscd
// serving layer — the same closed-loop measurement as llscbench's E11,
// pointed at any server. With -addr it drives a running llscd; without
// it, it spins an in-process server over loopback first (the
// self-contained E11 setup).
//
// Usage:
//
//	llscload [-addr host:port] [-conns 4] [-workers 64] [-dur 2s]
//	         [-timeout 0]
//	         [-shards 16] [-slots 16] [-words 2] [-maxbatch 64]
//	         [-json out.json] [-trace 0]
//
// It reports aggregate throughput, client-side p50/p99 latency, the
// server-side batch-execute p50/p99 from the target's latency
// histograms (zero against servers that predate them), the server's
// average batch size, and the count of failed operations, in the same
// table and JSON formats as llscbench, so runs slot into the
// BENCH_*.json trajectory. The gap between the client and server
// columns is the wire, syscall and queue time. Any op errors make the
// run exit nonzero (after reporting), so a CI smoke cannot pass on a
// silently failing load.
//
// With -trace N every Nth request per worker is traced end to end
// (wire-propagated trace id, see docs/OBSERVABILITY.md): a second
// table breaks the p50 and p99 exemplar requests into client send
// queue, on-wire round trip, and — against an llscd with tracing —
// the six server stages (decode, queue, acquire, execute, persist,
// fsync), each row grep-able in the server's /tracez by trace id.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"time"

	"mwllsc/internal/bench"
	"mwllsc/internal/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llscload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "", "llscd address to drive; empty = start an in-process server")
		conns    = fs.Int("conns", 4, "client connection-pool size")
		workers  = fs.Int("workers", 64, "closed-loop worker goroutines (pipelining depth = workers/conns)")
		dur      = fs.Duration("dur", 2*time.Second, "measurement window")
		shards   = fs.Int("shards", 16, "in-process server: shard count K")
		slots    = fs.Int("slots", 16, "in-process server: process slots N")
		words    = fs.Int("words", 2, "value width in 64-bit words W (must match a remote server)")
		maxBatch = fs.Int("maxbatch", 64, "in-process server: max requests per registry acquisition")
		jsonOut  = fs.String("json", "", "also write a JSON report to this path (\"-\" = stdout only)")
		traceN   = fs.Int("trace", 0, "trace every Nth request per worker and print p50/p99 end-to-end stage exemplars (0 = off)")
		timeout  = fs.Duration("timeout", 0, "per-operation deadline; a stalled server turns into counted op errors instead of a hung loadgen (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *conns < 1 || *workers < *conns {
		fmt.Fprintf(stderr, "llscload: need conns >= 1 and workers >= conns (got %d/%d)\n", *conns, *workers)
		return 2
	}

	target := *addr
	if target == "" {
		n := *slots
		if n < *conns+2 {
			// Each in-flight batch pins a slot; keep spares so the
			// loadgen's stats calls never queue behind its own load.
			n = *conns + 2
		}
		srv, a, err := bench.StartLoopbackServer(*shards, n, *words, *maxBatch)
		if err != nil {
			fmt.Fprintf(stderr, "llscload: %v\n", err)
			return 1
		}
		defer srv.Close()
		target = a
		fmt.Fprintf(stdout, "llscload: in-process llscd (K=%d N=%d W=%d) on %s\n", *shards, n, *words, target)
	}

	// Preflight before spinning up workers: an unreachable or wedged
	// target should fail in seconds with a clear message, not leave the
	// loadgen (or a CI job) hanging in a TCP connect for minutes.
	preflight := 3 * time.Second
	if *timeout > 0 {
		preflight = *timeout
	}
	if nc, err := net.DialTimeout("tcp", target, preflight); err != nil {
		fmt.Fprintf(stderr, "llscload: target unreachable: %v\n", err)
		return 1
	} else {
		nc.Close()
	}

	var copts []client.Option
	if *timeout > 0 {
		copts = append(copts, client.WithOpTimeout(*timeout))
	}
	res, err := bench.NetLoadClosedLoop(target, *conns, *workers, *words, *dur, *traceN, copts...)
	if err != nil {
		fmt.Fprintf(stderr, "llscload: %v\n", err)
		return 1
	}

	t := &bench.Table{
		ID:    "e11",
		Title: fmt.Sprintf("llscload: closed-loop serving load against %s (%v)", target, *dur),
		Note:  "one Add per round trip per worker; workers pipeline through the shared connection pool.",
		Cols:  []string{"conns", "inflight", "ops", "errs", "ops/s", "p50 us", "p99 us", "srv p50 us", "srv p99 us", "avg batch"},
	}
	t.AddRow(*conns, *workers, res.Ops, res.Errs, res.OpsPerSec,
		float64(res.P50.Nanoseconds())/1e3, float64(res.P99.Nanoseconds())/1e3,
		float64(res.SrvP50.Nanoseconds())/1e3, float64(res.SrvP99.Nanoseconds())/1e3, res.AvgBatch)
	tables := []*bench.Table{t}
	if *traceN > 0 {
		tables = append(tables, traceTable(res.Traces, target))
	}

	jsonOnly := *jsonOut == "-"
	if !jsonOnly {
		for _, tab := range tables {
			tab.Fprint(stdout)
		}
	}
	if *jsonOut != "" {
		report := bench.NewReport(tables)
		out := stdout
		if !jsonOnly {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(stderr, "llscload: %v\n", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(stderr, "llscload: writing JSON report: %v\n", err)
			return 1
		}
	}
	if res.Errs > 0 {
		fmt.Fprintf(stderr, "llscload: %d op error(s), e.g. %s\n", res.Errs, res.LastErr)
		return 1
	}
	return 0
}

// traceTable breaks the p50 and p99 exemplar traced requests into the
// end-to-end stages: client send-queue wait, on-wire round trip (the
// round trip minus whatever the server accounted for), and the six
// server-side stages echoed on the wire. Against a server without
// tracing the server columns are zero and "wire us" is the whole round
// trip.
func traceTable(traces []client.Trace, target string) *bench.Table {
	t := &bench.Table{
		ID:    "trace",
		Title: fmt.Sprintf("llscload: end-to-end stage breakdown of traced exemplars against %s", target),
		Note: "queue = client send-queue wait; wire = round trip minus server-accounted time; " +
			"server stages per docs/OBSERVABILITY.md; trace ids grep-able in the server's /tracez and /slowz.",
		Cols: []string{"exemplar", "trace", "total us", "queue us", "wire us",
			"decode us", "srv queue us", "acquire us", "execute us", "persist us", "fsync us"},
	}
	if len(traces) == 0 {
		return t
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Total < traces[j].Total })
	rows := []struct {
		name string
		tr   client.Trace
	}{
		{"p50", traces[len(traces)/2]},
		{"p99", traces[len(traces)*99/100]},
	}
	us := func(ns uint64) float64 { return float64(ns) / 1e3 }
	for _, r := range rows {
		var srv [6]uint64
		var srvSum uint64
		for i, ns := range r.tr.ServerStages {
			if i >= len(srv) {
				break
			}
			srv[i] = ns
			srvSum += ns
		}
		wire := r.tr.RoundTrip.Nanoseconds() - int64(srvSum)
		if wire < 0 {
			wire = 0
		}
		t.AddRow(r.name, fmt.Sprintf("%016x", r.tr.ID),
			float64(r.tr.Total.Nanoseconds())/1e3,
			float64(r.tr.QueueWait.Nanoseconds())/1e3,
			float64(wire)/1e3,
			us(srv[0]), us(srv[1]), us(srv[2]), us(srv[3]), us(srv[4]), us(srv[5]))
	}
	return t
}
