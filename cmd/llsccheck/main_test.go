package main

import "testing"

func TestRunRandomSeeds(t *testing.T) {
	if code := run([]string{"-seeds", "5", "-n", "2", "-w", "2", "-ops", "2"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunAllAdversaries(t *testing.T) {
	for _, adv := range []string{"starve", "torn", "crash"} {
		if code := run([]string{"-seeds", "4", "-adversary", adv}); code != 0 {
			t.Fatalf("adversary %s: exit code %d", adv, code)
		}
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	if code := run([]string{"-adversary", "nope"}); code == 0 {
		t.Fatal("unknown adversary accepted")
	}
}

func TestRunExploreMode(t *testing.T) {
	if code := run([]string{"-explore", "1", "-n", "2", "-w", "1", "-ops", "1"}); code != 0 {
		t.Fatalf("explore exit code %d", code)
	}
}

func TestRunDumpMode(t *testing.T) {
	if code := run([]string{"-dump", "-seed", "2", "-n", "2", "-w", "1", "-ops", "1"}); code != 0 {
		t.Fatalf("dump exit code %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunVerboseSeeds(t *testing.T) {
	if code := run([]string{"-v", "-seeds", "2", "-n", "2", "-w", "1", "-ops", "1"}); code != 0 {
		t.Fatalf("verbose exit code %d", code)
	}
}

func TestRunExploreRespectsMaxRuns(t *testing.T) {
	// A tight -maxruns cap must still exit cleanly (capped, not failed).
	if code := run([]string{"-explore", "2", "-maxruns", "10", "-n", "2", "-w", "1", "-ops", "1"}); code != 0 {
		t.Fatalf("capped explore exit code %d", code)
	}
}
