// Command llsccheck model-checks the paper's algorithm in the deterministic
// simulator: seeded adversarial schedules with runtime checking of the
// proof's invariants (I1, I2, Lemmas 2-3), linearizability checking of the
// resulting histories, and Theorem 1 step-bound verification. It is the
// executable counterpart of the paper's §3.
//
// Usage:
//
//	llsccheck [-n 3] [-w 4] [-ops 5] [-seeds 200] [-adversary random|starve|crash|torn]
//	llsccheck -explore 2 [-n 2] [-w 2] [-ops 1] [-maxruns 100000]   # systematic schedules
//	llsccheck -dump -seed 7                                          # transcript of one run
//
// Exit status 0 means every schedule passed all checks.
package main

import (
	"flag"
	"fmt"
	"os"

	"mwllsc/internal/check"
	"mwllsc/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("llsccheck", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 3, "processes")
		w         = fs.Int("w", 4, "words per value")
		ops       = fs.Int("ops", 5, "LL;SC rounds per process")
		seeds     = fs.Int("seeds", 200, "number of seeds to explore")
		adversary = fs.String("adversary", "random", "schedule adversary: random|starve|crash|torn")
		verbose   = fs.Bool("v", false, "print per-seed results")
		explore   = fs.Int("explore", -1, "systematic exploration with this preemption bound (overrides -seeds)")
		maxRuns   = fs.Int("maxruns", 200000, "cap on explored schedules with -explore")
		dump      = fs.Bool("dump", false, "print the execution transcript of a single run")
		dumpSeed  = fs.Int64("seed", 0, "seed for -dump")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *dump {
		return runDump(*n, *w, *ops, *dumpSeed)
	}
	if *explore >= 0 {
		return runExplore(*n, *w, *ops, *explore, *maxRuns)
	}

	var (
		linChecked int
		helped     int64
		worstLL    int
		worstSC    int
	)
	for seed := int64(0); seed < int64(*seeds); seed++ {
		cfg := sim.Config{
			N: *n, W: *w, OpsPerProc: *ops, Seed: seed, VLEvery: 3,
		}
		skipLin := false
		switch *adversary {
		case "random":
		case "starve":
			cfg.Policy = &sim.Starve{Victim: int(seed) % *n, Every: 200, Inner: sim.NewRandom(seed)}
			cfg.TornReads = true
		case "torn":
			cfg.TornReads = true
		case "crash":
			cfg.Crashes = map[int]int{int(seed) % *n: 20 + int(seed%50)}
			skipLin = true // pending ops of crashed processes are unrecorded
		default:
			fmt.Fprintf(os.Stderr, "llsccheck: unknown adversary %q\n", *adversary)
			return 2
		}

		res, err := sim.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llsccheck: seed %d: %v\n", seed, err)
			return 1
		}
		if len(res.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "llsccheck: seed %d: %d violation(s):\n", seed, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "  %v\n", v)
			}
			return 1
		}
		if !skipLin && len(res.History) <= check.MaxOps {
			if err := check.CheckLLSC(res.History, "0"); err != nil {
				fmt.Fprintf(os.Stderr, "llsccheck: seed %d: %v\n", seed, err)
				return 1
			}
			linChecked++
		}
		if res.MaxLLSteps > 4**w+11 || res.MaxSCSteps > *w+10 || res.MaxVLSteps > 1 {
			fmt.Fprintf(os.Stderr,
				"llsccheck: seed %d: step bounds exceeded: LL=%d (<=%d), SC=%d (<=%d), VL=%d (<=1)\n",
				seed, res.MaxLLSteps, 4**w+11, res.MaxSCSteps, *w+10, res.MaxVLSteps)
			return 1
		}
		helped += res.Stats.LLHelped
		if res.MaxLLSteps > worstLL {
			worstLL = res.MaxLLSteps
		}
		if res.MaxSCSteps > worstSC {
			worstSC = res.MaxSCSteps
		}
		if *verbose {
			fmt.Printf("seed %4d: steps=%6d helped=%d torn=%d\n",
				seed, res.Steps, res.Stats.LLHelped, res.TornReads)
		}
	}

	fmt.Printf("llsccheck: OK — %d seeds (%s adversary), n=%d w=%d ops=%d\n",
		*seeds, *adversary, *n, *w, *ops)
	fmt.Printf("  invariants I1/I2, lemmas 2-4, writer exclusivity: all held\n")
	fmt.Printf("  linearizability: %d histories checked\n", linChecked)
	fmt.Printf("  step bounds: worst LL %d (bound %d), worst SC %d (bound %d)\n",
		worstLL, 4**w+11, worstSC, *w+10)
	fmt.Printf("  helped LLs across seeds: %d\n", helped)
	return 0
}

// runExplore performs CHESS-style bounded-preemption exploration.
func runExplore(n, w, ops, bound, maxRuns int) int {
	res, err := sim.Explore(sim.ExploreConfig{
		N: n, W: w, OpsPerProc: ops, Seed: 1, VLEvery: 2,
		MaxPreemptions: bound, MaxRuns: maxRuns,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "llsccheck: %v\n", err)
		return 1
	}
	if len(res.Findings) > 0 {
		f := res.Findings[0]
		fmt.Fprintf(os.Stderr, "llsccheck: %d failing schedule(s); first prefix %v:\n", len(res.Findings), f.Prefix)
		for _, e := range f.Errs {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
		return 1
	}
	trunc := ""
	if res.Truncated {
		trunc = " (truncated by -maxruns)"
	}
	fmt.Printf("llsccheck: OK — systematically explored %d schedules%s, preemption bound %d, n=%d w=%d ops=%d\n",
		res.Runs, trunc, bound, n, w, ops)
	fmt.Printf("  worst LL %d steps (bound %d), worst SC %d steps (bound %d), helped LLs %d\n",
		res.MaxLLSteps, 4*w+11, res.MaxSCSteps, w+10, res.HelpedLLs)
	return 0
}

// runDump prints the full transcript of one seeded run.
func runDump(n, w, ops int, seed int64) int {
	res, err := sim.Run(sim.Config{
		N: n, W: w, OpsPerProc: ops, Seed: seed, VLEvery: 2, TraceTo: os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "llsccheck: %v\n", err)
		return 1
	}
	fmt.Printf("steps=%d violations=%d helped=%d\n", res.Steps, len(res.Violations), res.Stats.LLHelped)
	for _, v := range res.Violations {
		fmt.Printf("  violation: %v\n", v)
	}
	if len(res.Violations) > 0 {
		return 1
	}
	return 0
}
