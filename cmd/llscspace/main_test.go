package main

import "testing"

func TestRunSmallSweep(t *testing.T) {
	if code := run([]string{"-n", "2,4", "-w", "8"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunBadLists(t *testing.T) {
	if code := run([]string{"-n", "x"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if code := run([]string{"-w", "0"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunSingleCell(t *testing.T) {
	if code := run([]string{"-n", "2", "-w", "4"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunMultiWidthSweep(t *testing.T) {
	if code := run([]string{"-n", "2,4", "-w", "4,16"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 1, 2,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := parseInts("-4"); err == nil {
		t.Fatal("negative accepted")
	}
}
