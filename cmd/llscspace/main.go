// Command llscspace prints the space-complexity comparison (experiment E2):
// the paper-accounting footprint and physical bytes of every registered
// implementation across an N×W sweep, highlighting the factor-N separation
// between the paper's O(NW) algorithm and the O(N²W) baseline.
//
// Usage:
//
//	llscspace [-n 2,4,8,16,32,64,128] [-w 4,16,64,256]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mwllsc/internal/bench"
	"mwllsc/internal/impls"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("llscspace", flag.ContinueOnError)
	var (
		nList = fs.String("n", "2,4,8,16,32,64,128", "comma-separated process counts")
		wList = fs.String("w", "4,16,64,256", "comma-separated word widths")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ns, err := parseInts(*nList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llscspace: -n: %v\n", err)
		return 2
	}
	ws, err := parseInts(*wList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "llscspace: -w: %v\n", err)
		return 2
	}

	names := impls.Names()
	for _, w := range ws {
		t := &bench.Table{
			Title: fmt.Sprintf("space at W=%d — paper words (registers + LL/SC objects) and physical KiB", w),
			Note:  "jp is the paper's O(NW) algorithm; amstyle carries the previous best's Θ(N²W) profile.",
			Cols:  []string{"N"},
		}
		for _, name := range names {
			t.Cols = append(t.Cols, name+" words", name+" KiB")
		}
		t.Cols = append(t.Cols, "amstyle/jp words")
		for _, n := range ns {
			row := []any{n}
			var jpWords, amWords int64
			for _, name := range names {
				f, err := impls.ByName(name)
				if err != nil {
					fmt.Fprintf(os.Stderr, "llscspace: %v\n", err)
					return 1
				}
				s, err := bench.SpaceOf(f, n, w)
				if err != nil {
					fmt.Fprintf(os.Stderr, "llscspace: %s n=%d w=%d: %v\n", name, n, w, err)
					return 1
				}
				row = append(row, s.PaperWords(), float64(s.PhysBytes)/1024)
				switch name {
				case "jp":
					jpWords = s.PaperWords()
				case "amstyle":
					amWords = s.PaperWords()
				}
			}
			row = append(row, float64(amWords)/float64(jpWords))
			t.AddRow(row...)
		}
		t.Fprint(os.Stdout)
	}
	return 0
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
