// Command llscbench regenerates the experiment tables E1-E7 from DESIGN.md:
// the empirical counterparts of the paper's Theorem 1 claims and of the
// comparisons its introduction makes against the previous best algorithm.
//
// Usage:
//
//	llscbench [-e e1,e3] [-impls jp,amstyle] [-dur 200ms] [-iters 50000] [-csv]
//
// With no -e flag every experiment runs. Results print as plain-text
// tables; EXPERIMENTS.md records a reference run with commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mwllsc/internal/bench"
	"mwllsc/internal/impls"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("llscbench", flag.ContinueOnError)
	var (
		exps     = fs.String("e", "", "comma-separated experiments to run (e1..e7); empty = all")
		implList = fs.String("impls", "", "comma-separated implementations (default: all of "+strings.Join(impls.Names(), ",")+")")
		dur      = fs.Duration("dur", 150*time.Millisecond, "measurement window per throughput point")
		iters    = fs.Int("iters", 30000, "iterations per latency point")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables (for plotting)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	o := bench.Options{Dur: *dur, Iters: *iters}
	if *implList != "" {
		o.Impls = strings.Split(*implList, ",")
	}

	builders := []struct {
		id    string
		build func(bench.Options) (*bench.Table, error)
	}{
		{"e1", bench.E1TimeComplexity},
		{"e2", bench.E2Space},
		{"e3", bench.E3Throughput},
		{"e4", bench.E4Helping},
		{"e5", bench.E5Substrate},
		{"e6", bench.E6Applications},
		{"e7", bench.E7Allocation},
	}

	want := map[string]bool{}
	if *exps != "" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.ToLower(strings.TrimSpace(e))] = true
		}
	}

	ran := 0
	for _, b := range builders {
		if len(want) > 0 && !want[b.id] {
			continue
		}
		t, err := b.build(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llscbench: %s: %v\n", b.id, err)
			return 1
		}
		if *csv {
			t.FprintCSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "llscbench: no experiment matched %q\n", *exps)
		return 2
	}
	return 0
}
