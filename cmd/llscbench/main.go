// Command llscbench regenerates the experiment tables E1-E16: the
// empirical counterparts of the paper's Theorem 1 claims (E1-E7), the
// scaling experiments for the sharded map and handle registry (E8-E9),
// the cross-shard transaction experiment (E10), the networked
// serving-layer load experiment (E11; cmd/llscload is its standalone
// load generator), the durability-cost experiment across fsync
// policies (E12), the hot-path allocation gate (E13, held at zero by
// cmd/llscgate in CI), the observability-overhead experiment (E14:
// serving throughput with the latency histograms off vs on), and the
// tracing-overhead experiment (E15: no tracer vs idle tracer vs
// 1-in-64 sampling vs every request traced), and the overload-control
// experiment (E16: goodput under 2x open-loop offered load with
// admission control off vs on).
// docs/BENCHMARKS.md documents the methodology and the full catalog.
//
// Usage:
//
//	llscbench [-e e1,e3] [-impls jp,amstyle] [-dur 200ms] [-iters 50000] [-procs 1,4] [-csv] [-json out.json]
//
// With no -e flag every experiment runs. -procs sets the GOMAXPROCS
// sweep for the serving experiments E11/E12/E14/E15 (default {1,4,8,16} capped
// at the machine's parallelism); values above NumCPU are allowed and
// the report's gomaxprocs/num_cpu stamps record the truth. Results
// print as plain-text tables. With -json PATH the run is also written
// as a machine-readable Report (internal/bench.Report) for archiving
// the BENCH_*.json perf trajectory and for cmd/llscgate's regression
// comparison; PATH "-" writes JSON to stdout and suppresses the text
// tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mwllsc/internal/bench"
	"mwllsc/internal/impls"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("llscbench", flag.ContinueOnError)
	var (
		exps     = fs.String("e", "", "comma-separated experiments to run (e1..e16); empty = all")
		implList = fs.String("impls", "", "comma-separated implementations (default: all of "+strings.Join(impls.Names(), ",")+")")
		dur      = fs.Duration("dur", 150*time.Millisecond, "measurement window per throughput point")
		iters    = fs.Int("iters", 30000, "iterations per latency point")
		procList = fs.String("procs", "", "comma-separated GOMAXPROCS sweep for E11/E12/E14/E15 (default: 1,4,8,16 capped at the machine)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables (for plotting)")
		jsonOut  = fs.String("json", "", "also write a machine-readable JSON report to this path (\"-\" = stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	o := bench.Options{Dur: *dur, Iters: *iters}
	if *implList != "" {
		o.Impls = strings.Split(*implList, ",")
	}
	if *procList != "" {
		for _, p := range strings.Split(*procList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "llscbench: bad -procs entry %q\n", p)
				return 2
			}
			o.Procs = append(o.Procs, n)
		}
	}

	builders := []struct {
		id    string
		build func(bench.Options) (*bench.Table, error)
	}{
		{"e1", bench.E1TimeComplexity},
		{"e2", bench.E2Space},
		{"e3", bench.E3Throughput},
		{"e4", bench.E4Helping},
		{"e5", bench.E5Substrate},
		{"e6", bench.E6Applications},
		{"e7", bench.E7Allocation},
		{"e8", bench.E8Sharding},
		{"e9", bench.E9Registry},
		{"e10", bench.E10Transactions},
		{"e11", bench.E11NetServing},
		{"e12", bench.E12Durability},
		{"e13", bench.E13Allocs},
		{"e14", bench.E14ObsOverhead},
		{"e15", bench.E15TraceOverhead},
		{"e16", bench.E16Overload},
	}

	want := map[string]bool{}
	if *exps != "" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.ToLower(strings.TrimSpace(e))] = true
		}
	}

	jsonOnly := *jsonOut == "-"
	var tables []*bench.Table
	for _, b := range builders {
		if len(want) > 0 && !want[b.id] {
			continue
		}
		t, err := b.build(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "llscbench: %s: %v\n", b.id, err)
			return 1
		}
		if t.ID == "" {
			t.ID = b.id
		}
		if !jsonOnly {
			if *csv {
				t.FprintCSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "llscbench: no experiment matched %q\n", *exps)
		return 2
	}
	if *jsonOut != "" {
		report := bench.NewReport(tables)
		out := os.Stdout
		if !jsonOnly {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "llscbench: %v\n", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "llscbench: writing JSON report: %v\n", err)
			return 1
		}
	}
	return 0
}
