package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if code := run([]string{"-e", "e7", "-dur", "5ms", "-iters", "200", "-impls", "jp,gcptr"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if code := run([]string{"-e", "e2,e5", "-dur", "5ms", "-iters", "200"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-e", "e99"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunUnknownImpl(t *testing.T) {
	if code := run([]string{"-e", "e7", "-impls", "nonexistent", "-dur", "5ms"}); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}
