package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mwllsc/internal/bench"
)

func TestRunSingleExperiment(t *testing.T) {
	if code := run([]string{"-e", "e7", "-dur", "5ms", "-iters", "200", "-impls", "jp,gcptr"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if code := run([]string{"-e", "e2,e5", "-dur", "5ms", "-iters", "200"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-e", "e99"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunUnknownImpl(t *testing.T) {
	if code := run([]string{"-e", "e7", "-impls", "nonexistent", "-dur", "5ms"}); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunShardExperiments(t *testing.T) {
	if code := run([]string{"-e", "e8,e9", "-dur", "5ms", "-impls", "jp"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunServingExperiment(t *testing.T) {
	if code := run([]string{"-e", "e11", "-dur", "5ms"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunDurabilityExperiment(t *testing.T) {
	if code := run([]string{"-e", "e12", "-dur", "5ms"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := run([]string{"-e", "e7,e9", "-dur", "5ms", "-iters", "200", "-impls", "jp", "-json", path}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report bench.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if report.Tool != "llscbench" || report.GoVersion == "" {
		t.Fatalf("report header incomplete: %+v", report)
	}
	if report.GOMAXPROCS <= 0 || report.NumCPU <= 0 {
		t.Fatalf("report is missing the environment stamp (gomaxprocs=%d num_cpu=%d)",
			report.GOMAXPROCS, report.NumCPU)
	}
	if len(report.Experiments) != 2 {
		t.Fatalf("%d experiments in report, want 2", len(report.Experiments))
	}
	ids := map[string]bool{}
	for _, e := range report.Experiments {
		ids[e.ID] = true
		if len(e.Rows) == 0 || len(e.Records) != len(e.Rows) {
			t.Fatalf("experiment %s has %d rows / %d records", e.ID, len(e.Rows), len(e.Records))
		}
	}
	if !ids["e7"] || !ids["e9"] {
		t.Fatalf("report experiment ids = %v, want e7 and e9", ids)
	}
}

func TestRunJSONToBadPath(t *testing.T) {
	if code := run([]string{"-e", "e7", "-dur", "5ms", "-iters", "200", "-impls", "jp",
		"-json", filepath.Join(t.TempDir(), "no", "such", "dir", "out.json")}); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
