package mwllsc_test

import (
	"testing"

	"mwllsc/internal/apps/shared"
	"mwllsc/internal/apps/snapshot"
	"mwllsc/internal/impls"
)

func newSnapshot(b *testing.B, name string, comps int) *snapshot.Snapshot {
	b.Helper()
	f, err := impls.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	s, err := snapshot.New(f, 8, comps, make([]uint64, comps))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func newQueue(b *testing.B, name string, n, capacity int) *shared.Queue {
	b.Helper()
	f, err := impls.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	q, err := shared.NewQueue(f, n, capacity)
	if err != nil {
		b.Fatal(err)
	}
	return q
}
