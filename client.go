package mwllsc

import (
	"mwllsc/internal/client"
	"mwllsc/internal/wire"
)

// Client is a pooled, pipelining connection to an llscd server
// (cmd/llscd): the remote counterpart of Sharded, with the same
// consistency contract per operation — Add/Set/Read linearizable on the
// key's shard, AddMulti/SetMulti one cross-shard atomic commit,
// Snapshot per-shard atomic, SnapshotAtomic cross-shard linearizable.
// All methods are safe for concurrent use; concurrent calls coalesce
// into pipelined batches on the wire automatically. See Dial.
type Client = client.Client

// ClientOption configures Dial.
type ClientOption = client.Option

// ServerStats is the llscd counter snapshot returned by Client.Stats.
type ServerStats = wire.ServerStats

// Dial connects a Client to an llscd server.
//
//	c, err := mwllsc.Dial("127.0.0.1:7787", mwllsc.WithClientConns(4))
//	...
//	v, err := c.Add(ctx, mwllsc.HashBytes([]byte("user:1234")), []uint64{1, 0})
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	return client.Dial(addr, opts...)
}

// WithClientConns sets the connection-pool size (default 1); each
// connection's in-flight batch occupies one of the server's N registry
// slots, so more connections raise server-side parallelism.
func WithClientConns(n int) ClientOption { return client.WithConns(n) }

// WithClientSendQueue sets the per-connection pipelining window
// (default 256 requests).
func WithClientSendQueue(n int) ClientOption { return client.WithSendQueue(n) }
