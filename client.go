package mwllsc

import (
	"time"

	"mwllsc/internal/client"
	"mwllsc/internal/wire"
)

// Client is a pooled, pipelining connection to an llscd server
// (cmd/llscd): the remote counterpart of Sharded, with the same
// consistency contract per operation — Add/Set/Read linearizable on the
// key's shard, AddMulti/SetMulti one cross-shard atomic commit,
// Snapshot per-shard atomic, SnapshotAtomic cross-shard linearizable.
// All methods are safe for concurrent use; concurrent calls coalesce
// into pipelined batches on the wire automatically. See Dial.
type Client = client.Client

// ClientOption configures Dial.
type ClientOption = client.Option

// ServerStats is the llscd counter snapshot returned by Client.Stats.
type ServerStats = wire.ServerStats

// Dial connects a Client to an llscd server.
//
//	c, err := mwllsc.Dial("127.0.0.1:7787", mwllsc.WithClientConns(4))
//	...
//	v, err := c.Add(ctx, mwllsc.HashBytes([]byte("user:1234")), []uint64{1, 0})
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	return client.Dial(addr, opts...)
}

// WithClientConns sets the connection-pool size (default 1); each
// connection's in-flight batch occupies one of the server's N registry
// slots, so more connections raise server-side parallelism.
func WithClientConns(n int) ClientOption { return client.WithConns(n) }

// WithClientSendQueue sets the per-connection pipelining window
// (default 256 requests).
func WithClientSendQueue(n int) ClientOption { return client.WithSendQueue(n) }

// WithClientOpTimeout sets a default per-operation deadline applied to
// calls whose context has none (default: none). The deadline surfaces
// as context.DeadlineExceeded, exactly as a caller-supplied one would.
func WithClientOpTimeout(d time.Duration) ClientOption { return client.WithOpTimeout(d) }

// WithClientRetries caps automatic retries per operation (default 3;
// 0 disables). Retries apply to idempotent operations on connection
// failure and to any operation the server explicitly rejected without
// executing (busy); updates whose connection died mid-flight are never
// blindly retried — see ErrConnBroken.
func WithClientRetries(n int) ClientOption { return client.WithRetries(n) }

// WithClientBackoff sets the retry backoff's base and cap (defaults
// 2ms and 250ms): delays double from base per attempt, jittered, up to
// the cap. The same schedule paces reconnection of broken pool slots.
func WithClientBackoff(base, max time.Duration) ClientOption { return client.WithBackoff(base, max) }

// Typed client errors, matched with errors.Is.
var (
	// ErrClientClosed is returned by operations on a closed Client.
	ErrClientClosed = client.ErrClosed
	// ErrConnBroken marks an operation whose connection died without a
	// response. For updates this is deliberately ambiguous — the server
	// may or may not have executed the op — so the client surfaces it
	// instead of retrying; the caller decides whether re-issuing is safe.
	ErrConnBroken = client.ErrConnBroken
	// ErrRetriesExhausted wraps the final error after the retry budget
	// is spent; the underlying cause is still matchable through it.
	ErrRetriesExhausted = client.ErrRetriesExhausted
	// ErrBusy maps the server's overload rejection (StatusBusy): the
	// request was not executed and is safe to retry — the client does so
	// automatically within its retry budget.
	ErrBusy = client.ErrBusy
	// ErrUnavailable maps the server's degraded-mode rejection
	// (StatusUnavailable): updates are refused while the durability
	// layer is sick. Not retried — degraded mode is sticky until an
	// operator intervenes.
	ErrUnavailable = client.ErrUnavailable
)
