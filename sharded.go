package mwllsc

import (
	"mwllsc/internal/shard"
)

// Registry multiplexes an unbounded set of goroutines onto the N process
// slots of a multiword LL/SC object: goroutines Acquire an exclusive
// process id, drive the object through it, and Release it, instead of
// hand-assigning ids. See NewRegistry.
type Registry = shard.Registry

// RegistryStats is a snapshot of registry counters; see Registry.Stats.
type RegistryStats = shard.RegistryStats

// WaitPolicy selects how Registry.Acquire behaves when all process slots
// are checked out: Block (park until a Release) or Spin (retry with
// Gosched).
type WaitPolicy = shard.WaitPolicy

// WaitPolicy choices.
const (
	// Block parks the acquiring goroutine until a slot is released.
	Block = shard.Block
	// Spin retries with runtime.Gosched between attempts.
	Spin = shard.Spin
)

// RegistryOption configures NewRegistry.
type RegistryOption = shard.RegistryOption

// NewRegistry creates a registry over process ids [0, n). Pair it with an
// Object created for the same n: acquire an id, call Object.Handle(id),
// and release when done.
func NewRegistry(n int, opts ...RegistryOption) (*Registry, error) {
	return shard.NewRegistry(n, opts...)
}

// WithWaitPolicy selects the Registry exhaustion behavior (default Block).
func WithWaitPolicy(p WaitPolicy) RegistryOption {
	return shard.WithWaitPolicy(p)
}

// Sharded is a K-shard array of independent N-process W-word LL/SC/VL
// objects keyed by hash, with a shared goroutine registry. Per-key
// operations are linearizable exactly as on a single Object. For
// cross-shard atomicity the map carries a lock-free transaction layer:
// UpdateMulti applies one function atomically to the values of several
// keys in different shards, and SnapshotAtomic returns a cross-shard
// linearizable view of all K shards (Snapshot remains the cheaper,
// per-shard-atomic read). See NewSharded and the internal/shard package
// documentation for the exact guarantee/cost trade-offs.
type Sharded = shard.Map

// ShardedHandle binds a Sharded map to one acquired process id, valid on
// every shard; see Sharded.Acquire.
type ShardedHandle = shard.MapHandle

// ShardedOption configures NewSharded.
type ShardedOption = shard.MapOption

// WithShardedInitial sets every shard's initial value (len must be w;
// default all-zeros).
func WithShardedInitial(v []uint64) ShardedOption {
	return shard.WithInitial(v)
}

// WithShardedWaitPolicy selects the exhaustion behavior of the map's
// registry (default Block).
func WithShardedWaitPolicy(p WaitPolicy) ShardedOption {
	return shard.WithMapWaitPolicy(p)
}

// WithShardedSubstrate selects the single-word LL/SC construction each
// shard is built on (default SubstrateTagged).
func WithShardedSubstrate(s Substrate) ShardedOption {
	return shard.WithSubstrate(s)
}

// NewSharded creates a map of k shards, each an n-process w-word LL/SC/VL
// object built by the paper's algorithm. n bounds the number of
// concurrently operating goroutines; additional goroutines wait at the
// registry per the configured WaitPolicy.
func NewSharded(k, n, w int, opts ...ShardedOption) (*Sharded, error) {
	return shard.NewMap(k, n, w, opts...)
}

// HashBytes maps an arbitrary byte-string key onto the uint64 key space
// used by Sharded, for callers whose keys are not already integers.
func HashBytes(key []byte) uint64 { return shard.HashBytes(key) }

// HashUint64 maps an integer key onto the uint64 key space used by
// Sharded (a full-avalanche bijection, so distinct integers never
// collide), for callers whose keys are small or dense integers — no byte
// round-trip through HashBytes needed.
func HashUint64(k uint64) uint64 { return shard.HashUint64(k) }
